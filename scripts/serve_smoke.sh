#!/bin/sh
# serve-smoke: end-to-end crash-recovery drill for `clap serve`.
#
#   phase 1  start the daemon with a crash point armed (CLAP_FAULTS makes
#            faultinject os.Exit(137) mid-solve — a deterministic kill -9),
#            ingest an intact benchmark bundle, and let the daemon die with
#            the job in flight.
#   phase 2  restart the daemon clean. The accepted job must be recovered
#            (a re-upload dedupes against it), a second, deliberately
#            truncated bundle must be admitted through the salvage path,
#            a third intact bundle must complete, and all jobs must reach
#            a terminal state. A final duplicate upload must be served
#            from the cache without re-running the pipeline (asserted via
#            the clapd.jobs.executed counter). GET /metrics must then show
#            at least two done jobs and non-empty stage latency
#            histograms, and `clap top -once` must render the summary.
#
# Run via `make serve-smoke` (part of `make ci`).
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
DIR="$TMP/state"
CLAP="$TMP/clap"
SRV_PID=""

cleanup() {
	if [ -n "$SRV_PID" ]; then kill -9 "$SRV_PID" 2>/dev/null || true; fi
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "serve-smoke: FAIL: $*" >&2
	echo "--- daemon stderr ---" >&2
	cat "$TMP/serve.err" 2>/dev/null >&2 || true
	exit 1
}

$GO build -o "$CLAP" ./cmd/clap

"$CLAP" bundle sim_race -o "$TMP/a.json" 2>/dev/null
"$CLAP" bundle pbzip2 -o "$TMP/b.json" -truncate-log 7 2>/dev/null
"$CLAP" bundle dekker -o "$TMP/c.json" 2>/dev/null

# start_daemon <CLAP_FAULTS spec>; sets SRV_PID and BASE.
start_daemon() {
	: >"$TMP/serve.out"
	CLAP_FAULTS="$1" "$CLAP" serve -dir "$DIR" -addr 127.0.0.1:0 -retry-base 50ms \
		>"$TMP/serve.out" 2>"$TMP/serve.err" &
	SRV_PID=$!
	i=0
	while [ $i -lt 100 ]; do
		BASE=$(sed -n 's/^clapd listening on \(http:[^ ]*\).*/\1/p' "$TMP/serve.out")
		if [ -n "$BASE" ]; then return 0; fi
		kill -0 "$SRV_PID" 2>/dev/null || return 1
		sleep 0.1
		i=$((i + 1))
	done
	return 1
}

# post <bundle file>: headers land in $TMP/hdr, body in $TMP/body.
post() {
	curl -s -D "$TMP/hdr" -o "$TMP/body" -X POST --data-binary @"$1" "$BASE/v1/jobs"
}

# --- Phase 1: accept a job, then die mid-solve. -------------------------
start_daemon "clapd.worker.solve=crash" || fail "phase-1 daemon did not start"
# The response may be cut off by the crash; durability is asserted in
# phase 2 — the journal fsynced "queued" before any worker could run.
post "$TMP/a.json" || true
wait "$SRV_PID" && code=0 || code=$?
SRV_PID=""
[ "$code" -eq 137 ] || fail "armed daemon exited $code, want 137 (injected kill -9)"

# --- Phase 2: clean restart must recover everything. --------------------
start_daemon "" || fail "phase-2 daemon did not start"
post "$TMP/a.json" || fail "re-upload of recovered job failed"
grep -qi "^X-Clap-Dedupe:" "$TMP/hdr" || fail "recovered job not found: duplicate was not deduped"
post "$TMP/b.json" || fail "truncated bundle upload failed"
grep -q " 201 " "$TMP/hdr" || fail "truncated bundle not accepted: $(head -1 "$TMP/hdr")"
# A third, intact bundle guarantees at least two *done* jobs for the
# /metrics assertions below (the truncated one may legitimately poison).
post "$TMP/c.json" || fail "third bundle upload failed"
grep -q " 201 " "$TMP/hdr" || fail "third bundle not accepted: $(head -1 "$TMP/hdr")"

i=0
while [ $i -lt 600 ]; do
	if "$CLAP" jobs -dir "$DIR" | grep -q "^3 jobs: 0 queued, 0 running, 0 retrying"; then break; fi
	i=$((i + 1))
	[ $i -lt 600 ] || fail "jobs never reached terminal states: $("$CLAP" jobs -dir "$DIR")"
	sleep 0.1
done

# The intact recovered job must have completed (the truncated one may
# legitimately end done or poisoned depending on what the salvage lost).
"$CLAP" jobs -dir "$DIR" | grep -q "^done" || fail "recovered job did not complete: $("$CLAP" jobs -dir "$DIR")"

# A duplicate of terminal work is served from the cache: the executed
# counter must not move.
executed() {
	curl -s "$BASE/v1/stats" | sed -n 's/.*"clapd\.jobs\.executed": \([0-9]*\).*/\1/p'
}
before=$(executed)
post "$TMP/a.json" || fail "cached duplicate upload failed"
grep -qi "^X-Clap-Dedupe: cached" "$TMP/hdr" || fail "terminal duplicate not served from cache: $(cat "$TMP/hdr")"
after=$(executed)
[ "$before" = "$after" ] || fail "cached duplicate re-ran the pipeline ($before -> $after executions)"

# --- /metrics: daemon-lifetime aggregation. -----------------------------
# At least the two intact jobs are done, and the merged per-job registries
# must have filled the stage latency histograms.
curl -s "$BASE/metrics" >"$TMP/metrics.txt" || fail "GET /metrics failed"
done_jobs=$(sed -n 's/^clapd_jobs_done \([0-9][0-9]*\)$/\1/p' "$TMP/metrics.txt")
[ -n "$done_jobs" ] || fail "clapd_jobs_done missing from /metrics"
[ "$done_jobs" -ge 2 ] || fail "clapd_jobs_done=$done_jobs, want >= 2"
for h in stage_symexec_ns stage_preprocess_ns stage_solve_ns stage_replay_ns clapd_job_ns; do
	count=$(sed -n "s/^${h}_count \([0-9][0-9]*\)\$/\1/p" "$TMP/metrics.txt")
	[ -n "$count" ] || fail "histogram $h missing from /metrics"
	[ "$count" -gt 0 ] || fail "histogram $h is empty in /metrics"
done
"$CLAP" top -once "$BASE" >"$TMP/top.txt" 2>&1 || fail "clap top -once failed: $(cat "$TMP/top.txt")"
grep -q "done $done_jobs" "$TMP/top.txt" || fail "clap top summary disagrees with /metrics: $(cat "$TMP/top.txt")"

kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "graceful drain failed"
SRV_PID=""
echo "serve-smoke: ok"
