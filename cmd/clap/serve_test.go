package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/clapd"
	"repro/internal/core"
	"repro/internal/obs"
)

// chaosBundle records the racy program once and shares the encoded
// bundle across the serve tests.
var chaosBundle = sync.OnceValues(func() ([]byte, error) {
	prog, err := core.Compile(racyProg)
	if err != nil {
		return nil, err
	}
	rec, err := core.Record(prog, core.RecordOptions{SeedLimit: 2000})
	if err != nil {
		return nil, err
	}
	return clapd.FromRecording(rec, racyProg, "racy", "").Encode()
})

func chaosBundleBytes(t *testing.T) ([]byte, string) {
	t.Helper()
	raw, err := chaosBundle()
	if err != nil {
		t.Fatal(err)
	}
	b, err := clapd.DecodeBundle(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	return raw, b.Digest()
}

// serveProc is one daemon subprocess under test control.
type serveProc struct {
	cmd  *exec.Cmd
	base string
	exit chan error
	out  *bytes.Buffer
}

// startServe launches `clap serve` on an ephemeral port and waits for
// its ready line. faults arms CLAP_FAULTS in the child.
func startServe(t *testing.T, dir, faults string) *serveProc {
	t.Helper()
	cmd := exec.Command(clapBin(t), "serve", "-dir", dir, "-addr", "127.0.0.1:0", "-retry-base", "10ms")
	cmd.Env = append(os.Environ(), "CLAP_FAULTS="+faults)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, exit: make(chan error, 1), out: &errBuf}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on http://") {
				addr := line[strings.Index(line, "http://"):]
				ready <- addr[:strings.Index(addr, " ")]
			}
		}
	}()
	go func() { p.exit <- cmd.Wait() }()
	select {
	case p.base = <-ready:
	case err := <-p.exit:
		t.Fatalf("serve exited before ready: %v\n%s", err, errBuf.String())
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("serve never became ready\n%s", errBuf.String())
	}
	return p
}

// waitExit waits for the daemon subprocess and returns its exit code.
func (p *serveProc) waitExit(t *testing.T, timeout time.Duration) int {
	t.Helper()
	select {
	case <-p.exit:
		return p.cmd.ProcessState.ExitCode()
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		t.Fatalf("serve did not exit\nstderr:\n%s", p.out.String())
		return -1
	}
}

func (p *serveProc) sigterm(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p.waitExit(t, 30*time.Second); code != 0 {
		t.Fatalf("drain exited %d\nstderr:\n%s", code, p.out.String())
	}
}

func httpPostBundle(t *testing.T, base string, raw []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", base, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

func httpGetJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestServeChaosKillAnywhere is the durability acceptance test: arm a
// hard crash (os.Exit(137), a deterministic kill -9) at each stage of
// the journal/store/worker path, accept a job, let the daemon die, then
// restart it clean and require that the accepted job reaches exactly one
// terminal state — never lost, never double-completed.
func TestServeChaosKillAnywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos sweep")
	}
	raw, digest := chaosBundleBytes(t)
	points := []struct {
		faults string
		// ackMayFail: the crash can land inside the ingest request itself,
		// so the client may see a dropped connection instead of a 201. In
		// that case nothing was promised and an absent job is acceptable.
		ackMayFail bool
	}{
		// Crash while journaling the running transition (the queued append
		// already fsynced at ingest).
		{faults: "clapd.journal.sync=crash@1", ackMayFail: false},
		// Crash on a store rename after open-compaction (1) and the
		// ingest-path bundle write (2): a worker artifact write dies.
		{faults: "clapd.fs.rename=crash@2", ackMayFail: false},
		// Crash at the named worker stages.
		{faults: "clapd.worker.start=crash", ackMayFail: false},
		{faults: "clapd.worker.solve=crash", ackMayFail: false},
		{faults: "clapd.worker.result=crash", ackMayFail: false},
		// Crash after the terminal transition was journaled: restart must
		// serve the completed job without re-running the pipeline.
		{faults: "clapd.worker.done=crash", ackMayFail: false},
	}
	for _, tc := range points {
		t.Run(strings.ReplaceAll(tc.faults, "=", "_"), func(t *testing.T) {
			dir := t.TempDir()

			// Phase 1: armed daemon. Ingest, then let the crash point kill it.
			p1 := startServe(t, dir, tc.faults)
			resp, body := httpPostBundle(t, p1.base, raw)
			if resp.StatusCode != http.StatusCreated && !tc.ackMayFail {
				t.Fatalf("ingest: %d %s", resp.StatusCode, body)
			}
			if code := p1.waitExit(t, 60*time.Second); code != 137 {
				t.Fatalf("armed daemon exited %d, want 137 (crash)\nstderr:\n%s", code, p1.out.String())
			}

			// Phase 2: clean restart. The accepted job must recover to
			// exactly one terminal state.
			p2 := startServe(t, dir, "")
			defer p2.sigterm(t)
			var job clapd.Job
			deadline := time.Now().Add(60 * time.Second)
			for {
				httpGetJSON(t, p2.base+"/v1/jobs/"+digest, &job)
				if job.State.Terminal() {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("recovered job never finished: %+v", job)
				}
				time.Sleep(50 * time.Millisecond)
			}
			if job.State != clapd.StateDone {
				t.Fatalf("recovered job ended %s (%s), want done", job.State, job.Err)
			}
			var stats obs.Report
			httpGetJSON(t, p2.base+"/v1/stats", &stats)
			if got := stats.Counters["clapd.jobs.doublecomplete.refused"]; got != 0 {
				t.Errorf("restart attempted %d double completions", got)
			}
			if tc.faults == "clapd.worker.done=crash" {
				// The terminal state was durable before the crash: recovery
				// must serve it from the journal, not re-run the pipeline.
				if got := stats.Counters["clapd.jobs.executed"]; got != 0 {
					t.Errorf("completed job re-executed %d times after restart", got)
				}
			}
			// The reproduction artifact is served from the store.
			var res clapd.Result
			httpGetJSON(t, p2.base+"/v1/jobs/"+digest+"/result", &res)
			if !res.Reproduced {
				t.Errorf("recovered result: %+v", res)
			}
		})
	}
}

// TestJobsGolden pins `clap jobs` output byte-for-byte on a crafted
// journal (no timestamps, digests sorted, damage reported).
func TestJobsGolden(t *testing.T) {
	dir := t.TempDir()
	dA := strings.Repeat("aa", 32)
	dB := strings.Repeat("bb", 32)
	dC := strings.Repeat("cc", 32)
	wal := fmt.Sprintf(`{"seq":1,"digest":%q,"state":"queued","attempt":0}
{"seq":2,"digest":%q,"state":"queued","attempt":0}
{"seq":3,"digest":%q,"state":"done","attempt":1}
{"seq":4,"digest":%q,"state":"queued","attempt":0}
{"seq":5,"digest":%q,"state":"poisoned","attempt":3,"err":"injected solver failure"}
torn-garbage-tail`, dC, dB, dB, dA, dC)
	if err := os.WriteFile(filepath.Join(dir, "journal.wal"), []byte(wal), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(clapBin(t), "jobs", "-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("clap jobs: %v\n%s", err, out)
	}
	want := []string{
		"STATE      ATTEMPT  DIGEST        ERROR",
		"queued     0        aaaaaaaaaaaa  -",
		"done       1        bbbbbbbbbbbb  -",
		"poisoned   3        cccccccccccc  injected solver failure",
		"3 jobs: 1 queued, 0 running, 0 retrying, 1 done, 1 poisoned",
	}
	lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
	if len(lines) != len(want)+1 {
		t.Fatalf("clap jobs printed %d lines, want %d:\n%s", len(lines), len(want)+1, out)
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d:\n got %q\nwant %q", i, lines[i], w)
		}
	}
	// The damage line names the dropped byte count; the decoder's error
	// text (offset, JSON detail) is not part of the contract.
	if !strings.HasPrefix(lines[len(want)], "journal tail damaged: 17B dropped") {
		t.Errorf("damage line: %q", lines[len(want)])
	}
}

// TestBundleCommand exercises the client half: `clap bundle` emits a
// decodable clap-bundle/1, and -truncate-log ships a damaged log that
// still salvages server-side.
func TestBundleCommand(t *testing.T) {
	dir := t.TempDir()
	intact := filepath.Join(dir, "intact.json")
	out, err := exec.Command(clapBin(t), "bundle", "sim_race", "-o", intact).CombinedOutput()
	if err != nil {
		t.Fatalf("clap bundle: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(intact)
	if err != nil {
		t.Fatal(err)
	}
	b, err := clapd.DecodeBundle(raw, 0)
	if err != nil {
		t.Fatalf("emitted bundle does not decode: %v", err)
	}
	if b.Name != "sim_race" || b.Solver != "" {
		t.Errorf("bundle fields: name=%q solver=%q", b.Name, b.Solver)
	}
	if _, rep, err := b.DecodeLog(); err != nil || !rep.Clean() {
		t.Fatalf("intact bundle log: %v, %s", err, rep)
	}

	cut := filepath.Join(dir, "cut.json")
	out, err = exec.Command(clapBin(t), "bundle", "sim_race", "-o", cut, "-truncate-log", "7").CombinedOutput()
	if err != nil {
		t.Fatalf("clap bundle -truncate-log: %v\n%s", err, out)
	}
	craw, err := os.ReadFile(cut)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := clapd.DecodeBundle(craw, 0)
	if err != nil {
		t.Fatalf("truncated bundle refused at decode: %v", err)
	}
	if cb.Digest() == b.Digest() {
		t.Error("truncation did not change the digest")
	}
	if _, rep, err := cb.DecodeLog(); err != nil {
		t.Fatalf("truncated log did not salvage: %v", err)
	} else if rep.Clean() {
		t.Error("truncated log claims a clean decode")
	}
}
