// Command clap runs the CLAP pipeline on mini-language programs.
//
// Usage:
//
//	clap run <prog.mc> [flags]         execute once under a seeded schedule
//	clap record <prog.mc> [flags]      hunt a failing schedule, dump the path log
//	clap reproduce <prog.mc> [flags]   record, solve, and replay the failure
//	clap bench <name>                  reproduce one built-in benchmark
//	clap vet <prog.mc>...              static lockset/happens-before lint:
//	                                   potential races and lock-order cycles
//	clap races <prog.mc|bench>         predictive race detection: record one
//	                                   execution, then decide each conflicting
//	                                   access pair by solver-checked adjacency
//	                                   (-json for the clap-races/1 report,
//	                                   -witness for witness schedules)
//	clap decodelog <log> [flags]       inspect a recorded path log file
//	clap stats <metrics.json>          pretty-print a -metrics-json report
//	clap timeline <prog.mc|bench>      record, solve and replay, then write the
//	                                   flight-recorder timeline: Chrome trace-event
//	                                   JSON with -o (Perfetto/chrome://tracing),
//	                                   an ASCII rendering on stdout otherwise
//	clap explain <prog.mc|bench>       record and solve, then explain: the SAP
//	                                   pairs the solver flipped against the
//	                                   recorded order (with source positions), or
//	                                   — when no schedule exists — the minimal
//	                                   conflicting constraint-group core
//	clap serve -dir D [-addr A]        run the reproduction daemon: HTTP ingest
//	                                   of recorded bundles, durable jobs, crash
//	                                   recovery (see serve.go for its flags)
//	clap jobs -dir D                   list the daemon's job journal states
//	clap bundle <prog.mc|bench> -o F   record locally, emit an uploadable
//	                                   clap-bundle/1 for POST /v1/jobs
//	clap top <url>                     poll a running daemon's /metrics and
//	                                   render a one-screen fleet summary
//	                                   (-interval D poll period, -once for a
//	                                   single snapshot)
//
// Exit codes: 0 on success; 1 when the pipeline or a required check fails
// (`stats -require` missing a span, `explain` on a failed solve — the
// verdict is still printed); 2 on usage errors (unknown subcommand, bad
// flag or argument).
//
// Flags (after the subcommand):
//
//	-model SC|TSO|PSO   memory model (default SC)
//	-seed N             first scheduler seed (default 0)
//	-seeds N            how many seeds to try when hunting (default 2000)
//	-input a,b,c        deterministic program inputs
//	-solver seq|par|cnf|portfolio
//	                    solving strategy (default seq); portfolio tries
//	                    seq, then par, then cnf, printing the attempt trail
//	-cs N               preemption bound (-1 = minimal, default)
//	-timeout D          bound each phase's wall time (e.g. 30s, 2m);
//	                    interrupted phases report partial diagnostics
//	-o FILE             record: also write the crash-tolerant framed log;
//	                    timeline: write the Chrome trace-event JSON here
//	-json               races: emit the stable clap-races/1 JSON report
//	                    instead of the text listing
//	-witness            races: print each confirmed race's validated
//	                    witness schedule with the racing pair marked
//	-salvage            decodelog: recover the longest valid prefix from a
//	                    truncated or corrupt log instead of failing
//	-simplify           post-process the schedule to fewer preemptions
//	-cache DIR          reproduce/bench: reuse preprocess snapshots and
//	                    solved schedules from the content-addressed cache
//	                    at DIR (created if missing; clear with rm -rf)
//	-dump-constraints   print the constraint system after solving
//	-metrics-json FILE  write the pipeline's span tree and metric registry
//	                    as JSON (written even when the run fails)
//	-progress           print a periodic solver heartbeat to stderr
//	-require a,b,c      stats: fail unless each named span is in the report
//	-cpuprofile FILE    write a pprof CPU profile covering the whole
//	                    record/solve/replay pipeline
//	-memprofile FILE    write a pprof heap profile at exit (after a GC)
//	-trace FILE         write a runtime execution trace (go tool trace)
//	-v                  verbose
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/obs"
	"repro/internal/races"
	"repro/internal/replay"
	"repro/internal/simplify"
	"repro/internal/solver"
	"repro/internal/staticanalysis"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clap:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError marks a bad invocation (unknown subcommand, malformed flag,
// wrong arguments) apart from a pipeline failure: usage exits 2 where
// failures exit 1, so scripts can tell "you called it wrong" from "it ran
// and failed".
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// usagef builds a usageError.
func usagef(format string, args ...any) error {
	return usageError{msg: fmt.Sprintf(format, args...)}
}

type flags struct {
	model    vm.MemModel
	seed     int64
	seeds    int64
	inputs   []int64
	solver   string
	cs       int
	timeout  time.Duration
	out      string
	jsonOut  bool
	witness  bool
	salvage  bool
	dump     bool
	simplify bool
	cacheDir string
	verbose  bool

	cpuprofile  string
	memprofile  string
	traceOut    string
	metricsJSON string
	progress    bool
	require     string

	// tr collects the pipeline's spans and metrics when -metrics-json or
	// -progress asked for them; nil otherwise (the pipeline records into
	// its own private trace and nothing is written).
	tr *obs.Trace
}

func parseFlags(args []string) (rest []string, f flags, err error) {
	f = flags{seeds: 2000, solver: "seq", cs: -1}
	i := 0
	need := func(name string) (string, error) {
		i++
		if i >= len(args) {
			return "", fmt.Errorf("flag %s needs a value", name)
		}
		return args[i], nil
	}
	for ; i < len(args); i++ {
		switch a := args[i]; a {
		case "-model":
			v, err := need(a)
			if err != nil {
				return nil, f, err
			}
			switch strings.ToUpper(v) {
			case "SC":
				f.model = vm.SC
			case "TSO":
				f.model = vm.TSO
			case "PSO":
				f.model = vm.PSO
			default:
				return nil, f, fmt.Errorf("unknown model %q", v)
			}
		case "-seed":
			v, err := need(a)
			if err != nil {
				return nil, f, err
			}
			f.seed, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, f, err
			}
		case "-cache":
			v, err := need(a)
			if err != nil {
				return nil, f, err
			}
			f.cacheDir = v
		case "-seeds":
			v, err := need(a)
			if err != nil {
				return nil, f, err
			}
			f.seeds, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, f, err
			}
		case "-input":
			v, err := need(a)
			if err != nil {
				return nil, f, err
			}
			for _, part := range strings.Split(v, ",") {
				n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
				if err != nil {
					return nil, f, err
				}
				f.inputs = append(f.inputs, n)
			}
		case "-solver":
			v, err := need(a)
			if err != nil {
				return nil, f, err
			}
			f.solver = v
		case "-cs":
			v, err := need(a)
			if err != nil {
				return nil, f, err
			}
			f.cs, err = strconv.Atoi(v)
			if err != nil {
				return nil, f, err
			}
		case "-timeout":
			v, err := need(a)
			if err != nil {
				return nil, f, err
			}
			f.timeout, err = time.ParseDuration(v)
			if err != nil {
				return nil, f, err
			}
			if f.timeout <= 0 {
				return nil, f, fmt.Errorf("-timeout must be positive, got %v", f.timeout)
			}
		case "-o":
			v, err := need(a)
			if err != nil {
				return nil, f, err
			}
			f.out = v
		case "-cpuprofile":
			if f.cpuprofile, err = need(a); err != nil {
				return nil, f, err
			}
		case "-memprofile":
			if f.memprofile, err = need(a); err != nil {
				return nil, f, err
			}
		case "-trace":
			if f.traceOut, err = need(a); err != nil {
				return nil, f, err
			}
		case "-metrics-json":
			if f.metricsJSON, err = need(a); err != nil {
				return nil, f, err
			}
		case "-require":
			if f.require, err = need(a); err != nil {
				return nil, f, err
			}
		case "-json":
			f.jsonOut = true
		case "-witness":
			f.witness = true
		case "-progress":
			f.progress = true
		case "-salvage":
			f.salvage = true
		case "-dump-constraints":
			f.dump = true
		case "-simplify":
			f.simplify = true
		case "-v":
			f.verbose = true
		default:
			rest = append(rest, a)
		}
	}
	return rest, f, nil
}

func run(args []string) (err error) {
	if len(args) < 1 {
		return usagef("usage: clap run|record|reproduce|bench|vet|races|decodelog|stats|timeline|explain|serve|jobs|bundle ... (see the package docs for flags)")
	}
	cmd := args[0]
	rest, f, err := parseFlags(args[1:])
	if err != nil {
		return usagef("%v", err)
	}
	// All teardown is deferred here rather than in main so a failing
	// subcommand still flushes its profiles, trace and metrics: a crash
	// under -cpuprofile is exactly when the profile matters.
	stopProfiles, err := startProfiles(f)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	if f.metricsJSON != "" || f.progress {
		f.tr = obs.NewTrace("clap")
		defer func() {
			if f.metricsJSON == "" {
				return
			}
			data, mErr := f.tr.Report().Encode()
			if mErr == nil {
				mErr = os.WriteFile(f.metricsJSON, data, 0o644)
			}
			if mErr != nil && err == nil {
				err = mErr
			}
		}()
	}
	if f.progress {
		hopts := obs.HeartbeatOptions{Gauges: obs.ProgressGauges, Rates: obs.ProgressRates}
		if f.timeout > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
			defer cancel()
			hopts.Ctx = ctx
		}
		hb := obs.StartHeartbeat(os.Stderr, f.tr.Reg(), hopts)
		// The closing summary goes out on success and error paths alike; the
		// deferred StopFinal also guarantees the ticker goroutine is gone
		// before main exits.
		defer func() {
			outcome := "ok"
			if err != nil {
				outcome = "error"
			}
			hb.StopFinal(f.tr, outcome)
		}()
	}
	switch cmd {
	case "run":
		return cmdRun(rest, f)
	case "record":
		return cmdRecord(rest, f)
	case "reproduce":
		return cmdReproduce(rest, f)
	case "bench":
		return cmdBench(rest, f)
	case "vet":
		return cmdVet(rest, f)
	case "races":
		return cmdRaces(rest, f)
	case "decodelog":
		return cmdDecodeLog(rest, f)
	case "stats":
		return cmdStats(rest, f)
	case "timeline":
		return cmdTimeline(rest, f)
	case "explain":
		return cmdExplain(rest, f)
	case "serve":
		return cmdServe(rest, f)
	case "jobs":
		return cmdJobs(rest, f)
	case "bundle":
		return cmdBundle(rest, f)
	case "top":
		return cmdTop(rest, f)
	default:
		return usagef("unknown subcommand %q", cmd)
	}
}

// startProfiles arms the requested profilers and returns the teardown
// that stops them and writes the heap profile. The CPU profile and
// execution trace cover the whole pipeline (record, solve, replay); the
// heap profile is written at exit after a GC so it reflects live memory,
// not transient garbage.
func startProfiles(f flags) (func() error, error) {
	var stops []func() error
	stopAll := func() error {
		var first error
		for _, stop := range stops {
			if err := stop(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	// A profiler that fails to start must not leak the ones already armed:
	// stop them before reporting, or a failed -trace would leave the CPU
	// profiler running with its file handle open and nothing to stop it.
	fail := func(err error) (func() error, error) {
		stopAll()
		return nil, err
	}
	if f.cpuprofile != "" {
		fp, err := os.Create(f.cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(fp); err != nil {
			fp.Close()
			return fail(err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return fp.Close()
		})
	}
	if f.traceOut != "" {
		fp, err := os.Create(f.traceOut)
		if err != nil {
			return fail(err)
		}
		if err := rtrace.Start(fp); err != nil {
			fp.Close()
			return fail(err)
		}
		stops = append(stops, func() error {
			rtrace.Stop()
			return fp.Close()
		})
	}
	if f.memprofile != "" {
		name := f.memprofile
		stops = append(stops, func() error {
			fp, err := os.Create(name)
			if err != nil {
				return err
			}
			defer fp.Close()
			runtime.GC()
			return pprof.WriteHeapProfile(fp)
		})
	}
	return stopAll, nil
}

func loadProgram(rest []string) (string, error) {
	if len(rest) != 1 {
		return "", usagef("expected exactly one program file")
	}
	src, err := os.ReadFile(rest[0])
	if err != nil {
		return "", err
	}
	return string(src), nil
}

func cmdRun(rest []string, f flags) error {
	src, err := loadProgram(rest)
	if err != nil {
		return err
	}
	prog, err := core.Compile(src)
	if err != nil {
		return err
	}
	rec, err := core.RecordSeed(prog, f.seed, core.RecordOptions{Model: f.model, Inputs: f.inputs})
	if err != nil {
		return err
	}
	for _, v := range rec.Run.Output {
		fmt.Println(v)
	}
	fmt.Printf("model=%s seed=%d threads=%d instructions=%d branches=%d SAPs=%d\n",
		f.model, f.seed, rec.Run.Threads, rec.Run.Instructions, rec.Run.Branches, rec.Run.VisibleEvents)
	if rec.Failure != nil {
		fmt.Printf("FAILURE: %s\n", rec.Failure)
	} else {
		fmt.Println("run completed cleanly")
	}
	return nil
}

func cmdRecord(rest []string, f flags) error {
	src, err := loadProgram(rest)
	if err != nil {
		return err
	}
	prog, err := core.Compile(src)
	if err != nil {
		return err
	}
	rec, err := core.Record(prog, core.RecordOptions{
		Model: f.model, Inputs: f.inputs, Seed: f.seed, SeedLimit: f.seeds,
		Deadline: f.timeout, Obs: f.tr,
	})
	if err != nil {
		return err
	}
	fmt.Printf("failure found with seed %d: %s\n", rec.Seed, rec.Failure)
	fmt.Printf("path log: %d threads, %d events, %d bytes encoded\n",
		len(rec.Log.Threads), rec.Log.EventCount(), rec.LogSize())
	if f.verbose {
		for _, tl := range rec.Log.Threads {
			fmt.Printf("  thread %d (parent %d, index %d): %d events\n",
				tl.Thread, tl.Parent, tl.Index, len(tl.Events))
		}
	}
	if f.out != "" {
		framed := rec.Log.EncodeFramed(trace.FramedOptions{})
		if err := os.WriteFile(f.out, framed, 0o644); err != nil {
			return err
		}
		fmt.Printf("framed log written to %s (%dB)\n", f.out, len(framed))
	}
	return nil
}

// cmdDecodeLog inspects a path-log file: strictly by default, leniently
// with -salvage (recovering the longest valid prefix of a damaged log).
func cmdDecodeLog(rest []string, f flags) error {
	if len(rest) != 1 {
		return usagef("usage: clap decodelog <log file> [-salvage] [-v]")
	}
	buf, err := os.ReadFile(rest[0])
	if err != nil {
		return err
	}
	var log *trace.PathLog
	if f.salvage {
		var rep *trace.SalvageReport
		log, rep = trace.DecodePathLogSalvage(buf)
		fmt.Println("salvage:", rep)
	} else if trace.IsFramed(buf) {
		if log, err = trace.DecodeFramedPathLog(buf); err != nil {
			return fmt.Errorf("%w (retry with -salvage to recover a prefix)", err)
		}
	} else {
		if log, err = trace.DecodePathLog(buf); err != nil {
			return err
		}
	}
	fmt.Printf("path log: %d threads, %d events\n", len(log.Threads), log.EventCount())
	if f.verbose {
		for _, tl := range log.Threads {
			fmt.Printf("  thread %d (parent %d, index %d): %d events, %d cuts\n",
				tl.Thread, tl.Parent, tl.Index, len(tl.Events), len(tl.Cuts))
		}
	}
	return nil
}

// cmdVet runs the static lockset / happens-before analysis on each
// program and prints its findings. Findings are diagnostics, not errors:
// vet exits zero unless a program fails to load or compile, so it can
// sweep a directory of intentionally racy examples.
func cmdVet(rest []string, f flags) error {
	if len(rest) == 0 {
		return usagef("usage: clap vet <prog.mc>... [-v]")
	}
	for i, name := range rest {
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		prog, err := core.Compile(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if len(rest) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("== %s ==\n", name)
		}
		res := staticanalysis.Analyze(prog)
		fmt.Print(res.Render())
		if f.verbose {
			fmt.Printf("%s\n", res.ComputeStats())
		}
	}
	return nil
}

// cmdRaces runs the predictive race detector: record one execution
// (hunting a failure first — the mutual-exclusion benchmarks only touch
// their racy state on a failing schedule — and falling back to a clean
// seed run), then analyze every conflicting access pair for
// solver-checked adjacency. Demotion is disabled so every shared access
// appears as a SAP the analysis can see.
func cmdRaces(rest []string, f flags) error {
	src, name, f, err := resolveTarget(rest, f, "usage: clap races <prog.mc|benchmark> [-json] [-witness] [flags]")
	if err != nil {
		return err
	}
	prog, err := core.Compile(src)
	if err != nil {
		return err
	}
	ropts := core.RecordOptions{
		Model: f.model, Inputs: f.inputs, Seed: f.seed, SeedLimit: f.seeds,
		Deadline: f.timeout, NoDemote: true, Obs: f.tr,
	}
	rec, err := core.Record(prog, ropts)
	if err != nil {
		var nf *core.NoFailureError
		if !errors.As(err, &nf) {
			return err
		}
		// No failing schedule: analyze a clean recorded execution instead.
		if rec, err = core.RecordSeed(prog, f.seed, ropts); err != nil {
			return err
		}
	}
	rep, err := rec.DetectRaces(races.Options{Deadline: f.timeout}, f.tr)
	if err != nil {
		return err
	}
	if f.jsonOut {
		data, err := rep.MarshalReport(races.Meta{Program: name, Model: f.model.String(), Seed: rec.Seed})
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}
	fmt.Print(rep.Render())
	if f.witness {
		for _, fd := range rep.Confirmed() {
			fmt.Print(renderWitness(rep, fd))
		}
	}
	return nil
}

// renderWitness prints a confirmed race's validated schedule, one SAP per
// line, with the racing pair marked. The schedule around the pair is what
// matters, so the listing is windowed to it.
func renderWitness(rep *races.Report, fd races.Finding) string {
	var b strings.Builder
	fmt.Fprintf(&b, "witness for %s (%s):\n", fd.Var, fd.How)
	order := fd.Witness.Order
	at := -1
	for i, r := range order {
		if r == fd.A.SAP || r == fd.B.SAP {
			at = i
			break
		}
	}
	lo, hi := 0, len(order)
	const window = 4
	if at >= 0 {
		if at-window > lo {
			lo = at - window
		}
		if at+window+2 < hi {
			hi = at + window + 2
		}
	}
	if lo > 0 {
		fmt.Fprintf(&b, "  ... %d earlier\n", lo)
	}
	for i := lo; i < hi; i++ {
		r := order[i]
		mark := "  "
		if r == fd.A.SAP || r == fd.B.SAP {
			mark = "* "
		}
		fmt.Fprintf(&b, "  %s[%3d] %s\n", mark, i, rep.Sys.SAP(r))
	}
	if hi < len(order) {
		fmt.Fprintf(&b, "  ... %d later\n", len(order)-hi)
	}
	return b.String()
}

func cmdReproduce(rest []string, f flags) error {
	src, err := loadProgram(rest)
	if err != nil {
		return err
	}
	return reproduceSource(src, f)
}

func cmdBench(rest []string, f flags) error {
	if len(rest) != 1 {
		names := ""
		for _, b := range bench.All() {
			names += " " + b.Name
		}
		return usagef("usage: clap bench <name>; available:%s", names)
	}
	b, ok := bench.ByName(rest[0])
	if !ok {
		return usagef("unknown benchmark %q", rest[0])
	}
	f.model = b.Model
	f.inputs = b.Inputs
	f.seeds = b.SeedLimit
	if b.MaxPreemptions != 0 {
		f.cs = b.MaxPreemptions
	}
	fmt.Printf("benchmark %s: %s\n", b.Name, b.Description)
	return reproduceSource(b.Source, f)
}

// solverKind maps the -solver flag to a core.SolverKind.
func solverKind(name string) (core.SolverKind, error) {
	switch name {
	case "seq":
		return core.Sequential, nil
	case "par":
		return core.Parallel, nil
	case "cnf":
		return core.CNF, nil
	case "portfolio":
		return core.Portfolio, nil
	}
	return 0, usagef("unknown solver %q", name)
}

func reproduceSource(src string, f flags) error {
	kind, err := solverKind(f.solver)
	if err != nil {
		return err
	}
	prog, err := core.Compile(src)
	if err != nil {
		return err
	}
	rec, err := core.Record(prog, core.RecordOptions{
		Model: f.model, Inputs: f.inputs, Seed: f.seed, SeedLimit: f.seeds,
		Deadline: f.timeout, Obs: f.tr,
	})
	if err != nil {
		return err
	}
	fmt.Printf("recorded failure (seed %d, model %s): %s\n", rec.Seed, f.model, rec.Failure)
	fmt.Printf("  path log %dB; run: %d instructions, %d branches, %d SAPs\n",
		rec.LogSize(), rec.Run.Instructions, rec.Run.Branches, rec.Run.VisibleEvents)
	if f.verbose && rec.Static != nil {
		fmt.Printf("  %s\n", rec.Static.ComputeStats())
	}

	// Replay runs separately below so -simplify can shrink the schedule
	// between solving and the final deterministic replay.
	ropts := core.ReproduceOptions{
		Solver:     kind,
		SeqOptions: solver.Options{MaxPreemptions: f.cs},
		Deadline:   f.timeout,
		SkipReplay: true,
		Obs:        f.tr,
	}
	if f.cacheDir != "" {
		cache, err := core.OpenDiskCache(f.cacheDir)
		if err != nil {
			return err
		}
		ropts.Cache = cache
	}
	rep, rerr := core.Reproduce(rec, ropts)
	if rep != nil {
		fmt.Printf("constraints: %s\n", rep.Stats)
		if f.verbose && rep.System != nil && rep.System.Pre != nil {
			fmt.Printf("  %s\n", rep.System.Pre)
		}
		if f.dump && rep.System != nil {
			fmt.Println(rep.System.Formula())
		}
		if f.solver == "portfolio" || f.verbose {
			for _, a := range rep.Attempts {
				fmt.Printf("  attempt %s\n", a)
			}
		}
	}
	if rerr != nil {
		return rerr
	}
	switch {
	case f.verbose && rep.SeqStats != nil:
		fmt.Printf("  sequential solver: %+v\n", *rep.SeqStats)
	case rep.Parallel != nil && kind == core.Parallel:
		fmt.Printf("  parallel solver: generated %d, valid %d, bound %d, %.3fs\n",
			rep.Parallel.Generated, rep.Parallel.Valid, rep.Parallel.Bound, rep.Parallel.Elapsed.Seconds())
	case rep.CNFStats != nil && kind == core.CNF:
		fmt.Printf("  cnf solver: %d bool vars, %d clauses, %d theory rounds\n",
			rep.CNFStats.BoolVars, rep.CNFStats.Clauses, rep.CNFStats.TheoryRounds)
	}

	sol := rep.Solution
	if f.simplify {
		res, err := simplify.Simplify(rep.System, sol.Order, simplify.Options{})
		if err != nil {
			return err
		}
		if res.After < sol.Preemptions {
			fmt.Printf("  simplifier: %d -> %d preemptions (%d moves)\n", res.Before, res.After, res.Moves)
			sol = &solver.Solution{Order: res.Order, Witness: res.Witness, Preemptions: res.After}
			rep.Solution = sol
		}
	}
	fmt.Printf("schedule: %d SAPs, %d preemptive context switches\n", len(sol.Order), sol.Preemptions)
	if f.verbose {
		for i, ref := range sol.Order {
			fmt.Printf("  %3d %s\n", i, rep.System.SAP(ref))
		}
	}

	out, err := rep.Replay(replay.Options{
		Mode: replay.ModeFor(f.model), Inputs: f.inputs, Deadline: f.timeout,
	})
	if err != nil {
		return err
	}
	if !out.Reproduced {
		return fmt.Errorf("replay did not reproduce the failure: %v", out.Failure)
	}
	fmt.Printf("replay: bug reproduced deterministically (%s mode, %d events verified)\n",
		replay.ModeFor(f.model), out.EventsMatched)
	return nil
}

// cmdStats pretty-prints a -metrics-json report: the span tree with
// durations and attributes, then the counters and gauges sorted by name.
// With -require a,b,c it exits nonzero unless every named span is present,
// which is how `make ci` smoke-tests the metrics pipeline.
func cmdStats(rest []string, f flags) error {
	if len(rest) != 1 {
		return usagef("usage: clap stats <metrics.json> [-require span,span,...]")
	}
	data, err := os.ReadFile(rest[0])
	if err != nil {
		return err
	}
	rep, err := obs.DecodeReport(data)
	if err != nil {
		return err
	}
	rep.Render(os.Stdout)
	if f.require != "" {
		var missing []string
		for _, name := range strings.Split(f.require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && rep.Span(name) == nil {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("report is missing required spans: %s", strings.Join(missing, ", "))
		}
	}
	return nil
}

// resolveTarget loads the single program argument shared by the timeline
// and explain subcommands: a built-in benchmark name, or a mini-language
// source file. Benchmark targets adopt the benchmark's model, inputs and
// seed budget, like `clap bench`.
func resolveTarget(rest []string, f flags, usage string) (src, name string, out flags, err error) {
	if len(rest) != 1 {
		return "", "", f, usagef("%s", usage)
	}
	if b, ok := bench.ByName(rest[0]); ok {
		f.model = b.Model
		f.inputs = b.Inputs
		f.seeds = b.SeedLimit
		if b.MaxPreemptions != 0 {
			f.cs = b.MaxPreemptions
		}
		return b.Source, b.Name, f, nil
	}
	data, err := os.ReadFile(rest[0])
	if err != nil {
		return "", "", f, err
	}
	return string(data), rest[0], f, nil
}

// flightPipeline records a failure and reproduces it with the flight
// recorder's capture hooks armed: the replay's visible events are
// collected for the timeline's replay lane, and the sequential solver
// keeps its deepest partial order so a failed solve still has something
// to show. A non-nil Reproduction may come back alongside an error — the
// partial pipeline is exactly what timeline/explain want to look at.
func flightPipeline(src string, f flags, skipReplay bool) (*core.Reproduction, error) {
	kind, err := solverKind(f.solver)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(src)
	if err != nil {
		return nil, err
	}
	rec, err := core.Record(prog, core.RecordOptions{
		Model: f.model, Inputs: f.inputs, Seed: f.seed, SeedLimit: f.seeds,
		Deadline: f.timeout, Obs: f.tr,
	})
	if err != nil {
		return nil, err
	}
	return core.Reproduce(rec, core.ReproduceOptions{
		Solver:        kind,
		SeqOptions:    solver.Options{MaxPreemptions: f.cs, CapturePartial: true},
		Deadline:      f.timeout,
		SkipReplay:    skipReplay,
		CaptureReplay: true,
		Obs:           f.tr,
	})
}

// cmdTimeline runs the full pipeline and writes the flight-recorder
// timeline: the recorded interleaving, the solved schedule with race-flip
// arrows, and the replay capture. With -o the artifact is Chrome
// trace-event JSON (validated before writing, linked from the metrics
// report); without it an ASCII rendering goes to stdout. A failed solve
// still writes what exists — the recorded lane plus the sequential
// attempt's partial order — and then reports the failure.
func cmdTimeline(rest []string, f flags) error {
	src, name, f, err := resolveTarget(rest, f, "usage: clap timeline <prog.mc|benchmark> [-o FILE] [flags]")
	if err != nil {
		return err
	}
	rep, perr := flightPipeline(src, f, false)
	if rep == nil {
		return perr
	}
	tl, err := rep.BuildTimeline(name)
	if err != nil {
		return err
	}
	if f.out != "" {
		data, err := timeline.EncodeChrome(tl)
		if err != nil {
			return err
		}
		if err := timeline.Validate(data); err != nil {
			return err
		}
		if err := os.WriteFile(f.out, data, 0o644); err != nil {
			return err
		}
		f.tr.AddArtifact("timeline", f.out)
		fmt.Printf("timeline: %d lanes written to %s (%dB); load in Perfetto or chrome://tracing\n",
			len(tl.Execs), f.out, len(data))
	} else {
		timeline.RenderASCII(os.Stdout, tl)
	}
	return perr
}

// cmdExplain runs record and solve, then explains the result. A solved
// reproduction gets the schedule diff: the conflicting SAP pairs whose
// order the solver reversed relative to the recorded interleaving — the
// race flips — plus the reads whose last writer changed. A failed solve
// gets the minimal-unsat-subset verdict instead, and explain exits 1
// (the verdict is printed either way).
func cmdExplain(rest []string, f flags) error {
	src, name, f, err := resolveTarget(rest, f, "usage: clap explain <prog.mc|benchmark> [flags]")
	if err != nil {
		return err
	}
	rep, perr := flightPipeline(src, f, true)
	if rep == nil {
		return perr
	}
	fmt.Printf("explain %s (seed %d, model %s):\n", name, rep.Recording.Seed, f.model)
	if rep.Solution != nil {
		d, err := rep.ScheduleDiff()
		if err != nil {
			return err
		}
		d.Render(os.Stdout)
		return perr
	}
	if perr != nil {
		fmt.Printf("solve failed: %v\n", perr)
	}
	verdict, err := rep.ExplainUnsat(explain.MUSOptions{})
	if err != nil {
		return err
	}
	verdict.Render(os.Stdout)
	return perr
}
