// clap top: a fleet cockpit for a running clapd. It polls the daemon's
// GET /metrics (Prometheus text), decodes the exposition back into a
// registry snapshot, and renders a one-screen summary: job throughput
// counters, the live queue/worker gauges, and the stage latency
// histograms with their percentiles.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
)

func cmdTop(args []string, f flags) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	interval := fs.Duration("interval", 2*time.Second, "poll period")
	once := fs.Bool("once", false, "scrape and render a single snapshot, then exit")
	if err := fs.Parse(args); err != nil {
		return usagef("top: %v", err)
	}
	if fs.NArg() != 1 {
		return usagef("top: want exactly one daemon URL, got %d args", fs.NArg())
	}
	url := strings.TrimSuffix(fs.Arg(0), "/")

	p := newTopPoller(url, *interval, os.Stdout)
	if *once {
		return p.scrapeOnce()
	}

	// Interactive mode: poll until interrupted. The poller owns its
	// goroutine and hands it back through Stop — no leak on exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	p.clearScreen = true
	p.Start()
	<-sig
	p.Stop()
	return nil
}

// topPoller scrapes one daemon's /metrics on a fixed period. Start
// launches the loop; Stop signals it and waits for it to exit, so a
// stopped poller leaves no goroutine behind.
type topPoller struct {
	url         string
	interval    time.Duration
	out         io.Writer
	client      *http.Client
	clearScreen bool

	stop chan struct{}
	done chan struct{}
}

func newTopPoller(url string, interval time.Duration, out io.Writer) *topPoller {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &topPoller{
		url:      url,
		interval: interval,
		out:      out,
		client:   &http.Client{Timeout: 10 * time.Second},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the poll loop in its own goroutine.
func (p *topPoller) Start() {
	go p.run()
}

// Stop signals the loop and blocks until its goroutine has exited.
func (p *topPoller) Stop() {
	close(p.stop)
	<-p.done
}

func (p *topPoller) run() {
	defer close(p.done)
	// First scrape immediately, then on the ticker.
	if err := p.scrapeOnce(); err != nil {
		fmt.Fprintf(p.out, "scrape %s: %v\n", p.url, err)
	}
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			if err := p.scrapeOnce(); err != nil {
				// A restarting daemon is a normal sight from the cockpit:
				// report and keep polling.
				fmt.Fprintf(p.out, "scrape %s: %v\n", p.url, err)
			}
		}
	}
}

// scrapeOnce fetches /metrics, decodes it, and renders the summary.
func (p *topPoller) scrapeOnce() error {
	resp, err := p.client.Get(p.url + "/metrics")
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	s, err := obs.DecodeProm(data)
	if err != nil {
		return err
	}
	if p.clearScreen {
		fmt.Fprint(p.out, "\x1b[H\x1b[2J")
	}
	renderTop(p.out, p.url, s)
	return nil
}

// renderTop writes the one-screen summary. Decoded prom names are the
// sanitized (underscore) forms of the stable dotted names.
func renderTop(w io.Writer, url string, s obs.RegSnapshot) {
	c := func(name string) int64 { return s.Counters[obs.PromName(name)] }
	g := func(name string) int64 { return s.Gauges[obs.PromName(name)] }

	fmt.Fprintf(w, "clapd %s\n\n", url)
	fmt.Fprintf(w, "jobs     done %-6d retried %-6d poisoned %-6d executed %-6d accepted %d\n",
		c("clapd.jobs.done"), c("clapd.jobs.retried"), c("clapd.jobs.poisoned"),
		c("clapd.jobs.executed"), c("clapd.ingest.accepted"))
	fmt.Fprintf(w, "live     queue depth %-6d workers busy %d\n",
		g("clapd.queue.depth"), g("clapd.workers.busy"))

	names := make([]string, 0, len(s.Hists))
	for name := range s.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	wrote := false
	for _, name := range names {
		h := s.Hists[name]
		if h.Count == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintf(w, "\n%-32s %-8s %-10s %-10s %s\n", "latency", "count", "p50", "p90", "p99")
			wrote = true
		}
		fmt.Fprintf(w, "%-32s %-8d %-10s %-10s %s\n", name, h.Count,
			time.Duration(h.P50()), time.Duration(h.P90()), time.Duration(h.P99()))
	}
}
