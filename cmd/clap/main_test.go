package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/timeline"
)

// buildClap compiles the clap binary once per test run.
var buildClap = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "clapbin")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "clap")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		return "", &buildError{out: out, err: err}
	}
	return bin, nil
})

type buildError struct {
	out []byte
	err error
}

func (e *buildError) Error() string { return e.err.Error() + ": " + string(e.out) }

func clapBin(t *testing.T) string {
	t.Helper()
	bin, err := buildClap()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// noFailureProg never violates an assertion, so `clap reproduce` on it
// exhausts its seeds and exits nonzero.
const noFailureProg = `
int x;
func child() { x = 1; }
func main() {
	int h = spawn child();
	join(h);
}
`

const racyProg = `
int x;
func t1() {
	int r = x;
	x = r + 1;
}
func main() {
	int h = spawn t1();
	int r = x;
	x = r + 1;
	join(h);
	int v = x;
	assert(v == 2, "lost update");
}
`

// TestFailingRunStillWritesProfileAndMetrics pins the teardown contract:
// when the pipeline fails, the already-started CPU profile must still be
// stopped and flushed (a valid gzipped pprof file, not an empty or
// truncated one) and the -metrics-json report must still be written. The
// pre-fix code deferred teardown only on the success path out of main's
// os.Exit, losing both artifacts exactly when a failing run made them
// interesting.
func TestFailingRunStillWritesProfileAndMetrics(t *testing.T) {
	bin := clapBin(t)
	dir := t.TempDir()
	prog := filepath.Join(dir, "clean.mc")
	if err := os.WriteFile(prog, []byte(noFailureProg), 0o644); err != nil {
		t.Fatal(err)
	}
	profile := filepath.Join(dir, "cpu.pprof")
	metrics := filepath.Join(dir, "metrics.json")

	cmd := exec.Command(bin, "reproduce", prog, "-seeds", "5",
		"-cpuprofile", profile, "-metrics-json", metrics)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("reproduce of a failure-free program succeeded:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("clap did not run: %v\n%s", err, out)
	}

	prof, err := os.ReadFile(profile)
	if err != nil {
		t.Fatalf("CPU profile not written on the error path: %v", err)
	}
	if len(prof) == 0 {
		t.Fatal("CPU profile is empty: profiler never stopped/flushed")
	}
	if len(prof) < 2 || prof[0] != 0x1f || prof[1] != 0x8b {
		t.Fatalf("CPU profile is not gzipped pprof data (starts % x)", prof[:min(4, len(prof))])
	}

	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics report not written on the error path: %v", err)
	}
	rep, err := obs.DecodeReport(data)
	if err != nil {
		t.Fatalf("metrics report does not parse: %v", err)
	}
	if rep.Span("record") == nil {
		t.Error("failed run's report lacks the record span")
	}
}

// TestProfileFlushedWhenLaterProfilerFailsToStart pins the startProfiles
// unwind: -cpuprofile arms first, then -trace fails to open its file. The
// already-running CPU profiler must be stopped and flushed before the
// error is reported; pre-fix it was abandoned mid-flight, leaving a
// zero-byte profile behind.
func TestProfileFlushedWhenLaterProfilerFailsToStart(t *testing.T) {
	bin := clapBin(t)
	dir := t.TempDir()
	prog := filepath.Join(dir, "clean.mc")
	if err := os.WriteFile(prog, []byte(noFailureProg), 0o644); err != nil {
		t.Fatal(err)
	}
	profile := filepath.Join(dir, "cpu.pprof")
	badTrace := filepath.Join(dir, "no-such-dir", "trace.out")

	out, err := exec.Command(bin, "reproduce", prog, "-seeds", "5",
		"-cpuprofile", profile, "-trace", badTrace).CombinedOutput()
	if err == nil {
		t.Fatalf("run succeeded despite unopenable -trace file:\n%s", out)
	}
	prof, err := os.ReadFile(profile)
	if err != nil {
		t.Fatalf("CPU profile missing after failed -trace setup: %v", err)
	}
	if len(prof) < 2 || prof[0] != 0x1f || prof[1] != 0x8b {
		t.Fatalf("CPU profile not flushed when a later profiler failed to start (%d bytes)", len(prof))
	}
}

// exitCode runs the built clap with args and returns its exit code.
func exitCode(t *testing.T, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(clapBin(t), args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("clap did not run: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestExitCodes pins the documented convention shared by every
// subcommand: 0 on success, 1 when the pipeline or a required check
// fails, 2 on usage errors.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "clean.mc")
	if err := os.WriteFile(prog, []byte(noFailureProg), 0o644); err != nil {
		t.Fatal(err)
	}
	metrics := filepath.Join(dir, "metrics.json")
	racy := filepath.Join(dir, "racy.mc")
	if err := os.WriteFile(racy, []byte(racyProg), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := exitCode(t, "reproduce", racy, "-metrics-json", metrics); code != 0 {
		t.Fatalf("reproduce exit %d:\n%s", code, out)
	}

	usage := [][]string{
		{},                    // no subcommand
		{"bogus"},             // unknown subcommand
		{"stats"},             // missing operand
		{"timeline"},          // missing operand
		{"explain", "a", "b"}, // too many operands
		{"reproduce", racy, "-nosuchflag"},
	}
	for _, args := range usage {
		if code, out := exitCode(t, args...); code != 2 {
			t.Errorf("clap %v: exit %d, want 2 (usage)\n%s", args, code, out)
		}
	}

	failures := [][]string{
		{"stats", metrics, "-require", "no.such.span"},
		{"reproduce", prog, "-seeds", "5"},
		{"explain", prog, "-seeds", "5"},
		{"timeline", prog, "-seeds", "5"},
	}
	for _, args := range failures {
		if code, out := exitCode(t, args...); code != 1 {
			t.Errorf("clap %v: exit %d, want 1 (failure)\n%s", args, code, out)
		}
	}
}

// TestTimelineAndExplainCommands runs the flight-recorder subcommands on
// a racy source file: the timeline artifact must be valid trace-event
// JSON, byte-identical across two full pipeline runs, linked from the
// metrics report, and the explain report must show the schedule diff.
func TestTimelineAndExplainCommands(t *testing.T) {
	bin := clapBin(t)
	dir := t.TempDir()
	prog := filepath.Join(dir, "racy.mc")
	if err := os.WriteFile(prog, []byte(racyProg), 0o644); err != nil {
		t.Fatal(err)
	}
	tl1 := filepath.Join(dir, "tl1.json")
	tl2 := filepath.Join(dir, "tl2.json")
	metrics := filepath.Join(dir, "metrics.json")

	out, err := exec.Command(bin, "timeline", prog, "-o", tl1, "-metrics-json", metrics).CombinedOutput()
	if err != nil {
		t.Fatalf("timeline failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("lanes written")) {
		t.Errorf("timeline summary missing:\n%s", out)
	}
	data1, err := os.ReadFile(tl1)
	if err != nil {
		t.Fatal(err)
	}
	if err := timeline.Validate(data1); err != nil {
		t.Errorf("artifact is not valid trace-event JSON: %v", err)
	}

	if out, err := exec.Command(bin, "timeline", prog, "-o", tl2).CombinedOutput(); err != nil {
		t.Fatalf("second timeline run failed: %v\n%s", err, out)
	}
	data2, err := os.ReadFile(tl2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, data2) {
		t.Errorf("timeline JSON differs across runs on the same program: %d vs %d bytes", len(data1), len(data2))
	}

	// The metrics report links the artifact.
	mdata, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.DecodeReport(mdata)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Artifacts["timeline"] != tl1 {
		t.Errorf("report artifacts = %v, want timeline → %s", rep.Artifacts, tl1)
	}

	// Without -o: the ASCII rendering names the lanes.
	out, err = exec.Command(bin, "timeline", prog).CombinedOutput()
	if err != nil {
		t.Fatalf("ascii timeline failed: %v\n%s", err, out)
	}
	for _, lane := range []string{"recorded", "solved", "replay"} {
		if !bytes.Contains(out, []byte(lane)) {
			t.Errorf("ascii timeline missing %q lane:\n%s", lane, out)
		}
	}

	out, err = exec.Command(bin, "explain", prog).CombinedOutput()
	if err != nil {
		t.Fatalf("explain failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("schedule diff:")) {
		t.Errorf("explain output missing the schedule diff:\n%s", out)
	}
}

// TestMetricsReportAndStats runs a full reproduce with -metrics-json and
// checks the report has the five pipeline stage spans, every metric name
// is on the documented stable list, and `clap stats` both renders it
// deterministically and enforces -require.
func TestMetricsReportAndStats(t *testing.T) {
	bin := clapBin(t)
	dir := t.TempDir()
	prog := filepath.Join(dir, "racy.mc")
	if err := os.WriteFile(prog, []byte(racyProg), 0o644); err != nil {
		t.Fatal(err)
	}
	metrics := filepath.Join(dir, "metrics.json")
	out, err := exec.Command(bin, "reproduce", prog, "-metrics-json", metrics).CombinedOutput()
	if err != nil {
		t.Fatalf("reproduce failed: %v\n%s", err, out)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{"record", "symexec", "preprocess", "solve", "replay"} {
		if rep.Span(span) == nil {
			t.Errorf("report lacks the %s stage span", span)
		}
	}
	for name := range rep.Counters {
		if !obs.IsStable(name) {
			t.Errorf("counter %q is not in obs.StableNames", name)
		}
	}
	for name := range rep.Gauges {
		if !obs.IsStable(name) {
			t.Errorf("gauge %q is not in obs.StableNames", name)
		}
	}

	stats := func() []byte {
		t.Helper()
		out, err := exec.Command(bin, "stats", metrics,
			"-require", "record,symexec,preprocess,solve,replay").CombinedOutput()
		if err != nil {
			t.Fatalf("clap stats failed: %v\n%s", err, out)
		}
		return out
	}
	one, two := stats(), stats()
	if !bytes.Equal(one, two) {
		t.Errorf("clap stats output is nondeterministic:\n--- first\n%s--- second\n%s", one, two)
	}
	if out, err := exec.Command(bin, "stats", metrics, "-require", "no.such.span").CombinedOutput(); err == nil {
		t.Errorf("stats -require accepted a missing span:\n%s", out)
	}
}
