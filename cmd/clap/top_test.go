package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func fakeMetricsServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Add("clapd.jobs.done", 2)
	reg.Add("clapd.jobs.executed", 3)
	reg.Set("clapd.queue.depth", 1)
	reg.Set("clapd.workers.busy", 1)
	reg.Observe("stage.solve.ns", 5000)
	reg.Observe("stage.solve.ns", 1<<21)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write(obs.EncodeProm(reg.TakeSnapshot()))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTopScrapeRenders(t *testing.T) {
	srv := fakeMetricsServer(t)
	var buf bytes.Buffer
	p := newTopPoller(srv.URL, time.Second, &buf)
	if err := p.scrapeOnce(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"done 2", "executed 3", "queue depth 1", "workers busy 1",
		"stage_solve_ns", "p50", "p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestTopPollerNoGoroutineLeak pins the poller's lifecycle discipline:
// Stop joins the polling goroutine, and after closing idle connections
// the process goroutine count returns to its pre-Start level.
func TestTopPollerNoGoroutineLeak(t *testing.T) {
	srv := fakeMetricsServer(t)
	before := runtime.NumGoroutine()

	var buf bytes.Buffer
	p := newTopPoller(srv.URL, 5*time.Millisecond, &buf)
	p.Start()
	// Let several poll cycles run so ticker and HTTP goroutines exist.
	time.Sleep(30 * time.Millisecond)
	p.Stop()
	select {
	case <-p.done:
	default:
		t.Fatal("Stop returned before the poll goroutine exited")
	}
	p.client.CloseIdleConnections()

	// Idle HTTP conn goroutines unwind asynchronously; poll for settle.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines: %d before Start, %d after Stop — poller leaked", before, got)
	}
	if buf.Len() == 0 {
		t.Error("poller produced no output")
	}
}
