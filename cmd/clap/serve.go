// The service-side subcommands:
//
//	clap serve -dir D [-addr A]        run the reproduction daemon (clapd)
//	clap jobs -dir D                   list the job journal's current states
//	clap bundle <prog.mc|bench> [-o F] record locally and emit an uploadable
//	                                   clap-bundle/1 for POST /v1/jobs
//
// serve drains gracefully on SIGTERM/SIGINT: running jobs finish, queued
// jobs stay journaled for the next start, then the process exits. The
// CLAP_FAULTS environment variable arms fault-injection points
// ("point=fail|panic|crash[@after[:times]],...") before the daemon opens,
// which is how the chaos tests kill -9 a live daemon at exact program
// points and verify the restart recovers every accepted job.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"repro/internal/clapd"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// serveFlags are the daemon-specific knobs, parsed from the arguments
// parseFlags did not claim.
type serveFlags struct {
	dir       string
	addr      string
	workers   int
	queue     int
	attempts  int
	maxUpload int64
	retryBase time.Duration
	drainWait time.Duration
	rest      []string
}

func parseServeFlags(args []string) (serveFlags, error) {
	sf := serveFlags{addr: "127.0.0.1:0", drainWait: 30 * time.Second}
	i := 0
	need := func(name string) (string, error) {
		i++
		if i >= len(args) {
			return "", fmt.Errorf("flag %s needs a value", name)
		}
		return args[i], nil
	}
	for ; i < len(args); i++ {
		var err error
		switch a := args[i]; a {
		case "-dir":
			sf.dir, err = need(a)
		case "-addr":
			sf.addr, err = need(a)
		case "-workers":
			var v string
			if v, err = need(a); err == nil {
				sf.workers, err = strconv.Atoi(v)
			}
		case "-queue":
			var v string
			if v, err = need(a); err == nil {
				sf.queue, err = strconv.Atoi(v)
			}
		case "-attempts":
			var v string
			if v, err = need(a); err == nil {
				sf.attempts, err = strconv.Atoi(v)
			}
		case "-max-upload":
			var v string
			if v, err = need(a); err == nil {
				sf.maxUpload, err = strconv.ParseInt(v, 10, 64)
			}
		case "-retry-base":
			var v string
			if v, err = need(a); err == nil {
				sf.retryBase, err = time.ParseDuration(v)
			}
		case "-drain-timeout":
			var v string
			if v, err = need(a); err == nil {
				sf.drainWait, err = time.ParseDuration(v)
			}
		default:
			sf.rest = append(sf.rest, a)
		}
		if err != nil {
			return sf, err
		}
	}
	return sf, nil
}

// armFaultsFromEnv arms injection points named in CLAP_FAULTS. It runs
// before the daemon opens so even the open/recovery path can be crashed.
func armFaultsFromEnv() error {
	spec := os.Getenv("CLAP_FAULTS")
	if spec == "" {
		return nil
	}
	if err := faultinject.ArmEnv(spec); err != nil {
		return usagef("CLAP_FAULTS: %v", err)
	}
	fmt.Fprintf(os.Stderr, "clap: fault injection armed: %s\n", spec)
	return nil
}

// cmdServe runs the reproduction daemon until SIGTERM/SIGINT, then
// drains: stop admitting, finish running jobs, keep queued jobs
// journaled for the next start.
func cmdServe(rest []string, f flags) error {
	sf, err := parseServeFlags(rest)
	if err != nil {
		return usagef("%v", err)
	}
	if sf.dir == "" || len(sf.rest) != 0 {
		return usagef("usage: clap serve -dir DIR [-addr HOST:PORT] [-workers N] [-queue N] [-attempts N] [-max-upload BYTES] [-retry-base D] [-drain-timeout D] [-timeout D]")
	}
	if err := armFaultsFromEnv(); err != nil {
		return err
	}
	d, err := clapd.Open(clapd.Config{
		Dir:            sf.dir,
		Workers:        sf.workers,
		QueueDepth:     sf.queue,
		MaxAttempts:    sf.attempts,
		MaxUploadBytes: sf.maxUpload,
		JobTimeout:     f.timeout,
		RetryBase:      sf.retryBase,
		Obs:            f.tr,
		LogWriter:      os.Stderr,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", sf.addr)
	if err != nil {
		dctx, cancel := context.WithTimeout(context.Background(), sf.drainWait)
		defer cancel()
		d.Shutdown(dctx)
		return err
	}
	// The ready line carries the bound address (ports may be ephemeral)
	// and is what scripts wait for before ingesting.
	fmt.Printf("clapd listening on http://%s (state in %s)\n", ln.Addr(), sf.dir)

	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "clap: signal received, draining")
	case err := <-serveErr:
		dctx, cancel := context.WithTimeout(context.Background(), sf.drainWait)
		defer cancel()
		d.Shutdown(dctx)
		return err
	}

	dctx, cancel := context.WithTimeout(context.Background(), sf.drainWait)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "clap: http shutdown:", err)
	}
	if err := d.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("clapd drained cleanly")
	return nil
}

// cmdJobs prints the job journal's current states — one line per job,
// latest state wins, ordered by digest so the output is deterministic
// for golden tests (timestamps never appear).
func cmdJobs(rest []string, f flags) error {
	sf, err := parseServeFlags(rest)
	if err != nil {
		return usagef("%v", err)
	}
	if sf.dir == "" || len(sf.rest) != 0 {
		return usagef("usage: clap jobs -dir DIR [-v]")
	}
	entries, rec, err := clapd.ReadJournal(sf.dir)
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Digest < entries[j].Digest })
	counts := map[clapd.State]int{}
	fmt.Printf("%-9s  %-7s  %-12s  %s\n", "STATE", "ATTEMPT", "DIGEST", "ERROR")
	for _, e := range entries {
		counts[e.State]++
		errMsg := e.Err
		if errMsg == "" {
			errMsg = "-"
		}
		digest := e.Digest[:12]
		if f.verbose {
			digest = e.Digest
		}
		fmt.Printf("%-9s  %-7d  %-12s  %s\n", e.State, e.Attempt, digest, errMsg)
	}
	fmt.Printf("%d jobs: %d queued, %d running, %d retrying, %d done, %d poisoned\n",
		len(entries), counts[clapd.StateQueued], counts[clapd.StateRunning],
		counts[clapd.StateRetrying], counts[clapd.StateDone], counts[clapd.StatePoisoned])
	if rec.DroppedBytes > 0 {
		fmt.Printf("journal tail damaged: %dB dropped (%s)\n", rec.DroppedBytes, rec.DroppedReason)
	}
	return nil
}

// cmdBundle records a failure locally and emits the uploadable bundle —
// the client half of the service. -truncate-log N ships a deliberately
// damaged framed log (the last N bytes cut), exercising the server's
// salvage path; the smoke test uses it to play the crashing client.
func cmdBundle(rest []string, f flags) error {
	truncate := 0
	var args []string
	for i := 0; i < len(rest); i++ {
		if rest[i] == "-truncate-log" {
			i++
			if i >= len(rest) {
				return usagef("flag -truncate-log needs a value")
			}
			n, err := strconv.Atoi(rest[i])
			if err != nil || n < 0 {
				return usagef("bad -truncate-log value %q", rest[i])
			}
			truncate = n
			continue
		}
		args = append(args, rest[i])
	}
	src, name, f, err := resolveTarget(args, f, "usage: clap bundle <prog.mc|benchmark> [-o FILE] [-truncate-log N] [flags]")
	if err != nil {
		return err
	}
	prog, err := core.Compile(src)
	if err != nil {
		return err
	}
	rec, err := core.Record(prog, core.RecordOptions{
		Model: f.model, Inputs: f.inputs, Seed: f.seed, SeedLimit: f.seeds,
		Deadline: f.timeout, Obs: f.tr,
	})
	if err != nil {
		return err
	}
	solverName := f.solver
	if solverName == "seq" {
		// The daemon defaults to the portfolio; only explicit choices ride
		// along. (parseFlags defaults -solver to seq for the local commands.)
		solverName = ""
	}
	b := clapd.FromRecording(rec, src, name, solverName)
	if truncate > 0 {
		if truncate >= len(b.Log) {
			return usagef("-truncate-log %d would remove the whole %dB log", truncate, len(b.Log))
		}
		b.Log = b.Log[:len(b.Log)-truncate]
		fmt.Fprintf(os.Stderr, "clap: bundle log truncated by %dB (damaged upload for salvage testing)\n", truncate)
	}
	data, err := b.Encode()
	if err != nil {
		return err
	}
	if f.out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(f.out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "clap: bundle %s written to %s (%dB, digest %.12s, seed %d, %d log events)\n",
		name, f.out, len(data), b.Digest(), rec.Seed, rec.Log.EventCount())
	return nil
}
