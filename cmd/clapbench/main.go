// Command clapbench regenerates the paper's evaluation tables.
//
// Usage:
//
//	clapbench -table 1            Table 1: bug-reproduction effectiveness
//	clapbench -table 2            Table 2: runtime/space overhead vs LEAP
//	clapbench -table 3            Table 3: parallel constraint solving
//	clapbench -table all          everything
//	clapbench -bench <name,...>   restrict to specific benchmarks
//	clapbench -runs N             Table 2 repetitions (default 5)
//	clapbench -workers N          Table 3 validation workers (default 8,
//	                              the paper's eight-core machine)
//	clapbench -deadline 30s       Table 3 per-benchmark parallel deadline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 3, all")
	names := flag.String("bench", "", "comma-separated benchmark subset (default: all)")
	runs := flag.Int("runs", 5, "Table 2 repetitions")
	workers := flag.Int("workers", 8, "Table 3 validation workers")
	deadline := flag.Duration("deadline", 60*time.Second, "Table 3 per-benchmark parallel deadline")
	flag.Parse()

	selected := bench.All()
	if *names != "" {
		selected = nil
		for _, n := range strings.Split(*names, ",") {
			b, ok := bench.ByName(strings.TrimSpace(n))
			if !ok {
				fmt.Fprintf(os.Stderr, "clapbench: unknown benchmark %q\n", n)
				os.Exit(1)
			}
			selected = append(selected, b)
		}
	}

	want := func(t string) bool { return *table == "all" || *table == t }

	if want("1") {
		fmt.Println("=== Table 1: bug reproduction effectiveness (sequential solver + verified replay) ===")
		rows := bench.Table1(selected)
		bench.FormatTable1(os.Stdout, rows)
		fmt.Println()
	}
	if want("2") {
		fmt.Println("=== Table 2: runtime and space overhead, CLAP vs LEAP (median of", *runs, "runs) ===")
		subset := bench.Table2Programs
		if *names != "" {
			subset = nil
			for _, b := range selected {
				subset = append(subset, b.Name)
			}
		}
		rows := bench.Table2(subset, *runs)
		bench.FormatTable2(os.Stdout, rows)
		fmt.Println()
	}
	if want("3") {
		fmt.Printf("=== Table 3: parallel constraint solving (%d workers) ===\n", *workers)
		rows := bench.Table3(selected, *workers, *deadline)
		bench.FormatTable3(os.Stdout, rows)
		fmt.Println()
	}
}
