// Command benchjson measures the offline pipeline per stage over the
// paper's eleven evaluation programs and writes a machine-readable
// BENCH_<date>T<hhmmss>.json snapshot (timestamped so two same-day runs
// never clobber each other), so perf changes leave a committed trajectory
// that successive snapshots can be diffed against.
//
// It drives the exact same stage runners (internal/bench.Stage*) as the
// repo-root `go test -bench BenchmarkStages` benchmarks through
// testing.Benchmark, so the JSON numbers and the -bench numbers measure
// identical code. On top of the stages it times the end-to-end portfolio
// solve (best of -reps repetitions).
//
// Usage:
//
//	go run ./cmd/benchjson                     # current pipeline
//	go run ./cmd/benchjson -baseline -o BENCH_baseline.json
//	go run ./cmd/benchjson -run peterson,racey # subset
//
// -baseline measures the pre-optimization configuration: constraint
// preprocessing off and the portfolio as the old serial
// sequential→parallel→CNF ladder. Committing a baseline snapshot next to a
// current one is how `make bench-baseline` + `make bench` document a perf
// PR's effect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/parsolve"
	"repro/internal/solver"
)

// programs is the paper's eleven evaluation programs: the Table 1 set plus
// racey, the Table 3 stress test.
var programs = []string{
	"sim_race", "pbzip2", "aget", "bbuf", "swarm", "pfscan", "apache",
	"bakery", "dekker", "peterson", "racey",
}

// stageIters fixes each stage's iteration count (testing's -benchtime in
// "Nx" form). Counts, not durations: StagePreprocess rebuilds the system
// off the clock every iteration, so a duration-based budget on a
// microsecond-scale stage would ramp to thousands of iterations and spend
// minutes in untimed setup.
var stageIters = map[string]string{
	"build":      "10x",
	"preprocess": "20x",
	"sequential": "3x",
	"parsolve":   "3x",
	"cnf":        "3x",
}

// StageResult is one stage's measurement for one benchmark.
type StageResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Skipped marks stages that did not produce a measurement: the CNF
	// solver refusing an oversized system, or the bounded generator not
	// reaching the bug (racey, the paper's Table 3 negative result).
	Skipped bool `json:"skipped,omitempty"`
	// Counters holds the stage's per-stage counters under their stable
	// dotted names (internal/obs/names.go): search effort for the solver
	// stages, pruning counts for preprocess.
	Counters map[string]float64 `json:"counters,omitempty"`
	// Candidate-schedule counters, parsolve stage only. Kept for diffing
	// against clap-bench/1 snapshots; duplicates Counters["solver.par.*"].
	Generated float64 `json:"generated,omitempty"`
	Validated float64 `json:"validated,omitempty"`
	Valid     float64 `json:"valid,omitempty"`
}

// StaticJSON summarizes the static lockset / happens-before analysis and
// its effect on constraint preprocessing for one benchmark.
type StaticJSON struct {
	SharedVars    int `json:"shared_vars"`
	ProtectedVars int `json:"protected_vars"`
	AccessSites   int `json:"access_sites"`
	Races         int `json:"races"`
	LockCycles    int `json:"lock_cycles"`
	// Frw read→write candidate edges before and after preprocessing, and
	// how many of the pruned edges the mutual-exclusion rule removed.
	// Zero in baseline mode, which does not preprocess.
	FrwCandsBefore int `json:"frw_cands_before,omitempty"`
	FrwCandsAfter  int `json:"frw_cands_after,omitempty"`
	PrunedMutex    int `json:"pruned_mutex,omitempty"`
}

// BenchResult is one benchmark's full row.
type BenchResult struct {
	Name        string                 `json:"name"`
	SAPs        int                    `json:"saps"`
	Constraints int                    `json:"constraints"`
	Variables   int                    `json:"variables"`
	Static      *StaticJSON            `json:"static,omitempty"`
	Stages      map[string]StageResult `json:"stages"`
	// PortfolioWallNs is the best end-to-end portfolio solve wall time
	// (system build off the clock, preprocessing on it).
	PortfolioWallNs int64 `json:"portfolio_wall_ns"`
	// PortfolioSolver is the winning stage ("sequential", "parallel",
	// "cnf") of the best repetition, or "" when no repetition solved.
	PortfolioSolver string `json:"portfolio_solver"`
	Err             string `json:"err,omitempty"`
}

// Report is the whole snapshot.
type Report struct {
	Schema     string        `json:"schema"`
	Date       string        `json:"date"`
	Mode       string        `json:"mode"`
	GoVersion  string        `json:"go"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

func main() {
	testing.Init()
	var (
		out      = flag.String("o", "", "output file (default BENCH_<date>T<hhmmss>.json, or BENCH_baseline.json with -baseline)")
		baseline = flag.Bool("baseline", false, "measure the pre-optimization pipeline: no preprocessing, serial portfolio ladder")
		run      = flag.String("run", "", "comma-separated benchmark subset (default: all eleven)")
		reps     = flag.Int("reps", 3, "portfolio repetitions (best wall time wins)")
	)
	flag.Parse()

	names := programs
	if *run != "" {
		names = strings.Split(*run, ",")
	}
	mode := "current"
	if *baseline {
		mode = "baseline"
	}
	path := *out
	if path == "" {
		if *baseline {
			path = "BENCH_baseline.json"
		} else {
			// Include the time of day so two same-day runs never clobber
			// each other's snapshot.
			path = "BENCH_" + time.Now().Format("2006-01-02T150405") + ".json"
		}
	}

	rep := Report{
		Schema:     "clap-bench/2",
		Date:       time.Now().Format("2006-01-02"),
		Mode:       mode,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "== %s\n", name)
		rep.Benchmarks = append(rep.Benchmarks, measure(name, *baseline, *reps))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks, mode %s)\n", path, len(rep.Benchmarks), mode)
}

func measure(name string, baseline bool, reps int) BenchResult {
	res := BenchResult{Name: name, Stages: map[string]StageResult{}}
	b, ok := bench.ByName(name)
	if !ok {
		res.Err = "unknown benchmark"
		return res
	}
	p, err := bench.Prepare(b)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.SAPs = p.Stats.SAPs
	res.Constraints = p.Stats.Clauses
	res.Variables = p.Stats.Variables

	sys, err := bench.FreshSystem(p, baseline)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if static := p.Recording.Static; static != nil {
		st := static.ComputeStats()
		res.Static = &StaticJSON{
			SharedVars:    st.SharedVars,
			ProtectedVars: st.ProtectedVars,
			AccessSites:   st.AccessSites,
			Races:         st.Races,
			LockCycles:    st.Cycles,
		}
		if sys.Pre != nil {
			res.Static.FrwCandsBefore = sys.Pre.CandsBefore
			res.Static.FrwCandsAfter = sys.Pre.CandsAfter
			res.Static.PrunedMutex = sys.Pre.PrunedMutex
		}
	}

	stages := map[string]func(*testing.B){
		"build":      bench.StageBuild(p),
		"sequential": bench.StageSequential(p, sys),
		"parsolve":   bench.StageParsolve(p, sys),
		"cnf":        bench.StageCNF(p, sys),
	}
	if !baseline {
		// The baseline pipeline has no preprocessing stage to measure.
		stages["preprocess"] = bench.StagePreprocess(p)
	}
	for _, stage := range []string{"build", "preprocess", "sequential", "parsolve", "cnf"} {
		fn, ok := stages[stage]
		if !ok {
			continue
		}
		fmt.Fprintf(os.Stderr, "   %-11s", stage)
		res.Stages[stage] = runStage(stage, fn)
		sr := res.Stages[stage]
		if sr.Skipped {
			fmt.Fprintf(os.Stderr, " skipped\n")
		} else {
			fmt.Fprintf(os.Stderr, " %12.0f ns/op %10d allocs/op\n", sr.NsPerOp, sr.AllocsPerOp)
		}
	}

	wall, winner := portfolioWall(p, baseline, reps)
	res.PortfolioWallNs = wall.Nanoseconds()
	res.PortfolioSolver = winner
	fmt.Fprintf(os.Stderr, "   portfolio   %12d ns (%s)\n", res.PortfolioWallNs, winner)
	return res
}

// runStage measures one stage through testing.Benchmark with the stage's
// fixed iteration count. A zero-iteration result means the runner skipped
// (b.Skipf) or failed (b.Fatal); either way there is no measurement.
func runStage(stage string, fn func(*testing.B)) StageResult {
	if iters, ok := stageIters[stage]; ok {
		if err := flag.Set("test.benchtime", iters); err != nil {
			panic(err)
		}
	}
	r := testing.Benchmark(fn)
	if r.N == 0 {
		return StageResult{Skipped: true}
	}
	sr := StageResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Generated:   r.Extra["solver.par.generated"],
		Validated:   r.Extra["solver.par.validated"],
		Valid:       r.Extra["solver.par.valid"],
	}
	if len(r.Extra) > 0 {
		sr.Counters = map[string]float64{}
		for k, v := range r.Extra {
			sr.Counters[k] = v
		}
	}
	return sr
}

// portfolioWall times the end-to-end portfolio solve: a fresh system build
// per repetition off the clock, then preprocessing (unless baseline) plus
// the portfolio on the clock. Best wall time of the solving repetitions
// wins; the winner is the trail's first solved attempt.
func portfolioWall(p *bench.Prepared, baseline bool, reps int) (time.Duration, string) {
	best := time.Duration(-1)
	winner := ""
	for i := 0; i < reps; i++ {
		sys, err := p.Recording.Analyze()
		if err != nil {
			continue
		}
		t0 := time.Now()
		sol, attempts, err := core.RunPortfolio(sys, core.ReproduceOptions{
			NoPreprocess:    baseline,
			SerialPortfolio: baseline,
			SeqOptions: solver.Options{MaxPreemptions: p.Bench.MaxPreemptions},
			// Workers defaults to GOMAXPROCS: the portfolio wall is an
			// end-to-end number on this machine, not the fixed 8-worker
			// Table 3 configuration the parsolve stage measures.
			ParOptions: parsolve.Options{MaxBound: p.Bench.ParallelBound},
			Deadline: 20 * time.Second,
		})
		wall := time.Since(t0)
		if err != nil || sol == nil {
			continue
		}
		if best < 0 || wall < best {
			best = wall
			winner = ""
			for _, a := range attempts {
				if a.Outcome == "solved" {
					winner = a.Solver
					break
				}
			}
		}
	}
	if best < 0 {
		return 0, ""
	}
	return best, winner
}
