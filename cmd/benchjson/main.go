// Command benchjson measures the offline pipeline per stage over the
// paper's eleven evaluation programs and writes a machine-readable
// BENCH_<date>T<hhmmss>.json snapshot (timestamped so two same-day runs
// never clobber each other), so perf changes leave a committed trajectory
// that successive snapshots can be diffed against.
//
// It drives the exact same stage runners (internal/bench.Stage*) as the
// repo-root `go test -bench BenchmarkStages` benchmarks through
// testing.Benchmark, so the JSON numbers and the -bench numbers measure
// identical code. On top of the stages it times the end-to-end portfolio
// solve (best of -reps repetitions).
//
// Usage:
//
//	go run ./cmd/benchjson                     # current pipeline
//	go run ./cmd/benchjson -baseline -o BENCH_baseline.json
//	go run ./cmd/benchjson -run peterson,racey # subset
//	go run ./cmd/benchjson -compare old.json new.json
//
// -compare diffs two snapshots: it prints a per-benchmark per-stage
// speedup table (old ns/op over new, with the alloc ratio alongside) for
// every stage measured in both, and exits non-zero when any such stage
// regressed by more than 10% in ns/op — the perf gate `make bench-compare`
// runs in CI. When both snapshots carry per-stage latency histograms an
// informational p99 line follows each stage row; the gate itself stays
// on mean ns/op.
//
// -baseline measures the pre-optimization configuration: constraint
// preprocessing off and the portfolio as the old serial
// sequential→parallel→CNF ladder. Committing a baseline snapshot next to a
// current one is how `make bench-baseline` + `make bench` document a perf
// PR's effect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parsolve"
	"repro/internal/solver"
)

// programs is the paper's eleven evaluation programs: the Table 1 set plus
// racey, the Table 3 stress test.
var programs = []string{
	"sim_race", "pbzip2", "aget", "bbuf", "swarm", "pfscan", "apache",
	"bakery", "dekker", "peterson", "racey",
}

// stageIters fixes each stage's iteration count (testing's -benchtime in
// "Nx" form). Counts, not durations: StagePreprocess rebuilds the system
// off the clock every iteration, so a duration-based budget on a
// microsecond-scale stage would ramp to thousands of iterations and spend
// minutes in untimed setup.
var stageIters = map[string]string{
	"build":      "10x",
	"preprocess": "20x",
	"sequential": "3x",
	"parsolve":   "3x",
	"cnf":        "3x",
}

// StageResult is one stage's measurement for one benchmark.
type StageResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Skipped marks stages that did not produce a measurement: the CNF
	// solver refusing an oversized system, or the bounded generator not
	// reaching the bug (racey, the paper's Table 3 negative result).
	Skipped bool `json:"skipped,omitempty"`
	// Counters holds the stage's per-stage counters under their stable
	// dotted names (internal/obs/names.go): search effort for the solver
	// stages, pruning counts for preprocess.
	Counters map[string]float64 `json:"counters,omitempty"`
	// Candidate-schedule counters, parsolve stage only. Kept for diffing
	// against clap-bench/1 snapshots; duplicates Counters["solver.par.*"].
	Generated float64 `json:"generated,omitempty"`
	Validated float64 `json:"validated,omitempty"`
	Valid     float64 `json:"valid,omitempty"`
	// LatencyHist is the per-iteration wall-time distribution
	// (stage.bench.<stage>.ns), so -compare can diff tail latency, not
	// just the mean ns/op. Additive to clap-bench/2; older snapshots
	// simply lack it.
	LatencyHist *obs.HistSnapshot `json:"latency_hist,omitempty"`
}

// StaticJSON summarizes the static lockset / happens-before analysis and
// its effect on constraint preprocessing for one benchmark.
type StaticJSON struct {
	SharedVars    int `json:"shared_vars"`
	ProtectedVars int `json:"protected_vars"`
	AccessSites   int `json:"access_sites"`
	Races         int `json:"races"`
	LockCycles    int `json:"lock_cycles"`
	// Frw read→write candidate edges before and after preprocessing, and
	// how many of the pruned edges the mutual-exclusion rule removed.
	// Zero in baseline mode, which does not preprocess.
	FrwCandsBefore int `json:"frw_cands_before,omitempty"`
	FrwCandsAfter  int `json:"frw_cands_after,omitempty"`
	PrunedMutex    int `json:"pruned_mutex,omitempty"`
}

// BenchResult is one benchmark's full row.
type BenchResult struct {
	Name        string                 `json:"name"`
	SAPs        int                    `json:"saps"`
	Constraints int                    `json:"constraints"`
	Variables   int                    `json:"variables"`
	Static      *StaticJSON            `json:"static,omitempty"`
	Stages      map[string]StageResult `json:"stages"`
	// PortfolioWallNs is the best end-to-end portfolio solve wall time
	// (system build off the clock, preprocessing on it).
	PortfolioWallNs int64 `json:"portfolio_wall_ns"`
	// PortfolioSolver is the winning stage ("sequential", "parallel",
	// "cnf") of the best repetition, or "" when no repetition solved.
	PortfolioSolver string `json:"portfolio_solver"`
	Err             string `json:"err,omitempty"`
}

// Report is the whole snapshot.
type Report struct {
	Schema     string        `json:"schema"`
	Date       string        `json:"date"`
	Mode       string        `json:"mode"`
	GoVersion  string        `json:"go"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

func main() {
	testing.Init()
	var (
		out      = flag.String("o", "", "output file (default BENCH_<date>T<hhmmss>.json, or BENCH_baseline.json with -baseline)")
		baseline = flag.Bool("baseline", false, "measure the pre-optimization pipeline: no preprocessing, serial portfolio ladder")
		run      = flag.String("run", "", "comma-separated benchmark subset (default: all eleven)")
		reps     = flag.Int("reps", 3, "portfolio repetitions (best wall time wins)")
		compare  = flag.Bool("compare", false, "diff two snapshots (old.json new.json); exit 1 on a >10% ns/op stage regression")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two snapshot files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1)))
	}

	names := programs
	if *run != "" {
		names = strings.Split(*run, ",")
	}
	mode := "current"
	if *baseline {
		mode = "baseline"
	}
	path := *out
	if path == "" {
		if *baseline {
			path = "BENCH_baseline.json"
		} else {
			// Include the time of day so two same-day runs never clobber
			// each other's snapshot.
			path = "BENCH_" + time.Now().Format("2006-01-02T150405") + ".json"
		}
	}

	rep := Report{
		Schema:     "clap-bench/2",
		Date:       time.Now().Format("2006-01-02"),
		Mode:       mode,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "== %s\n", name)
		rep.Benchmarks = append(rep.Benchmarks, measure(name, *baseline, *reps))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks, mode %s)\n", path, len(rep.Benchmarks), mode)
}

func measure(name string, baseline bool, reps int) BenchResult {
	res := BenchResult{Name: name, Stages: map[string]StageResult{}}
	b, ok := bench.ByName(name)
	if !ok {
		res.Err = "unknown benchmark"
		return res
	}
	p, err := bench.Prepare(b)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	// The stage runners feed each timed iteration into this registry's
	// stage.bench.<stage>.ns histograms.
	lat := obs.NewRegistry()
	p.Lat = lat
	res.SAPs = p.Stats.SAPs
	res.Constraints = p.Stats.Clauses
	res.Variables = p.Stats.Variables

	sys, err := bench.FreshSystem(p, baseline)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if static := p.Recording.Static; static != nil {
		st := static.ComputeStats()
		res.Static = &StaticJSON{
			SharedVars:    st.SharedVars,
			ProtectedVars: st.ProtectedVars,
			AccessSites:   st.AccessSites,
			Races:         st.Races,
			LockCycles:    st.Cycles,
		}
		if sys.Pre != nil {
			res.Static.FrwCandsBefore = sys.Pre.CandsBefore
			res.Static.FrwCandsAfter = sys.Pre.CandsAfter
			res.Static.PrunedMutex = sys.Pre.PrunedMutex
		}
	}

	stages := map[string]func(*testing.B){
		"build":      bench.StageBuild(p),
		"sequential": bench.StageSequential(p, sys),
		"parsolve":   bench.StageParsolve(p, sys),
		"cnf":        bench.StageCNF(p, sys),
	}
	if !baseline {
		// The baseline pipeline has no preprocessing stage to measure.
		stages["preprocess"] = bench.StagePreprocess(p)
	}
	for _, stage := range []string{"build", "preprocess", "sequential", "parsolve", "cnf"} {
		fn, ok := stages[stage]
		if !ok {
			continue
		}
		fmt.Fprintf(os.Stderr, "   %-11s", stage)
		sr := runStage(stage, fn)
		if hs, ok := lat.TakeSnapshot().Hists["stage.bench."+stage+".ns"]; ok && hs.Count > 0 {
			sr.LatencyHist = &hs
		}
		res.Stages[stage] = sr
		if sr.Skipped {
			fmt.Fprintf(os.Stderr, " skipped\n")
		} else {
			fmt.Fprintf(os.Stderr, " %12.0f ns/op %10d allocs/op\n", sr.NsPerOp, sr.AllocsPerOp)
		}
	}

	wall, winner := portfolioWall(p, baseline, reps)
	res.PortfolioWallNs = wall.Nanoseconds()
	res.PortfolioSolver = winner
	fmt.Fprintf(os.Stderr, "   portfolio   %12d ns (%s)\n", res.PortfolioWallNs, winner)
	return res
}

// runStage measures one stage through testing.Benchmark with the stage's
// fixed iteration count. A zero-iteration result means the runner skipped
// (b.Skipf) or failed (b.Fatal); either way there is no measurement.
func runStage(stage string, fn func(*testing.B)) StageResult {
	if iters, ok := stageIters[stage]; ok {
		if err := flag.Set("test.benchtime", iters); err != nil {
			panic(err)
		}
	}
	r := testing.Benchmark(fn)
	if r.N == 0 {
		return StageResult{Skipped: true}
	}
	sr := StageResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Generated:   r.Extra["solver.par.generated"],
		Validated:   r.Extra["solver.par.validated"],
		Valid:       r.Extra["solver.par.valid"],
	}
	if len(r.Extra) > 0 {
		sr.Counters = map[string]float64{}
		for k, v := range r.Extra {
			sr.Counters[k] = v
		}
	}
	return sr
}

// regressionTolerance is the relative ns/op growth -compare accepts per
// stage before failing: benchmark noise sits well under it, a real perf
// regression does not.
const regressionTolerance = 0.10

// loadReport reads and decodes a benchjson snapshot. Both clap-bench/1
// and clap-bench/2 snapshots decode: the fields -compare consumes are
// common to both schemas.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(r.Schema, "clap-bench/") {
		return nil, fmt.Errorf("%s: schema %q is not a benchjson snapshot", path, r.Schema)
	}
	return &r, nil
}

// runCompare prints the per-benchmark per-stage speedup table between two
// snapshots and returns the process exit code: 1 when any stage measured
// in both snapshots regressed by more than regressionTolerance in ns/op,
// 0 otherwise.
func runCompare(oldPath, newPath string) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if oldRep.Mode != newRep.Mode {
		fmt.Fprintf(os.Stderr, "benchjson: comparing mode %q against %q — speedups reflect the mode change too\n",
			oldRep.Mode, newRep.Mode)
	}
	_, regressions := compareReports(os.Stdout, oldRep, newRep)
	if regressions > 0 {
		return 1
	}
	return 0
}

// canonicalStages fixes the display order of the pipeline's own stages;
// stage names present in a snapshot but not listed here (from a newer or
// older benchjson) sort after them alphabetically.
var canonicalStages = []string{"build", "preprocess", "sequential", "parsolve", "cnf"}

// stageUnion returns every stage name appearing in either map: the
// canonical pipeline order first, then unknown names sorted. Snapshots
// from different benchjson versions therefore diff without erroring —
// a stage only one side has shows up as added/removed, not a crash.
func stageUnion(a, b map[string]StageResult) []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range canonicalStages {
		_, ina := a[s]
		_, inb := b[s]
		if ina || inb {
			names = append(names, s)
			seen[s] = true
		}
	}
	var extra []string
	for s := range a {
		if !seen[s] {
			extra = append(extra, s)
			seen[s] = true
		}
	}
	for s := range b {
		if !seen[s] {
			extra = append(extra, s)
			seen[s] = true
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// compareReports writes the per-benchmark per-stage speedup table and
// returns how many stages were compared and how many regressed beyond
// regressionTolerance. Stages present in only one snapshot are reported
// as "added"/"removed" and never gate; stages present in both but skipped
// on one side are likewise reported without gating — a stage newly
// skipped is a behavior change for the equivalence tests, not the perf
// gate, to catch.
func compareReports(w io.Writer, oldRep, newRep *Report) (compared, regressions int) {
	oldBy := map[string]BenchResult{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}

	fmt.Fprintf(w, "%-10s %-11s %14s %14s %8s %8s  %s\n",
		"benchmark", "stage", "old ns/op", "new ns/op", "speedup", "allocs", "verdict")
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-10s only in new snapshot\n", nb.Name)
			continue
		}
		for _, stage := range stageUnion(ob.Stages, nb.Stages) {
			ns, nok := nb.Stages[stage]
			osr, ook := ob.Stages[stage]
			switch {
			case !ook:
				fmt.Fprintf(w, "%-10s %-11s %14s %14.0f %8s %8s  added\n",
					nb.Name, stage, "-", ns.NsPerOp, "-", "-")
				continue
			case !nok:
				fmt.Fprintf(w, "%-10s %-11s %14.0f %14s %8s %8s  removed\n",
					nb.Name, stage, osr.NsPerOp, "-", "-", "-")
				continue
			}
			oldOK := !osr.Skipped
			newOK := !ns.Skipped
			switch {
			case !oldOK && !newOK:
				continue // unmeasured on both sides: nothing to say
			case !oldOK:
				fmt.Fprintf(w, "%-10s %-11s %14s %14.0f %8s %8s  no old measurement\n",
					nb.Name, stage, "-", ns.NsPerOp, "-", "-")
				continue
			case !newOK:
				fmt.Fprintf(w, "%-10s %-11s %14.0f %14s %8s %8s  skipped in new snapshot\n",
					nb.Name, stage, osr.NsPerOp, "-", "-", "-")
				continue
			}
			compared++
			speedup := osr.NsPerOp / ns.NsPerOp
			allocs := "-"
			if ns.AllocsPerOp > 0 {
				allocs = fmt.Sprintf("%.2fx", float64(osr.AllocsPerOp)/float64(ns.AllocsPerOp))
			}
			verdict := "ok"
			if ns.NsPerOp > osr.NsPerOp*(1+regressionTolerance) {
				verdict = fmt.Sprintf("REGRESSION (+%.0f%%)", (ns.NsPerOp/osr.NsPerOp-1)*100)
				regressions++
			}
			fmt.Fprintf(w, "%-10s %-11s %14.0f %14.0f %7.2fx %8s  %s\n",
				nb.Name, stage, osr.NsPerOp, ns.NsPerOp, speedup, allocs, verdict)
			// Tail-latency diff, informational only: the gate stays on
			// mean ns/op. Printed when both snapshots carry histograms
			// (clap-bench/2 with latency_hist); older snapshots lack them.
			if osr.LatencyHist != nil && ns.LatencyHist != nil {
				oldP99 := osr.LatencyHist.P99()
				newP99 := ns.LatencyHist.P99()
				ratio := "-"
				if newP99 > 0 {
					ratio = fmt.Sprintf("%.2fx", float64(oldP99)/float64(newP99))
				}
				fmt.Fprintf(w, "%-10s %-11s %14d %14d %8s %8s  p99 latency\n",
					"", "  p99", oldP99, newP99, ratio, "-")
			}
		}
	}
	fmt.Fprintf(w, "\n%d stages compared, %d regressions (tolerance %.0f%%)\n",
		compared, regressions, regressionTolerance*100)
	return compared, regressions
}

// portfolioWall times the end-to-end portfolio solve: a fresh system build
// per repetition off the clock, then preprocessing (unless baseline) plus
// the portfolio on the clock. Best wall time of the solving repetitions
// wins; the winner is the trail's first solved attempt.
func portfolioWall(p *bench.Prepared, baseline bool, reps int) (time.Duration, string) {
	best := time.Duration(-1)
	winner := ""
	for i := 0; i < reps; i++ {
		sys, err := p.Recording.Analyze()
		if err != nil {
			continue
		}
		t0 := time.Now()
		sol, attempts, err := core.RunPortfolio(sys, core.ReproduceOptions{
			NoPreprocess:    baseline,
			SerialPortfolio: baseline,
			SeqOptions:      solver.Options{MaxPreemptions: p.Bench.MaxPreemptions},
			// Workers defaults to GOMAXPROCS: the portfolio wall is an
			// end-to-end number on this machine, not the fixed 8-worker
			// Table 3 configuration the parsolve stage measures.
			ParOptions: parsolve.Options{MaxBound: p.Bench.ParallelBound},
			Deadline:   20 * time.Second,
		})
		wall := time.Since(t0)
		if err != nil || sol == nil {
			continue
		}
		if best < 0 || wall < best {
			best = wall
			winner = ""
			for _, a := range attempts {
				if a.Outcome == "solved" {
					winner = a.Solver
					break
				}
			}
		}
	}
	if best < 0 {
		return 0, ""
	}
	return best, winner
}
