package main

import (
	"strings"
	"testing"
)

func snap(mode string, stages map[string]StageResult) *Report {
	return &Report{
		Schema:     "clap-bench/1",
		Mode:       mode,
		Benchmarks: []BenchResult{{Name: "sim_race", Stages: stages}},
	}
}

// TestCompareStageUnion pins the cross-version diff contract: a stage
// present in only one snapshot reports "added"/"removed" instead of
// erroring or gating, and stages measured in both still diff normally.
func TestCompareStageUnion(t *testing.T) {
	oldRep := snap("current", map[string]StageResult{
		"build":      {NsPerOp: 1000, AllocsPerOp: 10},
		"sequential": {NsPerOp: 2000, AllocsPerOp: 20},
		"retired":    {NsPerOp: 500},
	})
	newRep := snap("current", map[string]StageResult{
		"build":      {NsPerOp: 1000, AllocsPerOp: 10},
		"sequential": {NsPerOp: 1000, AllocsPerOp: 20},
		"novel":      {NsPerOp: 300},
	})

	var b strings.Builder
	compared, regressions := compareReports(&b, oldRep, newRep)
	out := b.String()

	if compared != 2 {
		t.Errorf("compared = %d, want 2 (build, sequential):\n%s", compared, out)
	}
	if regressions != 0 {
		t.Errorf("regressions = %d, want 0:\n%s", regressions, out)
	}
	for _, want := range []string{"added", "removed", "novel", "retired"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "REGRESSION") {
		t.Errorf("added/removed stages must not gate:\n%s", out)
	}
}

// TestCompareRegressionStillGates guards that the union rewrite did not
// loosen the perf gate itself.
func TestCompareRegressionStillGates(t *testing.T) {
	oldRep := snap("current", map[string]StageResult{"cnf": {NsPerOp: 1000}})
	newRep := snap("current", map[string]StageResult{"cnf": {NsPerOp: 2000}})

	var b strings.Builder
	compared, regressions := compareReports(&b, oldRep, newRep)
	if compared != 1 || regressions != 1 {
		t.Errorf("compared = %d, regressions = %d, want 1, 1:\n%s", compared, regressions, b.String())
	}
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Errorf("regression verdict missing:\n%s", b.String())
	}
}

// TestStageUnionOrder pins canonical-stages-first, extras sorted.
func TestStageUnionOrder(t *testing.T) {
	a := map[string]StageResult{"cnf": {}, "zeta": {}, "build": {}}
	b := map[string]StageResult{"alpha": {}, "preprocess": {}}
	got := stageUnion(a, b)
	want := []string{"build", "preprocess", "cnf", "alpha", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("stageUnion = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stageUnion = %v, want %v", got, want)
		}
	}
}
