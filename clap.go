// Package repro is the public facade of the CLAP reproduction: recording
// thread-local executions and reproducing concurrency failures by symbolic
// constraint solving (Huang, Zhang, Dolby — PLDI 2013).
//
// The facade re-exports the pipeline from internal/core via type aliases,
// so external users work with the same types the internals use:
//
//	prog, _ := repro.Compile(src)
//	rec, _ := repro.Record(prog, repro.RecordOptions{Model: repro.PSO, SeedLimit: 5000})
//	rep, _ := repro.Reproduce(rec, repro.ReproduceOptions{Solver: repro.Sequential})
//	fmt.Println(rep.Solution.Preemptions, rep.Outcome.Reproduced)
//
// See README.md for the architecture and DESIGN.md for the per-experiment
// index.
package repro

import (
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/vm"
)

// Memory models of the recorded execution.
const (
	// SC is sequential consistency.
	SC = vm.SC
	// TSO is total store order (per-thread FIFO store buffer).
	TSO = vm.TSO
	// PSO is partial store order (per-thread per-address store buffers).
	PSO = vm.PSO
)

// Solver strategies.
const (
	// Sequential is the dedicated finite-domain decision procedure with
	// minimal-preemption iteration.
	Sequential = core.Sequential
	// Parallel is the generate-and-validate worker pool (paper §4.3).
	Parallel = core.Parallel
	// CNF is the SAT encoding with a CDCL core.
	CNF = core.CNF
	// Portfolio tries Sequential under a budget, then Parallel, then CNF,
	// recording the per-attempt trail in Reproduction.Attempts.
	Portfolio = core.Portfolio
)

// Re-exported pipeline types.
type (
	// Program is a compiled mini-language program.
	Program = ir.Program
	// MemModel selects SC, TSO or PSO.
	MemModel = vm.MemModel
	// RecordOptions configures the record phase.
	RecordOptions = core.RecordOptions
	// Recording is a recorded failing execution (the CLAP path log plus
	// run metadata).
	Recording = core.Recording
	// ReproduceOptions configures the offline phases.
	ReproduceOptions = core.ReproduceOptions
	// Reproduction is the end-to-end result: constraints, schedule,
	// witness and replay verdict.
	Reproduction = core.Reproduction
	// SolverKind selects the solving strategy.
	SolverKind = core.SolverKind
	// SolverAttempt is one solver stage's outcome in the attempt trail.
	SolverAttempt = core.SolverAttempt
	// NoFailureError reports a bug hunt that found no assertion failure,
	// with the per-chaos-level breakdown of what was tried.
	NoFailureError = core.NoFailureError
	// LevelStats is one chaos level's share of a bug hunt.
	LevelStats = core.LevelStats
)

// Compile parses, checks and lowers mini-language source.
func Compile(src string) (*Program, error) { return core.Compile(src) }

// Record hunts a failing schedule, logging only thread-local paths.
func Record(prog *Program, opts RecordOptions) (*Recording, error) {
	return core.Record(prog, opts)
}

// Reproduce runs symbolic analysis, constraint solving and verifying
// replay on a recorded failure.
func Reproduce(rec *Recording, opts ReproduceOptions) (*Reproduction, error) {
	return core.Reproduce(rec, opts)
}

// ReproduceSource is the one-call pipeline: compile, record, solve, replay.
func ReproduceSource(src string, recOpts RecordOptions, opts ReproduceOptions) (*Reproduction, error) {
	return core.ReproduceSource(src, recOpts, opts)
}
