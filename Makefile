GO ?= go
FUZZTIME ?= 10s

FUZZ_TARGETS := FuzzDecodePathLog FuzzDecodePathLogSalvage \
	FuzzDecodeAccessVectorLog FuzzDecodeSyncOrderLog

.PHONY: ci lint vet fmt-check build test fuzz-smoke bench bench-baseline \
	bench-compare bench-gate vet-examples races-examples race-obs \
	metrics-smoke timeline-smoke serve-smoke

ci: lint build test vet-examples races-examples fuzz-smoke race-obs metrics-smoke timeline-smoke serve-smoke bench-gate

lint: vet fmt-check

vet:
	$(GO) vet ./...

# gofmt prints the files it would rewrite; any output is a failure.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Run the static lockset/happens-before lint over the checked-in example
# programs. Findings are expected (some examples are intentionally racy);
# the golden tests in internal/bench pin the exact reports, so this
# target only guards that the linter runs every example without error.
vet-examples:
	$(GO) run ./cmd/clap vet examples/vet/*.mc

# Run the predictive race analysis over the examples/races corpus — one
# program per verdict class (confirmed, solver-refuted, race-free,
# symbolic-index). The exact reports are pinned by the golden tests in
# internal/bench; this target guards the end-to-end CLI path.
races-examples:
	@for f in examples/races/*.mc; do \
		echo "clap races $$f"; \
		$(GO) run ./cmd/clap races $$f >/dev/null || exit 1; \
	done

build:
	$(GO) build ./...

# The race detector slows the solver-heavy suites by an order of
# magnitude; go test's default 10m per-package timeout is not enough for
# internal/bench on small machines.
test:
	$(GO) test -race -timeout 40m ./...

# Machine-readable per-stage perf snapshot over the paper's eleven
# benchmarks (BENCH_<date>T<hhmmss>.json — timestamped so two same-day
# runs never clobber). `bench-baseline` measures the pre-optimization
# pipeline (no preprocessing, serial portfolio) so the committed pair
# documents a perf change; see cmd/benchjson.
bench:
	$(GO) run ./cmd/benchjson

bench-baseline:
	$(GO) run ./cmd/benchjson -baseline -o BENCH_baseline.json

# Diff two committed snapshots: per-benchmark per-stage speedup table,
# non-zero exit when any stage measured in both regressed >10% ns/op.
# Usage: make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# CI smoke gate for the lazy-transitivity CNF core: solve the
# historically slowest benchmarks (including symbolic-address racey,
# formerly forced eager) once and require the clause count to stay an
# order of magnitude below the eager cubic ceiling.
bench-gate:
	$(GO) test ./internal/bench/ -run '^TestBenchGateLazyCNF$$' -count=1 -v

# A short fuzz pass per decoder target: the crash-tolerance claims hold on
# arbitrary bytes, not just the corpus.
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/trace/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# Focused race-detector pass over the observability and parallel-solver
# packages: both synchronize across goroutines (heartbeat vs. registry,
# progress hooks vs. workers), so they get a dedicated -race run even when
# the full `test` target is skipped.
race-obs:
	$(GO) test -race ./internal/obs/... ./internal/parsolve/...

# End-to-end metrics smoke: reproduce one benchmark with -metrics-json and
# require the five pipeline-stage spans in the report via `clap stats`.
metrics-smoke:
	@tmp=$$(mktemp); \
	$(GO) run ./cmd/clap bench sim_race -metrics-json $$tmp >/dev/null && \
	$(GO) run ./cmd/clap stats $$tmp -require record,symexec,preprocess,solve,replay >/dev/null && \
	echo "metrics-smoke: ok" ; rc=$$?; rm -f $$tmp; exit $$rc

# End-to-end flight-recorder smoke: record → solve → timeline + explain
# over two benchmarks (one with schedule flips, one whose zero-flip
# verdict exercises the reversal probe). `clap timeline -o` validates the
# Chrome trace-event JSON with the same timeline.Validate helper the
# golden tests pin; writing the artifact twice and comparing bytes guards
# end-to-end determinism.
timeline-smoke:
	@tmp=$$(mktemp -d); rc=0; \
	for b in sim_race pbzip2; do \
		$(GO) run ./cmd/clap timeline $$b -o $$tmp/$$b.json >/dev/null && \
		$(GO) run ./cmd/clap timeline $$b -o $$tmp/$$b.again.json >/dev/null && \
		cmp -s $$tmp/$$b.json $$tmp/$$b.again.json && \
		$(GO) run ./cmd/clap explain $$b >/dev/null || { rc=1; break; }; \
	done; \
	[ $$rc -eq 0 ] && echo "timeline-smoke: ok"; rm -rf $$tmp; exit $$rc

# End-to-end daemon crash drill: ingest, deterministic kill -9 mid-job
# (via an armed CLAP_FAULTS crash point), restart, and require every
# accepted job — one intact, one with a truncated log — to reach exactly
# one terminal state with duplicate uploads served from the cache. See
# scripts/serve_smoke.sh.
serve-smoke:
	@GO="$(GO)" sh scripts/serve_smoke.sh
