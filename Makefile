GO ?= go
FUZZTIME ?= 10s

FUZZ_TARGETS := FuzzDecodePathLog FuzzDecodePathLogSalvage \
	FuzzDecodeAccessVectorLog FuzzDecodeSyncOrderLog

.PHONY: ci vet build test fuzz-smoke

ci: vet build test fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# A short fuzz pass per decoder target: the crash-tolerance claims hold on
# arbitrary bytes, not just the corpus.
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/trace/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
