package repro_test

import (
	"testing"

	repro "repro"
)

// TestFacadeEndToEnd drives the public API exactly as the README shows.
func TestFacadeEndToEnd(t *testing.T) {
	const src = `
int x;
func child() {
	int t = x;
	x = t + 1;
}
func main() {
	int h1 = spawn child();
	int h2 = spawn child();
	join(h1);
	join(h2);
	int v = x;
	assert(v == 2, "lost update");
}
`
	prog, err := repro.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := repro.Record(prog, repro.RecordOptions{Model: repro.SC, SeedLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repro.Reproduce(rec, repro.ReproduceOptions{Solver: repro.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("facade pipeline did not reproduce the bug")
	}
	if rep.Solution.Preemptions < 0 || rep.Stats.SAPs == 0 {
		t.Error("facade result incomplete")
	}
}

// TestFacadeOneCall drives the single-call API.
func TestFacadeOneCall(t *testing.T) {
	const src = `
int y;
func w() { y = 1; }
func main() {
	int h = spawn w();
	int v = y;
	join(h);
	assert(v == 0, "writer raced ahead");
}
`
	rep, err := repro.ReproduceSource(src,
		repro.RecordOptions{Model: repro.SC, SeedLimit: 2000},
		repro.ReproduceOptions{Solver: repro.Parallel})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("not reproduced")
	}
}
