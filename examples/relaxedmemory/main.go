// Relaxed memory: reproduce bugs that cannot happen under sequential
// consistency.
//
// This example runs two classics:
//
//   - Figure 2 (right) of the paper: two plain writes x=1; y=1 and a
//     reader that asserts x==1 after seeing y==1. Under SC and TSO the
//     write order makes the assertion safe; under PSO the per-address
//     store buffers can make y visible first.
//
//   - Dekker's mutual exclusion: correct under SC, broken under TSO
//     because each thread's flag write can stay buffered past its read of
//     the other's flag.
//
// For each bug the example records a failing run under the relaxed model,
// shows that the same recorded trace is *unsatisfiable* under the SC
// encoding (the bug genuinely needs the relaxation), solves under the
// correct model, and replays with value injection — the paper's "actively
// controlling the value returned by shared data loads".
package main

import (
	"fmt"
	"log"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/vm"
)

const psoProgram = `
int x;
int y;

func reader() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "assert2: y==1 implies x==1 ... unless writes reorder");
	}
}

func main() {
	int h;
	h = spawn reader();
	x = 1;
	y = 1;
	join(h);
}
`

const dekkerProgram = `
int flag0;
int flag1;
int incrit;
int bad;

func t0() {
	flag0 = 1;
	if (flag1 == 0) {
		incrit = incrit + 1;
		if (incrit != 1) { bad = 1; }
		incrit = incrit - 1;
	}
}

func t1() {
	flag1 = 1;
	if (flag0 == 0) {
		incrit = incrit + 1;
		if (incrit != 1) { bad = 1; }
		incrit = incrit - 1;
	}
}

func main() {
	int h0 = spawn t0();
	int h1 = spawn t1();
	join(h0);
	join(h1);
	int b = bad;
	assert(b == 0, "mutual exclusion violated");
}
`

func demo(name, src string, model vm.MemModel) {
	fmt.Printf("== %s under %s ==\n", name, model)
	prog, err := core.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := core.Record(prog, core.RecordOptions{Model: model, SeedLimit: 5000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded failure (seed %d): %v\n", rec.Seed, rec.Failure)

	// The same thread-local trace is infeasible under SC: this failure
	// NEEDS the relaxed memory model.
	sys, err := rec.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	scSys, err := constraints.Build(sys.An, vm.SC)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := solver.Solve(scSys, solver.Options{MaxPreemptions: 8, MinimalSearchLimit: 8}); err == nil {
		log.Fatalf("%s: the trace should be UNSAT under SC", name)
	} else {
		fmt.Printf("SC encoding of the same trace: %v  ✓ (the bug requires %s)\n", err, model)
	}

	rep, err := core.Reproduce(rec, core.ReproduceOptions{Solver: core.Sequential})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s schedule found: %d SAPs, %d preemptions\n",
		model, len(rep.Solution.Order), rep.Solution.Preemptions)
	fmt.Printf("replay (value-injected): reproduced=%v\n\n", rep.Outcome.Reproduced)
}

func main() {
	demo("Figure 2 (right): write reordering", psoProgram, vm.PSO)
	demo("Dekker's algorithm", dekkerProgram, vm.TSO)
}
