// pbzip2: reproduce the order-violation crash studied throughout the
// concurrency-debugging literature (and in §6.1 of the CLAP paper).
//
// The real pbzip2-0.9.4 bug: the main thread tears down the FIFO queue's
// mutex while consumer threads are still using it, crashing the program
// intermittently. This example runs the mini-language re-creation through
// the full pipeline and prints the human-readable schedule — the artifact
// a developer would study to understand the bug, with its characteristic
// small number of preemptive context switches.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/symexec"
)

func main() {
	b, ok := bench.ByName("pbzip2")
	if !ok {
		log.Fatal("pbzip2 benchmark missing")
	}
	fmt.Println("== pbzip2 order violation ==")
	fmt.Println(b.Description)

	prog, err := core.Compile(b.Source)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := core.Record(prog, core.RecordOptions{
		Model:     b.Model,
		Inputs:    b.Inputs,
		SeedLimit: b.SeedLimit,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded crash with seed %d: %v\n", rec.Seed, rec.Failure)
	fmt.Printf("CLAP log: %d bytes (thread-local paths only)\n", rec.LogSize())

	rep, err := core.Reproduce(rec, core.ReproduceOptions{Solver: core.Sequential})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constraints: %s\n", rep.Stats)
	fmt.Printf("schedule: %d preemptive context switches\n\n", rep.Solution.Preemptions)

	// Print the schedule grouped into per-thread runs — the way a
	// developer reads a reproduction: long sequential stretches broken by
	// the few preemptions that matter.
	var lastThread = -1
	for _, ref := range rep.Solution.Order {
		s := rep.System.SAP(ref)
		if int(s.Thread) != lastThread {
			fmt.Printf("thread %d:\n", s.Thread)
			lastThread = int(s.Thread)
		}
		extra := ""
		if s.Kind == symexec.SAPRead {
			extra = fmt.Sprintf(" = %d", rep.Solution.Witness.Env[s.Sym.ID])
		}
		fmt.Printf("    %s%s\n", s, extra)
	}

	if rep.Outcome.Reproduced {
		fmt.Println("\nreplay: crash reproduced deterministically.")
	} else {
		log.Fatal("replay failed")
	}
}
