// Trace tools: the two optional machineries around the core pipeline.
//
//  1. §6.4 "Recording synchronizations": optionally record the global
//     synchronization order at runtime (at the cost of a real lock per
//     sync op — exactly why the paper leaves it off by default) and pin it
//     into the constraint system, shrinking the schedule search.
//
//  2. Schedule simplification (the authors' LEAN line of work): take any
//     valid schedule — here, the recorded execution's own order — and
//     reduce its preemptive context switches by validated hill climbing,
//     without ever leaving the constraint system's model space.
package main

import (
	"fmt"
	"log"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/escape"
	"repro/internal/parsolve"
	"repro/internal/replay"
	"repro/internal/simplify"
	"repro/internal/solver"
	"repro/internal/symexec"
	"repro/internal/vm"
)

const program = `
int turn;
int hits;
mutex m;
func worker(id, n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		lock(m);
		int t = turn;
		turn = t + 1;
		unlock(m);
		int h = hits;
		hits = h + 1;
	}
}
func main() {
	int h1 = spawn worker(1, 2);
	int h2 = spawn worker(2, 2);
	join(h1);
	join(h2);
	int f = hits;
	assert(f == 4, "hits updates lost");
}
`

func main() {
	prog, err := core.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	esc := escape.Analyze(prog)

	// Record with BOTH the CLAP path log and the optional sync-order log,
	// capturing the global event order as ground truth for the simplifier
	// demo.
	var rec *vm.PathRecorder
	var syncRec *vm.SyncOrderRecorder
	var global []vm.VisibleEvent
	var res *vm.Result
	for seed := int64(0); ; seed++ {
		if seed > 5000 {
			log.Fatal("no failing seed")
		}
		rec, err = vm.NewPathRecorder(prog)
		if err != nil {
			log.Fatal(err)
		}
		syncRec = vm.NewSyncOrderRecorder()
		global = nil
		machine, err := vm.New(prog, vm.Config{
			Sched: vm.NewRandomScheduler(seed), Shared: esc.Shared,
			PathRecorder: rec, SyncRecorder: syncRec,
			OnVisible: func(ev vm.VisibleEvent) {
				if ev.Kind != vm.EvDrain {
					global = append(global, ev)
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err = machine.Run()
		if err != nil {
			log.Fatal(err)
		}
		if res.Failure != nil && res.Failure.Kind == vm.FailAssert {
			fmt.Printf("recorded failure with seed %d: %v\n", seed, res.Failure)
			break
		}
	}
	fmt.Printf("CLAP path log: %dB; sync-order log (the §6.4 extra): %dB\n",
		rec.Log.Size(), syncRec.Log.Size())

	an, err := symexec.Analyze(prog, rec.Paths, rec.Log, symexec.Options{
		Shared:  esc.Shared,
		Failure: symexec.FailureSpec{Thread: res.Failure.Thread, Site: res.Failure.Site},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Solve twice: plain, and with the recorded sync order pinned.
	plain, err := constraints.Build(an, vm.SC)
	if err != nil {
		log.Fatal(err)
	}
	pinned, err := constraints.BuildWithSyncOrder(an, vm.SC, syncRec.Log)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []struct {
		name string
		sys  *constraints.System
	}{{"plain", plain}, {"sync-order pinned", pinned}} {
		r, err := parsolve.Solve(c.sys, parsolve.Options{Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s: %d candidates generated before a valid schedule (%d order edges)\n",
			c.name, r.Generated, len(c.sys.HardEdges))
	}

	// Simplifier: start from the recorded execution's own schedule.
	next := make([]int, len(plain.Threads))
	var recordedOrder []constraints.SAPRef
	for _, ev := range global {
		recordedOrder = append(recordedOrder, plain.Threads[ev.Thread][next[ev.Thread]])
		next[ev.Thread]++
	}
	for tid, refs := range plain.Threads {
		for k := next[tid]; k < len(refs); k++ {
			recordedOrder = append(recordedOrder, refs[k])
		}
	}
	simp, err := simplify.Simplify(plain, recordedOrder, simplify.Options{MaxPasses: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simplifier: recorded schedule had %d preemptions, simplified to %d (%d moves)\n",
		simp.Before, simp.After, simp.Moves)

	out, err := replay.Run(plain, &solver.Solution{
		Order: simp.Order, Witness: simp.Witness, Preemptions: simp.After,
	}, replay.Options{Mode: replay.OrderEnforced})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simplified schedule replays the failure: %v\n", out.Reproduced)
}
