// Quickstart: record a concurrency failure and reproduce it with CLAP.
//
// The program is Figure 2 of the paper (left side): two threads, two
// shared variables, and an assertion that only fails under one rare
// interleaving. The pipeline:
//
//  1. record  — run under seeded random schedules, logging only each
//     thread's Ball–Larus control-flow path, until the assertion fails;
//  2. analyze — symbolically re-execute the recorded paths and build
//     F = Fpath ∧ Fbug ∧ Fso ∧ Frw ∧ Fmo;
//  3. solve   — compute a SAP schedule with minimal preemptions;
//  4. replay  — drive the program deterministically along the schedule
//     and watch the same assertion fail again.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/vm"
)

const program = `
int x;
int y;

func t1() {
	int r1 = x;
	x = r1 + 1;
	int r2 = y;
	if (r2 > 0) {
		int r3 = x;
		assert(r3 > 0, "assert1: x must stay positive");
	}
}

func main() {
	int h;
	h = spawn t1();
	x = 2;
	x = x - 3;
	y = 1;
	join(h);
}
`

func main() {
	fmt.Println("== CLAP quickstart: Figure 2 of the paper ==")

	prog, err := core.Compile(program)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: record. Only thread-local paths are logged — no shared
	// memory dependencies, no values, no added synchronization.
	rec, err := core.Record(prog, core.RecordOptions{Model: vm.SC, SeedLimit: 5000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded failure with scheduler seed %d: %v\n", rec.Seed, rec.Failure)
	fmt.Printf("  CLAP path log: %d bytes for %d threads (%d instructions executed)\n",
		rec.LogSize(), len(rec.Log.Threads), rec.Run.Instructions)

	// Phases 2-4: analyze, solve, replay.
	rep, err := core.Reproduce(rec, core.ReproduceOptions{Solver: core.Sequential})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constraints: %s\n", rep.Stats)
	fmt.Printf("schedule: %d SAPs with %d preemptive context switches (symbolic %.3fs, solve %.3fs)\n",
		len(rep.Solution.Order), rep.Solution.Preemptions,
		rep.SymbolicTime().Seconds(), rep.SolveTime().Seconds())

	fmt.Println("computed SAP schedule:")
	for i, ref := range rep.Solution.Order {
		fmt.Printf("  %2d: %s\n", i, rep.System.SAP(ref))
	}

	if rep.Outcome.Reproduced {
		fmt.Printf("\nreplay: the assertion failed again, deterministically (%d events verified) — bug reproduced.\n",
			rep.Outcome.EventsMatched)
	} else {
		log.Fatal("replay did not reproduce the bug")
	}
}
