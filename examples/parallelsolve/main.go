// Parallel solving: compare CLAP's three solving strategies on one
// recorded failure (§4.3 and Table 3 of the paper).
//
//   - sequential: the dedicated finite-domain decision procedure with
//     minimal-preemption iteration;
//   - parallel: preemption-bounded schedule generation with a pool of
//     validation workers — the paper's parallel algorithm;
//   - cnf: the SMT-style reference backend — CDCL SAT over boolean order
//     variables with the cubic transitivity axioms and lazy value theory.
//
// All three must agree, and every returned schedule must replay to the
// same assertion failure.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/cnfsolver"
	"repro/internal/core"
	"repro/internal/parsolve"
	"repro/internal/replay"
	"repro/internal/solver"
	"repro/internal/vm"
)

const program = `
int turn;
int done;
int log0[16];
int pos;

func stage(id, n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		// Per-thread slots: concrete addresses, so all three solvers get
		// the exact read→write structure.
		log0[(id - 1) * 8 + i] = id * 100 + i;
		int p = pos;
		pos = p + 1;
		int t = turn;
		turn = t + 1;
	}
	done = done + 1;
}

func main() {
	int h1 = spawn stage(1, 3);
	int h2 = spawn stage(2, 3);
	join(h1);
	join(h2);
	int d = done;
	int t = turn;
	assert(d == 2 && t == 6, "updates lost in turn/done accounting");
}
`

func main() {
	prog, err := core.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := core.Record(prog, core.RecordOptions{Model: vm.SC, SeedLimit: 5000})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := rec.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded failure (seed %d); constraint system: %s\n\n", rec.Seed, sys.ComputeStats())

	verify := func(name string, sol *solver.Solution, elapsed time.Duration) {
		out, err := replay.Run(sys, sol, replay.Options{Mode: replay.ModeFor(rec.Model), Inputs: rec.Inputs})
		if err != nil {
			log.Fatalf("%s: replay error: %v", name, err)
		}
		fmt.Printf("%-12s %8.3fs   %d preemptions   reproduced=%v\n",
			name, elapsed.Seconds(), sol.Preemptions, out.Reproduced)
	}

	t0 := time.Now()
	seqSol, _, err := solver.Solve(sys, solver.Options{MaxPreemptions: -1})
	if err != nil {
		log.Fatal(err)
	}
	verify("sequential", seqSol, time.Since(t0))

	t1 := time.Now()
	par, err := parsolve.Solve(sys, parsolve.Options{Workers: runtime.GOMAXPROCS(0), StopAfter: 4})
	if err != nil {
		log.Fatal(err)
	}
	if !par.Found() {
		log.Fatal("parallel solver found nothing")
	}
	verify("parallel", par.Solutions[0], time.Since(t1))
	fmt.Printf("             generated %d candidates at bound %d, %d validated as correct\n",
		par.Generated, par.Bound, par.Valid)

	t2 := time.Now()
	cnfSol, st, err := cnfsolver.Solve(sys, cnfsolver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	verify("cnf", cnfSol, time.Since(t2))
	fmt.Printf("             %d boolean variables, %d clauses (the paper's cubic order encoding), %d theory rounds\n",
		st.BoolVars, st.Clauses, st.TheoryRounds)
}
