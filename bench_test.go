// Benchmarks regenerating the paper's evaluation, one benchmark family per
// table (run with `go test -bench=. -benchmem`):
//
//   - BenchmarkTable1/* times the offline pipeline (symbolic execution +
//     constraint encoding + sequential solving + verified replay) per
//     evaluation program — Table 1's time columns; the constraint sizes
//     are attached as custom metrics.
//   - BenchmarkTable2/* times one recorded execution under the three
//     recording settings (native, LEAP, CLAP) and reports the log sizes —
//     Table 2's overhead and space columns.
//   - BenchmarkTable3/* times parallel generate-and-validate solving vs
//     the sequential solver — Table 3.
//   - BenchmarkAblation/* check the design claims DESIGN.md calls out:
//     constraint size growth with #SAPs (§4.1's cubic bound), the effect
//     of the preemption bound on generation counts, and the run-length
//     path-log encoding.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/parsolve"
	"repro/internal/schedule"
	"repro/internal/solver"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// prepared caches one recorded failure per benchmark so every bench
// iteration times only the phase under measurement.
var prepared = map[string]*bench.Prepared{}

func prepare(b *testing.B, name string) *bench.Prepared {
	b.Helper()
	if p, ok := prepared[name]; ok {
		return p
	}
	bm, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	p, err := bench.Prepare(bm)
	if err != nil {
		b.Fatal(err)
	}
	prepared[name] = p
	return p
}

// table1Programs: every paper benchmark; racey is separated because its
// high preemption bound dominates runtime.
var table1Programs = []string{
	"sim_race", "pbzip2", "aget", "bbuf", "swarm", "pfscan", "apache",
	"bakery", "dekker", "peterson",
}

func BenchmarkTable1(b *testing.B) {
	for _, name := range table1Programs {
		name := name
		b.Run(name, func(b *testing.B) {
			p := prepare(b, name)
			bm := p.Bench
			b.ReportMetric(float64(p.Stats.SAPs), "SAPs")
			b.ReportMetric(float64(p.Stats.Clauses), "constraints")
			b.ReportMetric(float64(p.Stats.Variables), "variables")
			var cs int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := core.Reproduce(p.Recording, core.ReproduceOptions{
					Solver:     core.Sequential,
					SeqOptions: solver.Options{MaxPreemptions: bm.MaxPreemptions},
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Outcome.Reproduced {
					b.Fatal("bug not reproduced")
				}
				cs = rep.Solution.Preemptions
			}
			b.ReportMetric(float64(cs), "preemptions")
		})
	}
	b.Run("racey", func(b *testing.B) {
		p := prepare(b, "racey")
		b.ReportMetric(float64(p.Stats.SAPs), "SAPs")
		b.ReportMetric(float64(p.Stats.Clauses), "constraints")
		var cs int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := core.Reproduce(p.Recording, core.ReproduceOptions{
				Solver:     core.Sequential,
				SeqOptions: solver.Options{MaxPreemptions: p.Bench.MaxPreemptions},
			})
			if err != nil {
				b.Fatal(err)
			}
			cs = rep.Solution.Preemptions
		}
		b.ReportMetric(float64(cs), "preemptions")
	})
}

func BenchmarkTable2(b *testing.B) {
	for _, name := range bench.Table2Programs {
		bm, ok := bench.ByName(name)
		if !ok {
			b.Fatalf("unknown benchmark %s", name)
		}
		prog, err := core.Compile(bm.Source)
		if err != nil {
			b.Fatal(err)
		}
		inputs := bm.Table2Inputs
		if inputs == nil {
			inputs = bm.Inputs
		}
		run := func(b *testing.B, withLeap, withClap bool) {
			var logBytes int
			for i := 0; i < b.N; i++ {
				conf := vm.Config{Model: bm.Model, Inputs: inputs, Sched: vm.NewRandomScheduler(12345)}
				var clapRec *vm.PathRecorder
				var leapRec *vm.LeapRecorder
				if withClap {
					clapRec, err = vm.NewPathRecorder(prog)
					if err != nil {
						b.Fatal(err)
					}
					conf.PathRecorder = clapRec
				}
				if withLeap {
					leapRec = vm.NewLeapRecorder(prog)
					conf.LeapRecorder = leapRec
				}
				m, err := vm.New(prog, conf)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				if withClap {
					logBytes = clapRec.Log.Size()
				}
				if withLeap {
					logBytes = leapRec.Log.Size()
				}
			}
			if withClap || withLeap {
				b.ReportMetric(float64(logBytes), "log-bytes")
			}
		}
		b.Run(name+"/native", func(b *testing.B) { run(b, false, false) })
		b.Run(name+"/leap", func(b *testing.B) { run(b, true, false) })
		b.Run(name+"/clap", func(b *testing.B) { run(b, false, true) })
	}
}

// table3Programs: parallel-vs-sequential comparison on the programs whose
// bugs the bounded generator can reach. The relaxed trio
// (bakery/dekker/peterson) needs more preemptions than the bound sweep
// explores — the paper's negative result, shown by `clapbench -table 3`
// and asserted in the bench package's tests.
var table3Programs = []string{"sim_race", "pbzip2", "aget", "bbuf", "swarm", "pfscan", "apache"}

func BenchmarkTable3(b *testing.B) {
	for _, name := range table3Programs {
		name := name
		b.Run(name+"/parallel", func(b *testing.B) {
			p := prepare(b, name)
			var gen int64
			for i := 0; i < b.N; i++ {
				res, err := parsolve.Solve(p.System, parsolve.Options{
					Workers: 8, MaxBound: p.Bench.ParallelBound,
					Deadline: 60 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Found() {
					b.Fatal("no schedule found")
				}
				gen = res.Generated
			}
			b.ReportMetric(float64(gen), "generated")
		})
		b.Run(name+"/sequential", func(b *testing.B) {
			p := prepare(b, name)
			bound := p.Bench.MaxPreemptions
			if bound == 0 {
				bound = -1
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.Solve(p.System, solver.Options{MaxPreemptions: bound}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationConstraintGrowth checks §4.1's size analysis: constraint
// count grows polynomially (≈cubically in the worst case) with the number
// of shared accesses. The workload scales the aget benchmark's chunk count.
func BenchmarkAblationConstraintGrowth(b *testing.B) {
	for _, n := range []int64{4, 8, 16} {
		b.Run(fmt.Sprintf("chunks-%d", n), func(b *testing.B) {
			bm, _ := bench.ByName("aget")
			bm.Inputs = []int64{n}
			var stats constraints.Stats
			for i := 0; i < b.N; i++ {
				p, err := bench.Prepare(bm)
				if err != nil {
					b.Fatal(err)
				}
				stats = p.Stats
			}
			b.ReportMetric(float64(stats.SAPs), "SAPs")
			b.ReportMetric(float64(stats.Clauses), "constraints")
		})
	}
}

// BenchmarkAblationPreemptionBound measures how the candidate-schedule
// space grows with the preemption bound (the paper's polynomial-vs-
// exponential argument for preemption bounding).
func BenchmarkAblationPreemptionBound(b *testing.B) {
	p := prepare(b, "sim_race")
	for c := 0; c <= 2; c++ {
		c := c
		b.Run(fmt.Sprintf("bound-%d", c), func(b *testing.B) {
			var generated int
			for i := 0; i < b.N; i++ {
				gen := schedule.NewGenerator(p.System, schedule.Options{
					RespectHardEdges: true, MaxSchedules: 500_000,
				})
				res := gen.Generate(c, func(order []constraints.SAPRef, pre int) bool { return true })
				generated = res.Generated
			}
			b.ReportMetric(float64(generated), "schedules")
		})
	}
}

// BenchmarkAblationSyncOrderRecording measures the paper's §6.4 extension:
// pinning the recorded synchronization order adds hard edges that shrink
// the candidate-schedule space, at the price of synchronized recording.
// The metric of interest is the generated-candidate count needed before a
// valid schedule appears, with and without the pinned order.
func BenchmarkAblationSyncOrderRecording(b *testing.B) {
	prog, err := core.Compile(`
int x;
int y;
mutex m;
func worker(v) {
	lock(m);
	int t = x;
	x = t + v;
	unlock(m);
	int u = y;
	y = u + v;
}
func main() {
	int h1 = spawn worker(1);
	int h2 = spawn worker(2);
	join(h1);
	join(h2);
	int fy = y;
	assert(fy == 3, "y updates lost");
}
`)
	if err != nil {
		b.Fatal(err)
	}
	// Record one failing run with the sync recorder attached.
	record := func() (*vm.PathRecorder, *vm.SyncOrderRecorder, *vm.Result) {
		for seed := int64(0); seed < 4000; seed++ {
			rec, err := vm.NewPathRecorder(prog)
			if err != nil {
				b.Fatal(err)
			}
			syncRec := vm.NewSyncOrderRecorder()
			m, err := vm.New(prog, vm.Config{
				Sched: vm.NewRandomScheduler(seed), PathRecorder: rec, SyncRecorder: syncRec,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				b.Fatal(err)
			}
			if res.Failure != nil && res.Failure.Kind == vm.FailAssert {
				return rec, syncRec, res
			}
		}
		b.Fatal("no failing seed")
		return nil, nil, nil
	}
	rec, syncRec, res := record()
	an, err := symexec.Analyze(prog, rec.Paths, rec.Log, symexec.Options{
		Failure: symexec.FailureSpec{Thread: res.Failure.Thread, Site: res.Failure.Site},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, pinned := range []bool{false, true} {
		name := "plain"
		if pinned {
			name = "pinned"
		}
		b.Run(name, func(b *testing.B) {
			var sys *constraints.System
			if pinned {
				sys, err = constraints.BuildWithSyncOrder(an, vm.SC, syncRec.Log)
			} else {
				sys, err = constraints.Build(an, vm.SC)
			}
			if err != nil {
				b.Fatal(err)
			}
			var generated int64
			for i := 0; i < b.N; i++ {
				res, err := parsolve.Solve(sys, parsolve.Options{Workers: 4})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Found() {
					b.Fatal("no schedule found")
				}
				generated = res.Generated
			}
			b.ReportMetric(float64(generated), "generated")
		})
	}
}

// BenchmarkAblationLogEncoding isolates the run-length path-log encoding:
// loop-heavy programs compress dramatically, which is where CLAP's space
// win over LEAP comes from.
func BenchmarkAblationLogEncoding(b *testing.B) {
	bm, _ := bench.ByName("racey")
	bm.Inputs = []int64{120, 6}
	prog, err := core.Compile(bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rec, err := vm.NewPathRecorder(prog)
		if err != nil {
			b.Fatal(err)
		}
		m, err := vm.New(prog, vm.Config{Model: vm.SC, Inputs: bm.Inputs, Sched: vm.NewRandomScheduler(1), PathRecorder: rec})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rec.Log.Size()), "encoded-bytes")
		b.ReportMetric(float64(rec.Log.EventCount()), "events")
	}
}
