// Per-stage pipeline benchmarks (run with `go test -bench BenchmarkStages
// -benchmem`): one sub-benchmark per offline stage per paper program, via
// the shared runners in internal/bench. cmd/benchjson drives the same
// runners to emit the BENCH_<date>.json perf trajectory, so numbers here
// and numbers in the JSON are directly comparable.
package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/constraints"
)

// stageSystems caches one preprocessed system per benchmark; the solve
// stages share it (no solver mutates a system after preprocessing).
var stageSystems = map[string]*constraints.System{}

func stageSystem(b *testing.B, name string) (*bench.Prepared, *constraints.System) {
	b.Helper()
	p := prepare(b, name)
	sys, ok := stageSystems[name]
	if !ok {
		var err error
		sys, err = bench.FreshSystem(p, false)
		if err != nil {
			b.Fatal(err)
		}
		stageSystems[name] = sys
	}
	return p, sys
}

var stagePrograms = append(append([]string(nil), table1Programs...), "racey")

func BenchmarkStages(b *testing.B) {
	b.Run("build", func(b *testing.B) {
		for _, name := range stagePrograms {
			b.Run(name, func(b *testing.B) { bench.StageBuild(prepare(b, name))(b) })
		}
	})
	b.Run("preprocess", func(b *testing.B) {
		for _, name := range stagePrograms {
			b.Run(name, func(b *testing.B) { bench.StagePreprocess(prepare(b, name))(b) })
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for _, name := range stagePrograms {
			b.Run(name, func(b *testing.B) {
				p, sys := stageSystem(b, name)
				bench.StageSequential(p, sys)(b)
			})
		}
	})
	b.Run("parsolve", func(b *testing.B) {
		for _, name := range stagePrograms {
			b.Run(name, func(b *testing.B) {
				p, sys := stageSystem(b, name)
				bench.StageParsolve(p, sys)(b)
			})
		}
	})
	b.Run("cnf", func(b *testing.B) {
		for _, name := range stagePrograms {
			b.Run(name, func(b *testing.B) {
				p, sys := stageSystem(b, name)
				bench.StageCNF(p, sys)(b)
			})
		}
	})
}
