package staticanalysis

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Render formats the result as the `clap vet` diagnostic listing: one
// line per shared global, one per potential race, a block per lock-order
// cycle, and a summary line. The output is deterministic (sorted by
// global id and source position) so it can be golden-tested.
func (r *Result) Render() string {
	var sb strings.Builder

	counts := map[ir.GlobalID]int{}
	for _, acc := range r.Accesses {
		counts[acc.Global]++
	}
	for g := range r.Prog.Globals {
		gid := ir.GlobalID(g)
		if !r.Sharing.IsShared(gid) {
			continue
		}
		prot := "no consistent lock"
		if m := r.ConsistentLock[g]; m >= 0 {
			prot = "protected by " + r.Prog.Mutexes[m]
		} else if r.Demotable[g] {
			prot = "no concurrent accesses"
		}
		fmt.Fprintf(&sb, "shared %s: %d access sites, %s\n", r.Prog.Globals[g].Name, counts[gid], prot)
	}

	for _, race := range r.Races {
		fmt.Fprintf(&sb, "race: %s: %s vs %s\n",
			r.Prog.Globals[race.Global].Name, r.accessString(race.A), r.accessString(race.B))
	}

	for _, cy := range r.Cycles {
		var names []string
		for _, m := range cy.Mutexes {
			names = append(names, r.Prog.Mutexes[m])
		}
		names = append(names, names[0])
		fmt.Fprintf(&sb, "lock-order cycle: %s\n", strings.Join(names, " -> "))
		for _, e := range cy.Edges {
			fmt.Fprintf(&sb, "  holds %s, acquires %s at %s@%s\n",
				r.Prog.Mutexes[e.Held], r.Prog.Mutexes[e.Acquired],
				r.Prog.Funcs[e.Fn].Name, e.Pos)
		}
	}

	switch {
	case len(r.Races) == 0 && len(r.Cycles) == 0:
		sb.WriteString("summary: no potential races, no lock-order cycles\n")
	default:
		fmt.Fprintf(&sb, "summary: %s, %s\n",
			plural(len(r.Races), "potential race"), plural(len(r.Cycles), "lock-order cycle"))
	}
	return sb.String()
}

func (r *Result) accessString(a Access) string {
	kind := "read"
	if a.Write {
		kind = "write"
	}
	return fmt.Sprintf("%s %s@%s %s", kind, r.Prog.Funcs[a.Fn].Name, a.Pos, a.Locks.Names(r.Prog))
}

func plural(n int, noun string) string {
	if n == 1 {
		return fmt.Sprintf("1 %s", noun)
	}
	return fmt.Sprintf("%d %ss", n, noun)
}

// String condenses the stats to one -verbose line, mirroring
// constraints.PreStats.String.
func (s Stats) String() string {
	return fmt.Sprintf(
		"static: shared=%d protected=%d sites=%d pairs=%d lock-excluded=%d hb-ordered=%d races=%d lock-edges=%d cycles=%d",
		s.SharedVars, s.ProtectedVars, s.AccessSites, s.Pairs,
		s.LockExcluded, s.HBOrdered, s.Races, s.LockEdges, s.Cycles)
}
