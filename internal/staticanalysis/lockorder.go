package staticanalysis

import (
	"sort"

	"repro/internal/ir"
)

// The lock-order pass builds a graph over the program's mutexes: an edge
// m1 → m2 means some live thread may acquire m2 while m1 may be held
// (directly at a lock instruction, or transitively through a call that
// acquires m2 inside). Any strongly connected component with more than
// one mutex — or a self-loop, a non-reentrant re-acquisition — is a
// potential deadlock and surfaces in `clap vet`.

// lockOrder populates res.LockEdges and res.Cycles.
func (a *analysis) lockOrder() {
	prog := a.prog
	n := len(prog.Funcs)

	// acquires[f]: mutexes locked anywhere in f or its callees.
	acquires := make([]ir.LockSet, n)
	for changed := true; changed; {
		changed = false
		for fi, fn := range prog.Funcs {
			s := acquires[fi]
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					switch x := in.(type) {
					case *ir.SyncOp:
						if x.Kind == ir.BuiltinLock {
							s = s.With(x.Obj)
						}
					case *ir.Call:
						s = s.Union(acquires[x.Func])
					}
				}
			}
			if s != acquires[fi] {
				acquires[fi] = s
				changed = true
			}
		}
	}

	edges := map[[2]ir.SyncID]LockEdge{}
	addEdge := func(held, acq ir.SyncID, fn ir.FuncID, instr ir.Instr) {
		key := [2]ir.SyncID{held, acq}
		if _, ok := edges[key]; ok {
			return // keep the first (deterministic scan order) witness
		}
		edges[key] = LockEdge{Held: held, Acquired: acq, Fn: fn, Pos: ir.PosOf(instr)}
	}
	for fi, fn := range prog.Funcs {
		if len(a.rootsOf[fi]) == 0 {
			continue // dead code cannot deadlock
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				held := a.mayAt[in]
				if held.Empty() {
					continue
				}
				switch x := in.(type) {
				case *ir.SyncOp:
					if x.Kind != ir.BuiltinLock {
						continue
					}
					for m := range prog.Mutexes {
						if held.Has(ir.SyncID(m)) {
							addEdge(ir.SyncID(m), x.Obj, ir.FuncID(fi), in)
						}
					}
				case *ir.Call:
					inner := acquires[x.Func]
					if inner.Empty() {
						continue
					}
					for m1 := range prog.Mutexes {
						if !held.Has(ir.SyncID(m1)) {
							continue
						}
						for m2 := range prog.Mutexes {
							if inner.Has(ir.SyncID(m2)) {
								f2, site := a.firstLockSite(x.Func, ir.SyncID(m2))
								addEdge(ir.SyncID(m1), ir.SyncID(m2), f2, site)
							}
						}
					}
				}
			}
		}
	}

	for _, e := range edges {
		a.res.LockEdges = append(a.res.LockEdges, e)
	}
	sort.Slice(a.res.LockEdges, func(i, j int) bool {
		x, y := a.res.LockEdges[i], a.res.LockEdges[j]
		if x.Held != y.Held {
			return x.Held < y.Held
		}
		return x.Acquired < y.Acquired
	})

	a.res.Cycles = lockCycles(len(prog.Mutexes), a.res.LockEdges)
}

// firstLockSite returns the first (block order) lock instruction for m in
// f or, recursively, in its callees — the witness position reported for
// a call-carried lock-order edge.
func (a *analysis) firstLockSite(f ir.FuncID, m ir.SyncID) (ir.FuncID, ir.Instr) {
	seen := map[ir.FuncID]bool{}
	var find func(f ir.FuncID) (ir.FuncID, ir.Instr)
	find = func(f ir.FuncID) (ir.FuncID, ir.Instr) {
		if seen[f] {
			return -1, nil
		}
		seen[f] = true
		for _, b := range a.prog.Funcs[f].Blocks {
			for _, in := range b.Instrs {
				switch x := in.(type) {
				case *ir.SyncOp:
					if x.Kind == ir.BuiltinLock && x.Obj == m {
						return f, in
					}
				case *ir.Call:
					if ff, site := find(x.Func); site != nil {
						return ff, site
					}
				}
			}
		}
		return -1, nil
	}
	ff, site := find(f)
	if site == nil {
		return f, nil
	}
	return ff, site
}

// lockCycles runs Tarjan's SCC over the lock-order graph and returns the
// components that can deadlock: size > 1, or a single mutex with a
// self-edge.
func lockCycles(numMutexes int, edges []LockEdge) []Cycle {
	succs := make([][]ir.SyncID, numMutexes)
	self := make([]bool, numMutexes)
	for _, e := range edges {
		succs[e.Held] = append(succs[e.Held], e.Acquired)
		if e.Held == e.Acquired {
			self[e.Held] = true
		}
	}

	const unvisited = -1
	index := make([]int, numMutexes)
	low := make([]int, numMutexes)
	onStack := make([]bool, numMutexes)
	for i := range index {
		index[i] = unvisited
	}
	var stack []ir.SyncID
	next := 0
	var comps [][]ir.SyncID
	var strong func(v ir.SyncID)
	strong = func(v ir.SyncID) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if index[w] == unvisited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []ir.SyncID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for v := 0; v < numMutexes; v++ {
		if index[v] == unvisited {
			strong(ir.SyncID(v))
		}
	}

	var cycles []Cycle
	for _, comp := range comps {
		if len(comp) == 1 && !self[comp[0]] {
			continue
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		in := map[ir.SyncID]bool{}
		for _, m := range comp {
			in[m] = true
		}
		cy := Cycle{Mutexes: comp}
		for _, e := range edges {
			if in[e.Held] && in[e.Acquired] {
				cy.Edges = append(cy.Edges, e)
			}
		}
		cycles = append(cycles, cy)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i].Mutexes[0] < cycles[j].Mutexes[0] })
	return cycles
}
