package staticanalysis

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return Analyze(prog)
}

// raceOn reports whether the result flags a potential race on the named
// global.
func raceOn(r *Result, name string) bool {
	g := r.Prog.GlobalByName(name)
	for _, race := range r.Races {
		if race.Global == g {
			return true
		}
	}
	return false
}

func TestLocksetProtectsCounter(t *testing.T) {
	r := analyzeSrc(t, `
int count;
mutex m;

func worker(n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		lock(m);
		count = count + 1;
		unlock(m);
	}
}

func main() {
	int h1 = spawn worker(3);
	int h2 = spawn worker(3);
	join(h1);
	join(h2);
	assert(count == 6, "lost update");
}
`)
	if raceOn(r, "count") {
		t.Fatalf("count is lock-protected and join-separated, got races:\n%s", r.Render())
	}
	g := r.Prog.GlobalByName("count")
	m := r.Prog.FuncByName("main")
	if r.ConsistentLock[g] < 0 {
		t.Errorf("count should have a consistent protecting lock")
	}
	// The worker accesses hold m; main's final read holds nothing but is
	// join-separated.
	for _, acc := range r.Accesses {
		want := acc.Fn != ir.FuncID(m)
		if got := acc.Locks.Has(0); got != want {
			t.Errorf("access in %s: Has(m)=%v want %v", r.Prog.Funcs[acc.Fn].Name, got, want)
		}
	}
	if st := r.ComputeStats(); st.LockExcluded == 0 || st.HBOrdered == 0 {
		t.Errorf("expected lock-excluded and hb-ordered pairs, got %+v", st)
	}
}

func TestLocksetInterprocedural(t *testing.T) {
	// The lock is taken in the caller; the access happens in a callee,
	// which must inherit the entry lockset through the call-graph
	// summary.
	r := analyzeSrc(t, `
int count;
mutex m;

func bump() {
	count = count + 1;
}

func worker() {
	lock(m);
	bump();
	unlock(m);
}

func main() {
	int h1 = spawn worker();
	int h2 = spawn worker();
	join(h1);
	join(h2);
}
`)
	if raceOn(r, "count") {
		t.Fatalf("callee inherits caller's lockset, got races:\n%s", r.Render())
	}
	if g := r.Prog.GlobalByName("count"); r.ConsistentLock[g] < 0 {
		t.Errorf("count should be consistently protected through the call")
	}
}

func TestLocksetRecursionConservative(t *testing.T) {
	// A recursive callee that can release m on some path without
	// reacquiring it saturates conservatively, so the caller cannot claim
	// m across the recursive call even though the releasing branch is
	// dynamically dead.
	r := analyzeSrc(t, `
int x;
mutex m;

func rec(n) {
	if (n > 1000) {
		unlock(m);
		rec(n - 1);
	}
}

func worker(n) {
	lock(m);
	rec(n);
	x = x + 1;
	unlock(m);
}

func main() {
	int h1 = spawn worker(1);
	int h2 = spawn worker(1);
	join(h1);
	join(h2);
}
`)
	var access *Access
	for i, acc := range r.Accesses {
		if acc.Global == r.Prog.GlobalByName("x") && acc.Write {
			access = &r.Accesses[i]
			break
		}
	}
	if access == nil {
		t.Fatal("no write access to x found")
	}
	if access.Locks.Has(0) {
		t.Errorf("must-held lockset across a recursive unlock/relock must drop m")
	}
	if !raceOn(r, "x") {
		t.Errorf("x must be flagged: the recursive summary cannot prove m held")
	}
}

func TestBranchMeetIntersects(t *testing.T) {
	// Only one arm of the branch locks, so the merge point holds nothing.
	r := analyzeSrc(t, `
int x;
mutex m;

func worker(c) {
	if (c) {
		lock(m);
	} else {
		yield();
	}
	x = x + 1;
	if (c) {
		unlock(m);
	}
}

func main() {
	int h1 = spawn worker(1);
	int h2 = spawn worker(0);
	join(h1);
	join(h2);
}
`)
	if !raceOn(r, "x") {
		t.Errorf("conditional locking must not count as protection:\n%s", r.Render())
	}
}

func TestSpawnJoinSeparation(t *testing.T) {
	// Unlocked accesses in main are ordered against the worker by the
	// spawn/join pair; worker instances race with each other.
	r := analyzeSrc(t, `
int x;

func worker() {
	x = x + 1;
}

func main() {
	x = 1;
	int h = spawn worker();
	join(h);
	assert(x == 2, "bump lost");
}
`)
	if raceOn(r, "x") {
		t.Fatalf("single worker fully separated by spawn/join, got:\n%s", r.Render())
	}

	r = analyzeSrc(t, `
int x;

func worker() {
	x = x + 1;
}

func main() {
	int h1 = spawn worker();
	int h2 = spawn worker();
	join(h1);
	join(h2);
}
`)
	if !raceOn(r, "x") {
		t.Errorf("two worker instances must race with each other")
	}
}

func TestSpawnInLoopNotSeparated(t *testing.T) {
	// A join whose spawn sits in a loop joins only the last handle, so
	// main's final read is not provably ordered.
	r := analyzeSrc(t, `
int x;

func worker() {
	x = x + 1;
}

func main() {
	int i;
	int h;
	for (i = 0; i < 3; i = i + 1) {
		h = spawn worker();
	}
	join(h);
	int v = x;
	print(v);
}
`)
	if !raceOn(r, "x") {
		t.Errorf("loop-spawned workers must stay concurrent with main's read")
	}
}

func TestCondSeparation(t *testing.T) {
	// Classic message passing: one signal site, one wait site, accesses
	// ordered across the condition variable.
	r := analyzeSrc(t, `
int data;
int ready;
mutex m;
cond c;

func consumer() {
	lock(m);
	wait(c, m);
	unlock(m);
	int v = data;
	print(v);
}

func main() {
	int h = spawn consumer();
	data = 42;
	lock(m);
	ready = 1;
	signal(c);
	unlock(m);
	join(h);
}
`)
	if raceOn(r, "data") {
		t.Errorf("data write before signal vs read after wait is ordered:\n%s", r.Render())
	}
}

func TestLockOrderCycle(t *testing.T) {
	r := analyzeSrc(t, `
int x;
mutex a;
mutex b;

func t1() {
	lock(a);
	lock(b);
	x = 1;
	unlock(b);
	unlock(a);
}

func main() {
	int h = spawn t1();
	lock(b);
	lock(a);
	x = 2;
	unlock(a);
	unlock(b);
	join(h);
}
`)
	if len(r.Cycles) != 1 {
		t.Fatalf("want 1 lock-order cycle, got %d:\n%s", len(r.Cycles), r.Render())
	}
	if len(r.Cycles[0].Mutexes) != 2 {
		t.Errorf("cycle should span both mutexes: %+v", r.Cycles[0])
	}
	if raceOn(r, "x") {
		t.Errorf("x is protected by a (and b) at every site")
	}
	if !strings.Contains(r.Render(), "lock-order cycle: a -> b -> a") {
		t.Errorf("render should show the cycle:\n%s", r.Render())
	}
}

func TestNoLockOrderCycleWhenOrdered(t *testing.T) {
	r := analyzeSrc(t, `
int x;
mutex a;
mutex b;

func t1() {
	lock(a);
	lock(b);
	x = 1;
	unlock(b);
	unlock(a);
}

func main() {
	int h = spawn t1();
	lock(a);
	lock(b);
	x = 2;
	unlock(b);
	unlock(a);
	join(h);
}
`)
	if len(r.Cycles) != 0 {
		t.Errorf("consistent a-then-b order must not report a cycle:\n%s", r.Render())
	}
	if len(r.LockEdges) != 1 {
		t.Errorf("want the single a->b edge, got %+v", r.LockEdges)
	}
}

func TestRenderDeterministic(t *testing.T) {
	src := `
int x;
int y;

func racer(v) {
	x = v;
	y = v;
}

func main() {
	int h1 = spawn racer(1);
	int h2 = spawn racer(2);
	join(h1);
	join(h2);
}
`
	first := analyzeSrc(t, src).Render()
	for i := 0; i < 5; i++ {
		if got := analyzeSrc(t, src).Render(); got != first {
			t.Fatalf("render not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.Contains(first, "race: x:") || !strings.Contains(first, "race: y:") {
		t.Errorf("both globals should be flagged:\n%s", first)
	}
}
