package staticanalysis_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/staticanalysis"
)

// TestAnalyzeDeterministic re-runs the full static analysis many times
// over the racy benchmarks and byte-compares the rendered reports. The
// analysis iterates Go maps internally (locksets, access tables, pair
// verdicts), so any missing sort shows up here as a flaky report — and a
// flaky report would flake the vet goldens and the races first-stage
// filter downstream.
func TestAnalyzeDeterministic(t *testing.T) {
	const rounds = 50
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := core.Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			want := staticanalysis.Analyze(prog).Render()
			for i := 1; i < rounds; i++ {
				if got := staticanalysis.Analyze(prog).Render(); got != want {
					t.Fatalf("round %d diverged:\n--- first ---\n%s\n--- round %d ---\n%s",
						i, want, i, got)
				}
			}
		})
	}
}
