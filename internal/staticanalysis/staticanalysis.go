// Package staticanalysis implements the lockset and static happens-before
// analyses that sharpen the paper's coarse Locksmith-style sharing pass
// (internal/escape) into real race and deadlock intelligence:
//
//   - a flow-sensitive must-held lockset dataflow over each function's CFG,
//     interprocedurally summarized over the call graph and conservative at
//     recursion (a recursive cycle saturates to "no lock provably held",
//     mirroring escape's multiplicity saturation);
//   - a static happens-before relation from spawn/join and single
//     signal/wait edges;
//   - a may-held lock-order graph with cycle detection for
//     potential-deadlock lint.
//
// The results feed three consumers: `clap vet` prints potential races and
// lock-order cycles with source positions; the recorder demotes
// consistently-single-lock accesses from scheduling visibility
// (internal/core, internal/vm); and symbolic execution stamps every memory
// SAP with its must-held lockset (internal/symexec), which the constraint
// preprocessing pass consults when the reachability closure is unavailable.
package staticanalysis

import (
	"sort"

	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/minic"
)

// Access is one static access site to a shared global.
type Access struct {
	Fn     ir.FuncID
	Instr  ir.Instr
	Global ir.GlobalID
	Write  bool
	Pos    minic.Pos
	// Locks is the must-held lockset at the access.
	Locks ir.LockSet
}

// Race is a potential data race: two conflicting access sites with
// disjoint must-held locksets and no static happens-before order.
type Race struct {
	Global ir.GlobalID
	A, B   Access
}

// PairVerdict classifies one conflicting access-site pair, for predictive
// passes (internal/races) that use the static analysis as a cheap
// first-stage filter before asking the solver.
type PairVerdict uint8

// Pair verdicts.
const (
	// PairUnknown: the pair was never examined (an access outside the
	// analyzed sites). Callers must treat it as potentially racing.
	PairUnknown PairVerdict = iota
	// PairRace: the pair survived both static filters — a potential race.
	PairRace
	// PairLockExcluded: a common must-held mutex excludes the pair.
	PairLockExcluded
	// PairOrdered: the static happens-before patterns order the pair.
	PairOrdered
)

// String names the verdict.
func (v PairVerdict) String() string {
	switch v {
	case PairRace:
		return "race"
	case PairLockExcluded:
		return "lock-excluded"
	case PairOrdered:
		return "ordered"
	}
	return "unknown"
}

// pairSite identifies an access site by source position and kind — the
// identity that survives into the symbolic execution's SAPs, so dynamic
// accesses can be mapped back to their static verdict.
type pairSite struct {
	pos   minic.Pos
	write bool
}

type pairKey struct {
	global ir.GlobalID
	a, b   pairSite
}

// canonPair orders the two sites so (a,b) and (b,a) share a key.
func canonPair(g ir.GlobalID, a, b pairSite) pairKey {
	if siteLess(b, a) {
		a, b = b, a
	}
	return pairKey{global: g, a: a, b: b}
}

func siteLess(a, b pairSite) bool {
	if a.pos.Line != b.pos.Line {
		return a.pos.Line < b.pos.Line
	}
	if a.pos.Col != b.pos.Col {
		return a.pos.Col < b.pos.Col
	}
	return !a.write && b.write
}

// PairVerdictAt returns the static verdict for the conflicting site pair
// on global g identified by source position and access kind. Distinct
// instruction pairs that collapse onto the same source sites are merged
// conservatively: any racing instance makes the merged verdict PairRace.
func (r *Result) PairVerdictAt(g ir.GlobalID, posA minic.Pos, writeA bool, posB minic.Pos, writeB bool) PairVerdict {
	return r.verdicts[canonPair(g, pairSite{posA, writeA}, pairSite{posB, writeB})]
}

// recordVerdict stores one pair's verdict under its canonical key.
func (r *Result) recordVerdict(g ir.GlobalID, a, b Access, v PairVerdict) {
	if r.verdicts == nil {
		r.verdicts = map[pairKey]PairVerdict{}
	}
	key := canonPair(g, pairSite{a.Pos, a.Write}, pairSite{b.Pos, b.Write})
	if prev, ok := r.verdicts[key]; ok && (prev == PairRace || v != PairRace) {
		return // a racing instance dominates; otherwise first verdict wins
	}
	r.verdicts[key] = v
}

// LockEdge is one lock-order edge: Held was may-held when Acquired was
// acquired at Pos (in function Fn).
type LockEdge struct {
	Held, Acquired ir.SyncID
	Fn             ir.FuncID
	Pos            minic.Pos
}

// Cycle is a strongly connected component of the lock-order graph with
// more than one acquisition order — a potential deadlock.
type Cycle struct {
	// Mutexes lists the cycle's members in ascending id order.
	Mutexes []ir.SyncID
	// Edges are the graph edges internal to the cycle.
	Edges []LockEdge
}

// Result is the complete static-analysis outcome for one program.
type Result struct {
	Prog    *ir.Program
	Sharing *escape.Result

	// Must maps every instruction to the mutexes provably held when it
	// executes (the must-held lockset at the program point before it).
	Must map[ir.Instr]ir.LockSet

	// ConsistentLock maps each global to the single mutex that excludes
	// every pair of concurrent conflicting accesses to it, or -1.
	// Happens-before-ordered pairs (e.g. main's post-join check of a
	// worker counter) need no lock and do not spoil the verdict.
	ConsistentLock []ir.SyncID

	// Demotable marks shared globals whose every conflicting access pair
	// is either excluded by the consistent lock or statically ordered —
	// the accesses the recorder may demote from scheduling visibility.
	Demotable []bool

	// Accesses lists every access site to a shared global, ordered by
	// (function, block, instruction).
	Accesses []Access

	// Races lists the potential races, sorted for stable output.
	Races []Race

	// LockEdges is the deduplicated lock-order graph.
	LockEdges []LockEdge
	// Cycles lists the lock-order cycles (potential deadlocks).
	Cycles []Cycle

	// pair counters carried from the race pass into ComputeStats.
	pairs, lockExcluded, hbOrdered int
	// verdicts records every examined pair's classification, keyed by
	// canonical (global, site, site); see PairVerdictAt.
	verdicts map[pairKey]PairVerdict
}

// Stats condenses the result for -verbose output and bench snapshots.
type Stats struct {
	SharedVars    int
	ProtectedVars int // shared globals with a consistent protecting lock
	AccessSites   int
	Pairs         int // conflicting access pairs examined
	LockExcluded  int // pairs proven mutually excluded by a common lock
	HBOrdered     int // pairs proven ordered by static happens-before
	Races         int
	LockEdges     int
	Cycles        int
}

// analysis carries the per-program scaffolding shared by the passes.
type analysis struct {
	prog *ir.Program
	res  *Result

	callees   [][]ir.FuncID // direct call targets per function
	callClose []map[ir.FuncID]bool
	loops     []map[ir.BlockID]bool
	cfgs      []*funcCFG

	// rootMult is the thread multiplicity per root function (main plus
	// every spawned function), saturating at "many" like escape.
	rootMult []multiplicity
	// spawnsOf lists the spawn sites per spawned function.
	spawnsOf map[ir.FuncID][]spawnSite
	// rootsOf caches which live roots each function can run in.
	rootsOf []([]ir.FuncID)
	// calledByLive marks functions invoked by an ordinary call from live
	// code; such a function's body may execute more than once per thread.
	calledByLive []bool
	// signals and waits index the live signal/broadcast and wait sites
	// per condition variable.
	signals, waits map[ir.SyncID][]syncSite

	// mayAt is the may-held lockset before each instruction, feeding the
	// lock-order graph.
	mayAt map[ir.Instr]ir.LockSet

	// needLock/candLock accumulate, per global, whether any concurrent
	// conflicting pair exists and the locks common to all of them.
	needLock []bool
	candLock []ir.LockSet
}

type syncSite struct {
	fn    ir.FuncID
	instr *ir.SyncOp
	block ir.BlockID
}

type spawnSite struct {
	fn     ir.FuncID // containing function
	instr  *ir.Spawn
	inLoop bool
	// joins are the join instructions consuming this spawn's handle, valid
	// only when the handle register has a single assignment.
	joins []*ir.SyncOp
}

// Analyze runs all three static passes on prog.
func Analyze(prog *ir.Program) *Result {
	a := &analysis{
		prog: prog,
		res: &Result{
			Prog:    prog,
			Sharing: escape.Analyze(prog),
			Must:    map[ir.Instr]ir.LockSet{},
		},
		spawnsOf: map[ir.FuncID][]spawnSite{},
	}
	a.buildScaffolding()
	a.locksets()
	a.collectAccesses()
	a.findRaces()
	a.consistentLocks()
	a.lockOrder()
	return a.res
}

// buildScaffolding computes the call graph, loop membership, per-function
// CFG helpers, spawn sites with join mapping, and root multiplicities.
func (a *analysis) buildScaffolding() {
	n := len(a.prog.Funcs)
	a.callees = make([][]ir.FuncID, n)
	a.loops = make([]map[ir.BlockID]bool, n)
	a.cfgs = make([]*funcCFG, n)
	for fi, fn := range a.prog.Funcs {
		a.loops[fi] = blocksInLoops(fn)
		a.cfgs[fi] = newFuncCFG(fn)
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch x := in.(type) {
				case *ir.Call:
					a.callees[fi] = append(a.callees[fi], x.Func)
				case *ir.Spawn:
					a.spawnsOf[x.Func] = append(a.spawnsOf[x.Func], spawnSite{
						fn: ir.FuncID(fi), instr: x, inLoop: a.loops[fi][b.ID],
						joins: joinsOf(fn, x),
					})
				}
			}
		}
	}

	// Transitive call closure (including self), by fixpoint.
	a.callClose = make([]map[ir.FuncID]bool, n)
	for fi := range a.prog.Funcs {
		a.callClose[fi] = map[ir.FuncID]bool{ir.FuncID(fi): true}
	}
	for changed := true; changed; {
		changed = false
		for fi := range a.prog.Funcs {
			for _, c := range a.callees[fi] {
				for g := range a.callClose[c] {
					if !a.callClose[fi][g] {
						a.callClose[fi][g] = true
						changed = true
					}
				}
			}
		}
	}

	a.rootMultiplicities()

	// rootsOf[f] = live roots whose call closure contains f.
	a.rootsOf = make([][]ir.FuncID, n)
	for fi := range a.prog.Funcs {
		for r := range a.prog.Funcs {
			if a.rootMult[r] == multNone {
				continue
			}
			if a.callClose[r][ir.FuncID(fi)] {
				a.rootsOf[fi] = append(a.rootsOf[fi], ir.FuncID(r))
			}
		}
	}

	// Live-code indexes for the happens-before pass: which functions are
	// called as ordinary functions, and where the signal/wait sites are.
	a.calledByLive = make([]bool, n)
	a.signals = map[ir.SyncID][]syncSite{}
	a.waits = map[ir.SyncID][]syncSite{}
	for fi, fn := range a.prog.Funcs {
		if len(a.rootsOf[fi]) == 0 {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch x := in.(type) {
				case *ir.Call:
					a.calledByLive[x.Func] = true
				case *ir.SyncOp:
					site := syncSite{fn: ir.FuncID(fi), instr: x, block: b.ID}
					switch x.Kind {
					case ir.BuiltinSignal, ir.BuiltinBroadcast:
						a.signals[x.Obj] = append(a.signals[x.Obj], site)
					case ir.BuiltinWait:
						a.waits[x.Obj] = append(a.waits[x.Obj], site)
					}
				}
			}
		}
	}
}

// rootMultiplicities mirrors escape's thread-multiplicity fixpoint: main
// runs once; a spawned function's multiplicity sums its spawn sites'
// spawner multiplicities, saturated at many inside loops.
func (a *analysis) rootMultiplicities() {
	n := len(a.prog.Funcs)
	a.rootMult = make([]multiplicity, n)
	a.rootMult[a.prog.MainID] = multOne
	for changed := true; changed; {
		changed = false
		runMult := make([]multiplicity, n)
		for fi := range a.prog.Funcs {
			if a.rootMult[fi] != multNone {
				runMult[fi] = runMult[fi].add(a.rootMult[fi])
			}
		}
		for again := true; again; {
			again = false
			for fi := range a.prog.Funcs {
				for _, c := range a.callees[fi] {
					combined := runMult[c].add(runMult[fi])
					if combined != runMult[c] {
						runMult[c] = combined
						again = true
					}
				}
			}
		}
		for f, sites := range a.spawnsOf {
			var m multiplicity
			for _, s := range sites {
				sm := runMult[s.fn]
				if sm == multNone {
					continue
				}
				if s.inLoop {
					sm = multMany
				}
				m = m.add(sm)
			}
			if f == a.prog.MainID {
				m = m.add(multOne) // main also runs as the initial thread
			}
			if m != a.rootMult[f] {
				a.rootMult[f] = m
				changed = true
			}
		}
	}
}

// joinsOf finds the join instructions consuming a spawn's handle. The
// lowering lands the handle in a fresh temp and copies it to the declared
// variable, so the handle is tracked through chains of singly-assigned
// registers; any re-assignment makes the mapping invalid (nil).
func joinsOf(fn *ir.Func, sp *ir.Spawn) []*ir.SyncOp {
	defs := map[ir.Reg]int{}
	lastDef := map[ir.Reg]ir.Instr{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if r, ok := defRegOf(in); ok {
				defs[r]++
				lastDef[r] = in
			}
		}
	}
	if defs[sp.Dst] != 1 {
		return nil
	}
	aliases := map[ir.Reg]bool{sp.Dst: true}
	for changed := true; changed; {
		changed = false
		for r, n := range defs {
			if n != 1 || aliases[r] {
				continue
			}
			if mv, ok := lastDef[r].(*ir.Mov); ok && aliases[mv.Src] {
				aliases[r] = true
				changed = true
			}
		}
	}
	var joins []*ir.SyncOp
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if so, ok := in.(*ir.SyncOp); ok && so.Kind == ir.BuiltinJoin && aliases[so.Arg] {
				joins = append(joins, so)
			}
		}
	}
	return joins
}

// defRegOf returns the register an instruction writes, if any.
func defRegOf(in ir.Instr) (ir.Reg, bool) {
	switch x := in.(type) {
	case *ir.Const:
		return x.Dst, true
	case *ir.ConstBool:
		return x.Dst, true
	case *ir.Mov:
		return x.Dst, true
	case *ir.UnOp:
		return x.Dst, true
	case *ir.BinOp:
		return x.Dst, true
	case *ir.LoadG:
		return x.Dst, true
	case *ir.LoadA:
		return x.Dst, true
	case *ir.Call:
		return x.Dst, x.Dst != ir.NoReg
	case *ir.Spawn:
		return x.Dst, true
	case *ir.Input:
		return x.Dst, true
	}
	return 0, false
}

// collectAccesses gathers every access site to a shared global in live
// functions, stamped with its must-held lockset.
func (a *analysis) collectAccesses() {
	for fi, fn := range a.prog.Funcs {
		if len(a.rootsOf[fi]) == 0 {
			continue // dead code never races
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				g, write := accessOf(in)
				if g < 0 || !a.res.Sharing.IsShared(g) {
					continue
				}
				a.res.Accesses = append(a.res.Accesses, Access{
					Fn: ir.FuncID(fi), Instr: in, Global: g, Write: write,
					Pos: ir.PosOf(in), Locks: a.res.Must[in],
				})
			}
		}
	}
}

// accessOf classifies an instruction as a global access; -1 for others.
func accessOf(in ir.Instr) (ir.GlobalID, bool) {
	switch x := in.(type) {
	case *ir.LoadG:
		return x.Global, false
	case *ir.StoreG:
		return x.Global, true
	case *ir.LoadA:
		return x.Array, false
	case *ir.StoreA:
		return x.Array, true
	}
	return -1, false
}

// consistentLocks derives the per-global demotion verdict from the race
// pass's pair accumulators: a global is demotable when its concurrent
// conflicting pairs all share one mutex (ConsistentLock) or when no such
// pair exists at all (purely happens-before-ordered traffic).
func (a *analysis) consistentLocks() {
	res := a.res
	res.ConsistentLock = make([]ir.SyncID, len(a.prog.Globals))
	res.Demotable = make([]bool, len(a.prog.Globals))
	seen := make([]bool, len(a.prog.Globals))
	for _, acc := range res.Accesses {
		seen[acc.Global] = true
	}
	for g := range a.prog.Globals {
		res.ConsistentLock[g] = -1
		if !seen[g] || !res.Sharing.IsShared(ir.GlobalID(g)) {
			continue
		}
		if a.needLock[g] {
			for m := range a.prog.Mutexes {
				if a.candLock[g].Has(ir.SyncID(m)) {
					res.ConsistentLock[g] = ir.SyncID(m)
					break
				}
			}
			res.Demotable[g] = res.ConsistentLock[g] >= 0
		} else {
			res.Demotable[g] = true
		}
	}
}

// ComputeStats condenses the result into counters.
func (r *Result) ComputeStats() Stats {
	st := Stats{
		SharedVars:  r.Sharing.SharedCount(),
		AccessSites: len(r.Accesses),
		Races:       len(r.Races),
		LockEdges:   len(r.LockEdges),
		Cycles:      len(r.Cycles),
	}
	for _, m := range r.ConsistentLock {
		if m >= 0 {
			st.ProtectedVars++
		}
	}
	st.Pairs, st.LockExcluded, st.HBOrdered = r.pairs, r.lockExcluded, r.hbOrdered
	return st
}

// pair counters are carried through from the race pass.
func (r *Result) setPairStats(pairs, lockExcluded, hbOrdered int) {
	r.pairs, r.lockExcluded, r.hbOrdered = pairs, lockExcluded, hbOrdered
}

// sortRaces orders races by (global, A position, B position).
func sortRaces(races []Race) {
	sort.Slice(races, func(i, j int) bool {
		a, b := races[i], races[j]
		if a.Global != b.Global {
			return a.Global < b.Global
		}
		if c := posCmp(a.A.Pos, b.A.Pos); c != 0 {
			return c < 0
		}
		return posCmp(a.B.Pos, b.B.Pos) < 0
	})
}

func posCmp(a, b minic.Pos) int {
	if a.Line != b.Line {
		return a.Line - b.Line
	}
	return a.Col - b.Col
}

// multiplicity saturates thread instance counts at "many" (escape's lattice).
type multiplicity uint8

const (
	multNone multiplicity = iota
	multOne
	multMany
)

func (m multiplicity) add(o multiplicity) multiplicity {
	s := uint8(m) + uint8(o)
	if s >= uint8(multMany) {
		return multMany
	}
	return multiplicity(s)
}

// blocksInLoops reports which blocks sit inside a natural loop (same
// approximation as escape: on a cycle through a back edge).
func blocksInLoops(fn *ir.Func) map[ir.BlockID]bool {
	in := map[ir.BlockID]bool{}
	back := fn.BackEdges()
	if len(back) == 0 {
		return in
	}
	reach := map[ir.BlockID]map[ir.BlockID]bool{}
	var dfs func(from ir.BlockID, b *ir.Block)
	dfs = func(from ir.BlockID, b *ir.Block) {
		if reach[from][b.ID] {
			return
		}
		reach[from][b.ID] = true
		for _, s := range b.Succs() {
			dfs(from, s)
		}
	}
	for _, b := range fn.Blocks {
		reach[b.ID] = map[ir.BlockID]bool{}
		dfs(b.ID, b)
	}
	for e := range back {
		src, dst := e[0], e[1]
		for _, b := range fn.Blocks {
			if reach[dst][b.ID] && reach[b.ID][src] {
				in[b.ID] = true
			}
		}
	}
	return in
}
