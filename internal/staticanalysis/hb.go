package staticanalysis

import (
	"sort"

	"repro/internal/ir"
)

// The happens-before pass decides, for a pair of access sites that share
// no lock, whether some pair of live thread instances could execute them
// concurrently. It is deliberately conservative: a pair is ordered only
// when one of a few airtight structural patterns applies, all of which
// require the ordering function to execute exactly once (a mult-one root
// body that is never called as an ordinary function):
//
//   - spawn/join separation: every spawn site of the other root sits in
//     the observer's own root body, and the access is either before the
//     spawn on every path or dominated by a join of its handle;
//   - phase separation: every instance of one root is joined before any
//     instance of the other is spawned;
//   - signal/wait separation: a condition variable with a single live
//     signal site and a single live wait site, neither in a loop, orders
//     accesses before the signal against accesses after the wait.
//
// Anything the patterns cannot prove is reported as potentially
// concurrent, which errs toward false positives in `vet` and toward
// keeping candidates in the constraint system — never toward missing a
// real race.

// funcCFG carries instruction-granularity reachability and dominance for
// one function.
type funcCFG struct {
	fn  *ir.Func
	pos map[ir.Instr]ipos
	// succReach[b1][b2] is true when b2's start is reachable from b1's
	// terminator via one or more edges.
	succReach [][]bool
}

type ipos struct {
	block ir.BlockID
	idx   int
}

func newFuncCFG(fn *ir.Func) *funcCFG {
	c := &funcCFG{fn: fn, pos: map[ir.Instr]ipos{}}
	nb := len(fn.Blocks)
	c.succReach = make([][]bool, nb)
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			c.pos[in] = ipos{b.ID, i}
		}
		row := make([]bool, nb)
		for _, s := range b.Succs() {
			row[s.ID] = true
		}
		c.succReach[b.ID] = row
	}
	// Transitive closure; the CFGs are tiny.
	for k := 0; k < nb; k++ {
		for i := 0; i < nb; i++ {
			if !c.succReach[i][k] {
				continue
			}
			for j := 0; j < nb; j++ {
				if c.succReach[k][j] {
					c.succReach[i][j] = true
				}
			}
		}
	}
	return c
}

// instrReach reports whether an execution can pass through x and later
// reach y (both in this function).
func (c *funcCFG) instrReach(x, y ir.Instr) bool {
	px, ok1 := c.pos[x]
	py, ok2 := c.pos[y]
	if !ok1 || !ok2 {
		return true // unknown instruction: assume reachable
	}
	if px.block == py.block && py.idx > px.idx {
		return true
	}
	return c.succReach[px.block][py.block]
}

// dominates reports whether every path from the entry to p executes j
// first. Computed by flooding the CFG from the entry while refusing to
// execute past j; p dominates-checks as "not reachable without j".
func (c *funcCFG) dominates(j, p ir.Instr) bool {
	pj, ok1 := c.pos[j]
	pp, ok2 := c.pos[p]
	if !ok1 || !ok2 || j == p {
		return false
	}
	visited := make([]bool, len(c.fn.Blocks))
	visited[c.fn.Entry.ID] = true
	queue := []*ir.Block{c.fn.Entry}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b.ID == pj.block {
			continue // execution stops at j inside this block
		}
		for _, s := range b.Succs() {
			if !visited[s.ID] {
				visited[s.ID] = true
				queue = append(queue, s)
			}
		}
	}
	if pp.block == pj.block {
		return !(visited[pj.block] && pp.idx < pj.idx)
	}
	return !visited[pp.block]
}

// findRaces examines every conflicting pair of shared access sites.
func (a *analysis) findRaces() {
	byGlobal := map[ir.GlobalID][]Access{}
	var order []ir.GlobalID
	for _, acc := range a.res.Accesses {
		if _, ok := byGlobal[acc.Global]; !ok {
			order = append(order, acc.Global)
		}
		byGlobal[acc.Global] = append(byGlobal[acc.Global], acc)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	// Per-global lock-consistency accumulators for the demotion verdict:
	// the intersection of common locksets over the concurrent conflicting
	// pairs (HB-ordered pairs need no lock and do not constrain it).
	a.needLock = make([]bool, len(a.prog.Globals))
	a.candLock = make([]ir.LockSet, len(a.prog.Globals))
	for i := range a.candLock {
		a.candLock[i] = ir.AllLocks(a.prog)
	}

	pairs, lockExcl, hbOrd := 0, 0, 0
	for _, g := range order {
		accs := byGlobal[g]
		for i := 0; i < len(accs); i++ {
			for j := i; j < len(accs); j++ {
				x, y := accs[i], accs[j]
				if !x.Write && !y.Write {
					continue
				}
				pairs++
				common := x.Locks.Inter(y.Locks)
				conc := a.concurrent(x, y)
				if conc {
					a.needLock[g] = true
					a.candLock[g] = a.candLock[g].Inter(common)
				}
				if !common.Empty() {
					lockExcl++
					a.res.recordVerdict(g, x, y, PairLockExcluded)
					continue
				}
				if !conc {
					hbOrd++
					a.res.recordVerdict(g, x, y, PairOrdered)
					continue
				}
				a.res.recordVerdict(g, x, y, PairRace)
				a.res.Races = append(a.res.Races, Race{Global: g, A: x, B: y})
			}
		}
	}
	sortRaces(a.res.Races)
	a.res.setPairStats(pairs, lockExcl, hbOrd)
}

// concurrent reports whether some pair of live thread instances can run x
// and y with no happens-before order between them.
func (a *analysis) concurrent(x, y Access) bool {
	for _, r1 := range a.rootsOf[x.Fn] {
		for _, r2 := range a.rootsOf[y.Fn] {
			if r1 == r2 {
				if a.rootMult[r1] == multMany {
					// Two instances of the same thread body are mutually
					// unordered.
					return true
				}
				continue // a single instance orders its own accesses
			}
			if a.spawnSeparated(x, r1, r2) || a.spawnSeparated(y, r2, r1) {
				continue
			}
			if a.phaseSeparated(r1, r2) {
				continue
			}
			if a.condSeparated(x, r1, y, r2) || a.condSeparated(y, r2, x, r1) {
				continue
			}
			return true
		}
	}
	return false
}

// runsOnce reports whether root r's body executes exactly once: a
// mult-one root never invoked as an ordinary function.
func (a *analysis) runsOnce(r ir.FuncID) bool {
	return a.rootMult[r] == multOne && !a.calledByLive[r]
}

// spawnSeparated reports whether acc (running in root spawner) is ordered
// against every instance of root spawned: each spawn site sits in
// spawner's once-executed body, and every occurrence of acc there is
// either always before the spawn or dominated by a join of its handle.
func (a *analysis) spawnSeparated(acc Access, spawner, spawned ir.FuncID) bool {
	if !a.runsOnce(spawner) {
		return false
	}
	sites := a.spawnsOf[spawned]
	if len(sites) == 0 {
		return false
	}
	cfg := a.cfgs[spawner]
	ps := a.positions(acc, spawner)
	if len(ps) == 0 {
		return false
	}
	for _, s := range sites {
		if s.fn != spawner {
			return false
		}
		for _, p := range ps {
			if !cfg.instrReach(s.instr, p) {
				continue // p can never follow the spawn: always before it
			}
			if s.inLoop || len(s.joins) == 0 {
				return false
			}
			joined := false
			for _, j := range s.joins {
				if cfg.dominates(j, p) {
					joined = true
					break
				}
			}
			if !joined {
				return false
			}
		}
	}
	return true
}

// phaseSeparated reports whether roots r1 and r2 run in disjoint phases:
// one is fully joined before the other is ever spawned, with all spawn
// sites in one once-executed function.
func (a *analysis) phaseSeparated(r1, r2 ir.FuncID) bool {
	return a.rootAfterRoot(r1, r2) || a.rootAfterRoot(r2, r1)
}

func (a *analysis) rootAfterRoot(rEarly, rLate ir.FuncID) bool {
	se, sl := a.spawnsOf[rEarly], a.spawnsOf[rLate]
	if len(se) == 0 || len(sl) == 0 {
		return false
	}
	f0 := se[0].fn
	for _, s := range append(se, sl...) {
		if s.fn != f0 {
			return false
		}
	}
	if a.rootMult[f0] != multOne || a.calledByLive[f0] {
		return false
	}
	cfg := a.cfgs[f0]
	for _, e := range se {
		if e.inLoop || len(e.joins) == 0 {
			return false
		}
		for _, l := range sl {
			dominated := false
			for _, j := range e.joins {
				if cfg.dominates(j, l.instr) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
	}
	return true
}

// condSeparated reports whether x (in root rs, the signaller) is ordered
// before y (in root rw, the waiter) through a condition variable with a
// single live signal site and a single live wait site.
func (a *analysis) condSeparated(x Access, rs ir.FuncID, y Access, rw ir.FuncID) bool {
	if !a.runsOnce(rs) || !a.runsOnce(rw) {
		return false
	}
	for ci := range a.prog.Conds {
		c := ir.SyncID(ci)
		sigs, waits := a.signals[c], a.waits[c]
		if len(sigs) != 1 || len(waits) != 1 {
			continue
		}
		sg, wt := sigs[0], waits[0]
		if sg.fn != rs || wt.fn != rw {
			continue
		}
		if a.loops[sg.fn][sg.block] || a.loops[wt.fn][wt.block] {
			continue
		}
		cfgS, cfgW := a.cfgs[sg.fn], a.cfgs[wt.fn]
		psx := a.positions(x, sg.fn)
		psy := a.positions(y, wt.fn)
		if len(psx) == 0 || len(psy) == 0 {
			continue
		}
		ok := true
		for _, p := range psx {
			if cfgS.instrReach(sg.instr, p) {
				ok = false // x might execute after the signal
				break
			}
		}
		for _, p := range psy {
			if !ok || !cfgW.dominates(wt.instr, p) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// positions returns the instructions in f at which acc can be "in
// flight": the access itself when it lives in f, otherwise every call in
// f whose callee closure contains acc's function.
func (a *analysis) positions(acc Access, f ir.FuncID) []ir.Instr {
	if acc.Fn == f {
		return []ir.Instr{acc.Instr}
	}
	var ps []ir.Instr
	for _, b := range a.prog.Funcs[f].Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && a.callClose[c.Func][acc.Fn] {
				ps = append(ps, in)
			}
		}
	}
	return ps
}
