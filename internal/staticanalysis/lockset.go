package staticanalysis

import "repro/internal/ir"

// The lockset pass runs two dataflow analyses over every function:
//
//   - must-held (intersection meet): which mutexes are provably held at a
//     program point on every path. This feeds race suppression, the
//     demotion verdict and the per-SAP MustLocks stamp.
//   - may-held (union meet): which mutexes might be held. This feeds the
//     lock-order graph.
//
// Both use the same per-mutex transfer functions (lock sets the bit,
// unlock clears it, everything else is the identity), so a function's
// effect on any entry set E is exactly (E ∩ exitTop) ∪ exitBot, where
// exitTop/exitBot are the exit sets for entry = all-locks / no-locks.
// That pair is the interprocedural summary; a call site applies it
// directly. Summaries start pessimistic (a call releases everything it
// might and acquires nothing it must) and improve monotonically to a
// fixpoint, which saturates call-graph recursion conservatively — the
// lockset analogue of escape's multiplicity saturation.
//
// wait(c, m) releases m while blocked but has reacquired it by the time
// the instruction completes, so it is the identity for both analyses:
// every instruction after it still holds m, and the instantaneous
// mutual-exclusion claims the race pass makes remain valid because the
// waiting thread performs no accesses while m is released.

// flowResult is one intraprocedural dataflow run.
type flowResult struct {
	exit ir.LockSet
	// at is the state immediately before each instruction.
	at map[ir.Instr]ir.LockSet
}

// locksets computes summaries, entry sets, and the final per-instruction
// must-held map (a.res.Must) and may-held map (a.mayAt).
func (a *analysis) locksets() {
	prog := a.prog
	n := len(prog.Funcs)
	top := ir.AllLocks(prog)

	// Phase 1: summary fixpoint. Summaries depend only on each other.
	sumTopM := make([]ir.LockSet, n) // must, entry = top
	sumBotM := make([]ir.LockSet, n) // must, entry = none
	sumTopY := make([]ir.LockSet, n) // may, entry = top
	sumBotY := make([]ir.LockSet, n) // may, entry = none
	for i := range sumTopY {
		sumTopY[i], sumBotY[i] = top, top
	}
	for changed := true; changed; {
		changed = false
		for fi, fn := range prog.Funcs {
			rT := a.flow(fn, top, false, sumTopM, sumBotM)
			rB := a.flow(fn, 0, false, sumTopM, sumBotM)
			if rT.exit != sumTopM[fi] || rB.exit != sumBotM[fi] {
				sumTopM[fi], sumBotM[fi] = rT.exit, rB.exit
				changed = true
			}
			yT := a.flow(fn, top, true, sumTopY, sumBotY)
			yB := a.flow(fn, 0, true, sumTopY, sumBotY)
			if yT.exit != sumTopY[fi] || yB.exit != sumBotY[fi] {
				sumTopY[fi], sumBotY[fi] = yT.exit, yB.exit
				changed = true
			}
		}
	}

	// Phase 2: entry-set fixpoint with the summaries fixed. A root
	// (main or a spawned function) starts with no locks; any other live
	// function's must entry is the intersection over its live call
	// sites, and its may entry the union. Non-root must entries start
	// optimistic (top) and only shrink, so the converged greatest
	// fixpoint under-approximates every real call's held set.
	entryM := make([]ir.LockSet, n)
	entryY := make([]ir.LockSet, n)
	for fi := range prog.Funcs {
		if a.rootMult[fi] == multNone {
			entryM[fi] = top
		}
	}
	for changed := true; changed; {
		changed = false
		accM := make([]ir.LockSet, n)
		accY := make([]ir.LockSet, n)
		seen := make([]bool, n)
		for fi, fn := range prog.Funcs {
			if len(a.rootsOf[fi]) == 0 {
				continue // dead functions never call anyone
			}
			rM := a.flow(fn, entryM[fi], false, sumTopM, sumBotM)
			rY := a.flow(fn, entryY[fi], true, sumTopY, sumBotY)
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					c, ok := in.(*ir.Call)
					if !ok {
						continue
					}
					if seen[c.Func] {
						accM[c.Func] = accM[c.Func].Inter(rM.at[in])
					} else {
						accM[c.Func] = rM.at[in]
						seen[c.Func] = true
					}
					accY[c.Func] = accY[c.Func].Union(rY.at[in])
				}
			}
		}
		for fi := range prog.Funcs {
			if a.rootMult[fi] != multNone {
				continue // roots are pinned to the empty entry set
			}
			newM, newY := entryM[fi], entryY[fi]
			if seen[fi] {
				newM = accM[fi]
			}
			newY = accY[fi]
			if newM != entryM[fi] || newY != entryY[fi] {
				entryM[fi], entryY[fi] = newM, newY
				changed = true
			}
		}
	}

	// Phase 3: record the converged per-instruction states.
	a.mayAt = map[ir.Instr]ir.LockSet{}
	for fi, fn := range prog.Funcs {
		if len(a.rootsOf[fi]) == 0 {
			continue // dead code keeps the zero (empty) lockset
		}
		rM := a.flow(fn, entryM[fi], false, sumTopM, sumBotM)
		rY := a.flow(fn, entryY[fi], true, sumTopY, sumBotY)
		for in, s := range rM.at {
			a.res.Must[in] = s
		}
		for in, s := range rY.at {
			a.mayAt[in] = s
		}
	}
}

// flow runs one intraprocedural pass over fn with the given entry set.
// may selects the meet: union (may-held) or intersection (must-held).
func (a *analysis) flow(fn *ir.Func, entry ir.LockSet, may bool, sumTop, sumBot []ir.LockSet) flowResult {
	res := flowResult{at: map[ir.Instr]ir.LockSet{}}
	nb := len(fn.Blocks)
	in := make([]ir.LockSet, nb)
	seen := make([]bool, nb)
	in[fn.Entry.ID] = entry
	seen[fn.Entry.ID] = true
	work := []*ir.Block{fn.Entry}
	exitSeen := false
	var exit ir.LockSet
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		cur := in[b.ID]
		for _, instr := range b.Instrs {
			res.at[instr] = cur
			cur = transfer(cur, instr, sumTop, sumBot)
		}
		if _, ok := b.Term.(*ir.Return); ok {
			if !exitSeen {
				exit, exitSeen = cur, true
			} else if may {
				exit = exit.Union(cur)
			} else {
				exit = exit.Inter(cur)
			}
		}
		for _, s := range b.Succs() {
			nv := cur
			if seen[s.ID] {
				if may {
					nv = in[s.ID].Union(cur)
				} else {
					nv = in[s.ID].Inter(cur)
				}
				if nv == in[s.ID] {
					continue
				}
			}
			in[s.ID] = nv
			seen[s.ID] = true
			work = append(work, s)
		}
	}
	if !exitSeen && !may {
		// A function that never returns constrains no caller: its must
		// exit is vacuously everything.
		exit = ir.AllLocks(a.prog)
	}
	res.exit = exit
	return res
}

// transfer applies one instruction's effect to a lockset. It is shared by
// the must and may analyses; only the meet differs.
func transfer(cur ir.LockSet, in ir.Instr, sumTop, sumBot []ir.LockSet) ir.LockSet {
	switch x := in.(type) {
	case *ir.SyncOp:
		switch x.Kind {
		case ir.BuiltinLock:
			return cur.With(x.Obj)
		case ir.BuiltinUnlock:
			return cur.Without(x.Obj)
		}
	case *ir.Call:
		return cur.Inter(sumTop[x.Func]).Union(sumBot[x.Func])
	}
	return cur
}
