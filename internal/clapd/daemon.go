// Daemon assembly: configuration, the in-memory job table mirroring the
// journal, admission control with backpressure, restart recovery, and
// graceful drain.
package clapd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config parameterizes a daemon.
type Config struct {
	// Dir is the daemon's state directory (journal + object store).
	Dir string
	// Workers sizes the worker pool (default 2; <0 = no workers, for
	// drain drills and tests that stage jobs without executing them).
	Workers int
	// QueueDepth bounds the active (queued+running+retrying) job count;
	// ingests past it are refused with ErrSaturated → HTTP 429
	// (default 64). Recovery re-queues are exempt: an accepted job is
	// never dropped for arriving before a crash instead of after.
	QueueDepth int
	// MaxUploadBytes caps one ingest body (default DefaultMaxBundleBytes).
	MaxUploadBytes int64
	// MaxAttempts bounds executions per job before it is poisoned
	// (default 3).
	MaxAttempts int
	// JobTimeout bounds one pipeline execution, reusing the deadline
	// plumbing threaded through solve/replay (default 2m).
	JobTimeout time.Duration
	// RetryBase is the backoff unit: attempt n waits
	// RetryBase·2ⁿ⁻¹ (capped at 64×) plus ≤50% deterministic jitter
	// (default 500ms; tests use ~1ms).
	RetryBase time.Duration
	// CacheDir is the content-addressed artifact cache directory shared
	// by job executions: preprocess snapshots and solved schedules are
	// keyed by bundle digest, so a retry (or a re-upload after the store
	// was pruned) skips straight to the cached schedule's re-validation.
	// Default: "cache" under Dir. Set to "-" to disable caching.
	CacheDir string
	// Obs receives the daemon's spans and clapd.* counters (one trace
	// for the process; per-job traces are separate). Created when nil.
	Obs *obs.Trace
	// LogWriter receives the structured event log — one JSON object per
	// line, see Event (default: discarded).
	LogWriter io.Writer
}

func (c *Config) fill() {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = DefaultMaxBundleBytes
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 500 * time.Millisecond
	}
}

// Job is the in-memory view of one journaled job.
type Job struct {
	Digest  string `json:"digest"`
	Name    string `json:"name,omitempty"`
	State   State  `json:"state"`
	Attempt int    `json:"attempt"`
	Err     string `json:"err,omitempty"`
	// Recovered marks a job re-queued by restart recovery.
	Recovered bool `json:"recovered,omitempty"`

	// enteredAt stamps the current state's start so the event log can
	// report how long the job spent in each state. In-memory only: the
	// journal carries states, not wall-clock.
	enteredAt time.Time
}

// ErrSaturated refuses an ingest when the active-job budget is spent.
// It maps to HTTP 429 + Retry-After.
var ErrSaturated = errors.New("clapd: queue saturated")

// ErrDraining refuses an ingest while the daemon is shutting down.
// It maps to HTTP 503.
var ErrDraining = errors.New("clapd: draining")

// Daemon is one reproduction service instance.
type Daemon struct {
	cfg     Config
	store   *Store
	journal *Journal
	tr      *obs.Trace
	log     *EventLog
	// cache is the cross-attempt artifact cache (nil when disabled); see
	// Config.CacheDir.
	cache *core.DiskCache

	mu     sync.Mutex
	jobs   map[string]*Job
	queue  []string // digests awaiting a worker, FIFO
	busy   int      // workers currently executing a job
	wake   chan struct{}
	drain  bool
	closed bool

	// stop broadcasts drain to blocked workers and retry timers.
	stop     chan struct{}
	stopOnce sync.Once

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup // workers
	timers sync.WaitGroup // pending retry timers
}

// Open recovers daemon state from dir and starts the worker pool.
//
// Recovery policy per journaled job: terminal states are kept as the
// cached record; queued/retrying jobs re-enter the queue unchanged; a
// job that was *running* when the process died has its attempt charged
// (the crash may have been the job's fault) and is re-queued, or
// poisoned when that spends the budget. The journal is the only
// authority — an accepted job either reaches exactly one terminal state
// or is still pending, never silently lost.
func Open(cfg Config) (*Daemon, error) {
	cfg.fill()
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	journal, entries, jrec, err := OpenJournal(cfg.Dir)
	if err != nil {
		return nil, err
	}
	tr := cfg.Obs
	if tr == nil {
		tr = obs.NewTrace("clapd")
	}
	logw := cfg.LogWriter
	if logw == nil {
		logw = io.Discard
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		cfg:     cfg,
		store:   store,
		journal: journal,
		tr:      tr,
		log:     NewEventLog(logw),
		jobs:    map[string]*Job{},
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	switch cfg.CacheDir {
	case "-":
		// caching disabled
	case "":
		cfg.CacheDir = filepath.Join(cfg.Dir, "cache")
		fallthrough
	default:
		cache, cerr := core.OpenDiskCache(cfg.CacheDir)
		if cerr != nil {
			// The cache is an accelerator, never a dependency: log and run
			// without it.
			d.log.Logf("artifact cache disabled: %v", cerr)
		} else {
			d.cache = cache
		}
	}
	if jrec.DroppedBytes > 0 {
		d.log.Logf("journal recovery dropped %dB tail: %s", jrec.DroppedBytes, jrec.DroppedReason)
		d.reg().Add("clapd.journal.dropped.bytes", int64(jrec.DroppedBytes))
	}
	// Pin the live gauges to 0 so an idle daemon's /metrics already
	// carries them; recovery below overwrites the queue depth.
	d.setQueueGauge()
	d.setBusyGauge()
	if err := d.recover(entries); err != nil {
		journal.Close()
		cancel()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go d.workerLoop(i)
	}
	return d, nil
}

func (d *Daemon) reg() *obs.Registry { return d.tr.Reg() }

// recover rebuilds the job table from replayed journal entries and
// re-queues the unfinished ones.
func (d *Daemon) recover(entries []Entry) error {
	for _, e := range entries {
		job := &Job{Digest: e.Digest, State: e.State, Attempt: e.Attempt, Err: e.Err}
		d.jobs[e.Digest] = job
		if e.State.Terminal() {
			continue
		}
		job.Recovered = true
		switch e.State {
		case StateRunning:
			// The process died with this job in flight; charge the
			// attempt that was cut short.
			if e.Attempt >= d.cfg.MaxAttempts {
				if err := d.transition(job, StatePoisoned, e.Attempt,
					fmt.Sprintf("crashed mid-run on attempt %d/%d", e.Attempt, d.cfg.MaxAttempts)); err != nil {
					return err
				}
				d.reg().Add("clapd.recovered.poisoned", 1)
				continue
			}
			if err := d.transition(job, StateRetrying, e.Attempt, "recovered after crash mid-run"); err != nil {
				return err
			}
		case StateQueued, StateRetrying:
			// Already durable in the right state; no new journal entry.
		}
		d.queue = append(d.queue, e.Digest)
		d.reg().Add("clapd.recovered.requeued", 1)
	}
	d.setQueueGauge()
	return nil
}

// transition journals a state change and mirrors it in memory. It
// refuses to leave a terminal state: double completion is a bug the
// chaos tests hunt, so it is loud, counted, and refused. Callers hold no
// lock or d.mu per journaling's own lock; job field writes happen under
// d.mu via the caller or during single-threaded recovery.
func (d *Daemon) transition(job *Job, to State, attempt int, jobErr string) error {
	if job.State.Terminal() {
		d.reg().Add("clapd.jobs.doublecomplete.refused", 1)
		return fmt.Errorf("clapd: job %.12s is already %s, refusing %s", job.Digest, job.State, to)
	}
	if _, err := d.journal.Append(job.Digest, to, attempt, jobErr); err != nil {
		return err
	}
	from := job.State
	now := time.Now()
	var dur time.Duration
	if !job.enteredAt.IsZero() {
		dur = now.Sub(job.enteredAt)
	}
	job.State = to
	job.Attempt = attempt
	job.Err = jobErr
	job.enteredAt = now
	d.log.Emit(Event{
		Kind:    "job.transition",
		Digest:  job.Digest,
		From:    string(from),
		State:   string(to),
		Attempt: attempt,
		DurNS:   int64(dur),
		Err:     jobErr,
	})
	return nil
}

// IngestStatus classifies an accepted-or-deduped ingest.
type IngestStatus int

// Ingest outcomes.
const (
	// IngestAccepted queued a new job.
	IngestAccepted IngestStatus = iota
	// IngestCached found a completed job: the reproduction is served
	// from the store with no new pipeline run.
	IngestCached
	// IngestInFlight found the digest already queued/running/retrying;
	// the upload is shed and the client polls the existing job.
	IngestInFlight
)

// IngestResult reports an ingest decision.
type IngestResult struct {
	Status IngestStatus
	Digest string
	Job    Job
}

// Ingest admits one uploaded bundle: validate, digest, dedupe, persist,
// journal, queue — in that order, so every 201 is durable and every
// duplicate costs no pipeline work. The raw bytes must already be
// length-capped by the caller (the HTTP layer uses MaxBytesReader);
// DecodeBundle re-checks as defense in depth.
func (d *Daemon) Ingest(raw []byte) (*IngestResult, error) {
	b, err := DecodeBundle(raw, d.cfg.MaxUploadBytes)
	if err != nil {
		var tooLarge *TooLargeError
		if errors.As(err, &tooLarge) {
			d.reg().Add("clapd.ingest.rejected.toolarge", 1)
		} else {
			d.reg().Add("clapd.ingest.rejected.badbundle", 1)
		}
		return nil, err
	}
	digest := b.Digest()

	d.mu.Lock()
	defer d.mu.Unlock()
	if job, ok := d.jobs[digest]; ok {
		res := &IngestResult{Digest: digest, Job: *job}
		if job.State == StateDone {
			res.Status = IngestCached
			d.reg().Add("clapd.ingest.dedup.cached", 1)
		} else if job.State == StatePoisoned {
			// A poisoned job is terminal too: re-uploading the same bytes
			// would fail the same way, so serve the recorded failure.
			res.Status = IngestCached
			d.reg().Add("clapd.ingest.dedup.poisoned", 1)
		} else {
			res.Status = IngestInFlight
			d.reg().Add("clapd.ingest.dedup.inflight", 1)
		}
		return res, nil
	}
	if d.drain || d.closed {
		return nil, ErrDraining
	}
	if d.activeLocked() >= d.cfg.QueueDepth {
		d.reg().Add("clapd.ingest.rejected.saturated", 1)
		return nil, ErrSaturated
	}
	// Persist the bundle before journaling acceptance: recovery must
	// always find the bytes for a journaled job.
	if _, err := d.store.PutBundle(digest, raw); err != nil {
		return nil, err
	}
	job := &Job{Digest: digest, Name: b.Name, State: StateQueued, enteredAt: time.Now()}
	if _, err := d.journal.Append(digest, StateQueued, 0, ""); err != nil {
		// Not accepted: nothing durable, the client must retry.
		return nil, err
	}
	d.log.Emit(Event{Kind: "job.transition", Digest: digest, State: string(StateQueued)})
	d.jobs[digest] = job
	d.queue = append(d.queue, digest)
	d.setQueueGauge()
	d.notify()
	d.reg().Add("clapd.ingest.accepted", 1)
	return &IngestResult{Status: IngestAccepted, Digest: digest, Job: *job}, nil
}

// activeLocked counts jobs holding an admission slot. Callers hold d.mu.
func (d *Daemon) activeLocked() int {
	n := 0
	for _, j := range d.jobs {
		if !j.State.Terminal() {
			n++
		}
	}
	return n
}

// RetryAfter estimates seconds until a saturated queue likely has room:
// one slot must fully drain, so scale the per-job budget guess by the
// backlog per worker. Clamped to [1, 60].
func (d *Daemon) RetryAfter() int {
	d.mu.Lock()
	active := d.activeLocked()
	d.mu.Unlock()
	workers := d.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	secs := (active/workers + 1) * 2
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// JobView returns a snapshot of one job.
func (d *Daemon) JobView(digest string) (Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[digest]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs snapshots the job table, ordered by digest.
func (d *Daemon) Jobs() []Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Job, 0, len(d.jobs))
	for _, j := range d.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Store exposes the artifact store (read paths of the HTTP layer).
func (d *Daemon) Store() *Store { return d.store }

// Trace exposes the daemon's observability trace (GET /v1/stats).
func (d *Daemon) Trace() *obs.Trace { return d.tr }

// Draining reports whether shutdown has begun.
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.drain
}

// notify wakes one idle worker (best effort; workers also poll on
// queue-affecting transitions).
func (d *Daemon) notify() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

func (d *Daemon) setQueueGauge() {
	d.reg().Set("clapd.queue.depth", int64(len(d.queue)))
}

// setBusyGauge republishes the busy-worker count. Callers hold d.mu
// (or run single-threaded at Open).
func (d *Daemon) setBusyGauge() {
	d.reg().Set("clapd.workers.busy", int64(d.busy))
}

// pop takes the next queued digest, blocking until work arrives or the
// daemon stops. ok=false means shut down: a draining daemon leaves
// queued jobs untouched — their journaled state is their checkpoint, and
// the next start re-queues them.
func (d *Daemon) pop() (string, bool) {
	for {
		d.mu.Lock()
		if d.drain || d.closed {
			d.mu.Unlock()
			return "", false
		}
		if len(d.queue) > 0 {
			digest := d.queue[0]
			d.queue = d.queue[1:]
			d.setQueueGauge()
			d.mu.Unlock()
			return digest, true
		}
		d.mu.Unlock()
		select {
		case <-d.wake:
		case <-d.stop:
			return "", false
		case <-d.ctx.Done():
			return "", false
		}
	}
}

// Shutdown drains gracefully: stop admitting, let running jobs finish,
// keep queued jobs journaled for the next start, then close the WAL.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.drain = true
	d.mu.Unlock()
	// Broadcast: idle workers and pending retry timers exit; a running
	// worker finishes its current job first.
	d.stopOnce.Do(func() { close(d.stop) })

	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		d.timers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Out of patience: hard-cancel in-flight pipelines (the deadline
		// plumbing aborts solves between decisions) and wait.
		d.cancel()
		<-done
		err = ctx.Err()
	}
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cancel()
	if cerr := d.journal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
