// Content-addressed artifact store. Every accepted bundle and every
// artifact a job produces lives under the bundle's digest:
//
//	<dir>/objects/<digest[:2]>/<digest>/bundle.json
//	                                   /result.json
//	                                   /metrics.json
//	                                   /timeline.json
//	                                   /explain.txt
//
// All writes are crash-safe: payload to a unique temp file in the target
// directory, fsync, rename over the final name, fsync the directory. A
// crash mid-write leaves only a *.tmp-* file, which Open sweeps; a
// visible file is always complete. Concurrent writers of the same digest
// are idempotent — both rename identical content, last one wins.
//
// The file helpers consult faultinject fire points (clapd.fs.create,
// clapd.fs.write, clapd.fs.sync, clapd.fs.rename) so the chaos tests can
// fail or kill the process at every step of the persistence path.
package clapd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Artifact names a store supports per digest.
const (
	ArtifactBundle   = "bundle.json"
	ArtifactResult   = "result.json"
	ArtifactMetrics  = "metrics.json"
	ArtifactTimeline = "timeline.json"
	ArtifactExplain  = "explain.txt"
	ArtifactRaces    = "races.json"
)

// artifactNames is the closed set GET /v1/jobs/{digest}/{artifact}
// serves; anything else is a 404, not a path traversal.
var artifactNames = map[string]string{
	"bundle":   ArtifactBundle,
	"result":   ArtifactResult,
	"metrics":  ArtifactMetrics,
	"timeline": ArtifactTimeline,
	"explain":  ArtifactExplain,
	"races":    ArtifactRaces,
}

// Store is the content-addressed on-disk blob store.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a store rooted at dir and sweeps
// the debris of crashed writers: *.tmp-* files are partial by
// construction and deleting them is the salvage — every visible artifact
// was completed by a rename.
func OpenStore(dir string) (*Store, error) {
	s := &Store{dir: dir}
	if err := os.MkdirAll(s.objectsDir(), 0o755); err != nil {
		return nil, err
	}
	err := filepath.WalkDir(s.objectsDir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp-") {
			os.Remove(path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("clapd: store sweep: %w", err)
	}
	return s, nil
}

func (s *Store) objectsDir() string { return filepath.Join(s.dir, "objects") }

// blobDir is the per-digest directory. Digests are hex (validated at
// ingest), so the two-level fanout is well-formed.
func (s *Store) blobDir(digest string) string {
	return filepath.Join(s.objectsDir(), digest[:2], digest)
}

// validDigest guards store paths against non-digest input (HTTP route
// parameters reach here).
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for _, c := range d {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Has reports whether the named artifact exists for the digest.
func (s *Store) Has(digest, artifact string) bool {
	if !validDigest(digest) {
		return false
	}
	_, err := os.Stat(filepath.Join(s.blobDir(digest), artifact))
	return err == nil
}

// Read returns the named artifact's bytes.
func (s *Store) Read(digest, artifact string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("clapd: bad digest %q", digest)
	}
	return os.ReadFile(filepath.Join(s.blobDir(digest), artifact))
}

// Write atomically persists one artifact: temp file, fsync, rename,
// directory fsync. Safe for concurrent writers of the same artifact.
func (s *Store) Write(digest, artifact string, data []byte) error {
	if !validDigest(digest) {
		return fmt.Errorf("clapd: bad digest %q", digest)
	}
	dir := s.blobDir(digest)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return atomicWrite(dir, artifact, data)
}

// PutBundle stores a raw bundle under its digest. It reports whether the
// blob was newly created (false = content-addressed dedupe hit).
func (s *Store) PutBundle(digest string, raw []byte) (created bool, err error) {
	if s.Has(digest, ArtifactBundle) {
		return false, nil
	}
	if err := s.Write(digest, ArtifactBundle, raw); err != nil {
		return false, err
	}
	return true, nil
}

// atomicWrite is the store's one durability primitive. Every step has a
// faultinject point so chaos tests can fail or crash it.
func atomicWrite(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, fmt.Sprintf("%s.tmp-%d-%d", name, os.Getpid(), tmpCounter.Add(1)))
	if err := faultinject.Fire("clapd.fs.create"); err != nil {
		return fmt.Errorf("clapd: create %s: %w", tmp, err)
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	// Any failure past this point must not leak the temp file: it would
	// survive until the next Open sweep and look like crash debris.
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := faultinject.Fire("clapd.fs.write"); err != nil {
		return fail(fmt.Errorf("clapd: write %s: %w", tmp, err))
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := faultinject.Fire("clapd.fs.sync"); err != nil {
		return fail(fmt.Errorf("clapd: sync %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := faultinject.Fire("clapd.fs.rename"); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("clapd: rename %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// tmpCounter backs atomicWrite's unique temp names (package-level so the
// journal's writes share the sequence).
var tmpCounter atomic.Uint64

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
