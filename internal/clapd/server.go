// The HTTP ingest and query API.
//
//	POST /v1/jobs                   ingest a clap-bundle/1
//	      201 {job}                 accepted and queued (durably journaled)
//	      200 {job}  X-Clap-Dedupe: cached    terminal duplicate, served from store
//	      202 {job}  X-Clap-Dedupe: inflight  duplicate already queued/running
//	      400 {error}               malformed bundle (non-framed log, bad JSON…)
//	      413 {error}               body over the size cap
//	      429 {error}  Retry-After  admission control refused (queue saturated)
//	      503 {error}               draining for shutdown
//	GET  /v1/jobs                   job table snapshot
//	GET  /v1/jobs/{digest}          one job's state
//	GET  /v1/jobs/{digest}/{artifact}   artifact ∈ result|metrics|timeline|explain|races|bundle
//	GET  /v1/stats                  the daemon's clap-metrics/1 report (clapd.* counters)
//	GET  /metrics                   the same registry in Prometheus text format
//	GET  /healthz                   "ok" (200) or "draining" (503)
package clapd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Handler returns the daemon's HTTP API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", d.handleJobs)
	mux.HandleFunc("/v1/jobs/", d.handleJob)
	mux.HandleFunc("/v1/stats", d.handleStats)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/healthz", d.handleHealth)
	return mux
}

// httpError is the JSON error envelope.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (d *Daemon) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		d.handleIngest(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"jobs": d.Jobs()})
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (d *Daemon) handleIngest(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader cuts an oversized body off at the cap + 1 marker
	// byte: the daemon never buffers more than its limit, no matter what
	// Content-Length claims.
	body := http.MaxBytesReader(w, r.Body, d.cfg.MaxUploadBytes)
	raw := make([]byte, 0, 64<<10)
	buf := make([]byte, 32<<10)
	for {
		n, err := body.Read(buf)
		raw = append(raw, buf[:n]...)
		if err != nil {
			if err.Error() == "http: request body too large" {
				d.reg().Add("clapd.ingest.rejected.toolarge", 1)
				httpError(w, http.StatusRequestEntityTooLarge,
					"bundle exceeds the %dB upload cap", d.cfg.MaxUploadBytes)
				return
			}
			if err.Error() != "EOF" {
				httpError(w, http.StatusBadRequest, "reading body: %v", err)
				return
			}
			break
		}
	}
	res, err := d.Ingest(raw)
	if err != nil {
		var bad *BadBundleError
		var large *TooLargeError
		switch {
		case errors.As(err, &large):
			httpError(w, http.StatusRequestEntityTooLarge, "%v", err)
		case errors.As(err, &bad):
			httpError(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, ErrSaturated):
			w.Header().Set("Retry-After", strconv.Itoa(d.RetryAfter()))
			httpError(w, http.StatusTooManyRequests,
				"queue saturated (%d active jobs); retry after the advertised delay", d.cfg.QueueDepth)
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, "daemon is draining")
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	switch res.Status {
	case IngestCached:
		w.Header().Set("X-Clap-Dedupe", "cached")
		writeJSON(w, http.StatusOK, res.Job)
	case IngestInFlight:
		w.Header().Set("X-Clap-Dedupe", "inflight")
		writeJSON(w, http.StatusAccepted, res.Job)
	default:
		writeJSON(w, http.StatusCreated, res.Job)
	}
}

// handleJob serves /v1/jobs/{digest} and /v1/jobs/{digest}/{artifact}.
func (d *Daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	digest, artifact, hasArtifact := strings.Cut(rest, "/")
	if !validDigest(digest) {
		httpError(w, http.StatusBadRequest, "bad digest %q (want 64 hex chars)", digest)
		return
	}
	job, ok := d.JobView(digest)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %s", digest)
		return
	}
	if !hasArtifact {
		writeJSON(w, http.StatusOK, job)
		return
	}
	name, ok := artifactNames[artifact]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown artifact %q (want result|metrics|timeline|explain|races|bundle)", artifact)
		return
	}
	data, err := d.store.Read(digest, name)
	if err != nil {
		httpError(w, http.StatusNotFound, "artifact %q not (yet) available for %s", artifact, digest)
		return
	}
	ct := "application/json"
	if strings.HasSuffix(name, ".txt") {
		ct = "text/plain; charset=utf-8"
	}
	w.Header().Set("Content-Type", ct)
	w.Write(data)
}

// handleStats serves the daemon's own observability report.
func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	data, err := d.tr.Report().Encode()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleMetrics serves the daemon-lifetime registry — the daemon's own
// clapd.* metrics plus every finished job's merged registry — in
// Prometheus text format. The encoding is deterministic (sorted names,
// fixed buckets), so two scrapes of an idle daemon are byte-identical.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(obs.EncodeProm(d.reg().TakeSnapshot()))
}

func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	if d.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
