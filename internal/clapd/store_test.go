package clapd

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

func testDigest(seed byte) string {
	return strings.Repeat(fmt.Sprintf("%02x", seed), 32)
}

// TestStoreConcurrentSameDigest hammers one digest from many writers:
// content-addressed writes are idempotent, so every writer must succeed
// and the surviving blob must be intact — no torn interleaving, no temp
// debris.
func TestStoreConcurrentSameDigest(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	digest := testDigest(0xab)
	payload := bytes.Repeat([]byte("same-content-every-writer\n"), 512)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.PutBundle(digest, payload); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent writer failed: %v", err)
	}
	got, err := s.Read(digest, ArtifactBundle)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("blob corrupted by concurrent writers (%dB != %dB)", len(got), len(payload))
	}
	ents, err := os.ReadDir(filepath.Join(s.dir, "objects", digest[:2], digest))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Errorf("want exactly bundle.json, got %d entries", len(ents))
	}
}

// TestStoreCrashSalvage simulates a writer killed mid-write: the
// orphaned temp file is swept on the next open and never becomes a
// visible artifact.
func TestStoreCrashSalvage(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	digest := testDigest(0xcd)
	if err := s.Write(digest, ArtifactResult, []byte("complete\n")); err != nil {
		t.Fatal(err)
	}
	// A crash between create and rename leaves exactly this: a partial
	// temp file next to completed artifacts.
	blob := filepath.Join(dir, "objects", digest[:2], digest)
	partial := filepath.Join(blob, ArtifactBundle+".tmp-9999-1")
	if err := os.WriteFile(partial, []byte(`{"schema":"clap-bun`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(partial); !os.IsNotExist(err) {
		t.Error("partial temp file survived the open sweep")
	}
	if s2.Has(digest, ArtifactBundle) {
		t.Error("partial write became a visible artifact")
	}
	got, err := s2.Read(digest, ArtifactResult)
	if err != nil || string(got) != "complete\n" {
		t.Errorf("completed artifact damaged by sweep: %q, %v", got, err)
	}
}

// TestStoreWriteFaults drives every fire point in the atomic-write path:
// an injected failure at any step must fail the write cleanly — no
// visible artifact, no leaked temp file — and a later clean write must
// succeed.
func TestStoreWriteFaults(t *testing.T) {
	for _, point := range []string{"clapd.fs.create", "clapd.fs.write", "clapd.fs.sync", "clapd.fs.rename"} {
		t.Run(point, func(t *testing.T) {
			defer faultinject.Reset()
			dir := t.TempDir()
			s, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			digest := testDigest(0xef)
			faultinject.Enable(point, faultinject.Failure{Times: 1})
			if err := s.Write(digest, ArtifactResult, []byte("x")); err == nil {
				t.Fatalf("write with %s armed succeeded", point)
			}
			if s.Has(digest, ArtifactResult) {
				t.Error("failed write left a visible artifact")
			}
			blob := filepath.Join(dir, "objects", digest[:2], digest)
			if ents, err := os.ReadDir(blob); err == nil {
				for _, e := range ents {
					t.Errorf("failed write leaked %s", e.Name())
				}
			}
			// The fault was Times-bounded; the retry must go through.
			if err := s.Write(digest, ArtifactResult, []byte("y")); err != nil {
				t.Fatalf("write after fault cleared: %v", err)
			}
			if got, _ := s.Read(digest, ArtifactResult); string(got) != "y" {
				t.Errorf("retried write content: %q", got)
			}
		})
	}
}

// TestStoreRejectsBadDigest keeps HTTP route parameters out of paths.
func TestStoreRejectsBadDigest(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"", "..", "../../etc/passwd", strings.Repeat("g", 64), strings.Repeat("A", 64), testDigest(0xaa)[:63]} {
		if s.Has(d, ArtifactBundle) {
			t.Errorf("Has accepted digest %q", d)
		}
		if err := s.Write(d, ArtifactBundle, []byte("x")); err == nil {
			t.Errorf("Write accepted digest %q", d)
		}
		if _, err := s.Read(d, ArtifactBundle); err == nil {
			t.Errorf("Read accepted digest %q", d)
		}
	}
}
