package clapd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// fastConfig is a worker-enabled daemon tuned for tests.
func fastConfig(dir string) Config {
	return Config{
		Dir:         dir,
		Workers:     1,
		MaxAttempts: 3,
		RetryBase:   time.Millisecond,
		JobTimeout:  time.Minute,
	}
}

// TestDaemonEndToEnd is the service's happy path over real HTTP: ingest
// a recorded bundle (201), watch it reach done, fetch every artifact,
// then re-upload the same bytes and get the cached reproduction (200 +
// X-Clap-Dedupe) with zero additional pipeline executions — asserted via
// the daemon's own counters, the acceptance criterion of ROADMAP item 1.
func TestDaemonEndToEnd(t *testing.T) {
	d, err := Open(fastConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	raw, digest := testBundleBytes(t)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	var accepted Job
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Digest != digest || accepted.State != StateQueued {
		t.Fatalf("accepted job: %+v", accepted)
	}

	job := waitTerminal(t, d, digest, 60*time.Second)
	if job.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", job.State, job.Err)
	}

	// The result artifact records a verified reproduction.
	var res Result
	getJSON(t, srv.URL+"/v1/jobs/"+digest+"/result", &res)
	if res.Schema != ResultSchema || !res.Reproduced {
		t.Fatalf("result artifact: %+v", res)
	}
	if res.ScheduleLen == 0 {
		t.Error("result has no schedule")
	}
	// The per-job metrics artifact is a decodable clap-metrics/1 report
	// carrying the job's span tree.
	mraw := getRaw(t, srv.URL+"/v1/jobs/"+digest+"/metrics", http.StatusOK)
	mrep, err := obs.DecodeReport(mraw)
	if err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
	if mrep.Span("job.rehydrate") == nil {
		t.Error("job metrics missing the rehydrate span")
	}
	// Flight-recorder artifacts rode along.
	getRaw(t, srv.URL+"/v1/jobs/"+digest+"/timeline", http.StatusOK)

	// Duplicate upload: same bytes, same digest, served from the store.
	resp2, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate ingest: %d, want 200", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Clap-Dedupe"); got != "cached" {
		t.Fatalf("X-Clap-Dedupe = %q, want cached", got)
	}

	// The counters prove the dedupe cost no pipeline work: one execution
	// for two uploads.
	var stats obs.Report
	getJSON(t, srv.URL+"/v1/stats", &stats)
	if got := stats.Counters["clapd.jobs.executed"]; got != 1 {
		t.Errorf("clapd.jobs.executed = %d, want 1", got)
	}
	if got := stats.Counters["clapd.ingest.dedup.cached"]; got != 1 {
		t.Errorf("clapd.ingest.dedup.cached = %d, want 1", got)
	}
	if got := stats.Counters["clapd.ingest.accepted"]; got != 1 {
		t.Errorf("clapd.ingest.accepted = %d, want 1", got)
	}

	// Job listing and lookups.
	var list struct{ Jobs []Job }
	getJSON(t, srv.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].State != StateDone {
		t.Errorf("job list: %+v", list.Jobs)
	}
	getRaw(t, srv.URL+"/v1/jobs/"+digest+"/nosuch", http.StatusNotFound)
	getRaw(t, srv.URL+"/v1/jobs/"+testDigest(0x99), http.StatusNotFound)
	getRaw(t, srv.URL+"/v1/jobs/not-a-digest", http.StatusBadRequest)
	getRaw(t, srv.URL+"/healthz", http.StatusOK)
}

func getRaw(t *testing.T, url string, want int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("GET %s: %d (want %d): %s", url, resp.StatusCode, want, body)
	}
	return body
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal(getRaw(t, url, http.StatusOK), v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestIngestRejectsHTTP pins the 4xx surface: oversized bodies are cut
// off at the cap (413), non-framed or malformed bundles bounce with a
// typed 400, and none of them journal a job.
func TestIngestRejectsHTTP(t *testing.T) {
	cfg := fastConfig(t.TempDir())
	cfg.Workers = -1
	cfg.MaxUploadBytes = 4 << 10
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := post(bytes.Repeat([]byte("x"), 64<<10)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized: %d, want 413", resp.StatusCode)
	}
	if resp := post([]byte(`{"schema":"clap-bundle/1"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty bundle: %d, want 400", resp.StatusCode)
	}
	if resp := post([]byte("not json at all")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage: %d, want 400", resp.StatusCode)
	}
	if jobs := d.Jobs(); len(jobs) != 0 {
		t.Errorf("rejected uploads journaled jobs: %+v", jobs)
	}
}

// TestBackpressure fills the admission budget and checks saturation
// semantics: 429 + Retry-After for new digests, 202 shed for duplicates
// of in-flight work (dedupe costs no slot).
func TestBackpressure(t *testing.T) {
	cfg := fastConfig(t.TempDir())
	cfg.Workers = -1 // nothing drains the queue
	cfg.QueueDepth = 2
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Distinct digests: the seed pin participates in the content address.
	encode := func(seed int64) []byte {
		b := testBundle(t)
		b.Seed = seed
		raw, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	first := encode(1)
	for i, raw := range [][]byte{first, encode(2)} {
		res, err := d.Ingest(raw)
		if err != nil || res.Status != IngestAccepted {
			t.Fatalf("ingest %d refused: %v %v", i, res, err)
		}
	}
	if _, err := d.Ingest(encode(3)); err != ErrSaturated {
		t.Fatalf("third ingest: %v, want ErrSaturated", err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(encode(4)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// A duplicate of queued work is shed to the existing job, not refused.
	resp2, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted || resp2.Header.Get("X-Clap-Dedupe") != "inflight" {
		t.Fatalf("duplicate under saturation: %d %q, want 202 inflight", resp2.StatusCode, resp2.Header.Get("X-Clap-Dedupe"))
	}
}

// TestDrainPreservesQueuedJobs is the graceful-shutdown contract: drain
// refuses new work, leaves queued jobs journaled, and the next start
// recovers every one of them.
func TestDrainPreservesQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig(dir)
	cfg.Workers = -1
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, digest := testBundleBytes(t)
	if _, err := d.Ingest(raw); err != nil {
		t.Fatal(err)
	}
	shutdown(t, d)
	// A duplicate of journaled work is still shed to the existing job…
	if res, err := d.Ingest(raw); err != nil || res.Status != IngestInFlight {
		t.Fatalf("duplicate ingest after shutdown: %+v, %v, want inflight", res, err)
	}
	// …but new work is refused while draining.
	fresh := testBundle(t)
	fresh.Seed = 424242
	fraw, err := fresh.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Ingest(fraw); err != ErrDraining {
		t.Fatalf("fresh ingest after shutdown: %v, want ErrDraining", err)
	}

	d2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d2)
	job, ok := d2.JobView(digest)
	if !ok {
		t.Fatal("queued job lost across restart")
	}
	if job.State != StateQueued || !job.Recovered {
		t.Fatalf("recovered job: %+v, want recovered queued", job)
	}
}

// TestRecoveryPolicy pins what restart does with each journaled state:
// terminal entries stay terminal, queued/retrying re-enter the queue
// as-is, and a job that was mid-run is charged the interrupted attempt —
// re-queued while budget remains, poisoned once it is spent.
func TestRecoveryPolicy(t *testing.T) {
	dir := t.TempDir()
	done, queued, running1, running3 := testDigest(0x61), testDigest(0x62), testDigest(0x63), testDigest(0x64)
	writeWAL(t, dir,
		line(1, done, StateQueued, 0),
		line(2, done, StateDone, 1),
		line(3, queued, StateQueued, 0),
		line(4, running1, StateRunning, 1),
		line(5, running3, StateRunning, 3),
	)
	cfg := fastConfig(dir)
	cfg.Workers = -1 // freeze the queue so states are inspectable
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)

	want := map[string]State{
		done:     StateDone,
		queued:   StateQueued,
		running1: StateRetrying,
		running3: StatePoisoned,
	}
	for digest, state := range want {
		job, ok := d.JobView(digest)
		if !ok {
			t.Errorf("job %.8s lost in recovery", digest)
			continue
		}
		if job.State != state {
			t.Errorf("job %.8s recovered as %s, want %s", digest, job.State, state)
		}
	}
	reg := d.Trace().Reg()
	if got := reg.Get("clapd.recovered.requeued"); got != 2 {
		t.Errorf("clapd.recovered.requeued = %d, want 2 (queued + running1)", got)
	}
	if got := reg.Get("clapd.recovered.poisoned"); got != 1 {
		t.Errorf("clapd.recovered.poisoned = %d, want 1", got)
	}
	// The poisoning was journaled: a second restart must not double-count.
	shutdown(t, d)
	d2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d2)
	if got := d2.Trace().Reg().Get("clapd.recovered.poisoned"); got != 0 {
		t.Errorf("second restart re-poisoned %d jobs", got)
	}
}

// TestWorkerPanicWritesMetrics is the worker-cleanup regression test: a
// job that panics mid-pipeline must still persist its clap-metrics/1
// artifact, reach exactly one terminal state, and leave a result.json
// explaining the failure.
func TestWorkerPanicWritesMetrics(t *testing.T) {
	defer faultinject.Reset()
	cfg := fastConfig(t.TempDir())
	cfg.MaxAttempts = 1
	faultinject.Enable("clapd.worker.solve", faultinject.Failure{Panic: "injected worker panic"})

	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)
	raw, digest := testBundleBytes(t)
	if _, err := d.Ingest(raw); err != nil {
		t.Fatal(err)
	}
	job := waitTerminal(t, d, digest, 30*time.Second)
	if job.State != StatePoisoned {
		t.Fatalf("panicking job ended %s, want poisoned", job.State)
	}
	if !strings.Contains(job.Err, "panic") {
		t.Errorf("job error does not mention the panic: %q", job.Err)
	}

	// The deferred cleanup persisted the metrics artifact anyway.
	mraw, err := d.Store().Read(digest, ArtifactMetrics)
	if err != nil {
		t.Fatalf("metrics artifact missing after panic: %v", err)
	}
	if _, err := obs.DecodeReport(mraw); err != nil {
		t.Fatalf("metrics artifact corrupt after panic: %v", err)
	}
	// And the failure result explains the poisoning.
	rraw, err := d.Store().Read(digest, ArtifactResult)
	if err != nil {
		t.Fatalf("result artifact missing for poisoned job: %v", err)
	}
	var res Result
	if err := json.Unmarshal(rraw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Err == "" || res.Reproduced {
		t.Errorf("failure result: %+v", res)
	}
	if got := d.Trace().Reg().Get("clapd.jobs.panics"); got != 1 {
		t.Errorf("clapd.jobs.panics = %d, want 1", got)
	}
}

// TestTransientFailureRetries injects one transient fault and watches
// the retry loop recover: attempt 1 fails, backoff fires, attempt 2
// completes the reproduction.
func TestTransientFailureRetries(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Enable("clapd.worker.start", faultinject.Failure{Times: 1})

	d, err := Open(fastConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)
	raw, digest := testBundleBytes(t)
	if _, err := d.Ingest(raw); err != nil {
		t.Fatal(err)
	}
	job := waitTerminal(t, d, digest, 60*time.Second)
	if job.State != StateDone {
		t.Fatalf("job ended %s (%s), want done after retry", job.State, job.Err)
	}
	if job.Attempt != 2 {
		t.Errorf("job.Attempt = %d, want 2", job.Attempt)
	}
	reg := d.Trace().Reg()
	if got := reg.Get("clapd.jobs.retried"); got != 1 {
		t.Errorf("clapd.jobs.retried = %d, want 1", got)
	}
	if got := reg.Get("clapd.jobs.doublecomplete.refused"); got != 0 {
		t.Errorf("double completion refused %d times, want 0", got)
	}
}

// TestPermanentFailurePoisonsImmediately: a bundle whose program cannot
// compile will fail identically forever, so the first attempt poisons it
// without burning the retry budget.
func TestPermanentFailurePoisonsImmediately(t *testing.T) {
	d, err := Open(fastConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)
	b := testBundle(t)
	b.Program = "func main( { this does not parse }"
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Ingest(raw); err != nil {
		t.Fatal(err)
	}
	job := waitTerminal(t, d, b.Digest(), 30*time.Second)
	if job.State != StatePoisoned || job.Attempt != 1 {
		t.Fatalf("job ended %s attempt %d, want poisoned on attempt 1", job.State, job.Attempt)
	}
	if got := d.Trace().Reg().Get("clapd.jobs.retried"); got != 0 {
		t.Errorf("permanent failure was retried %d times", got)
	}
	// Re-uploading the same broken bundle serves the recorded poisoning.
	res, err := d.Ingest(raw)
	if err != nil || res.Status != IngestCached {
		t.Fatalf("poisoned duplicate: %+v, %v, want cached", res, err)
	}
}

// TestIngestFaultBeforeAck: an injected journal or store failure during
// admission must surface as an error with nothing accepted — the client
// retries, and no half-admitted job exists to leak.
func TestIngestFaultBeforeAck(t *testing.T) {
	defer faultinject.Reset()
	cfg := fastConfig(t.TempDir())
	cfg.Workers = -1
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)
	raw, digest := testBundleBytes(t)
	for _, point := range []string{"clapd.fs.sync", "clapd.journal.append", "clapd.journal.sync"} {
		faultinject.Reset()
		faultinject.Enable(point, faultinject.Failure{Times: 1})
		if _, err := d.Ingest(raw); err == nil {
			t.Fatalf("%s: faulted ingest succeeded", point)
		}
		if _, ok := d.JobView(digest); ok {
			t.Fatalf("%s: failed ingest left a job behind", point)
		}
	}
	faultinject.Reset()
	if res, err := d.Ingest(raw); err != nil || res.Status != IngestAccepted {
		t.Fatalf("clean ingest after faults: %+v, %v", res, err)
	}
}

// TestBackoff pins the retry schedule: deterministic for a (digest,
// attempt) pair, exponential up to the cap, jitter bounded by 50%.
func TestBackoff(t *testing.T) {
	base := 100 * time.Millisecond
	digest := testDigest(0x77)
	if Backoff(base, digest, 1) != Backoff(base, digest, 1) {
		t.Error("backoff not deterministic")
	}
	for attempt := 1; attempt <= 10; attempt++ {
		d := Backoff(base, digest, attempt)
		shift := attempt - 1
		if shift > 6 {
			shift = 6
		}
		lo := base << shift
		hi := lo + lo/2
		if d < lo || d > hi {
			t.Errorf("attempt %d: %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}
	if Backoff(base, digest, 2) == Backoff(base, testDigest(0x78), 2) {
		t.Error("jitter ignores the digest")
	}
}
