// Package clapd is the reproduction-as-a-service daemon: a long-running
// HTTP server that ingests recorded trace bundles, dedupes them by
// content digest into an on-disk store, and runs the offline pipeline
// (symbolic execution → constraint solving → replay) as durable jobs on
// a bounded worker pool.
//
// Robustness is the design center, in the spirit of the paper's premise
// that the recorded process crashes: the service ingesting those crashes
// must itself survive crashes, overload and corrupt inputs.
//
//   - Durability: every accepted job is fsynced into a write-ahead
//     journal before the client sees 201; restart recovery replays the
//     journal and re-queues (or poisons) interrupted jobs. A job reaches
//     exactly one terminal state — crash-anywhere chaos tests in
//     cmd/clap enforce it with injected kill -9s.
//   - Backpressure: admission control bounds the active-job count;
//     saturated ingests get 429 + Retry-After instead of unbounded
//     queues, and duplicate digests are shed to the cached result.
//   - Corrupt inputs: uploads are size-capped and must carry the framed
//     log format; damaged logs route through the salvage decoder
//     (internal/trace) instead of killing a worker.
package clapd

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/vm"
)

// BundleSchema identifies the ingest wire format.
const BundleSchema = "clap-bundle/1"

// DefaultMaxBundleBytes caps an upload (bundle JSON including the
// base64 log) unless Config.MaxUploadBytes overrides it.
const DefaultMaxBundleBytes = 8 << 20

// Bundle is one uploaded reproduction request: the recorded program, the
// crash-tolerant framed path log, the failure to reproduce, and the
// scheduler pins of the winning recorded attempt. It is what `clap
// bundle` emits and POST /v1/jobs accepts.
type Bundle struct {
	Schema string `json:"schema"`
	// Name is a display name (benchmark or source file); not part of the
	// content digest.
	Name    string  `json:"name,omitempty"`
	Program string  `json:"program"`
	Model   string  `json:"model"`
	Inputs  []int64 `json:"inputs,omitempty"`
	// Solver selects the offline backend (seq|par|cnf|portfolio;
	// empty = portfolio).
	Solver string `json:"solver,omitempty"`

	// Scheduler pins of the recorded attempt (core.RehydrateSpec).
	Seed       int64 `json:"seed"`
	Chaos      int   `json:"chaos,omitempty"`
	DrainBias  int   `json:"drain_bias,omitempty"`
	MaxActions int   `json:"max_actions,omitempty"`
	NoDemote   bool  `json:"no_demote,omitempty"`

	// The recorded assertion failure.
	FailureThread int    `json:"failure_thread"`
	FailureSite   int    `json:"failure_site"`
	FailureMsg    string `json:"failure_msg,omitempty"`

	// Log is the framed path log (base64 on the wire via encoding/json).
	Log []byte `json:"log"`
}

// BadBundleError rejects a malformed upload. It maps to HTTP 400: the
// client sent garbage, retrying the same bytes cannot succeed.
type BadBundleError struct{ Reason string }

func (e *BadBundleError) Error() string { return "clapd: bad bundle: " + e.Reason }

func badBundle(format string, args ...any) error {
	return &BadBundleError{Reason: fmt.Sprintf(format, args...)}
}

// TooLargeError rejects an oversized upload before any decoding
// allocates proportionally to it. It maps to HTTP 413.
type TooLargeError struct{ Size, Limit int64 }

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("clapd: bundle of %dB exceeds the %dB limit", e.Size, e.Limit)
}

// DecodeBundle parses and validates an uploaded bundle. maxBytes caps
// the raw input (<=0 = DefaultMaxBundleBytes); the embedded log must be
// in the framed format — the all-or-nothing flat encoding has no salvage
// story, so the service refuses it early with a typed error instead of
// letting a decoder chew on unbounded garbage.
//
// The log bytes are NOT decoded here: digesting and admission work on
// raw bytes, and only a worker pays for the salvage decode.
func DecodeBundle(raw []byte, maxBytes int64) (*Bundle, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBundleBytes
	}
	if int64(len(raw)) > maxBytes {
		return nil, &TooLargeError{Size: int64(len(raw)), Limit: maxBytes}
	}
	var b Bundle
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, badBundle("%v", err)
	}
	if b.Schema != BundleSchema {
		return nil, badBundle("unknown schema %q (want %q)", b.Schema, BundleSchema)
	}
	if strings.TrimSpace(b.Program) == "" {
		return nil, badBundle("empty program")
	}
	if _, err := ParseModel(b.Model); err != nil {
		return nil, badBundle("%v", err)
	}
	if _, err := SolverKind(b.Solver); err != nil {
		return nil, badBundle("%v", err)
	}
	if len(b.Log) == 0 {
		return nil, badBundle("empty log")
	}
	if !trace.IsFramed(b.Log) {
		return nil, badBundle("log is not in the framed format (flat logs have no salvage story; re-record with clap record -o / clap bundle)")
	}
	return &b, nil
}

// ParseModel maps a bundle's model name to the VM's memory model.
func ParseModel(name string) (vm.MemModel, error) {
	switch strings.ToUpper(name) {
	case "SC":
		return vm.SC, nil
	case "TSO":
		return vm.TSO, nil
	case "PSO":
		return vm.PSO, nil
	}
	return 0, fmt.Errorf("unknown memory model %q", name)
}

// SolverKind maps a bundle's solver name to the pipeline's solver kind.
func SolverKind(name string) (core.SolverKind, error) {
	switch name {
	case "", "portfolio":
		return core.Portfolio, nil
	case "seq":
		return core.Sequential, nil
	case "par":
		return core.Parallel, nil
	case "cnf":
		return core.CNF, nil
	}
	return 0, fmt.Errorf("unknown solver %q", name)
}

// Digest is the bundle's content address: a hex SHA-256 over a canonical
// serialization of every semantic field (the display name is excluded).
// Two users uploading the same program, configuration and log bytes land
// on the same digest, so the second is served from the first's cached
// reproduction — the crash-reporting-backend dedupe of ROADMAP item 1.
func (b *Bundle) Digest() string {
	h := sha256.New()
	put := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	putInt := func(v int64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(v))
		h.Write(n[:])
	}
	put(BundleSchema)
	put(b.Program)
	put(strings.ToUpper(b.Model))
	putInt(int64(len(b.Inputs)))
	for _, in := range b.Inputs {
		putInt(in)
	}
	put(b.Solver)
	putInt(b.Seed)
	putInt(int64(b.Chaos))
	putInt(int64(b.DrainBias))
	putInt(int64(b.MaxActions))
	if b.NoDemote {
		putInt(1)
	} else {
		putInt(0)
	}
	putInt(int64(b.FailureThread))
	putInt(int64(b.FailureSite))
	put(b.FailureMsg)
	putInt(int64(len(b.Log)))
	h.Write(b.Log)
	return hex.EncodeToString(h.Sum(nil))
}

// Encode marshals the bundle as indented JSON with a trailing newline.
func (b *Bundle) Encode() ([]byte, error) {
	b.Schema = BundleSchema
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeLog salvage-decodes the bundle's framed log: damaged or
// truncated uploads yield their longest valid prefix plus a report of
// what was lost, instead of an error. A log that salvages to nothing is
// a BadBundleError.
func (b *Bundle) DecodeLog() (*trace.PathLog, *trace.SalvageReport, error) {
	log, rep := trace.DecodePathLogSalvage(b.Log)
	if rep.Events == 0 || len(log.Threads) == 0 {
		return nil, rep, badBundle("log salvages to nothing (%s)", rep)
	}
	return log, rep, nil
}

// Rehydrate compiles the bundle's program and rebuilds the Recording the
// offline pipeline runs on. Errors are permanent: the same bytes will
// fail the same way on every retry.
func (b *Bundle) Rehydrate() (*core.Recording, *trace.SalvageReport, error) {
	prog, err := core.Compile(b.Program)
	if err != nil {
		return nil, nil, badBundle("program does not compile: %v", err)
	}
	log, salv, err := b.DecodeLog()
	if err != nil {
		return nil, salv, err
	}
	model, err := ParseModel(b.Model)
	if err != nil {
		return nil, salv, badBundle("%v", err)
	}
	rec, err := core.Rehydrate(prog, core.RehydrateSpec{
		Model:  model,
		Inputs: b.Inputs,
		Log:    log,
		Failure: &vm.Failure{
			Kind:   vm.FailAssert,
			Thread: vm.ThreadID(b.FailureThread),
			Site:   b.FailureSite,
			Msg:    b.FailureMsg,
		},
		Seed:       b.Seed,
		Chaos:      b.Chaos,
		DrainBias:  b.DrainBias,
		MaxActions: b.MaxActions,
		NoDemote:   b.NoDemote,
	})
	if err != nil {
		return nil, salv, badBundle("%v", err)
	}
	return rec, salv, nil
}

// FromRecording packages a locally recorded failure as an uploadable
// bundle — the client half of the service: `clap bundle` records and
// ships, clapd rehydrates and reproduces. src is the program source the
// recording was compiled from (a Recording holds only the lowered IR).
func FromRecording(rec *core.Recording, src, name, solver string) *Bundle {
	b := &Bundle{
		Schema:     BundleSchema,
		Name:       name,
		Program:    src,
		Model:      rec.Model.String(),
		Inputs:     rec.Inputs,
		Solver:     solver,
		Seed:       rec.Seed,
		Chaos:      rec.Chaos,
		DrainBias:  rec.DrainBias,
		MaxActions: rec.MaxActions,
		Log:        rec.Log.EncodeFramed(trace.FramedOptions{}),
	}
	if rec.Failure != nil {
		b.FailureThread = int(rec.Failure.Thread)
		b.FailureSite = rec.Failure.Site
		b.FailureMsg = rec.Failure.Msg
	}
	return b
}
