// Structured event log: the daemon's operational log is one JSON object
// per line, so a fleet operator can tail it with jq instead of parsing
// prose. Job state transitions are first-class events carrying the
// digest, old/new state, attempt, and time spent in the previous state;
// everything else (cache warnings, artifact-write failures, injected
// faults) rides along as freeform messages with the same envelope.
package clapd

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one log line. Zero-valued fields are omitted so transition
// events and freeform messages share a schema without padding.
type Event struct {
	// TS is the emission time, RFC3339 with nanoseconds, UTC.
	TS string `json:"ts"`
	// Kind classifies the line: "job.transition", "job.log", or "daemon".
	Kind   string `json:"event"`
	Digest string `json:"digest,omitempty"`
	// From/State bracket a transition (previous state → new state).
	From    string `json:"from,omitempty"`
	State   string `json:"state,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// DurNS is the time spent in the previous state, nanoseconds.
	DurNS int64  `json:"dur_ns,omitempty"`
	Err   string `json:"err,omitempty"`
	Msg   string `json:"msg,omitempty"`
}

// EventLog serializes events onto one writer. The zero value and nil
// both drop everything, mirroring the nil-safety of the obs package.
type EventLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewEventLog writes JSON lines to w (nil w → all events dropped).
func NewEventLog(w io.Writer) *EventLog { return &EventLog{w: w} }

// Emit stamps and writes one event. Marshal failures are swallowed: the
// log must never take down the daemon.
func (l *EventLog) Emit(e Event) {
	if l == nil || l.w == nil {
		return
	}
	e.TS = time.Now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.mu.Lock()
	l.w.Write(append(data, '\n'))
	l.mu.Unlock()
}

// Logf emits a daemon-scoped freeform message.
func (l *EventLog) Logf(format string, args ...any) {
	l.Emit(Event{Kind: "daemon", Msg: fmt.Sprintf(format, args...)})
}

// Jobf emits a job-scoped freeform message.
func (l *EventLog) Jobf(digest, format string, args ...any) {
	l.Emit(Event{Kind: "job.log", Digest: digest, Msg: fmt.Sprintf(format, args...)})
}
