// The worker pool: each worker pulls journaled jobs, runs the offline
// pipeline (rehydrate → symexec → solve → replay), persists artifacts,
// and drives the retry/poison state machine.
//
// Failure taxonomy:
//
//   - Permanent: the bundle itself cannot ever succeed (does not parse,
//     does not compile, rehydration rejects it, replay refutes the
//     schedule). Re-running burns CPU for the same answer → poison now.
//   - Transient: timeouts, injected faults, filesystem errors, panics.
//     Retry with exponential backoff + deterministic jitter until the
//     attempt budget is spent, then poison.
//
// A worker must be un-killable by a job: panics are recovered into the
// retry path, and the per-job metrics report is written (and fsynced)
// from a defer, so even a panicking or failing attempt leaves its
// clap-metrics/1 trace in the store — the daemon-path analogue of the
// startProfiles teardown contract in cmd/clap.
package clapd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/races"
	"repro/internal/timeline"
)

// ResultSchema identifies the per-job result artifact format.
const ResultSchema = "clap-result/1"

// Result is the result.json artifact: the job's terminal summary.
type Result struct {
	Schema  string `json:"schema"`
	Digest  string `json:"digest"`
	Name    string `json:"name,omitempty"`
	Attempt int    `json:"attempt"`
	// Reproduced reports a verified deterministic replay.
	Reproduced  bool   `json:"reproduced"`
	Preemptions int    `json:"preemptions,omitempty"`
	ScheduleLen int    `json:"schedule_len,omitempty"`
	Solver      string `json:"solver,omitempty"`
	// Salvage summarizes the upload's framed-log salvage ("" = clean).
	Salvage string `json:"salvage,omitempty"`
	// Err is the pipeline failure for unsuccessful terminal jobs.
	Err string `json:"err,omitempty"`
}

// permanentError wraps failures that no retry can fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanent(err error) error { return &permanentError{err: err} }

// isPermanent classifies an execution failure.
func isPermanent(err error) bool {
	var pe *permanentError
	var be *BadBundleError
	return errors.As(err, &pe) || errors.As(err, &be)
}

// workerLoop is one worker goroutine: pop, run, repeat until drain.
func (d *Daemon) workerLoop(id int) {
	defer d.wg.Done()
	for {
		digest, ok := d.pop()
		if !ok {
			return
		}
		d.runJob(digest)
	}
}

// runJob drives one popped job through exactly one attempt and its
// resulting transition. Fire point clapd.worker.start kills or fails the
// job before any work; clapd.worker.done fires after the terminal
// transition (a crash there proves completed work is not re-done).
func (d *Daemon) runJob(digest string) {
	d.mu.Lock()
	job, ok := d.jobs[digest]
	if !ok || job.State.Terminal() || job.State == StateRunning {
		// Stale queue entry (double-queued digest or recovered duplicate):
		// running it again would risk double completion.
		d.mu.Unlock()
		return
	}
	attempt := job.Attempt + 1
	if err := d.transition(job, StateRunning, attempt, ""); err != nil {
		// The journal refused (full disk, injected fault): leave the job
		// queued-on-disk; re-queue in memory after backoff.
		d.mu.Unlock()
		d.log.Jobf(digest, "running transition failed: %v", err)
		d.scheduleRetryPush(digest, attempt)
		return
	}
	d.busy++
	d.setBusyGauge()
	d.mu.Unlock()

	start := time.Now()
	err := faultinject.Fire("clapd.worker.start")
	var res *Result
	if err == nil {
		res, err = d.execute(digest, attempt)
	}
	// Every attempt — success, retryable failure, poison — lands in the
	// job-latency histogram: tail latency is a fleet property, not a
	// success-only one.
	d.reg().Hist("clapd.job.ns").Observe(int64(time.Since(start)))

	d.mu.Lock()
	defer d.mu.Unlock()
	d.busy--
	d.setBusyGauge()
	switch {
	case err == nil:
		if res != nil {
			res.Attempt = attempt
		}
		if terr := d.transition(job, StateDone, attempt, ""); terr != nil {
			d.log.Jobf(digest, "done transition failed: %v", terr)
			d.reg().Add("clapd.jobs.done.unjournaled", 1)
			return
		}
		d.reg().Add("clapd.jobs.done", 1)
	case isPermanent(err) || attempt >= d.cfg.MaxAttempts:
		d.writeFailureResult(digest, job.Name, attempt, err)
		if terr := d.transition(job, StatePoisoned, attempt, err.Error()); terr != nil {
			d.log.Jobf(digest, "poison transition failed: %v", terr)
			return
		}
		d.reg().Add("clapd.jobs.poisoned", 1)
	default:
		if terr := d.transition(job, StateRetrying, attempt, err.Error()); terr != nil {
			d.log.Jobf(digest, "retry transition failed: %v", terr)
			return
		}
		d.reg().Add("clapd.jobs.retried", 1)
		d.scheduleRetryPush(digest, attempt)
	}
	if ferr := faultinject.Fire("clapd.worker.done"); ferr != nil {
		d.log.Jobf(digest, "injected post-transition fault: %v", ferr)
	}
}

// scheduleRetryPush re-queues the digest after the attempt's backoff.
// On drain the timer exits without pushing: the journaled retrying state
// is the checkpoint recovery replays.
func (d *Daemon) scheduleRetryPush(digest string, attempt int) {
	delay := Backoff(d.cfg.RetryBase, digest, attempt)
	d.timers.Add(1)
	go func() {
		defer d.timers.Done()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-d.stop:
			return
		case <-d.ctx.Done():
			return
		}
		d.mu.Lock()
		if !d.drain && !d.closed {
			d.queue = append(d.queue, digest)
			d.setQueueGauge()
			d.notify()
		}
		d.mu.Unlock()
	}()
}

// Backoff computes attempt n's delay: base·2ⁿ⁻¹ capped at 64×base, plus
// up to 50% jitter derived deterministically from (digest, attempt) so
// chaos failures replay identically while a thundering herd of retries
// still spreads out.
func Backoff(base time.Duration, digest string, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	d := base << shift
	// Jitter: a cheap integer hash of the digest prefix and attempt.
	var seed uint64
	if len(digest) >= 16 {
		for i := 0; i < 16; i++ {
			seed = seed*16777619 + uint64(digest[i])
		}
	}
	seed = seed*16777619 + uint64(attempt)
	frac := float64(seed%1000) / 1000 // [0,1)
	return d + time.Duration(frac*float64(d)/2)
}

// execute runs one pipeline attempt. It never panics: a panicking stage
// becomes a transient error. The per-job metrics report is written from
// a defer so error and panic exits still persist it.
func (d *Daemon) execute(digest string, attempt int) (res *Result, err error) {
	raw, rerr := d.store.Read(digest, ArtifactBundle)
	if rerr != nil {
		return nil, rerr // store hiccup: transient
	}
	b, berr := DecodeBundle(raw, d.cfg.MaxUploadBytes)
	if berr != nil {
		return nil, berr // BadBundleError: permanent
	}

	tr := obs.NewTrace("clapd.job")
	tr.Root().SetAttr("digest", digest)
	tr.Root().SetInt("attempt", int64(attempt))
	defer func() {
		if r := recover(); r != nil {
			d.reg().Add("clapd.jobs.panics", 1)
			err = fmt.Errorf("clapd: job panicked: %v", r)
			res = nil
		}
		// The metrics artifact goes out on every exit path — success,
		// error, panic — fsynced, like the CLI's profile teardown. The
		// attempt's registry also folds into the daemon-lifetime registry
		// (counters sum, gauges last-wins, histogram buckets add), so
		// /metrics aggregates every attempt the process ever ran.
		d.reg().Merge(tr.Reg().TakeSnapshot())
		if mdata, merr := tr.Report().Encode(); merr == nil {
			if werr := d.store.Write(digest, ArtifactMetrics, mdata); werr != nil {
				d.log.Jobf(digest, "metrics write failed: %v", werr)
				if err == nil {
					err = werr
					res = nil
				}
			}
		}
	}()

	d.reg().Add("clapd.jobs.executed", 1)
	sp := tr.Root().Start("job.rehydrate")
	rec, salv, herr := b.Rehydrate()
	if herr != nil {
		sp.SetAttr("err", herr.Error())
		sp.End()
		return nil, herr
	}
	if !salv.Clean() {
		sp.SetAttr("salvage", salv.String())
		d.reg().Add("clapd.jobs.salvaged", 1)
	}
	sp.End()

	if ferr := faultinject.Fire("clapd.worker.solve"); ferr != nil {
		return nil, ferr
	}
	kind, _ := SolverKind(b.Solver)
	ctx, cancel := context.WithCancel(d.ctx)
	defer cancel()
	rep, perr := core.Reproduce(rec, core.ReproduceOptions{
		Solver:        kind,
		Deadline:      d.cfg.JobTimeout,
		Ctx:           ctx,
		CaptureReplay: true,
		Obs:           tr,
		// The bundle digest keys the artifact cache, so the daemon's
		// dedupe address and the cache address coincide: a retry of this
		// digest (attempt 2 after a crash, or a re-upload after store
		// pruning) reuses the preprocess snapshot and re-validates the
		// previously solved schedule instead of solving again.
		Cache:    d.cache,
		CacheKey: digest,
	})
	if perr != nil {
		if rep != nil {
			d.writeExplainArtifacts(digest, rep)
		}
		if rep != nil && rep.Outcome != nil && !rep.Outcome.Reproduced {
			return nil, permanent(perr) // deterministic replay refutation
		}
		return nil, perr // interrupted/failed solve: transient, retry may finish
	}

	if ferr := faultinject.Fire("clapd.worker.result"); ferr != nil {
		return nil, ferr
	}
	d.writeExplainArtifacts(digest, rep)
	res = &Result{
		Schema:     ResultSchema,
		Digest:     digest,
		Name:       b.Name,
		Attempt:    attempt,
		Reproduced: rep.Outcome != nil && rep.Outcome.Reproduced,
		Solver:     kind.String(),
	}
	if !salv.Clean() {
		res.Salvage = salv.String()
	}
	if rep.Solution != nil {
		res.Preemptions = rep.Solution.Preemptions
		res.ScheduleLen = len(rep.Solution.Order)
	}
	data, jerr := json.MarshalIndent(res, "", "  ")
	if jerr != nil {
		return nil, jerr
	}
	if werr := d.store.Write(digest, ArtifactResult, append(data, '\n')); werr != nil {
		return nil, werr
	}
	return res, nil
}

// writeExplainArtifacts persists the flight-recorder views (timeline
// lanes, schedule-diff explanation) best-effort: explainability
// artifacts must never fail a job that solved.
func (d *Daemon) writeExplainArtifacts(digest string, rep *core.Reproduction) {
	if tl, err := rep.BuildTimeline(digest[:12]); err == nil {
		if data, err := timeline.EncodeChrome(tl); err == nil && timeline.Validate(data) == nil {
			if err := d.store.Write(digest, ArtifactTimeline, data); err != nil {
				d.log.Jobf(digest, "timeline write failed: %v", err)
			}
		}
	}
	if rep.Solution != nil {
		if diff, err := rep.ScheduleDiff(); err == nil {
			var buf bytes.Buffer
			diff.Render(&buf)
			if err := d.store.Write(digest, ArtifactExplain, buf.Bytes()); err != nil {
				d.log.Jobf(digest, "explain write failed: %v", err)
			}
		}
	}
	if rec := rep.Recording; rec != nil {
		if report, err := rec.DetectRaces(races.Options{}, nil); err == nil {
			meta := races.Meta{Program: digest[:12], Model: rec.Model.String(), Seed: rec.Seed}
			if data, err := report.MarshalReport(meta); err == nil {
				if err := d.store.Write(digest, ArtifactRaces, data); err != nil {
					d.log.Jobf(digest, "races write failed: %v", err)
				}
			}
		}
	}
}

// writeFailureResult persists a terminal-failure result.json so poisoned
// jobs serve an explanation, not a 404.
func (d *Daemon) writeFailureResult(digest, name string, attempt int, jobErr error) {
	res := &Result{
		Schema:  ResultSchema,
		Digest:  digest,
		Name:    name,
		Attempt: attempt,
		Err:     jobErr.Error(),
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return
	}
	if werr := d.store.Write(digest, ArtifactResult, append(data, '\n')); werr != nil {
		d.log.Jobf(digest, "failure result write failed: %v", werr)
	}
}
