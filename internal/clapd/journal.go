// The write-ahead job journal: clapd's durability spine.
//
// Every job state transition is appended as one JSON line to
// <dir>/journal.wal and fsynced before the transition takes effect
// anywhere a client can observe it. The rules that make recovery sound:
//
//   - "queued" is fsynced before the ingest replies 201 — an accepted
//     job exists on disk before the client believes it exists.
//   - "done"/"poisoned" are fsynced after the job's artifacts are in the
//     store — a terminal journal state implies readable results.
//   - Recovery replays the journal (highest sequence number wins per
//     digest); non-terminal jobs are re-queued with their attempt count
//     bumped when they were mid-run, or poisoned when the budget is
//     spent. Terminal jobs are never transitioned again.
//
// A crash can truncate the final line mid-append; recovery tolerates a
// damaged tail (the same stance as the framed trace decoder: bound the
// loss to the unflushed suffix, keep everything before it). On open the
// journal is compacted — one line per digest — so the WAL stays
// proportional to the job population, not the restart count.
package clapd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// State is a job's lifecycle position.
type State string

// Job states. queued → running → done, with running → retrying → running
// loops on transient failures and running/retrying → poisoned when the
// attempt budget is exhausted or the failure is permanent.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateRetrying State = "retrying"
	StateDone     State = "done"
	StatePoisoned State = "poisoned"
)

// Terminal reports whether a job in this state will never run again.
func (s State) Terminal() bool { return s == StateDone || s == StatePoisoned }

// valid guards journal replay against corrupt or future state names.
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateRetrying, StateDone, StatePoisoned:
		return true
	}
	return false
}

// Entry is one journal line.
type Entry struct {
	Seq     uint64 `json:"seq"`
	Digest  string `json:"digest"`
	State   State  `json:"state"`
	Attempt int    `json:"attempt"`
	Err     string `json:"err,omitempty"`
	// UnixNs timestamps the transition (diagnostics only; excluded from
	// deterministic tooling output).
	UnixNs int64 `json:"ts,omitempty"`
}

// JournalRecovery reports what replaying a journal found.
type JournalRecovery struct {
	// Entries counts intact lines replayed.
	Entries int
	// DroppedBytes is the length of a damaged tail (crash mid-append).
	DroppedBytes int
	// DroppedReason says why the tail was dropped ("" when clean).
	DroppedReason string
}

// Journal is the append-only WAL. All methods are safe for concurrent
// use; Append is the durability point and fsyncs before returning.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	seq  uint64
}

const journalName = "journal.wal"

// OpenJournal replays (tolerating a damaged tail), compacts, and reopens
// the journal for appending. It returns the latest entry per digest,
// ordered by sequence number — the daemon's recovery worklist.
func OpenJournal(dir string) (*Journal, []Entry, *JournalRecovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	path := filepath.Join(dir, journalName)
	entries, maxSeq, rec, err := replayJournal(path)
	if err != nil {
		return nil, nil, nil, err
	}
	// Compact: one line per digest, preserving sequence numbers, written
	// atomically so a crash mid-compaction keeps the old WAL intact.
	var buf bytes.Buffer
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return nil, nil, nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := atomicWrite(dir, journalName, buf.Bytes()); err != nil {
		return nil, nil, nil, fmt.Errorf("clapd: journal compaction: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	return &Journal{path: path, f: f, seq: maxSeq}, entries, rec, nil
}

// ReadJournal replays a journal without opening it for writing — the
// read-only view `clap jobs` uses, safe while a daemon holds the WAL.
func ReadJournal(dir string) ([]Entry, *JournalRecovery, error) {
	entries, _, rec, err := replayJournal(filepath.Join(dir, journalName))
	return entries, rec, err
}

// replayJournal parses the WAL, keeping the highest-sequence entry per
// digest. A line that fails to parse ends the replay: everything after
// it is unreachable (it may be the continuation of a torn write), so it
// is counted as the dropped tail rather than resynchronized — unlike
// trace frames, journal lines carry no checksums, and a clean prefix is
// exactly what fsync-before-ack guarantees survives.
func replayJournal(path string) ([]Entry, uint64, *JournalRecovery, error) {
	rec := &JournalRecovery{}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, rec, nil
	}
	if err != nil {
		return nil, 0, nil, err
	}
	latest := map[string]Entry{}
	var maxSeq uint64
	off := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := len(line) + 1 // scanner strips the newline
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			rec.DroppedBytes = len(data) - off
			rec.DroppedReason = fmt.Sprintf("unparseable line at byte %d: %v", off, err)
			break
		}
		if !e.State.valid() || !validDigest(e.Digest) {
			rec.DroppedBytes = len(data) - off
			rec.DroppedReason = fmt.Sprintf("invalid entry at byte %d (state %q)", off, e.State)
			break
		}
		// A line without a trailing newline is a torn append: the entry
		// may be a prefix of a longer record that happens to parse.
		if off+len(line) == len(data) {
			rec.DroppedBytes = len(data) - off
			rec.DroppedReason = fmt.Sprintf("torn final line at byte %d (no newline)", off)
			break
		}
		rec.Entries++
		if prev, ok := latest[e.Digest]; !ok || e.Seq >= prev.Seq {
			latest[e.Digest] = e
		}
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		off += lineLen
	}
	if err := sc.Err(); err != nil && rec.DroppedReason == "" {
		rec.DroppedBytes = len(data) - off
		rec.DroppedReason = fmt.Sprintf("scan stopped at byte %d: %v", off, err)
	}
	out := make([]Entry, 0, len(latest))
	for _, e := range latest {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, maxSeq, rec, nil
}

// Append journals one transition and fsyncs it. The returned entry
// carries the assigned sequence number. Fire points clapd.journal.append
// (before the write) and clapd.journal.sync (between write and fsync)
// let chaos tests fail or kill the process on either side of the
// durability boundary.
func (j *Journal) Append(digest string, state State, attempt int, jobErr string) (Entry, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e := Entry{
		Seq:     j.seq,
		Digest:  digest,
		State:   state,
		Attempt: attempt,
		Err:     jobErr,
		UnixNs:  time.Now().UnixNano(),
	}
	line, err := json.Marshal(e)
	if err != nil {
		return Entry{}, err
	}
	if err := faultinject.Fire("clapd.journal.append"); err != nil {
		return Entry{}, err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return Entry{}, err
	}
	if err := faultinject.Fire("clapd.journal.sync"); err != nil {
		return Entry{}, err
	}
	if err := j.f.Sync(); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// Close closes the WAL file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
