package clapd

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// racySrc is the canonical lost-update benchmark used across the clapd
// tests: it records quickly and its failure reproduces deterministically
// through the offline pipeline.
const racySrc = `
int x;
int y;
func racer() {
	int r = x;
	x = r + 1;
	y = y + 1;
}
func main() {
	int h = spawn racer();
	int r = x;
	x = r + 1;
	join(h);
	int v = x;
	assert(v == 2, "lost update");
}
`

// recordOnce records racySrc a single time per test binary; recording
// hunts seeds and is the slowest step, so every test shares the result.
var recordOnce = sync.OnceValues(func() (*Bundle, error) {
	prog, err := core.Compile(racySrc)
	if err != nil {
		return nil, err
	}
	rec, err := core.Record(prog, core.RecordOptions{SeedLimit: 2000})
	if err != nil {
		return nil, err
	}
	return FromRecording(rec, racySrc, "racy", ""), nil
})

// testBundle returns a fresh shallow copy of the shared recorded bundle.
// Tests may tweak scalar fields (Seed, Name…) but must not mutate Log in
// place.
func testBundle(t *testing.T) *Bundle {
	t.Helper()
	b, err := recordOnce()
	if err != nil {
		t.Fatalf("recording test bundle: %v", err)
	}
	cp := *b
	return &cp
}

// testBundleBytes returns the shared bundle's wire bytes and digest.
func testBundleBytes(t *testing.T) ([]byte, string) {
	t.Helper()
	b := testBundle(t)
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return raw, b.Digest()
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, d *Daemon, digest string, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if j, ok := d.JobView(digest); ok && j.State.Terminal() {
			return j
		}
		time.Sleep(10 * time.Millisecond)
	}
	j, _ := d.JobView(digest)
	t.Fatalf("job %.12s never reached a terminal state (last: %+v)", digest, j)
	return Job{}
}

// shutdown drains a test daemon with a bounded patience.
func shutdown(t *testing.T, d *Daemon) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
