package clapd

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestDigestStable pins the content address: independently constructed
// bundles with the same semantic fields share a digest, the display name
// is excluded, and every semantic field participates.
func TestDigestStable(t *testing.T) {
	b := testBundle(t)
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// A JSON round trip (the ingest path) must land on the same digest as
	// the in-memory struct (the client path).
	decoded, err := DecodeBundle(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := decoded.Digest(), b.Digest(); got != want {
		t.Fatalf("digest changed across encode/decode: %s != %s", got, want)
	}
	// Re-digesting is stable.
	if b.Digest() != b.Digest() {
		t.Fatal("digest not deterministic")
	}
	if !validDigest(b.Digest()) {
		t.Fatalf("digest %q is not 64 lowercase hex chars", b.Digest())
	}

	named := *b
	named.Name = "some-other-display-name"
	if named.Digest() != b.Digest() {
		t.Error("display name leaked into the content digest")
	}
	for _, mut := range []struct {
		field string
		apply func(*Bundle)
	}{
		{"program", func(x *Bundle) { x.Program += "\n" }},
		{"model", func(x *Bundle) { x.Model = "TSO" }},
		{"inputs", func(x *Bundle) { x.Inputs = append([]int64{7}, x.Inputs...) }},
		{"solver", func(x *Bundle) { x.Solver = "cnf" }},
		{"seed", func(x *Bundle) { x.Seed++ }},
		{"chaos", func(x *Bundle) { x.Chaos++ }},
		{"failure_thread", func(x *Bundle) { x.FailureThread++ }},
		{"failure_site", func(x *Bundle) { x.FailureSite++ }},
		{"log", func(x *Bundle) { x.Log = append(append([]byte{}, x.Log...), 0) }},
	} {
		m := *b
		mut.apply(&m)
		if m.Digest() == b.Digest() {
			t.Errorf("mutating %s did not change the digest", mut.field)
		}
	}
}

// TestDecodeBundleRejects pins the typed early rejections: oversized
// payloads, non-bundle JSON, wrong schema, and — critically — flat
// (non-framed) logs, which have no salvage story.
func TestDecodeBundleRejects(t *testing.T) {
	raw, _ := testBundleBytes(t)

	if _, err := DecodeBundle(raw, 16); err == nil {
		t.Error("oversized bundle accepted")
	} else if _, ok := err.(*TooLargeError); !ok {
		t.Errorf("oversized bundle: got %T, want *TooLargeError", err)
	}

	for name, tweak := range map[string]func(*Bundle){
		"schema":  func(b *Bundle) { b.Schema = "clap-bundle/999" },
		"program": func(b *Bundle) { b.Program = "   " },
		"model":   func(b *Bundle) { b.Model = "LSD" },
		"solver":  func(b *Bundle) { b.Solver = "quantum" },
		"nolog":   func(b *Bundle) { b.Log = nil },
	} {
		b := testBundle(t)
		tweak(b)
		enc, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		// Encode force-restores the schema; corrupt it on the wire.
		if name == "schema" {
			enc = []byte(strings.Replace(string(enc), BundleSchema, "clap-bundle/999", 1))
		}
		if _, err := DecodeBundle(enc, 0); err == nil {
			t.Errorf("%s: bad bundle accepted", name)
		} else if _, ok := err.(*BadBundleError); !ok {
			t.Errorf("%s: got %T, want *BadBundleError", name, err)
		}
	}

	// A flat (legacy, non-framed) log is refused before any decoding.
	flat := testBundle(t)
	pl := &trace.PathLog{}
	pl.Append(0, trace.Event{Kind: trace.EvEnter, Arg: 0})
	flat.Log = pl.Encode()
	enc, err := flat.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBundle(enc, 0); err == nil {
		t.Error("flat log accepted")
	} else if !strings.Contains(err.Error(), "framed") {
		t.Errorf("flat log rejection does not name the framed format: %v", err)
	}

	if _, err := DecodeBundle([]byte("{not json"), 0); err == nil {
		t.Error("non-JSON accepted")
	}
}

// TestBundleTruncatedLogSalvages proves a damaged upload still decodes
// to its longest valid prefix rather than erroring — the service-side
// face of the framed format's salvage guarantee.
func TestBundleTruncatedLogSalvages(t *testing.T) {
	b := testBundle(t)
	cut := *b
	cut.Log = append([]byte{}, b.Log[:len(b.Log)-7]...)
	enc, err := cut.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBundle(enc, 0)
	if err != nil {
		t.Fatalf("truncated framed log refused at admission: %v", err)
	}
	log, rep, err := dec.DecodeLog()
	if err != nil {
		t.Fatalf("truncated log did not salvage: %v", err)
	}
	if rep.Clean() {
		t.Error("salvage report claims a clean decode of a truncated log")
	}
	if len(log.Threads) == 0 {
		t.Error("salvage yielded no threads")
	}
	// And the truncated bundle is a different object than the intact one.
	if dec.Digest() == b.Digest() {
		t.Error("truncated log collided with the intact digest")
	}
}
