package clapd

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestLiveGaugesMoveUnderLoad pins the fleet gauges: with the worker
// pool frozen, queued ingests raise clapd.queue.depth deterministically
// and both gauges ride along in /v1/stats; with a live worker, the busy
// gauge is observed at 1 while the job runs and returns to 0 after.
func TestLiveGaugesMoveUnderLoad(t *testing.T) {
	cfg := fastConfig(t.TempDir())
	cfg.Workers = -1 // freeze the queue: depth is fully deterministic
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	if got := d.reg().Get("clapd.queue.depth"); got != 0 {
		t.Fatalf("idle queue depth = %d, want 0", got)
	}
	if _, ok := d.reg().Lookup("clapd.workers.busy"); !ok {
		t.Fatal("clapd.workers.busy not initialized at Open")
	}
	encode := func(seed int64) []byte {
		b := testBundle(t)
		b.Seed = seed
		raw, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	for i := int64(1); i <= 2; i++ {
		if res, err := d.Ingest(encode(i)); err != nil || res.Status != IngestAccepted {
			t.Fatalf("ingest %d: %v %v", i, res, err)
		}
	}
	var stats obs.Report
	getJSON(t, srv.URL+"/v1/stats", &stats)
	if got := stats.Gauges["clapd.queue.depth"]; got != 2 {
		t.Errorf("/v1/stats clapd.queue.depth = %d, want 2", got)
	}
	if got, ok := stats.Gauges["clapd.workers.busy"]; !ok || got != 0 {
		t.Errorf("/v1/stats clapd.workers.busy = %d (present %v), want 0 with frozen workers", got, ok)
	}
}

func TestBusyGaugeTracksRunningJob(t *testing.T) {
	d, err := Open(fastConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)

	raw, digest := testBundleBytes(t)
	if _, err := d.Ingest(raw); err != nil {
		t.Fatal(err)
	}
	// Watch the gauge while the job runs; the pipeline attempt is far
	// longer than the poll period, so a busy worker cannot hide.
	maxBusy := int64(0)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if v := d.reg().Get("clapd.workers.busy"); v > maxBusy {
			maxBusy = v
		}
		if j, ok := d.JobView(digest); ok && j.State.Terminal() {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	job := waitTerminal(t, d, digest, time.Second)
	if job.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", job.State, job.Err)
	}
	if maxBusy != 1 {
		t.Errorf("max observed clapd.workers.busy = %d, want 1", maxBusy)
	}
	if got := d.reg().Get("clapd.workers.busy"); got != 0 {
		t.Errorf("clapd.workers.busy = %d after completion, want 0", got)
	}
	if got := d.reg().TakeSnapshot().Hists["clapd.job.ns"].Count; got != 1 {
		t.Errorf("clapd.job.ns count = %d, want 1 attempt observed", got)
	}
}

// TestMetricsEndpoint drives two jobs to done and checks GET /metrics:
// Prometheus text with the summed per-job counters merged into the
// daemon registry, the live gauges, and non-empty stage latency
// histograms — and that two scrapes of the now-idle daemon are
// byte-identical (the encoder is deterministic).
func TestMetricsEndpoint(t *testing.T) {
	d, err := Open(fastConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	for i := int64(1); i <= 2; i++ {
		b := testBundle(t)
		b.Seed = i
		raw, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Ingest(raw)
		if err != nil {
			t.Fatal(err)
		}
		job := waitTerminal(t, d, res.Digest, 60*time.Second)
		if job.State != StateDone {
			t.Fatalf("job %d finished %s (%s), want done", i, job.State, job.Err)
		}
	}

	text := getRaw(t, srv.URL+"/metrics", 200)
	s, err := obs.DecodeProm(text)
	if err != nil {
		t.Fatalf("decoding /metrics: %v\n%s", err, text)
	}
	if got := s.Counters["clapd_jobs_done"]; got != 2 {
		t.Errorf("clapd_jobs_done = %d, want 2", got)
	}
	if got := s.Counters["clapd_jobs_executed"]; got != 2 {
		t.Errorf("clapd_jobs_executed = %d, want 2", got)
	}
	// Per-job pipeline counters merged in: two reproduced replays.
	if got := s.Counters["replay_reproduced"]; got != 2 {
		t.Errorf("merged replay.reproduced = %d, want 2", got)
	}
	for _, g := range []string{"clapd_queue_depth", "clapd_workers_busy"} {
		if v, ok := s.Gauges[g]; !ok || v != 0 {
			t.Errorf("gauge %s = %d (present %v), want 0 on the idle daemon", g, v, ok)
		}
	}
	for _, h := range []string{"clapd_job_ns", "stage_symexec_ns", "stage_preprocess_ns", "stage_solve_ns", "stage_replay_ns"} {
		if got := s.Hists[h].Count; got < 2 {
			t.Errorf("histogram %s count = %d, want ≥ 2", h, got)
		}
	}

	if again := getRaw(t, srv.URL+"/metrics", 200); !bytes.Equal(text, again) {
		t.Error("two scrapes of an idle daemon differ — /metrics is not deterministic")
	}
}

// TestEventLogStructure replaces-the-bare-logger contract: every line
// the daemon writes is one JSON object, and each job state transition
// appears with digest, state, attempt, and duration.
func TestEventLogStructure(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLog(&buf)
	cfg := fastConfig(t.TempDir())
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.log = log // swap in before any job activity
	defer shutdown(t, d)

	raw, digest := testBundleBytes(t)
	if _, err := d.Ingest(raw); err != nil {
		t.Fatal(err)
	}
	if job := waitTerminal(t, d, digest, 60*time.Second); job.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", job.State, job.Err)
	}
	shutdown(t, d) // flush: workers are done before we read the buffer

	var states []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if e.TS == "" {
			t.Errorf("event without timestamp: %q", line)
		}
		if e.Kind != "job.transition" {
			continue
		}
		if e.Digest != digest {
			t.Errorf("transition for wrong digest: %q", line)
		}
		states = append(states, e.State)
		if e.State != string(StateQueued) {
			if e.Attempt == 0 {
				t.Errorf("post-queue transition without attempt: %q", line)
			}
			if e.DurNS <= 0 {
				t.Errorf("transition without duration: %q", line)
			}
		}
	}
	want := []string{string(StateQueued), string(StateRunning), string(StateDone)}
	if strings.Join(states, ",") != strings.Join(want, ",") {
		t.Errorf("transition sequence %v, want %v", states, want)
	}

	// A nil event log (the default with no LogWriter) drops silently.
	var nilLog *EventLog
	nilLog.Logf("dropped")
	nilLog.Jobf("d", "dropped")
}
