package clapd

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeWAL(t *testing.T, dir string, lines ...string) {
	t.Helper()
	body := strings.Join(lines, "")
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func line(seq uint64, digest string, state State, attempt int) string {
	e := Entry{Seq: seq, Digest: digest, State: state, Attempt: attempt}
	b, _ := json.Marshal(e)
	return string(b) + "\n"
}

// TestJournalRoundTrip appends transitions and replays them: the highest
// sequence number per digest wins, and sequence numbering continues from
// where the previous incarnation stopped.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, entries, rec, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || rec.DroppedBytes != 0 {
		t.Fatalf("fresh journal not empty: %d entries, %+v", len(entries), rec)
	}
	dA, dB := testDigest(0x11), testDigest(0x22)
	for _, step := range []struct {
		digest  string
		state   State
		attempt int
	}{
		{dA, StateQueued, 0},
		{dB, StateQueued, 0},
		{dA, StateRunning, 1},
		{dA, StateDone, 1},
		{dB, StateRunning, 1},
	} {
		if _, err := j.Append(step.digest, step.state, step.attempt, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, entries, rec, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec.DroppedBytes != 0 {
		t.Fatalf("clean journal reported a dropped tail: %+v", rec)
	}
	byDigest := map[string]Entry{}
	for _, e := range entries {
		byDigest[e.Digest] = e
	}
	if got := byDigest[dA]; got.State != StateDone || got.Attempt != 1 {
		t.Errorf("digest A replayed as %+v, want done/1", got)
	}
	if got := byDigest[dB]; got.State != StateRunning {
		t.Errorf("digest B replayed as %+v, want running", got)
	}
	// Appends continue past the replayed maximum — sequence numbers never
	// collide across restarts.
	e, err := j2.Append(dB, StateDone, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq <= 5 {
		t.Errorf("restarted journal reused sequence space: %d", e.Seq)
	}
}

// TestJournalTornTail pins crash tolerance: a mid-append crash leaves a
// torn or garbage tail, and recovery keeps the clean prefix while
// reporting exactly what was dropped.
func TestJournalTornTail(t *testing.T) {
	dA, dB := testDigest(0x31), testDigest(0x32)
	cases := []struct {
		name string
		tail string
	}{
		{"garbage", `{"seq": 3, "dig`},
		{"torn-no-newline", line(3, dB, StateRunning, 1)[:len(line(3, dB, StateRunning, 1))-1]},
		{"invalid-state", `{"seq":3,"digest":"` + dB + `","state":"exploded"}` + "\n"},
		{"invalid-digest", `{"seq":3,"digest":"zzz","state":"queued"}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeWAL(t, dir,
				line(1, dA, StateQueued, 0),
				line(2, dB, StateQueued, 0),
				tc.tail,
			)
			j, entries, rec, err := OpenJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 2 {
				t.Fatalf("replayed %d entries, want 2 (%+v)", len(entries), entries)
			}
			if rec.DroppedBytes == 0 || rec.DroppedReason == "" {
				t.Errorf("damaged tail not reported: %+v", rec)
			}
			// Compaction rewrote a clean WAL: close, reopen, no drop.
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j2, entries2, rec2, err := OpenJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if rec2.DroppedBytes != 0 {
				t.Errorf("compacted journal still reports damage: %+v", rec2)
			}
			if len(entries2) != len(entries) {
				t.Errorf("compaction changed the entry set: %d != %d", len(entries2), len(entries))
			}
		})
	}
}

// TestJournalCompaction proves the WAL stays proportional to the job
// population: many transitions for one digest compact to one line.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := testDigest(0x44)
	states := []State{StateQueued, StateRunning, StateRetrying, StateRunning, StateDone}
	for i, s := range states {
		if _, err := j.Append(d, s, i, ""); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	if _, _, _, err := OpenJournal(dir); err != nil { // compacts
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Fatalf("compacted WAL has %d lines, want 1:\n%s", n, data)
	}
	if !strings.Contains(string(data), string(StateDone)) {
		t.Errorf("compacted entry lost the terminal state:\n%s", data)
	}
}

// TestReadJournal is the `clap jobs` path: a read-only replay that works
// on a missing, clean, or damaged WAL without disturbing it.
func TestReadJournal(t *testing.T) {
	dir := t.TempDir()
	entries, rec, err := ReadJournal(dir)
	if err != nil || len(entries) != 0 || rec.DroppedBytes != 0 {
		t.Fatalf("missing WAL: %v, %d entries, %+v", err, len(entries), rec)
	}
	d := testDigest(0x55)
	writeWAL(t, dir, line(1, d, StateQueued, 0), line(2, d, StatePoisoned, 3), "garbage")
	before, _ := os.ReadFile(filepath.Join(dir, journalName))
	entries, rec, err = ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].State != StatePoisoned {
		t.Errorf("replay: %+v", entries)
	}
	if rec.DroppedBytes == 0 {
		t.Error("garbage tail not reported")
	}
	after, _ := os.ReadFile(filepath.Join(dir, journalName))
	if string(before) != string(after) {
		t.Error("read-only replay modified the WAL")
	}
}
