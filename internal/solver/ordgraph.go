package solver

import (
	"sort"

	"repro/internal/constraints"
)

// ordGraph is the solver's order graph with incremental cycle detection.
//
// It maintains a topological order ord[] of the nodes across edge
// insertions in the style of Pearce & Kelly ("A Dynamic Topological Sort
// Algorithm for Directed Acyclic Graphs", JEA 2006): an inserted edge
// a < b with ord[a] < ord[b] is consistent with the current order and
// costs O(1); only an inversion (ord[a] > ord[b]) triggers a search, and
// that search is confined to the "affected region" — nodes whose rank
// lies between ord[b] and ord[a]. A cycle is discovered exactly when the
// forward search from b inside that region hits a.
//
// Edge deletion (the solver backtracking its trail) is O(1) per edge and
// never touches ord: a topological order of G remains a topological order
// of any subgraph of G, so undo just pops the adjacency lists. This is
// what makes the scheme fit chronological backtracking so well — the
// trail-based solver deletes edges in strict LIFO order and pays nothing
// for it.
type ordGraph struct {
	adj  [][]constraints.SAPRef // forward adjacency
	radj [][]constraints.SAPRef // reverse adjacency (for the backward search)
	ord  []int32                // current topological rank of each node

	trail []ordEdge

	// Generation-stamped DFS scratch shared by reaches and the PK searches.
	seen    []int32
	seenGen int32
	stack   []constraints.SAPRef

	// Affected-region scratch, reused across insertions.
	deltaF, deltaB []constraints.SAPRef
	rankPool       []int32
}

type ordEdge struct {
	from, to constraints.SAPRef
}

func newOrdGraph(n int) *ordGraph {
	g := &ordGraph{
		adj:  make([][]constraints.SAPRef, n),
		radj: make([][]constraints.SAPRef, n),
		ord:  make([]int32, n),
		seen: make([]int32, n),
	}
	for i := range g.ord {
		g.ord[i] = int32(i)
	}
	return g
}

// mark returns an undo point for undoTo.
func (g *ordGraph) mark() int { return len(g.trail) }

// undoTo removes every edge added after the given mark, in LIFO order.
// The topological order is intentionally left alone (still valid for the
// smaller graph).
func (g *ordGraph) undoTo(mark int) {
	for len(g.trail) > mark {
		e := g.trail[len(g.trail)-1]
		g.trail = g.trail[:len(g.trail)-1]
		g.adj[e.from] = g.adj[e.from][:len(g.adj[e.from])-1]
		g.radj[e.to] = g.radj[e.to][:len(g.radj[e.to])-1]
	}
}

// addEdge inserts a < b, reporting false (and leaving the graph
// unchanged) when the edge would close a cycle.
func (g *ordGraph) addEdge(a, b constraints.SAPRef) bool {
	if a == b {
		return false
	}
	if g.ord[a] >= g.ord[b] {
		// The edge inverts the current order: search the affected region.
		if !g.discover(a, b) {
			return false
		}
		g.reorder()
	}
	g.adj[a] = append(g.adj[a], b)
	g.radj[b] = append(g.radj[b], a)
	g.trail = append(g.trail, ordEdge{from: a, to: b})
	return true
}

// discover runs the two bounded searches of the PK insertion for the edge
// a < b: forward from b over nodes ranked below a (filling deltaF), and
// backward from a over nodes ranked above b (filling deltaB). It reports
// false when the forward search reaches a, i.e. b already reaches a and
// the new edge would create a cycle.
func (g *ordGraph) discover(a, b constraints.SAPRef) bool {
	ub, lb := g.ord[a], g.ord[b]

	g.seenGen++
	gen := g.seenGen
	g.deltaF = g.deltaF[:0]
	g.stack = append(g.stack[:0], b)
	g.seen[b] = gen
	for len(g.stack) > 0 {
		n := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		g.deltaF = append(g.deltaF, n)
		for _, m := range g.adj[n] {
			if m == a {
				return false // b reaches a: cycle
			}
			if g.seen[m] != gen && g.ord[m] < ub {
				g.seen[m] = gen
				g.stack = append(g.stack, m)
			}
		}
	}

	g.seenGen++
	gen = g.seenGen
	g.deltaB = g.deltaB[:0]
	g.stack = append(g.stack[:0], a)
	g.seen[a] = gen
	for len(g.stack) > 0 {
		n := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		g.deltaB = append(g.deltaB, n)
		for _, m := range g.radj[n] {
			if g.seen[m] != gen && g.ord[m] > lb {
				g.seen[m] = gen
				g.stack = append(g.stack, m)
			}
		}
	}
	return true
}

// reorder reassigns the ranks held by deltaB ∪ deltaF so that every
// node of deltaB (… →* a) sorts below every node of deltaF (b →* …).
// The two sets are disjoint — overlap would mean b →* x →* a, which
// discover already rejected as a cycle — so the pooled ranks are simply
// redistributed: deltaB keeps the low ones, deltaF the high ones, with
// each set's internal order preserved.
func (g *ordGraph) reorder() {
	sort.Slice(g.deltaB, func(i, j int) bool { return g.ord[g.deltaB[i]] < g.ord[g.deltaB[j]] })
	sort.Slice(g.deltaF, func(i, j int) bool { return g.ord[g.deltaF[i]] < g.ord[g.deltaF[j]] })
	g.rankPool = g.rankPool[:0]
	for _, n := range g.deltaB {
		g.rankPool = append(g.rankPool, g.ord[n])
	}
	for _, n := range g.deltaF {
		g.rankPool = append(g.rankPool, g.ord[n])
	}
	sort.Slice(g.rankPool, func(i, j int) bool { return g.rankPool[i] < g.rankPool[j] })
	k := 0
	for _, n := range g.deltaB {
		g.ord[n] = g.rankPool[k]
		k++
	}
	for _, n := range g.deltaF {
		g.ord[n] = g.rankPool[k]
		k++
	}
}

// reaches reports whether to is reachable from from. The topological
// order makes most queries O(1) — a node never reaches one ranked below
// it — and prunes the DFS frontier of the rest to the rank interval
// (ord[from], ord[to]].
func (g *ordGraph) reaches(from, to constraints.SAPRef) bool {
	if from == to {
		return true
	}
	bound := g.ord[to]
	if g.ord[from] > bound {
		return false
	}
	g.seenGen++
	gen := g.seenGen
	g.stack = append(g.stack[:0], from)
	g.seen[from] = gen
	for len(g.stack) > 0 {
		n := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		for _, m := range g.adj[n] {
			if m == to {
				return true
			}
			if g.seen[m] != gen && g.ord[m] < bound {
				g.seen[m] = gen
				g.stack = append(g.stack, m)
			}
		}
	}
	return false
}
