package solver

import "repro/internal/constraints"

// OrderGraph exposes the solver's Pearce–Kelly order graph (ordgraph.go)
// to other packages. The CNF backend's lazy-transitivity loop uses it as
// the theory oracle: after each SAT model it orients every allocated pair
// variable into the graph; the first edge that closes a cycle yields a
// refinement lemma, and when every edge inserts cleanly the maintained
// topological ranks are the witness total order — no cubic transitivity
// axioms needed upfront.
type OrderGraph struct {
	g *ordGraph
	// Path scratch: parent pointers of the last DFS, generation-stamped so
	// repeated queries never reallocate.
	parent    []constraints.SAPRef
	parentGen []int32
	gen       int32
}

// NewOrderGraph creates an empty order graph over n nodes.
func NewOrderGraph(n int) *OrderGraph {
	return &OrderGraph{
		g:         newOrdGraph(n),
		parent:    make([]constraints.SAPRef, n),
		parentGen: make([]int32, n),
	}
}

// AddEdge inserts a < b, reporting false (and leaving the graph
// unchanged) when the edge would close a cycle.
func (o *OrderGraph) AddEdge(a, b constraints.SAPRef) bool { return o.g.addEdge(a, b) }

// Reset removes every edge. The topological ranks are kept — they remain
// a valid order for the empty graph, and preserving them across rounds
// means edges re-inserted from the next SAT model are mostly consistent
// insertions (the O(1) fast path of the PK scheme).
func (o *OrderGraph) Reset() { o.g.undoTo(0) }

// Path returns a directed path from → … → to over the current edges, or
// nil when to is unreachable. Used to extract the cycle behind a failed
// AddEdge(a, b): Path(b, a) plus the rejected edge a→b closes the loop.
func (o *OrderGraph) Path(from, to constraints.SAPRef) []constraints.SAPRef {
	if from == to {
		return []constraints.SAPRef{from}
	}
	g := o.g
	o.gen++
	gen := o.gen
	g.stack = append(g.stack[:0], from)
	o.parentGen[from] = gen
	o.parent[from] = from
	found := false
	for len(g.stack) > 0 && !found {
		n := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		for _, m := range g.adj[n] {
			if o.parentGen[m] == gen {
				continue
			}
			o.parentGen[m] = gen
			o.parent[m] = n
			if m == to {
				found = true
				break
			}
			g.stack = append(g.stack, m)
		}
	}
	if !found {
		return nil
	}
	var rev []constraints.SAPRef
	for n := to; ; n = o.parent[n] {
		rev = append(rev, n)
		if n == from {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// TopoOrder writes the nodes in topological rank order into dst (grown if
// needed) and returns it. The rank array is maintained as a permutation,
// so this is a single inverse-permutation pass.
func (o *OrderGraph) TopoOrder(dst []constraints.SAPRef) []constraints.SAPRef {
	n := len(o.g.ord)
	if cap(dst) < n {
		dst = make([]constraints.SAPRef, n)
	}
	dst = dst[:n]
	for i, r := range o.g.ord {
		dst[r] = constraints.SAPRef(i)
	}
	return dst
}
