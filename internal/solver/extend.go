package solver

import (
	"repro/internal/constraints"
)

// extendSchedules enumerates linear extensions of the decided order graph
// whose preemptive context-switch count is at most s.bound, streaming each
// complete order into sink (which returns false to stop). The walk prefers
// staying on the current thread (fewest switches first), mirroring the
// paper's preemption-bounded schedule shape.
func (s *search) extendSchedules(sink func(order []constraints.SAPRef) bool) {
	n := len(s.sys.SAPs)
	// Incoming-degree counting over the decided graph.
	indeg := make([]int, n)
	for a := range s.g.adj {
		for _, b := range s.g.adj[a] {
			indeg[b]++
		}
	}
	scheduled := make([]bool, n)
	order := make([]constraints.SAPRef, 0, n)
	stop := false
	nodes := 0

	// readyOf returns thread t's schedulable SAPs (all preds scheduled).
	readyOf := func(t int) []constraints.SAPRef {
		var out []constraints.SAPRef
		for _, r := range s.sys.Threads[t] {
			if !scheduled[r] && indeg[r] == 0 {
				out = append(out, r)
			}
		}
		return out
	}
	take := func(r constraints.SAPRef) {
		scheduled[r] = true
		order = append(order, r)
		for _, b := range s.g.adj[r] {
			indeg[b]--
		}
	}
	untake := func(r constraints.SAPRef) {
		for _, b := range s.g.adj[r] {
			indeg[b]++
		}
		order = order[:len(order)-1]
		scheduled[r] = false
	}

	var walk func(cur int, used int, justSwitched bool)
	walk = func(cur int, used int, justSwitched bool) {
		if stop {
			return
		}
		nodes++
		if nodes > s.opts.ExtendNodeBudget {
			// Exponential wandering at an infeasible bound: give up on
			// this mapping; the caller treats it as no-extension.
			stop = true
			return
		}
		if len(order) == n {
			if !sink(order) {
				stop = true
			}
			return
		}
		ready := readyOf(cur)
		for _, r := range ready {
			take(r)
			walk(cur, used, false)
			untake(r)
			if stop {
				return
			}
		}
		if justSwitched {
			return
		}
		for t := range s.sys.Threads {
			if t == cur {
				continue
			}
			cost := 0
			if len(ready) > 0 {
				cost = 1
			}
			if used+cost > s.bound {
				continue
			}
			if len(readyOf(t)) == 0 {
				continue
			}
			walk(t, used+cost, true)
			if stop {
				return
			}
		}
	}
	// Start with any thread that can schedule its first SAP (normally
	// main, which owns the first Start).
	for t := range s.sys.Threads {
		if len(readyOf(t)) > 0 {
			walk(t, 0, true)
			if stop {
				return
			}
		}
	}
}
