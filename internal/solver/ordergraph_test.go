package solver

import (
	"math/rand"
	"testing"

	"repro/internal/constraints"
)

func TestOrderGraphCycleAndPath(t *testing.T) {
	g := NewOrderGraph(4)
	for _, e := range [][2]constraints.SAPRef{{0, 1}, {1, 2}, {2, 3}} {
		if !g.AddEdge(e[0], e[1]) {
			t.Fatalf("edge %v rejected", e)
		}
	}
	if g.AddEdge(3, 0) {
		t.Fatal("cycle-closing edge accepted")
	}
	// The cycle witness: 0 →* 3 exists so the rejected edge 3→0 closes it.
	path := g.Path(0, 3)
	want := []constraints.SAPRef{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if g.Path(3, 0) != nil {
		t.Fatal("reverse path must be unreachable")
	}
}

func TestOrderGraphTopoOrderAndReset(t *testing.T) {
	g := NewOrderGraph(5)
	edges := [][2]constraints.SAPRef{{4, 2}, {2, 0}, {3, 1}, {0, 3}}
	for _, e := range edges {
		if !g.AddEdge(e[0], e[1]) {
			t.Fatalf("edge %v rejected", e)
		}
	}
	order := g.TopoOrder(nil)
	pos := make(map[constraints.SAPRef]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	if len(pos) != 5 {
		t.Fatalf("topo order %v is not a permutation", order)
	}
	for _, e := range edges {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("topo order %v violates edge %v", order, e)
		}
	}
	// After Reset the once-cyclic edge inserts cleanly.
	g.Reset()
	if !g.AddEdge(1, 4) {
		t.Fatal("edge rejected after Reset")
	}
}

// TestOrderGraphRandomized cross-checks AddEdge's cycle verdicts and the
// maintained topological order against a straightforward DAG invariant on
// random insertion sequences.
func TestOrderGraphRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		const n = 12
		g := NewOrderGraph(n)
		var accepted [][2]constraints.SAPRef
		for k := 0; k < 40; k++ {
			a := constraints.SAPRef(r.Intn(n))
			b := constraints.SAPRef(r.Intn(n))
			if a == b {
				continue
			}
			wasCyclic := g.Path(b, a) != nil
			got := g.AddEdge(a, b)
			if got == wasCyclic {
				t.Fatalf("trial %d: AddEdge(%d,%d) = %v but Path(b,a) reachable = %v", trial, a, b, got, wasCyclic)
			}
			if got {
				accepted = append(accepted, [2]constraints.SAPRef{a, b})
			}
			order := g.TopoOrder(nil)
			pos := make([]int, n)
			for i, node := range order {
				pos[node] = i
			}
			for _, e := range accepted {
				if pos[e[0]] >= pos[e[1]] {
					t.Fatalf("trial %d: topo order violates accepted edge %v", trial, e)
				}
			}
		}
	}
}
