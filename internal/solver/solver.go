// Package solver implements CLAP's sequential constraint solver: the
// decision procedure that computes a bug-reproducing schedule from the
// constraint system.
//
// As the paper observes (§4), CLAP's queries are not general SMT: "the
// solver only needs to compute a solution for the order variables that
// essentially maps each Read to a certain Write in a discrete finite
// domain, subject to the order constraints." The procedure here decides
// exactly that class:
//
//  1. Map every completed wait to a waking signal (Fso's cardinality
//     constraint), every read to a candidate write or the initial value
//     (Frw), and order every cross-thread pair of lock regions (Fso's
//     locking constraint). Each decision adds order edges to a growing
//     order graph; a cycle refutes the branch (chronological backtracking
//     with two-sided pruning — a forced side is committed immediately).
//  2. Evaluate the value assignment induced by the mapping and check
//     Fpath ∧ Fbug.
//  3. Extract a total order (schedule) as a linear extension of the order
//     graph with the fewest preemptive context switches, by iterative
//     deepening on the preemption bound — the paper's minimal
//     context-switch property (§4.2).
//  4. Re-validate the schedule against the full system (semantic ground
//     truth), retrying other extensions or mappings when a residual
//     constraint (e.g. a symbolic-address equality) fails.
//
// Any returned solution therefore satisfies every constraint family and is
// guaranteed to replay to the same failure.
package solver

import (
	"context"
	"fmt"
	"time"

	"repro/internal/constraints"
	"repro/internal/schedule"
	"repro/internal/symbolic"
	"repro/internal/symexec"
)

// Options tunes the search.
type Options struct {
	// MaxPreemptions bounds the schedule's preemptive context switches.
	// Negative means iterate 0,1,2,… and return the minimal one found
	// (bounded by MinimalSearchLimit).
	MaxPreemptions int
	// MinimalSearchLimit caps the iterative-deepening bound in minimal
	// mode (default 16; failures needing more preemptions should be solved
	// with an explicit MaxPreemptions bound, as the racey stress test is).
	MinimalSearchLimit int
	// ExtensionRetries is how many distinct linear extensions to try per
	// complete mapping before backtracking a decision (default 8).
	ExtensionRetries int
	// MaxDecisions caps total decision-node expansions (default 5e6) so
	// pathological systems fail fast instead of hanging.
	MaxDecisions int64
	// ExtendNodeBudget caps the linear-extension walk per complete mapping
	// (default 10_000 nodes); exhausting it counts as "no extension within
	// the bound", keeping minimal-mode sweeps from wandering exponentially
	// at infeasible bounds.
	ExtendNodeBudget int
	// GenFallbackBound: for preemption bounds up to this value the solver
	// first tries exhaustive bounded schedule generation with validation —
	// at low bounds the schedule space is small and enumeration decides
	// satisfiability exactly and cheaply, where the mapping search would
	// grind through huge numbers of order-infeasible mappings. Default 3.
	GenFallbackBound int
	// GenScheduleBudget caps that enumeration (default 40_000 candidates);
	// on overflow the mapping search takes over for the bound.
	GenScheduleBudget int
	// GenEscalateBudget is the enumeration cap for the minimal-mode rescue
	// pass: when the whole bound sweep fails but some low bound's
	// enumeration had been capped, those bounds are re-enumerated with this
	// budget before the solver declares unsat — the enumerator decides low
	// bounds exactly where the budgeted mapping search may thrash. Default
	// 2_000_000 candidates; negative disables the pass.
	GenEscalateBudget int
	// RescueSweep, when set, is consulted by the minimal-mode rescue pass
	// before the escalated enumeration: it is called once per
	// still-undecided preemption bound, in ascending order, and should
	// return a schedule with at most that many preemptions. Only a
	// returned schedule is trusted; a nil result (with or without error)
	// is inconclusive and the escalated enumerator still decides the
	// bound. The portfolio wires the CNF session's bounded sweep (one
	// reusable encoded session, retractable bound blocks) through this
	// hook; the function value inverts the dependency, since cnfsolver
	// imports this package.
	RescueSweep func(bound int) (*Solution, error)
	// BoundDecisionBudget caps mapping-search decisions per bound in
	// minimal mode (default 60_000): rather than prove an infeasible low
	// bound unsatisfiable exhaustively, the sweep moves on — minimality
	// becomes approximate, matching the paper's own segment-based
	// approximation of context switches.
	BoundDecisionBudget int64
	// CapturePartial, when set, keeps a snapshot of the order graph's
	// topological order at the deepest decision prefix the search reached,
	// in Stats.Partial. For failed or interrupted solves this is the
	// attempt's best partial schedule — the timeline layer renders losing
	// portfolio attempts from it. Off by default (the snapshot costs one
	// O(#SAPs) copy per new deepest prefix).
	CapturePartial bool
	// Progress, when set, receives periodic snapshots of the live search
	// statistics (sampled from the same stride as interrupt polling), for
	// progress heartbeats on long solves. Called from the solving
	// goroutine; it must be fast and must not call back into the solver.
	Progress func(Stats)
	// Ctx cancels the search between decision expansions (nil = never).
	// Cancellation surfaces as *Interrupted with the partial Stats intact.
	Ctx context.Context
	// Deadline bounds the solve's wall time (0 = none). It composes with
	// Ctx: whichever fires first interrupts the search.
	Deadline time.Duration
}

func (o *Options) fill() {
	if o.MinimalSearchLimit == 0 {
		o.MinimalSearchLimit = 16
	}
	if o.ExtensionRetries == 0 {
		o.ExtensionRetries = 8
	}
	if o.MaxDecisions == 0 {
		o.MaxDecisions = 5_000_000
	}
	if o.ExtendNodeBudget == 0 {
		o.ExtendNodeBudget = 10_000
	}
	if o.GenFallbackBound == 0 {
		o.GenFallbackBound = 3
	}
	if o.GenScheduleBudget == 0 {
		o.GenScheduleBudget = 40_000
	}
	if o.GenEscalateBudget == 0 {
		o.GenEscalateBudget = 2_000_000
	}
	if o.BoundDecisionBudget == 0 {
		o.BoundDecisionBudget = 60_000
	}
}

// Solution is a bug-reproducing schedule.
type Solution struct {
	Order   []constraints.SAPRef
	Witness *constraints.Witness
	// Preemptions is the schedule's preemptive context-switch count.
	Preemptions int
}

// Stats reports search effort.
type Stats struct {
	Decisions   int64
	Backtracks  int64
	Extensions  int64
	Validations int64
	// BoundReached is the last preemption bound the search explored —
	// partial-progress diagnostics for interrupted solves.
	BoundReached int
	// Partial is a SAP order consistent with every hard edge plus the
	// decisions of the deepest prefix the search reached; PartialDepth is
	// that prefix's decision depth. Captured only under
	// Options.CapturePartial, nil otherwise.
	Partial      []constraints.SAPRef
	PartialDepth int
}

// Unsat is returned when the system has no solution within the options'
// bounds.
type Unsat struct{ Reason string }

// Error implements error.
func (u *Unsat) Error() string { return "solver: unsatisfiable: " + u.Reason }

// Interrupted is returned when a deadline or context cancellation cut the
// search short. The Stats returned alongside it describe the partial work
// (decisions expanded, bound reached), so callers can diagnose what the
// budget bought before moving on.
type Interrupted struct {
	Reason string
	// Bound is the preemption bound being explored at the interrupt.
	Bound int
}

// Error implements error.
func (e *Interrupted) Error() string {
	return fmt.Sprintf("solver: interrupted at bound %d: %s", e.Bound, e.Reason)
}

// Solve runs the decision procedure.
func Solve(sys *constraints.System, opts Options) (*Solution, *Stats, error) {
	opts.fill()
	s := &search{sys: sys, opts: opts, stats: &Stats{}, maxDepth: -1}
	if opts.Deadline > 0 {
		s.deadline = time.Now().Add(opts.Deadline)
	}
	s.init()
	if s.hardUnsat {
		return nil, s.stats, &Unsat{Reason: "hard order constraints are cyclic"}
	}
	if opts.MaxPreemptions >= 0 {
		s.stats.BoundReached = opts.MaxPreemptions
		sol, err := s.solveWithBound(opts.MaxPreemptions)
		return sol, s.stats, err
	}
	// Minimal context switches: increase the bound until a solution
	// appears (§4.2 "we can start from the constraint with zero thread
	// context switch, and increment ... until a solution is found"). Each
	// bound gets a bounded effort so one infeasible bound cannot stall the
	// sweep.
	s.boundBudget = opts.BoundDecisionBudget
	s.genCapped = make([]bool, opts.GenFallbackBound+1)
	for c := 0; c <= opts.MinimalSearchLimit; c++ {
		s.boundStart = s.stats.Decisions
		s.stats.BoundReached = c
		sol, err := s.solveWithBound(c)
		if err == nil {
			return sol, s.stats, nil
		}
		if _, ok := err.(*Unsat); !ok {
			return nil, s.stats, err
		}
	}
	// Rescue pass: the sweep failed, but any low bound whose enumeration
	// was capped is still undecided — the budgeted mapping search that took
	// over can thrash on shapes the enumerator handles easily (a valid
	// schedule can sit far into the generation stream yet be cheap to reach
	// by streaming validation). Re-enumerate those bounds, in order, with
	// the escalated budget; bounds the first pass proved empty stay proved.
	if opts.GenEscalateBudget > 0 {
		stillCapped := false
		for c := 0; c <= min(opts.GenFallbackBound, opts.MinimalSearchLimit); c++ {
			if !s.genCapped[c] {
				continue
			}
			s.bound = c
			s.stats.BoundReached = c
			if opts.RescueSweep != nil {
				if sol, err := opts.RescueSweep(c); err == nil && sol != nil {
					return sol, s.stats, nil
				}
				// Nothing found (or the backend failed): inconclusive — the
				// sweep is an approximation, so only the enumerator below
				// can prove the bound empty.
			}
			sol, decided := s.tryGenerate(c, genLimits{
				MaxSchedules: opts.GenEscalateBudget,
				MaxCSPSets:   10_000_000,
				MaxWalkNodes: 500_000_000,
			})
			if s.pendingIntr != nil {
				return nil, s.stats, s.pendingIntr
			}
			if sol != nil {
				return sol, s.stats, nil
			}
			if !decided {
				stillCapped = true
			}
		}
		if stillCapped {
			// Even the escalated enumeration overflowed its budget, so the
			// low bounds remain undecided — a generic "no schedule" verdict
			// here would misreport budget exhaustion as unsatisfiability.
			return nil, s.stats, fmt.Errorf("solver: rescue enumeration exhausted its budget with low preemption bounds undecided (escalate budget %d)", opts.GenEscalateBudget)
		}
	}
	return nil, s.stats, &Unsat{Reason: fmt.Sprintf("no schedule within %d preemptions", opts.MinimalSearchLimit)}
}

// decision is one finite-domain choice point.
type decision struct {
	kind  decisionKind
	read  int // index into sys.Reads
	wait  int // index into sys.Waits
	a, b  constraints.SAPRef
	mutex int
}

type decisionKind uint8

const (
	decWait decisionKind = iota
	decRead
	decLockPair
)

// search is the solver state.
type search struct {
	sys   *constraints.System
	opts  Options
	stats *Stats

	// g is the order graph (hard edges plus decided edges) with
	// incrementally maintained topological order.
	g *ordGraph
	// hardUnsat is set when the hard edges alone are cyclic: the system
	// has no schedule at any bound.
	hardUnsat bool

	decisions []decision
	// chosenWrite[readIdx] = candidate index (-1 init value), set during
	// search.
	chosenWrite []int
	chosenWake  []int

	// readIdxOfSym maps a symbol to the read decision that binds it;
	// conjAll is Fpath plus Fbug, checked eagerly as reads get decided.
	readIdxOfSym map[symbolic.SymID]int
	conjAll      []symbolic.Expr

	bound       int
	boundBudget int64 // per-bound decision cap (minimal mode), 0 = off
	boundStart  int64
	// genCapped[b] records that bound b's first-pass enumeration hit a
	// budget cap (minimal mode only): such bounds were not decided
	// exhaustively, so the rescue pass revisits them with the escalated
	// budget before the sweep concludes unsat.
	genCapped []bool

	// deadline is the absolute wall-clock cutoff (zero = none); pendingIntr
	// carries an interrupt detected inside a generator callback out to
	// solveWithBound.
	deadline    time.Time
	pendingIntr *Interrupted

	// polls counts interrupt polls; every progressStride of them the live
	// stats are published through opts.Progress.
	polls int64

	// maxDepth is the deepest decision prefix reached so far (-1 before
	// the first decide call); used by the CapturePartial snapshot.
	maxDepth int
}

// progressStride is how many interrupt polls pass between Progress
// callbacks: frequent enough for a live heartbeat, far off the hot path.
const progressStride = 1024

func (s *search) init() {
	n := len(s.sys.SAPs)
	s.g = newOrdGraph(n)
	for _, e := range s.sys.HardEdges {
		if !s.g.addEdge(e[0], e[1]) {
			// The unconditional constraints are already contradictory —
			// there is no schedule to find at any bound.
			s.hardUnsat = true
		}
	}
	// Decision agenda: waits first (few, highly constrained), then reads
	// ordered by candidate count (static MRV), then lock region pairs.
	for i := range s.sys.Waits {
		s.decisions = append(s.decisions, decision{kind: decWait, wait: i})
	}
	// Reads whose symbols flow into some SAP's address expression are
	// address-formers: until they are decided, no symbolic-address
	// equality check can fire, so they go first. Within each class, fewer
	// candidates first (static MRV).
	addrFormer := map[symbolic.SymID]bool{}
	for _, sap := range s.sys.SAPs {
		if sap.AddrIndex != nil {
			for _, id := range symbolic.Syms(sap.AddrIndex, nil, nil) {
				addrFormer[id] = true
			}
		}
	}
	// Free reads (outside the cone of influence, see constraints.Preprocess)
	// need no mapping decision: any schedule position yields a value the
	// remaining constraints never observe.
	reads := make([]int, 0, len(s.sys.Reads))
	for i := range s.sys.Reads {
		if !s.sys.Reads[i].Free {
			reads = append(reads, i)
		}
	}
	class := func(ri int) int {
		if addrFormer[s.sys.SAP(s.sys.Reads[ri].Read).Sym.ID] {
			return 0
		}
		return 1
	}
	less := func(a, b int) bool {
		ca, cb := class(a), class(b)
		if ca != cb {
			return ca < cb
		}
		// Order by the full rival-set size, not the pruned candidate
		// count: pruning shrinks chains non-uniformly, and sorting by the
		// pruned counts interleaves same-location read-modify-write chains
		// out of program order — which starves the one-sided rival
		// placement below of the mixed placements those chains need. The
		// stable sort over equal full-set sizes keeps chain reads in
		// program order; the pruned Cands still shrink the branching.
		return len(s.sys.Reads[a].AllRivals()) < len(s.sys.Reads[b].AllRivals())
	}
	for i := 1; i < len(reads); i++ {
		for j := i; j > 0 && less(reads[j], reads[j-1]); j-- {
			reads[j], reads[j-1] = reads[j-1], reads[j]
		}
	}
	for _, ri := range reads {
		s.decisions = append(s.decisions, decision{kind: decRead, read: ri})
	}
	// Regions is a map: iterate its keys sorted or the decision agenda —
	// and with it the whole search — varies run to run.
	for _, m := range s.sys.RegionMutexes() {
		regions := s.sys.Regions[m]
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				if regions[i].Thread == regions[j].Thread {
					continue // ordered by program order already
				}
				s.decisions = append(s.decisions, decision{
					kind:  decLockPair,
					a:     constraints.SAPRef(i),
					b:     constraints.SAPRef(j),
					mutex: int(m),
				})
			}
		}
	}
	s.chosenWrite = make([]int, len(s.sys.Reads))
	s.chosenWake = make([]int, len(s.sys.Waits))
	for i := range s.chosenWrite {
		s.chosenWrite[i] = -2
	}
	s.readIdxOfSym = map[symbolic.SymID]int{}
	for i, ri := range s.sys.Reads {
		s.readIdxOfSym[s.sys.SAP(ri.Read).Sym.ID] = i
	}
	s.conjAll = append(append([]symbolic.Expr{}, s.sys.Path...), s.sys.Bug)
}

// errUndecided aborts a partial evaluation when a dependency is not yet
// mapped.
var errUndecided = fmt.Errorf("solver: symbol not yet decided")

// partialEnv resolves symbols from the current (possibly partial) mapping,
// also checking address equality for symbolic-address mappings.
type partialEnv struct {
	s    *search
	vals map[symbolic.SymID]int64
	bad  bool // an address-equality check failed during resolution
}

// Value implements symbolic.Env by resolving through the chosen mappings.
func (pe *partialEnv) Value(id symbolic.SymID) (int64, bool) {
	v, err := pe.resolve(id, 0)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (pe *partialEnv) resolve(id symbolic.SymID, depth int) (int64, error) {
	if v, ok := pe.vals[id]; ok {
		return v, nil
	}
	if depth > len(pe.s.sys.Reads)+1 {
		return 0, fmt.Errorf("solver: cyclic value dependency")
	}
	ri, ok := pe.s.readIdxOfSym[id]
	if !ok {
		return 0, fmt.Errorf("solver: unknown symbol %d", id)
	}
	info := pe.s.sys.Reads[ri]
	choice := pe.s.chosenWrite[ri]
	if choice == -2 {
		return 0, errUndecided
	}
	var val int64
	if choice == -1 {
		val = info.Init
	} else {
		w := pe.s.sys.SAP(info.Cands[choice])
		// Pre-resolve the write expression's dependencies.
		for _, dep := range symbolic.Syms(w.Val, nil, nil) {
			if _, err := pe.resolve(dep, depth+1); err != nil {
				return 0, err
			}
		}
		v, err := symbolic.EvalInt(w.Val, pe)
		if err != nil {
			return 0, err
		}
		val = v
		// Symbolic-address mappings are only meaningful when the read and
		// write addresses agree; check as soon as both are evaluable.
		r := pe.s.sys.SAP(info.Read)
		if r.Addr == symexec.NoAddr || w.Addr == symexec.NoAddr {
			ra, err1 := pe.addrOf(r, depth)
			wa, err2 := pe.addrOf(w, depth)
			if err1 == nil && err2 == nil && ra != wa {
				pe.bad = true
			}
		}
	}
	pe.vals[id] = val
	return val, nil
}

func (pe *partialEnv) addrOf(s *symexec.SAP, depth int) (int, error) {
	if s.Addr != symexec.NoAddr {
		return s.Addr, nil
	}
	for _, dep := range symbolic.Syms(s.AddrIndex, nil, nil) {
		if _, err := pe.resolve(dep, depth+1); err != nil {
			return 0, err
		}
	}
	idx, err := symbolic.EvalInt(s.AddrIndex, pe)
	if err != nil {
		return 0, err
	}
	a, ok := pe.s.sys.Layout.Addr(pe.s.sys.An.Prog, s.Var, idx)
	if !ok {
		return 0, fmt.Errorf("solver: out-of-bounds symbolic address")
	}
	return a, nil
}

// checkEagerly evaluates every conjunct whose reads are all decided; it
// reports false when a decided conjunct is violated or an address-equality
// check failed, pruning the branch before further decisions.
func (s *search) checkEagerly() bool {
	pe := &partialEnv{s: s, vals: map[symbolic.SymID]int64{}}
	for _, c := range s.conjAll {
		ok, err := symbolic.EvalBool(c, pe)
		if pe.bad {
			return false
		}
		if err != nil {
			continue // not fully decided yet
		}
		if !ok {
			return false
		}
	}
	return true
}

// addEdge inserts a < b, reporting false on a cycle (b already reaches a).
// Cycle detection is incremental: the order graph keeps a topological
// order, so a rank-consistent edge costs O(1) and only rank inversions
// pay for a search bounded to the affected region (see ordGraph).
func (s *search) addEdge(a, b constraints.SAPRef) bool {
	return s.g.addEdge(a, b)
}

// undoTo truncates the edge trail back to mark n.
func (s *search) undoTo(n int) { s.g.undoTo(n) }

// reaches reports whether to is reachable from from in the order graph.
// The maintained topological order answers most queries in O(1) (a node
// never reaches one ranked at or below it) and rank-prunes the rest.
func (s *search) reaches(from, to constraints.SAPRef) bool {
	return s.g.reaches(from, to)
}

// interrupted polls the search's cancellation sources: the caller's context
// and the wall-clock deadline. It is cheap enough to call on a stride from
// every search hot loop.
func (s *search) interrupted() *Interrupted {
	if s.opts.Progress != nil {
		if s.polls++; s.polls%progressStride == 0 {
			s.opts.Progress(*s.stats)
		}
	}
	if s.opts.Ctx != nil {
		select {
		case <-s.opts.Ctx.Done():
			return &Interrupted{Reason: s.opts.Ctx.Err().Error(), Bound: s.bound}
		default:
		}
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return &Interrupted{Reason: "deadline exceeded", Bound: s.bound}
	}
	return nil
}

func (s *search) solveWithBound(bound int) (*Solution, error) {
	s.bound = bound
	if ierr := s.interrupted(); ierr != nil {
		return nil, ierr
	}
	if bound <= s.opts.GenFallbackBound {
		sol, decided := s.tryGenerate(bound, genLimits{
			MaxSchedules: s.opts.GenScheduleBudget,
			MaxCSPSets:   200_000,
			MaxWalkNodes: 5_000_000,
		})
		if s.pendingIntr != nil {
			return nil, s.pendingIntr
		}
		if sol != nil {
			return sol, nil
		}
		if decided {
			return nil, &Unsat{Reason: fmt.Sprintf("no schedule with %d preemptions (exhaustive)", bound)}
		}
		if s.genCapped != nil && bound < len(s.genCapped) {
			s.genCapped[bound] = true
		}
		// Enumeration overflowed its budget: fall through to the mapping
		// search, which scales to large bounds. In minimal mode the rescue
		// pass may revisit this bound with the escalated budget.
	}
	sol, err := s.decide(0)
	if err != nil {
		return nil, err
	}
	return sol, nil
}

// genLimits bounds one enumeration attempt (see schedule.Options for the
// cap semantics).
type genLimits struct {
	MaxSchedules int
	MaxCSPSets   int
	MaxWalkNodes int
}

// tryGenerate enumerates all candidate schedules with exactly `bound`
// preemptions and validates each. decided=true means the enumeration was
// exhaustive, so a nil solution proves unsatisfiability at this bound.
func (s *search) tryGenerate(bound int, lim genLimits) (sol *Solution, decided bool) {
	gen := schedule.NewGenerator(s.sys, schedule.Options{
		MaxSchedules:     lim.MaxSchedules,
		RespectHardEdges: true,
		MaxCSPSets:       lim.MaxCSPSets,
		MaxWalkNodes:     lim.MaxWalkNodes,
	})
	res := gen.Generate(bound, func(order []constraints.SAPRef, pre int) bool {
		s.stats.Validations++
		if s.stats.Validations&63 == 0 {
			if ierr := s.interrupted(); ierr != nil {
				s.pendingIntr = ierr
				return false
			}
		}
		w, err := s.sys.ValidateSchedule(order)
		if err != nil || w.Preemptions > bound {
			return true
		}
		cp := make([]constraints.SAPRef, len(order))
		copy(cp, order)
		sol = &Solution{Order: cp, Witness: w, Preemptions: w.Preemptions}
		return false
	})
	if sol != nil {
		return sol, true
	}
	return nil, !res.Capped
}

// capturePartial snapshots the order graph's current topological order
// as the deepest-prefix partial schedule. ord is a permutation of ranks,
// so inverting it yields a SAP sequence consistent with every edge the
// graph holds right now.
func (s *search) capturePartial(depth int) {
	s.maxDepth = depth
	n := len(s.g.ord)
	if cap(s.stats.Partial) < n {
		s.stats.Partial = make([]constraints.SAPRef, n)
	}
	p := s.stats.Partial[:n]
	for v, rank := range s.g.ord {
		p[rank] = constraints.SAPRef(v)
	}
	s.stats.Partial = p
	s.stats.PartialDepth = depth
}

// decide assigns decision points depth-first.
func (s *search) decide(i int) (*Solution, error) {
	s.stats.Decisions++
	if s.stats.Decisions&255 == 0 {
		if ierr := s.interrupted(); ierr != nil {
			return nil, ierr
		}
	}
	if s.stats.Decisions > s.opts.MaxDecisions {
		return nil, fmt.Errorf("solver: decision budget exceeded (%d)", s.opts.MaxDecisions)
	}
	if s.boundBudget > 0 && s.stats.Decisions-s.boundStart > s.boundBudget {
		return nil, &Unsat{Reason: fmt.Sprintf("bound %d effort budget exhausted", s.bound)}
	}
	if s.opts.CapturePartial && i > s.maxDepth {
		s.capturePartial(i)
	}
	if i == len(s.decisions) {
		return s.complete()
	}
	d := s.decisions[i]
	mark := s.g.mark()
	switch d.kind {
	case decWait:
		wi := s.sys.Waits[d.wait]
		usedSignals := map[constraints.SAPRef]bool{}
		for k := range s.sys.Waits {
			if s.chosenWake[k] >= 0 && k < d.wait {
				cand := s.sys.Waits[k].Cands[s.chosenWake[k]]
				if s.sys.SAP(cand).Kind == symexec.SAPSignal {
					usedSignals[cand] = true
				}
			}
		}
		for ci, cand := range wi.Cands {
			if usedSignals[cand] {
				continue // a plain signal wakes at most one wait
			}
			if s.addEdge(wi.Begin, cand) && s.addEdge(cand, wi.End) {
				s.chosenWake[d.wait] = ci
				if sol, err := s.decide(i + 1); err == nil {
					return sol, nil
				} else if _, ok := err.(*Unsat); !ok {
					return nil, err
				}
			}
			s.undoTo(mark)
			s.stats.Backtracks++
		}
		return nil, &Unsat{Reason: "no wake mapping"}
	case decRead:
		ri := s.sys.Reads[d.read]
		r := ri.Read
		// Dynamic address resolution: with address-forming reads decided
		// first, most "maybe same address" candidates resolve to definite
		// equality or inequality here, enabling exact pruning and interval
		// side-constraints even for symbolic-address programs.
		addrKnown, addrOfRef := s.resolveAddrs(ri)
		firstChoice := -1
		if ri.NoInit {
			// Preprocessing proved a same-address write always precedes the
			// read: the initial value is unobservable.
			firstChoice = 0
		}
		for ci := firstChoice; ci < len(ri.Cands); ci++ {
			if ci >= 0 {
				if known, same := addrMatch(addrKnown, addrOfRef, r, ri.Cands[ci]); known && !same {
					continue // definitely different cells: not a candidate
				}
			}
			// For a write candidate, genuinely-free rival writes default to
			// "before the chosen write"; when the subtree fails we retry
			// with them "after the read" — the two placements that matter
			// in practice without an exponential per-rival split.
			variants := 1
			if ci >= 0 {
				variants = 2
			}
			for variant := 0; variant < variants; variant++ {
				ok := true
				if ci >= 0 {
					w := ri.Cands[ci]
					if !s.addEdge(w, r) {
						ok = false
					}
					if ok {
						ok = s.placeRivals(ri, w, r, variant == 1, addrKnown, addrOfRef)
					}
				} else {
					// Initial value: every same-address write (statically or
					// dynamically resolved) comes after the read — including
					// writes pruned from the candidate set, which still exist
					// in the schedule.
					for _, w2 := range ri.AllRivals() {
						same := s.definitelySame(r, w2)
						if !same {
							if known, eq := addrMatch(addrKnown, addrOfRef, r, w2); known && eq {
								same = true
							}
						}
						if same {
							if !s.addEdge(r, w2) {
								ok = false
								break
							}
						}
					}
				}
				if ok {
					s.chosenWrite[d.read] = ci
					// Eager value pruning: any path conjunct whose reads
					// are now all mapped must already hold.
					if s.checkEagerly() {
						if sol, err := s.decide(i + 1); err == nil {
							return sol, nil
						} else if _, ok := err.(*Unsat); !ok {
							return nil, err
						}
					}
					s.chosenWrite[d.read] = -2
				}
				s.undoTo(mark)
				s.stats.Backtracks++
			}
		}
		return nil, &Unsat{Reason: "no write mapping"}
	case decLockPair:
		var regions []constraints.Region
		for m, rs := range s.sys.Regions {
			if int(m) == d.mutex {
				regions = rs
			}
		}
		a, b := regions[d.a], regions[d.b]
		// Region a entirely before b, or b entirely before a. Open regions
		// (no unlock) can only come last.
		if a.HasUnlock {
			if s.addEdge(a.Unlock, b.Lock) {
				if sol, err := s.decide(i + 1); err == nil {
					return sol, nil
				} else if _, ok := err.(*Unsat); !ok {
					return nil, err
				}
			}
			s.undoTo(mark)
			s.stats.Backtracks++
		}
		if b.HasUnlock {
			if s.addEdge(b.Unlock, a.Lock) {
				if sol, err := s.decide(i + 1); err == nil {
					return sol, nil
				} else if _, ok := err.(*Unsat); !ok {
					return nil, err
				}
			}
			s.undoTo(mark)
			s.stats.Backtracks++
		}
		return nil, &Unsat{Reason: "lock regions cannot be serialized"}
	}
	return nil, fmt.Errorf("solver: unknown decision kind")
}

// definitelySame reports whether two memory SAPs definitely share an
// address.
func (s *search) definitelySame(a, b constraints.SAPRef) bool {
	x, y := s.sys.SAP(a), s.sys.SAP(b)
	return x.Var == y.Var && x.Addr != symexec.NoAddr && y.Addr != symexec.NoAddr && x.Addr == y.Addr
}

// resolveAddrs attempts to concretize the addresses of a read and all its
// candidate writes under the current partial mapping. It returns a map of
// resolved addresses keyed by SAPRef (addrKnown[x] reports resolvability).
func (s *search) resolveAddrs(ri constraints.ReadInfo) (map[constraints.SAPRef]bool, map[constraints.SAPRef]int) {
	known := map[constraints.SAPRef]bool{}
	addr := map[constraints.SAPRef]int{}
	pe := &partialEnv{s: s, vals: map[symbolic.SymID]int64{}}
	resolve := func(ref constraints.SAPRef) {
		sap := s.sys.SAP(ref)
		if sap.Addr != symexec.NoAddr {
			known[ref], addr[ref] = true, sap.Addr
			return
		}
		if a, err := pe.addrOf(sap, 0); err == nil && !pe.bad {
			known[ref], addr[ref] = true, a
		}
	}
	resolve(ri.Read)
	for _, w := range ri.AllRivals() {
		resolve(w)
	}
	return known, addr
}

// addrMatch reports whether both SAPs' addresses are resolved and equal.
func addrMatch(known map[constraints.SAPRef]bool, addr map[constraints.SAPRef]int, a, b constraints.SAPRef) (bothKnown, same bool) {
	if known[a] && known[b] {
		return true, addr[a] == addr[b]
	}
	return false, false
}

// placeRivals commits each same-address rival write (statically definite or
// dynamically resolved) to one side of the (w, r) interval. Rivals with
// only one consistent side are forced; genuinely free rivals take the side
// selected by rivalsAfter.
func (s *search) placeRivals(ri constraints.ReadInfo, w, r constraints.SAPRef, rivalsAfter bool, addrKnown map[constraints.SAPRef]bool, addrOf map[constraints.SAPRef]int) bool {
	var free []constraints.SAPRef
	// The interval constraint ranges over the full rival set: a write
	// pruned from Cands cannot be the mapped write, but it still exists in
	// every schedule and must stay outside the (w, r) interval.
	for _, w2 := range ri.AllRivals() {
		if w2 == w {
			continue
		}
		if !s.definitelySame(ri.Read, w2) {
			known, same := addrMatch(addrKnown, addrOf, ri.Read, w2)
			if !known || !same {
				continue // unresolved or different cell: no interval constraint
			}
		}
		beforeOK := !s.reaches(w, w2) // can place w2 < w
		afterOK := !s.reaches(w2, r)  // can place r < w2
		switch {
		case beforeOK && afterOK:
			free = append(free, w2)
		case beforeOK:
			if !s.addEdge(w2, w) {
				return false
			}
		case afterOK:
			if !s.addEdge(r, w2) {
				return false
			}
		default:
			return false
		}
	}
	for _, w2 := range free {
		if rivalsAfter {
			if !s.addEdge(r, w2) && !s.addEdge(w2, w) {
				return false
			}
		} else {
			if !s.addEdge(w2, w) && !s.addEdge(r, w2) {
				return false
			}
		}
	}
	return true
}

// complete is called with all decisions made: evaluate values, check Fpath
// and Fbug, then extract and validate a minimal linear extension.
func (s *search) complete() (*Solution, error) {
	env, err := s.evalEnv()
	if err != nil {
		return nil, &Unsat{Reason: err.Error()}
	}
	for _, c := range s.sys.Path {
		ok, err := symbolic.EvalBool(c, env)
		if err != nil || !ok {
			return nil, &Unsat{Reason: fmt.Sprintf("path condition %s fails under mapping", c)}
		}
	}
	ok, err := symbolic.EvalBool(s.sys.Bug, env)
	if err != nil || !ok {
		return nil, &Unsat{Reason: "bug predicate fails under mapping"}
	}
	// Extract linear extensions within the preemption bound and validate.
	tries := 0
	var lastErr error
	found := (*Solution)(nil)
	s.extendSchedules(func(order []constraints.SAPRef) bool {
		tries++
		s.stats.Extensions++
		s.stats.Validations++
		w, err := s.sys.ValidateSchedule(order)
		if err != nil {
			lastErr = err
			return tries < s.opts.ExtensionRetries
		}
		// The walk bounds switches against the decided graph; the witness
		// count is the replay-level ground truth, so enforce the bound on
		// it too.
		if w.Preemptions > s.bound {
			lastErr = fmt.Errorf("extension needs %d preemptions (> bound %d)", w.Preemptions, s.bound)
			return tries < s.opts.ExtensionRetries
		}
		cp := make([]constraints.SAPRef, len(order))
		copy(cp, order)
		found = &Solution{Order: cp, Witness: w, Preemptions: w.Preemptions}
		return false
	})
	if found != nil {
		return found, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no linear extension within %d preemptions", s.bound)
	}
	return nil, &Unsat{Reason: lastErr.Error()}
}

// evalEnv computes the concrete value of every read under the chosen
// mapping. Values are evaluated lazily with memoization; the order graph's
// acyclicity guarantees termination.
func (s *search) evalEnv() (symbolic.MapEnv, error) {
	env := symbolic.MapEnv{}
	// readIdxBySym: which read decision binds a symbol.
	type src struct {
		readIdx int
	}
	bySym := map[symbolic.SymID]src{}
	for i, ri := range s.sys.Reads {
		bySym[s.sys.SAP(ri.Read).Sym.ID] = src{readIdx: i}
	}
	var valueOf func(id symbolic.SymID, depth int) (int64, error)
	valueOf = func(id symbolic.SymID, depth int) (int64, error) {
		if v, ok := env[id]; ok {
			return v, nil
		}
		if depth > len(s.sys.Reads)+1 {
			return 0, fmt.Errorf("cyclic value dependency")
		}
		sc, ok := bySym[id]
		if !ok {
			return 0, fmt.Errorf("unknown symbol %d", id)
		}
		ri := s.sys.Reads[sc.readIdx]
		choice := s.chosenWrite[sc.readIdx]
		if choice == -2 {
			return 0, fmt.Errorf("symbol %d decided later", id)
		}
		var val int64
		if choice == -1 {
			val = ri.Init
		} else {
			wexpr := s.sys.SAP(ri.Cands[choice]).Val
			// Bind the write expression's dependencies first.
			for _, dep := range symbolic.Syms(wexpr, nil, nil) {
				if _, ok := env[dep]; !ok {
					if _, err := valueOf(dep, depth+1); err != nil {
						return 0, err
					}
				}
			}
			v, err := symbolic.EvalInt(wexpr, env)
			if err != nil {
				return 0, err
			}
			val = v
		}
		env[id] = val
		return val, nil
	}
	for i := range s.sys.Reads {
		if s.sys.Reads[i].Free {
			continue // outside the cone: undecided by design, never observed
		}
		id := s.sys.SAP(s.sys.Reads[i].Read).Sym.ID
		if _, err := valueOf(id, 0); err != nil {
			return nil, err
		}
	}
	return env, nil
}
