package solver

import (
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// buildFailingSystem records src until an assertion fails and builds the
// constraint system under the given model.
func buildFailingSystem(t *testing.T, src string, model vm.MemModel, maxSeed int64) *constraints.System {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	esc := escape.Analyze(prog)
	for seed := int64(0); seed < maxSeed; seed++ {
		rec, err := vm.NewPathRecorder(prog)
		if err != nil {
			t.Fatal(err)
		}
		machine, err := vm.New(prog, vm.Config{
			Model: model, Sched: vm.NewRandomScheduler(seed),
			Shared: esc.Shared, PathRecorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := machine.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure == nil || res.Failure.Kind != vm.FailAssert {
			continue
		}
		an, err := symexec.Analyze(prog, rec.Paths, rec.Log, symexec.Options{
			Shared:  esc.Shared,
			Failure: symexec.FailureSpec{Thread: res.Failure.Thread, Site: res.Failure.Site},
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := constraints.Build(an, model)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	t.Fatalf("no failing seed in %d tries", maxSeed)
	return nil
}

const figure2SC = `
int x;
int y;
func t1() {
	int r1 = x;
	x = r1 + 1;
	int r2 = y;
	if (r2 > 0) {
		int r3 = x;
		assert(r3 > 0, "assert1");
	}
}
func main() {
	int h;
	h = spawn t1();
	x = 2;
	x = x - 3;
	y = 1;
	join(h);
}
`

func TestSolveFigure2Minimal(t *testing.T) {
	sys := buildFailingSystem(t, figure2SC, vm.SC, 3000)
	sol, stats, err := Solve(sys, Options{MaxPreemptions: -1})
	if err != nil {
		t.Fatalf("solve: %v (stats %+v)", err, stats)
	}
	// The solution must be a genuine model: re-validate independently.
	w, err := sys.ValidateSchedule(sol.Order)
	if err != nil {
		t.Fatalf("solution does not validate: %v", err)
	}
	if w.Preemptions != sol.Preemptions {
		t.Errorf("preemptions mismatch: %d vs %d", w.Preemptions, sol.Preemptions)
	}
	if sol.Preemptions > 3 {
		t.Errorf("minimal solution has %d preemptions, expected <= 3", sol.Preemptions)
	}
	if stats.Decisions == 0 && stats.Validations == 0 {
		t.Error("stats not collected")
	}
}

// dekkerTSOSrc is Dekker's algorithm with the fences elided: correct under
// SC, broken under TSO where the flag stores may pass the flag loads. Its
// failures need genuinely preemptive schedules (no 0-preemption solution),
// which makes it the subject for bound-sweep and rescue-pass tests.
const dekkerTSOSrc = `
int flag0;
int flag1;
int incrit;
int bad;
func t0() {
	flag0 = 1;
	if (flag1 == 0) {
		incrit = incrit + 1;
		if (incrit != 1) { bad = 1; }
		incrit = incrit - 1;
	}
}
func t1() {
	flag1 = 1;
	if (flag0 == 0) {
		incrit = incrit + 1;
		if (incrit != 1) { bad = 1; }
		incrit = incrit - 1;
	}
}
func main() {
	int h0;
	int h1;
	h0 = spawn t0();
	h1 = spawn t1();
	join(h0);
	join(h1);
	int b = bad;
	assert(b == 0, "mutual exclusion violated");
}
`

// TestGenEscalationRescue pins the minimal-mode rescue pass: with the
// first-pass enumeration budget and the per-bound mapping budget both
// starved, the sweep alone fails, and only the escalated re-enumeration of
// the capped low bounds can find the schedule. Disabling escalation must
// turn the same solve unsatisfiable.
func TestGenEscalationRescue(t *testing.T) {
	sys := buildFailingSystem(t, dekkerTSOSrc, vm.TSO, 3000)
	starved := Options{
		MaxPreemptions:      -1,
		GenScheduleBudget:   1,
		BoundDecisionBudget: 1,
	}
	sol, stats, err := Solve(sys, starved)
	if err != nil {
		t.Fatalf("rescue pass did not recover: %v (stats %+v)", err, stats)
	}
	if _, err := sys.ValidateSchedule(sol.Order); err != nil {
		t.Fatalf("rescued solution does not validate: %v", err)
	}
	starved.GenEscalateBudget = -1
	if _, _, err := Solve(sys, starved); err == nil {
		t.Fatal("starved solve without escalation should be unsatisfiable")
	} else if _, ok := err.(*Unsat); !ok {
		t.Fatalf("expected *Unsat, got %v", err)
	}
}

// TestRescueBudgetExhaustionNotUnsat pins the rescue pass's verdict
// honesty: when even the escalated enumeration overflows its budget, the
// low bounds are still undecided and the solve must NOT report the
// generic Unsat — that would misreport budget exhaustion as proved
// unsatisfiability. (The result used to be dropped on the floor with
// `sol, _ := tryGenerate(...)`.) The same system under a real escalation
// budget is genuinely unsatisfiable, which pins the contrast.
func TestRescueBudgetExhaustionNotUnsat(t *testing.T) {
	sys := buildFailingSystem(t, dekkerTSOSrc, vm.TSO, 3000)
	// The SC encoding of the TSO-only bug is unsatisfiable — but a starved
	// solve may not say so.
	sysSC, err := constraints.Build(sys.An, vm.SC)
	if err != nil {
		t.Fatal(err)
	}
	starved := Options{
		MaxPreemptions:      -1,
		MinimalSearchLimit:  3,
		GenScheduleBudget:   1,
		GenEscalateBudget:   1,
		BoundDecisionBudget: 1,
	}
	_, _, err = Solve(sysSC, starved)
	if err == nil {
		t.Fatal("starved solve of an unsatisfiable system returned a solution")
	}
	if _, ok := err.(*Unsat); ok {
		t.Fatalf("budget exhaustion misreported as Unsat: %v", err)
	}
	if !strings.Contains(err.Error(), "undecided") {
		t.Fatalf("exhaustion error should say the bounds are undecided: %v", err)
	}
	// Control: with the default escalation budget the enumeration is
	// exhaustive at every capped bound and the verdict is a true Unsat.
	starved.GenEscalateBudget = 0
	if _, _, err := Solve(sysSC, starved); err == nil {
		t.Fatal("unsatisfiable system solved")
	} else if _, ok := err.(*Unsat); !ok {
		t.Fatalf("expected *Unsat under the full escalation budget, got %v", err)
	}
}

func TestSolveLockedProgram(t *testing.T) {
	src := `
int c;
mutex m;
func worker() {
	lock(m);
	int t = c;
	c = t + 1;
	unlock(m);
}
func main() {
	int h1;
	int h2;
	h1 = spawn worker();
	h2 = spawn worker();
	lock(m);
	int t = c;
	c = t + 1;
	unlock(m);
	join(h1);
	join(h2);
	int v = c;
	assert(v != 3, "all three increments landed");
}
`
	sys := buildFailingSystem(t, src, vm.SC, 2000)
	sol, _, err := Solve(sys, Options{MaxPreemptions: -1})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if _, err := sys.ValidateSchedule(sol.Order); err != nil {
		t.Fatalf("solution does not validate: %v", err)
	}
}

func TestSolveCondVarProgram(t *testing.T) {
	src := `
int stage;
mutex m;
cond c;
func waiter() {
	lock(m);
	while (stage == 0) {
		wait(c, m);
	}
	int s = stage;
	unlock(m);
	assert(s == 2, "stage jumped");
}
func main() {
	int h;
	h = spawn waiter();
	yield();
	lock(m);
	stage = 1;
	signal(c);
	unlock(m);
	join(h);
}
`
	var sys *constraints.System
	for seed := int64(0); seed < 800 && sys == nil; seed++ {
		func() {
			defer func() { recover() }()
			sys = buildFailingSystemSeed(t, src, vm.SC, seed)
		}()
	}
	if sys == nil {
		t.Skip("no failing interleaving found")
	}
	sol, _, err := Solve(sys, Options{MaxPreemptions: -1})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if _, err := sys.ValidateSchedule(sol.Order); err != nil {
		t.Fatalf("solution does not validate: %v", err)
	}
}

// buildFailingSystemSeed tries exactly one seed; returns nil via panic
// recovery in the caller when it did not fail. (Kept simple on purpose.)
func buildFailingSystemSeed(t *testing.T, src string, model vm.MemModel, seed int64) *constraints.System {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	esc := escape.Analyze(prog)
	rec, err := vm.NewPathRecorder(prog)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := vm.New(prog, vm.Config{
		Model: model, Sched: vm.NewRandomScheduler(seed),
		Shared: esc.Shared, PathRecorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil || res.Failure.Kind != vm.FailAssert {
		panic("no failure")
	}
	an, err := symexec.Analyze(prog, rec.Paths, rec.Log, symexec.Options{
		Shared:  esc.Shared,
		Failure: symexec.FailureSpec{Thread: res.Failure.Thread, Site: res.Failure.Site},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := constraints.Build(an, model)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSolvePSOReorder(t *testing.T) {
	src := `
int x;
int y;
func t2() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "write reorder observed");
	}
}
func main() {
	int h;
	h = spawn t2();
	x = 1;
	y = 1;
	join(h);
}
`
	sys := buildFailingSystem(t, src, vm.PSO, 3000)
	sol, _, err := Solve(sys, Options{MaxPreemptions: -1})
	if err != nil {
		t.Fatalf("solve under PSO: %v", err)
	}
	if _, err := sys.ValidateSchedule(sol.Order); err != nil {
		t.Fatalf("solution does not validate: %v", err)
	}
	// Under SC the same analysis must be unsatisfiable: the bug needs the
	// write reordering.
	sysSC, err := constraints.Build(sys.An, vm.SC)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Solve(sysSC, Options{MaxPreemptions: 6, MinimalSearchLimit: 6}); err == nil {
		t.Fatal("the PSO-only bug must be unsatisfiable under the SC encoding")
	}
}

func TestSolveTSODekker(t *testing.T) {
	sys := buildFailingSystem(t, dekkerTSOSrc, vm.TSO, 3000)
	sol, _, err := Solve(sys, Options{MaxPreemptions: -1})
	if err != nil {
		t.Fatalf("solve dekker under TSO: %v", err)
	}
	if _, err := sys.ValidateSchedule(sol.Order); err != nil {
		t.Fatalf("solution does not validate: %v", err)
	}
	// The SC encoding of the same trace must be unsatisfiable.
	sysSC, err := constraints.Build(sys.An, vm.SC)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Solve(sysSC, Options{MaxPreemptions: 8, MinimalSearchLimit: 8}); err == nil {
		t.Fatal("the TSO-only Dekker bug must be unsatisfiable under SC")
	}
}

func TestPreemptionBoundRespected(t *testing.T) {
	sys := buildFailingSystem(t, figure2SC, vm.SC, 3000)
	minSol, _, err := Solve(sys, Options{MaxPreemptions: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The bound is a hard cap on the returned schedule: re-solving with the
	// found count must succeed within it, and larger bounds must not force
	// larger answers.
	sol2, _, err := Solve(sys, Options{MaxPreemptions: minSol.Preemptions})
	if err != nil {
		t.Fatalf("bound %d should be satisfiable: %v", minSol.Preemptions, err)
	}
	if sol2.Preemptions > minSol.Preemptions {
		t.Fatal("bound violated")
	}
	sol3, _, err := Solve(sys, Options{MaxPreemptions: minSol.Preemptions + 4})
	if err != nil {
		t.Fatalf("looser bound should be satisfiable: %v", err)
	}
	if sol3.Preemptions > minSol.Preemptions+4 {
		t.Fatal("loose bound violated")
	}
}
