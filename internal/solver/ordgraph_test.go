package solver

import (
	"math/rand"
	"testing"

	"repro/internal/constraints"
)

// naiveGraph is the reference implementation: a plain adjacency list with
// a full DFS cycle check per insertion — exactly the scheme ordGraph
// replaced. The differential test drives both with the same randomized
// edge/undo sequences and demands identical accept/reject answers.
type naiveGraph struct {
	adj   [][]constraints.SAPRef
	trail []ordEdge
}

func newNaiveGraph(n int) *naiveGraph {
	return &naiveGraph{adj: make([][]constraints.SAPRef, n)}
}

func (g *naiveGraph) reaches(from, to constraints.SAPRef) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(g.adj))
	stack := []constraints.SAPRef{from}
	seen[from] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		for _, m := range g.adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

func (g *naiveGraph) addEdge(a, b constraints.SAPRef) bool {
	if a == b || g.reaches(b, a) {
		return false
	}
	g.adj[a] = append(g.adj[a], b)
	g.trail = append(g.trail, ordEdge{from: a, to: b})
	return true
}

func (g *naiveGraph) mark() int { return len(g.trail) }

func (g *naiveGraph) undoTo(mark int) {
	for len(g.trail) > mark {
		e := g.trail[len(g.trail)-1]
		g.trail = g.trail[:len(g.trail)-1]
		g.adj[e.from] = g.adj[e.from][:len(g.adj[e.from])-1]
	}
}

// checkTopoOrder verifies ord is a strict topological order of the
// current edge set: every present edge ranks its head above its tail, and
// ranks are a permutation (all distinct).
func checkTopoOrder(t *testing.T, g *ordGraph) {
	t.Helper()
	used := make(map[int32]bool, len(g.ord))
	for _, r := range g.ord {
		if used[r] {
			t.Fatalf("duplicate rank %d", r)
		}
		used[r] = true
	}
	for a := range g.adj {
		for _, b := range g.adj[a] {
			if g.ord[a] >= g.ord[b] {
				t.Fatalf("edge %d->%d violates topological order (%d >= %d)",
					a, b, g.ord[a], g.ord[b])
			}
		}
	}
}

// TestOrdGraphDifferential drives the incremental detector and the naive
// full-recheck through randomized insert/undo/query sequences across many
// seeds and graph sizes, checking every answer agrees and the maintained
// order stays topological.
func TestOrdGraphDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		inc := newOrdGraph(n)
		ref := newNaiveGraph(n)
		type markPair struct{ inc, ref int }
		var marks []markPair
		ops := 300 + rng.Intn(700)
		for op := 0; op < ops; op++ {
			switch k := rng.Intn(10); {
			case k < 6: // insert a random edge
				a := constraints.SAPRef(rng.Intn(n))
				b := constraints.SAPRef(rng.Intn(n))
				got := inc.addEdge(a, b)
				want := ref.addEdge(a, b)
				if got != want {
					t.Fatalf("seed %d op %d: addEdge(%d,%d) incremental=%v naive=%v",
						seed, op, a, b, got, want)
				}
			case k < 7: // push an undo mark
				marks = append(marks, markPair{inc: inc.mark(), ref: ref.mark()})
			case k < 8: // pop to a random earlier mark
				if len(marks) > 0 {
					i := rng.Intn(len(marks))
					inc.undoTo(marks[i].inc)
					ref.undoTo(marks[i].ref)
					marks = marks[:i]
				}
			default: // reachability query
				a := constraints.SAPRef(rng.Intn(n))
				b := constraints.SAPRef(rng.Intn(n))
				if got, want := inc.reaches(a, b), ref.reaches(a, b); got != want {
					t.Fatalf("seed %d op %d: reaches(%d,%d) incremental=%v naive=%v",
						seed, op, a, b, got, want)
				}
			}
			if op%97 == 0 {
				checkTopoOrder(t, inc)
			}
		}
		checkTopoOrder(t, inc)
		// Full pairwise reachability agreement on the final graph.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				ra, rb := constraints.SAPRef(a), constraints.SAPRef(b)
				if got, want := inc.reaches(ra, rb), ref.reaches(ra, rb); got != want {
					t.Fatalf("seed %d final: reaches(%d,%d) incremental=%v naive=%v", seed, a, b, got, want)
				}
			}
		}
	}
}

// TestOrdGraphDense exercises the inversion-heavy worst case: edges
// inserted in an order maximally inconsistent with the initial ranks.
func TestOrdGraphDense(t *testing.T) {
	const n = 64
	g := newOrdGraph(n)
	ref := newNaiveGraph(n)
	// Chain n-1 -> n-2 -> ... -> 0: every insertion inverts the initial
	// identity ranking.
	for i := n - 1; i > 0; i-- {
		a, b := constraints.SAPRef(i), constraints.SAPRef(i-1)
		if !g.addEdge(a, b) || !ref.addEdge(a, b) {
			t.Fatalf("chain edge %d->%d rejected", a, b)
		}
	}
	checkTopoOrder(t, g)
	// Closing the loop must be rejected and leave the graph usable.
	if g.addEdge(0, n-1) {
		t.Fatal("cycle-closing edge accepted")
	}
	checkTopoOrder(t, g)
	if !g.reaches(n-1, 0) || g.reaches(0, n-1) {
		t.Fatal("reachability wrong after rejected edge")
	}
}
