// Package leap implements the LEAP baseline (Huang, Liu, Zhang — FSE 2010)
// that Table 2 of the CLAP paper compares against: deterministic
// record/replay via per-shared-variable access vectors.
//
// LEAP's insight is that recording, for every shared variable, the global
// order of thread accesses to it (the "access vector") suffices to replay
// the execution deterministically — no values needed. Its cost is exactly
// what CLAP eliminates: every shared access acquires a per-variable lock to
// append to the vector, which both slows the program and inserts memory
// barriers that can mask relaxed-memory bugs (the paper's Heisenberg
// argument).
//
// The recording half lives in the VM (vm.LeapRecorder, so that Table 2 can
// time it in-place); this package provides the replay half: a scheduler
// that enforces the recorded access vectors, plus the driver that proves
// the baseline actually round-trips failures.
package leap

import (
	"fmt"

	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Recording is a LEAP-recorded execution.
type Recording struct {
	Prog    *ir.Program
	Shared  []bool
	Log     *trace.AccessVectorLog
	Failure *vm.Failure
	Run     *vm.Result
	Inputs  []int64
	Model   vm.MemModel
}

// Record runs the program once under the given seed with LEAP recording.
// Unlike CLAP, LEAP must synchronize every shared access at runtime.
func Record(prog *ir.Program, seed int64, model vm.MemModel, inputs []int64) (*Recording, error) {
	sharing := escape.Analyze(prog)
	rec := vm.NewLeapRecorder(prog)
	machine, err := vm.New(prog, vm.Config{
		Model:        model,
		Inputs:       inputs,
		Sched:        vm.NewRandomScheduler(seed),
		Shared:       sharing.Shared,
		LeapRecorder: rec,
	})
	if err != nil {
		return nil, err
	}
	res, err := machine.Run()
	if err != nil {
		return nil, err
	}
	return &Recording{
		Prog:    prog,
		Shared:  sharing.Shared,
		Log:     rec.Log,
		Failure: res.Failure,
		Run:     res,
		Inputs:  inputs,
		Model:   model,
	}, nil
}

// Outcome reports a LEAP replay.
type Outcome struct {
	// Reproduced is true when the replay ended with the same failure kind
	// and site as the recording (or a clean finish matching a clean
	// recording).
	Reproduced bool
	Failure    *vm.Failure
	// AccessesReplayed counts enforced accesses.
	AccessesReplayed int
}

// Replay re-executes the program, forcing every shared variable's accesses
// to happen in the recorded order.
//
// LEAP replays SC executions; like the original system it cannot replay
// TSO/PSO-only failures (its own instrumentation locks would have
// prevented them — the paper's §1 criticism), so Replay always runs under
// SC semantics.
func Replay(rec *Recording) (*Outcome, error) {
	r := &replayer{
		prog: rec.Prog,
		log:  rec.Log,
		next: make([]int, len(rec.Log.Vectors)),
	}
	machine, err := vm.New(rec.Prog, vm.Config{
		Model:      vm.SC,
		Inputs:     rec.Inputs,
		Sched:      r,
		Shared:     rec.Shared,
		OnVisible:  r.onVisible,
		GateAccess: r.gate,
	})
	if err != nil {
		return nil, err
	}
	res, err := machine.Run()
	if r.err != nil {
		return nil, r.err
	}
	if err != nil {
		return nil, err
	}
	out := &Outcome{Failure: res.Failure, AccessesReplayed: r.replayed}
	switch {
	case rec.Failure == nil && res.Failure == nil:
		out.Reproduced = true
	case rec.Failure != nil && res.Failure != nil &&
		rec.Failure.Kind == res.Failure.Kind && rec.Failure.Site == res.Failure.Site:
		out.Reproduced = true
	}
	return out, nil
}

// replayer enforces the recorded access vectors the way LEAP itself does:
// each shared access *waits* (the VM's access gate) until the accessing
// thread reaches the head of the variable's remaining vector. Scheduling
// is a plain rotation — determinism comes entirely from the gates.
type replayer struct {
	prog     *ir.Program
	log      *trace.AccessVectorLog
	next     []int // per-variable position in the access vector
	rr       vm.ThreadID
	replayed int
	err      error
}

// gate implements LEAP's per-variable wait: the access may proceed only
// when its thread is the vector head.
func (r *replayer) gate(t vm.ThreadID, g ir.GlobalID, isWrite bool) bool {
	vi := int(g)
	if vi >= len(r.log.Vectors) || r.next[vi] >= len(r.log.Vectors[vi]) {
		if r.err == nil {
			r.err = fmt.Errorf("leap: unrecorded access to variable %d by thread %d", vi, t)
		}
		return true // let it through so the run terminates; err reported
	}
	return r.log.Vectors[vi][r.next[vi]] == t
}

// Pick implements vm.Scheduler: rotate through enabled actions; gated
// accesses simply waste the turn, so rotation always reaches the thread
// whose access is due.
func (r *replayer) Pick(v *vm.VM, actions []vm.Action) int {
	best := 0
	for i, a := range actions {
		if a.Kind == vm.ActRun && a.Thread >= r.rr {
			best = i
			break
		}
	}
	r.rr = actions[best].Thread + 1
	if int(r.rr) >= len(v.Threads()) {
		r.rr = 0
	}
	return best
}

// onVisible advances the vectors as accesses execute — data accesses by
// their variable, synchronization accesses by their object's
// pseudo-variable.
func (r *replayer) onVisible(ev vm.VisibleEvent) {
	if r.err != nil {
		return
	}
	var vi int
	switch ev.Kind {
	case vm.EvRead, vm.EvWrite:
		vi = int(ev.Var)
	case vm.EvLock, vm.EvUnlock:
		vi = int(vm.MutexPseudoVar(r.prog, int(ev.Obj)))
	case vm.EvWaitBegin, vm.EvWaitEnd:
		vi = int(vm.MutexPseudoVar(r.prog, int(ev.Obj2)))
	case vm.EvSignal, vm.EvBroadcast:
		vi = int(vm.CondPseudoVar(r.prog, int(ev.Obj)))
	default:
		return
	}
	r.advance(vi, ev)
}

func (r *replayer) advance(vi int, ev vm.VisibleEvent) {
	if vi >= len(r.log.Vectors) || r.next[vi] >= len(r.log.Vectors[vi]) {
		r.err = fmt.Errorf("leap: unrecorded access %s", ev)
		return
	}
	if want := r.log.Vectors[vi][r.next[vi]]; want != ev.Thread {
		r.err = fmt.Errorf("leap: access order violated on variable %d: thread %d ran before thread %d", vi, ev.Thread, want)
		return
	}
	r.next[vi]++
	r.replayed++
}
