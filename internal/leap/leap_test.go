package leap

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

const racyCounter = `
int c;
int d;
func worker(n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		int t = c;
		c = t + 1;
		int u = d;
		d = u + 2;
	}
}
func main() {
	int h1 = spawn worker(4);
	int h2 = spawn worker(4);
	join(h1);
	join(h2);
	int fc = c;
	int fd = d;
	assert(fc == 8 && fd == 16, "updates lost");
}
`

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestLeapRoundTripFailures: LEAP must replay recorded failing executions
// to the same assertion failure — the baseline's core guarantee.
func TestLeapRoundTripFailures(t *testing.T) {
	prog := compile(t, racyCounter)
	reproduced, failures := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		rec, err := Record(prog, seed, vm.SC, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Failure == nil || rec.Failure.Kind != vm.FailAssert {
			continue
		}
		failures++
		out, err := Replay(rec)
		if err != nil {
			t.Fatalf("seed %d: replay error: %v", seed, err)
		}
		if !out.Reproduced {
			t.Fatalf("seed %d: LEAP replay diverged: %v", seed, out.Failure)
		}
		if out.AccessesReplayed != rec.Log.AccessCount() {
			t.Fatalf("seed %d: replayed %d of %d accesses", seed, out.AccessesReplayed, rec.Log.AccessCount())
		}
		reproduced++
	}
	if failures == 0 {
		t.Fatal("no failing seeds; cannot exercise replay")
	}
	if reproduced != failures {
		t.Fatalf("reproduced %d of %d failures", reproduced, failures)
	}
}

// TestLeapRoundTripCleanRuns: clean executions replay to clean executions
// with identical final state.
func TestLeapRoundTripCleanRuns(t *testing.T) {
	src := `
int c;
mutex m;
func worker(n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		lock(m);
		int t = c;
		c = t + 1;
		unlock(m);
	}
}
func main() {
	int h1 = spawn worker(3);
	int h2 = spawn worker(3);
	join(h1);
	join(h2);
}
`
	prog := compile(t, src)
	for seed := int64(0); seed < 10; seed++ {
		rec, err := Record(prog, seed, vm.SC, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Failure != nil {
			t.Fatalf("seed %d: locked counter must not fail: %v", seed, rec.Failure)
		}
		out, err := Replay(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Reproduced {
			t.Fatalf("seed %d: clean run did not replay cleanly: %v", seed, out.Failure)
		}
	}
}

// TestLeapReplayDeterministic: replaying the same recording twice gives the
// same outcome.
func TestLeapReplayDeterministic(t *testing.T) {
	prog := compile(t, racyCounter)
	var rec *Recording
	for seed := int64(0); seed < 60; seed++ {
		r, err := Record(prog, seed, vm.SC, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Failure != nil && r.Failure.Kind == vm.FailAssert {
			rec = r
			break
		}
	}
	if rec == nil {
		t.Skip("no failing seed")
	}
	first, err := Replay(rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Replay(rec)
		if err != nil {
			t.Fatal(err)
		}
		if again.Reproduced != first.Reproduced || again.AccessesReplayed != first.AccessesReplayed {
			t.Fatal("LEAP replay not deterministic")
		}
	}
}

// TestLeapLogSizesGrowWithAccesses: the access vector grows linearly with
// the access count — the space cost Table 2 charges LEAP for.
func TestLeapLogSizesGrowWithAccesses(t *testing.T) {
	prog := compile(t, racyCounter)
	rec, err := Record(prog, 1, vm.SC, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Log.AccessCount() < 16 {
		t.Fatalf("access count = %d, expected >= 16", rec.Log.AccessCount())
	}
	if rec.Log.Size() < rec.Log.AccessCount() {
		t.Fatalf("log of %d accesses encodes to %d bytes; must be at least one byte each",
			rec.Log.AccessCount(), rec.Log.Size())
	}
}
