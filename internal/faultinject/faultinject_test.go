package faultinject

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestFireUnarmed(t *testing.T) {
	defer Reset()
	if err := Fire("nowhere"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestFireDefaultError(t *testing.T) {
	defer Reset()
	Fail("stage")
	err := Fire("stage")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	Disable("stage")
	if err := Fire("stage"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
}

func TestFireCustomError(t *testing.T) {
	defer Reset()
	custom := errors.New("disk on fire")
	Enable("stage", Failure{Err: custom})
	if err := Fire("stage"); !errors.Is(err, custom) {
		t.Fatalf("want custom error, got %v", err)
	}
}

func TestFireAfterAndTimes(t *testing.T) {
	defer Reset()
	Enable("stage", Failure{After: 2, Times: 1})
	if err := Fire("stage"); err != nil {
		t.Fatalf("call 1 fired early: %v", err)
	}
	if err := Fire("stage"); err != nil {
		t.Fatalf("call 2 fired early: %v", err)
	}
	if err := Fire("stage"); err == nil {
		t.Fatal("call 3 did not fire")
	}
	if err := Fire("stage"); err != nil {
		t.Fatalf("Times=1 exceeded: %v", err)
	}
}

func TestFirePanic(t *testing.T) {
	defer Reset()
	Enable("stage", Failure{Panic: "boom"})
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("want panic boom, got %v", p)
		}
	}()
	Fire("stage")
	t.Fatal("unreachable")
}

func TestTruncateFlipDropArePure(t *testing.T) {
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	ref := append([]byte(nil), orig...)

	if got := Truncate(orig, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Truncate: %v", got)
	}
	if got := Truncate(orig, -5); len(got) != 0 {
		t.Fatalf("Truncate negative: %v", got)
	}
	if got := Truncate(orig, 100); !bytes.Equal(got, orig) {
		t.Fatalf("Truncate past end: %v", got)
	}

	if got := FlipBit(orig, 0); got[0] != 0 || !bytes.Equal(got[1:], orig[1:]) {
		t.Fatalf("FlipBit 0: %v", got)
	}
	if got := FlipBit(orig, 8*len(orig)+1); !bytes.Equal(FlipBit(orig, 1), got) {
		t.Fatal("FlipBit must wrap modulo the bit length")
	}
	if got := FlipBit(nil, 3); len(got) != 0 {
		t.Fatalf("FlipBit on empty: %v", got)
	}

	if got := DropRange(orig, 2, 3); !bytes.Equal(got, []byte{1, 2, 6, 7, 8}) {
		t.Fatalf("DropRange: %v", got)
	}
	if got := DropRange(orig, 6, 100); !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("DropRange past end: %v", got)
	}

	if !bytes.Equal(orig, ref) {
		t.Fatal("a mutation modified its input")
	}
}

func TestCorrupterDeterministic(t *testing.T) {
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	a, b := NewCorrupter(42), NewCorrupter(42)
	for i := 0; i < 50; i++ {
		ma, mutA := a.Mutate(buf)
		mb, mutB := b.Mutate(buf)
		if !reflect.DeepEqual(mutA, mutB) || !bytes.Equal(ma, mb) {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, mutA, mutB)
		}
		// The recorded mutation replays to the same output.
		if !bytes.Equal(mutA.Apply(buf), ma) {
			t.Fatalf("step %d: %v does not replay", i, mutA)
		}
		if mutA.String() == "" {
			t.Fatal("mutation renders empty")
		}
	}
}

func TestCorrupterEmptyInput(t *testing.T) {
	c := NewCorrupter(1)
	out, m := c.Mutate(nil)
	if len(out) != 0 {
		t.Fatalf("mutating empty input produced %v", out)
	}
	if !bytes.Equal(m.Apply(nil), out) {
		t.Fatal("empty-input mutation does not replay")
	}
}

// TestCrashPoint proves an armed crash point invokes the crash function
// exactly when due, and that Reset disarms it.
func TestCrashPoint(t *testing.T) {
	defer Reset()
	var crashed []string
	restore := SetCrashFn(func(p string) { crashed = append(crashed, p) })
	defer restore()

	Enable("crash.here", Failure{Crash: true, After: 1})
	if err := Fire("crash.here"); err != nil {
		t.Fatalf("call before After fired: %v", err)
	}
	if len(crashed) != 0 {
		t.Fatalf("crashed early: %v", crashed)
	}
	Fire("crash.here")
	if len(crashed) != 1 || crashed[0] != "crash.here" {
		t.Fatalf("crash not recorded: %v", crashed)
	}
	Reset()
	Fire("crash.here")
	if len(crashed) != 1 {
		t.Fatal("Reset did not disarm the crash point")
	}
}

// TestArmEnv covers the subprocess arming syntax end to end: fail, panic
// and crash modes with schedules, plus rejection of malformed specs.
func TestArmEnv(t *testing.T) {
	defer Reset()
	var crashed int
	restore := SetCrashFn(func(string) { crashed++ })
	defer restore()

	if err := ArmEnv(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	err := ArmEnv("a.fail=fail, b.panic=panic@0:1 ,c.crash=crash@1")
	if err != nil {
		t.Fatal(err)
	}
	if err := Fire("a.fail"); !errors.Is(err, ErrInjected) {
		t.Fatalf("fail mode returned %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic mode did not panic")
			}
		}()
		Fire("b.panic")
	}()
	if err := Fire("b.panic"); err != nil {
		t.Fatalf("panic mode with times=1 fired twice: %v", err)
	}
	Fire("c.crash")
	if crashed != 0 {
		t.Fatal("crash fired before its After count")
	}
	Fire("c.crash")
	if crashed != 1 {
		t.Fatalf("crash fired %d times, want 1", crashed)
	}

	for _, bad := range []string{"nopoint", "p=", "p=wat", "p=crash@x", "p=fail@1:y", "=crash"} {
		if err := ArmEnv(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
