// Package faultinject is the repository's fault-injection harness: a
// deterministic, seed-driven corrupter for on-disk logs and a registry of
// injectable failure hooks for pipeline stages.
//
// C11Tester-style robustness validation needs adversarial conditions to be
// systematic, not ad hoc: every corruption is a pure function of a seed (or
// explicit parameters), so a failing robustness test names the exact
// mutation that broke the pipeline and replays it forever. The failure
// hooks let tests force a solver stage (or any other registered point) to
// fail or panic without reaching into its internals, proving that the
// portfolio's degradation paths actually run.
//
// Production code pays one mutex-guarded map lookup per registered fire
// point; with nothing armed, Fire returns nil immediately.
//
// Beyond returned errors and panics, a point may be armed to *crash*: the
// process terminates immediately via os.Exit (no deferred functions, no
// cleanup), which is a deterministic kill -9 at a named program point.
// Crash points are how the clapd chaos tests prove durability: arm a
// crash anywhere in the journal/store/worker paths, restart, and verify
// no accepted job was lost or double-completed. ArmEnv lets a subprocess
// arm points from an environment variable, so the crash happens in a
// child process while the test survives to inspect the wreckage.
package faultinject

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
)

// ---------------------------------------------------------------------------
// Failure hooks.

// Failure describes what an armed fire point does.
type Failure struct {
	// Err is returned by Fire (a structured stage failure).
	Err error
	// Panic, when non-empty, makes Fire panic with this value instead —
	// used to prove stages recover panics into structured errors.
	Panic string
	// Crash makes Fire terminate the process immediately (os.Exit(137),
	// the kill -9 exit status): no deferred functions run, simulating a
	// hard kill at exactly this point. Tests that must survive the crash
	// arm it in a subprocess via ArmEnv.
	Crash bool
	// After skips the first After calls before firing (0 = fire at once).
	After int
	// Times bounds how often the point fires (0 = every call once armed).
	Times int
}

// ErrInjected is the default error of an armed point with no explicit Err.
var ErrInjected = fmt.Errorf("faultinject: injected failure")

type armed struct {
	f     Failure
	calls int
	fired int
}

var (
	mu     sync.Mutex
	points = map[string]*armed{}
)

// Enable arms a fire point.
func Enable(point string, f Failure) {
	mu.Lock()
	defer mu.Unlock()
	points[point] = &armed{f: f}
}

// Fail arms a point with the default injected error.
func Fail(point string) { Enable(point, Failure{}) }

// Disable disarms one point.
func Disable(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, point)
}

// Reset disarms every point. Tests should defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*armed{}
}

// Fire consults the registry at a named point: it returns the armed error
// (or panics, if the armed failure says so) when the point is due, and nil
// otherwise. Call counting is per arming, so After/Times schedules are
// deterministic.
func Fire(point string) error {
	mu.Lock()
	a, ok := points[point]
	if !ok {
		mu.Unlock()
		return nil
	}
	a.calls++
	due := a.calls > a.f.After && (a.f.Times == 0 || a.fired < a.f.Times)
	if due {
		a.fired++
	}
	f := a.f
	crash := crashFn
	mu.Unlock()
	if !due {
		return nil
	}
	if f.Crash {
		crash(point)
	}
	if f.Panic != "" {
		panic(f.Panic)
	}
	if f.Err != nil {
		return f.Err
	}
	return fmt.Errorf("%w at %s", ErrInjected, point)
}

// CrashExitCode is the status a crash point exits with — the shell's
// status for a SIGKILLed process, so scripts treat an injected crash and
// a real kill -9 identically.
const CrashExitCode = 137

// crashFn terminates the process at a crash point. Overridable so
// in-process tests can observe a would-be crash instead of dying.
var crashFn = func(point string) {
	fmt.Fprintf(os.Stderr, "faultinject: crash at %s\n", point)
	os.Exit(CrashExitCode)
}

// SetCrashFn replaces the crash behavior and returns a restore function.
// Test-only: lets a single-process test assert a crash point fired
// without losing the process.
func SetCrashFn(fn func(point string)) (restore func()) {
	mu.Lock()
	old := crashFn
	crashFn = fn
	mu.Unlock()
	return func() {
		mu.Lock()
		crashFn = old
		mu.Unlock()
	}
}

// ArmEnv arms fire points from a specification string, typically an
// environment variable set by a test driving a subprocess:
//
//	point=mode[@after[:times]][,point=mode...]
//
// mode is "fail" (return ErrInjected), "panic" (panic with the point
// name), or "crash" (os.Exit(137) — a deterministic kill -9). after
// skips that many calls before firing; times bounds how often it fires
// (crash points need no bound). An empty spec arms nothing.
//
//	CLAP_FAULTS="clapd.worker.result=crash@0" clap serve ...
func ArmEnv(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, rhs, ok := strings.Cut(part, "=")
		if !ok || point == "" {
			return fmt.Errorf("faultinject: bad fault spec %q (want point=mode[@after[:times]])", part)
		}
		mode := rhs
		var after, times int
		if m, sched, ok := strings.Cut(rhs, "@"); ok {
			mode = m
			a, t, hasTimes := strings.Cut(sched, ":")
			n, err := strconv.Atoi(a)
			if err != nil || n < 0 {
				return fmt.Errorf("faultinject: bad after count in %q", part)
			}
			after = n
			if hasTimes {
				n, err := strconv.Atoi(t)
				if err != nil || n < 0 {
					return fmt.Errorf("faultinject: bad times count in %q", part)
				}
				times = n
			}
		}
		f := Failure{After: after, Times: times}
		switch mode {
		case "fail":
			// Err nil: Fire returns ErrInjected wrapped with the point name.
		case "panic":
			f.Panic = "faultinject: injected panic at " + point
		case "crash":
			f.Crash = true
		default:
			return fmt.Errorf("faultinject: unknown fault mode %q in %q", mode, part)
		}
		Enable(point, f)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Deterministic corrupter.

// Corrupter produces seed-driven mutations of encoded logs. All methods are
// pure in the seed sequence: the same seed yields the same mutations, so
// robustness failures are replayable by construction. Inputs are never
// modified; every mutation returns a fresh slice.
type Corrupter struct {
	rng *rand.Rand
}

// NewCorrupter builds a corrupter for the given seed.
func NewCorrupter(seed int64) *Corrupter {
	return &Corrupter{rng: rand.New(rand.NewSource(seed))}
}

// Truncate keeps the first n bytes (a crash-interrupted write).
func Truncate(buf []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(buf) {
		n = len(buf)
	}
	return append([]byte{}, buf[:n]...)
}

// FlipBit flips bit k of the buffer (a silent storage corruption).
func FlipBit(buf []byte, k int) []byte {
	out := append([]byte{}, buf...)
	if len(out) == 0 {
		return out
	}
	k %= len(out) * 8
	if k < 0 {
		k += len(out) * 8
	}
	out[k/8] ^= 1 << (k % 8)
	return out
}

// DropRange removes buf[off:off+n] (a lost frame or segment).
func DropRange(buf []byte, off, n int) []byte {
	if off < 0 {
		off = 0
	}
	if off > len(buf) {
		off = len(buf)
	}
	if n < 0 {
		n = 0
	}
	if off+n > len(buf) {
		n = len(buf) - off
	}
	out := append([]byte{}, buf[:off]...)
	return append(out, buf[off+n:]...)
}

// Mutation is one applied corruption, for failure reports.
type Mutation struct {
	// Op is "truncate", "flipbit" or "droprange".
	Op string
	// Off and N parameterize the op: truncate keeps Off bytes; flipbit
	// flips bit Off; droprange removes N bytes at Off.
	Off, N int
}

// String renders the mutation for test-failure messages.
func (m Mutation) String() string {
	switch m.Op {
	case "truncate":
		return fmt.Sprintf("truncate to %dB", m.Off)
	case "flipbit":
		return fmt.Sprintf("flip bit %d", m.Off)
	default:
		return fmt.Sprintf("drop %dB at %d", m.N, m.Off)
	}
}

// Apply replays a mutation.
func (m Mutation) Apply(buf []byte) []byte {
	switch m.Op {
	case "truncate":
		return Truncate(buf, m.Off)
	case "flipbit":
		return FlipBit(buf, m.Off)
	default:
		return DropRange(buf, m.Off, m.N)
	}
}

// Mutate draws one random mutation for the buffer and applies it, returning
// the mutated copy and the mutation for replay/reporting.
func (c *Corrupter) Mutate(buf []byte) ([]byte, Mutation) {
	var m Mutation
	if len(buf) == 0 {
		m = Mutation{Op: "truncate", Off: 0}
		return m.Apply(buf), m
	}
	switch c.rng.Intn(3) {
	case 0:
		m = Mutation{Op: "truncate", Off: c.rng.Intn(len(buf))}
	case 1:
		m = Mutation{Op: "flipbit", Off: c.rng.Intn(len(buf) * 8)}
	default:
		off := c.rng.Intn(len(buf))
		n := 1 + c.rng.Intn(16)
		m = Mutation{Op: "droprange", Off: off, N: n}
	}
	return m.Apply(buf), m
}
