// Package faultinject is the repository's fault-injection harness: a
// deterministic, seed-driven corrupter for on-disk logs and a registry of
// injectable failure hooks for pipeline stages.
//
// C11Tester-style robustness validation needs adversarial conditions to be
// systematic, not ad hoc: every corruption is a pure function of a seed (or
// explicit parameters), so a failing robustness test names the exact
// mutation that broke the pipeline and replays it forever. The failure
// hooks let tests force a solver stage (or any other registered point) to
// fail or panic without reaching into its internals, proving that the
// portfolio's degradation paths actually run.
//
// Production code pays one mutex-guarded map lookup per registered fire
// point; with nothing armed, Fire returns nil immediately.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
)

// ---------------------------------------------------------------------------
// Failure hooks.

// Failure describes what an armed fire point does.
type Failure struct {
	// Err is returned by Fire (a structured stage failure).
	Err error
	// Panic, when non-empty, makes Fire panic with this value instead —
	// used to prove stages recover panics into structured errors.
	Panic string
	// After skips the first After calls before firing (0 = fire at once).
	After int
	// Times bounds how often the point fires (0 = every call once armed).
	Times int
}

// ErrInjected is the default error of an armed point with no explicit Err.
var ErrInjected = fmt.Errorf("faultinject: injected failure")

type armed struct {
	f     Failure
	calls int
	fired int
}

var (
	mu     sync.Mutex
	points = map[string]*armed{}
)

// Enable arms a fire point.
func Enable(point string, f Failure) {
	mu.Lock()
	defer mu.Unlock()
	points[point] = &armed{f: f}
}

// Fail arms a point with the default injected error.
func Fail(point string) { Enable(point, Failure{}) }

// Disable disarms one point.
func Disable(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, point)
}

// Reset disarms every point. Tests should defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*armed{}
}

// Fire consults the registry at a named point: it returns the armed error
// (or panics, if the armed failure says so) when the point is due, and nil
// otherwise. Call counting is per arming, so After/Times schedules are
// deterministic.
func Fire(point string) error {
	mu.Lock()
	a, ok := points[point]
	if !ok {
		mu.Unlock()
		return nil
	}
	a.calls++
	due := a.calls > a.f.After && (a.f.Times == 0 || a.fired < a.f.Times)
	if due {
		a.fired++
	}
	f := a.f
	mu.Unlock()
	if !due {
		return nil
	}
	if f.Panic != "" {
		panic(f.Panic)
	}
	if f.Err != nil {
		return f.Err
	}
	return fmt.Errorf("%w at %s", ErrInjected, point)
}

// ---------------------------------------------------------------------------
// Deterministic corrupter.

// Corrupter produces seed-driven mutations of encoded logs. All methods are
// pure in the seed sequence: the same seed yields the same mutations, so
// robustness failures are replayable by construction. Inputs are never
// modified; every mutation returns a fresh slice.
type Corrupter struct {
	rng *rand.Rand
}

// NewCorrupter builds a corrupter for the given seed.
func NewCorrupter(seed int64) *Corrupter {
	return &Corrupter{rng: rand.New(rand.NewSource(seed))}
}

// Truncate keeps the first n bytes (a crash-interrupted write).
func Truncate(buf []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(buf) {
		n = len(buf)
	}
	return append([]byte{}, buf[:n]...)
}

// FlipBit flips bit k of the buffer (a silent storage corruption).
func FlipBit(buf []byte, k int) []byte {
	out := append([]byte{}, buf...)
	if len(out) == 0 {
		return out
	}
	k %= len(out) * 8
	if k < 0 {
		k += len(out) * 8
	}
	out[k/8] ^= 1 << (k % 8)
	return out
}

// DropRange removes buf[off:off+n] (a lost frame or segment).
func DropRange(buf []byte, off, n int) []byte {
	if off < 0 {
		off = 0
	}
	if off > len(buf) {
		off = len(buf)
	}
	if n < 0 {
		n = 0
	}
	if off+n > len(buf) {
		n = len(buf) - off
	}
	out := append([]byte{}, buf[:off]...)
	return append(out, buf[off+n:]...)
}

// Mutation is one applied corruption, for failure reports.
type Mutation struct {
	// Op is "truncate", "flipbit" or "droprange".
	Op string
	// Off and N parameterize the op: truncate keeps Off bytes; flipbit
	// flips bit Off; droprange removes N bytes at Off.
	Off, N int
}

// String renders the mutation for test-failure messages.
func (m Mutation) String() string {
	switch m.Op {
	case "truncate":
		return fmt.Sprintf("truncate to %dB", m.Off)
	case "flipbit":
		return fmt.Sprintf("flip bit %d", m.Off)
	default:
		return fmt.Sprintf("drop %dB at %d", m.N, m.Off)
	}
}

// Apply replays a mutation.
func (m Mutation) Apply(buf []byte) []byte {
	switch m.Op {
	case "truncate":
		return Truncate(buf, m.Off)
	case "flipbit":
		return FlipBit(buf, m.Off)
	default:
		return DropRange(buf, m.Off, m.N)
	}
}

// Mutate draws one random mutation for the buffer and applies it, returning
// the mutated copy and the mutation for replay/reporting.
func (c *Corrupter) Mutate(buf []byte) ([]byte, Mutation) {
	var m Mutation
	if len(buf) == 0 {
		m = Mutation{Op: "truncate", Off: 0}
		return m.Apply(buf), m
	}
	switch c.rng.Intn(3) {
	case 0:
		m = Mutation{Op: "truncate", Off: c.rng.Intn(len(buf))}
	case 1:
		m = Mutation{Op: "flipbit", Off: c.rng.Intn(len(buf) * 8)}
	default:
		off := c.rng.Intn(len(buf))
		n := 1 + c.rng.Intn(16)
		m = Mutation{Op: "droprange", Off: off, N: n}
	}
	return m.Apply(buf), m
}
