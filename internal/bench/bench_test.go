package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/vm"
)

func TestAllBenchmarksCompile(t *testing.T) {
	for _, b := range All() {
		if _, err := core.Compile(b.Source); err != nil {
			t.Errorf("%s does not compile: %v", b.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("pbzip2"); !ok {
		t.Error("pbzip2 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name must not resolve")
	}
	if len(All()) != 11 {
		t.Errorf("benchmarks = %d, want 11 (the paper's Table 1)", len(All()))
	}
}

// TestEachBenchmarkTriggers checks the record phase finds the bug for
// every benchmark within its seed budget.
func TestEachBenchmarkTriggers(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := core.Compile(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := core.Record(prog, core.RecordOptions{
				Model:     b.Model,
				Inputs:    b.Inputs,
				SeedLimit: b.SeedLimit,
			})
			if err != nil {
				t.Fatalf("bug never triggered: %v", err)
			}
			if rec.Failure.Kind != vm.FailAssert {
				t.Fatalf("failure kind = %v", rec.Failure.Kind)
			}
			t.Logf("%s: seed %d, threads %d, insts %d, SAPs %d, log %dB",
				b.Name, rec.Seed, rec.Run.Threads, rec.Run.Instructions,
				rec.Run.VisibleEvents, rec.LogSize())
		})
	}
}

// TestEachBenchmarkReproduces is the paper's headline Table 1 claim: CLAP
// reproduces every evaluated bug, with a verified replay.
func TestEachBenchmarkReproduces(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p := preparedFor(t, b)
			rep, err := core.Reproduce(p.Recording, core.ReproduceOptions{
				Solver:     core.Sequential,
				SeqOptions: solver.Options{MaxPreemptions: b.MaxPreemptions},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Outcome.Reproduced {
				t.Fatal("bug not reproduced")
			}
			t.Logf("%s: SAPs %d, constraints %d, vars %d, cs %d, solve %.3fs",
				b.Name, rep.Stats.SAPs, rep.Stats.Clauses, rep.Stats.Variables,
				rep.Solution.Preemptions, rep.SolveTime().Seconds())
		})
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	rows := Table2([]string{"sim_race", "pfscan"}, 3)
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Program, r.Err)
		}
		if r.ClapBytes <= 0 || r.LeapBytes <= 0 {
			t.Errorf("%s: log sizes not measured", r.Program)
		}
	}
}

func TestFormatters(t *testing.T) {
	var sb strings.Builder
	FormatTable1(&sb, []Table1Row{{Program: "x", Success: true}, {Program: "y", Err: "boom"}})
	FormatTable2(&sb, []Table2Row{{Program: "x"}, {Program: "y", Err: "boom"}})
	FormatTable3(&sb, []Table3Row{{Program: "x", Found: true}, {Program: "y", Err: "boom"}})
	out := sb.String()
	for _, want := range []string{"#Constraints", "LEAP", "#gen", "boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("format output missing %q", want)
		}
	}
}

func TestWorstCaseLog10(t *testing.T) {
	b, _ := ByName("sim_race")
	p := preparedFor(t, b)
	lg := worstCaseLog10(p.System)
	if lg <= 1 {
		t.Errorf("worst-case schedules log10 = %f, expected > 1", lg)
	}
}

func TestLocOf(t *testing.T) {
	if locOf("a\n\nb\n") != 2 {
		t.Error("locOf miscounts")
	}
}
