// Lazy-vs-eager equivalence and the clause-count gate over the paper's
// benchmark corpus. TestLazyEagerEquivalenceOnBenchmarks is the corpus
// half of the schedule-equivalence property (the randomized half lives in
// internal/cnfsolver): both encodings must agree on solvability for all
// eleven programs — symbolic addresses included, now that address-split
// refinement closed the lazy encoding's completeness gap — and on the
// exact mapping sets for the small ones, concrete and symbolic alike.
// TestBenchGateLazyCNF is the CI smoke gate: on the slowest benchmarks
// (including racey, formerly forced eager by its symbolic addresses) the
// lazy encoding must stay far below the eager cubic clause ceiling, so an
// accidental return to eager-by-default fails fast.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
)

// enumerateMappings collects distinct read→write mappings by repeated
// Solve + BlockMapping, validating each witness schedule. full is false
// when cap was reached before Unsat (the set is a prefix, not comparable).
func enumerateMappings(t *testing.T, sys *constraints.System, opts cnfsolver.Options, cap int) (keys []string, full bool) {
	t.Helper()
	sess, err := cnfsolver.NewSession(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	for len(keys) < cap {
		sol, _, err := sess.Solve()
		if err != nil {
			if _, isUnsat := err.(*cnfsolver.Unsat); isUnsat {
				sort.Strings(keys)
				return keys, true
			}
			t.Fatalf("solve: %v", err)
		}
		if _, err := sys.ValidateSchedule(sol.Order); err != nil {
			t.Fatalf("schedule does not validate: %v", err)
		}
		parts := make([]string, 0, len(sess.Mapping()))
		for _, w := range sess.Mapping() {
			parts = append(parts, fmt.Sprint(w))
		}
		keys = append(keys, strings.Join(parts, ","))
		sess.BlockMapping()
	}
	return keys, false
}

// smallEnumerable lists benchmarks cheap enough to enumerate their full
// mapping sets in both encodings (sub-second eager solves). bbuf and
// pfscan carry symbolic addresses, so their enumeration exercises
// address-split refinement against the eager closure on real programs —
// the corpus half of the equivalence property that retired the eager
// fallback. The rest get the solve-level check only.
var smallEnumerable = map[string]bool{
	"sim_race": true,
	"dekker":   true,
	"peterson": true,
	"bbuf":     true,
	"pfscan":   true,
}

func TestLazyEagerEquivalenceOnBenchmarks(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p := preparedFor(t, b)
			// The solve-level check runs with pipeline-default budgets:
			// since address-split refinement, every benchmark — symbolic
			// addresses included — converges within them in both modes.
			opts := func(eager bool) cnfsolver.Options {
				return cnfsolver.Options{
					EagerTransitivity: eager,
					Deadline:          StageDeadline,
				}
			}

			sysL, err := FreshSystem(p, false)
			if err != nil {
				t.Fatal(err)
			}
			solL, stL, errL := cnfsolver.Solve(sysL, opts(false))
			sysE, err := FreshSystem(p, false)
			if err != nil {
				t.Fatal(err)
			}
			solE, _, errE := cnfsolver.Solve(sysE, opts(true))

			if (errL == nil) != (errE == nil) {
				t.Fatalf("solvability differs: lazy err=%v, eager err=%v", errL, errE)
			}
			if errL != nil {
				t.Logf("both encodings reject/abstain: lazy %v, eager %v", errL, errE)
				return
			}
			// Solve already validated; re-check against fresh systems to be
			// explicit that each order stands on its own.
			if _, err := sysL.ValidateSchedule(solL.Order); err != nil {
				t.Fatalf("lazy schedule does not re-validate: %v", err)
			}
			if _, err := sysE.ValidateSchedule(solE.Order); err != nil {
				t.Fatalf("eager schedule does not re-validate: %v", err)
			}
			t.Logf("lazy: %d clauses, %d lazy rounds, %d lemmas", stL.Clauses, stL.LazyRounds, stL.LazyLemmas)

			if !smallEnumerable[b.Name] {
				return
			}
			// Enumeration blocks one mapping class per feasible model plus
			// one theory round per value-rejected class, so it needs a
			// bigger round budget than a single solve.
			enumOpts := func(eager bool) cnfsolver.Options {
				o := opts(eager)
				o.MaxTheoryRounds = 20000
				return o
			}
			lazy, lazyFull := enumerateMappings(t, sysL, enumOpts(false), 1024)
			eager, eagerFull := enumerateMappings(t, sysE, enumOpts(true), 1024)
			if !lazyFull || !eagerFull {
				t.Fatalf("mapping enumeration capped (lazy full=%v eager full=%v); raise the cap or drop %s from smallEnumerable",
					lazyFull, eagerFull, b.Name)
			}
			if strings.Join(lazy, ";") != strings.Join(eager, ";") {
				t.Fatalf("mapping sets differ:\nlazy:  %v\neager: %v", lazy, eager)
			}
			t.Logf("mapping sets equal: %d classes", len(lazy))
		})
	}
}

// TestBenchGateLazyCNF is the bench-gate smoke check wired into CI: on
// the historically slowest benchmarks the CNF stage must stay lazy,
// i.e. its clause count must sit far below the eager encoding's cubic
// transitivity floor of n(n-1)(n-2) ordered-triple implications. racey
// is the symbolic-address representative: its array writes index by
// loop-carried values, so before address-split refinement it was forced
// onto the eager encoding — the gate now holds it to the lazy budget
// too, address-split lemmas included.
func TestBenchGateLazyCNF(t *testing.T) {
	for _, name := range []string{"swarm", "bakery", "dekker", "racey"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, ok := ByName(name)
			if !ok {
				t.Fatalf("benchmark %s missing", name)
			}
			p := preparedFor(t, b)
			sys, err := FreshSystem(p, false)
			if err != nil {
				t.Fatal(err)
			}
			_, st, err := cnfsolver.Solve(sys, cnfsolver.Options{Deadline: StageDeadline})
			if err != nil {
				t.Fatalf("cnf stage failed: %v", err)
			}
			n := int64(len(sys.SAPs))
			ceiling := n * (n - 1) * (n - 2)
			if ceiling <= 0 {
				t.Fatalf("degenerate system: %d SAPs", n)
			}
			if st.Clauses >= ceiling/10 {
				t.Fatalf("cnf clauses = %d, want < eager ceiling %d / 10 — lazy transitivity regressed", st.Clauses, ceiling)
			}
			t.Logf("%s: n=%d, clauses=%d (eager ceiling %d)", name, n, st.Clauses, ceiling)
		})
	}
}
