// Package bench defines the paper's eleven evaluation programs
// re-expressed in the mini language, plus the harnesses that regenerate
// Tables 1, 2 and 3.
//
// Each program reproduces the bug *pattern* of its namesake (§6 of the
// paper): pbzip2's order violation on a destroyed mutex, apache #45605's
// multi-variable atomicity violation on a shared queue, racey's
// intentional races designed to need many context switches, and the
// SC-correct/TSO-PSO-broken mutual exclusion algorithms. Workload sizes
// are scaled to this repository's simulator substrate; Table shapes — who
// wins, which program is the outlier — are what must match the paper.
package bench

import "repro/internal/vm"

// Benchmark describes one evaluation program.
type Benchmark struct {
	Name string
	// Source is the mini-language program.
	Source string
	// Model is the memory model under which the bug manifests.
	Model vm.MemModel
	// SeedLimit bounds the record phase's bug hunt.
	SeedLimit int64
	// Inputs parameterize the workload (input(0) is the main size knob).
	Inputs []int64
	// Table2Inputs is the heavier workload used for the overhead
	// comparison (defaults to Inputs).
	Table2Inputs []int64
	// MaxPreemptions overrides the sequential solver's bound (<0 =
	// minimal sweep). Racey needs a direct high bound, like the paper's
	// outlier discussion.
	MaxPreemptions int
	// ParallelBound is the largest preemption bound the parallel solver
	// sweeps for Table 3.
	ParallelBound int
	// Description ties the program to the paper's benchmark.
	Description string
}

// All returns the eleven benchmarks in Table 1 order.
func All() []Benchmark {
	return []Benchmark{
		{
			Name:           "sim_race",
			Source:         simRaceSrc,
			Model:          vm.SC,
			SeedLimit:      4000,
			Table2Inputs:   []int64{400},
			MaxPreemptions: -1,
			ParallelBound:  4,
			Description:    "simple racey program [16]: 4 racer threads on two shared variables",
		},
		{
			Name:           "pbzip2",
			Source:         pbzip2Src,
			Model:          vm.SC,
			SeedLimit:      4000,
			Inputs:         []int64{3},
			Table2Inputs:   []int64{24},
			MaxPreemptions: -1,
			ParallelBound:  4,
			Description:    "order violation: main invalidates the FIFO mutex while consumers still use it",
		},
		{
			Name:           "aget",
			Source:         agetSrc,
			Model:          vm.SC,
			SeedLimit:      4000,
			Inputs:         []int64{8},
			Table2Inputs:   []int64{400},
			MaxPreemptions: -1,
			ParallelBound:  4,
			Description:    "parallel downloader: racy chunk cursor and progress accounting",
		},
		{
			Name:           "bbuf",
			Source:         bbufSrc,
			Model:          vm.SC,
			SeedLimit:      6000,
			Inputs:         []int64{1},
			Table2Inputs:   []int64{10},
			MaxPreemptions: -1,
			ParallelBound:  4,
			Description:    "bounded buffer with an if-instead-of-while wait: consumes an empty slot",
		},
		{
			Name:           "swarm",
			Source:         swarmSrc,
			Model:          vm.SC,
			SeedLimit:      4000,
			Inputs:         []int64{6},
			Table2Inputs:   []int64{48},
			MaxPreemptions: -1,
			ParallelBound:  4,
			Description:    "parallel sort: workers merge partition sums without synchronization",
		},
		{
			Name:           "pfscan",
			Source:         pfscanSrc,
			Model:          vm.SC,
			SeedLimit:      4000,
			Inputs:         []int64{6},
			Table2Inputs:   []int64{40},
			MaxPreemptions: -1,
			ParallelBound:  4,
			Description:    "parallel file scanner: locked work queue, racy match aggregation",
		},
		{
			Name:           "apache",
			Source:         apacheSrc,
			Model:          vm.SC,
			SeedLimit:      8000,
			Inputs:         []int64{2},
			Table2Inputs:   []int64{60},
			MaxPreemptions: -1,
			ParallelBound:  4,
			Description:    "bug #45605: multi-variable atomicity violation between listener and workers on the request queue",
		},
		{
			Name:           "racey",
			Source:         raceySrc,
			Model:          vm.SC,
			SeedLimit:      4000,
			Inputs:         []int64{5, 4},
			Table2Inputs:   []int64{800, 6},
			MaxPreemptions: 64,
			ParallelBound:  3,
			Description:    "deterministic-replay stress test [38]: the failure needs many lost updates, i.e. many context switches",
		},
		{
			Name:           "bakery",
			Source:         bakerySrc,
			Model:          vm.PSO,
			SeedLimit:      20000,
			MaxPreemptions: -1,
			ParallelBound:  4,
			Description:    "Lamport's bakery: correct under SC, broken by PSO write reordering",
		},
		{
			Name:           "dekker",
			Source:         dekkerSrc,
			Model:          vm.TSO,
			SeedLimit:      8000,
			MaxPreemptions: -1,
			ParallelBound:  4,
			Description:    "Dekker's algorithm: correct under SC, broken by TSO store buffering",
		},
		{
			Name:           "peterson",
			Source:         petersonSrc,
			Model:          vm.TSO,
			SeedLimit:      8000,
			MaxPreemptions: -1,
			ParallelBound:  4,
			Description:    "Peterson's algorithm: correct under SC, broken by TSO store buffering",
		},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

const simRaceSrc = `
// sim_race: the paper's "simple racey program" — four threads race on two
// shared variables with plain read-modify-write updates. input(0) scales
// the per-thread rounds (default 1).
int x;
int y;

func racer(v, n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		int t = x;
		x = t + v;
		int u = y;
		y = u + v;
	}
}

func main() {
	int n = input(0);
	if (n == 0) { n = 1; }
	int h1 = spawn racer(1, n);
	int h2 = spawn racer(2, n);
	int h3 = spawn racer(3, n);
	int h4 = spawn racer(4, n);
	join(h1);
	join(h2);
	join(h3);
	join(h4);
	int fx = x;
	int fy = y;
	assert(fx == 10 * n && fy == 10 * n, "updates lost");
}
`

const pbzip2Src = `
// pbzip2: the main thread tears down the FIFO's mutex state while consumer
// threads are still using it — the frequently studied order violation.
// mu_valid stands for the mutex object the real pbzip2 nulls out.
int fifo[8];
int head;
int tail;
int mu_valid = 1;
int consumed;
mutex m;
cond nonempty;

func consumer() {
	lock(m);
	while (head == tail) {
		wait(nonempty, m);
	}
	int item = fifo[head % 8];
	head = head + 1;
	unlock(m);
	int v = mu_valid;
	// The real crash: using the queue mutex after main destroyed it.
	assert(v == 1, "fifo mutex used after destruction");
	consumed = consumed + item;
}

func main() {
	int n = input(0);
	if (n == 0) { n = 3; }
	if (n > 8) { n = 8; }
	int i;
	// Produce n items up front so consumers never block forever.
	lock(m);
	for (i = 0; i < n; i = i + 1) {
		fifo[tail % 8] = i + 100;
		tail = tail + 1;
		signal(nonempty);
	}
	unlock(m);
	int h1 = spawn consumer();
	int h2 = spawn consumer();
	int h3 = spawn consumer();
	// BUG: tear down the mutex state before the consumers are done.
	mu_valid = 0;
	join(h1);
	join(h2);
	join(h3);
}
`

const agetSrc = `
// aget: parallel downloader. Worker threads claim chunks through a shared
// cursor and add to the progress counter; neither is protected, so chunk
// claims duplicate and progress updates get lost.
int cursor;
int progress;
int chunkdone[64];

func dl(id) {
	int more = 1;
	while (more == 1) {
		int c = cursor;
		if (c >= input(0)) {
			more = 0;
		} else {
			cursor = c + 1;
			chunkdone[c % 64] = id;
			int p = progress;
			progress = p + 100;
		}
	}
}

func main() {
	int n = input(0);
	int h1 = spawn dl(1);
	int h2 = spawn dl(2);
	int h3 = spawn dl(3);
	join(h1);
	join(h2);
	join(h3);
	int got = progress;
	assert(got == n * 100, "download accounting lost updates");
}
`

const bbufSrc = `
// bbuf: shared bounded buffer. The consumer checks "count == 0" with an
// if instead of a while, so a woken consumer whose item was stolen reads
// an empty slot — the classic seeded condition-variable bug.
int buf[4];
int takein;
int takeout;
int count;
int bad;
mutex m;
cond notempty;

func producer(n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		lock(m);
		if (count < 4) {
			buf[takein % 4] = i + 1;
			takein = takein + 1;
			count = count + 1;
			signal(notempty);
		}
		unlock(m);
	}
}

func consumer(n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		lock(m);
		if (count == 0) {
			wait(notempty, m);
		}
		// BUG: count may still be zero here (another consumer won the race).
		int item = buf[takeout % 4];
		if (count > 0) {
			takeout = takeout + 1;
			count = count - 1;
		} else {
			bad = 1;
		}
		unlock(m);
		if (item == 0) { bad = 1; }
	}
}

func main() {
	int n = input(0);
	if (n == 0) { n = 2; }
	int p1 = spawn producer(n);
	int p2 = spawn producer(n);
	int c1 = spawn consumer(n);
	int c2 = spawn consumer(n);
	join(p1);
	join(p2);
	join(c1);
	join(c2);
	int b = bad;
	assert(b == 0, "consumer took an empty slot");
}
`

const swarmSrc = `
// swarm: parallel sort. Two workers locally sort their halves (real local
// work) and publish partition sums without synchronization; the merge
// check in main catches the lost update.
int data[64];
int total;
int ready;

func worker(lo, hi) {
	// Local selection sort on [lo, hi) — thread-local array region in the
	// real program; here the races are confined to total/ready.
	int i;
	int sum = 0;
	for (i = lo; i < hi; i = i + 1) {
		int best = i;
		int j;
		for (j = i + 1; j < hi; j = j + 1) {
			if (data[j] < data[best]) { best = j; }
		}
		int tmp = data[i];
		data[i] = data[best];
		data[best] = tmp;
		sum = sum + data[i];
	}
	int t = total;
	total = t + sum;
	int r = ready;
	ready = r + 1;
}

func main() {
	int n = input(0);
	if (n == 0) { n = 6; }
	if (n > 32) { n = 32; }
	int i;
	int expect = 0;
	for (i = 0; i < 2 * n; i = i + 1) {
		data[i] = (7 * i + 3) % 50;
		expect = expect + data[i];
	}
	int h1 = spawn worker(0, n);
	int h2 = spawn worker(n, 2 * n);
	join(h1);
	join(h2);
	int got = total;
	assert(got == expect, "partition sums lost an update");
}
`

const pfscanSrc = `
// pfscan: parallel file scanner. The work queue is properly locked, but
// the global match counter is aggregated outside the lock — the real
// pfscan's race.
int next;
int nfiles;
int matches;
int files[64];
mutex qm;

func scanner() {
	int more = 1;
	while (more == 1) {
		lock(qm);
		int mine = -1;
		if (next < nfiles) {
			mine = next;
			next = next + 1;
		}
		unlock(qm);
		if (mine < 0) {
			more = 0;
		} else {
			// Scan the "file": count 1 match per 3 bytes.
			int size = files[mine % 64];
			int found = size / 3;
			int g = matches;
			matches = g + found;
		}
	}
}

func main() {
	int n = input(0);
	if (n == 0) { n = 6; }
	if (n > 64) { n = 64; }
	nfiles = n;
	int i;
	int expect = 0;
	for (i = 0; i < n; i = i + 1) {
		files[i] = 9 + 3 * (i % 5);
		expect = expect + files[i] / 3;
	}
	int h1 = spawn scanner();
	int h2 = spawn scanner();
	join(h1);
	join(h2);
	int got = matches;
	assert(got == expect, "match counter lost an update");
}
`

const apacheSrc = `
// apache bug #45605: listener and worker threads keep the request queue's
// element count and ring indices in separate variables; the listener
// updates them non-atomically (count is bumped outside the lock), so a
// worker can observe count > 0 with an empty ring — the multi-variable
// atomicity violation that crashes the server's assertion.
int ring[16];
int qhead;
int qtail;
int qcount;
int served;
int bad;
mutex qm;
cond more;

func listener(n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		lock(qm);
		ring[qtail % 16] = i + 1;
		qtail = qtail + 1;
		signal(more);
		unlock(qm);
		// BUG: count bump outside the critical section.
		int c = qcount;
		qcount = c + 1;
	}
}

func worker(quota) {
	int handled = 0;
	int attempts = 0;
	while (handled < quota && attempts < 60) {
		attempts = attempts + 1;
		lock(qm);
		int avail = qcount;
		if (avail > 0) {
			// The server's invariant: a positive count implies a
			// non-empty ring.
			if (qhead == qtail) {
				bad = 1;
			}
			int req = ring[qhead % 16];
			if (qhead < qtail) { qhead = qhead + 1; }
			qcount = avail - 1;
			handled = handled + 1;
			served = served + req;
		}
		unlock(qm);
		if (bad == 1) { handled = quota; }
	}
	assert(bad == 0, "queue count/ring indices diverged");
}

func main() {
	int n = input(0);
	if (n == 0) { n = 3; }
	int l1 = spawn listener(n);
	int l2 = spawn listener(n);
	int w1 = spawn worker(n);
	int w2 = spawn worker(n);
	int w3 = spawn worker(n);
	join(l1);
	join(l2);
	join(w1);
	join(w2);
	join(w3);
}
`

const raceySrc = `
// racey: the deterministic-replay stress benchmark. Two worker threads
// append their ids to a shared history through a racy cursor while also
// racing on a signature; main then checks how interleaved the history is.
// Because main's per-element comparisons are branches, the path
// constraints pin the *exact* alternation pattern of the recorded failure,
// making racey the highest-context-switch SC instance of the table (the
// paper's racey needed 276 switches and was its worst case).
int hist[64];
int pos;
int sig;

func mix(id, rounds) {
	int i;
	for (i = 0; i < rounds; i = i + 1) {
		int p = pos;
		hist[p % 64] = id;
		pos = p + 1;
		int s = sig;
		sig = s + id * 7 + i;
	}
}

func main() {
	int rounds = input(0);
	if (rounds == 0) { rounds = 10; }
	int k = input(1);
	if (k == 0) { k = 6; }
	int h1 = spawn mix(1, rounds);
	int h2 = spawn mix(2, rounds);
	join(h1);
	join(h2);
	int n = pos;
	if (n > 64) { n = 64; }
	int alt = 0;
	int i;
	for (i = 1; i < n; i = i + 1) {
		if (hist[i] != hist[i - 1]) { alt = alt + 1; }
	}
	assert(alt < k, "history excessively interleaved");
}
`

const bakerySrc = `
// bakery: Lamport's bakery algorithm for 4 worker threads. Correct under
// SC; PSO's per-address store buffers let number[i] lag behind choosing[i]
// so two threads bake the same ticket and both enter.
int choosing[4];
int number[4];
int counter;
int incrit;
int bad;

func baker(id) {
	int round;
	for (round = 0; round < 1; round = round + 1) {
		choosing[id] = 1;
		int maxn = 0;
		int j;
		for (j = 0; j < 4; j = j + 1) {
			int nj = number[j];
			if (nj > maxn) { maxn = nj; }
		}
		number[id] = maxn + 1;
		choosing[id] = 0;
		int entered = 1;
		for (j = 0; j < 4; j = j + 1) {
			if (j != id) {
				int spins = 0;
				while (choosing[j] == 1 && spins < 20) { spins = spins + 1; yield(); }
				if (choosing[j] == 1) { entered = 0; }
				spins = 0;
				int blocked = 1;
				while (blocked == 1 && spins < 20) {
					int nj = number[j];
					int ni = number[id];
					if (nj == 0) {
						blocked = 0;
					} else {
						if (nj > ni || (nj == ni && j > id)) {
							blocked = 0;
						} else {
							spins = spins + 1;
							yield();
						}
					}
				}
				if (blocked == 1) { entered = 0; }
			}
		}
		if (entered == 1) {
			incrit = incrit + 1;
			if (incrit != 1) { bad = 1; }
			int c = counter;
			counter = c + 1;
			incrit = incrit - 1;
		}
		number[id] = 0;
	}
}

func main() {
	int h0 = spawn baker(0);
	int h1 = spawn baker(1);
	int h2 = spawn baker(2);
	int h3 = spawn baker(3);
	join(h0);
	join(h1);
	join(h2);
	join(h3);
	int b = bad;
	assert(b == 0, "bakery mutual exclusion violated");
}
`

const dekkerSrc = `
// dekker: Dekker's algorithm for two threads, with a bounded retry so the
// simulation always terminates. Correct under SC; TSO's store buffering
// lets both threads read the other's flag as 0.
int flag0;
int flag1;
int turn;
int counter;
int incrit;
int bad;

func d0() {
	int k;
	for (k = 0; k < 2; k = k + 1) {
		int done = 0;
		int tries = 0;
		while (done == 0 && tries < 30) {
			flag0 = 1;
			int f = flag1;
			if (f == 0) {
				incrit = incrit + 1;
				if (incrit != 1) { bad = 1; }
				int c = counter;
				counter = c + 1;
				incrit = incrit - 1;
				turn = 1;
				flag0 = 0;
				done = 1;
			} else {
				int t = turn;
				if (t == 1) {
					flag0 = 0;
					int spins = 0;
					while (turn == 1 && spins < 20) { spins = spins + 1; yield(); }
				}
				tries = tries + 1;
			}
		}
	}
}

func d1() {
	int k;
	for (k = 0; k < 2; k = k + 1) {
		int done = 0;
		int tries = 0;
		while (done == 0 && tries < 30) {
			flag1 = 1;
			int f = flag0;
			if (f == 0) {
				incrit = incrit + 1;
				if (incrit != 1) { bad = 1; }
				int c = counter;
				counter = c + 1;
				incrit = incrit - 1;
				turn = 0;
				flag1 = 0;
				done = 1;
			} else {
				int t = turn;
				if (t == 0) {
					flag1 = 0;
					int spins = 0;
					while (turn == 0 && spins < 20) { spins = spins + 1; yield(); }
				}
				tries = tries + 1;
			}
		}
	}
}

func main() {
	int h0 = spawn d0();
	int h1 = spawn d1();
	join(h0);
	join(h1);
	int b = bad;
	assert(b == 0, "dekker mutual exclusion violated");
}
`

const petersonSrc = `
// peterson: Peterson's algorithm for two threads with bounded retries.
// Correct under SC; broken by TSO store buffering.
int flag0;
int flag1;
int victim;
int counter;
int incrit;
int bad;

func p0() {
	int k;
	for (k = 0; k < 2; k = k + 1) {
		int done = 0;
		int tries = 0;
		while (done == 0 && tries < 30) {
			flag0 = 1;
			victim = 0;
			int f = flag1;
			int v = victim;
			if (f == 0 || v != 0) {
				incrit = incrit + 1;
				if (incrit != 1) { bad = 1; }
				int c = counter;
				counter = c + 1;
				incrit = incrit - 1;
				flag0 = 0;
				done = 1;
			} else {
				flag0 = 0;
				tries = tries + 1;
				yield();
			}
		}
	}
}

func p1() {
	int k;
	for (k = 0; k < 2; k = k + 1) {
		int done = 0;
		int tries = 0;
		while (done == 0 && tries < 30) {
			flag1 = 1;
			victim = 1;
			int f = flag0;
			int v = victim;
			if (f == 0 || v != 1) {
				incrit = incrit + 1;
				if (incrit != 1) { bad = 1; }
				int c = counter;
				counter = c + 1;
				incrit = incrit - 1;
				flag1 = 0;
				done = 1;
			} else {
				flag1 = 0;
				tries = tries + 1;
				yield();
			}
		}
	}
}

func main() {
	int h0 = spawn p0();
	int h1 = spawn p1();
	join(h0);
	join(h1);
	int b = bad;
	assert(b == 0, "peterson mutual exclusion violated");
}
`
