// Per-stage benchmark runners over the paper's evaluation programs. Each
// runner times exactly one offline-pipeline stage — constraint-system
// build, preprocessing, sequential solve, parallel generate-and-validate,
// CNF solve — against a prepared recording. They are shared between the
// repo-root `go test -bench BenchmarkStages` benchmarks and cmd/benchjson,
// which drives them through testing.Benchmark to emit the machine-readable
// BENCH_<date>.json perf trajectory; both paths therefore measure the same
// code the same way.
package bench

import (
	"testing"
	"time"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/parsolve"
	"repro/internal/solver"
)

// observeLat feeds one timed iteration's wall time into the stage's
// latency histogram. No-op when the caller did not attach a registry
// (p.Lat nil): the obs handles are nil-safe all the way down.
func observeLat(p *Prepared, stage string, start time.Time) {
	p.Lat.Hist("stage.bench." + stage + ".ns").Observe(int64(time.Since(start)))
}

// StageDeadline bounds each measured solve so a regression shows up as a
// skipped/interrupted stage instead of a hung benchmark run.
const StageDeadline = 60 * time.Second

// FreshSystem builds a constraint system from the prepared recording,
// preprocessed unless baseline is set. Stage runners take their own system
// rather than sharing p.System because Preprocess mutates the system in
// place (candidate pruning) and the Table benchmarks measure the
// un-preprocessed build.
func FreshSystem(p *Prepared, baseline bool) (*constraints.System, error) {
	sys, err := p.Recording.Analyze()
	if err != nil {
		return nil, err
	}
	if !baseline {
		sys.Preprocess()
	}
	return sys, nil
}

// StageBuild times the constraint-system build (symbolic execution of the
// decoded paths plus constraint encoding).
func StageBuild(p *Prepared) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := p.Recording.Analyze(); err != nil {
				b.Fatal(err)
			}
			observeLat(p, "build", t0)
		}
	}
}

// StagePreprocess times the preprocessing pass alone: each iteration
// rebuilds the system off the clock, then times Preprocess on it. The last
// iteration's pruning counters are reported under their stable dotted
// names (see internal/obs/names.go) so benchjson carries them into the
// perf trajectory.
func StagePreprocess(p *Prepared) func(*testing.B) {
	return func(b *testing.B) {
		var pre *constraints.PreStats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys, err := p.Recording.Analyze()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			t0 := time.Now()
			pre = sys.Preprocess()
			observeLat(p, "preprocess", t0)
		}
		b.ReportMetric(float64(pre.CandsBefore), "preprocess.cands.before")
		b.ReportMetric(float64(pre.CandsAfter), "preprocess.cands.after")
		b.ReportMetric(float64(pre.PrunedOrder), "preprocess.pruned.order")
		b.ReportMetric(float64(pre.PrunedShadowed), "preprocess.pruned.shadowed")
		b.ReportMetric(float64(pre.PrunedLock), "preprocess.pruned.lock")
		b.ReportMetric(float64(pre.PrunedMutex), "preprocess.pruned.mutex")
	}
}

// StageSequential times the sequential decision-procedure solve and
// reports the last iteration's search counters.
func StageSequential(p *Prepared, sys *constraints.System) func(*testing.B) {
	return func(b *testing.B) {
		bound := p.Bench.MaxPreemptions
		if bound == 0 {
			bound = -1
		}
		var st *solver.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			_, stats, err := solver.Solve(sys, solver.Options{
				MaxPreemptions: bound, Deadline: StageDeadline,
			})
			if err != nil {
				b.Fatal(err)
			}
			observeLat(p, "sequential", t0)
			st = stats
		}
		b.ReportMetric(float64(st.Decisions), "solver.seq.decisions")
		b.ReportMetric(float64(st.Backtracks), "solver.seq.backtracks")
	}
}

// StageParsolve times the parallel generate-and-validate solve and reports
// the candidate counts (generated, validated, valid). Benchmarks whose bug
// the bounded generator cannot reach — the relaxed-model trio, the paper's
// Table 3 negative result — are skipped.
func StageParsolve(p *Prepared, sys *constraints.System) func(*testing.B) {
	return func(b *testing.B) {
		var res *parsolve.Result
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			r, err := parsolve.Solve(sys, parsolve.Options{
				Workers: 8, MaxBound: p.Bench.ParallelBound,
				Deadline: StageDeadline,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !r.Found() {
				b.Skipf("bug unreachable within bound %d (generated %d candidates)",
					p.Bench.ParallelBound, r.Generated)
			}
			observeLat(p, "parsolve", t0)
			res = r
		}
		b.ReportMetric(float64(res.Generated), "solver.par.generated")
		b.ReportMetric(float64(res.Validated), "solver.par.validated")
		b.ReportMetric(float64(res.Valid), "solver.par.valid")
	}
}

// StageCNF times the CNF (CDCL + theory refinement) solve and reports the
// last iteration's encoding and search counters. Systems whose cubic
// encoding exceeds the solver's size limit are skipped.
func StageCNF(p *Prepared, sys *constraints.System) func(*testing.B) {
	return func(b *testing.B) {
		var st *cnfsolver.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			_, stats, err := cnfsolver.Solve(sys, cnfsolver.Options{
				Deadline: StageDeadline,
			})
			if err != nil {
				b.Skipf("cnf stage unavailable: %v", err)
			}
			observeLat(p, "cnf", t0)
			st = stats
		}
		b.ReportMetric(float64(st.BoolVars), "solver.cnf.boolvars")
		b.ReportMetric(float64(st.Clauses), "solver.cnf.clauses")
		b.ReportMetric(float64(st.TheoryRounds), "solver.cnf.rounds")
		b.ReportMetric(float64(st.LazyRounds), "solver.cnf.lazy.rounds")
		b.ReportMetric(float64(st.LazyLemmas), "solver.cnf.lazy.lemmas")
		b.ReportMetric(float64(st.SATConflicts), "solver.cnf.sat.conflicts")
	}
}
