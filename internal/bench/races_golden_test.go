package bench

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/races"
	"repro/internal/vm"
)

// racesRecording records one execution of the benchmark the way `clap
// races` does: hunt a failing schedule first (the mutual-exclusion
// benchmarks only touch their racy state on a failing run), fall back to
// a clean seed run, and keep every shared access a SAP (NoDemote).
func racesRecording(t *testing.T, b Benchmark, tr *obs.Trace) *core.Recording {
	t.Helper()
	prog, err := core.Compile(b.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts := core.RecordOptions{
		Model: b.Model, Inputs: b.Inputs, SeedLimit: b.SeedLimit,
		NoDemote: true, Obs: tr,
	}
	rec, err := core.Record(prog, opts)
	if err != nil {
		var nf *core.NoFailureError
		if !errors.As(err, &nf) {
			t.Fatalf("record: %v", err)
		}
		if rec, err = core.RecordSeed(prog, 0, opts); err != nil {
			t.Fatalf("record seed: %v", err)
		}
	}
	return rec
}

// staticOnlyRacyVars lists the known racy variables whose conflicting
// accesses the hunted recording cannot pair dynamically — the second
// writer never runs on the recorded schedule (bbuf, bakery, dekker only
// write `bad` when mutual exclusion is already broken) or the threads
// touch disjoint concrete indices (swarm's workers split the array).
// Those must still surface, as static-only findings; every other known
// racy variable must be confirmed outright with a validated witness.
var staticOnlyRacyVars = map[string]map[string]bool{
	"bbuf":   {"bad": true},
	"swarm":  {"data": true},
	"bakery": {"bad": true},
	"dekker": {"bad": true},
}

// TestRacesGoldenBenchmarks pins the `clap races` report for the paper's
// eleven programs and asserts the acceptance contract: every known racy
// variable (the vet-pinned set) is found — confirmed with a witness when
// the recording exercises the conflicting pair, surfaced as static-only
// when this recording cannot witness it.
func TestRacesGoldenBenchmarks(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			rec := racesRecording(t, b, nil)
			rep, err := rec.DetectRaces(races.Options{}, nil)
			if err != nil {
				t.Fatalf("races: %v", err)
			}
			got := rep.Render()
			checkGolden(t, filepath.Join("testdata", "races", b.Name+".races"), got)
			for _, v := range knownRacyVars[b.Name] {
				switch {
				case strings.Contains(got, "confirmed: "+v+":"):
				case staticOnlyRacyVars[b.Name][v] && strings.Contains(got, "static: "+v+":"):
				case staticOnlyRacyVars[b.Name][v]:
					t.Errorf("%s: known racy variable %q not found:\n%s", b.Name, v, got)
				default:
					t.Errorf("%s: known racy variable %q not confirmed:\n%s", b.Name, v, got)
				}
			}
		})
	}
}

// TestRacesGoldenExamples pins the `clap races` report for the
// examples/races corpus, each program a regression test for one verdict
// class: true_race must confirm, handshake_refuted must refute its
// lockset false positive through the solver, join_ordered must report
// nothing at all, and array_index must confirm through the lazy
// encoding's address-split refinement of its symbolic indices.
func TestRacesGoldenExamples(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "races")
	paths, err := filepath.Glob(filepath.Join(dir, "*.mc"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no races examples under %s (err=%v)", dir, err)
	}
	for _, path := range paths {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".mc")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b := Benchmark{Name: name, Source: string(src), Model: vm.SC, SeedLimit: 3000}
			rec := racesRecording(t, b, nil)
			rep, err := rec.DetectRaces(races.Options{}, nil)
			if err != nil {
				t.Fatalf("races: %v", err)
			}
			got := rep.Render()
			checkGolden(t, strings.TrimSuffix(path, ".mc")+".races", got)
			switch name {
			case "true_race", "array_index":
				if len(rep.Confirmed()) == 0 {
					t.Errorf("%s must confirm a race:\n%s", name, got)
				}
			case "handshake_refuted":
				if len(rep.Confirmed()) != 0 || rep.Counters.Refuted == 0 {
					t.Errorf("the handshake pair must be refuted, nothing confirmed:\n%s", got)
				}
				if rep.Counters.SolverCalls == 0 {
					t.Errorf("the refutation must come from the solver:\n%s", got)
				}
			case "join_ordered":
				if len(rep.Findings) != 0 {
					t.Errorf("join-ordered program must report zero findings:\n%s", got)
				}
			}
		})
	}
}

// TestRacesWitnessesValidate re-validates every confirmed race's witness
// schedule end to end: ValidateSchedule accepts the order again, and no
// synchronization SAP separates the racing pair in it — the pair is
// happens-before-unordered in the witness, which is what "data race"
// means.
func TestRacesWitnessesValidate(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			rec := racesRecording(t, b, nil)
			rep, err := rec.DetectRaces(races.Options{}, nil)
			if err != nil {
				t.Fatalf("races: %v", err)
			}
			for _, f := range rep.Confirmed() {
				if f.Witness == nil {
					t.Errorf("%s %s: confirmed without witness", f.Var, f.How)
					continue
				}
				if _, err := rep.Sys.ValidateSchedule(f.Witness.Order); err != nil {
					t.Errorf("%s %s: witness fails revalidation: %v", f.Var, f.How, err)
					continue
				}
				pa, pb := -1, -1
				for i, r := range f.Witness.Order {
					if r == f.A.SAP {
						pa = i
					}
					if r == f.B.SAP {
						pb = i
					}
				}
				if pa < 0 || pb < 0 {
					t.Errorf("%s %s: racing pair missing from witness order", f.Var, f.How)
					continue
				}
				if pa > pb {
					pa, pb = pb, pa
				}
				for k := pa + 1; k < pb; k++ {
					if rep.Sys.SAP(f.Witness.Order[k]).Kind.IsSync() {
						t.Errorf("%s %s: sync SAP %s between the racing pair",
							f.Var, f.How, rep.Sys.SAP(f.Witness.Order[k]))
					}
				}
			}
		})
	}
}

// TestRacesSessionReuse pins the amortization contract: per-pair solving
// re-enters one CNF session per recording instead of rebuilding, visible
// through the races.* counters. NoPerturb forces every surviving pair
// through the solver so the reuse is actually exercised, and the counters
// land in the obs registry under stable names.
func TestRacesSessionReuse(t *testing.T) {
	b, ok := ByName("sim_race")
	if !ok {
		t.Fatal("sim_race benchmark missing")
	}
	tr := obs.NewTrace("bench")
	rec := racesRecording(t, b, nil)
	rep, err := rec.DetectRaces(races.Options{NoPerturb: true}, tr)
	if err != nil {
		t.Fatalf("races: %v", err)
	}
	c := rep.Counters
	if c.Sessions != 1 {
		t.Errorf("sessions = %d, want exactly 1 per recording", c.Sessions)
	}
	if c.SolverCalls < 2 {
		t.Errorf("solver calls = %d, want ≥ 2 (several sites must hit the solver)", c.SolverCalls)
	}
	if got, want := c.SessionReuse(), c.SolverCalls-c.Sessions; got != want || got < 1 {
		t.Errorf("session reuse = %d, want %d (calls − sessions, ≥ 1)", got, want)
	}
	if len(rep.Confirmed()) == 0 {
		t.Error("solver-only pass confirmed nothing on sim_race")
	}

	counters, gauges := tr.Reg().Snapshot()
	all := make(map[string]int64, len(counters)+len(gauges))
	for k, v := range counters {
		all[k] = v
	}
	for k, v := range gauges {
		all[k] = v
	}
	for name := range all {
		if !obs.IsStable(name) {
			t.Errorf("metric %q not in the stable-name list", name)
		}
	}
	for _, name := range []string{
		"races.pairs", "races.pairs.pruned.static", "races.pairs.pruned.mutex",
		"races.sites.confirmed", "races.sites.refuted", "races.sites.unknown",
		"races.sites.static", "races.solver.calls", "races.solver.sessions",
		"races.solver.reuse",
	} {
		if !obs.IsStable(name) {
			t.Errorf("%q missing from the stable-name list", name)
		}
		if _, ok := all[name]; !ok {
			t.Errorf("races run published no %q metric", name)
		}
	}
	if all["races.solver.reuse"] != int64(c.SessionReuse()) {
		t.Errorf("races.solver.reuse = %d, want %d", all["races.solver.reuse"], c.SessionReuse())
	}
}
