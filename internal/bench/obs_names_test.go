package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/solver"
)

// TestObsNamesStable runs the instrumented pipeline over every benchmark
// and pins the observability contract -metrics-json consumers rely on:
// the five pipeline stages appear as top-level spans, and every counter
// or gauge the run publishes carries a name from the stable list in
// internal/obs/names.go. A new metric must be added there (and to
// DESIGN.md) before it ships, so renames show up as test failures here
// instead of silent schema drift.
func TestObsNamesStable(t *testing.T) {
	// The lazy-CNF and artifact-cache metrics only appear on a CNF-backed
	// cached run, which the per-benchmark sweep below (sequential, no
	// cache) never produces — pin them in their own subtest so a rename
	// or a silent drop of either family fails here.
	t.Run("lazy-and-cache-pins", func(t *testing.T) {
		t.Parallel()
		for _, name := range []string{
			"solver.cnf.lazy.rounds", "solver.cnf.lazy.lemmas",
			"core.cache.hit", "core.cache.miss",
			// Deep solver telemetry: refinement kinds, session reuse, and
			// the CDCL engine totals.
			"solver.cnf.addr.rounds", "solver.cnf.addr.lemmas",
			"solver.cnf.blocks.mapping",
			"solver.cnf.session.solves", "solver.cnf.session.reuse",
			"sat.solves", "sat.restarts", "sat.learnts",
			// Stage latency histograms, pipeline and benchjson flavors.
			"stage.record.ns", "stage.symexec.ns", "stage.preprocess.ns",
			"stage.solve.ns", "stage.replay.ns",
			"stage.solve.sequential.ns", "stage.solve.parallel.ns",
			"stage.solve.cnf.ns",
			"stage.bench.build.ns", "stage.bench.preprocess.ns",
			"stage.bench.sequential.ns", "stage.bench.parsolve.ns",
			"stage.bench.cnf.ns",
			// Daemon fleet metrics.
			"clapd.queue.depth", "clapd.workers.busy", "clapd.job.ns",
		} {
			if !obs.IsStable(name) {
				t.Errorf("%q missing from the stable-name list", name)
			}
		}
		b, ok := ByName("dekker")
		if !ok {
			t.Fatal("dekker benchmark missing")
		}
		cache, err := core.OpenDiskCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		run := func() (counters, gauges map[string]int64) {
			p := preparedFor(t, b)
			tr := obs.NewTrace("bench")
			rep, err := core.Reproduce(p.Recording, core.ReproduceOptions{
				Solver: core.CNF,
				Cache:  cache,
				Obs:    tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Outcome.Reproduced {
				t.Fatal("bug not reproduced")
			}
			counters, gauges = tr.Reg().Snapshot()
			return counters, gauges
		}
		_, gauges := run()
		for _, name := range []string{
			"solver.cnf.lazy.rounds", "solver.cnf.lazy.lemmas",
			"solver.cnf.session.solves", "sat.solves",
		} {
			if _, ok := gauges[name]; !ok {
				t.Errorf("CNF run published no %q gauge", name)
			}
		}
		counters, _ := run()
		if counters["core.cache.hit"] == 0 {
			t.Error("second cached run published no core.cache.hit")
		}
	})
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			tr := obs.NewTrace("bench")
			prog, err := core.Compile(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := core.Record(prog, core.RecordOptions{
				Model:     b.Model,
				Inputs:    b.Inputs,
				SeedLimit: b.SeedLimit,
				Obs:       tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.Reproduce(rec, core.ReproduceOptions{
				Solver:     core.Sequential,
				SeqOptions: solver.Options{MaxPreemptions: b.MaxPreemptions},
				Obs:        tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Outcome.Reproduced {
				t.Fatal("bug not reproduced")
			}
			for _, stage := range []string{"record", "symexec", "preprocess", "solve", "replay"} {
				if tr.Root().Find(stage) == nil {
					t.Errorf("span %q missing from trace", stage)
				}
			}
			counters, gauges := tr.Reg().Snapshot()
			for name := range counters {
				if !obs.IsStable(name) {
					t.Errorf("counter %q not in the stable-name list", name)
				}
			}
			for name := range gauges {
				if !obs.IsStable(name) {
					t.Errorf("gauge %q not in the stable-name list", name)
				}
			}
			if len(counters)+len(gauges) == 0 {
				t.Error("instrumented run published no metrics")
			}
			s := tr.Reg().TakeSnapshot()
			for name := range s.Hists {
				if !obs.IsStable(name) {
					t.Errorf("histogram %q not in the stable-name list", name)
				}
			}
			for _, stage := range []string{"record", "symexec", "preprocess", "solve", "replay"} {
				if s.Hists["stage."+stage+".ns"].Count == 0 {
					t.Errorf("stage.%s.ns latency histogram is empty after a full run", stage)
				}
			}
		})
	}
}
