package bench

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/staticanalysis"
)

var updateGolden = flag.Bool("update", false, "rewrite the clap-vet golden files")

// vetRender compiles the source and returns the clap-vet report.
func vetRender(t *testing.T, src string) string {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return staticanalysis.Analyze(prog).Render()
}

// checkGolden compares got against the golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if string(want) != got {
		t.Errorf("vet output drifted from %s:\n--- golden\n%s--- got\n%s", path, want, got)
	}
}

// knownRacyVars names, per benchmark, variables whose races are the
// documented failure cause; vet must flag every one of them.
var knownRacyVars = map[string][]string{
	"sim_race": {"x", "y"},
	"pbzip2":   {"mu_valid"},
	"aget":     {"cursor"},
	"bbuf":     {"bad"},
	"swarm":    {"data"},
	"pfscan":   {"matches"},
	"apache":   {"qcount", "bad"},
	"bakery":   {"bad"},
	"dekker":   {"bad"},
	"peterson": {"bad"},
	"racey":    {"hist"},
}

// TestVetGoldenBenchmarks pins the clap-vet report for the paper's eleven
// programs, and asserts each benchmark's documented racy variables are
// flagged. All eleven are intentionally racy, so every report must find
// at least one race.
func TestVetGoldenBenchmarks(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			got := vetRender(t, b.Source)
			checkGolden(t, filepath.Join("testdata", "vet", b.Name+".vet"), got)
			if strings.Contains(got, "no potential races") {
				t.Errorf("%s is intentionally racy, vet found nothing:\n%s", b.Name, got)
			}
			for _, v := range knownRacyVars[b.Name] {
				if !strings.Contains(got, "race: "+v+":") {
					t.Errorf("%s: known racy variable %q not flagged:\n%s", b.Name, v, got)
				}
			}
		})
	}
}

// TestVetGoldenExamples pins the clap-vet report for the examples/vet
// programs. The lock-correct examples double as false-positive
// regression tests: their reports must stay race-free.
func TestVetGoldenExamples(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "vet")
	paths, err := filepath.Glob(filepath.Join(dir, "*.mc"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no vet examples under %s (err=%v)", dir, err)
	}
	clean := map[string]bool{"figure2_locked": true, "condvar": true}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".mc")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			got := vetRender(t, string(src))
			checkGolden(t, strings.TrimSuffix(path, ".mc")+".vet", got)
			if clean[name] && !strings.Contains(got, "no potential races") {
				t.Errorf("%s is lock-correct, vet must not cry wolf:\n%s", name, got)
			}
			if name == "deadlock" && !strings.Contains(got, "lock-order cycle") {
				t.Errorf("deadlock example must report its cycle:\n%s", got)
			}
		})
	}
}
