package bench

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/timeline"
)

// TestTimelineAndExplainGolden pins the flight-recorder acceptance over
// every benchmark:
//
//   - the timeline encodes to valid Chrome trace-event JSON,
//     byte-identical across repeated builds on the same trace,
//   - the timeline carries all three lanes (recorded, solved, replay),
//   - the schedule diff reports at least one flipped SAP pair — or, when
//     the solver reproduced the recorded conflict order exactly, the
//     reversal probe proves a racing pair's recorded order essential,
//     which is the strongest verdict the report can make.
func TestTimelineAndExplainGolden(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p := preparedFor(t, b)
			rep, err := core.Reproduce(p.Recording, core.ReproduceOptions{
				Solver:        core.Sequential,
				SeqOptions:    solver.Options{MaxPreemptions: b.MaxPreemptions},
				CaptureReplay: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Outcome.Reproduced {
				t.Fatal("bug not reproduced")
			}

			tl, err := rep.BuildTimeline(b.Name)
			if err != nil {
				t.Fatal(err)
			}
			if len(tl.Execs) != 3 {
				names := make([]string, 0, len(tl.Execs))
				for _, ex := range tl.Execs {
					names = append(names, ex.Name)
				}
				t.Fatalf("want 3 lanes (recorded, solved, replay), got %v", names)
			}
			enc, err := timeline.EncodeChrome(tl)
			if err != nil {
				t.Fatal(err)
			}
			if err := timeline.Validate(enc); err != nil {
				t.Fatalf("invalid trace-event JSON: %v", err)
			}

			// Byte determinism: rebuild from the same reproduction.
			tl2, err := rep.BuildTimeline(b.Name)
			if err != nil {
				t.Fatal(err)
			}
			enc2, err := timeline.EncodeChrome(tl2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("timeline JSON not byte-deterministic: %d vs %d bytes", len(enc), len(enc2))
			}

			d, err := rep.ScheduleDiff()
			if err != nil {
				t.Fatal(err)
			}
			if d.TotalFlips == 0 {
				essential := false
				for _, pv := range d.Pivots {
					if pv.Known && pv.Essential {
						essential = true
					}
				}
				if !essential {
					t.Fatalf("zero flips and no provably essential racing pair (%d conflicting pairs, %d pivots)",
						d.ConflictingPairs, len(d.Pivots))
				}
			}
			t.Logf("%s: %dB timeline, %d/%d flips, %d remaps",
				b.Name, len(enc), d.TotalFlips, d.ConflictingPairs, len(d.Remaps))
		})
	}
}
