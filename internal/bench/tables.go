package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/parsolve"
	"repro/internal/solver"
	"repro/internal/vm"
)

// Prepared bundles a benchmark's recorded failure and constraint system so
// the three tables can share the expensive phases.
type Prepared struct {
	Bench     Benchmark
	Prog      *ir.Program
	Recording *core.Recording
	System    *constraints.System
	Stats     constraints.Stats
	Symbolic  time.Duration

	// Lat, when set, receives each timed stage iteration's wall time in
	// the stage.bench.<stage>.ns histograms. cmd/benchjson attaches a
	// registry here so its reports carry latency distributions; the
	// go-test benchmark path leaves it nil and pays nothing.
	Lat *obs.Registry
}

// Prepare compiles, records a failing run and builds the constraint system.
func Prepare(b Benchmark) (*Prepared, error) {
	prog, err := core.Compile(b.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	rec, err := core.Record(prog, core.RecordOptions{
		Model:     b.Model,
		Inputs:    b.Inputs,
		SeedLimit: b.SeedLimit,
	})
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	t0 := time.Now()
	sys, err := rec.Analyze()
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return &Prepared{
		Bench:     b,
		Prog:      prog,
		Recording: rec,
		System:    sys,
		Stats:     sys.ComputeStats(),
		Symbolic:  time.Since(t0),
	}, nil
}

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Program     string
	LOC         int
	Threads     int
	SV          int
	Inst        int64
	Br          int64
	SAPs        int
	Constraints int
	Variables   int
	SymbolicSec float64
	SolveSec    float64
	CS          int
	Success     bool
	Err         string
}

// Table1 reproduces every benchmark's bug with the sequential solver and a
// verifying replay, reporting the paper's Table 1 columns.
func Table1(benches []Benchmark) []Table1Row {
	var rows []Table1Row
	for _, b := range benches {
		row := Table1Row{Program: b.Name, LOC: locOf(b.Source)}
		p, err := Prepare(b)
		if err != nil {
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		row.Threads = p.Recording.Run.Threads
		row.SV = p.Recording.Sharing.SharedCount()
		row.Inst = p.Recording.Run.Instructions
		row.Br = p.Recording.Run.Branches
		row.SAPs = p.Stats.SAPs
		row.Constraints = p.Stats.Clauses
		row.Variables = p.Stats.Variables
		row.SymbolicSec = p.Symbolic.Seconds()

		rep, err := core.Reproduce(p.Recording, core.ReproduceOptions{
			Solver:     core.Sequential,
			SeqOptions: solver.Options{MaxPreemptions: b.MaxPreemptions},
		})
		if err != nil {
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		row.SolveSec = rep.SolveTime().Seconds()
		row.CS = rep.Solution.Preemptions
		row.Success = rep.Outcome != nil && rep.Outcome.Reproduced
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders rows like the paper's Table 1.
func FormatTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-10s %5s %8s %4s %9s %8s %7s %12s %10s %10s %9s %4s %s\n",
		"Program", "LOC", "#Threads", "#SV", "#Inst", "#Br", "#SAPs",
		"#Constraints", "#Variables", "T-symb(s)", "T-solve(s)", "#cs", "ok?")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-10s %5d ERROR: %s\n", r.Program, r.LOC, r.Err)
			continue
		}
		ok := "Y"
		if !r.Success {
			ok = "N"
		}
		fmt.Fprintf(w, "%-10s %5d %8d %4d %9d %8d %7d %12d %10d %10.3f %9.3f %4d %s\n",
			r.Program, r.LOC, r.Threads, r.SV, r.Inst, r.Br, r.SAPs,
			r.Constraints, r.Variables, r.SymbolicSec, r.SolveSec, r.CS, ok)
	}
}

// Table2Row is one line of the paper's Table 2: native vs LEAP vs CLAP.
type Table2Row struct {
	Program           string
	NativeNs          int64
	LeapNs            int64
	ClapNs            int64
	LeapOverheadPct   float64
	ClapOverheadPct   float64
	TimeReductionPct  float64
	LeapBytes         int
	ClapBytes         int
	SpaceReductionPct float64
	Err               string
}

// Table2Programs is the paper's Table 2 subset.
var Table2Programs = []string{
	"sim_race", "bbuf", "swarm", "pbzip2", "aget", "pfscan", "apache", "racey",
}

// Table2 measures runtime and log-size overheads of CLAP and LEAP against
// native execution. Each setting runs the identical seeded schedule (the
// recorders never influence scheduling); the reported time is the median
// of `runs` interleaved repetitions with a GC flush before each (the
// paper averages 5 runs of its native workloads).
func Table2(names []string, runs int) []Table2Row {
	if runs <= 0 {
		runs = 5
	}
	var rows []Table2Row
	for _, name := range names {
		b, ok := ByName(name)
		if !ok {
			rows = append(rows, Table2Row{Program: name, Err: "unknown benchmark"})
			continue
		}
		row := measureOverhead(b, runs)
		rows = append(rows, row)
	}
	return rows
}

func measureOverhead(b Benchmark, runs int) Table2Row {
	row := Table2Row{Program: b.Name}
	prog, err := core.Compile(b.Source)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	inputs := b.Table2Inputs
	if inputs == nil {
		inputs = b.Inputs
	}
	const seed = 12345
	type setting struct {
		name string
		leap bool
		clap bool
	}
	settings := []setting{{"native", false, false}, {"leap", true, false}, {"clap", false, true}}
	oneRun := func(st setting, record bool) (int64, error) {
		conf := vm.Config{
			Model:  b.Model,
			Inputs: inputs,
			Sched:  vm.NewRandomScheduler(seed),
		}
		var clapRec *vm.PathRecorder
		var leapRec *vm.LeapRecorder
		if st.clap {
			var err error
			clapRec, err = vm.NewPathRecorder(prog)
			if err != nil {
				return 0, err
			}
			conf.PathRecorder = clapRec
		}
		if st.leap {
			leapRec = vm.NewLeapRecorder(prog)
			conf.LeapRecorder = leapRec
		}
		machine, err := vm.New(prog, conf)
		if err != nil {
			return 0, err
		}
		// Flush allocator/GC debt before timing so the previous setting's
		// garbage is not charged to this run (on a single-CPU machine the
		// collector otherwise runs inside whatever measurement comes next).
		runtime.GC()
		t0 := time.Now()
		if _, err := machine.Run(); err != nil {
			return 0, err
		}
		elapsed := time.Since(t0).Nanoseconds()
		if record {
			if st.clap {
				row.ClapBytes = clapRec.Log.Size()
			}
			if st.leap {
				row.LeapBytes = leapRec.Log.Size()
			}
		}
		return elapsed, nil
	}
	// One untimed warmup per setting, then interleaved timed rounds so
	// cache warm-up and allocator state hit every setting equally — the
	// runs are identical executions (same seed), so only the recording
	// cost should differ.
	for _, st := range settings {
		if _, err := oneRun(st, true); err != nil {
			row.Err = err.Error()
			return row
		}
	}
	samples := map[string][]int64{}
	for k := 0; k < runs; k++ {
		for _, st := range settings {
			ns, err := oneRun(st, false)
			if err != nil {
				row.Err = err.Error()
				return row
			}
			samples[st.name] = append(samples[st.name], ns)
		}
	}
	median := func(xs []int64) int64 {
		sorted := append([]int64(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[len(sorted)/2]
	}
	row.NativeNs = median(samples["native"])
	row.LeapNs = median(samples["leap"])
	row.ClapNs = median(samples["clap"])
	if row.NativeNs > 0 {
		row.LeapOverheadPct = 100 * float64(row.LeapNs-row.NativeNs) / float64(row.NativeNs)
		row.ClapOverheadPct = 100 * float64(row.ClapNs-row.NativeNs) / float64(row.NativeNs)
	}
	if row.LeapNs > 0 {
		row.TimeReductionPct = 100 * float64(row.LeapNs-row.ClapNs) / float64(row.LeapNs)
	}
	if row.LeapBytes > 0 {
		row.SpaceReductionPct = 100 * float64(row.LeapBytes-row.ClapBytes) / float64(row.LeapBytes)
	}
	return row
}

// FormatTable2 renders rows like the paper's Table 2.
func FormatTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-10s %12s %22s %22s %10s %10s %10s %8s\n",
		"Program", "Native", "LEAP (overhead%)", "CLAP (overhead%)", "T-red%", "LEAP-log", "CLAP-log", "S-red%")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-10s ERROR: %s\n", r.Program, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-10s %10dus %12dus (%5.1f) %12dus (%5.1f) %9.1f %9dB %9dB %7.1f\n",
			r.Program, r.NativeNs/1000, r.LeapNs/1000, r.LeapOverheadPct,
			r.ClapNs/1000, r.ClapOverheadPct, r.TimeReductionPct,
			r.LeapBytes, r.ClapBytes, r.SpaceReductionPct)
	}
}

// Table3Row is one line of the paper's Table 3: parallel solving.
type Table3Row struct {
	Program    string
	WorstLog10 float64
	Generated  int64
	CS         int
	Good       int
	ParSec     float64
	SeqSec     float64
	Found      bool
	Capped     bool
	Err        string
}

// Table3 compares the parallel generate-and-validate solver against the
// sequential one on each benchmark.
func Table3(benches []Benchmark, workers int, deadline time.Duration) []Table3Row {
	var rows []Table3Row
	for _, b := range benches {
		row := Table3Row{Program: b.Name}
		p, err := Prepare(b)
		if err != nil {
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		row.WorstLog10 = worstCaseLog10(p.System)

		t0 := time.Now()
		par, err := parsolve.Solve(p.System, parsolve.Options{
			Workers:      workers,
			MaxBound:     b.ParallelBound,
			StopAfter:    1,
			MaxSchedules: 2_000_000,
			Deadline:     deadline,
		})
		if err != nil {
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		row.ParSec = time.Since(t0).Seconds()
		row.Generated = par.Generated
		row.Good = par.Valid
		row.Found = par.Found()
		row.Capped = par.Capped || par.TimedOut
		if par.Found() {
			row.CS = par.Solutions[0].Preemptions
		}

		t1 := time.Now()
		_, _, err = solver.Solve(p.System, solver.Options{MaxPreemptions: effBound(b)})
		if err != nil {
			// The sequential solver may also fail on the stress test.
			row.SeqSec = time.Since(t1).Seconds()
			rows = append(rows, row)
			continue
		}
		row.SeqSec = time.Since(t1).Seconds()
		rows = append(rows, row)
	}
	return rows
}

func effBound(b Benchmark) int {
	if b.MaxPreemptions == 0 {
		return -1
	}
	return b.MaxPreemptions
}

// worstCaseLog10 estimates the log10 of the number of possible schedules:
// for per-thread SAP counts k1..kn the interleaving count is
// (Σki)! / Π(ki!), the standard bound the paper cites from [25, 27].
func worstCaseLog10(sys *constraints.System) float64 {
	total := 0.0
	sum := 0
	for _, refs := range sys.Threads {
		sum += len(refs)
		lg, _ := math.Lgamma(float64(len(refs) + 1))
		total -= lg
	}
	lg, _ := math.Lgamma(float64(sum + 1))
	total += lg
	return total / math.Ln10
}

// FormatTable3 renders rows like the paper's Table 3.
func FormatTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-10s %14s %12s %6s %6s %10s %10s\n",
		"Program", "#worst", "#gen(#cs)", "#good", "found", "T-par(s)", "T-seq(s)")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-10s ERROR: %s\n", r.Program, r.Err)
			continue
		}
		found := "Y"
		if !r.Found {
			found = "N"
		}
		capped := ""
		if r.Capped {
			capped = "*"
		}
		fmt.Fprintf(w, "%-10s %13s %9d(%d)%s %6d %6s %10.3f %10.3f\n",
			r.Program, fmt.Sprintf("> 10^%.0f", r.WorstLog10), r.Generated, r.CS, capped,
			r.Good, found, r.ParSec, r.SeqSec)
	}
	fmt.Fprintln(w, "(* generation capped or timed out before exhausting the bound)")
}

// locOf counts non-blank source lines.
func locOf(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
