// Robustness suite: every Table 1 benchmark is exercised under adversarial
// conditions — crash-truncated and bit-flipped logs through the salvage
// decoder, and solver stages forced to fail or panic under the portfolio.
// The record phase is the expensive part, so one Prepared per benchmark is
// shared across the whole suite (and the Table 1 reproduction test).
package bench

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/parsolve"
	"repro/internal/symexec"
	"repro/internal/trace"
)

type oncePrep struct {
	once sync.Once
	p    *Prepared
	err  error
}

var prepCache = struct {
	mu sync.Mutex
	m  map[string]*oncePrep
}{m: map[string]*oncePrep{}}

// preparedFor records and analyzes a benchmark at most once per test
// process, no matter how many tests need it.
func preparedFor(tb testing.TB, b Benchmark) *Prepared {
	tb.Helper()
	prepCache.mu.Lock()
	op, ok := prepCache.m[b.Name]
	if !ok {
		op = &oncePrep{}
		prepCache.m[b.Name] = op
	}
	prepCache.mu.Unlock()
	op.once.Do(func() { op.p, op.err = Prepare(b) })
	if op.err != nil {
		tb.Fatal(op.err)
	}
	return op.p
}

// blockPrefixes decodes every thread of a log to its flat block sequence.
func blockPrefixes(t *testing.T, p *Prepared, log *trace.PathLog) [][]int {
	t.Helper()
	out := make([][]int, len(log.Threads))
	for i := range log.Threads {
		blocks, err := symexec.BlockPrefix(p.Recording.Paths, &log.Threads[i])
		if err != nil {
			t.Fatalf("thread %d: salvaged log does not decode to blocks: %v", i, err)
		}
		ids := make([]int, len(blocks))
		for j, b := range blocks {
			ids[j] = int(b)
		}
		out[i] = ids
	}
	return out
}

func isPrefix(short, long []int) bool {
	if len(short) > len(long) {
		return false
	}
	for i, v := range short {
		if long[i] != v {
			return false
		}
	}
	return true
}

// TestBenchmarkSalvageTruncation cuts every benchmark's framed log at frame
// boundaries and mid-frame, and checks each salvaged thread still decodes
// to a valid block sequence that prefixes the full recording's.
func TestBenchmarkSalvageTruncation(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p := preparedFor(t, b)
			buf := p.Recording.Log.EncodeFramed(trace.FramedOptions{EventsPerFrame: 16})
			full := blockPrefixes(t, p, p.Recording.Log)
			spans, err := trace.FrameSpans(buf)
			if err != nil {
				t.Fatal(err)
			}
			cuts := []int{0, 1, len(buf)}
			for _, s := range spans {
				cuts = append(cuts, s.Off+s.Len, s.Off+s.Len/2)
			}
			for _, n := range cuts {
				if n > len(buf) {
					continue
				}
				sl, rep := trace.DecodePathLogSalvage(faultinject.Truncate(buf, n))
				if rep.BytesSalvaged+rep.BytesSkipped != rep.BytesTotal {
					t.Fatalf("truncate to %dB: salvage accounting broken: %+v", n, rep)
				}
				got := blockPrefixes(t, p, sl)
				for i := range got {
					if !isPrefix(got[i], full[i]) {
						t.Fatalf("truncate to %dB: thread %d blocks are not a prefix (%d vs %d)",
							n, i, len(got[i]), len(full[i]))
					}
				}
			}
		})
	}
}

// TestBenchmarkSalvageCorruptions feeds seeded random corruptions of every
// benchmark's log through salvage and the analysis pipeline: nothing may
// panic, and salvaged threads still decode to block-sequence prefixes.
func TestBenchmarkSalvageCorruptions(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p := preparedFor(t, b)
			buf := p.Recording.Log.EncodeFramed(trace.FramedOptions{EventsPerFrame: 16})
			full := blockPrefixes(t, p, p.Recording.Log)
			c := faultinject.NewCorrupter(0xC1A9)
			for i := 0; i < 48; i++ {
				mut, m := c.Mutate(buf)
				sl, _ := trace.DecodePathLogSalvage(mut)
				got := blockPrefixes(t, p, sl)
				for ti := range got {
					if ti < len(full) && !isPrefix(got[ti], full[ti]) {
						t.Fatalf("mutation %v: thread %d blocks are not a prefix", m, ti)
					}
				}
				// The strict decoders and the analysis may reject the mutant,
				// but they must do so with an error, not a panic.
				if _, err := trace.DecodeFramedPathLog(mut); err == nil && !trace.IsFramed(mut) {
					t.Fatalf("mutation %v: strict decode accepted an unframed buffer", m)
				}
				rec := *p.Recording
				rec.Log = sl
				_, _ = rec.Analyze()
			}
		})
	}
}

// TestPortfolioFallbackReproduces is the headline robustness claim: with
// the preferred sequential solver forced to fail, the portfolio still
// reproduces every benchmark bug through a fallback stage, and the attempt
// trail says exactly what happened.
func TestPortfolioFallbackReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("portfolio sweep is slow")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := preparedFor(t, b)
			faultinject.Enable("solver.sequential", faultinject.Failure{})
			defer faultinject.Reset()
			rep, err := core.Reproduce(p.Recording, core.ReproduceOptions{
				Solver: core.Portfolio,
				// The stages race, so a generous parallel budget no longer
				// delays the CNF stage that solves the mutex spin loops —
				// and racey, which only the parallel stage can solve here,
				// needs the headroom when the race detector (and, on a
				// single-core machine, the concurrent CNF stage) slows it.
				ParOptions: parsolve.Options{Deadline: 90 * time.Second},
			})
			if err != nil {
				t.Fatalf("portfolio did not recover from an injected sequential failure: %v", err)
			}
			if rep.Outcome == nil || !rep.Outcome.Reproduced {
				t.Fatal("bug not reproduced via fallback")
			}
			if len(rep.Attempts) < 2 {
				t.Fatalf("attempt trail too short: %v", rep.Attempts)
			}
			if rep.Attempts[0].Solver != "sequential" || rep.Attempts[0].Outcome != "fault injected" {
				t.Fatalf("first attempt should be the injected sequential failure: %+v", rep.Attempts[0])
			}
			var won *core.SolverAttempt
			for i := range rep.Attempts {
				a := &rep.Attempts[i]
				if a.Outcome == "solved" {
					won = a
					break
				}
			}
			if won == nil {
				t.Fatalf("no attempt solved: %+v", rep.Attempts)
			}
			if won.Solver == "sequential" {
				t.Fatalf("the fault-injected sequential stage cannot have solved: %+v", rep.Attempts)
			}
			t.Logf("%s: %d attempts, solved by %s in %v", b.Name, len(rep.Attempts), won.Solver, won.Elapsed)
		})
	}
}

// TestPortfolioRecoversPanic proves a panicking solver stage degrades into
// a recorded attempt instead of killing the pipeline.
func TestPortfolioRecoversPanic(t *testing.T) {
	b, _ := ByName("sim_race")
	p := preparedFor(t, b)
	faultinject.Enable("solver.sequential", faultinject.Failure{Panic: "injected solver panic"})
	defer faultinject.Reset()
	rep, err := core.Reproduce(p.Recording, core.ReproduceOptions{Solver: core.Portfolio})
	if err != nil {
		t.Fatalf("portfolio did not recover the panic: %v", err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("bug not reproduced after a panicking stage")
	}
	if rep.Attempts[0].Outcome != "panicked" {
		t.Fatalf("panic not recorded in the trail: %+v", rep.Attempts[0])
	}
}
