package vm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, src string, conf Config) *Result {
	t.Helper()
	prog := compile(t, src)
	if conf.Sched == nil {
		conf.Sched = &RoundRobinScheduler{}
	}
	v, err := New(prog, conf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSequentialOutput(t *testing.T) {
	res := run(t, `
int x;
func main() {
	int a = 6;
	int b = 7;
	x = a * b;
	print(x);
	print(x / 2);
	print(x % 5);
	print(-a);
}
`, Config{})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	want := []int64{42, 21, 2, -6}
	if fmt.Sprint(res.Output) != fmt.Sprint(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	if res.FinalMem[0] != 42 {
		t.Fatalf("x = %d, want 42", res.FinalMem[0])
	}
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
int out;
func main() {
	int i;
	int s = 0;
	for (i = 0; i < 5; i = i + 1) {
		if (i % 2 == 0) {
			s = s + i;
		} else {
			s = s + 10 * i;
		}
	}
	int j = 0;
	while (j < 3) {
		s = s + 1;
		j = j + 1;
	}
	out = s;
}
`, Config{})
	// even: 0+2+4 = 6, odd: 10+30 = 40, loop: +3 => 49
	if res.FinalMem[0] != 49 {
		t.Fatalf("out = %d, want 49", res.FinalMem[0])
	}
}

func TestFunctionCallsAndRecursionDepth(t *testing.T) {
	res := run(t, `
int out;
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() {
	out = fib(10);
}
`, Config{})
	if res.FinalMem[0] != 55 {
		t.Fatalf("fib(10) = %d, want 55", res.FinalMem[0])
	}
}

func TestArrays(t *testing.T) {
	res := run(t, `
int a[5];
int out;
func main() {
	int i;
	for (i = 0; i < 5; i = i + 1) {
		a[i] = i * i;
	}
	out = a[0] + a[1] + a[2] + a[3] + a[4];
}
`, Config{})
	if res.FinalMem[5] != 30 {
		t.Fatalf("sum of squares = %d, want 30", res.FinalMem[5])
	}
}

func TestGlobalArrayInit(t *testing.T) {
	res := run(t, `
int a[3] = 7;
int out;
func main() { out = a[0] + a[1] + a[2]; }
`, Config{})
	if res.FinalMem[3] != 21 {
		t.Fatalf("out = %d, want 21", res.FinalMem[3])
	}
}

func TestSpawnJoin(t *testing.T) {
	res := run(t, `
int x;
func child(v) {
	x = v;
}
func main() {
	int h;
	h = spawn child(99);
	join(h);
	print(x);
}
`, Config{})
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
	if len(res.Output) != 1 || res.Output[0] != 99 {
		t.Fatalf("output = %v, want [99]", res.Output)
	}
	if res.Threads != 2 {
		t.Fatalf("threads = %d, want 2", res.Threads)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	// Two threads increment a counter 100 times each under a lock; no
	// update may be lost regardless of the schedule.
	src := `
int c;
mutex m;
func worker() {
	int i;
	for (i = 0; i < 100; i = i + 1) {
		lock(m);
		int t = c;
		c = t + 1;
		unlock(m);
	}
}
func main() {
	int h1;
	int h2;
	h1 = spawn worker();
	h2 = spawn worker();
	join(h1);
	join(h2);
}
`
	for seed := int64(0); seed < 10; seed++ {
		res := run(t, src, Config{Sched: NewRandomScheduler(seed)})
		if res.Failure != nil {
			t.Fatalf("seed %d: failure %v", seed, res.Failure)
		}
		if res.FinalMem[0] != 200 {
			t.Fatalf("seed %d: counter = %d, want 200 (mutual exclusion broken)", seed, res.FinalMem[0])
		}
	}
}

func TestRaceWithoutLockLosesUpdates(t *testing.T) {
	// The same counter without a lock must lose updates under at least one
	// seed — this is the VM exposing real races.
	src := `
int c;
func worker() {
	int i;
	for (i = 0; i < 50; i = i + 1) {
		int t = c;
		c = t + 1;
	}
}
func main() {
	int h1;
	int h2;
	h1 = spawn worker();
	h2 = spawn worker();
	join(h1);
	join(h2);
}
`
	lost := false
	for seed := int64(0); seed < 30 && !lost; seed++ {
		res := run(t, src, Config{Sched: NewRandomScheduler(seed)})
		if res.FinalMem[0] < 100 {
			lost = true
		}
	}
	if !lost {
		t.Fatal("racy counter never lost an update in 30 seeds; scheduler not interleaving")
	}
}

func TestCondWaitSignal(t *testing.T) {
	src := `
int ready;
int data;
mutex m;
cond c;
func consumer() {
	lock(m);
	while (ready == 0) {
		wait(c, m);
	}
	data = data + 1;
	unlock(m);
}
func producer() {
	lock(m);
	ready = 1;
	data = 10;
	signal(c);
	unlock(m);
}
func main() {
	int h1;
	int h2;
	h1 = spawn consumer();
	h2 = spawn producer();
	join(h1);
	join(h2);
}
`
	for seed := int64(0); seed < 20; seed++ {
		res := run(t, src, Config{Sched: NewRandomScheduler(seed)})
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
		if res.FinalMem[1] != 11 {
			t.Fatalf("seed %d: data = %d, want 11", seed, res.FinalMem[1])
		}
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	src := `
int gate;
int done;
mutex m;
cond c;
func waiter() {
	lock(m);
	while (gate == 0) {
		wait(c, m);
	}
	done = done + 1;
	unlock(m);
}
func main() {
	int h1;
	int h2;
	int h3;
	h1 = spawn waiter();
	h2 = spawn waiter();
	h3 = spawn waiter();
	yield();
	lock(m);
	gate = 1;
	broadcast(c);
	unlock(m);
	join(h1);
	join(h2);
	join(h3);
}
`
	for seed := int64(0); seed < 20; seed++ {
		res := run(t, src, Config{Sched: NewRandomScheduler(seed)})
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
		if res.FinalMem[1] != 3 {
			t.Fatalf("seed %d: done = %d, want 3", seed, res.FinalMem[1])
		}
	}
}

func TestAssertFailureCaptured(t *testing.T) {
	res := run(t, `
int x;
func main() {
	x = 1;
	assert(x == 2, "x must be 2");
}
`, Config{})
	if res.Failure == nil || res.Failure.Kind != FailAssert {
		t.Fatalf("failure = %v, want assertion violation", res.Failure)
	}
	if !strings.Contains(res.Failure.Msg, "x must be 2") {
		t.Errorf("failure msg = %q", res.Failure.Msg)
	}
	if res.Failure.Thread != 0 {
		t.Errorf("failing thread = %d, want 0", res.Failure.Thread)
	}
}

func TestDeadlockDetected(t *testing.T) {
	res := run(t, `
mutex a;
mutex b;
func t1() {
	lock(a);
	yield();
	lock(b);
	unlock(b);
	unlock(a);
}
func main() {
	int h;
	lock(b);
	h = spawn t1();
	yield();
	yield();
	lock(a);
	unlock(a);
	unlock(b);
	join(h);
}
`, Config{Sched: &RoundRobinScheduler{}})
	if res.Failure == nil || res.Failure.Kind != FailDeadlock {
		t.Fatalf("failure = %v, want deadlock", res.Failure)
	}
	if !strings.Contains(res.Failure.Msg, "waits for mutex") {
		t.Errorf("deadlock msg = %q", res.Failure.Msg)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"div by zero", `int x; func main() { int z = 0; x = 1 / z; }`, "division by zero"},
		{"rem by zero", `int x; func main() { int z = 0; x = 1 % z; }`, "remainder by zero"},
		{"array oob", `int a[3]; func main() { int i = 5; a[i] = 1; }`, "out of range"},
		{"array neg", `int a[3]; func main() { int i = -1; int v = a[i]; print(v); }`, "out of range"},
		{"unlock not held", `mutex m; func main() { unlock(m); }`, "not held"},
		{"recursive lock", `mutex m; func main() { lock(m); lock(m); }`, "recursive lock"},
		{"wait without mutex", `mutex m; cond c; func main() { wait(c, m); }`, "without holding"},
		{"join bad handle", `func main() { int h = 42; join(h); }`, "invalid thread handle"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := run(t, c.src, Config{})
			if res.Failure == nil || res.Failure.Kind != FailRuntime {
				t.Fatalf("failure = %v, want runtime error", res.Failure)
			}
			if !strings.Contains(res.Failure.Msg, c.want) {
				t.Errorf("msg %q does not contain %q", res.Failure.Msg, c.want)
			}
		})
	}
}

func TestInputsDeterministic(t *testing.T) {
	res := run(t, `
int x;
func main() {
	x = input(0) + input(1);
	int k = 5;
	x = x + input(k);
}
`, Config{Inputs: []int64{10, 20}})
	// input(5) is out of range and reads 0.
	if res.FinalMem[0] != 30 {
		t.Fatalf("x = %d, want 30", res.FinalMem[0])
	}
}

// dekkerSrc is the classic two-thread mutual exclusion that is correct
// under SC but broken by store buffering.
const dekkerSrc = `
int flag0;
int flag1;
int incrit;
int bad;
func t0() {
	flag0 = 1;
	if (flag1 == 0) {
		incrit = incrit + 1;
		if (incrit != 1) { bad = 1; }
		incrit = incrit - 1;
	}
}
func t1() {
	flag1 = 1;
	if (flag0 == 0) {
		incrit = incrit + 1;
		if (incrit != 1) { bad = 1; }
		incrit = incrit - 1;
	}
}
func main() {
	int h0;
	int h1;
	h0 = spawn t0();
	h1 = spawn t1();
	join(h0);
	join(h1);
	assert(bad == 0, "mutual exclusion violated");
}
`

func TestDekkerSafeUnderSC(t *testing.T) {
	// Under SC, at most one thread can see the other's flag as 0... not
	// true for this simplified Dekker: under SC both threads can pass if
	// both read before either write is visible — impossible under SC since
	// each writes before reading. Verify no seed breaks it.
	for seed := int64(0); seed < 200; seed++ {
		res := run(t, dekkerSrc, Config{Model: SC, Sched: NewRandomScheduler(seed)})
		if res.Failure != nil {
			t.Fatalf("SC seed %d: %v (SC must preserve mutual exclusion)", seed, res.Failure)
		}
	}
}

func TestDekkerBrokenUnderTSO(t *testing.T) {
	broken := false
	for seed := int64(0); seed < 500 && !broken; seed++ {
		res := run(t, dekkerSrc, Config{Model: TSO, Sched: NewRandomScheduler(seed)})
		if res.Failure != nil && res.Failure.Kind == FailAssert {
			broken = true
		}
	}
	if !broken {
		t.Fatal("TSO store buffering never broke Dekker in 500 seeds")
	}
}

// psoReorderSrc is Figure 2 (right) of the paper: assert2 can only fail
// when the two writes (lines 4-5) reach memory out of order, which PSO
// allows and TSO/SC forbid.
const psoReorderSrc = `
int x;
int y;
func t2() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "write reorder observed");
	}
}
func main() {
	int h;
	h = spawn t2();
	x = 1;
	y = 1;
	join(h);
}
`

func TestWriteOrderPreservedUnderTSO(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		res := run(t, psoReorderSrc, Config{Model: TSO, Sched: NewRandomScheduler(seed)})
		if res.Failure != nil {
			t.Fatalf("TSO seed %d: %v (TSO preserves W->W order)", seed, res.Failure)
		}
	}
}

func TestWriteReorderUnderPSO(t *testing.T) {
	broken := false
	for seed := int64(0); seed < 500 && !broken; seed++ {
		res := run(t, psoReorderSrc, Config{Model: PSO, Sched: NewRandomScheduler(seed)})
		if res.Failure != nil && res.Failure.Kind == FailAssert {
			broken = true
		}
	}
	if !broken {
		t.Fatal("PSO never reordered the writes in 500 seeds")
	}
}

func TestLockActsAsFence(t *testing.T) {
	// With the writes under a lock, even PSO cannot reorder them — the
	// paper's point about extra synchronization masking relaxed bugs.
	src := `
int x;
int y;
mutex m;
func t2() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "reorder despite lock");
	}
}
func main() {
	int h;
	h = spawn t2();
	lock(m);
	x = 1;
	unlock(m);
	lock(m);
	y = 1;
	unlock(m);
	join(h);
}
`
	for seed := int64(0); seed < 300; seed++ {
		res := run(t, src, Config{Model: PSO, Sched: NewRandomScheduler(seed)})
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	src := `
int c;
func worker(n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		int t = c;
		c = t + 1;
	}
}
func main() {
	int h1;
	int h2;
	h1 = spawn worker(20);
	h2 = spawn worker(20);
	join(h1);
	join(h2);
	print(c);
}
`
	first := run(t, src, Config{Sched: NewRandomScheduler(7)})
	for i := 0; i < 3; i++ {
		again := run(t, src, Config{Sched: NewRandomScheduler(7)})
		if fmt.Sprint(again.Output) != fmt.Sprint(first.Output) ||
			again.Instructions != first.Instructions {
			t.Fatal("same seed must give identical executions")
		}
	}
}

func TestVisibleEventStream(t *testing.T) {
	var events []VisibleEvent
	prog := compile(t, `
int x;
func child() { x = 5; }
func main() {
	int h;
	h = spawn child();
	join(h);
	int v = x;
	print(v);
}
`)
	v, err := New(prog, Config{
		Sched:     &RoundRobinScheduler{},
		OnVisible: func(ev VisibleEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.String())
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"t0:start", "t0:spawn(t1)", "t1:start", "t1:write@0=5", "t1:exit", "t0:join(t1)", "t0:read@0=5", "t0:exit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("event stream missing %q:\n%s", want, joined)
		}
	}
}

func TestCountsArePopulated(t *testing.T) {
	res := run(t, `
int x;
func main() {
	int i;
	for (i = 0; i < 10; i = i + 1) {
		x = x + 1;
	}
}
`, Config{})
	if res.Branches < 10 {
		t.Errorf("branches = %d, want >= 10", res.Branches)
	}
	if res.Instructions <= res.Branches {
		t.Errorf("instructions = %d must exceed branches = %d", res.Instructions, res.Branches)
	}
	if res.VisibleEvents < 20 {
		t.Errorf("visible events = %d, want >= 20 (10 reads + 10 writes)", res.VisibleEvents)
	}
}

func TestSchedulerRequired(t *testing.T) {
	prog := compile(t, `func main() {}`)
	if _, err := New(prog, Config{}); err == nil {
		t.Fatal("New must reject a config without scheduler")
	}
}

func TestYieldAndFence(t *testing.T) {
	res := run(t, `
int x;
func main() {
	x = 1;
	yield();
	fence();
	x = 2;
}
`, Config{Model: PSO})
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
	if res.FinalMem[0] != 2 {
		t.Fatalf("x = %d, want 2", res.FinalMem[0])
	}
}

func TestValueInjection(t *testing.T) {
	prog := compile(t, `
int x;
func main() {
	int v = x;
	print(v);
}
`)
	v, err := New(prog, Config{
		Sched: &RoundRobinScheduler{},
		ReadValue: func(tid ThreadID, addr int) (int64, bool) {
			return 77, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 77 {
		t.Fatalf("output = %v, want [77] (injected)", res.Output)
	}
}

func TestThreadKeysStableAcrossSchedules(t *testing.T) {
	src := `
int x;
func child(v) { x = v; }
func main() {
	int a;
	int b;
	a = spawn child(1);
	b = spawn child(2);
	join(a);
	join(b);
}
`
	keysOf := func(seed int64) string {
		prog := compile(t, src)
		v, err := New(prog, Config{Sched: NewRandomScheduler(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Run(); err != nil {
			t.Fatal(err)
		}
		var s string
		for _, th := range v.Threads() {
			s += fmt.Sprintf("(%d<-%d#%d)", th.ID, th.Key.Parent, th.Key.Index)
		}
		return s
	}
	k0 := keysOf(1)
	for seed := int64(2); seed < 6; seed++ {
		if keysOf(seed) != k0 {
			t.Fatalf("thread keys differ across schedules: %s vs %s", k0, keysOf(seed))
		}
	}
}
