package vm

import "sort"

// bufEntry is one pending store.
type bufEntry struct {
	addr int
	val  int64
}

// storeBuffer simulates the write buffers of TSO and PSO.
//
// Under TSO a thread has a single FIFO buffer: stores drain to memory in
// issue order, but loads (including other threads') can overtake them —
// the classic W→R reordering that breaks Dekker-style mutual exclusion.
//
// Under PSO each address effectively has its own FIFO buffer: stores to
// different addresses may drain out of order (additional W→W reordering),
// which is the reordering Figure 2 (right) of the paper exploits.
//
// A thread's own loads snoop the buffer (store-to-load forwarding), so a
// thread always sees its own latest store.
type storeBuffer struct {
	model MemModel
	// entries is the pending-store queue in issue order. For TSO only the
	// head may drain; for PSO the oldest entry per address may drain.
	entries []bufEntry
}

func newStoreBuffer(model MemModel) *storeBuffer {
	return &storeBuffer{model: model}
}

// push enqueues a store.
func (b *storeBuffer) push(addr int, val int64) {
	b.entries = append(b.entries, bufEntry{addr: addr, val: val})
}

// lookup returns the youngest pending store to addr, if any (forwarding).
func (b *storeBuffer) lookup(addr int) (int64, bool) {
	for i := len(b.entries) - 1; i >= 0; i-- {
		if b.entries[i].addr == addr {
			return b.entries[i].val, true
		}
	}
	return 0, false
}

// drainableAddrs lists the addresses whose oldest pending store may drain
// next, in ascending order. TSO: only the head entry's address. PSO: the
// oldest entry of every address.
func (b *storeBuffer) drainableAddrs() []int {
	if len(b.entries) == 0 {
		return nil
	}
	if b.model == TSO {
		return []int{b.entries[0].addr}
	}
	seen := map[int]bool{}
	var addrs []int
	for _, e := range b.entries {
		if !seen[e.addr] {
			seen[e.addr] = true
			addrs = append(addrs, e.addr)
		}
	}
	sort.Ints(addrs)
	return addrs
}

// drain makes the oldest pending store to addr visible in mem and removes
// it. It reports the drained value and whether a store existed.
func (b *storeBuffer) drain(addr int, mem []int64) (int64, bool) {
	if b.model == TSO {
		if len(b.entries) == 0 || b.entries[0].addr != addr {
			return 0, false
		}
		v := b.entries[0].val
		mem[addr] = v
		b.entries = b.entries[1:]
		return v, true
	}
	for i, e := range b.entries {
		if e.addr == addr {
			mem[addr] = e.val
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			return e.val, true
		}
	}
	return 0, false
}

// drainAll flushes every pending store in issue order (a full fence).
func (b *storeBuffer) drainAll(mem []int64) {
	for _, e := range b.entries {
		mem[e.addr] = e.val
	}
	b.entries = b.entries[:0]
}

// empty reports whether no stores are pending.
func (b *storeBuffer) empty() bool { return len(b.entries) == 0 }

// pending returns the number of buffered stores.
func (b *storeBuffer) pending() int { return len(b.entries) }
