package vm

import "math/rand"

// Scheduler decides which enabled action runs next. Pick receives the
// deterministic action list produced by EnabledActions and returns the
// index of the chosen action.
type Scheduler interface {
	Pick(v *VM, actions []Action) int
}

// RandomScheduler drives the program through a seeded pseudo-random
// interleaving. It is how the record phase triggers bugs: different seeds
// explore different interleavings, playing the role of the paper's "insert
// timing delays at key places and run many times".
//
// Chaos biases toward switching: with Chaos 0 the scheduler keeps running
// the same thread while possible (few context switches); with Chaos 100 it
// picks uniformly at every visible event. DrainBias (0–100, TSO/PSO only)
// is the probability of preferring a drain action when one exists, letting
// stores linger in buffers long enough for relaxed-memory bugs to appear.
type RandomScheduler struct {
	Rng       *rand.Rand
	Chaos     int
	DrainBias int
	last      ThreadID
	hasLast   bool
}

// NewRandomScheduler returns a seeded random scheduler with moderate
// switching.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{Rng: rand.New(rand.NewSource(seed)), Chaos: 40, DrainBias: 30}
}

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(v *VM, actions []Action) int {
	// Optionally prefer a drain action so buffered stores stay pending
	// across other threads' operations.
	var drains []int
	var runs []int
	for i, a := range actions {
		if a.Kind == ActDrain {
			drains = append(drains, i)
		} else {
			runs = append(runs, i)
		}
	}
	if len(drains) > 0 && (len(runs) == 0 || s.Rng.Intn(100) < s.DrainBias) {
		return drains[s.Rng.Intn(len(drains))]
	}
	if len(runs) == 0 {
		return drains[s.Rng.Intn(len(drains))]
	}
	// Stickiness: continue the last thread unless chaos strikes.
	if s.hasLast && s.Rng.Intn(100) >= s.Chaos {
		for _, i := range runs {
			if actions[i].Thread == s.last {
				return i
			}
		}
	}
	i := runs[s.Rng.Intn(len(runs))]
	s.last = actions[i].Thread
	s.hasLast = true
	return i
}

// RoundRobinScheduler rotates through runnable threads, draining buffers
// eagerly. It gives a deterministic, SC-looking baseline execution.
type RoundRobinScheduler struct {
	next ThreadID
}

// Pick implements Scheduler.
func (s *RoundRobinScheduler) Pick(v *VM, actions []Action) int {
	// Drain first so memory stays up to date.
	for i, a := range actions {
		if a.Kind == ActDrain {
			return i
		}
	}
	// First run action with thread >= next, wrapping.
	best := -1
	for i, a := range actions {
		if a.Thread >= s.next {
			best = i
			break
		}
	}
	if best == -1 {
		best = 0
	}
	s.next = actions[best].Thread + 1
	return best
}

// FixedScheduler replays a precomputed sequence of action choices; it is
// used by tests that need full control.
type FixedScheduler struct {
	// Choices are indices into the action list at each step. When the
	// sequence runs out, Pick returns 0.
	Choices []int
	pos     int
}

// Pick implements Scheduler.
func (s *FixedScheduler) Pick(v *VM, actions []Action) int {
	if s.pos >= len(s.Choices) {
		return 0
	}
	c := s.Choices[s.pos]
	s.pos++
	if c >= len(actions) {
		return len(actions) - 1
	}
	return c
}

// FuncScheduler adapts a function to the Scheduler interface.
type FuncScheduler func(v *VM, actions []Action) int

// Pick implements Scheduler.
func (f FuncScheduler) Pick(v *VM, actions []Action) int { return f(v, actions) }
