// Package vm executes IR programs with multiple threads under a pluggable
// scheduler and a configurable memory model.
//
// The VM is the substrate that plays the roles of PThreads, the OS
// scheduler and the shared-memory hardware in the paper's setting:
//
//   - Scheduling nondeterminism is fully controlled by a Scheduler, which
//     picks the next action at every visible operation (shared access,
//     synchronization, thread start/exit, store-buffer drain). A seeded
//     random scheduler triggers bugs; a replay scheduler enforces a
//     computed schedule deterministically.
//   - The TSO and PSO relaxed memory models are simulated with per-thread
//     (TSO) and per-thread-per-address (PSO) FIFO store buffers whose drain
//     points are themselves schedulable actions, the same simulation style
//     the paper uses to trigger its relaxed-memory bugs.
//   - Recording hooks implement CLAP's Ball–Larus path logging and the LEAP
//     baseline's synchronized access-vector logging; running with no hooks
//     gives the native baseline for Table 2.
//
// The VM is single-goroutine and fully deterministic given a deterministic
// scheduler, which is exactly what a record/replay study needs.
package vm

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/trace"
)

// ThreadID identifies a VM thread; it aliases the trace package's id so
// logs and VM agree.
type ThreadID = trace.ThreadID

// MemModel selects the simulated memory consistency model.
type MemModel uint8

// Memory models.
const (
	// SC is sequential consistency: stores are immediately visible.
	SC MemModel = iota
	// TSO gives every thread one FIFO store buffer (stores may be delayed
	// past subsequent loads, W→R reordering).
	TSO
	// PSO gives every thread one FIFO store buffer per address (stores to
	// different addresses may additionally drain out of order, W→W
	// reordering).
	PSO
)

// String names the model.
func (m MemModel) String() string {
	switch m {
	case SC:
		return "SC"
	case TSO:
		return "TSO"
	case PSO:
		return "PSO"
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// threadState enumerates the lifecycle of a thread.
type threadState uint8

const (
	stCreated threadState = iota // spawned, Start event pending
	stRunnable
	stBlockedLock // waiting to acquire a mutex
	stBlockedCond // waiting inside wait() for a signal
	stSignaled    // signaled, waiting to reacquire the wait mutex
	stBlockedJoin // waiting for a child to exit
	stExiting     // root frame returned, Exit event pending
	stFinished
)

// ThreadKey is the paper's deterministic thread identity: the spawning
// thread plus the child's ordinal among the parent's spawns. It is stable
// across schedules of the same program, unlike raw spawn order.
type ThreadKey struct {
	Parent ThreadID
	Index  int32
}

// MainKey is the key of the main thread.
var MainKey = ThreadKey{Parent: -1, Index: 0}

// Thread is one VM thread.
type Thread struct {
	ID    ThreadID
	Key   ThreadKey
	state threadState
	// frames is the call stack; the top is frames[len-1].
	frames []*frame
	// buf is the store buffer (nil under SC).
	buf *storeBuffer
	// waitMutex/waitCond/waitChild record what a blocked thread waits for.
	waitMutex int
	waitCond  int
	waitChild ThreadID
	// children counts spawns, producing child Index values.
	children int32
	// visibleCount counts executed visible events (SAP occurrences).
	visibleCount int
}

// frame is one activation record.
type frame struct {
	fn     *ir.Func
	regs   []Value
	block  *ir.Block
	ip     int    // next instruction index within block
	retReg ir.Reg // caller register receiving the return value
	trk    pathTracker
}

// Value is a dynamically typed register value: a 64-bit integer or a
// boolean. The mini language has no implicit conversions; using one where
// the other is expected is a runtime error.
type Value struct {
	I      int64
	B      bool
	IsBool bool
}

// IntVal makes an integer value.
func IntVal(i int64) Value { return Value{I: i} }

// BoolVal makes a boolean value.
func BoolVal(b bool) Value { return Value{B: b, IsBool: true} }

// String renders the value.
func (v Value) String() string {
	if v.IsBool {
		return fmt.Sprintf("%t", v.B)
	}
	return fmt.Sprintf("%d", v.I)
}

// FailureKind classifies how a run ended abnormally.
type FailureKind uint8

// Failure kinds.
const (
	// FailAssert is an assertion violation — the concurrency failure CLAP
	// reproduces.
	FailAssert FailureKind = iota
	// FailDeadlock means no thread can make progress.
	FailDeadlock
	// FailRuntime is a trap: division by zero, array bounds, lock misuse.
	FailRuntime
)

// String names the kind.
func (k FailureKind) String() string {
	switch k {
	case FailAssert:
		return "assertion violation"
	case FailDeadlock:
		return "deadlock"
	case FailRuntime:
		return "runtime error"
	}
	return fmt.Sprintf("failure(%d)", uint8(k))
}

// Failure describes an abnormal end of a run.
type Failure struct {
	Kind FailureKind
	// Thread is the failing thread (meaningless for deadlocks).
	Thread ThreadID
	// Site is the assertion site id (FailAssert only).
	Site int
	Msg  string
	// VisibleIndex is how many visible events the failing thread had
	// executed when it failed.
	VisibleIndex int
}

// Error renders the failure as an error message.
func (f *Failure) Error() string {
	return fmt.Sprintf("vm: %s in thread %d: %s", f.Kind, f.Thread, f.Msg)
}

// Config parameterizes a run.
type Config struct {
	Model MemModel
	// Inputs backs the input(k) builtin.
	Inputs []int64
	// MaxActions bounds the scheduler loop (0 means a generous default).
	MaxActions int
	// Sched decides every scheduling point. Required.
	Sched Scheduler
	// Shared marks thread-shared globals (indexed by ir.GlobalID), as
	// computed by internal/escape. Accesses to non-shared globals are plain
	// local instructions: not scheduling points, not SAPs, not recorded by
	// LEAP. A nil slice conservatively treats every global as shared.
	Shared []bool
	// Demoted marks shared globals whose accesses the static lockset /
	// happens-before analysis proved free of concurrent conflicting
	// access. Demoted accesses keep full shared-memory semantics (store
	// buffers, value injection) but are not scheduling points, visible
	// events, or LEAP-recorded accesses: with no concurrent rival the
	// interleaving around them is irrelevant, so the recorder skips them
	// the same way partial-order reduction skips invisible transitions.
	// Nil demotes nothing. Ignored for globals not marked in Shared.
	Demoted []bool
	// PathRecorder, if non-nil, records CLAP thread-local path logs.
	PathRecorder *PathRecorder
	// LeapRecorder, if non-nil, records LEAP per-variable access vectors.
	LeapRecorder *LeapRecorder
	// SyncRecorder, if non-nil, records the global synchronization order
	// (the paper's §6.4 optional extension; costs a real lock per sync op).
	SyncRecorder *SyncOrderRecorder
	// OnVisible, if non-nil, observes every visible event right after it
	// executes (used by the replayer to verify schedule conformance).
	OnVisible func(ev VisibleEvent)
	// ReadValue, if non-nil, intercepts shared loads: when it reports ok,
	// the load returns its value instead of consulting memory. The replayer
	// uses this to enforce the solver's read-write mapping under relaxed
	// models (the paper triggers and replays its TSO/PSO bugs by
	// "actively controlling the value returned by shared data loads").
	ReadValue func(t ThreadID, addr int) (int64, bool)
	// PickWaiter, if non-nil, chooses which of the waiting threads a
	// signal wakes (default: the lowest thread id). The replayer picks the
	// waiter whose wake comes first in the computed schedule so that
	// signal delivery matches the solver's wait/signal mapping.
	PickWaiter func(c ir.SyncID, waiters []ThreadID) ThreadID
	// GateAccess, if non-nil, is consulted before every shared access;
	// returning false blocks the thread at the access (the action is
	// consumed without progress and the access retried when the thread is
	// next scheduled). It models blocking record/replay instrumentation —
	// LEAP's per-variable access-vector waits (internal/leap).
	GateAccess func(t ThreadID, g ir.GlobalID, isWrite bool) bool
}

// Result summarizes a run.
type Result struct {
	// Failure is nil for a clean completion.
	Failure *Failure
	// Instructions counts executed IR instructions.
	Instructions int64
	// Branches counts executed conditional branch terminators.
	Branches int64
	// VisibleEvents counts executed visible events (shared accesses plus
	// synchronizations plus thread start/exit) — the paper's #SAPs.
	VisibleEvents int64
	// Output is the sequence of printed values.
	Output []int64
	// FinalMem is the memory image at the end of the run (after draining
	// all store buffers).
	FinalMem []int64
	// Threads is the number of threads that existed.
	Threads int
	// PathLog is the CLAP record (nil when not recording).
	PathLog *trace.PathLog
	// LeapLog is the LEAP record (nil when not recording).
	LeapLog *trace.AccessVectorLog
}

// ErrActionBudget reports a run that exceeded Config.MaxActions — usually a
// livelock under an adversarial schedule (e.g. a spin loop that is never
// allowed to observe its exit condition). Bug hunts treat such seeds as
// uninteresting and move on.
var ErrActionBudget = fmt.Errorf("vm: exceeded the action budget (livelock?)")

// VM is a single run's machine state.
type VM struct {
	prog *ir.Program
	conf Config

	mem     []int64
	base    []int         // global id -> offset into mem
	addrVar []ir.GlobalID // offset -> owning global (for diagnostics/LEAP)

	threads []*Thread
	mutexes []mutexState
	conds   []condState

	instructions int64
	branches     int64
	visible      int64
	eventClock   int64 // next VisibleEvent.Time (all events, drains included)
	output       []int64
	failure      *Failure
	actionCount  int
}

type mutexState struct {
	held  bool
	owner ThreadID
}

type condState struct{}

// New builds a VM for one run of prog.
func New(prog *ir.Program, conf Config) (*VM, error) {
	if conf.Sched == nil {
		return nil, fmt.Errorf("vm: config requires a scheduler")
	}
	if conf.MaxActions == 0 {
		conf.MaxActions = 50_000_000
	}
	v := &VM{prog: prog, conf: conf}
	v.base = make([]int, len(prog.Globals))
	off := 0
	for i, g := range prog.Globals {
		v.base[i] = off
		n := 1
		if g.IsArray() {
			n = g.Size
		}
		for k := 0; k < n; k++ {
			v.addrVar = append(v.addrVar, ir.GlobalID(i))
		}
		off += n
	}
	v.mem = make([]int64, off)
	for i, g := range prog.Globals {
		n := 1
		if g.IsArray() {
			n = g.Size
		}
		for k := 0; k < n; k++ {
			v.mem[v.base[i]+k] = g.Init
		}
	}
	v.mutexes = make([]mutexState, len(prog.Mutexes))
	v.conds = make([]condState, len(prog.Conds))

	main := v.newThread(MainKey, prog.MainID, nil)
	_ = main
	return v, nil
}

// newThread registers a thread running fn with the given arguments.
func (v *VM) newThread(key ThreadKey, fn ir.FuncID, args []Value) *Thread {
	t := &Thread{
		ID:    ThreadID(len(v.threads)),
		Key:   key,
		state: stCreated,
	}
	if v.conf.Model != SC {
		t.buf = newStoreBuffer(v.conf.Model)
	}
	f := v.prog.Funcs[fn]
	fr := &frame{
		fn:    f,
		regs:  make([]Value, f.NumRegs),
		block: f.Entry,
	}
	copy(fr.regs, args)
	t.frames = []*frame{fr}
	v.threads = append(v.threads, t)
	if v.conf.PathRecorder != nil {
		v.conf.PathRecorder.threadStarted(t.ID, key)
		v.conf.PathRecorder.enter(t.ID, fr)
	}
	return t
}

// Addr computes the flat memory address of a global access; it reports an
// error for out-of-bounds array indices.
func (v *VM) Addr(g ir.GlobalID, idx int64) (int, error) {
	gv := v.prog.Globals[g]
	if !gv.IsArray() {
		return v.base[g], nil
	}
	if idx < 0 || idx >= int64(gv.Size) {
		return 0, fmt.Errorf("index %d out of range [0,%d) for array %s", idx, gv.Size, gv.Name)
	}
	return v.base[g] + int(idx), nil
}

// VarOfAddr returns which global owns a flat address.
func (v *VM) VarOfAddr(addr int) ir.GlobalID { return v.addrVar[addr] }

// Prog returns the program under execution.
func (v *VM) Prog() *ir.Program { return v.prog }

// Threads returns the current thread table.
func (v *VM) Threads() []*Thread { return v.threads }

// Mem returns the current memory image (without store-buffer contents).
func (v *VM) Mem() []int64 { return v.mem }

// Run drives the scheduler loop to completion and returns the result.
func (v *VM) Run() (*Result, error) {
	for {
		if v.failure != nil && v.failure.Kind == FailAssert {
			break
		}
		acts := v.EnabledActions()
		if len(acts) == 0 {
			if v.allFinished() {
				break
			}
			v.failure = &Failure{Kind: FailDeadlock, Msg: v.describeBlocked()}
			break
		}
		v.actionCount++
		if v.actionCount > v.conf.MaxActions {
			return nil, fmt.Errorf("%w (%d actions)", ErrActionBudget, v.conf.MaxActions)
		}
		idx := v.conf.Sched.Pick(v, acts)
		if idx < 0 || idx >= len(acts) {
			return nil, fmt.Errorf("vm: scheduler picked invalid action %d of %d", idx, len(acts))
		}
		if err := v.perform(acts[idx]); err != nil {
			if f, ok := err.(*Failure); ok {
				v.failure = f
				break
			}
			return nil, err
		}
	}
	if v.failure != nil && v.conf.PathRecorder != nil {
		v.conf.PathRecorder.dumpPartial(v)
	}
	// Drain buffers so FinalMem is a plain memory image.
	for _, t := range v.threads {
		if t.buf != nil {
			t.buf.drainAll(v.mem)
		}
	}
	res := &Result{
		Failure:       v.failure,
		Instructions:  v.instructions,
		Branches:      v.branches,
		VisibleEvents: v.visible,
		Output:        v.output,
		FinalMem:      append([]int64(nil), v.mem...),
		Threads:       len(v.threads),
	}
	if v.conf.PathRecorder != nil {
		res.PathLog = v.conf.PathRecorder.Log
	}
	if v.conf.LeapRecorder != nil {
		res.LeapLog = v.conf.LeapRecorder.Log
	}
	return res, nil
}

func (v *VM) allFinished() bool {
	for _, t := range v.threads {
		if t.state != stFinished {
			return false
		}
	}
	return true
}

func (v *VM) describeBlocked() string {
	var parts []string
	for _, t := range v.threads {
		switch t.state {
		case stBlockedLock:
			parts = append(parts, fmt.Sprintf("t%d waits for mutex %s", t.ID, v.prog.Mutexes[t.waitMutex]))
		case stBlockedCond:
			parts = append(parts, fmt.Sprintf("t%d waits on cond %s", t.ID, v.prog.Conds[t.waitCond]))
		case stSignaled:
			parts = append(parts, fmt.Sprintf("t%d reacquiring mutex %s", t.ID, v.prog.Mutexes[t.waitMutex]))
		case stBlockedJoin:
			parts = append(parts, fmt.Sprintf("t%d joins t%d", t.ID, t.waitChild))
		}
	}
	if len(parts) == 0 {
		return "all runnable threads stuck"
	}
	s := parts[0]
	for _, p := range parts[1:] {
		s += "; " + p
	}
	return s
}

// EnabledActions enumerates the schedulable actions in a deterministic
// order: thread run actions by thread id, then drain actions by thread id
// and address.
func (v *VM) EnabledActions() []Action {
	var acts []Action
	for _, t := range v.threads {
		if v.canRun(t) {
			acts = append(acts, Action{Kind: ActRun, Thread: t.ID})
		}
	}
	for _, t := range v.threads {
		if t.buf == nil {
			continue
		}
		for _, addr := range t.buf.drainableAddrs() {
			acts = append(acts, Action{Kind: ActDrain, Thread: t.ID, Addr: addr})
		}
	}
	sort.Slice(acts, func(i, j int) bool {
		if acts[i].Kind != acts[j].Kind {
			return acts[i].Kind < acts[j].Kind
		}
		if acts[i].Thread != acts[j].Thread {
			return acts[i].Thread < acts[j].Thread
		}
		return acts[i].Addr < acts[j].Addr
	})
	return acts
}

// canRun reports whether a run action for t can make progress right now.
func (v *VM) canRun(t *Thread) bool {
	switch t.state {
	case stCreated, stRunnable, stExiting:
		return true
	case stSignaled:
		return !v.mutexes[t.waitMutex].held
	case stBlockedLock:
		return !v.mutexes[t.waitMutex].held
	case stBlockedJoin:
		return v.threads[t.waitChild].state == stFinished
	default:
		return false
	}
}
