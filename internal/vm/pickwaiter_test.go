package vm

import (
	"testing"

	"repro/internal/ir"
)

// TestPickWaiterControlsWakeOrder: with three waiters on one condition
// variable and three signals, the PickWaiter hook decides which thread
// wakes on each signal; choosing highest-id-first must produce the reverse
// of the default (lowest-id-first) completion order.
func TestPickWaiterControlsWakeOrder(t *testing.T) {
	src := `
int gate;
int order0[4];
int pos;
mutex m;
cond c;
func waiter(id) {
	lock(m);
	while (gate == 0) {
		wait(c, m);
	}
	int p = pos;
	order0[p % 4] = id;
	pos = p + 1;
	// Chain: wake the next waiter (gate stays open).
	signal(c);
	unlock(m);
}
func main() {
	int h1 = spawn waiter(1);
	int h2 = spawn waiter(2);
	int h3 = spawn waiter(3);
	yield();
	yield();
	yield();
	lock(m);
	gate = 1;
	signal(c);
	unlock(m);
	join(h1);
	join(h2);
	join(h3);
}
`
	runWith := func(pick func(c ir.SyncID, ws []ThreadID) ThreadID) []int64 {
		prog := compile(t, src)
		// A deterministic scheduler that runs threads round-robin; all
		// waiters must be waiting before main signals (the yields plus
		// round-robin make that so for this program).
		v, err := New(prog, Config{
			Sched:      &RoundRobinScheduler{},
			PickWaiter: pick,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := v.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure != nil {
			t.Fatalf("unexpected failure: %v", res.Failure)
		}
		return res.FinalMem[1:4] // order0 array contents (ids in wake order)
	}
	asc := runWith(nil) // default: lowest id first
	desc := runWith(func(c ir.SyncID, ws []ThreadID) ThreadID {
		best := ws[0]
		for _, w := range ws {
			if w > best {
				best = w
			}
		}
		return best
	})
	if asc[0] == desc[0] && asc[1] == desc[1] && asc[2] == desc[2] {
		t.Fatalf("PickWaiter had no effect: asc=%v desc=%v", asc, desc)
	}
}
