package vm

import (
	"testing"
)

// TestDrainEventsObservable: under TSO, scheduler-driven drains surface as
// EvDrain events carrying the drained value, and they are not counted as
// SAPs.
func TestDrainEventsObservable(t *testing.T) {
	prog := compile(t, `
int x;
int y;
func main() {
	x = 1;
	y = 2;
	int v = x;
	print(v);
}
`)
	var drains []VisibleEvent
	var saps int64
	v, err := New(prog, Config{
		Model: TSO,
		// DrainBias 100: always drain when possible.
		Sched: &RandomSchedulerForcedDrains{},
		OnVisible: func(ev VisibleEvent) {
			if ev.Kind == EvDrain {
				drains = append(drains, ev)
			} else {
				saps++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil {
		t.Fatal(res.Failure)
	}
	if len(drains) == 0 {
		t.Fatal("no drain events observed under TSO")
	}
	if res.VisibleEvents != saps {
		t.Errorf("SAP count %d != non-drain events %d (drains must not count)", res.VisibleEvents, saps)
	}
	// The first drain must carry x's value 1 (FIFO).
	if drains[0].Value != 1 || drains[0].Addr != 0 {
		t.Errorf("first drain = %+v, want x=1@0", drains[0])
	}
	if res.FinalMem[0] != 1 || res.FinalMem[1] != 2 {
		t.Errorf("final mem = %v", res.FinalMem[:2])
	}
}

// RandomSchedulerForcedDrains prefers drain actions whenever available.
type RandomSchedulerForcedDrains struct{}

// Pick implements Scheduler.
func (s *RandomSchedulerForcedDrains) Pick(v *VM, actions []Action) int {
	for i, a := range actions {
		if a.Kind == ActDrain {
			return i
		}
	}
	return 0
}

// TestStoreForwardingUnderTSO: a thread always sees its own buffered store
// even before it drains.
func TestStoreForwardingUnderTSO(t *testing.T) {
	prog := compile(t, `
int x;
func main() {
	x = 41;
	int v = x;
	x = v + 1;
	int w = x;
	print(w);
}
`)
	// Never drain until forced (scheduler avoids drain actions).
	v, err := New(prog, Config{
		Model: TSO,
		Sched: FuncScheduler(func(v *VM, actions []Action) int {
			for i, a := range actions {
				if a.Kind == ActRun {
					return i
				}
			}
			return 0
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 42 {
		t.Fatalf("output = %v, want [42] (store forwarding broken)", res.Output)
	}
	if res.FinalMem[0] != 42 {
		t.Fatalf("final x = %d, want 42 (exit drain broken)", res.FinalMem[0])
	}
}
