package vm

import (
	"sync"

	"repro/internal/ballarus"
	"repro/internal/ir"
	"repro/internal/trace"
)

// pathTracker aliases the Ball–Larus tracker so frames can embed one
// without importing ballarus at every use site.
type pathTracker = *ballarus.Tracker

// PathRecorder implements CLAP's runtime recording: per-thread Ball–Larus
// path logs with no synchronization whatsoever. All appends touch only the
// recorded thread's own log, mirroring the paper's "logging purely local
// execution of each thread".
type PathRecorder struct {
	// Paths is the per-function BL numbering, shared with the decoder.
	Paths []*ballarus.FuncPaths
	// Log accumulates the per-thread event streams.
	Log *trace.PathLog
}

// NewPathRecorder prepares CLAP recording for prog.
func NewPathRecorder(prog *ir.Program) (*PathRecorder, error) {
	paths, err := ballarus.ProgramPaths(prog)
	if err != nil {
		return nil, err
	}
	return &PathRecorder{Paths: paths, Log: &trace.PathLog{}}, nil
}

// threadStarted registers the thread's identity and its root activation.
func (r *PathRecorder) threadStarted(t ThreadID, key ThreadKey) {
	r.Log.SetThreadMeta(t, key.Parent, key.Index)
}

// enter begins an activation: appends the enter event and arms the frame's
// tracker.
func (r *PathRecorder) enter(t ThreadID, fr *frame) {
	fr.trk = ballarus.NewTracker(r.Paths[fr.fn.ID])
	r.Log.Append(t, trace.Event{Kind: trace.EvEnter, Arg: uint64(fr.fn.ID)})
}

// edge records a CFG edge traversal; back edges emit the completed segment.
func (r *PathRecorder) edge(t ThreadID, fr *frame, from, to ir.BlockID) {
	if fr.trk == nil {
		return
	}
	if id, emit := fr.trk.TakeEdge(from, to); emit {
		r.Log.Append(t, trace.Event{Kind: trace.EvPath, Arg: id})
	}
}

// returned closes an activation normally.
func (r *PathRecorder) returned(t ThreadID, fr *frame, from ir.BlockID) {
	if fr.trk == nil {
		return
	}
	r.Log.Append(t, trace.Event{Kind: trace.EvPath, Arg: fr.trk.Return(from)})
	r.Log.Append(t, trace.Event{Kind: trace.EvExit})
}

// dumpPartial flushes the in-flight segments of every live thread when the
// failure fires. Frames are closed innermost-first so the event stream
// stays properly nested. Each partial event carries the in-flight path
// sum, the number of blocks executed in the segment, and a cut position:
// 2*ip + half, where ip is the count of fully executed instructions in the
// final block and half marks a wait whose release half (WaitBegin) has
// executed.
func (r *PathRecorder) dumpPartial(v *VM) {
	for _, t := range v.threads {
		if t.state == stFinished {
			continue
		}
		for i := len(t.frames) - 1; i >= 0; i-- {
			fr := t.frames[i]
			if fr.trk == nil {
				continue
			}
			cut := uint64(fr.ip) * 2
			if i == len(t.frames)-1 && (t.state == stBlockedCond || t.state == stSignaled) {
				cut++
			}
			r.Log.Append(t.ID, trace.Event{
				Kind: trace.EvPartial,
				Arg:  fr.trk.PartialSum(),
				Arg2: uint64(fr.trk.PartialBlocks()),
			})
			r.Log.AppendCut(t.ID, cut)
		}
	}
}

// SyncOrderRecorder implements the paper's §6.4 extension: record the
// global order of synchronization operations at runtime. The paper leaves
// it off by default because "it would need extra synchronization
// operations, which could limit our ability to capture non-sequential
// bugs" — accordingly the recorder takes a real mutex per append, and the
// ablation benchmarks measure both the runtime cost and the constraint
// shrinkage it buys.
type SyncOrderRecorder struct {
	Log *trace.SyncOrderLog
	mu  sync.Mutex
}

// NewSyncOrderRecorder prepares sync-order recording.
func NewSyncOrderRecorder() *SyncOrderRecorder {
	return &SyncOrderRecorder{Log: &trace.SyncOrderLog{}}
}

func (r *SyncOrderRecorder) record(t ThreadID) {
	r.mu.Lock()
	r.Log.Append(t)
	r.mu.Unlock()
}

// LeapRecorder implements the LEAP baseline: every shared access appends
// the accessing thread to the variable's access vector under a per-variable
// mutex. The mutex is what LEAP's soundness requires (the access vector
// must reflect the true global access order) and what makes LEAP slow and
// fence-happy — the cost Table 2 quantifies.
type LeapRecorder struct {
	Log *trace.AccessVectorLog
	mus []sync.Mutex
}

// NewLeapRecorder prepares LEAP recording for prog. The vector space
// covers the globals plus one pseudo-variable per mutex and condition
// variable (LEAP orders sync-object accesses too; see MutexPseudoVar).
func NewLeapRecorder(prog *ir.Program) *LeapRecorder {
	n := len(prog.Globals) + len(prog.Mutexes) + len(prog.Conds)
	return &LeapRecorder{
		Log: &trace.AccessVectorLog{},
		mus: make([]sync.Mutex, n),
	}
}

// access records one shared access.
func (r *LeapRecorder) access(v int, t ThreadID) {
	r.mus[v].Lock()
	r.Log.Append(v, t)
	r.mus[v].Unlock()
}
