package vm

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/trace"
)

// TestGateAccessBlocksUntilAllowed: a gate that denies thread 1's writes
// until thread 2 has written forces the write order regardless of the
// scheduler.
func TestGateAccessBlocksUntilAllowed(t *testing.T) {
	prog := compile(t, `
int x;
func w1() { x = 1; }
func w2() { x = 2; }
func main() {
	int h1 = spawn w1();
	int h2 = spawn w2();
	join(h1);
	join(h2);
}
`)
	for seed := int64(0); seed < 20; seed++ {
		t2Wrote := false
		v, err := New(prog, Config{
			Sched: NewRandomScheduler(seed),
			GateAccess: func(tid ThreadID, g ir.GlobalID, isWrite bool) bool {
				if tid == 1 && !t2Wrote {
					return false // thread 1 must wait for thread 2
				}
				return true
			},
			OnVisible: func(ev VisibleEvent) {
				if ev.Kind == EvWrite && ev.Thread == 2 {
					t2Wrote = true
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := v.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
		// Thread 1 wrote last under every seed: x must be 1.
		if res.FinalMem[0] != 1 {
			t.Fatalf("seed %d: x = %d, want 1 (gate did not order the writes)", seed, res.FinalMem[0])
		}
	}
}

// TestSyncOrderRecorderCapturesGlobalOrder: the recorded sync order lists
// one entry per sync SAP, in execution order.
func TestSyncOrderRecorderCapturesGlobalOrder(t *testing.T) {
	prog := compile(t, `
int x;
mutex m;
func child() {
	lock(m);
	x = 1;
	unlock(m);
}
func main() {
	int h = spawn child();
	lock(m);
	x = 2;
	unlock(m);
	join(h);
}
`)
	rec := NewSyncOrderRecorder()
	var syncEvents int
	v, err := New(prog, Config{
		Sched:        NewRandomScheduler(3),
		SyncRecorder: rec,
		OnVisible: func(ev VisibleEvent) {
			if ev.Kind != EvRead && ev.Kind != EvWrite && ev.Kind != EvDrain {
				syncEvents++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Log.Seq) != syncEvents {
		t.Fatalf("sync order has %d entries, %d sync events occurred", len(rec.Log.Seq), syncEvents)
	}
	// Round-trip.
	dec, err := trace.DecodeSyncOrderLog(rec.Log.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Seq) != len(rec.Log.Seq) {
		t.Fatal("sync order encoding lost entries")
	}
}
