package vm

import (
	"fmt"

	"repro/internal/ir"
)

// ActionKind classifies schedulable actions.
type ActionKind uint8

// Action kinds.
const (
	// ActRun advances one thread through its next visible event.
	ActRun ActionKind = iota
	// ActDrain makes one buffered store visible to memory (TSO/PSO only).
	ActDrain
)

// Action is one schedulable step. For ActDrain, Addr selects which
// address's buffer to drain (TSO drains are only enabled for the buffer
// head's address, preserving FIFO order).
type Action struct {
	Kind   ActionKind
	Thread ThreadID
	Addr   int
}

// String renders the action.
func (a Action) String() string {
	if a.Kind == ActRun {
		return fmt.Sprintf("run(t%d)", a.Thread)
	}
	return fmt.Sprintf("drain(t%d,@%d)", a.Thread, a.Addr)
}

// EventKind classifies visible events. Reads, writes and the sync events
// are the paper's SAPs; Start/Exit are the per-thread pseudo-operations
// fork and join map to; Drain is the memory-visibility event of a buffered
// store under TSO/PSO.
type EventKind uint8

// Visible event kinds.
const (
	EvStart EventKind = iota
	EvExit
	EvRead
	EvWrite
	EvLock
	EvUnlock
	EvWaitBegin // releases the mutex and starts waiting (unlock half of wait)
	EvWaitEnd   // woken by a signal and mutex reacquired (lock half of wait)
	EvSignal
	EvBroadcast
	EvJoin
	EvYield
	EvFence
	EvSpawn
	EvDrain
)

var eventNames = map[EventKind]string{
	EvStart: "start", EvExit: "exit", EvRead: "read", EvWrite: "write",
	EvLock: "lock", EvUnlock: "unlock", EvWaitBegin: "wait-begin",
	EvWaitEnd: "wait-end", EvSignal: "signal", EvBroadcast: "broadcast",
	EvJoin: "join", EvYield: "yield", EvFence: "fence", EvSpawn: "spawn",
	EvDrain: "drain",
}

// String names the kind.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// IsSAP reports whether the event is a shared access point in the paper's
// sense (participates in the computed schedule).
func (k EventKind) IsSAP() bool { return k != EvDrain }

// VisibleEvent describes one executed visible event, delivered to the
// Config.OnVisible observer.
type VisibleEvent struct {
	Kind   EventKind
	Thread ThreadID
	// Time is the event's logical timestamp: its index in the run's global
	// visible-event sequence (drains included), starting at 0. Deterministic
	// for a fixed schedule, unlike wall clock, which is what lets timeline
	// artifacts built from these events be byte-identical across runs.
	Time int64
	// Addr and Var identify the memory location for reads/writes/drains.
	Addr int
	Var  ir.GlobalID
	// Value is the value read, written or drained.
	Value int64
	// Obj is the mutex id (lock/unlock), or the cond id (wait-begin,
	// wait-end, signal, broadcast). For the wait pair Obj2 carries the
	// mutex id released/reacquired by the wait.
	Obj  ir.SyncID
	Obj2 ir.SyncID
	// Other is the counterpart thread for spawn and join.
	Other ThreadID
}

// String renders the event.
func (e VisibleEvent) String() string {
	switch e.Kind {
	case EvRead, EvWrite, EvDrain:
		return fmt.Sprintf("t%d:%s@%d=%d", e.Thread, e.Kind, e.Addr, e.Value)
	case EvSpawn, EvJoin:
		return fmt.Sprintf("t%d:%s(t%d)", e.Thread, e.Kind, e.Other)
	case EvLock, EvUnlock, EvWaitBegin, EvWaitEnd, EvSignal, EvBroadcast:
		return fmt.Sprintf("t%d:%s(%d)", e.Thread, e.Kind, e.Obj)
	}
	return fmt.Sprintf("t%d:%s", e.Thread, e.Kind)
}
