package vm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/trace"
)

// recordRun executes src with CLAP path recording under the given scheduler
// and also captures the ground-truth block trace per thread via a shadow
// observer for comparison.
func recordRun(t *testing.T, src string, sched Scheduler, model MemModel) (*ir.Program, *Result, *PathRecorder) {
	t.Helper()
	prog := compile(t, src)
	rec, err := NewPathRecorder(prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(prog, Config{Model: model, Sched: sched, PathRecorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	return prog, res, rec
}

func TestPathLogCompleteRun(t *testing.T) {
	_, res, rec := recordRun(t, `
int x;
func helper(v) {
	int i;
	for (i = 0; i < v; i = i + 1) {
		x = x + 1;
	}
}
func main() {
	helper(3);
	helper(0);
}
`, &RoundRobinScheduler{}, SC)
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
	log := rec.Log
	if len(log.Threads) != 1 {
		t.Fatalf("threads = %d, want 1", len(log.Threads))
	}
	evs := log.Threads[0].Events
	// Stream must nest: main enter, helper enter/exit twice, main exit.
	var depth, maxDepth int
	enters := 0
	for _, e := range evs {
		switch e.Kind {
		case trace.EvEnter:
			depth++
			enters++
			if depth > maxDepth {
				maxDepth = depth
			}
		case trace.EvExit:
			depth--
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced enter/exit: depth %d at end", depth)
	}
	if enters != 3 {
		t.Fatalf("enters = %d, want 3 (main + 2 helper calls)", enters)
	}
	if maxDepth != 2 {
		t.Fatalf("max depth = %d, want 2", maxDepth)
	}
	// Round-trip the encoding.
	decoded, err := trace.DecodePathLog(log.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(decoded.Threads[0].Events) != fmt.Sprint(evs) {
		t.Fatal("encode/decode changed the event stream")
	}
}

func TestPathLogMultiThread(t *testing.T) {
	_, res, rec := recordRun(t, `
int x;
func child(n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		x = x + 1;
	}
}
func main() {
	int h1;
	int h2;
	h1 = spawn child(2);
	h2 = spawn child(4);
	join(h1);
	join(h2);
}
`, NewRandomScheduler(3), SC)
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
	log := rec.Log
	if len(log.Threads) != 3 {
		t.Fatalf("threads = %d, want 3", len(log.Threads))
	}
	if log.Threads[0].Parent != -1 {
		t.Errorf("main parent = %d, want -1", log.Threads[0].Parent)
	}
	if log.Threads[1].Parent != 0 || log.Threads[1].Index != 0 {
		t.Errorf("child1 meta = (%d,%d), want (0,0)", log.Threads[1].Parent, log.Threads[1].Index)
	}
	if log.Threads[2].Parent != 0 || log.Threads[2].Index != 1 {
		t.Errorf("child2 meta = (%d,%d), want (0,1)", log.Threads[2].Parent, log.Threads[2].Index)
	}
}

func TestPathLogPartialOnFailure(t *testing.T) {
	// The failing thread is cut mid-loop; its log must end with a partial
	// event carrying a cut position, and every live thread's log must be
	// closed by partial events.
	_, res, rec := recordRun(t, `
int x;
func spinner() {
	int i;
	for (i = 0; i < 1000000; i = i + 1) {
		x = x + 1;
	}
}
func main() {
	int h;
	h = spawn spinner();
	int v = x;
	yield();
	v = x;
	assert(v == -1, "trigger");
}
`, NewRandomScheduler(1), SC)
	if res.Failure == nil || res.Failure.Kind != FailAssert {
		t.Fatalf("failure = %v, want assert", res.Failure)
	}
	log := rec.Log
	for _, tl := range log.Threads {
		if len(tl.Events) == 0 {
			continue
		}
		last := tl.Events[len(tl.Events)-1]
		if last.Kind != trace.EvPartial {
			t.Errorf("thread %d log must end with a partial event, got %s", tl.Thread, last.Kind)
		}
		partials := 0
		for _, e := range tl.Events {
			if e.Kind == trace.EvPartial {
				partials++
			}
		}
		if len(tl.Cuts) != partials {
			t.Errorf("thread %d: %d cuts for %d partial events", tl.Thread, len(tl.Cuts), partials)
		}
	}
	// Round-trip with cuts.
	decoded, err := trace.DecodePathLog(log.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := range log.Threads {
		if fmt.Sprint(decoded.Threads[i].Cuts) != fmt.Sprint(log.Threads[i].Cuts) {
			t.Fatal("cuts lost in encoding")
		}
	}
}

func TestLeapRecorderOrders(t *testing.T) {
	prog := compile(t, `
int x;
int y;
func child() {
	x = 1;
	y = 2;
}
func main() {
	int h;
	h = spawn child();
	join(h);
	int v = x;
	print(v);
}
`)
	leap := NewLeapRecorder(prog)
	v, err := New(prog, Config{Sched: &RoundRobinScheduler{}, LeapRecorder: leap})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	// x (var 0) accessed by t1 (write) then t0 (read); y (var 1) by t1.
	if fmt.Sprint(leap.Log.Vectors[0]) != "[1 0]" {
		t.Errorf("x access vector = %v, want [1 0]", leap.Log.Vectors[0])
	}
	if fmt.Sprint(leap.Log.Vectors[1]) != "[1]" {
		t.Errorf("y access vector = %v, want [1]", leap.Log.Vectors[1])
	}
	if leap.Log.AccessCount() != 3 {
		t.Errorf("access count = %d, want 3", leap.Log.AccessCount())
	}
}

func TestClapLogSmallerThanLeap(t *testing.T) {
	// A loop with many shared accesses but simple control flow: CLAP's log
	// (a few path ids) must be far smaller than LEAP's (one entry per
	// access) — the paper's 72–97.7% space reduction.
	src := `
int c;
func worker() {
	int i;
	for (i = 0; i < 500; i = i + 1) {
		int t = c;
		c = t + 1;
	}
}
func main() {
	int h1;
	int h2;
	h1 = spawn worker();
	h2 = spawn worker();
	join(h1);
	join(h2);
}
`
	prog := compile(t, src)
	clap, err := NewPathRecorder(prog)
	if err != nil {
		t.Fatal(err)
	}
	leap := NewLeapRecorder(prog)
	v, err := New(prog, Config{Sched: NewRandomScheduler(5), PathRecorder: clap, LeapRecorder: leap})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	clapSize := clap.Log.Size()
	leapSize := leap.Log.Size()
	if clapSize*2 >= leapSize {
		t.Fatalf("CLAP log (%dB) not substantially smaller than LEAP log (%dB)", clapSize, leapSize)
	}
}

func TestStoreBufferUnit(t *testing.T) {
	mem := make([]int64, 4)
	b := newStoreBuffer(TSO)
	if !b.empty() {
		t.Fatal("new buffer must be empty")
	}
	b.push(1, 10)
	b.push(2, 20)
	b.push(1, 11)
	if v, ok := b.lookup(1); !ok || v != 11 {
		t.Fatalf("lookup(1) = %d,%v; want 11 (youngest wins)", v, ok)
	}
	if got := b.drainableAddrs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("TSO drainable = %v, want [1] (head only)", got)
	}
	if _, ok := b.drain(2, mem); ok {
		t.Fatal("TSO must not drain out of order")
	}
	if v, ok := b.drain(1, mem); !ok || v != 10 {
		t.Fatalf("drain head = %d,%v; want 10", v, ok)
	}
	if mem[1] != 10 {
		t.Fatal("drain must write memory")
	}
	b.drainAll(mem)
	if mem[1] != 11 || mem[2] != 20 || !b.empty() {
		t.Fatalf("drainAll wrong: mem=%v", mem)
	}

	p := newStoreBuffer(PSO)
	p.push(1, 1)
	p.push(2, 2)
	p.push(1, 3)
	if got := p.drainableAddrs(); fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("PSO drainable = %v, want [1 2]", got)
	}
	if v, ok := p.drain(2, mem); !ok || v != 2 {
		t.Fatalf("PSO drain(2) = %d,%v", v, ok)
	}
	if v, ok := p.drain(1, mem); !ok || v != 1 {
		t.Fatalf("PSO drain(1) = %d,%v; want oldest-per-address", v, ok)
	}
	if p.pending() != 1 {
		t.Fatalf("pending = %d, want 1", p.pending())
	}
}

func TestModelString(t *testing.T) {
	if SC.String() != "SC" || TSO.String() != "TSO" || PSO.String() != "PSO" {
		t.Error("model names wrong")
	}
	if !strings.Contains(MemModel(9).String(), "model") {
		t.Error("unknown model must render")
	}
}

func TestFailureKindString(t *testing.T) {
	if FailAssert.String() != "assertion violation" ||
		FailDeadlock.String() != "deadlock" ||
		FailRuntime.String() != "runtime error" {
		t.Error("failure kind names wrong")
	}
}

func TestActionAndEventStrings(t *testing.T) {
	if (Action{Kind: ActRun, Thread: 2}).String() != "run(t2)" {
		t.Error("run action renders wrong")
	}
	if (Action{Kind: ActDrain, Thread: 1, Addr: 3}).String() != "drain(t1,@3)" {
		t.Error("drain action renders wrong")
	}
	ev := VisibleEvent{Kind: EvRead, Thread: 1, Addr: 2, Value: 9}
	if ev.String() != "t1:read@2=9" {
		t.Errorf("event renders %q", ev.String())
	}
}
