package vm

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/symbolic"
)

// perform executes one scheduled action. Errors of type *Failure stop the
// run as a recorded failure; other errors are internal.
func (v *VM) perform(a Action) error {
	t := v.threads[a.Thread]
	if a.Kind == ActDrain {
		val, ok := t.buf.drain(a.Addr, v.mem)
		if !ok {
			return fmt.Errorf("vm: drain action for t%d@%d with no pending store", a.Thread, a.Addr)
		}
		v.observe(VisibleEvent{
			Kind: EvDrain, Thread: t.ID, Addr: a.Addr,
			Var: v.addrVar[a.Addr], Value: val,
		})
		return nil
	}
	return v.runThread(t)
}

// observe delivers an event to the OnVisible observer, stamping its
// logical time, and counts SAPs.
func (v *VM) observe(ev VisibleEvent) {
	ev.Time = v.eventClock
	v.eventClock++
	if ev.Kind.IsSAP() {
		v.visible++
		v.threads[ev.Thread].visibleCount++
		if v.conf.SyncRecorder != nil && ev.Kind != EvRead && ev.Kind != EvWrite {
			v.conf.SyncRecorder.record(ev.Thread)
		}
	}
	if v.conf.OnVisible != nil {
		v.conf.OnVisible(ev)
	}
}

// runtimeFail builds a runtime-error failure for thread t.
func (v *VM) runtimeFail(t *Thread, format string, args ...any) *Failure {
	return &Failure{
		Kind: FailRuntime, Thread: t.ID,
		Msg:          fmt.Sprintf(format, args...),
		VisibleIndex: t.visibleCount,
	}
}

// runThread advances t through at most one visible event.
func (v *VM) runThread(t *Thread) error {
	switch t.state {
	case stCreated:
		t.state = stRunnable
		v.observe(VisibleEvent{Kind: EvStart, Thread: t.ID})
		return nil
	case stExiting:
		return v.finishThread(t)
	case stBlockedLock:
		m := t.waitMutex
		if v.mutexes[m].held {
			return nil // lost the race to another waiter; stay blocked
		}
		if v.gated(t, MutexPseudoVar(v.prog, m), true) {
			return nil
		}
		v.acquire(t, m)
		v.leapAccess(t, MutexPseudoVar(v.prog, m))
		t.state = stRunnable
		v.topFrame(t).ip++
		v.observe(VisibleEvent{Kind: EvLock, Thread: t.ID, Obj: ir.SyncID(m)})
		return nil
	case stSignaled:
		m := t.waitMutex
		if v.mutexes[m].held {
			return nil
		}
		if v.gated(t, MutexPseudoVar(v.prog, m), true) {
			return nil
		}
		v.acquire(t, m)
		v.leapAccess(t, MutexPseudoVar(v.prog, m))
		t.state = stRunnable
		v.topFrame(t).ip++
		v.observe(VisibleEvent{Kind: EvWaitEnd, Thread: t.ID, Obj: ir.SyncID(t.waitCond), Obj2: ir.SyncID(m)})
		return nil
	case stBlockedJoin:
		child := v.threads[t.waitChild]
		if child.state != stFinished {
			return nil
		}
		t.state = stRunnable
		v.topFrame(t).ip++
		v.observe(VisibleEvent{Kind: EvJoin, Thread: t.ID, Other: child.ID})
		return nil
	case stRunnable:
		return v.runUntilVisible(t)
	case stFinished, stBlockedCond:
		return fmt.Errorf("vm: run action on thread %d in state %d", t.ID, t.state)
	}
	return fmt.Errorf("vm: unknown thread state %d", t.state)
}

func (v *VM) topFrame(t *Thread) *frame { return t.frames[len(t.frames)-1] }

// finishThread emits the Exit event and marks t finished.
func (v *VM) finishThread(t *Thread) error {
	t.state = stFinished
	// Drain the store buffer: a finished thread's stores are visible.
	if t.buf != nil {
		t.buf.drainAll(v.mem)
	}
	v.observe(VisibleEvent{Kind: EvExit, Thread: t.ID})
	// Joiners become schedulable via canRun; nothing to do here.
	return nil
}

// acquire takes mutex m for t, draining the store buffer first: lock
// operations are memory barriers, which is exactly why the paper's relaxed
// bugs only appear in lock-free code.
func (v *VM) acquire(t *Thread, m int) {
	if t.buf != nil {
		t.buf.drainAll(v.mem)
	}
	v.mutexes[m].held = true
	v.mutexes[m].owner = t.ID
}

func (v *VM) release(t *Thread, m int) {
	if t.buf != nil {
		t.buf.drainAll(v.mem)
	}
	v.mutexes[m].held = false
}

// runUntilVisible executes local instructions until one visible event has
// been performed, the thread blocks, or it exits.
func (v *VM) runUntilVisible(t *Thread) error {
	for {
		fr := v.topFrame(t)
		if fr.ip >= len(fr.block.Instrs) {
			visible, err := v.execTerminator(t, fr)
			if err != nil {
				return err
			}
			if visible {
				return nil
			}
			continue
		}
		in := fr.block.Instrs[fr.ip]
		visible, err := v.execInstr(t, fr, in)
		if err != nil {
			return err
		}
		if visible {
			return nil
		}
	}
}

// execTerminator runs fr's block terminator. It reports visible=true only
// when a Return ends the whole thread.
func (v *VM) execTerminator(t *Thread, fr *frame) (bool, error) {
	v.instructions++
	switch term := fr.block.Term.(type) {
	case *ir.Jump:
		v.takeEdge(t, fr, fr.block.ID, term.Target.ID)
		fr.block = term.Target
		fr.ip = 0
		return false, nil
	case *ir.Branch:
		v.branches++
		c := fr.regs[term.Cond]
		if !c.IsBool {
			return false, v.runtimeFail(t, "branch on non-boolean value %s", c)
		}
		target := term.Else
		if c.B {
			target = term.Then
		}
		v.takeEdge(t, fr, fr.block.ID, target.ID)
		fr.block = target
		fr.ip = 0
		return false, nil
	case *ir.Return:
		ret := IntVal(0)
		if term.Src != ir.NoReg {
			ret = fr.regs[term.Src]
		}
		if v.conf.PathRecorder != nil {
			v.conf.PathRecorder.returned(t.ID, fr, fr.block.ID)
		}
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.frames) == 0 {
			// Root return: the Exit event is this action's visible event.
			return true, v.finishThread(t)
		}
		caller := v.topFrame(t)
		if fr.retReg != ir.NoReg {
			caller.regs[fr.retReg] = ret
		}
		return false, nil
	}
	return false, fmt.Errorf("vm: unknown terminator %T", fr.block.Term)
}

// takeEdge feeds the Ball–Larus recorder.
func (v *VM) takeEdge(t *Thread, fr *frame, from, to ir.BlockID) {
	if v.conf.PathRecorder != nil {
		v.conf.PathRecorder.edge(t.ID, fr, from, to)
	}
}

// leapAccess feeds the LEAP baseline recorder.
func (v *VM) leapAccess(t *Thread, g ir.GlobalID) {
	if v.conf.LeapRecorder != nil {
		v.conf.LeapRecorder.access(int(g), t.ID)
	}
}

// MutexPseudoVar and CondPseudoVar give synchronization objects identities
// in the LEAP access-vector space: LEAP records and enforces the order of
// accesses to sync objects exactly like data accesses (otherwise lock
// acquisition races make its replay diverge).
func MutexPseudoVar(prog *ir.Program, m int) ir.GlobalID {
	return ir.GlobalID(len(prog.Globals) + m)
}

// CondPseudoVar returns the pseudo-variable of a condition variable.
func CondPseudoVar(prog *ir.Program, c int) ir.GlobalID {
	return ir.GlobalID(len(prog.Globals) + len(prog.Mutexes) + c)
}

// isShared reports whether accesses to global g are visible events.
func (v *VM) isShared(g ir.GlobalID) bool {
	return v.conf.Shared == nil || v.conf.Shared[g]
}

// demoted reports whether accesses to shared global g were demoted from
// scheduling points: they keep shared-memory semantics but are neither
// visible events nor LEAP accesses, and execution continues within the
// same run action.
func (v *VM) demoted(g ir.GlobalID) bool {
	return v.conf.Demoted != nil && v.conf.Demoted[g]
}

// gated reports whether the access must wait (GateAccess said no). The
// instruction is left unexecuted: ip stays put, the run action ends, and
// the access retries on the thread's next turn.
func (v *VM) gated(t *Thread, g ir.GlobalID, isWrite bool) bool {
	return v.conf.GateAccess != nil && !v.conf.GateAccess(t.ID, g, isWrite)
}

// loadShared performs a shared read at addr for t, honoring the replay
// value-injection hook and the thread's own store buffer.
func (v *VM) loadShared(t *Thread, addr int) int64 {
	if v.conf.ReadValue != nil {
		if val, ok := v.conf.ReadValue(t.ID, addr); ok {
			return val
		}
	}
	if t.buf != nil {
		if val, ok := t.buf.lookup(addr); ok {
			return val
		}
	}
	return v.mem[addr]
}

// storeShared performs a shared write.
func (v *VM) storeShared(t *Thread, addr int, val int64) {
	if t.buf != nil {
		t.buf.push(addr, val)
		return
	}
	v.mem[addr] = val
}

// execInstr executes one instruction, reporting whether it was a visible
// event (in which case the run action ends). Blocking sync operations do
// not advance ip; the retry paths in runThread complete them.
func (v *VM) execInstr(t *Thread, fr *frame, in ir.Instr) (bool, error) {
	v.instructions++
	switch x := in.(type) {
	case *ir.Const:
		fr.regs[x.Dst] = IntVal(x.V)
	case *ir.ConstBool:
		fr.regs[x.Dst] = BoolVal(x.V)
	case *ir.Mov:
		fr.regs[x.Dst] = fr.regs[x.Src]
	case *ir.UnOp:
		val, err := v.evalUnOp(t, x.Op, fr.regs[x.X])
		if err != nil {
			return false, err
		}
		fr.regs[x.Dst] = val
	case *ir.BinOp:
		val, err := v.evalBinOp(t, x.Op, fr.regs[x.X], fr.regs[x.Y])
		if err != nil {
			return false, err
		}
		fr.regs[x.Dst] = val
	case *ir.LoadG:
		addr := v.base[x.Global]
		if !v.isShared(x.Global) {
			fr.regs[x.Dst] = IntVal(v.mem[addr])
			break
		}
		if v.demoted(x.Global) {
			fr.regs[x.Dst] = IntVal(v.loadShared(t, addr))
			break
		}
		if v.gated(t, x.Global, false) {
			return true, nil
		}
		val := v.loadShared(t, addr)
		fr.regs[x.Dst] = IntVal(val)
		fr.ip++
		v.leapAccess(t, x.Global)
		v.observe(VisibleEvent{Kind: EvRead, Thread: t.ID, Addr: addr, Var: x.Global, Value: val})
		return true, nil
	case *ir.StoreG:
		src := fr.regs[x.Src]
		if src.IsBool {
			return false, v.runtimeFail(t, "storing boolean to global %s", v.prog.Globals[x.Global].Name)
		}
		addr := v.base[x.Global]
		if !v.isShared(x.Global) {
			v.mem[addr] = src.I
			break
		}
		if v.demoted(x.Global) {
			v.storeShared(t, addr, src.I)
			break
		}
		if v.gated(t, x.Global, true) {
			return true, nil
		}
		v.storeShared(t, addr, src.I)
		fr.ip++
		v.leapAccess(t, x.Global)
		v.observe(VisibleEvent{Kind: EvWrite, Thread: t.ID, Addr: addr, Var: x.Global, Value: src.I})
		return true, nil
	case *ir.LoadA:
		idx := fr.regs[x.Idx]
		if idx.IsBool {
			return false, v.runtimeFail(t, "boolean array index")
		}
		addr, err := v.Addr(x.Array, idx.I)
		if err != nil {
			return false, v.runtimeFail(t, "%v", err)
		}
		if !v.isShared(x.Array) {
			fr.regs[x.Dst] = IntVal(v.mem[addr])
			break
		}
		if v.demoted(x.Array) {
			fr.regs[x.Dst] = IntVal(v.loadShared(t, addr))
			break
		}
		if v.gated(t, x.Array, false) {
			return true, nil
		}
		val := v.loadShared(t, addr)
		fr.regs[x.Dst] = IntVal(val)
		fr.ip++
		v.leapAccess(t, x.Array)
		v.observe(VisibleEvent{Kind: EvRead, Thread: t.ID, Addr: addr, Var: x.Array, Value: val})
		return true, nil
	case *ir.StoreA:
		idx := fr.regs[x.Idx]
		src := fr.regs[x.Src]
		if idx.IsBool || src.IsBool {
			return false, v.runtimeFail(t, "boolean in array store")
		}
		addr, err := v.Addr(x.Array, idx.I)
		if err != nil {
			return false, v.runtimeFail(t, "%v", err)
		}
		if !v.isShared(x.Array) {
			v.mem[addr] = src.I
			break
		}
		if v.demoted(x.Array) {
			v.storeShared(t, addr, src.I)
			break
		}
		if v.gated(t, x.Array, true) {
			return true, nil
		}
		v.storeShared(t, addr, src.I)
		fr.ip++
		v.leapAccess(t, x.Array)
		v.observe(VisibleEvent{Kind: EvWrite, Thread: t.ID, Addr: addr, Var: x.Array, Value: src.I})
		return true, nil
	case *ir.Call:
		fr.ip++
		callee := v.prog.Funcs[x.Func]
		nf := &frame{
			fn:     callee,
			regs:   make([]Value, callee.NumRegs),
			block:  callee.Entry,
			retReg: x.Dst,
		}
		for i, a := range x.Args {
			nf.regs[i] = fr.regs[a]
		}
		t.frames = append(t.frames, nf)
		if v.conf.PathRecorder != nil {
			v.conf.PathRecorder.enter(t.ID, nf)
		}
		return false, nil
	case *ir.Spawn:
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			args[i] = fr.regs[a]
		}
		key := ThreadKey{Parent: t.ID, Index: t.children}
		t.children++
		child := v.newThread(key, x.Func, args)
		fr.regs[x.Dst] = IntVal(int64(child.ID))
		fr.ip++
		v.observe(VisibleEvent{Kind: EvSpawn, Thread: t.ID, Other: child.ID})
		return true, nil
	case *ir.SyncOp:
		return v.execSync(t, fr, x)
	case *ir.Print:
		val := fr.regs[x.Src]
		v.output = append(v.output, val.I)
	case *ir.Input:
		k := fr.regs[x.K]
		var val int64
		if !k.IsBool && k.I >= 0 && k.I < int64(len(v.conf.Inputs)) {
			val = v.conf.Inputs[k.I]
		}
		fr.regs[x.Dst] = IntVal(val)
	case *ir.Assert:
		c := fr.regs[x.Cond]
		if !c.IsBool {
			return false, v.runtimeFail(t, "assert on non-boolean value %s", c)
		}
		if !c.B {
			// The concurrency failure. ip is advanced so the frame records
			// the assert as executed.
			fr.ip++
			return false, &Failure{
				Kind: FailAssert, Thread: t.ID, Site: x.Site,
				Msg:          fmt.Sprintf("assertion %q violated", x.Msg),
				VisibleIndex: t.visibleCount,
			}
		}
	default:
		return false, fmt.Errorf("vm: unknown instruction %T", in)
	}
	// Only purely local instructions reach here (visible ones return above);
	// advance and continue within the same action.
	fr.ip++
	return false, nil
}

// execSync executes a synchronization builtin.
func (v *VM) execSync(t *Thread, fr *frame, x *ir.SyncOp) (bool, error) {
	switch x.Kind {
	case ir.BuiltinLock:
		m := int(x.Obj)
		if v.mutexes[m].held {
			if v.mutexes[m].owner == t.ID {
				return false, v.runtimeFail(t, "recursive lock of mutex %s", v.prog.Mutexes[m])
			}
			t.state = stBlockedLock
			t.waitMutex = m
			return true, nil // action ends without an event; retried later
		}
		if v.gated(t, MutexPseudoVar(v.prog, m), true) {
			return true, nil
		}
		v.acquire(t, m)
		v.leapAccess(t, MutexPseudoVar(v.prog, m))
		fr.ip++
		v.observe(VisibleEvent{Kind: EvLock, Thread: t.ID, Obj: x.Obj})
		return true, nil
	case ir.BuiltinUnlock:
		m := int(x.Obj)
		if !v.mutexes[m].held || v.mutexes[m].owner != t.ID {
			return false, v.runtimeFail(t, "unlock of mutex %s not held by t%d", v.prog.Mutexes[m], t.ID)
		}
		if v.gated(t, MutexPseudoVar(v.prog, m), true) {
			return true, nil
		}
		v.release(t, m)
		v.leapAccess(t, MutexPseudoVar(v.prog, m))
		fr.ip++
		v.observe(VisibleEvent{Kind: EvUnlock, Thread: t.ID, Obj: x.Obj})
		return true, nil
	case ir.BuiltinWait:
		c, m := int(x.Obj), int(x.Obj2)
		if !v.mutexes[m].held || v.mutexes[m].owner != t.ID {
			return false, v.runtimeFail(t, "wait on %s without holding mutex %s", v.prog.Conds[c], v.prog.Mutexes[m])
		}
		if v.gated(t, MutexPseudoVar(v.prog, m), true) {
			return true, nil
		}
		v.release(t, m)
		v.leapAccess(t, MutexPseudoVar(v.prog, m))
		t.state = stBlockedCond
		t.waitCond = c
		t.waitMutex = m
		// ip stays at the wait; the WaitEnd retry path advances it.
		v.observe(VisibleEvent{Kind: EvWaitBegin, Thread: t.ID, Obj: x.Obj, Obj2: x.Obj2})
		return true, nil
	case ir.BuiltinSignal:
		c := int(x.Obj)
		if v.gated(t, CondPseudoVar(v.prog, c), true) {
			return true, nil
		}
		v.leapAccess(t, CondPseudoVar(v.prog, c))
		var waiters []ThreadID
		for _, w := range v.threads {
			if w.state == stBlockedCond && w.waitCond == c {
				waiters = append(waiters, w.ID)
			}
		}
		if len(waiters) > 0 {
			chosen := waiters[0]
			if v.conf.PickWaiter != nil {
				if p := v.conf.PickWaiter(x.Obj, waiters); p >= 0 && int(p) < len(v.threads) {
					chosen = p
				}
			}
			v.threads[chosen].state = stSignaled
		}
		fr.ip++
		v.observe(VisibleEvent{Kind: EvSignal, Thread: t.ID, Obj: x.Obj})
		return true, nil
	case ir.BuiltinBroadcast:
		c := int(x.Obj)
		if v.gated(t, CondPseudoVar(v.prog, c), true) {
			return true, nil
		}
		v.leapAccess(t, CondPseudoVar(v.prog, c))
		for _, w := range v.threads {
			if w.state == stBlockedCond && w.waitCond == c {
				w.state = stSignaled
			}
		}
		fr.ip++
		v.observe(VisibleEvent{Kind: EvBroadcast, Thread: t.ID, Obj: x.Obj})
		return true, nil
	case ir.BuiltinJoin:
		h := fr.regs[x.Arg]
		if h.IsBool || h.I < 0 || h.I >= int64(len(v.threads)) {
			return false, v.runtimeFail(t, "join of invalid thread handle %s", h)
		}
		child := v.threads[h.I]
		if child.state != stFinished {
			t.state = stBlockedJoin
			t.waitChild = child.ID
			return true, nil
		}
		fr.ip++
		v.observe(VisibleEvent{Kind: EvJoin, Thread: t.ID, Other: child.ID})
		return true, nil
	case ir.BuiltinYield:
		fr.ip++
		v.observe(VisibleEvent{Kind: EvYield, Thread: t.ID})
		return true, nil
	case ir.BuiltinFence:
		if t.buf != nil {
			t.buf.drainAll(v.mem)
		}
		fr.ip++
		v.observe(VisibleEvent{Kind: EvFence, Thread: t.ID})
		return true, nil
	}
	return false, fmt.Errorf("vm: unknown sync op %v", x.Kind)
}

// evalUnOp applies a unary operator to a runtime value.
func (v *VM) evalUnOp(t *Thread, op symbolic.Op, x Value) (Value, error) {
	switch op {
	case symbolic.OpNeg:
		if x.IsBool {
			return Value{}, v.runtimeFail(t, "negating a boolean")
		}
		return IntVal(-x.I), nil
	case symbolic.OpNot:
		if !x.IsBool {
			return Value{}, v.runtimeFail(t, "logical not of an integer")
		}
		return BoolVal(!x.B), nil
	}
	return Value{}, fmt.Errorf("vm: unknown unary op %s", op)
}

// evalBinOp applies a binary operator to runtime values.
func (v *VM) evalBinOp(t *Thread, op symbolic.Op, a, b Value) (Value, error) {
	if a.IsBool || b.IsBool {
		if (op == symbolic.OpEq || op == symbolic.OpNe) && a.IsBool && b.IsBool {
			eq := a.B == b.B
			if op == symbolic.OpNe {
				eq = !eq
			}
			return BoolVal(eq), nil
		}
		return Value{}, v.runtimeFail(t, "integer operator %s on boolean", op)
	}
	switch op {
	case symbolic.OpAdd:
		return IntVal(a.I + b.I), nil
	case symbolic.OpSub:
		return IntVal(a.I - b.I), nil
	case symbolic.OpMul:
		return IntVal(a.I * b.I), nil
	case symbolic.OpDiv:
		if b.I == 0 {
			return Value{}, v.runtimeFail(t, "division by zero")
		}
		return IntVal(a.I / b.I), nil
	case symbolic.OpRem:
		if b.I == 0 {
			return Value{}, v.runtimeFail(t, "remainder by zero")
		}
		return IntVal(a.I % b.I), nil
	case symbolic.OpAnd:
		return IntVal(a.I & b.I), nil
	case symbolic.OpOr:
		return IntVal(a.I | b.I), nil
	case symbolic.OpXor:
		return IntVal(a.I ^ b.I), nil
	case symbolic.OpShl:
		return IntVal(a.I << uint64(b.I&63)), nil
	case symbolic.OpShr:
		return IntVal(a.I >> uint64(b.I&63)), nil
	case symbolic.OpEq:
		return BoolVal(a.I == b.I), nil
	case symbolic.OpNe:
		return BoolVal(a.I != b.I), nil
	case symbolic.OpLt:
		return BoolVal(a.I < b.I), nil
	case symbolic.OpLe:
		return BoolVal(a.I <= b.I), nil
	case symbolic.OpGt:
		return BoolVal(a.I > b.I), nil
	case symbolic.OpGe:
		return BoolVal(a.I >= b.I), nil
	}
	return Value{}, fmt.Errorf("vm: unknown binary op %s", op)
}
