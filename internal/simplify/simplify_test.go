package simplify_test

import (
	"testing"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/replay"
	"repro/internal/simplify"
	"repro/internal/solver"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// recordWithOrder records a failing run and reconstructs its own schedule
// (the recorded global SAP order), which is valid under SC but typically
// has many context switches — the natural input to a simplifier.
func recordWithOrder(t *testing.T, src string, maxSeed int64) (*core.Recording, *constraints.System, []constraints.SAPRef) {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	esc := escape.Analyze(prog)
	for seed := int64(0); seed < maxSeed; seed++ {
		rec, err := vm.NewPathRecorder(prog)
		if err != nil {
			t.Fatal(err)
		}
		var global []vm.VisibleEvent
		machine, err := vm.New(prog, vm.Config{
			Sched: vm.NewRandomScheduler(seed), Shared: esc.Shared, PathRecorder: rec,
			OnVisible: func(ev vm.VisibleEvent) {
				if ev.Kind != vm.EvDrain {
					global = append(global, ev)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := machine.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure == nil || res.Failure.Kind != vm.FailAssert {
			continue
		}
		an, err := symexec.Analyze(prog, rec.Paths, rec.Log, symexec.Options{
			Shared:  esc.Shared,
			Failure: symexec.FailureSpec{Thread: res.Failure.Thread, Site: res.Failure.Site},
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := constraints.Build(an, vm.SC)
		if err != nil {
			t.Fatal(err)
		}
		next := make([]int, len(sys.Threads))
		var order []constraints.SAPRef
		for _, ev := range global {
			order = append(order, sys.Threads[ev.Thread][next[ev.Thread]])
			next[ev.Thread]++
		}
		for tid, refs := range sys.Threads {
			for k := next[tid]; k < len(refs); k++ {
				order = append(order, refs[k])
			}
		}
		coreRec := &core.Recording{} // placeholder; only sys and order used
		_ = coreRec
		return nil, sys, order
	}
	t.Fatalf("no failing seed in %d tries", maxSeed)
	return nil, nil, nil
}

const chaosProgram = `
int a;
int b;
func worker(v) {
	int i;
	for (i = 0; i < 3; i = i + 1) {
		int t = a;
		a = t + v;
		int u = b;
		b = u + v;
	}
}
func main() {
	int h1 = spawn worker(1);
	int h2 = spawn worker(2);
	join(h1);
	join(h2);
	int fa = a;
	int fb = b;
	assert(fa == 9 && fb == 9, "updates lost");
}
`

func TestSimplifyReducesPreemptions(t *testing.T) {
	// Use a chaotic scheduler so the recorded order has many switches.
	reduced := false
	for try := 0; try < 5 && !reduced; try++ {
		_, sys, order := recordWithOrder(t, chaosProgram, 4000)
		res, err := simplify.Simplify(sys, order, simplify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.After > res.Before {
			t.Fatalf("simplification increased preemptions: %d -> %d", res.Before, res.After)
		}
		if _, err := sys.ValidateSchedule(res.Order); err != nil {
			t.Fatalf("simplified schedule does not validate: %v", err)
		}
		if res.After < res.Before {
			reduced = true
		}
	}
	if !reduced {
		t.Log("no recorded order was reducible (already minimal); acceptable but unusual")
	}
}

func TestSimplifiedScheduleStillReplays(t *testing.T) {
	_, sys, order := recordWithOrder(t, chaosProgram, 4000)
	res, err := simplify.Simplify(sys, order, simplify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol := &solver.Solution{Order: res.Order, Witness: res.Witness, Preemptions: res.After}
	out, err := replay.Run(sys, sol, replay.Options{Mode: replay.OrderEnforced})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatal("simplified schedule no longer reproduces the bug")
	}
}

func TestSimplifyRejectsInvalidInput(t *testing.T) {
	_, sys, order := recordWithOrder(t, chaosProgram, 4000)
	bad := append([]constraints.SAPRef(nil), order...)
	bad[0], bad[len(bad)-1] = bad[len(bad)-1], bad[0]
	if _, err := simplify.Simplify(sys, bad, simplify.Options{}); err == nil {
		t.Fatal("invalid input schedule must be rejected")
	}
}

func TestSimplifyApproachesSolverMinimum(t *testing.T) {
	_, sys, order := recordWithOrder(t, chaosProgram, 4000)
	res, err := simplify.Simplify(sys, order, simplify.Options{MaxPasses: 32})
	if err != nil {
		t.Fatal(err)
	}
	minSol, _, err := solver.Solve(sys, solver.Options{MaxPreemptions: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.After < minSol.Preemptions {
		t.Fatalf("simplifier beat the solver's minimum: %d < %d (minimality broken)", res.After, minSol.Preemptions)
	}
	t.Logf("recorded %d -> simplified %d (solver minimum %d)", res.Before, res.After, minSol.Preemptions)
}
