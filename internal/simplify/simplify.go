// Package simplify post-processes a valid schedule to reduce its number
// of preemptive context switches, in the spirit of the trace
// simplification line of work the paper builds on (Tinertia, and the
// authors' own LEAN/SAS'11 simplifier): a reproduction with long
// uninterrupted per-thread runs is what makes a concurrency bug humanly
// debuggable.
//
// The algorithm is semantic hill climbing over validated schedules: it
// repeatedly tries to merge two runs of the same thread by relocating the
// SAP block between them (before the first run or after the second),
// accepting a move only when constraints.ValidateSchedule still succeeds
// and the preemption count does not increase. Every intermediate schedule
// is a genuine model of the constraint system, so the simplifier can never
// break reproducibility.
package simplify

import (
	"repro/internal/constraints"
)

// Result reports a simplification.
type Result struct {
	Order []constraints.SAPRef
	// Witness is the validated witness of the simplified schedule.
	Witness *constraints.Witness
	// Before and After are the preemption counts.
	Before, After int
	// Moves counts accepted block moves.
	Moves int
}

// Options tunes the hill climbing.
type Options struct {
	// MaxPasses bounds the number of full sweeps (default 8).
	MaxPasses int
}

// Simplify reduces the preemptions of a valid schedule. It returns an
// error only if the input schedule itself does not validate.
func Simplify(sys *constraints.System, order []constraints.SAPRef, opts Options) (*Result, error) {
	if opts.MaxPasses == 0 {
		opts.MaxPasses = 8
	}
	cur := append([]constraints.SAPRef(nil), order...)
	w, err := sys.ValidateSchedule(cur)
	if err != nil {
		return nil, err
	}
	res := &Result{Before: w.Preemptions}
	best := w
	for pass := 0; pass < opts.MaxPasses; pass++ {
		improved := false
		// Identify runs: maximal same-thread stretches.
		runs := runsOf(sys, cur)
		for i := 0; i+2 < len(runs); i++ {
			// Candidate: runs[i] and some later run of the same thread with
			// exactly one foreign block between them.
			for j := i + 2; j < len(runs) && j <= i+4; j++ {
				if sys.SAP(cur[runs[i].start]).Thread != sys.SAP(cur[runs[j].start]).Thread {
					continue
				}
				// Move the blocks between run i and run j after run j
				// (deferring the interruption), merging the two runs.
				cand := moveBlock(cur, runs[i].end+1, runs[j].start, runs[j].end+1)
				if cw, err := sys.ValidateSchedule(cand); err == nil && cw.Preemptions < best.Preemptions {
					cur, best = cand, cw
					res.Moves++
					improved = true
					break
				}
				// Or move them before run i (advancing the interruption).
				cand = moveBlockBefore(cur, runs[i].start, runs[i].end+1, runs[j].start)
				if cw, err := sys.ValidateSchedule(cand); err == nil && cw.Preemptions < best.Preemptions {
					cur, best = cand, cw
					res.Moves++
					improved = true
					break
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	res.Order = cur
	res.Witness = best
	res.After = best.Preemptions
	return res, nil
}

// run is a maximal same-thread stretch [start, end].
type run struct{ start, end int }

func runsOf(sys *constraints.System, order []constraints.SAPRef) []run {
	var runs []run
	for i := 0; i < len(order); {
		j := i
		for j+1 < len(order) && sys.SAP(order[j+1]).Thread == sys.SAP(order[i]).Thread {
			j++
		}
		runs = append(runs, run{start: i, end: j})
		i = j + 1
	}
	return runs
}

// moveBlock builds a copy of order with [from, to) relocated to start at
// position insertAt (insertAt > to: the block shifts right).
func moveBlock(order []constraints.SAPRef, from, to, insertAt int) []constraints.SAPRef {
	out := make([]constraints.SAPRef, 0, len(order))
	out = append(out, order[:from]...)
	out = append(out, order[to:insertAt]...)
	out = append(out, order[from:to]...)
	out = append(out, order[insertAt:]...)
	return out
}

// moveBlockBefore relocates [from, to) to position before; before < from.
func moveBlockBefore(order []constraints.SAPRef, before, from, to int) []constraints.SAPRef {
	out := make([]constraints.SAPRef, 0, len(order))
	out = append(out, order[:before]...)
	out = append(out, order[from:to]...)
	out = append(out, order[before:from]...)
	out = append(out, order[to:]...)
	return out
}
