// Package parsolve implements CLAP's parallel constraint solving algorithm
// (§4.3 of the paper): candidate schedules that satisfy the memory-order
// constraints are generated with increasing preemption bounds and validated
// against all the remaining constraints concurrently by a worker pool.
//
// "Each single schedule generation and validation is independent and fast
// (requiring only a linear scan of the SAPs and the constraints)" — the
// generator is internal/schedule, the linear validation is
// constraints.ValidateSchedule, and the pool below supplies the
// parallelism. The package reproduces the shape of Table 3: the number of
// generated candidates dwarfs the number of valid ones, the wall time
// beats the sequential solver on most programs, and racey-style workloads
// (hundreds of forced preemptions) defeat the bounded generator.
package parsolve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/constraints"
	"repro/internal/schedule"
	"repro/internal/solver"
)

// Options tunes the parallel search.
type Options struct {
	// Workers is the validation pool size (default: GOMAXPROCS).
	Workers int
	// MaxBound is the largest preemption bound swept (default 8).
	MaxBound int
	// StopAfter stops the search once this many valid schedules are found
	// (default 1). More may be returned — workers mid-validation finish
	// their current candidate, matching the paper's "we typically have
	// found multiple correct schedules before the whole process is
	// terminated" — but queued candidates are drained unvalidated so the
	// pool shuts down promptly.
	StopAfter int
	// MaxSchedules caps generation per bound (0 = 5,000,000). A hit is
	// reported via Result.Capped, never silently.
	MaxSchedules int
	// Deadline bounds the whole search (0 = none).
	Deadline time.Duration
	// Ctx cancels the search (nil = never). A context deadline earlier
	// than Deadline wins; cancellation is reported via Result.Cancelled.
	Ctx context.Context
	// Progress, when set, receives periodic snapshots of the live search
	// counters for progress heartbeats. Called from the generator
	// goroutine; it must be fast and must not call back into the solver.
	Progress func(Progress)
}

// Progress is one live snapshot handed to Options.Progress.
type Progress struct {
	// Generated counts candidates produced so far (all bounds).
	Generated int64
	// Validated counts candidates the pool has checked so far.
	Validated int64
	// Valid counts candidates that passed validation so far.
	Valid int64
	// Bound is the preemption bound currently being swept.
	Bound int
}

// progressStride is how many generated candidates pass between Progress
// callbacks.
const progressStride = 2048

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxBound == 0 {
		o.MaxBound = 8
	}
	if o.StopAfter <= 0 {
		o.StopAfter = 1
	}
	if o.MaxSchedules == 0 {
		o.MaxSchedules = 5_000_000
	}
}

// Result summarizes a parallel solve.
type Result struct {
	// Solutions are the validated schedules found (at least one when
	// Found, possibly more from in-flight workers).
	Solutions []*solver.Solution
	// Generated counts candidate schedules produced.
	Generated int64
	// Validated counts candidates the pool actually validated; it trails
	// Generated when the search was cut short and queued candidates were
	// drained unvalidated.
	Validated int64
	// Valid counts candidates that passed validation.
	Valid int
	// Bound is the preemption bound at which the first solution appeared.
	Bound int
	// Capped reports whether generation hit MaxSchedules at some bound.
	Capped bool
	// TimedOut reports whether the deadline expired first.
	TimedOut bool
	// Cancelled reports whether the caller's context ended the search.
	Cancelled bool
	// Elapsed is the wall time of the search.
	Elapsed time.Duration
}

// Found reports whether at least one schedule was found.
func (r *Result) Found() bool { return len(r.Solutions) > 0 }

// Solve runs the parallel generate-and-validate search.
func Solve(sys *constraints.System, opts Options) (*Result, error) {
	opts.fill()
	start := time.Now()
	res := &Result{Bound: -1}
	gen := schedule.NewGenerator(sys, schedule.Options{
		MaxSchedules:     opts.MaxSchedules,
		RespectHardEdges: true,
	})

	// Unify the explicit deadline with the context's: earliest wins.
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = start.Add(opts.Deadline)
	}
	if opts.Ctx != nil {
		if d, ok := opts.Ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
	}

	// The search context is cancelled the moment the search is over — the
	// caller's context fired, the deadline expired, or StopAfter was
	// reached — so workers drain queued candidates without validating them
	// instead of grinding through a full channel's worth of dead work.
	parent := opts.Ctx
	if parent == nil {
		parent = context.Background()
	}
	// A context that is already cancelled, or a deadline already in the
	// past, means there is no budget at all: report the cut immediately.
	// Entering the bound loop here used to spawn a worker pool per bound
	// (and, when a bound generated no candidates, sweep every bound with
	// Cancelled never set — indistinguishable from an exhaustive search).
	if err := parent.Err(); err != nil {
		res.Cancelled = true
		if errors.Is(err, context.DeadlineExceeded) {
			res.TimedOut = true
		}
		res.Elapsed = time.Since(start)
		return res, nil
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		res.TimedOut = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	sctx, cancelSearch := context.WithCancel(parent)
	defer cancelSearch()

	// Candidate orders are copied into pooled buffers: invalid candidates
	// (the overwhelming majority, per Table 3) recycle their buffer, only
	// solutions keep theirs.
	bufPool := sync.Pool{New: func() any {
		s := make([]constraints.SAPRef, 0, len(sys.SAPs))
		return &s
	}}

	for bound := 0; bound <= opts.MaxBound; bound++ {
		jobs := make(chan *[]constraints.SAPRef, opts.Workers*4)
		var mu sync.Mutex
		stop := false
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for op := range jobs {
					if sctx.Err() != nil {
						bufPool.Put(op) // search over: drain, don't validate
						continue
					}
					order := *op
					witness, err := sys.ValidateSchedule(order)
					mu.Lock()
					res.Validated++
					if err != nil {
						mu.Unlock()
						bufPool.Put(op)
						continue
					}
					res.Valid++
					res.Solutions = append(res.Solutions, &solver.Solution{
						Order:       order,
						Witness:     witness,
						Preemptions: witness.Preemptions,
					})
					if res.Valid >= opts.StopAfter && !stop {
						stop = true
						cancelSearch()
					}
					mu.Unlock()
				}
			}()
		}
		produced := int64(0)
		genRes := gen.Generate(bound, func(order []constraints.SAPRef, pre int) bool {
			op := bufPool.Get().(*[]constraints.SAPRef)
			*op = append((*op)[:0], order...)
			jobs <- op
			produced++
			mu.Lock()
			done := stop
			if opts.Progress != nil && produced%progressStride == 0 {
				p := Progress{
					Generated: res.Generated + produced,
					Validated: res.Validated,
					Valid:     int64(res.Valid),
					Bound:     bound,
				}
				mu.Unlock()
				opts.Progress(p)
				mu.Lock()
			}
			mu.Unlock()
			if done {
				return false
			}
			if parent.Err() != nil {
				mu.Lock()
				res.Cancelled = true
				mu.Unlock()
				cancelSearch()
				return false
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				mu.Lock()
				res.TimedOut = true
				mu.Unlock()
				cancelSearch()
				return false
			}
			return true
		})
		close(jobs)
		wg.Wait()
		res.Generated += int64(genRes.Generated)
		if genRes.Capped {
			res.Capped = true
		}
		if res.Found() {
			res.Bound = bound
			break
		}
		if res.TimedOut || res.Cancelled {
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
