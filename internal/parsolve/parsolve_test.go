package parsolve_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/parsolve"
	"repro/internal/replay"
	"repro/internal/vm"
)

func buildSystem(t *testing.T, src string, model vm.MemModel, seeds int64) (*core.Recording, *constraints.System) {
	t.Helper()
	prog, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.Record(prog, core.RecordOptions{Model: model, SeedLimit: seeds})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return rec, sys
}

const figure2SC = `
int x;
int y;
func t1() {
	int r1 = x;
	x = r1 + 1;
	int r2 = y;
	if (r2 > 0) {
		int r3 = x;
		assert(r3 > 0, "assert1");
	}
}
func main() {
	int h;
	h = spawn t1();
	x = 2;
	x = x - 3;
	y = 1;
	join(h);
}
`

func TestParallelSolveFindsAndReplays(t *testing.T) {
	rec, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	res, err := parsolve.Solve(sys, parsolve.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatalf("nothing found: generated %d", res.Generated)
	}
	if res.Generated <= 0 || res.Valid <= 0 || res.Bound < 0 {
		t.Errorf("stats incomplete: %+v", res)
	}
	for _, sol := range res.Solutions {
		if _, err := sys.ValidateSchedule(sol.Order); err != nil {
			t.Fatalf("returned solution does not validate: %v", err)
		}
	}
	out, err := replay.Run(sys, res.Solutions[0], replay.Options{
		Mode: replay.ModeFor(rec.Model), Inputs: rec.Inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatal("parallel solution did not replay")
	}
}

func TestParallelSolveRelaxed(t *testing.T) {
	src := `
int x;
int y;
func t2() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "reorder");
	}
}
func main() {
	int h;
	h = spawn t2();
	x = 1;
	y = 1;
	join(h);
}
`
	_, sys := buildSystem(t, src, vm.PSO, 3000)
	res, err := parsolve.Solve(sys, parsolve.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("PSO schedule not found by parallel solver")
	}
}

func TestParallelSolveStopAfterCollectsSeveral(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	res, err := parsolve.Solve(sys, parsolve.Options{Workers: 4, StopAfter: 3, MaxBound: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) < 3 {
		t.Skipf("only %d solutions exist within the bound", len(res.Solutions))
	}
}

// TestParallelSolveCtxCancelledBeforeStart pins the immediate-return
// contract: a context that is already cancelled when Solve is called must
// yield Result.Cancelled without generating a single candidate, spawning
// a worker pool, or validating anything. (The pre-fix code entered the
// bound loop anyway: it spawned workers per bound and — when a bound
// generated no candidates at all — swept every bound with Cancelled never
// set, indistinguishable from an exhaustive unsatisfiable search.)
func TestParallelSolveCtxCancelledBeforeStart(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := parsolve.Solve(sys, parsolve.Options{Workers: 4, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatalf("cancelled context not reported: %+v", res)
	}
	if res.Generated != 0 || res.Validated != 0 || res.Valid != 0 {
		t.Fatalf("cancelled-before-start search did work: %+v", res)
	}
	if res.Found() || res.Bound != -1 {
		t.Fatalf("cancelled search returned solutions: %+v", res)
	}
}

// TestParallelSolveCtxDeadlineAlreadyPast: a context whose deadline has
// already expired must return immediately, reporting both the
// cancellation and the timeout.
func TestParallelSolveCtxDeadlineAlreadyPast(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := parsolve.Solve(sys, parsolve.Options{Workers: 4, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || !res.TimedOut {
		t.Fatalf("expired context deadline not reported as cancelled+timed-out: %+v", res)
	}
	if res.Generated != 0 || res.Validated != 0 || res.Found() {
		t.Fatalf("expired-deadline search did work: %+v", res)
	}
}

// TestParallelSolveDeadlineAlreadySpent: an explicit Deadline so small it
// is already consumed by the time the search would start must report
// TimedOut without doing any work.
func TestParallelSolveDeadlineAlreadySpent(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	res, err := parsolve.Solve(sys, parsolve.Options{Workers: 4, Deadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatalf("spent deadline not reported: %+v", res)
	}
	if res.Generated != 0 || res.Validated != 0 || res.Found() {
		t.Fatalf("spent-deadline search did work: %+v", res)
	}
}

// TestParallelSolveStopAfterPromptness checks the StopAfter path keeps the
// Validated counter coherent: the pool validates at least the winning
// candidates but never more than were generated.
func TestParallelSolveStopAfterPromptness(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	res, err := parsolve.Solve(sys, parsolve.Options{Workers: 1, StopAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatalf("nothing found: %+v", res)
	}
	if res.Validated == 0 || res.Validated > res.Generated {
		t.Fatalf("validated counter incoherent: validated=%d generated=%d", res.Validated, res.Generated)
	}
	if int64(res.Valid) > res.Validated {
		t.Fatalf("more valid than validated: %+v", res)
	}
}

func TestParallelSolveDeadline(t *testing.T) {
	// An unsatisfiable-within-bound search must stop at the deadline.
	src := `
int x;
func child() { x = 1; }
func main() {
	int h = spawn child();
	join(h);
	int v = x;
	assert(v == 1, "fails when v==... wait, v is always 1 here");
}
`
	// Build a *failing* recording by using a program whose bug is rare.
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	res, err := parsolve.Solve(sys, parsolve.Options{Workers: 2, MaxBound: 0, Deadline: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Either it finished bound 0 instantly (fine) or it timed out; both
	// must terminate promptly and report coherent stats.
	if res.Found() && res.Bound != 0 {
		t.Errorf("bound = %d for a bound-0 search", res.Bound)
	}
	_ = src
}
