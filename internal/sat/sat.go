// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-literal watching, VSIDS-style activity ordering, 1UIP
// clause learning and Luby restarts.
//
// It stands in for the boolean core of the STP/SMT stack the paper builds
// on. CLAP's own queries are decided by the dedicated procedure in
// internal/solver (the paper notes they are a simple finite-domain class);
// the SAT engine powers the SMT-style reference backend in
// internal/cnfsolver, which encodes the order variables, read→write
// mappings, lock serialization and wait/signal cardinality as CNF. The
// solver is independently exercised against brute-force enumeration on
// random instances and on classic pigeonhole problems.
package sat

import (
	"fmt"
	"sort"
)

// Lit is a literal: variable index << 1 | sign (sign 1 = negated).
// Variables are numbered from 0.
type Lit int32

// MkLit builds a literal for variable v, negated when neg.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as ±(v+1), DIMACS style.
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// Status is a solve verdict.
type Status int8

// Verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

// Solver is a CDCL SAT solver. Create with New, add clauses, call Solve.
//
// The solver is re-entrant: Solve may be called repeatedly, with clauses
// added in between, and keeps its learnt clauses across calls. Each Solve
// first rewinds to decision level 0, so a call with assumptions after a
// Sat verdict starts from a clean trail.
type Solver struct {
	clauses []*clause
	learnts []*clause
	// originals keeps every added clause verbatim for DIMACS export
	// (AddClause simplifies units and satisfied clauses away internally),
	// stored flat: clause i is origLits[origEnd[i-1]:origEnd[i]].
	origLits []Lit
	origEnd  []int32
	// watches[int(l)] = clauses watching literal l (convention: the list
	// for l holds clauses in which l is watched). Dense by literal index —
	// propagate is the solver's inner loop and a map lookup per trail
	// literal dominated its profile.
	watches [][]*clause

	assign   []lbool
	level    []int32
	reason   []*clause
	trail    []Lit
	trailLim []int

	activity []float64
	varInc   float64
	order    *varHeap

	polarity []bool // phase saving

	propagated int
	ok         bool

	// Conflict-analysis scratch, reused across conflicts: analyze runs
	// once per conflict and allocated a map plus a growing slice each time.
	seen      []bool
	learntBuf []Lit
	addBuf    []Lit // AddClause normalize scratch

	// Problem clauses come out of slab arenas: large encodings (the CNF
	// backend emits tens of thousands of clauses) cost O(clauses/slab)
	// allocations instead of two per clause. Learnt clauses stay
	// individually heap-allocated — reduceDB churns them and the GC must
	// be able to reclaim the dropped half.
	clauseSlab []clause
	slabUsed   int
	litBlock   []Lit

	// Stats
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learned      int64
	Restarts     int64
	MaxLearnts   int

	// LastSolve holds the previous Solve call's effort in isolation —
	// the deltas of the cumulative counters above — so telemetry can
	// attribute work to individual calls on a long-lived session solver.
	LastSolve SolveStats

	// Stop, when set, is polled between conflicts; returning true aborts
	// Solve with Unknown. It is how deadline-governed callers (the CNF
	// backend's theory loop) keep a single SAT call from outliving its
	// budget.
	Stop func() bool
}

// New creates a solver over nvars variables.
func New(nvars int) *Solver {
	s := &Solver{
		varInc:     1,
		ok:         true,
		MaxLearnts: 10000,
	}
	s.grow(nvars)
	return s
}

func (s *Solver) grow(nvars int) {
	for len(s.assign) < nvars {
		s.assign = append(s.assign, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.activity = append(s.activity, 0)
		s.polarity = append(s.polarity, false)
		s.seen = append(s.seen, false)
		s.watches = append(s.watches, nil, nil)
	}
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return len(s.assign) }

// NewVar adds a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	s.grow(len(s.assign) + 1)
	return len(s.assign) - 1
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// allocLits copies lits into the flat literal arena and returns a
// capacity-capped subslice. Clause literal slices are swapped in place by
// the watch machinery but never grow, so packing them into shared blocks
// is safe.
func (s *Solver) allocLits(lits []Lit) []Lit {
	n := len(lits)
	if cap(s.litBlock)-len(s.litBlock) < n {
		size := 1 << 14
		if n > size {
			size = n
		}
		s.litBlock = make([]Lit, 0, size)
	}
	start := len(s.litBlock)
	s.litBlock = append(s.litBlock, lits...)
	return s.litBlock[start : start+n : start+n]
}

// newClause carves a problem clause out of the slab arena. Slabs are
// never appended to after creation, so &slab[i] pointers stay stable.
func (s *Solver) newClause(lits []Lit) *clause {
	if s.slabUsed == len(s.clauseSlab) {
		s.clauseSlab = make([]clause, 512)
		s.slabUsed = 0
	}
	c := &s.clauseSlab[s.slabUsed]
	s.slabUsed++
	c.lits = s.allocLits(lits)
	c.learnt = false
	c.activity = 0
	return c
}

// AddClause adds a clause (returns false if the formula became trivially
// unsatisfiable). It may be called between Solve calls — the trail is
// rewound to level 0 first — which is how the lazy-theory loop in
// internal/cnfsolver adds blocking clauses incrementally.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.origLits = append(s.origLits, lits...)
	s.origEnd = append(s.origEnd, int32(len(s.origLits)))
	s.cancelUntil(0)
	// Normalize: sort, dedupe, drop tautologies and false literals.
	ls := append(s.addBuf[:0], lits...)
	s.addBuf = ls
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() && l.Var() == prev.Var() {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.ok = false
			return false
		}
		return s.propagate() == nil || func() bool { s.ok = false; return false }()
	}
	c := s.newClause(out)
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	s.watches[int(c.lits[0])] = append(s.watches[int(c.lits[0])], c)
	s.watches[int(c.lits[1])] = append(s.watches[int(c.lits[1])], c)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation; it returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.propagated < len(s.trail) {
		l := s.trail[s.propagated]
		s.propagated++
		s.Propagations++
		falsified := l.Not()
		ws := s.watches[int(falsified)]
		kept := ws[:0]
		var conflict *clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if conflict != nil {
				kept = append(kept, c)
				continue
			}
			// Ensure the falsified literal is at position 1.
			if c.lits[0] == falsified {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[int(c.lits[1])] = append(s.watches[int(c.lits[1])], c)
					moved = true
					break
				}
			}
			if moved {
				continue // watch moved away from falsified
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				conflict = c
			}
		}
		s.watches[int(falsified)] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// analyze performs 1UIP conflict analysis, returning the learnt clause
// (with the asserting literal first) and the backjump level. The returned
// slice is scratch owned by the solver, valid until the next analyze call —
// callers copy it when retaining (Solve copies into the learnt clause).
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learnt := append(s.learntBuf[:0], 0) // slot 0 for the asserting literal
	// seen is all-false between calls: the trail walk below unsets every
	// current-level var it set, and the lower-level residue (exactly the
	// vars of learnt[1:]) is cleared before returning.
	seen := s.seen
	counter := 0
	var p Lit = -1
	c := conflict
	idx := len(s.trail) - 1

	for {
		for _, q := range c.lits {
			if p >= 0 && q == p {
				continue
			}
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Next literal on the trail at the current level.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		c = s.reason[p.Var()]
		seen[p.Var()] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
	}
	learnt[0] = p.Not()
	for _, q := range learnt[1:] {
		seen[q.Var()] = false
	}
	s.learntBuf = learnt

	// Backjump level: the highest level among the other literals.
	bl := 0
	for i := 1; i < len(learnt); i++ {
		if int(s.level[learnt[i].Var()]) > bl {
			bl = int(s.level[learnt[i].Var()])
		}
	}
	// Move a literal of the backjump level to position 1 (watching).
	if len(learnt) > 1 {
		mi := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[mi].Var()] {
				mi = i
			}
		}
		learnt[1], learnt[mi] = learnt[mi], learnt[1]
	}
	return learnt, bl
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.order != nil {
		s.order.update(v)
	}
}

// reduceDB discards the less recently useful half of the learnt clauses
// (standard CDCL housekeeping, keyed on clause activity set at learn time);
// clauses currently acting as implication reasons and binary clauses are
// kept. The watch lists are rebuilt for the survivors.
func (s *Solver) reduceDB() {
	reasons := map[*clause]bool{}
	for _, c := range s.reason {
		if c != nil {
			reasons[c] = true
		}
	}
	kept := make([]*clause, 0, len(s.learnts)/2+1)
	// The learnts slice is in learn order; activity decays via varInc, so
	// later clauses have lower activity values — keep the newer half plus
	// protected clauses from the older half.
	half := len(s.learnts) / 2
	drop := map[*clause]bool{}
	for i, c := range s.learnts {
		if i < half && !reasons[c] && len(c.lits) > 2 {
			drop[c] = true
			continue
		}
		kept = append(kept, c)
	}
	if len(drop) == 0 {
		return
	}
	s.learnts = kept
	for li, ws := range s.watches {
		filtered := ws[:0]
		for _, c := range ws {
			if !drop[c] {
				filtered = append(filtered, c)
			}
		}
		s.watches[li] = filtered
	}
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
		if s.order != nil {
			s.order.push(v)
		}
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.propagated = len(s.trail)
}

// luby computes the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i >= 1<<uint(k-1) && i < (1<<uint(k))-1 {
			i -= (1 << uint(k-1)) - 1
			k = 0
		}
	}
}

// SolveStats is one Solve call's isolated search effort: the deltas of
// the solver's cumulative counters over that call.
type SolveStats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learned      int64
	Restarts     int64
}

// Solve decides satisfiability. Assumptions, if given, are enforced as
// decision-level-1 choices; Unsat under assumptions means no model extends
// them.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	// LastSolve is computed as a delta on every exit path: Solve returns
	// from half a dozen places, so the bookkeeping lives in one defer.
	at := SolveStats{
		Conflicts: s.Conflicts, Decisions: s.Decisions,
		Propagations: s.Propagations, Learned: s.Learned, Restarts: s.Restarts,
	}
	defer func() {
		s.LastSolve = SolveStats{
			Conflicts:    s.Conflicts - at.Conflicts,
			Decisions:    s.Decisions - at.Decisions,
			Propagations: s.Propagations - at.Propagations,
			Learned:      s.Learned - at.Learned,
			Restarts:     s.Restarts - at.Restarts,
		}
	}()
	// Rewind any leftover trail from a previous Solve: a Sat verdict leaves
	// the model assigned, and re-entering with assumptions on top of stale
	// decision levels would corrupt the assumption indexing.
	s.cancelUntil(0)
	// The heap persists across calls (cancelUntil pushes unassigned vars
	// back); the repair loop below is a no-op for members and costs no
	// allocation, it just restores the "every unassigned var is enqueued"
	// invariant for variables created since the last call.
	if s.order == nil {
		s.order = newVarHeap(s)
	}
	for v := 0; v < len(s.assign); v++ {
		if s.assign[v] == lUndef {
			s.order.push(v)
		}
	}
	restart := int64(1)
	conflictsAtRestart := int64(0)
	budget := luby(restart) * 64

	for {
		conflict := s.propagate()
		if conflict != nil {
			s.Conflicts++
			conflictsAtRestart++
			if s.Stop != nil && s.Conflicts&255 == 0 && s.Stop() {
				return Unknown
			}
			if s.decisionLevel() == 0 {
				return Unsat
			}
			// Backjump to the learnt clause's natural level, even when that
			// is below the assumption levels: the decision loop re-enqueues
			// assumptions on the way back up, and an assumption falsified by
			// the learnt clause is caught there as Unsat-under-assumptions.
			// (Clamping bl to the assumption level instead would enqueue
			// unit learnts with a nil reason at a non-zero level, which a
			// later conflict analysis at that level would dereference.)
			learnt, bl := s.analyze(conflict)
			s.cancelUntil(bl)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], nil) {
					return Unsat
				}
			} else {
				c := &clause{lits: append([]Lit(nil), learnt...), learnt: true, activity: s.varInc}
				s.learnts = append(s.learnts, c)
				s.Learned++
				s.watch(c)
				if !s.enqueue(learnt[0], c) {
					return Unsat
				}
			}
			s.varInc /= 0.95
			if s.MaxLearnts > 0 && len(s.learnts) > s.MaxLearnts {
				s.reduceDB()
			}
			continue
		}
		if conflictsAtRestart >= budget && s.decisionLevel() > len(assumptions) {
			// Restart.
			restart++
			s.Restarts++
			conflictsAtRestart = 0
			budget = luby(restart) * 64
			s.cancelUntil(len(assumptions))
			continue
		}
		// Assumption decisions first.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already implied: open an empty level to keep indexing.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, nil)
			continue
		}
		if s.Stop != nil && s.Decisions&255 == 0 && s.Stop() {
			return Unknown
		}
		// Pick a branching variable.
		v := -1
		for s.order.size() > 0 {
			cand := s.order.pop()
			if s.assign[cand] == lUndef {
				v = cand
				break
			}
		}
		if v == -1 {
			return Sat
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, !s.polarity[v]), nil)
	}
}

// Value returns the model value of variable v after Sat.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// Model returns the full model after Sat.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.assign))
	for v := range m {
		m[v] = s.assign[v] == lTrue
	}
	return m
}

// varHeap is a max-heap over variable activity.
type varHeap struct {
	s    *Solver
	heap []int
	pos  []int
}

func newVarHeap(s *Solver) *varHeap {
	h := &varHeap{s: s, pos: make([]int, len(s.assign))}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) less(i, j int) bool {
	return h.s.activity[h.heap[i]] > h.s.activity[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.heap) && h.less(l, best) {
			best = l
		}
		if r < len(h.heap) && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) push(v int) {
	if v < len(h.pos) && h.pos[v] != -1 {
		return
	}
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	h.swap(0, len(h.heap)-1)
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if v < len(h.pos) && h.pos[v] != -1 {
		h.up(h.pos[v])
	}
}
