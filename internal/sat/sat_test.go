package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New(2)
	s.AddClause(MkLit(0, false))                 // x0
	s.AddClause(MkLit(0, true), MkLit(1, false)) // ¬x0 ∨ x1
	if got := s.Solve(); got != Sat {
		t.Fatalf("status = %v, want SAT", got)
	}
	if !s.Value(0) || !s.Value(1) {
		t.Fatalf("model = %v, want both true", s.Model())
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New(1)
	s.AddClause(MkLit(0, false))
	if s.AddClause(MkLit(0, true)) {
		// Adding ¬x0 after x0 is a level-0 conflict.
		if s.Solve() != Unsat {
			t.Fatal("want UNSAT")
		}
		return
	}
	if s.Solve() != Unsat {
		t.Fatal("want UNSAT")
	}
}

func TestContradictionThreeVars(t *testing.T) {
	// (a∨b)(a∨¬b)(¬a∨c)(¬a∨¬c) is UNSAT.
	s := New(3)
	a, b, c := 0, 1, 2
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.AddClause(MkLit(a, true), MkLit(c, false))
	s.AddClause(MkLit(a, true), MkLit(c, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("status = %v, want UNSAT", got)
	}
}

// pigeonhole encodes n+1 pigeons in n holes (classically hard UNSAT).
func pigeonhole(n int) *Solver {
	// var p*n + h: pigeon p in hole h.
	s := New((n + 1) * n)
	v := func(p, h int) int { return p*n + h }
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := pigeonhole(n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d) = %v, want UNSAT", n, got)
		}
	}
}

func TestPigeonholeSatVariant(t *testing.T) {
	// n pigeons in n holes is SAT.
	n := 4
	s := New(n * n)
	v := func(p, h int) int { return p*n + h }
	for p := 0; p < n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("status = %v, want SAT", got)
	}
}

// bruteForce decides a CNF by enumeration (reference implementation).
func bruteForce(nvars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<uint(nvars); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m&(1<<uint(l.Var())) != 0
				if l.Neg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// checkModel verifies a model satisfies a CNF.
func checkModel(model []bool, cnf [][]Lit) bool {
	for _, cl := range cnf {
		sat := false
		for _, l := range cl {
			val := model[l.Var()]
			if l.Neg() {
				val = !val
			}
			if val {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// TestPropertyRandom3SATAgainstBruteForce is the solver's main correctness
// property: on random small instances the CDCL verdict matches exhaustive
// enumeration, and SAT verdicts come with verified models.
func TestPropertyRandom3SATAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		nvars := 3 + r.Intn(8)
		nclauses := 2 + r.Intn(nvars*5)
		var cnf [][]Lit
		for i := 0; i < nclauses; i++ {
			width := 1 + r.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(r.Intn(nvars), r.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		s := New(nvars)
		trivUnsat := false
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				trivUnsat = true
				break
			}
		}
		want := bruteForce(nvars, cnf)
		if trivUnsat {
			if want {
				t.Fatalf("trial %d: trivially-unsat detection wrong", trial)
			}
			continue
		}
		got := s.Solve()
		if want && got != Sat {
			t.Fatalf("trial %d: got %v, brute force says SAT\ncnf=%v", trial, got, cnf)
		}
		if !want && got != Unsat {
			t.Fatalf("trial %d: got %v, brute force says UNSAT\ncnf=%v", trial, got, cnf)
		}
		if got == Sat && !checkModel(s.Model(), cnf) {
			t.Fatalf("trial %d: reported model does not satisfy the formula", trial)
		}
	}
}

func TestAssumptions(t *testing.T) {
	// (a ∨ b) with assumption ¬a forces b; with ¬a ∧ ¬b it is UNSAT.
	s := New(2)
	s.AddClause(MkLit(0, false), MkLit(1, false))
	if s.Solve(MkLit(0, true)) != Sat {
		t.Fatal("¬a should be satisfiable")
	}
	if !s.Value(1) {
		t.Fatal("¬a forces b")
	}
	s2 := New(2)
	s2.AddClause(MkLit(0, false), MkLit(1, false))
	if s2.Solve(MkLit(0, true), MkLit(1, true)) != Unsat {
		t.Fatal("¬a ∧ ¬b should be UNSAT under assumptions")
	}
}

func TestPropertyAssumptionsMatchConditioning(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 150; trial++ {
		nvars := 3 + r.Intn(6)
		nclauses := 2 + r.Intn(nvars*4)
		var cnf [][]Lit
		for i := 0; i < nclauses; i++ {
			cl := make([]Lit, 1+r.Intn(3))
			for j := range cl {
				cl[j] = MkLit(r.Intn(nvars), r.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		assume := MkLit(r.Intn(nvars), r.Intn(2) == 1)
		s := New(nvars)
		ok := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				ok = false
				break
			}
		}
		// Conditioned formula: add the assumption as a unit clause.
		want := bruteForce(nvars, append(append([][]Lit{}, cnf...), []Lit{assume}))
		if !ok {
			if want {
				t.Fatalf("trial %d: trivial unsat but conditioned SAT", trial)
			}
			continue
		}
		got := s.Solve(assume)
		if want != (got == Sat) {
			t.Fatalf("trial %d: assumption solve %v, brute force %v", trial, got, want)
		}
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New(2)
	if !s.AddClause(MkLit(0, false), MkLit(0, true)) {
		t.Fatal("tautology must be accepted (and dropped)")
	}
	if !s.AddClause(MkLit(1, false), MkLit(1, false)) {
		t.Fatal("duplicate literals must collapse")
	}
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
	if !s.Value(1) {
		t.Fatal("unit after dedupe must hold")
	}
}

func TestNewVarAndLitHelpers(t *testing.T) {
	s := New(0)
	a := s.NewVar()
	b := s.NewVar()
	if a == b || s.NumVars() != 2 {
		t.Fatal("NewVar broken")
	}
	l := MkLit(3, true)
	if l.Var() != 3 || !l.Neg() || l.Not().Neg() {
		t.Fatal("literal helpers broken")
	}
	if l.String() != "-4" || l.Not().String() != "4" {
		t.Fatalf("literal strings: %s %s", l, l.Not())
	}
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("status strings broken")
	}
}

func TestStatsCounted(t *testing.T) {
	s := pigeonhole(5)
	s.Solve()
	if s.Conflicts == 0 || s.Decisions == 0 || s.Propagations == 0 {
		t.Errorf("stats empty: %d conflicts, %d decisions, %d props",
			s.Conflicts, s.Decisions, s.Propagations)
	}
}

// TestLastSolveDeltas pins the per-call stats contract: the cumulative
// counters keep growing across Solve calls, while LastSolve isolates the
// effort of the most recent call — the number the per-session telemetry
// in cnfsolver reports.
func TestLastSolveDeltas(t *testing.T) {
	s := pigeonhole(5) // hard UNSAT: guaranteed conflicts and propagations
	if got := s.Solve(); got != Unsat {
		t.Fatalf("status = %v, want UNSAT", got)
	}
	first := s.LastSolve
	if first.Conflicts == 0 || first.Propagations == 0 {
		t.Fatalf("first LastSolve = %+v, want nonzero conflicts and propagations", first)
	}
	if first.Conflicts != s.Conflicts || first.Propagations != s.Propagations {
		t.Errorf("first call: LastSolve %+v must equal the cumulative totals (%d conflicts, %d props)",
			first, s.Conflicts, s.Propagations)
	}

	// A second call re-derives the contradiction with far less work; its
	// LastSolve must be exactly the delta over the first call's totals.
	before := SolveStats{
		Conflicts:    s.Conflicts,
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Learned:      s.Learned,
		Restarts:     s.Restarts,
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("re-solve status = %v, want UNSAT", got)
	}
	want := SolveStats{
		Conflicts:    s.Conflicts - before.Conflicts,
		Decisions:    s.Decisions - before.Decisions,
		Propagations: s.Propagations - before.Propagations,
		Learned:      s.Learned - before.Learned,
		Restarts:     s.Restarts - before.Restarts,
	}
	if s.LastSolve != want {
		t.Errorf("second call: LastSolve = %+v, want the delta %+v", s.LastSolve, want)
	}
	if s.LastSolve.Conflicts >= first.Conflicts {
		t.Errorf("re-solve burned %d conflicts, want fewer than the first call's %d (learnt clauses must help)",
			s.LastSolve.Conflicts, first.Conflicts)
	}
}

// TestRestartsCounted checks the restart counter moves on a search long
// enough to cross the restart schedule.
func TestRestartsCounted(t *testing.T) {
	s := pigeonhole(7)
	s.Solve()
	if s.Restarts == 0 {
		t.Skip("search finished before the first restart on this schedule")
	}
	if s.LastSolve.Restarts != s.Restarts {
		t.Errorf("LastSolve.Restarts = %d, cumulative = %d: first call must match",
			s.LastSolve.Restarts, s.Restarts)
	}
}
