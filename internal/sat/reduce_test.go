package sat

import (
	"math/rand"
	"testing"
)

// TestReduceDBPreservesCorrectness: with an aggressively small learnt-DB
// cap, verdicts must still match brute force on random instances.
func TestReduceDBPreservesCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 150; trial++ {
		nvars := 4 + r.Intn(7)
		nclauses := 4 + r.Intn(nvars*5)
		var cnf [][]Lit
		for i := 0; i < nclauses; i++ {
			cl := make([]Lit, 1+r.Intn(3))
			for j := range cl {
				cl[j] = MkLit(r.Intn(nvars), r.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		s := New(nvars)
		s.MaxLearnts = 4 // force frequent reductions
		ok := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				ok = false
				break
			}
		}
		want := bruteForce(nvars, cnf)
		if !ok {
			if want {
				t.Fatalf("trial %d: trivial unsat but SAT", trial)
			}
			continue
		}
		got := s.Solve()
		if want != (got == Sat) {
			t.Fatalf("trial %d: got %v, brute force %v", trial, got, want)
		}
		if got == Sat && !checkModel(s.Model(), cnf) {
			t.Fatalf("trial %d: bad model after DB reduction", trial)
		}
	}
}

// TestReduceDBOnPigeonhole: a hard UNSAT instance with a small cap still
// terminates correctly (reduction never deletes reason clauses).
func TestReduceDBOnPigeonhole(t *testing.T) {
	s := pigeonhole(5)
	s.MaxLearnts = 8
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(5) with tight DB cap = %v, want UNSAT", got)
	}
	if s.Learned == 0 {
		t.Fatal("no clauses learned")
	}
}
