package sat

import "testing"

// TestGroupActivationAndRetire pins the retractable-group contract: group
// clauses constrain the model only when the group is assumed, and Retire
// removes them permanently while the rest of the instance keeps solving.
func TestGroupActivationAndRetire(t *testing.T) {
	s := New(0)
	x := s.NewVar()
	y := s.NewVar()
	s.AddClause(MkLit(x, false), MkLit(y, false)) // x ∨ y

	g := s.NewGroup()
	g.Add(MkLit(x, true)) // ¬x, only under the group
	g.Add(MkLit(y, true)) // ¬y, only under the group

	// Without the assumption the group is inert: x ∨ y alone is SAT.
	if got := s.Solve(); got != Sat {
		t.Fatalf("unassumed group: got %v, want SAT", got)
	}
	// Assumed, the group forces ¬x ∧ ¬y against x ∨ y: UNSAT.
	if got := s.Solve(g.Assume()); got != Unsat {
		t.Fatalf("assumed group: got %v, want UNSAT", got)
	}
	// Retired, the clauses are gone for good; the instance is SAT again.
	g.Retire()
	if got := s.Solve(); got != Sat {
		t.Fatalf("retired group: got %v, want SAT", got)
	}
	if !s.Value(x) && !s.Value(y) {
		t.Fatal("model violates x ∨ y")
	}
}

// TestGroupIndependence: two groups are controlled independently — each
// Solve call picks which batches of temporary clauses hold.
func TestGroupIndependence(t *testing.T) {
	s := New(0)
	x := s.NewVar()
	gPos := s.NewGroup()
	gPos.Add(MkLit(x, false)) // x
	gNeg := s.NewGroup()
	gNeg.Add(MkLit(x, true)) // ¬x

	if got := s.Solve(gPos.Assume()); got != Sat || !s.Value(x) {
		t.Fatalf("gPos alone: got %v (x=%v), want SAT with x", got, s.Value(x))
	}
	if got := s.Solve(gNeg.Assume()); got != Sat || s.Value(x) {
		t.Fatalf("gNeg alone: got %v (x=%v), want SAT with ¬x", got, s.Value(x))
	}
	if got := s.Solve(gPos.Assume(), gNeg.Assume()); got != Unsat {
		t.Fatalf("both groups: got %v, want UNSAT", got)
	}
	gNeg.Retire()
	if got := s.Solve(gPos.Assume()); got != Sat || !s.Value(x) {
		t.Fatalf("after retiring gNeg: got %v, want SAT with x", got)
	}
}
