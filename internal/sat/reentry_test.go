package sat

import "testing"

// TestSolveReentryWithAssumptions pins the session contract the CNF
// backend relies on: Solve may be re-entered after a Sat verdict — with
// clauses added in between and assumptions on top — and must rewind the
// stale model rather than stacking assumption levels onto it.
func TestSolveReentryWithAssumptions(t *testing.T) {
	s := New(2)
	a, b := MkLit(0, false), MkLit(1, false)
	if !s.AddClause(a, b) {
		t.Fatal("add")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("first solve = %v", got)
	}
	if got := s.Solve(a.Not()); got != Sat {
		t.Fatalf("solve under ¬a = %v", got)
	}
	if s.Value(1) != true {
		t.Fatal("¬a forces b")
	}
	if !s.AddClause(b.Not()) {
		t.Fatal("add ¬b")
	}
	if got := s.Solve(a.Not()); got != Unsat {
		t.Fatalf("(a∨b)∧¬b under ¬a = %v, want UNSAT", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("(a∨b)∧¬b without assumptions = %v, want SAT", got)
	}
	if s.Value(0) != true {
		t.Fatal("model must set a")
	}
	// A guarded blocking clause retired by a unit: the standard
	// assumption-literal retraction pattern.
	g := s.NewVar()
	if !s.AddClause(MkLit(g, true), a.Not()) {
		t.Fatal("add guard clause")
	}
	if got := s.Solve(MkLit(g, false)); got != Unsat {
		t.Fatalf("guarded block active = %v, want UNSAT", got)
	}
	if !s.AddClause(MkLit(g, true)) {
		t.Fatal("retire guard")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("after retiring guard = %v, want SAT", got)
	}
}
