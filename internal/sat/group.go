package sat

// Group is a retractable clause group: a set of clauses that are active
// only while the group's guard literal is assumed, and that can later be
// retired permanently in one step. It is the standard assumption-guard
// construction packaged as an API: every clause added to the group gets
// the guard literal as an extra disjunct, so the clause is vacuously true
// unless the solver is asked to assume the guard's negation.
//
// Callers that stack temporary constraints on a long-lived solver — the
// CNF session's mapping blocks, race-adjacency pins and preemption-bound
// sweeps — create one group per constraint batch, pass Assume() with each
// Solve call while the batch should hold, and Retire the group when the
// batch is done. Retiring adds the guard as a unit clause, which
// permanently satisfies (and thus deactivates) every clause in the group;
// the solver's learnt clauses survive, which is what makes group-based
// re-entry cheaper than rebuilding the instance.
type Group struct {
	guard int
	s     *Solver
}

// NewGroup allocates a fresh retractable clause group on the solver.
func (s *Solver) NewGroup() Group {
	return Group{guard: s.NewVar(), s: s}
}

// Assume returns the assumption literal that activates the group's
// clauses; pass it to Solve for every call during which the group's
// clauses must hold.
func (g Group) Assume() Lit { return MkLit(g.guard, false) }

// Add adds a clause to the group: it holds only while the group is
// assumed. It reports false when the solver is already unsatisfiable.
func (g Group) Add(lits ...Lit) bool {
	all := make([]Lit, 0, len(lits)+1)
	all = append(all, MkLit(g.guard, true))
	all = append(all, lits...)
	return g.s.AddClause(all...)
}

// Retire permanently deactivates the group's clauses by asserting the
// guard, after which Assume must no longer be passed to Solve. Retiring
// an already-retired group is a no-op.
func (g Group) Retire() {
	g.s.AddClause(MkLit(g.guard, false).Not())
}
