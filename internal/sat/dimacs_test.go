package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	s := New(3)
	s.AddClause(MkLit(0, false), MkLit(1, true))
	s.AddClause(MkLit(1, false), MkLit(2, false))
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "p cnf 3 2") {
		t.Fatalf("header wrong: %q", out)
	}
	parsed, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Solve() != s.Solve() {
		t.Fatal("round trip changed satisfiability")
	}
}

func TestParseDIMACSFixture(t *testing.T) {
	src := `c a comment
p cnf 2 3
1 2 0
-1 2 0
1 -2 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("status = %v, want SAT", got)
	}
	if !s.Value(0) || !s.Value(1) {
		t.Fatalf("model = %v, want both true", s.Model())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"1 2 0\n",            // clause before problem line
		"p cnf x 1\n1 0\n",   // bad var count
		"p dnf 2 1\n1 0\n",   // wrong format tag
		"p cnf 1 1\n2 0\n",   // literal out of range
		"p cnf 1 1\nfoo 0\n", // bad literal
		"",                   // empty
	}
	for i, src := range cases {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

// TestPropertyDIMACSRoundTripRandom: random CNFs survive the write/parse
// cycle with identical verdicts.
func TestPropertyDIMACSRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		nvars := 2 + r.Intn(6)
		s := New(nvars)
		for i := 0; i < 2+r.Intn(10); i++ {
			cl := make([]Lit, 1+r.Intn(3))
			for j := range cl {
				cl[j] = MkLit(r.Intn(nvars), r.Intn(2) == 1)
			}
			if !s.AddClause(cl...) {
				break
			}
		}
		var buf bytes.Buffer
		if err := s.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.Solve() != s.Solve() {
			t.Fatalf("trial %d: verdicts differ", trial)
		}
	}
}
