package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS serializes the clauses as added (before internal
// simplification, excluding learnt clauses) in DIMACS CNF format, the
// lingua franca of SAT solvers — useful for debugging an encoding against
// a reference solver.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.origEnd)); err != nil {
		return err
	}
	start := int32(0)
	for _, end := range s.origEnd {
		c := s.origLits[start:end]
		start = end
		for _, l := range c {
			if _, err := bw.WriteString(l.String()); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS CNF problem into a fresh solver. Comment
// lines (c ...) are skipped; the problem line (p cnf V C) sizes the
// variable space.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var s *Solver
	var cur []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: malformed problem line %q", line)
			}
			nvars, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("sat: bad variable count: %v", err)
			}
			s = New(nvars)
			continue
		}
		if s == nil {
			return nil, fmt.Errorf("sat: clause before problem line")
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q: %v", tok, err)
			}
			if v == 0 {
				s.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			neg := v < 0
			if neg {
				v = -v
			}
			if v > s.NumVars() {
				return nil, fmt.Errorf("sat: literal %d exceeds declared variables", v)
			}
			cur = append(cur, MkLit(v-1, neg))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("sat: no problem line")
	}
	if len(cur) > 0 {
		s.AddClause(cur...)
	}
	return s, nil
}
