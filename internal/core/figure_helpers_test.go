package core

import (
	"repro/internal/constraints"
	"repro/internal/schedule"
)

// newSchedGen adapts internal/schedule for the figure tests.
func newSchedGen(sys *constraints.System) func(c int, f func([]constraints.SAPRef)) {
	return func(c int, f func([]constraints.SAPRef)) {
		gen := schedule.NewGenerator(sys, schedule.Options{
			RespectHardEdges: true,
			MaxSchedules:     500_000,
		})
		gen.Generate(c, func(order []constraints.SAPRef, pre int) bool {
			cp := make([]constraints.SAPRef, len(order))
			copy(cp, order)
			f(cp)
			return true
		})
	}
}
