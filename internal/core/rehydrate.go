// Rehydration: rebuilding a Recording from the artifacts a remote
// recorder ships — the program, its recorded path log, and the failure
// description — without re-running the bug hunt. This is the service
// ingestion path (internal/clapd): a field recorder uploads its CLAP log
// and the offline phases run server-side, exactly the paper's split
// between the lightweight in-production record phase and the heavyweight
// reproduction phases.
//
// Everything else a Recording carries is a pure function of the program
// (escape analysis, static lockset/happens-before results, Ball–Larus
// path tables), so the server recomputes it. The scheduler pins (seed,
// chaos, drain bias, action budget) are metadata the recorder observed;
// they are not needed to solve, only to re-run the winning seed for the
// flight-recorder timeline (Recording.CaptureEvents), which also serves
// as an integrity check: pins inconsistent with the program diverge
// there and are reported as errors rather than wrong artifacts.
package core

import (
	"fmt"

	"repro/internal/ballarus"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/staticanalysis"
	"repro/internal/trace"
	"repro/internal/vm"
)

// RehydrateSpec is the recorded metadata accompanying an uploaded path
// log: which run it was (model, inputs), how it failed, and the
// scheduler pins of the winning attempt.
type RehydrateSpec struct {
	// Model is the memory model of the recorded run.
	Model vm.MemModel
	// Inputs are the run's deterministic program inputs.
	Inputs []int64
	// Log is the recorded CLAP path log (possibly a salvaged prefix of a
	// crash-truncated upload).
	Log *trace.PathLog
	// Failure locates the assertion violation to reproduce.
	Failure *vm.Failure
	// Seed, Chaos, DrainBias and MaxActions pin the recorded attempt's
	// scheduler configuration for CaptureEvents re-runs.
	Seed       int64
	Chaos      int
	DrainBias  int
	MaxActions int
	// NoDemote records that the recorder ran with demotion disabled, so
	// the re-run scheduler sees the same scheduling points.
	NoDemote bool
}

// Rehydrate rebuilds a Recording from an uploaded log and its metadata.
// The result drives Reproduce exactly like a locally recorded one; its
// Run summary is nil (the production run happened elsewhere).
func Rehydrate(prog *ir.Program, spec RehydrateSpec) (*Recording, error) {
	if prog == nil {
		return nil, fmt.Errorf("core: rehydrate needs a program")
	}
	if spec.Log == nil || len(spec.Log.Threads) == 0 {
		return nil, fmt.Errorf("core: rehydrate needs a non-empty path log")
	}
	if spec.Failure == nil {
		return nil, fmt.Errorf("core: rehydrate needs the recorded failure")
	}
	if spec.Failure.Kind != vm.FailAssert {
		return nil, fmt.Errorf("core: rehydrate reproduces assertion failures, got %s", spec.Failure.Kind)
	}
	sharing := escape.Analyze(prog)
	static := staticanalysis.Analyze(prog)
	paths, err := ballarus.ProgramPaths(prog)
	if err != nil {
		return nil, err
	}
	var demoted []bool
	if !spec.NoDemote {
		demoted = demotedGlobals(sharing, static)
	}
	return &Recording{
		Prog:       prog,
		Model:      spec.Model,
		Inputs:     spec.Inputs,
		Sharing:    sharing,
		Static:     static,
		Paths:      paths,
		Log:        spec.Log,
		Failure:    spec.Failure,
		Seed:       spec.Seed,
		Chaos:      spec.Chaos,
		DrainBias:  spec.DrainBias,
		MaxActions: spec.MaxActions,
		Demoted:    demoted,
	}, nil
}
