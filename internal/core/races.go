// Predictive-race glue: build a benign constraint system from a recording
// and run the races analysis over it. Like the flight-recorder glue, the
// races package itself is pipeline-agnostic (it never imports core); this
// file gathers the pipeline's pieces — benign symbolic execution, the
// recorded interleaving's alignment times, the static lockset verdicts —
// into its inputs and mirrors its counters into the obs registry.
package core

import (
	"repro/internal/constraints"
	"repro/internal/explain"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/races"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// AnalyzeBenign builds the constraint system of the recorded execution
// with Fbug dropped (symexec.Options.NoBug): the system describes every
// feasible schedule of the recorded paths, not just failing ones. A
// recording that ended in an assertion failure is still accepted — the
// failing assertion's condition is discarded rather than required — so
// both hunted failure recordings and clean seed recordings analyze.
func (r *Recording) AnalyzeBenign() (*constraints.System, error) {
	var locks map[ir.Instr]ir.LockSet
	if r.Static != nil {
		locks = r.Static.Must
	}
	spec := symexec.FailureSpec{Thread: symexec.NoThread}
	if r.Failure != nil && r.Failure.Kind == vm.FailAssert {
		spec = symexec.FailureSpec{Thread: r.Failure.Thread, Site: r.Failure.Site}
	}
	an, err := symexec.Analyze(r.Prog, r.Paths, r.Log, symexec.Options{
		Shared:  r.Sharing.Shared,
		Inputs:  r.Inputs,
		Locks:   locks,
		Failure: spec,
		NoBug:   true,
	})
	if err != nil {
		return nil, err
	}
	return constraints.Build(an, r.Model)
}

// DetectRaces runs the predictive race analysis over the recording:
// benign symbolic execution and constraint encoding, recorded-order
// alignment (for the perturbation fast path), then races.Analyze with
// the recording's static result as the first-stage pair filter. When tr
// is non-nil the per-reason counters are published under the races.*
// stable names inside a "races" span.
func (r *Recording) DetectRaces(opts races.Options, tr *obs.Trace) (*races.Report, error) {
	var sp *obs.Span
	if tr != nil {
		sp = tr.Root().Start("races")
		defer sp.End()
	}
	sys, err := r.AnalyzeBenign()
	if err != nil {
		return nil, err
	}
	sys.Preprocess()

	// The fast path needs every SAP stamped with its recorded time; a
	// capture or alignment failure just downgrades to solver-only.
	var times []int64
	if events, err := r.CaptureEvents(); err == nil {
		if t, err := explain.AlignRecorded(sys, events, r.Demoted); err == nil {
			times = t
		}
	}

	rep, err := races.Analyze(sys, r.Static, times, opts)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		emitRaceCounters(tr.Reg(), rep.Counters)
		sp.SetInt("confirmed", int64(rep.Counters.Confirmed))
		sp.SetInt("pairs", int64(rep.Counters.Pairs))
	}
	return rep, nil
}

// emitRaceCounters publishes the analysis counters under the stable
// races.* names (pinned by the obs name-stability test).
func emitRaceCounters(reg *obs.Registry, c races.Counters) {
	reg.Set("races.pairs", int64(c.Pairs))
	reg.Set("races.pairs.pruned.static", int64(c.PrunedStatic))
	reg.Set("races.pairs.pruned.mutex", int64(c.PrunedMutex))
	reg.Set("races.sites.confirmed", int64(c.Confirmed))
	reg.Set("races.sites.refuted", int64(c.Refuted))
	reg.Set("races.sites.unknown", int64(c.Unknown))
	reg.Set("races.sites.static", int64(c.StaticOnly))
	reg.Set("races.solver.calls", int64(c.SolverCalls))
	reg.Set("races.solver.sessions", int64(c.Sessions))
	reg.Set("races.solver.reuse", int64(c.SessionReuse()))
}
