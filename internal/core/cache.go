package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/constraints"
	"repro/internal/obs"
	"repro/internal/solver"
)

// CacheSchema versions the on-disk artifact encoding. Bumped to /2 when
// address-split refinement retired the eager fallback: symbolic-address
// systems now solve through a different encoding, so schedules cached by
// /1 sessions are no longer comparable attempt-for-attempt.
const CacheSchema = "clap-cache/2"

// DiskCache is a content-addressed on-disk cache of reproduction
// artifacts: the preprocessing snapshot and the solved schedule, keyed by
// a recording content hash (Recording.ContentKey, or the caller's own
// digest — clapd passes its bundle digest so the daemon's dedupe and the
// cache share one address space).
//
// Every operation is best-effort: a missing, unreadable or stale entry is
// a miss, a failed write is ignored. Correctness never depends on the
// cache — a cached schedule is re-validated against the freshly built
// system before it is trusted (see Reproduce), so even a colliding or
// corrupted entry can cost at most one wasted validation. Writes go
// through a temp file + rename, so concurrent writers of the same key
// land on one intact entry. Clearing the cache is just removing the
// directory.
type DiskCache struct {
	Dir string
}

// OpenDiskCache creates the cache directory (if needed) and returns the
// cache.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create cache dir: %w", err)
	}
	return &DiskCache{Dir: dir}, nil
}

type cachedPre struct {
	Schema   string                   `json:"schema"`
	Snapshot *constraints.PreSnapshot `json:"snapshot"`
}

type cachedSchedule struct {
	Schema string               `json:"schema"`
	Solver string               `json:"solver"`
	Order  []constraints.SAPRef `json:"order"`
}

func (c *DiskCache) path(key, kind string) string {
	return filepath.Join(c.Dir, key+"."+kind+".json")
}

func (c *DiskCache) load(key, kind string, v any) bool {
	if c == nil || key == "" {
		return false
	}
	data, err := os.ReadFile(c.path(key, kind))
	if err != nil {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

func (c *DiskCache) store(key, kind string, v any) {
	if c == nil || key == "" {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.Dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if os.Rename(name, c.path(key, kind)) != nil {
		os.Remove(name)
	}
}

// LoadPreprocess returns the cached preprocessing snapshot for key, or
// nil on a miss.
func (c *DiskCache) LoadPreprocess(key string) *constraints.PreSnapshot {
	var e cachedPre
	if !c.load(key, "pre", &e) || e.Schema != CacheSchema {
		return nil
	}
	return e.Snapshot
}

// StorePreprocess saves a preprocessing snapshot under key (best-effort).
func (c *DiskCache) StorePreprocess(key string, snap *constraints.PreSnapshot) {
	if snap == nil {
		return
	}
	c.store(key, "pre", &cachedPre{Schema: CacheSchema, Snapshot: snap})
}

// LoadSchedule returns the cached schedule order for key (and the solver
// that produced it), or nil on a miss.
func (c *DiskCache) LoadSchedule(key string) ([]constraints.SAPRef, string) {
	var e cachedSchedule
	if !c.load(key, "sched", &e) || e.Schema != CacheSchema || len(e.Order) == 0 {
		return nil, ""
	}
	return e.Order, e.Solver
}

// StoreSchedule saves a solved schedule under key (best-effort).
func (c *DiskCache) StoreSchedule(key string, order []constraints.SAPRef, solver string) {
	if len(order) == 0 {
		return
	}
	c.store(key, "sched", &cachedSchedule{Schema: CacheSchema, Solver: solver, Order: order})
}

// cachedSolve serves the solve stage from the schedule cache when the
// stored order still validates against the freshly built system; the
// validation is the safety net that makes any cache state — stale, torn,
// colliding — at worst a wasted O(n) check. A hit is recorded as its own
// "cache" attempt in the trail so `clap stats` and timelines show where
// the schedule came from.
func cachedSolve(rep *Reproduction, sys *constraints.System, cache *DiskCache, key string, sp *obs.Span) *solver.Solution {
	reg := rep.Trace.Reg()
	start := time.Now()
	order, by := cache.LoadSchedule(key)
	if order == nil {
		reg.Counter("core.cache.miss").Add(1)
		return nil
	}
	w, err := sys.ValidateSchedule(order)
	if err != nil {
		reg.Counter("core.cache.miss").Add(1)
		return nil
	}
	reg.Counter("core.cache.hit").Add(1)
	asp := sp.Start("cache")
	asp.SetAttr("solver", by)
	asp.End()
	rep.Attempts = append(rep.Attempts, SolverAttempt{
		Solver:       "cache",
		Elapsed:      time.Since(start),
		Outcome:      "solved",
		BoundReached: -1,
		Preemptions:  w.Preemptions,
	})
	return &solver.Solution{Order: order, Witness: w, Preemptions: w.Preemptions}
}

// lastSolver names the attempt that produced the solution — the trail's
// last entry, by construction.
func lastSolver(attempts []SolverAttempt) string {
	if len(attempts) == 0 {
		return ""
	}
	return attempts[len(attempts)-1].Solver
}

// ContentKey is the recording's content address: a hex SHA-256 over a
// canonical length-prefixed serialization of every field that determines
// the constraint system and the solve — the program text, memory model,
// inputs, scheduler configuration, failure identity and the encoded path
// log. Mirrors clapd's Bundle.Digest framing so the two stay structurally
// comparable, but hashes the *decoded* recording (bundles hash their raw
// upload bytes before any salvage).
func (r *Recording) ContentKey() string {
	h := sha256.New()
	put := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	putInt := func(v int64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(v))
		h.Write(n[:])
	}
	put(CacheSchema)
	put(r.Prog.Dump())
	put(r.Model.String())
	putInt(int64(len(r.Inputs)))
	for _, in := range r.Inputs {
		putInt(in)
	}
	putInt(r.Seed)
	putInt(int64(r.Chaos))
	putInt(int64(r.DrainBias))
	putInt(int64(r.MaxActions))
	putInt(int64(len(r.Demoted)))
	for _, d := range r.Demoted {
		if d {
			putInt(1)
		} else {
			putInt(0)
		}
	}
	if r.Failure != nil {
		putInt(int64(r.Failure.Kind))
		putInt(int64(r.Failure.Thread))
		putInt(int64(r.Failure.Site))
		put(r.Failure.Msg)
		putInt(int64(r.Failure.VisibleIndex))
	}
	if r.Log != nil {
		log := r.Log.Encode()
		putInt(int64(len(log)))
		h.Write(log)
	}
	return hex.EncodeToString(h.Sum(nil))
}
