// Property tests for the constraint preprocessing pass: the preprocessed
// system must accept exactly the same schedules as the unsimplified one,
// pruned candidates must never be any accepted schedule's last writer,
// and every backend must still solve the preprocessed system to a
// schedule the ORIGINAL system validates. Trace diversity comes from the
// seeded fault-injection corrupter: mutated logs are salvaged and
// analyzed, and every analyzable mutant joins the property check.
package core

import (
	"testing"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/faultinject"
	"repro/internal/schedule"
	"repro/internal/solver"
	"repro/internal/trace"
	"repro/internal/vm"
)

// lockShadowSrc exercises the lock-region dominance rule: the x=1 write
// is shadowed by x=2 inside the worker's lock region, so main's locked
// read of x can never observe it.
const lockShadowSrc = `
int x;
int y;
mutex m;
func worker() {
	lock(m);
	x = 1;
	x = 2;
	unlock(m);
	y = 1;
}
func main() {
	int h = spawn worker();
	lock(m);
	int v = x;
	unlock(m);
	int u = y;
	join(h);
	assert(u + v != 1, "read raced the unprotected flag");
}
`

// condPruneSrc exercises wait-candidate pruning: the first signal
// precedes the waiter's fork, so it can never fall inside the wait's
// (begin, end) window.
const condPruneSrc = `
int done;
mutex m;
cond c;
func waiter() {
	lock(m);
	wait(c, m);
	done = 1;
	unlock(m);
}
func main() {
	signal(c);
	int h = spawn waiter();
	signal(c);
	join(h);
	int v = done;
	assert(v == 0, "waiter woke and finished");
}
`

// mutexPruneSrc exercises the mutual-exclusion rule: main's locked read
// of x can never observe the worker's locked x=1, because whichever way
// the two m-regions serialize, main's own x=2 either shadows it or the
// read precedes it. The bug itself lives on the unprotected flag y.
const mutexPruneSrc = `
int x;
int y;
mutex m;
func worker() {
	lock(m);
	x = 1;
	unlock(m);
	y = 1;
}
func main() {
	int h = spawn worker();
	y = 2;
	lock(m);
	x = 2;
	int v = x;
	unlock(m);
	int u = y;
	join(h);
	assert(u == 2, "worker's flag write raced past main's");
}
`

// symIdxSrc keeps addresses symbolic (a racy index feeds an array read),
// checking the pass stays conservative when sameAddr cannot decide.
const symIdxSrc = `
int idx;
int a[2];
func worker() {
	idx = 1;
	a[1] = 5;
}
func main() {
	int h = spawn worker();
	int j = idx;
	int v = a[j];
	join(h);
	assert(v == 0, "saw write through racy index");
}
`

func recordSrc(t *testing.T, src string, model vm.MemModel) *Recording {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Record(prog, RecordOptions{Model: model, SeedLimit: 4000})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// analyzeBoth builds the same recording twice: once untouched, once
// preprocessed. Symbolic execution is deterministic, so the two systems
// share SAP indexing and schedules transfer between them directly.
func analyzeBoth(t *testing.T, rec *Recording) (plain, pre *constraints.System) {
	t.Helper()
	plain, err := rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	pre, err = rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	pre.Preprocess()
	return plain, pre
}

// prunedSets computes, per read, the candidates Preprocess removed.
func prunedSets(pre *constraints.System) []map[constraints.SAPRef]bool {
	pruned := make([]map[constraints.SAPRef]bool, len(pre.Reads))
	for i := range pre.Reads {
		ri := &pre.Reads[i]
		if len(ri.Cands) == len(ri.AllRivals()) {
			continue
		}
		kept := map[constraints.SAPRef]bool{}
		for _, w := range ri.Cands {
			kept[w] = true
		}
		pruned[i] = map[constraints.SAPRef]bool{}
		for _, w := range ri.AllRivals() {
			if !kept[w] {
				pruned[i][w] = true
			}
		}
	}
	return pruned
}

// assertSchedule checks one candidate schedule against both systems:
// accept/reject must agree, accepted witnesses must agree, no accepted
// schedule may map a read to a pruned candidate, and NoInit reads never
// observe the initial value. Reports whether the schedule was accepted.
func assertSchedule(t *testing.T, plain, pre *constraints.System, pruned []map[constraints.SAPRef]bool, order []constraints.SAPRef) bool {
	t.Helper()
	wA, errA := plain.ValidateSchedule(order)
	wB, errB := pre.ValidateSchedule(order)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("systems disagree on schedule: plain=%v preprocessed=%v", errA, errB)
	}
	if errA != nil {
		return false
	}
	for i := range pre.Reads {
		ri := &pre.Reads[i]
		mw, mwB := wA.MappedWrite[ri.Read], wB.MappedWrite[ri.Read]
		if mw != mwB {
			t.Fatalf("witnesses disagree on read %v: %v vs %v", ri.Read, mw, mwB)
		}
		if pruned[i] != nil && pruned[i][mw] {
			t.Fatalf("accepted schedule maps read %v to pruned candidate %v", ri.Read, mw)
		}
		if ri.NoInit && mw == -1 {
			t.Fatalf("NoInit read %v observed the initial value", ri.Read)
		}
	}
	return true
}

// checkSameModels enumerates bounded candidate schedules and applies
// assertSchedule to each, returning how many were accepted. Some system
// shapes (condition variables) defeat the generator entirely — callers
// then fall back to solver-produced schedules for non-vacuity.
func checkSameModels(t *testing.T, plain, pre *constraints.System, budget int) int {
	t.Helper()
	pruned := prunedSets(pre)
	gen := schedule.NewGenerator(plain, schedule.Options{
		MaxSchedules:     budget,
		RespectHardEdges: true,
	})
	accepted := 0
	gen.Generate(4, func(order []constraints.SAPRef, _ int) bool {
		if assertSchedule(t, plain, pre, pruned, order) {
			accepted++
		}
		return true
	})
	return accepted
}

// solveAndCrossValidate solves the preprocessed system with the
// sequential and CNF backends, validates each solution against the
// original, unpreprocessed system, and runs the full per-schedule
// property on both solutions. Returns how many solutions it checked.
func solveAndCrossValidate(t *testing.T, plain, pre *constraints.System) int {
	t.Helper()
	pruned := prunedSets(pre)
	sol, _, err := solver.Solve(pre, solver.Options{MaxPreemptions: -1})
	if err != nil {
		t.Fatalf("sequential solver on preprocessed system: %v", err)
	}
	if !assertSchedule(t, plain, pre, pruned, sol.Order) {
		t.Fatal("sequential solution rejected by the original system")
	}
	csol, _, err := cnfsolver.Solve(pre, cnfsolver.Options{})
	if err != nil {
		t.Fatalf("cnf solver on preprocessed system: %v", err)
	}
	if !assertSchedule(t, plain, pre, pruned, csol.Order) {
		t.Fatal("cnf solution rejected by the original system")
	}
	return 2
}

func TestPreprocessPreservesSchedules(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		model vm.MemModel
	}{
		{"lost_update_sc", lostUpdateSrc, vm.SC},
		{"lost_update_pso", lostUpdateSrc, vm.PSO},
		{"lock_shadow", lockShadowSrc, vm.SC},
		{"mutex_prune", mutexPruneSrc, vm.SC},
		{"cond_prune", condPruneSrc, vm.SC},
		{"symbolic_index", symIdxSrc, vm.SC},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rec := recordSrc(t, tc.src, tc.model)
			plain, pre := analyzeBoth(t, rec)
			accepted := checkSameModels(t, plain, pre, 4000)
			accepted += solveAndCrossValidate(t, plain, pre)
			if accepted == 0 {
				t.Fatal("property check was vacuous: no schedule accepted")
			}
		})
	}
}

// TestPreprocessRuleCoverage pins that the individual rules actually fire
// on the programs designed to trigger them — a vacuously-green property
// suite would hide a pass that prunes nothing.
func TestPreprocessRuleCoverage(t *testing.T) {
	rec := recordSrc(t, lockShadowSrc, vm.SC)
	_, pre := analyzeBoth(t, rec)
	st := pre.Pre
	if st.CandsAfter >= st.CandsBefore {
		t.Fatalf("no candidates pruned on the shadowing program: %+v", st)
	}
	if st.PrunedLock == 0 && st.PrunedShadowed == 0 {
		t.Fatalf("neither shadowing rule fired: %+v", st)
	}

	rec = recordSrc(t, condPruneSrc, vm.SC)
	_, pre = analyzeBoth(t, rec)
	st = pre.Pre
	if st.WaitCandsAfter >= st.WaitCandsBefore {
		t.Fatalf("no wait candidate pruned: %+v", st)
	}

	rec = recordSrc(t, mutexPruneSrc, vm.SC)
	_, pre = analyzeBoth(t, rec)
	st = pre.Pre
	if st.PrunedMutex == 0 {
		t.Fatalf("mutual-exclusion rule did not fire: %+v", st)
	}

	// The lost-update program's assertion reads every variable the bug
	// depends on; the loop-free quiet reads of other programs may be free.
	rec = recordSrc(t, lockShadowSrc, vm.SC)
	_, pre = analyzeBoth(t, rec)
	if pre.Pre.Reads == 0 {
		t.Fatal("no reads in system")
	}
	// Preprocess must be idempotent.
	again := pre.Preprocess()
	if again != pre.Pre {
		t.Fatal("Preprocess is not idempotent")
	}
}

// TestPreprocessOnSalvagedMutants feeds seeded corruptions of a recorded
// log through salvage and analysis (the fault-injection seeds double as
// trace diversity) and re-runs the schedule-equivalence property on every
// mutant that still analyzes.
func TestPreprocessOnSalvagedMutants(t *testing.T) {
	rec := recordSrc(t, lostUpdateSrc, vm.SC)
	buf := rec.Log.EncodeFramed(trace.FramedOptions{EventsPerFrame: 8})
	c := faultinject.NewCorrupter(0x5EED)
	analyzed := 0
	for i := 0; i < 40; i++ {
		mut, _ := c.Mutate(buf)
		sl, _ := trace.DecodePathLogSalvage(mut)
		mrec := *rec
		mrec.Log = sl
		plain, err := mrec.Analyze()
		if err != nil {
			continue // the mutant no longer encodes a failing execution
		}
		pre, err := mrec.Analyze()
		if err != nil {
			t.Fatalf("mutant %d: second analysis disagrees: %v", i, err)
		}
		pre.Preprocess()
		analyzed++
		checkSameModels(t, plain, pre, 500)
	}
	if analyzed == 0 {
		t.Fatal("no mutant was analyzable: corruption sweep too destructive")
	}
}
