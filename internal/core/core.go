// Package core wires CLAP's phases into the end-to-end pipeline of
// Figure 1 of the paper:
//
//	record (thread-local paths) → decode → symbolic execution →
//	constraint encoding → solving (sequential or parallel) → replay.
//
// It is the library's primary entry point: give it a mini-language program
// and it produces a recording of a failing execution, a constraint system,
// a bug-reproducing schedule with (heuristically) minimal preemptions, and
// a verified deterministic replay. The top-level clap package re-exports
// this API.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ballarus"
	"repro/internal/constraints"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/parsolve"
	"repro/internal/replay"
	"repro/internal/solver"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/vm"
)

// RecordOptions configures the record phase.
type RecordOptions struct {
	// Model is the simulated memory model of the production run.
	Model vm.MemModel
	// Inputs are the deterministic program inputs.
	Inputs []int64
	// Seed seeds the bug-hunting scheduler; when SeedLimit > 0, seeds
	// Seed..Seed+SeedLimit-1 are tried until an assertion fails (the
	// paper's "ran it many times until the bug occurred").
	Seed      int64
	SeedLimit int64
	// Chaos and DrainBias tune the random scheduler (see vm.RandomScheduler).
	Chaos     int
	DrainBias int
	// MaxActions bounds each attempt.
	MaxActions int
}

// Recording is a recorded failing execution: the CLAP log plus everything
// needed for the offline phases.
type Recording struct {
	Prog    *ir.Program
	Model   vm.MemModel
	Inputs  []int64
	Sharing *escape.Result
	Paths   []*ballarus.FuncPaths
	Log     *trace.PathLog
	Failure *vm.Failure
	Run     *vm.Result
	// Seed is the scheduler seed that triggered the failure.
	Seed int64
}

// Compile parses, checks and lowers a mini-language source program.
func Compile(src string) (*ir.Program, error) { return ir.CompileSource(src) }

// Record runs the program under seeded random schedules until an assertion
// fails, recording only thread-local paths (no shared-memory dependencies,
// no values, no synchronization added — CLAP's phase 1).
//
// When Chaos is unset, seeds are swept with a ladder of scheduler chaos
// levels, collecting a few failing candidates per level, and the recording
// with the fewest shared access points wins. Small failing traces are what
// production failures look like, and they give the offline solver the
// easiest constraint systems: gentle scheduling minimizes preemptions for
// data-race bugs, while aggressive scheduling ends spin loops early for
// the mutual-exclusion bugs — sampling both and keeping the smallest
// handles either shape. (The paper's record phase similarly retries with
// inserted timing delays until a good failing run appears.)
func Record(prog *ir.Program, opts RecordOptions) (*Recording, error) {
	if opts.SeedLimit <= 0 {
		opts.SeedLimit = 1
	}
	ladder := []int{opts.Chaos}
	if opts.Chaos == 0 {
		ladder = []int{5, 15, 40, 70}
	}
	const perLevel = 3
	var best *Recording
	// The static analyses are per-program: hoist them out of the seed loop.
	sharing := escape.Analyze(prog)
	paths, err := ballarus.ProgramPaths(prog)
	if err != nil {
		return nil, err
	}
	for _, chaos := range ladder {
		attempt := opts
		attempt.Chaos = chaos
		found := 0
		for s := opts.Seed; s < opts.Seed+opts.SeedLimit && found < perLevel; s++ {
			rec, err := recordSeed(prog, s, attempt, sharing, paths)
			if err != nil {
				if errors.Is(err, vm.ErrActionBudget) {
					continue // a livelocked seed is just an uninteresting run
				}
				return nil, err
			}
			if rec.Failure == nil || rec.Failure.Kind != vm.FailAssert {
				continue
			}
			found++
			if best == nil || rec.Run.VisibleEvents < best.Run.VisibleEvents {
				best = rec
			}
		}
	}
	if best != nil {
		return best, nil
	}
	return nil, fmt.Errorf("core: no assertion failure in %d seeds starting at %d", opts.SeedLimit, opts.Seed)
}

// RecordSeed runs exactly one recording attempt with the given seed.
func RecordSeed(prog *ir.Program, seed int64, opts RecordOptions) (*Recording, error) {
	sharing := escape.Analyze(prog)
	paths, err := ballarus.ProgramPaths(prog)
	if err != nil {
		return nil, err
	}
	return recordSeed(prog, seed, opts, sharing, paths)
}

// recordSeed is RecordSeed with the per-program analyses precomputed.
func recordSeed(prog *ir.Program, seed int64, opts RecordOptions, sharing *escape.Result, paths []*ballarus.FuncPaths) (*Recording, error) {
	pathRec := &vm.PathRecorder{Paths: paths, Log: &trace.PathLog{}}
	sched := vm.NewRandomScheduler(seed)
	if opts.Chaos > 0 {
		sched.Chaos = opts.Chaos
	}
	if opts.DrainBias > 0 {
		sched.DrainBias = opts.DrainBias
	}
	machine, err := vm.New(prog, vm.Config{
		Model:        opts.Model,
		Inputs:       opts.Inputs,
		MaxActions:   opts.MaxActions,
		Sched:        sched,
		Shared:       sharing.Shared,
		PathRecorder: pathRec,
	})
	if err != nil {
		return nil, err
	}
	res, err := machine.Run()
	if err != nil {
		return nil, err
	}
	return &Recording{
		Prog:    prog,
		Model:   opts.Model,
		Inputs:  opts.Inputs,
		Sharing: sharing,
		Paths:   pathRec.Paths,
		Log:     pathRec.Log,
		Failure: res.Failure,
		Run:     res,
		Seed:    seed,
	}, nil
}

// LogSize returns the encoded size of the CLAP path log in bytes.
func (r *Recording) LogSize() int { return r.Log.Size() }

// Analyze runs symbolic execution along the recorded paths and encodes the
// constraint system F = Fpath ∧ Fbug ∧ Fso ∧ Frw ∧ Fmo.
func (r *Recording) Analyze() (*constraints.System, error) {
	if r.Failure == nil || r.Failure.Kind != vm.FailAssert {
		return nil, fmt.Errorf("core: recording holds no assertion failure to reproduce")
	}
	an, err := symexec.Analyze(r.Prog, r.Paths, r.Log, symexec.Options{
		Shared: r.Sharing.Shared,
		Inputs: r.Inputs,
		Failure: symexec.FailureSpec{
			Thread: r.Failure.Thread,
			Site:   r.Failure.Site,
		},
	})
	if err != nil {
		return nil, err
	}
	return constraints.Build(an, r.Model)
}

// SolverKind selects the solving strategy.
type SolverKind uint8

// Solver kinds.
const (
	// Sequential is the decision-procedure solver with minimal-preemption
	// iteration (internal/solver).
	Sequential SolverKind = iota
	// Parallel is the generate-and-validate worker pool (internal/parsolve).
	Parallel
)

// ReproduceOptions configures the offline phases.
type ReproduceOptions struct {
	Solver SolverKind
	// Sequential solver tuning.
	SeqOptions solver.Options
	// Parallel solver tuning.
	ParOptions parsolve.Options
	// SkipReplay computes the schedule without the final replay run.
	SkipReplay bool
}

// Reproduction is the end-to-end result for one recorded failure.
type Reproduction struct {
	Recording *Recording
	System    *constraints.System
	Stats     constraints.Stats
	Solution  *solver.Solution
	// Parallel holds the parallel-solver statistics when that solver ran.
	Parallel *parsolve.Result
	// SeqStats holds the sequential-solver statistics when that solver ran.
	SeqStats *solver.Stats
	// Outcome is the replay verdict (nil when SkipReplay).
	Outcome *replay.Outcome

	// Phase timings, Table 1's time columns.
	SymbolicTime time.Duration
	SolveTime    time.Duration
	ReplayTime   time.Duration
}

// Reproduce runs the offline pipeline on a recording.
func Reproduce(rec *Recording, opts ReproduceOptions) (*Reproduction, error) {
	rep := &Reproduction{Recording: rec}
	t0 := time.Now()
	sys, err := rec.Analyze()
	if err != nil {
		return nil, err
	}
	rep.SymbolicTime = time.Since(t0)
	rep.System = sys
	rep.Stats = sys.ComputeStats()

	t1 := time.Now()
	switch opts.Solver {
	case Sequential:
		seqOpts := opts.SeqOptions
		if seqOpts.MaxPreemptions == 0 {
			// Default to minimal-preemption mode; an exact zero bound is
			// available through the solver package directly.
			seqOpts.MaxPreemptions = -1
		}
		sol, stats, err := solver.Solve(sys, seqOpts)
		if err != nil {
			return nil, err
		}
		rep.Solution = sol
		rep.SeqStats = stats
	case Parallel:
		res, err := parsolve.Solve(sys, opts.ParOptions)
		if err != nil {
			return nil, err
		}
		if !res.Found() {
			return nil, fmt.Errorf("core: parallel solver found no schedule (generated %d, capped=%v, timedOut=%v)",
				res.Generated, res.Capped, res.TimedOut)
		}
		rep.Parallel = res
		// Prefer the fewest-preemption solution found.
		best := res.Solutions[0]
		for _, s := range res.Solutions[1:] {
			if s.Preemptions < best.Preemptions {
				best = s
			}
		}
		rep.Solution = best
	default:
		return nil, fmt.Errorf("core: unknown solver kind %d", opts.Solver)
	}
	rep.SolveTime = time.Since(t1)

	if !opts.SkipReplay {
		t2 := time.Now()
		out, err := replay.Run(sys, rep.Solution, replay.Options{
			Mode:   replay.ModeFor(rec.Model),
			Inputs: rec.Inputs,
		})
		if err != nil {
			return nil, err
		}
		rep.ReplayTime = time.Since(t2)
		rep.Outcome = out
		if !out.Reproduced {
			return rep, fmt.Errorf("core: replay did not reproduce the failure (got %v)", out.Failure)
		}
	}
	return rep, nil
}

// ReproduceSource is the one-call convenience API: compile, record, solve,
// replay.
func ReproduceSource(src string, recOpts RecordOptions, opts ReproduceOptions) (*Reproduction, error) {
	prog, err := Compile(src)
	if err != nil {
		return nil, err
	}
	rec, err := Record(prog, recOpts)
	if err != nil {
		return nil, err
	}
	return Reproduce(rec, opts)
}
