// Package core wires CLAP's phases into the end-to-end pipeline of
// Figure 1 of the paper:
//
//	record (thread-local paths) → decode → symbolic execution →
//	constraint encoding → solving (sequential or parallel) → replay.
//
// It is the library's primary entry point: give it a mini-language program
// and it produces a recording of a failing execution, a constraint system,
// a bug-reproducing schedule with (heuristically) minimal preemptions, and
// a verified deterministic replay. The top-level clap package re-exports
// this API.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/ballarus"
	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/parsolve"
	"repro/internal/replay"
	"repro/internal/solver"
	"repro/internal/staticanalysis"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/vm"
)

// RecordOptions configures the record phase.
type RecordOptions struct {
	// Model is the simulated memory model of the production run.
	Model vm.MemModel
	// Inputs are the deterministic program inputs.
	Inputs []int64
	// Seed seeds the bug-hunting scheduler; when SeedLimit > 0, seeds
	// Seed..Seed+SeedLimit-1 are tried until an assertion fails (the
	// paper's "ran it many times until the bug occurred").
	Seed      int64
	SeedLimit int64
	// Chaos and DrainBias tune the random scheduler (see vm.RandomScheduler).
	Chaos     int
	DrainBias int
	// MaxActions bounds each attempt.
	MaxActions int
	// Ctx cancels the bug hunt between attempts (nil = never).
	Ctx context.Context
	// Deadline bounds the hunt's wall time (0 = none). An interrupted hunt
	// returns the best recording found so far, or a *NoFailureError that
	// reports how far it got.
	Deadline time.Duration
	// NoDemote keeps every shared access a scheduling point. By default
	// the recorder demotes accesses to globals the static lockset /
	// happens-before analysis proves race-free (staticanalysis.Demotable):
	// they keep full shared-memory semantics and stay in the path log,
	// but stop being preemption points and visible events, shrinking the
	// recorded trace and the scheduler's search space.
	NoDemote bool
	// Obs, when set, records the hunt as a "record" span (one
	// "record.level" child per chaos level) and publishes the record.*
	// counters to the trace's registry. Nil records nothing.
	Obs *obs.Trace
}

// LevelStats reports one chaos level's share of a bug hunt.
type LevelStats struct {
	// Chaos is the scheduler chaos level swept.
	Chaos int
	// Seeds is how many schedules were executed at this level.
	Seeds int
	// Livelocked counts runs that hit the action budget without failing.
	Livelocked int
	// Failures counts runs that ended in an assertion failure.
	Failures int
}

// NoFailureError reports a bug hunt that found no assertion failure,
// with the per-chaos-level breakdown of what was tried.
type NoFailureError struct {
	Seed      int64
	SeedLimit int64
	Levels    []LevelStats
	// Interrupted reports that the hunt was cut short by Ctx or Deadline
	// rather than exhausting its seeds.
	Interrupted bool
}

func (e *NoFailureError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: no assertion failure in %d seeds starting at %d", e.SeedLimit, e.Seed)
	if e.Interrupted {
		b.WriteString(" (hunt interrupted)")
	}
	for _, l := range e.Levels {
		fmt.Fprintf(&b, "; chaos %d: %d run, %d livelocked", l.Chaos, l.Seeds, l.Livelocked)
	}
	return b.String()
}

// Recording is a recorded failing execution: the CLAP log plus everything
// needed for the offline phases.
type Recording struct {
	Prog    *ir.Program
	Model   vm.MemModel
	Inputs  []int64
	Sharing *escape.Result
	// Static is the lockset / happens-before analysis result; its Must
	// map stamps SAPs with locksets during symbolic execution, and its
	// Demotable verdicts drove the recorder's access demotion.
	Static  *staticanalysis.Result
	Paths   []*ballarus.FuncPaths
	Log     *trace.PathLog
	Failure *vm.Failure
	Run     *vm.Result
	// Seed is the scheduler seed that triggered the failure.
	Seed int64
	// Chaos, DrainBias, MaxActions and Demoted pin the winning attempt's
	// effective scheduler configuration, so CaptureEvents can re-run the
	// seed bit-identically. (CLAP records no global order — the recorded
	// interleaving is reconstructed, not stored.)
	Chaos      int
	DrainBias  int
	MaxActions int
	Demoted    []bool
}

// CaptureEvents reconstructs the recorded run's global interleaving by
// re-executing the winning seed under the identical deterministic
// scheduler configuration and collecting the visible events (with their
// logical timestamps). It verifies the re-run reaches the same failure;
// a divergence means the recording's configuration was tampered with and
// is reported as an error rather than a wrong timeline.
func (r *Recording) CaptureEvents() ([]vm.VisibleEvent, error) {
	sched := vm.NewRandomScheduler(r.Seed)
	if r.Chaos > 0 {
		sched.Chaos = r.Chaos
	}
	if r.DrainBias > 0 {
		sched.DrainBias = r.DrainBias
	}
	var events []vm.VisibleEvent
	machine, err := vm.New(r.Prog, vm.Config{
		Model:        r.Model,
		Inputs:       r.Inputs,
		MaxActions:   r.MaxActions,
		Sched:        sched,
		Shared:       r.Sharing.Shared,
		Demoted:      r.Demoted,
		PathRecorder: &vm.PathRecorder{Paths: r.Paths, Log: &trace.PathLog{}},
		OnVisible:    func(ev vm.VisibleEvent) { events = append(events, ev) },
	})
	if err != nil {
		return nil, err
	}
	res, err := machine.Run()
	if err != nil {
		return nil, fmt.Errorf("core: recorded-run capture diverged: %w", err)
	}
	if r.Failure != nil {
		f := res.Failure
		if f == nil || f.Kind != r.Failure.Kind || f.Thread != r.Failure.Thread || f.Site != r.Failure.Site {
			return nil, fmt.Errorf("core: recorded-run capture diverged: recorded %v, re-run %v", r.Failure, f)
		}
	}
	return events, nil
}

// Compile parses, checks and lowers a mini-language source program.
func Compile(src string) (*ir.Program, error) { return ir.CompileSource(src) }

// Record runs the program under seeded random schedules until an assertion
// fails, recording only thread-local paths (no shared-memory dependencies,
// no values, no synchronization added — CLAP's phase 1).
//
// When Chaos is unset, seeds are swept with a ladder of scheduler chaos
// levels, collecting a few failing candidates per level, and the recording
// with the fewest shared access points wins. Small failing traces are what
// production failures look like, and they give the offline solver the
// easiest constraint systems: gentle scheduling minimizes preemptions for
// data-race bugs, while aggressive scheduling ends spin loops early for
// the mutual-exclusion bugs — sampling both and keeping the smallest
// handles either shape. (The paper's record phase similarly retries with
// inserted timing delays until a good failing run appears.)
func Record(prog *ir.Program, opts RecordOptions) (*Recording, error) {
	if opts.SeedLimit <= 0 {
		opts.SeedLimit = 1
	}
	ladder := []int{opts.Chaos}
	if opts.Chaos == 0 {
		ladder = []int{5, 15, 40, 70}
	}
	const perLevel = 3
	var best *Recording
	// The static analyses are per-program: hoist them out of the seed loop.
	sharing := escape.Analyze(prog)
	static := staticanalysis.Analyze(prog)
	paths, err := ballarus.ProgramPaths(prog)
	if err != nil {
		return nil, err
	}
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = time.Now().Add(opts.Deadline)
	}
	if opts.Ctx != nil {
		if d, ok := opts.Ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
	}
	sp := opts.Obs.Root().Start("record")
	defer endStage(opts.Obs.Reg(), "record", sp)
	var levels []LevelStats
	interrupted := false
hunt:
	for _, chaos := range ladder {
		attempt := opts
		attempt.Chaos = chaos
		ls := LevelStats{Chaos: chaos}
		lsp := sp.Start("record.level")
		lsp.SetInt("chaos", int64(chaos))
		found := 0
		for s := opts.Seed; s < opts.Seed+opts.SeedLimit && found < perLevel; s++ {
			if huntInterrupted(opts.Ctx, deadline) {
				interrupted = true
				levels = append(levels, ls)
				endLevel(lsp, ls)
				break hunt
			}
			ls.Seeds++
			rec, err := recordSeed(prog, s, attempt, sharing, static, paths)
			if err != nil {
				if errors.Is(err, vm.ErrActionBudget) {
					ls.Livelocked++
					continue // a livelocked seed is just an uninteresting run
				}
				lsp.SetAttr("err", err.Error())
				endLevel(lsp, ls)
				return nil, err
			}
			if rec.Failure == nil || rec.Failure.Kind != vm.FailAssert {
				continue
			}
			ls.Failures++
			found++
			if best == nil || rec.Run.VisibleEvents < best.Run.VisibleEvents {
				best = rec
			}
		}
		levels = append(levels, ls)
		endLevel(lsp, ls)
	}
	emitRecordCounters(opts.Obs.Reg(), levels, best)
	if best != nil {
		// An interrupted hunt that already has a failing run degrades
		// gracefully: the candidate pool is merely smaller.
		sp.SetInt("seed", best.Seed)
		return best, nil
	}
	sp.SetAttr("err", "no assertion failure found")
	return nil, &NoFailureError{
		Seed:        opts.Seed,
		SeedLimit:   opts.SeedLimit,
		Levels:      levels,
		Interrupted: interrupted,
	}
}

// endLevel stamps one chaos level's stats onto its span and closes it.
func endLevel(lsp *obs.Span, ls LevelStats) {
	lsp.SetInt("seeds", int64(ls.Seeds))
	lsp.SetInt("livelocked", int64(ls.Livelocked))
	lsp.SetInt("failures", int64(ls.Failures))
	lsp.End()
}

// huntInterrupted reports whether the record-phase budget has run out.
func huntInterrupted(ctx context.Context, deadline time.Time) bool {
	if ctx != nil {
		select {
		case <-ctx.Done():
			return true
		default:
		}
	}
	return !deadline.IsZero() && time.Now().After(deadline)
}

// RecordSeed runs exactly one recording attempt with the given seed.
func RecordSeed(prog *ir.Program, seed int64, opts RecordOptions) (*Recording, error) {
	sharing := escape.Analyze(prog)
	static := staticanalysis.Analyze(prog)
	paths, err := ballarus.ProgramPaths(prog)
	if err != nil {
		return nil, err
	}
	return recordSeed(prog, seed, opts, sharing, static, paths)
}

// demotedGlobals marks the shared globals whose accesses the recorder may
// demote from scheduling points: those the lockset / happens-before
// analysis proves free of concurrent conflicting access. Returns nil when
// nothing is demotable (the common case for racy programs), so the VM's
// fast path stays unchanged.
func demotedGlobals(sharing *escape.Result, static *staticanalysis.Result) []bool {
	var out []bool
	for g, sh := range sharing.Shared {
		if sh && static.Demotable[g] {
			if out == nil {
				out = make([]bool, len(sharing.Shared))
			}
			out[g] = true
		}
	}
	return out
}

// recordSeed is RecordSeed with the per-program analyses precomputed.
func recordSeed(prog *ir.Program, seed int64, opts RecordOptions, sharing *escape.Result, static *staticanalysis.Result, paths []*ballarus.FuncPaths) (*Recording, error) {
	pathRec := &vm.PathRecorder{Paths: paths, Log: &trace.PathLog{}}
	sched := vm.NewRandomScheduler(seed)
	if opts.Chaos > 0 {
		sched.Chaos = opts.Chaos
	}
	if opts.DrainBias > 0 {
		sched.DrainBias = opts.DrainBias
	}
	var demoted []bool
	if !opts.NoDemote {
		demoted = demotedGlobals(sharing, static)
	}
	machine, err := vm.New(prog, vm.Config{
		Model:        opts.Model,
		Inputs:       opts.Inputs,
		MaxActions:   opts.MaxActions,
		Sched:        sched,
		Shared:       sharing.Shared,
		Demoted:      demoted,
		PathRecorder: pathRec,
	})
	if err != nil {
		return nil, err
	}
	res, err := machine.Run()
	if err != nil {
		return nil, err
	}
	return &Recording{
		Prog:       prog,
		Model:      opts.Model,
		Inputs:     opts.Inputs,
		Sharing:    sharing,
		Static:     static,
		Paths:      pathRec.Paths,
		Log:        pathRec.Log,
		Failure:    res.Failure,
		Run:        res,
		Seed:       seed,
		Chaos:      sched.Chaos,
		DrainBias:  sched.DrainBias,
		MaxActions: opts.MaxActions,
		Demoted:    demoted,
	}, nil
}

// LogSize returns the encoded size of the CLAP path log in bytes.
func (r *Recording) LogSize() int { return r.Log.Size() }

// Analyze runs symbolic execution along the recorded paths and encodes the
// constraint system F = Fpath ∧ Fbug ∧ Fso ∧ Frw ∧ Fmo.
func (r *Recording) Analyze() (*constraints.System, error) {
	if r.Failure == nil || r.Failure.Kind != vm.FailAssert {
		return nil, fmt.Errorf("core: recording holds no assertion failure to reproduce")
	}
	var locks map[ir.Instr]ir.LockSet
	if r.Static != nil {
		locks = r.Static.Must
	}
	an, err := symexec.Analyze(r.Prog, r.Paths, r.Log, symexec.Options{
		Shared: r.Sharing.Shared,
		Inputs: r.Inputs,
		Locks:  locks,
		Failure: symexec.FailureSpec{
			Thread: r.Failure.Thread,
			Site:   r.Failure.Site,
		},
	})
	if err != nil {
		return nil, err
	}
	return constraints.Build(an, r.Model)
}

// SolverKind selects the solving strategy.
type SolverKind uint8

// Solver kinds.
const (
	// Sequential is the decision-procedure solver with minimal-preemption
	// iteration (internal/solver).
	Sequential SolverKind = iota
	// Parallel is the generate-and-validate worker pool (internal/parsolve).
	Parallel
	// CNF is the SAT encoding with a CDCL core (internal/cnfsolver).
	CNF
	// Portfolio tries Sequential under a budget, then Parallel, then CNF,
	// recording a per-attempt trail; a panic or injected fault in one
	// stage degrades to the next instead of killing the pipeline.
	Portfolio
)

// String names the kind for traces and CLI output.
func (k SolverKind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	case CNF:
		return "cnf"
	case Portfolio:
		return "portfolio"
	}
	return fmt.Sprintf("solverkind(%d)", uint8(k))
}

// ReproduceOptions configures the offline phases.
type ReproduceOptions struct {
	Solver SolverKind
	// Sequential solver tuning.
	SeqOptions solver.Options
	// Parallel solver tuning.
	ParOptions parsolve.Options
	// CNF solver tuning.
	CNFOptions cnfsolver.Options
	// SkipReplay computes the schedule without the final replay run.
	SkipReplay bool
	// CaptureReplay collects the replay's visible events into
	// Outcome.Events — the replay lane of the flight-recorder timeline.
	CaptureReplay bool
	// NoPreprocess skips the shared constraint preprocessing pass
	// (constraints.Preprocess) that every backend otherwise benefits
	// from. Intended for baseline benchmarking and debugging.
	NoPreprocess bool
	// SerialPortfolio runs the portfolio stages strictly one after
	// another (sequential, then parallel, then CNF) instead of racing
	// them concurrently. Intended for baseline benchmarking.
	SerialPortfolio bool
	// Cache, when set, is the content-addressed artifact cache: the
	// preprocessing snapshot and the solved schedule are loaded from (and
	// stored to) it under CacheKey. Cached schedules are re-validated
	// against the freshly built system before being trusted, so a stale
	// entry degrades to a normal solve rather than a wrong answer. Hits
	// and misses are counted as core.cache.{hit,miss}.
	Cache *DiskCache
	// CacheKey addresses this recording's artifacts in Cache; empty means
	// Recording.ContentKey(). clapd passes its bundle digest so the
	// daemon's dedupe and the cache share one address space.
	CacheKey string
	// Ctx cancels the offline phases (nil = never).
	Ctx context.Context
	// Deadline bounds the whole offline pipeline (0 = none). The remaining
	// budget is threaded through solving and replay; per-solver deadlines
	// in SeqOptions etc. still apply and the earliest bound wins.
	Deadline time.Duration
	// Obs, when set, is the trace the pipeline's spans and metrics attach
	// to (typically shared with RecordOptions.Obs so one report covers the
	// whole run). When nil, Reproduce still builds a private trace — the
	// phase-timing accessors on Reproduction are derived from it.
	Obs *obs.Trace
}

// Reproduction is the end-to-end result for one recorded failure.
type Reproduction struct {
	Recording *Recording
	System    *constraints.System
	Stats     constraints.Stats
	Solution  *solver.Solution
	// Parallel holds the parallel-solver statistics when that solver ran.
	Parallel *parsolve.Result
	// SeqStats holds the sequential-solver statistics when that solver ran.
	SeqStats *solver.Stats
	// CNFStats holds the CNF-solver statistics when that solver ran.
	CNFStats *cnfsolver.Stats
	// Attempts is the per-solver attempt trail: which solvers ran, how
	// long each took, and why the pipeline moved on. Always populated.
	Attempts []SolverAttempt
	// Outcome is the replay verdict (nil when SkipReplay).
	Outcome *replay.Outcome
	// Trace is the observability record of the pipeline: one span per
	// phase (symexec, preprocess, solve with a child per solver attempt,
	// replay), plus the consolidated metric registry. Always populated by
	// Reproduce — with ReproduceOptions.Obs when given, else privately.
	Trace *obs.Trace
}

// SymbolicTime reports the symbolic-execution phase's wall time (Table 1's
// time columns), derived from the trace's "symexec" span.
func (r *Reproduction) SymbolicTime() time.Duration { return r.phase("symexec") }

// SolveTime reports the constraint-solving phase's wall time.
func (r *Reproduction) SolveTime() time.Duration { return r.phase("solve") }

// ReplayTime reports the replay phase's wall time (zero when SkipReplay).
func (r *Reproduction) ReplayTime() time.Duration { return r.phase("replay") }

func (r *Reproduction) phase(name string) time.Duration {
	if r == nil || r.Trace == nil {
		return 0
	}
	return r.Trace.Root().Find(name).Duration()
}

// Reproduce runs the offline pipeline on a recording.
//
// On failure it returns the partial Reproduction alongside the error
// whenever any diagnostics exist (constraint stats, solver attempts,
// partial search statistics), so an interrupted or failed solve still
// tells the caller what was tried and how far each stage got.
func Reproduce(rec *Recording, opts ReproduceOptions) (*Reproduction, error) {
	tr := opts.Obs
	if tr == nil {
		// A private trace keeps the phase-timing accessors working for
		// callers that never asked for observability.
		tr = obs.NewTrace("clap")
	}
	rep := &Reproduction{Recording: rec, Trace: tr}
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = time.Now().Add(opts.Deadline)
	}
	if opts.Ctx != nil {
		if d, ok := opts.Ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
	}
	ssp := tr.Root().Start("symexec")
	sys, err := rec.Analyze()
	if err != nil {
		ssp.SetAttr("err", err.Error())
		endStage(tr.Reg(), "symexec", ssp)
		return nil, err
	}
	endStage(tr.Reg(), "symexec", ssp)
	rep.System = sys
	rep.Stats = sys.ComputeStats()
	emitConstraintStats(tr.Reg(), rep.Stats)
	cacheKey := ""
	if opts.Cache != nil {
		if cacheKey = opts.CacheKey; cacheKey == "" {
			cacheKey = rec.ContentKey()
		}
	}
	if !opts.NoPreprocess {
		psp := tr.Root().Start("preprocess")
		applied := false
		if opts.Cache != nil {
			if snap := opts.Cache.LoadPreprocess(cacheKey); snap != nil && sys.ApplySnapshot(snap) {
				tr.Reg().Counter("core.cache.hit").Add(1)
				psp.SetAttr("cache", "hit")
				emitPreStats(tr.Reg(), sys.Pre)
				applied = true
			}
		}
		if !applied {
			emitPreStats(tr.Reg(), sys.PreprocessObs(psp))
			if opts.Cache != nil {
				tr.Reg().Counter("core.cache.miss").Add(1)
				opts.Cache.StorePreprocess(cacheKey, sys.Snapshot())
			}
		}
		endStage(tr.Reg(), "preprocess", psp)
	}

	slv := tr.Root().Start("solve")
	slv.SetAttr("kind", opts.Solver.String())
	var sol *solver.Solution
	err = nil
	if opts.Cache != nil {
		sol = cachedSolve(rep, sys, opts.Cache, cacheKey, slv)
	}
	if sol == nil {
		sol, err = solveStage(rep, sys, opts, deadline, slv)
		if sol != nil && opts.Cache != nil {
			opts.Cache.StoreSchedule(cacheKey, sol.Order, lastSolver(rep.Attempts))
		}
	}
	emitSolveSummary(tr.Reg(), rep.Attempts, sol)
	if sol == nil {
		if err != nil {
			slv.SetAttr("err", err.Error())
		}
		endStage(tr.Reg(), "solve", slv)
		return rep, err
	}
	slv.SetInt("preemptions", int64(sol.Preemptions))
	endStage(tr.Reg(), "solve", slv)
	rep.Solution = sol

	if !opts.SkipReplay {
		ropts := replay.Options{
			Mode:    replay.ModeFor(rec.Model),
			Inputs:  rec.Inputs,
			Ctx:     opts.Ctx,
			Capture: opts.CaptureReplay,
		}
		if !deadline.IsZero() {
			ropts.Deadline = time.Until(deadline)
			if ropts.Deadline <= 0 {
				ropts.Deadline = time.Nanosecond
			}
		}
		out, err := rep.Replay(ropts)
		if err != nil {
			return rep, err
		}
		if !out.Reproduced {
			return rep, fmt.Errorf("core: replay did not reproduce the failure (got %v)", out.Failure)
		}
	}
	return rep, nil
}

// solveStage dispatches to the selected solver, growing rep.Attempts and
// the per-stage stats as it goes; every attempt becomes a child span of sp.
func solveStage(rep *Reproduction, sys *constraints.System, opts ReproduceOptions, deadline time.Time, sp *obs.Span) (*solver.Solution, error) {
	reg := rep.Trace.Reg()
	switch opts.Solver {
	case Sequential:
		seqOpts := opts.SeqOptions
		if seqOpts.MaxPreemptions == 0 {
			// Default to minimal-preemption mode; an exact zero bound is
			// available through the solver package directly.
			seqOpts.MaxPreemptions = -1
		}
		wireSeq(&seqOpts, opts.Ctx, deadline)
		wireProgress(reg, &seqOpts, nil, nil)
		sol, att := runSolverStage(reg, "sequential", sp, func() (*solver.Solution, int, error) {
			s, stats, err := solver.Solve(sys, seqOpts)
			rep.SeqStats = stats
			emitSeqStats(reg, stats)
			return s, boundOf(stats), err
		})
		rep.Attempts = append(rep.Attempts, att)
		if sol == nil {
			return nil, attemptError("core", att)
		}
		return sol, nil
	case Parallel:
		parOpts := opts.ParOptions
		wirePar(&parOpts, opts.Ctx, deadline)
		wireProgress(reg, nil, &parOpts, nil)
		sol, att := runSolverStage(reg, "parallel", sp, func() (*solver.Solution, int, error) {
			res, err := parsolve.Solve(sys, parOpts)
			rep.Parallel = res
			emitParResult(reg, res)
			if err != nil {
				return nil, -1, err
			}
			if !res.Found() {
				return nil, res.Bound, parallelFailure(res)
			}
			return bestSolution(res), res.Bound, nil
		})
		rep.Attempts = append(rep.Attempts, att)
		if sol == nil {
			return nil, attemptError("core", att)
		}
		return sol, nil
	case CNF:
		cnfOpts := opts.CNFOptions
		wireCNF(&cnfOpts, opts.Ctx, deadline)
		wireProgress(reg, nil, nil, &cnfOpts)
		sol, att := runSolverStage(reg, "cnf", sp, func() (*solver.Solution, int, error) {
			s, stats, err := cnfsolver.Solve(sys, cnfOpts)
			rep.CNFStats = stats
			emitCNFStats(reg, stats)
			return s, -1, err
		})
		rep.Attempts = append(rep.Attempts, att)
		if sol == nil {
			return nil, attemptError("core", att)
		}
		return sol, nil
	case Portfolio:
		sol, attempts, err := runPortfolio(rep, sys, opts, deadline, sp)
		rep.Attempts = attempts
		if err != nil {
			return nil, err
		}
		return sol, nil
	}
	return nil, fmt.Errorf("core: unknown solver kind %d", opts.Solver)
}

// Replay runs the final replay phase on rep.Solution, recording the
// "replay" span and the replay.* metrics. It is the tail of Reproduce,
// split out so callers that solved with SkipReplay — to post-process the
// schedule first, like clap's -simplify — replay under the same trace.
func (rep *Reproduction) Replay(ropts replay.Options) (*replay.Outcome, error) {
	if rep.Solution == nil {
		return nil, fmt.Errorf("core: no solution to replay")
	}
	sp := rep.Trace.Root().Start("replay")
	out, err := replay.Run(rep.System, rep.Solution, ropts)
	if err != nil {
		sp.SetAttr("err", err.Error())
		endStage(rep.Trace.Reg(), "replay", sp)
		return nil, err
	}
	sp.SetAttr("reproduced", fmt.Sprint(out.Reproduced))
	endStage(rep.Trace.Reg(), "replay", sp)
	rep.Outcome = out
	emitReplay(rep.Trace.Reg(), out)
	return out, nil
}

// bestSolution picks the fewest-preemption schedule of a parallel result.
func bestSolution(res *parsolve.Result) *solver.Solution {
	best := res.Solutions[0]
	for _, s := range res.Solutions[1:] {
		if s.Preemptions < best.Preemptions {
			best = s
		}
	}
	return best
}

func parallelFailure(res *parsolve.Result) error {
	if res.TimedOut || res.Cancelled {
		return &solver.Interrupted{Reason: "parallel search cut short", Bound: res.Bound}
	}
	return fmt.Errorf("parallel solver found no schedule (generated %d, capped=%v)",
		res.Generated, res.Capped)
}

func boundOf(stats *solver.Stats) int {
	if stats == nil {
		return -1
	}
	return stats.BoundReached
}

// ReproduceSource is the one-call convenience API: compile, record, solve,
// replay.
func ReproduceSource(src string, recOpts RecordOptions, opts ReproduceOptions) (*Reproduction, error) {
	prog, err := Compile(src)
	if err != nil {
		return nil, err
	}
	rec, err := Record(prog, recOpts)
	if err != nil {
		return nil, err
	}
	return Reproduce(rec, opts)
}
