// Randomized schedule-equivalence property for the lazy-transitivity CNF
// core: on random racy programs from the PR-2 generator family, the lazy
// encoding must admit exactly the same set of read→write mapping classes
// as the eager all-triples encoding, each with a validating witness
// schedule. This is the end-to-end guard that the refinement loop never
// invents or loses interleavings.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
)

// enumerateCNFMappings collects the distinct feasible read→write mappings
// of sys under opts by repeated Solve + BlockMapping, validating every
// witness schedule. ok is false when the cap was hit before Unsat — the
// enumeration is then a prefix, not the full set, and must not be compared.
func enumerateCNFMappings(t *testing.T, sys *constraints.System, opts cnfsolver.Options, cap int) (keys []string, ok bool) {
	t.Helper()
	sess, err := cnfsolver.NewSession(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	for len(keys) < cap {
		sol, _, err := sess.Solve()
		if err != nil {
			if _, isUnsat := err.(*cnfsolver.Unsat); isUnsat {
				sort.Strings(keys)
				return keys, true
			}
			t.Fatalf("solve: %v", err)
		}
		if _, err := sys.ValidateSchedule(sol.Order); err != nil {
			t.Fatalf("enumerated schedule does not validate: %v", err)
		}
		parts := make([]string, 0, len(sess.Mapping()))
		for _, w := range sess.Mapping() {
			parts = append(parts, fmt.Sprint(w))
		}
		keys = append(keys, strings.Join(parts, ","))
		sess.BlockMapping()
	}
	return keys, false
}

func TestPropertyLazyMatchesEagerOnRandomPrograms(t *testing.T) {
	const (
		trials     = 20
		mappingCap = 96
		maxSAPs    = 2000
		// Random programs can cycle through many value-rejected mapping
		// classes before each feasible one; give the theory loop room.
		theoryRounds = 20000
	)
	r := rand.New(rand.NewSource(4242))
	compared := 0
	for trial := 0; trial < trials; trial++ {
		src, model := genRacyProgram(r)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: generated program does not compile: %v\n%s", trial, err, src)
		}
		rec, err := Record(prog, RecordOptions{Model: model, SeedLimit: 300})
		if err != nil {
			continue // fully locked variants never fail: fine
		}
		sys, err := rec.Analyze()
		if err != nil {
			t.Fatalf("trial %d: analyze: %v", trial, err)
		}
		sys.Preprocess()

		lazy, lazyFull := enumerateCNFMappings(t, sys,
			cnfsolver.Options{MaxSAPs: maxSAPs, MaxTheoryRounds: theoryRounds}, mappingCap)
		eager, eagerFull := enumerateCNFMappings(t, sys,
			cnfsolver.Options{MaxSAPs: maxSAPs, MaxTheoryRounds: theoryRounds, EagerTransitivity: true}, mappingCap)
		if !lazyFull || !eagerFull {
			// Too many mapping classes to enumerate exhaustively; the
			// capped prefixes are order-dependent and incomparable.
			continue
		}
		if len(lazy) == 0 {
			t.Fatalf("trial %d: recording failed but no feasible mapping found\n%s", trial, src)
		}
		if strings.Join(lazy, ";") != strings.Join(eager, ";") {
			t.Fatalf("trial %d: lazy mappings (%d) != eager mappings (%d)\nlazy:  %v\neager: %v\n%s",
				trial, len(lazy), len(eager), lazy, eager, src)
		}
		compared++
	}
	if compared < 5 {
		t.Fatalf("only %d/%d random programs were exhaustively compared; generator or cap too tame", compared, trials)
	}
	t.Logf("lazy == eager mapping sets on %d/%d random programs", compared, trials)
}
