package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/solver"
	"repro/internal/timeline"
	"repro/internal/vm"
)

func flightRep(t *testing.T) *Reproduction {
	t.Helper()
	rep, err := ReproduceSource(figure2SC,
		RecordOptions{Model: vm.SC, SeedLimit: 3000},
		ReproduceOptions{
			Solver: Sequential,
			// GenFallbackBound -1 forces the backtracking search (the
			// generate-and-validate fast path never builds a partial
			// order), so CapturePartial has something to capture.
			SeqOptions:    solver.Options{CapturePartial: true, GenFallbackBound: -1},
			CaptureReplay: true,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCaptureEventsDeterministic(t *testing.T) {
	rep := flightRep(t)
	rec := rep.Recording
	ev1, err := rec.CaptureEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev1) == 0 {
		t.Fatal("no events captured")
	}
	ev2, err := rec.CaptureEvents()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("recorded-run capture not deterministic")
	}

	// A recording whose pinned configuration no longer reaches the failure
	// must report divergence, not silently return a different run.
	bad := *rec
	bad.MaxActions = 1
	if _, err := bad.CaptureEvents(); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("want divergence error, got %v", err)
	}
}

func TestBuildTimelineLanes(t *testing.T) {
	rep := flightRep(t)
	tl, err := rep.BuildTimeline("figure2")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ex := range tl.Execs {
		names = append(names, ex.Name)
	}
	want := []string{timeline.ExecRecorded, timeline.ExecSolved, timeline.ExecReplay}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("lanes = %v, want %v", names, want)
	}
	// The solved lane carries the diff's flip arrows when the solver
	// reordered anything; spawn/join arrows always exist on event lanes.
	if len(tl.Execs[0].Arrows) == 0 {
		t.Error("recorded lane has no spawn/join arrows")
	}

	// A failed solve falls back to the sequential attempt's partial-order
	// lane (captured because SeqOptions.CapturePartial was set).
	noSol := *rep
	noSol.Solution = nil
	tl2, err := noSol.BuildTimeline("figure2")
	if err != nil {
		t.Fatal(err)
	}
	names = names[:0]
	for _, ex := range tl2.Execs {
		names = append(names, ex.Name)
	}
	if len(names) < 2 || names[1] != "attempt:sequential" {
		t.Fatalf("failed-solve lanes = %v, want attempt:sequential second", names)
	}
}

func TestScheduleDiffRequiresSolution(t *testing.T) {
	rep := flightRep(t)
	if _, err := rep.ScheduleDiff(); err != nil {
		t.Fatalf("solved rep: %v", err)
	}
	if v, ok := rep.Trace.Reg().Lookup("explain.flips"); !ok {
		t.Error("explain.flips gauge not published")
	} else if v < 0 {
		t.Errorf("explain.flips = %d", v)
	}
	noSol := *rep
	noSol.Solution = nil
	if _, err := noSol.ScheduleDiff(); err == nil {
		t.Error("diff without a solution should error")
	}
}
