// Flight-recorder glue: assemble the unified timeline artifact and the
// explainability reports from a Reproduction. The timeline and explain
// packages are pipeline-agnostic (they never import core); this file is
// where the pipeline's pieces — the recorded seed re-run, the solved
// schedule with its witness, the replay capture, and the losing solver
// attempts' partial orders — are gathered into their inputs.
package core

import (
	"fmt"

	"repro/internal/constraints"
	"repro/internal/explain"
	"repro/internal/timeline"
)

// BuildTimeline assembles the flight-recorder timeline for a reproduction:
// the recorded interleaving (reconstructed by re-running the winning
// seed), the solved SAP schedule annotated with race-flip arrows, the
// replay's event capture when Reproduce ran with CaptureReplay, and — when
// the sequential solver lost or was interrupted with
// SeqOptions.CapturePartial set — its deepest partial order. program is
// the display name (benchmark or source file).
//
// Every lane is optional except the recorded one: a timeline of a failed
// solve still shows what was recorded and how far the search got.
func (rep *Reproduction) BuildTimeline(program string) (*timeline.Timeline, error) {
	rec := rep.Recording
	if rec == nil {
		return nil, fmt.Errorf("core: no recording to build a timeline from")
	}
	events, err := rec.CaptureEvents()
	if err != nil {
		return nil, err
	}
	tl := &timeline.Timeline{Program: program}
	threads := 0
	if rec.Run != nil {
		threads = rec.Run.Threads
	}
	tl.Execs = append(tl.Execs, timeline.FromEvents(timeline.ExecRecorded, events, threads))

	if rep.System != nil && rep.Solution != nil {
		ex := timeline.FromOrder(timeline.ExecSolved, rep.System, rep.Solution.Order, rep.Solution.Witness)
		if times, err := explain.AlignRecorded(rep.System, events, rec.Demoted); err == nil {
			d := explain.DiffSchedules(rep.System, times, rep.Solution.Order, rep.Solution.Witness)
			addFlipArrows(ex, rep.System, rep.Solution.Order, d)
		}
		tl.Execs = append(tl.Execs, ex)
	} else if rep.System != nil {
		// No solution: show the sequential attempt's deepest partial order
		// instead, when one was captured.
		if ex := timeline.FromPartial("attempt:sequential", rep.System, rep.SeqStats); ex != nil {
			tl.Execs = append(tl.Execs, ex)
		}
	}

	if rep.Outcome != nil && len(rep.Outcome.Events) > 0 {
		tl.Execs = append(tl.Execs, timeline.FromEvents(timeline.ExecReplay, rep.Outcome.Events, 0))
	}
	emitTimeline(rep, tl)
	return tl, nil
}

// emitTimeline publishes the timeline's size under the stable obs names.
func emitTimeline(rep *Reproduction, tl *timeline.Timeline) {
	if rep.Trace == nil {
		return
	}
	reg := rep.Trace.Reg()
	events, arrows := 0, 0
	for _, ex := range tl.Execs {
		events += len(ex.Events)
		arrows += len(ex.Arrows)
	}
	reg.Set("timeline.execs", int64(len(tl.Execs)))
	reg.Set("timeline.events", int64(events))
	reg.Set("timeline.arrows", int64(arrows))
}

// addFlipArrows draws the schedule diff's flipped pairs onto the solved
// lane as flow arrows from the SAP the solver moved earlier to the one it
// moved later. Capped at the diff's own flip cap; the stress benchmarks
// have thousands of conflicting pairs and an arrow per pair explains
// nothing.
func addFlipArrows(ex *timeline.Execution, sys *constraints.System, order []constraints.SAPRef, d *explain.Diff) {
	pos := make([]int64, len(sys.SAPs))
	for i := range pos {
		pos[i] = -1
	}
	for i, r := range order {
		pos[r] = int64(i)
	}
	for _, f := range d.Flips {
		// First ran before Second in the recorded run; the solver reversed
		// them, so the arrow runs Second → First in solved time.
		a, b := sys.SAP(f.Second), sys.SAP(f.First)
		if pos[f.Second] < 0 || pos[f.First] < 0 {
			continue
		}
		ex.Arrows = append(ex.Arrows, timeline.Arrow{
			Kind:       timeline.ArrowFlip,
			Label:      fmt.Sprintf("%s flip", f.Kind),
			FromThread: int(a.Thread), FromTime: pos[f.Second],
			ToThread: int(b.Thread), ToTime: pos[f.First],
		})
	}
}

// ScheduleDiff builds the race-flip report: the conflicting SAP pairs
// whose order the solved schedule reversed relative to the recorded
// interleaving, plus the reads whose last writer changed. It needs a
// solved reproduction.
func (rep *Reproduction) ScheduleDiff() (*explain.Diff, error) {
	if rep.Recording == nil || rep.System == nil {
		return nil, fmt.Errorf("core: schedule diff needs an analyzed recording")
	}
	if rep.Solution == nil {
		return nil, fmt.Errorf("core: schedule diff needs a solved schedule")
	}
	events, err := rep.Recording.CaptureEvents()
	if err != nil {
		return nil, err
	}
	times, err := explain.AlignRecorded(rep.System, events, rep.Recording.Demoted)
	if err != nil {
		return nil, err
	}
	d := explain.DiffSchedules(rep.System, times, rep.Solution.Order, rep.Solution.Witness)
	if d.TotalFlips == 0 {
		// Zero flips: the solver reproduced the recorded conflict order.
		// Probe whether that order is essential — a sound "the race's
		// recorded order IS the trigger" beats an empty diff.
		d.ProbeRacePairs(0)
	}
	if rep.Trace != nil {
		reg := rep.Trace.Reg()
		reg.Set("explain.flips", int64(d.TotalFlips))
		reg.Set("explain.remaps", int64(len(d.Remaps)))
	}
	return d, nil
}

// ExplainUnsat runs the minimal-unsat-subset shrinker on the
// reproduction's constraint system — the "why no schedule exists" verdict
// for a failed solve.
func (rep *Reproduction) ExplainUnsat(opts explain.MUSOptions) (*explain.Core, error) {
	if rep.System == nil {
		return nil, fmt.Errorf("core: no constraint system to explain")
	}
	return explain.MinimizeUnsat(rep.System, opts), nil
}
