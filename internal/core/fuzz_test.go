package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/vm"
)

// genRacyProgram builds a random member of a family of racy counter
// programs: W workers each perform a few operations on shared variables,
// some protected by a lock and some not; main asserts the lock-free
// sequentially-expected final state, which racy interleavings violate.
func genRacyProgram(r *rand.Rand) (src string, model vm.MemModel) {
	workers := 2 + r.Intn(2)
	vars := 1 + r.Intn(3)
	iters := 1 + r.Intn(3)
	useLockOn := r.Intn(vars + 1) // variables below this index are locked

	var sb strings.Builder
	for v := 0; v < vars; v++ {
		fmt.Fprintf(&sb, "int g%d;\n", v)
	}
	sb.WriteString("mutex m;\n")
	sb.WriteString("func worker() {\n\tint i;\n")
	fmt.Fprintf(&sb, "\tfor (i = 0; i < %d; i = i + 1) {\n", iters)
	for v := 0; v < vars; v++ {
		if v < useLockOn {
			fmt.Fprintf(&sb, "\t\tlock(m);\n\t\tint t%d = g%d;\n\t\tg%d = t%d + 1;\n\t\tunlock(m);\n", v, v, v, v)
		} else {
			fmt.Fprintf(&sb, "\t\tint t%d = g%d;\n\t\tg%d = t%d + 1;\n", v, v, v, v)
		}
	}
	sb.WriteString("\t}\n}\n")
	sb.WriteString("func main() {\n")
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&sb, "\tint h%d = spawn worker();\n", w)
	}
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&sb, "\tjoin(h%d);\n", w)
	}
	expect := workers * iters
	cond := make([]string, vars)
	for v := 0; v < vars; v++ {
		fmt.Fprintf(&sb, "\tint f%d = g%d;\n", v, v)
		cond[v] = fmt.Sprintf("f%d == %d", v, expect)
	}
	fmt.Fprintf(&sb, "\tassert(%s, \"all updates landed\");\n}\n", strings.Join(cond, " && "))
	return sb.String(), vm.SC
}

// TestPropertyPipelineOnRandomPrograms is the repository's end-to-end
// property: for random racy programs whose bug triggers, the full pipeline
// (record → analyze → solve → replay) reproduces the failure, with both
// solving strategies.
func TestPropertyPipelineOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	reproduced := 0
	for trial := 0; trial < 25; trial++ {
		src, model := genRacyProgram(r)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: generated program does not compile: %v\n%s", trial, err, src)
		}
		rec, err := Record(prog, RecordOptions{Model: model, SeedLimit: 300})
		if err != nil {
			continue // fully locked variants never fail: fine
		}
		for _, kind := range []SolverKind{Sequential, Parallel} {
			rep, err := Reproduce(rec, ReproduceOptions{Solver: kind})
			if err != nil {
				t.Fatalf("trial %d solver %d: %v\n%s", trial, kind, err, src)
			}
			if !rep.Outcome.Reproduced {
				t.Fatalf("trial %d solver %d: not reproduced\n%s", trial, kind, src)
			}
		}
		reproduced++
	}
	if reproduced < 5 {
		t.Fatalf("only %d random programs produced reproducible failures; generator too tame", reproduced)
	}
	t.Logf("reproduced %d/25 random programs with both solvers", reproduced)
}

// TestPropertyRelaxedPipelineOnStoreBufferPrograms exercises the pipeline
// under TSO with randomized flag-based programs in the Dekker family.
func TestPropertyRelaxedPipelineOnStoreBufferPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	reproduced := 0
	for trial := 0; trial < 10; trial++ {
		extra := r.Intn(3)
		src := fmt.Sprintf(`
int flag0;
int flag1;
int bad;
int pad%d;
func t0() {
	flag0 = 1;
	if (flag1 == 0) {
		int b = bad;
		bad = b + 1;
		bad = bad - 1;
		if (flag1 == 1) { bad = 7; }
	}
}
func t1() {
	flag1 = 1;
	if (flag0 == 0) {
		if (flag1 != 1) { bad = 9; }
		int p = pad%d;
		pad%d = p + %d;
	}
}
func main() {
	int h0 = spawn t0();
	int h1 = spawn t1();
	join(h0);
	join(h1);
	int f0 = flag0;
	int f1 = flag1;
	assert(f0 == 0 || f1 == 0 || bad != 0 || pad%d == 0, "both passed the gate");
}
`, extra, extra, extra, extra+1, extra)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rec, err := Record(prog, RecordOptions{Model: vm.TSO, SeedLimit: 800})
		if err != nil {
			continue
		}
		rep, err := Reproduce(rec, ReproduceOptions{Solver: Sequential})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if !rep.Outcome.Reproduced {
			t.Fatalf("trial %d: not reproduced", trial)
		}
		reproduced++
	}
	t.Logf("reproduced %d/10 relaxed-memory variants", reproduced)
}
