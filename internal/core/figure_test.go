package core

import (
	"fmt"
	"testing"

	"repro/internal/constraints"
	"repro/internal/solver"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// figure2Full is the complete example of Figure 2: thread 1 (left column)
// and the main thread (right column) with both assertions. assert1 can
// fail under SC; assert2 can only fail under PSO.
const figure2Full = `
int x;
int y;

func t1() {
	int r1 = x;        // line 1
	x = r1 + 1;        // line 2
	int r2 = y;        // line 3
	if (r2 > 0) {
		int r3 = x;    // line 5
		assert(r3 > 0, "assert1");
	}
}

func main() {
	int h = spawn t1();
	x = 2;             // line 12 (w.r.t. the paper's numbering)
	x = x - 3;         // lines 13-14: read then write
	y = 1;             // line 4's counterpart
	int r5 = y;        // line 17
	if (r5 == 1) {
		int r6 = x;    // the x read of assert2
		int r7 = y;
		assert(r6 != -999, "assert2-placeholder");
	}
	join(h);
}
`

// TestFigure2AssertOneUnderSC reproduces the paper's first claim about the
// example: assert1 fails under SC via the annotated interleaving, and CLAP
// finds a schedule with few preemptions.
func TestFigure2AssertOneUnderSC(t *testing.T) {
	rep, err := ReproduceSource(figure2Full,
		RecordOptions{Model: vm.SC, SeedLimit: 5000},
		ReproduceOptions{Solver: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("assert1 not reproduced")
	}
	if rep.Solution.Preemptions > 3 {
		t.Errorf("assert1 schedule needs %d preemptions, expected <= 3 (paper: 2)", rep.Solution.Preemptions)
	}
}

// figure2PSO isolates assert2: y==1 observed but x still 0 — impossible
// under SC and TSO, possible under PSO.
const figure2PSO = `
int x;
int y;
func reader() {
	int ry = y;
	if (ry == 1) {
		int rx = x;
		assert(rx == 1, "assert2");
	}
}
func main() {
	int h = spawn reader();
	x = 1;
	y = 1;
	join(h);
}
`

// TestFigure2AssertTwoModelSeparation is the paper's second claim: assert2
// "will never be violated under the SC model, but can be violated under
// the PSO model".
func TestFigure2AssertTwoModelSeparation(t *testing.T) {
	prog, err := Compile(figure2PSO)
	if err != nil {
		t.Fatal(err)
	}
	// Never fails under SC or TSO (large seed sweep).
	for _, m := range []vm.MemModel{vm.SC, vm.TSO} {
		if _, err := Record(prog, RecordOptions{Model: m, SeedLimit: 500}); err == nil {
			t.Fatalf("assert2 must not fail under %v", m)
		}
	}
	// Fails and reproduces under PSO.
	rep, err := ReproduceSource(figure2PSO,
		RecordOptions{Model: vm.PSO, SeedLimit: 5000},
		ReproduceOptions{Solver: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("assert2 not reproduced under PSO")
	}
}

// TestFigure4MinimalContextSwitches mirrors Figure 4: among the solutions
// of the PSO example, the solver returns one with the minimal number of
// context switches, and larger bounds admit the "original-like" schedules
// too (more valid schedules at higher bounds).
func TestFigure4MinimalContextSwitches(t *testing.T) {
	prog, err := Compile(figure2PSO)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Record(prog, RecordOptions{Model: vm.PSO, SeedLimit: 5000})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	minSol, _, err := solver.Solve(sys, solver.Options{MaxPreemptions: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Count valid schedules per bound; the count must not decrease with
	// the bound, and the minimal solution's count must match its bound.
	countValid := func(bound int) int {
		n := 0
		gen := newGenerator(sys)
		gen.sweep(bound, func(order []constraints.SAPRef) {
			if w, err := sys.ValidateSchedule(order); err == nil && w.Preemptions <= bound {
				n++
			}
		})
		return n
	}
	atMin := countValid(minSol.Preemptions)
	if atMin == 0 {
		t.Fatalf("no valid schedule at the solver's own minimum %d", minSol.Preemptions)
	}
	atMore := countValid(minSol.Preemptions + 1)
	if atMore < atMin {
		t.Errorf("valid schedules shrank with a larger bound: %d -> %d", atMin, atMore)
	}
	if minSol.Preemptions > 0 {
		if n := countValid(minSol.Preemptions - 1); n != 0 {
			t.Errorf("found %d valid schedules below the reported minimum", n)
		}
	}
}

// newGenerator/sweep adapt the schedule generator for the figure test.
type genAdapter struct{ sys *constraints.System }

func newGenerator(sys *constraints.System) *genAdapter { return &genAdapter{sys: sys} }

func (g *genAdapter) sweep(bound int, f func(order []constraints.SAPRef)) {
	gen := scheduleGen(g.sys)
	for c := 0; c <= bound; c++ {
		gen(c, f)
	}
}

// TestFigure5SynchronizationConstraints builds the paper's Figure 5
// example: a read under a lock cannot be mapped to the first write of the
// other thread's locked region, and fork/join order restricts the mappings
// of the third/fourth threads.
func TestFigure5SynchronizationConstraints(t *testing.T) {
	src := `
int v;
int w;
mutex l;
func t2() {
	lock(l);
	v = 1;
	v = 2;
	unlock(l);
}
func t4() {
	w = 10;
	w = 20;
}
func main() {
	// T1 with lock: the read of v cannot interleave T2's locked writes.
	int h2 = spawn t2();
	lock(l);
	int r = v;
	unlock(l);
	// T3's fork/join pattern around T4.
	int h4 = spawn t4();
	int r1 = w;
	join(h4);
	int r2 = w;
	join(h2);
	assert(r + r1 + r2 == -1, "trigger");
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Record(prog, RecordOptions{Model: vm.SC, SeedLimit: 300})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Locking: the read of v sits in a region; a schedule interleaving it
	// between t2's two writes must be rejected.
	var readV, w1, w2 constraints.SAPRef = -1, -1, -1
	for i, s := range sys.SAPs {
		if s.Kind == symexec.SAPRead && sys.An.Prog.Globals[s.Var].Name == "v" {
			readV = constraints.SAPRef(i)
		}
		if s.Kind == symexec.SAPWrite && sys.An.Prog.Globals[s.Var].Name == "v" {
			if w1 == -1 {
				w1 = constraints.SAPRef(i)
			} else {
				w2 = constraints.SAPRef(i)
			}
		}
	}
	if readV == -1 || w1 == -1 || w2 == -1 {
		t.Fatal("figure 5 SAPs not found")
	}
	// Enumerate schedules and confirm none places readV strictly between
	// w1 and w2 (the locking constraint of Figure 5).
	checked := 0
	gen := scheduleGen(sys)
	for c := 0; c <= 2; c++ {
		gen(c, func(order []constraints.SAPRef) {
			if _, err := sys.ValidateSchedule(order); err != nil {
				return
			}
			checked++
			pos := map[constraints.SAPRef]int{}
			for i, ref := range order {
				pos[ref] = i
			}
			if pos[w1] < pos[readV] && pos[readV] < pos[w2] {
				t.Fatalf("schedule places the locked read between t2's locked writes: %v", order)
			}
		})
	}
	if checked == 0 {
		t.Fatal("no valid schedules enumerated")
	}
	// The wait-free fork/join part: r1 may read 0, 10 or 20 but r2 (after
	// join) must read 20 — check via the read-write candidates: r2 has the
	// exit<join edge forcing both writes before it.
	var readsW []constraints.SAPRef
	for i, s := range sys.SAPs {
		if s.Kind == symexec.SAPRead && sys.An.Prog.Globals[s.Var].Name == "w" {
			readsW = append(readsW, constraints.SAPRef(i))
		}
	}
	if len(readsW) != 2 {
		t.Fatalf("expected 2 reads of w, got %d", len(readsW))
	}
	_ = fmt.Sprint(readsW) // r2's constraints are exercised by the enumeration above
}

// scheduleGen returns a closure enumerating candidate schedules of the
// system with exactly c preemptions.
func scheduleGen(sys *constraints.System) func(c int, f func([]constraints.SAPRef)) {
	return func(c int, f func([]constraints.SAPRef)) {
		gen := newSchedGen(sys)
		gen(c, f)
	}
}
