package core

import (
	"testing"

	"repro/internal/vm"
)

const figure2SC = `
int x;
int y;
func t1() {
	int r1 = x;
	x = r1 + 1;
	int r2 = y;
	if (r2 > 0) {
		int r3 = x;
		assert(r3 > 0, "assert1");
	}
}
func main() {
	int h;
	h = spawn t1();
	x = 2;
	x = x - 3;
	y = 1;
	join(h);
}
`

func TestEndToEndFigure2Sequential(t *testing.T) {
	rep, err := ReproduceSource(figure2SC,
		RecordOptions{Model: vm.SC, SeedLimit: 3000},
		ReproduceOptions{Solver: Sequential},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("bug not reproduced")
	}
	if rep.Solution.Preemptions > 3 {
		t.Errorf("schedule has %d preemptions, expected <= 3", rep.Solution.Preemptions)
	}
	if rep.Stats.SAPs == 0 || rep.Stats.Clauses == 0 {
		t.Error("stats empty")
	}
	if rep.SymbolicTime() <= 0 || rep.SolveTime() <= 0 {
		t.Error("timings not collected")
	}
}

func TestEndToEndFigure2Parallel(t *testing.T) {
	rep, err := ReproduceSource(figure2SC,
		RecordOptions{Model: vm.SC, SeedLimit: 3000},
		ReproduceOptions{Solver: Parallel},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("bug not reproduced")
	}
	if rep.Parallel == nil || rep.Parallel.Generated == 0 {
		t.Error("parallel stats missing")
	}
	if rep.Parallel.Valid < 1 {
		t.Error("no valid schedules counted")
	}
}

func TestEndToEndPSO(t *testing.T) {
	src := `
int x;
int y;
func t2() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "write reorder observed");
	}
}
func main() {
	int h;
	h = spawn t2();
	x = 1;
	y = 1;
	join(h);
}
`
	for _, solverKind := range []SolverKind{Sequential, Parallel} {
		rep, err := ReproduceSource(src,
			RecordOptions{Model: vm.PSO, SeedLimit: 3000},
			ReproduceOptions{Solver: solverKind},
		)
		if err != nil {
			t.Fatalf("solver %d: %v", solverKind, err)
		}
		if !rep.Outcome.Reproduced {
			t.Fatalf("solver %d: PSO bug not reproduced", solverKind)
		}
	}
}

func TestEndToEndTSODekker(t *testing.T) {
	src := `
int flag0;
int flag1;
int incrit;
int bad;
func t0() {
	flag0 = 1;
	if (flag1 == 0) {
		incrit = incrit + 1;
		if (incrit != 1) { bad = 1; }
		incrit = incrit - 1;
	}
}
func t1() {
	flag1 = 1;
	if (flag0 == 0) {
		incrit = incrit + 1;
		if (incrit != 1) { bad = 1; }
		incrit = incrit - 1;
	}
}
func main() {
	int h0;
	int h1;
	h0 = spawn t0();
	h1 = spawn t1();
	join(h0);
	join(h1);
	int b = bad;
	assert(b == 0, "mutual exclusion violated");
}
`
	rep, err := ReproduceSource(src,
		RecordOptions{Model: vm.TSO, SeedLimit: 3000},
		ReproduceOptions{Solver: Sequential},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("TSO Dekker bug not reproduced")
	}
}

func TestEndToEndLockedProgram(t *testing.T) {
	src := `
int c;
int order;
mutex m;
func worker(id) {
	lock(m);
	int t = c;
	c = t + 1;
	if (order == 0) { order = id; }
	unlock(m);
}
func main() {
	int h1;
	int h2;
	h1 = spawn worker(1);
	h2 = spawn worker(2);
	join(h1);
	join(h2);
	int o = order;
	assert(o != 2, "worker 2 entered first");
}
`
	rep, err := ReproduceSource(src,
		RecordOptions{Model: vm.SC, SeedLimit: 3000},
		ReproduceOptions{Solver: Sequential},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("lock-ordering bug not reproduced")
	}
}

func TestEndToEndCondVar(t *testing.T) {
	src := `
int stage;
mutex m;
cond c;
func waiter() {
	lock(m);
	while (stage == 0) {
		wait(c, m);
	}
	int s = stage;
	unlock(m);
	assert(s == 2, "stage jumped");
}
func main() {
	int h;
	h = spawn waiter();
	yield();
	lock(m);
	stage = 1;
	signal(c);
	unlock(m);
	join(h);
}
`
	rep, err := ReproduceSource(src,
		RecordOptions{Model: vm.SC, SeedLimit: 2000},
		ReproduceOptions{Solver: Sequential},
	)
	if err != nil {
		t.Skipf("condvar bug did not trigger or solve: %v", err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("condvar bug not reproduced")
	}
}

func TestRecordingRequiresFailure(t *testing.T) {
	prog, err := Compile(`func main() {}`)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordSeed(prog, 1, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Analyze(); err == nil {
		t.Fatal("Analyze must reject a clean recording")
	}
	if _, err := Record(prog, RecordOptions{SeedLimit: 3}); err == nil {
		t.Fatal("Record must report when no seed fails")
	}
}

func TestLogSizeReported(t *testing.T) {
	rep, err := ReproduceSource(figure2SC,
		RecordOptions{Model: vm.SC, SeedLimit: 3000},
		ReproduceOptions{Solver: Sequential, SkipReplay: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recording.LogSize() <= 0 {
		t.Error("log size must be positive")
	}
	if rep.Outcome != nil {
		t.Error("SkipReplay must skip the replay")
	}
}
