// Solver portfolio: CLAP ships three decision procedures (the sequential
// minimal-preemption search, the parallel generate-and-validate pool, and
// the CNF/CDCL encoding) with complementary strengths — §4 of the paper
// compares them benchmark by benchmark. The portfolio races all three
// concurrently under the shared deadline: the first stage to solve cancels
// the others through the context/deadline interrupt plumbing every solver
// already honours, so wall time is the fastest stage rather than the sum
// of a degradation ladder. On machines with fewer cores than stages the
// start is staggered (see stageGrace) so time-sharing one CPU does not
// slow the common fast sequential win. When several stages solve before noticing the
// cancellation, the earliest stage in [sequential, parallel, cnf] order
// wins, preserving the old ladder's preference for minimal-preemption
// sequential schedules. A stage that is interrupted, finds nothing, errors,
// or panics is recorded in the attempt trail — kept in fixed stage order
// regardless of finish order — so a reproduction that needed a fallback
// says which stage failed and why. The strictly staged serial ladder
// survives behind ReproduceOptions.SerialPortfolio for baseline
// benchmarking and deterministic trails.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/parsolve"
	"repro/internal/solver"
)

// Default per-stage budgets when the caller supplies no deadline: each
// stage is always bounded so the portfolio can never hang in one stage.
const (
	defaultSeqBudget = 10 * time.Second
	defaultParBudget = 30 * time.Second
	defaultCNFBudget = 60 * time.Second
)

// SolverAttempt records one solver stage's outcome in the attempt trail.
type SolverAttempt struct {
	// Solver names the stage: "sequential", "parallel" or "cnf".
	Solver string
	// Elapsed is the stage's wall time.
	Elapsed time.Duration
	// Outcome is one of "solved", "interrupted", "fault injected",
	// "panicked", "no schedule", "too large" or "failed". "too large"
	// marks a CNF stage that refused to encode the system
	// (cnfsolver.TooLarge); its Err says which limit applied — in
	// particular whether an explicit EagerTransitivity request lowered it.
	Outcome string
	// Err holds the failure detail when the stage did not solve.
	Err string
	// BoundReached is the last preemption bound the stage explored
	// (-1 when the stage does not sweep bounds).
	BoundReached int
	// Preemptions is the solution's preemption count when solved.
	Preemptions int

	// err retains the underlying error for callers inside the package.
	err error
}

// String renders the attempt for logs and CLI output.
func (a SolverAttempt) String() string {
	s := fmt.Sprintf("%s: %s in %v", a.Solver, a.Outcome, a.Elapsed.Round(time.Millisecond))
	if a.Outcome == "solved" {
		return fmt.Sprintf("%s (%d preemptions)", s, a.Preemptions)
	}
	if a.Err != "" {
		s += " (" + a.Err + ")"
	}
	return s
}

// runSolverStage runs one stage with full containment: an injected fault
// skips the stage, a panic is recovered into the attempt record, and an
// interrupt is classified apart from a genuine failure. The attempt is
// recorded as a "solve.<name>" child span of parent — panics and faults
// included, so a trace shows every stage that ran and why it exited — and
// its wall time feeds the per-backend stage.solve.<name>.ns histogram.
func runSolverStage(reg *obs.Registry, name string, parent *obs.Span, fn func() (*solver.Solution, int, error)) (sol *solver.Solution, att SolverAttempt) {
	att = SolverAttempt{Solver: name, BoundReached: -1}
	sp := parent.Start("solve." + name)
	start := time.Now()
	defer func() {
		att.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			sol = nil
			att.Outcome = "panicked"
			att.Err = fmt.Sprint(p)
			att.err = fmt.Errorf("%s solver panicked: %v", name, p)
		}
		sp.SetAttr("outcome", att.Outcome)
		if att.Err != "" {
			sp.SetAttr("err", att.Err)
		}
		if att.BoundReached >= 0 {
			sp.SetInt("bound", int64(att.BoundReached))
		}
		if att.Outcome == "solved" {
			sp.SetInt("preemptions", int64(att.Preemptions))
		}
		sp.End()
		reg.Hist("stage.solve." + name + ".ns").Observe(att.Elapsed.Nanoseconds())
	}()
	if err := faultinject.Fire("solver." + name); err != nil {
		att.Outcome = "fault injected"
		att.Err = err.Error()
		att.err = err
		return nil, att
	}
	s, bound, err := fn()
	att.BoundReached = bound
	if err != nil {
		var intr *solver.Interrupted
		var big *cnfsolver.TooLarge
		switch {
		case errors.As(err, &intr):
			att.Outcome = "interrupted"
		case errors.As(err, &big):
			att.Outcome = "too large"
		default:
			att.Outcome = "failed"
		}
		att.Err = err.Error()
		att.err = err
		return nil, att
	}
	if s == nil {
		att.Outcome = "no schedule"
		att.err = fmt.Errorf("%s solver returned no schedule", name)
		return nil, att
	}
	att.Outcome = "solved"
	att.Preemptions = s.Preemptions
	return s, att
}

// attemptError turns a failed attempt into the error a single-solver
// Reproduce call reports. Interrupts pass through typed so callers can
// distinguish "ran out of budget" from "proved unsatisfiable".
func attemptError(prefix string, att SolverAttempt) error {
	if att.err != nil {
		var intr *solver.Interrupted
		if errors.As(att.err, &intr) {
			return att.err
		}
		return fmt.Errorf("%s: %s solver: %w", prefix, att.Solver, att.err)
	}
	return fmt.Errorf("%s: %s solver %s", prefix, att.Solver, att.Outcome)
}

// wireSeq threads the pipeline context and remaining deadline into a
// sequential solver's options; an existing tighter bound wins.
func wireSeq(o *solver.Options, ctx context.Context, deadline time.Time) {
	if o.Ctx == nil {
		o.Ctx = ctx
	}
	capBudget(&o.Deadline, remaining(deadline))
}

func wirePar(o *parsolve.Options, ctx context.Context, deadline time.Time) {
	if o.Ctx == nil {
		o.Ctx = ctx
	}
	capBudget(&o.Deadline, remaining(deadline))
}

func wireCNF(o *cnfsolver.Options, ctx context.Context, deadline time.Time) {
	if o.Ctx == nil {
		o.Ctx = ctx
	}
	capBudget(&o.Deadline, remaining(deadline))
}

// remaining converts an absolute deadline to a duration budget; zero means
// "no bound", and an expired deadline becomes a nanosecond so the stage
// starts, notices, and reports an interrupt instead of silently running.
func remaining(deadline time.Time) time.Duration {
	if deadline.IsZero() {
		return 0
	}
	rem := time.Until(deadline)
	if rem <= 0 {
		return time.Nanosecond
	}
	return rem
}

// capBudget tightens *d to budget when budget is the earlier bound.
func capBudget(d *time.Duration, budget time.Duration) {
	if budget <= 0 {
		return
	}
	if *d == 0 || *d > budget {
		*d = budget
	}
}

// cnfRescueSweep builds the sequential solver's RescueSweep hook: one
// reusable CNF session swept across preemption bounds. The session is
// created on first use — the hook is only consulted when the bound sweep
// failed with capped enumerations, so the common fast path never pays for
// the encoding — and reused across bounds with the over-budget blocks
// retracted between calls, so learnt clauses and theory lemmas amortize
// over the whole sweep. The budget is the hosting stage's wall share,
// anchored when the closure is built: however many bounds the sweep
// visits, the stage stays inside its original allotment.
func cnfRescueSweep(sys *constraints.System, base cnfsolver.Options, budget time.Duration) func(int) (*solver.Solution, error) {
	var sess *cnfsolver.Session
	var end time.Time
	if budget > 0 {
		end = time.Now().Add(budget)
	}
	return func(bound int) (*solver.Solution, error) {
		if !end.IsZero() {
			rem := time.Until(end)
			if rem <= 0 {
				return nil, &solver.Interrupted{Reason: "cnf rescue sweep budget exhausted", Bound: bound}
			}
			base.Deadline = rem
		}
		if sess == nil {
			s, err := cnfsolver.NewSession(sys, base)
			if err != nil {
				return nil, err
			}
			sess = s
		} else {
			sess.RetractBlocks()
		}
		sess.SetOptions(base)
		sol, _, err := sess.SolveBounded(bound)
		if err != nil {
			return nil, err
		}
		return sol, nil
	}
}

// stageBudget splits the remaining wall budget: the stage gets a 1/divisor
// share (so earlier stages leave room for their fallbacks), or the default
// when no deadline governs the run.
func stageBudget(deadline time.Time, divisor int64, def time.Duration) time.Duration {
	rem := remaining(deadline)
	if rem == 0 {
		return def
	}
	share := rem / time.Duration(divisor)
	if share <= 0 {
		share = time.Nanosecond
	}
	return share
}

// RunPortfolio runs the solver portfolio directly on a constraint system,
// honouring opts.Ctx/opts.Deadline: by default the three stages race
// concurrently and the first solution cancels the rest; with
// opts.SerialPortfolio they run as the old sequential→parallel→CNF ladder.
// It returns the winning solution together with the full attempt trail;
// when every stage fails, the trail explains each stage's exit.
func RunPortfolio(sys *constraints.System, opts ReproduceOptions) (*solver.Solution, []SolverAttempt, error) {
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = time.Now().Add(opts.Deadline)
	}
	if opts.Ctx != nil {
		if d, ok := opts.Ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
	}
	rep := &Reproduction{Trace: opts.Obs}
	if !opts.NoPreprocess {
		psp := opts.Obs.Root().Start("preprocess")
		emitPreStats(opts.Obs.Reg(), sys.PreprocessObs(psp))
		endStage(opts.Obs.Reg(), "preprocess", psp)
	}
	sp := opts.Obs.Root().Start("solve")
	sp.SetAttr("kind", "portfolio")
	sol, trail, err := runPortfolio(rep, sys, opts, deadline, sp)
	emitSolveSummary(opts.Obs.Reg(), trail, sol)
	if err != nil {
		sp.SetAttr("err", err.Error())
	}
	endStage(opts.Obs.Reg(), "solve", sp)
	return sol, trail, err
}

// runPortfolio is RunPortfolio against a caller-owned Reproduction, so the
// per-stage statistics (SeqStats, Parallel, CNFStats) land in the final
// report even when the stage that produced them did not solve.
func runPortfolio(rep *Reproduction, sys *constraints.System, opts ReproduceOptions, deadline time.Time, sp *obs.Span) (*solver.Solution, []SolverAttempt, error) {
	if opts.SerialPortfolio {
		return runPortfolioSerial(rep, sys, opts, deadline, sp)
	}
	return runPortfolioRacing(rep, sys, opts, deadline, sp)
}

// raceGrace is the head start each later portfolio stage concedes when the
// machine has fewer cores than racing stages.
const raceGrace = 150 * time.Millisecond

// stageGrace decides how staggered the race starts. With at least one core
// per stage the stages start together — a true race. With fewer cores the
// "race" is really time-sharing: three backends splitting one CPU slow the
// common case, where the sequential solver (first in the preference order,
// cheapest on small systems) finishes in milliseconds when given the whole
// machine. Each later stage therefore waits one extra grace period — a
// quick sequential win cancels the heavyweights before they consume
// anything, while hard systems still get the full portfolio after a delay
// that is noise against their solve times. The grace shrinks with a tight
// shared deadline so a late stage is never denied a meaningful share.
func stageGrace(deadline time.Time) time.Duration {
	if runtime.GOMAXPROCS(0) >= 3 {
		return 0
	}
	g := raceGrace
	if !deadline.IsZero() {
		if rem := time.Until(deadline) / 10; rem < g {
			g = rem
		}
	}
	if g < 0 {
		g = 0
	}
	return g
}

// stageResult carries one racing stage's outcome back to the collector.
type stageResult struct {
	idx int
	sol *solver.Solution
	att SolverAttempt
}

// runPortfolioRacing runs the three stages concurrently. Each stage gets
// the full remaining shared deadline (not a ladder share — the stages no
// longer queue behind each other), and the per-stage default budgets still
// apply when the caller set no deadline so no stage can hang the race.
// The first solution cancels the shared context; losers observe it through
// their normal interrupt polling and exit as "interrupted" attempts.
func runPortfolioRacing(rep *Reproduction, sys *constraints.System, opts ReproduceOptions, deadline time.Time, sp *obs.Span) (*solver.Solution, []SolverAttempt, error) {
	base := opts.Ctx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	seqOpts := opts.SeqOptions
	if seqOpts.MaxPreemptions == 0 {
		seqOpts.MaxPreemptions = -1
	}
	wireSeq(&seqOpts, ctx, deadline)
	if deadline.IsZero() {
		capBudget(&seqOpts.Deadline, defaultSeqBudget)
	}

	parOpts := opts.ParOptions
	wirePar(&parOpts, ctx, deadline)
	if deadline.IsZero() {
		capBudget(&parOpts.Deadline, defaultParBudget)
	}

	cnfOpts := opts.CNFOptions
	wireCNF(&cnfOpts, ctx, deadline)
	if deadline.IsZero() {
		capBudget(&cnfOpts.Deadline, defaultCNFBudget)
	}

	// The sequential stage's rescue pass sweeps bounds through a reusable
	// CNF session before falling back to escalated enumeration. Wired from
	// the pre-Progress cnfOpts copy so the rescue session does not publish
	// to the racing CNF stage's gauge family.
	if seqOpts.RescueSweep == nil {
		seqOpts.RescueSweep = cnfRescueSweep(sys, cnfOpts, seqOpts.Deadline)
	}

	// The racing stages publish to disjoint gauge families, so one shared
	// registry serves all three concurrently.
	reg := rep.Trace.Reg()
	wireProgress(reg, &seqOpts, &parOpts, &cnfOpts)

	// The stage index doubles as the tie-break priority: the serial
	// ladder's order is the preference order among simultaneous solvers.
	stages := []struct {
		name string
		run  func() (*solver.Solution, int, error)
	}{
		{"sequential", func() (*solver.Solution, int, error) {
			s, stats, err := solver.Solve(sys, seqOpts)
			rep.SeqStats = stats
			emitSeqStats(reg, stats)
			return s, boundOf(stats), err
		}},
		{"parallel", func() (*solver.Solution, int, error) {
			res, err := parsolve.Solve(sys, parOpts)
			rep.Parallel = res
			emitParResult(reg, res)
			if err != nil {
				return nil, -1, err
			}
			if !res.Found() {
				return nil, res.Bound, parallelFailure(res)
			}
			return bestSolution(res), res.Bound, nil
		}},
		{"cnf", func() (*solver.Solution, int, error) {
			s, stats, err := cnfsolver.Solve(sys, cnfOpts)
			rep.CNFStats = stats
			emitCNFStats(reg, stats)
			return s, -1, err
		}},
	}

	grace := stageGrace(deadline)
	results := make(chan stageResult, len(stages))
	for i := range stages {
		go func(i int) {
			if d := time.Duration(i) * grace; d > 0 {
				t := time.NewTimer(d)
				select {
				case <-ctx.Done():
					t.Stop()
					// The stage never ran, but it still gets a span: a
					// trace of a cut-short race shows every stage's fate.
					asp := sp.Start("solve." + stages[i].name)
					asp.SetAttr("outcome", "interrupted")
					asp.SetAttr("err", "cancelled before start")
					asp.End()
					results <- stageResult{idx: i, att: SolverAttempt{
						Solver:       stages[i].name,
						Outcome:      "interrupted",
						Err:          "cancelled before start",
						BoundReached: -1,
					}}
					return
				case <-t.C:
				}
			}
			sol, att := runSolverStage(reg, stages[i].name, sp, stages[i].run)
			results <- stageResult{idx: i, sol: sol, att: att}
		}(i)
	}

	trail := make([]SolverAttempt, len(stages))
	var winner *solver.Solution
	winIdx := -1
	for n := 0; n < len(stages); n++ {
		r := <-results
		trail[r.idx] = r.att
		if r.sol != nil && (winIdx == -1 || r.idx < winIdx) {
			winner, winIdx = r.sol, r.idx
			cancel() // first success: stop the losing stages
		}
	}
	if winner != nil {
		return winner, trail, nil
	}
	if err := portfolioCut(opts.Ctx, deadline, trail); err != nil {
		return nil, trail, err
	}
	// No shared budget expired, but a stage may have exhausted its own:
	// surface that interrupt typed so "ran out of time" in every stage is
	// not mistaken for a proof that no schedule exists.
	for _, a := range trail {
		var intr *solver.Interrupted
		if a.err != nil && errors.As(a.err, &intr) {
			return nil, trail, fmt.Errorf("core: portfolio exhausted (%s): %w", trailSummary(trail), intr)
		}
	}
	return nil, trail, fmt.Errorf("core: portfolio exhausted: %s", trailSummary(trail))
}

// runPortfolioSerial is the pre-racing degradation ladder: sequential under
// a budget share, then parallel, then CNF, each stage starting only after
// the previous one gave up.
func runPortfolioSerial(rep *Reproduction, sys *constraints.System, opts ReproduceOptions, deadline time.Time, sp *obs.Span) (*solver.Solution, []SolverAttempt, error) {
	var attempts []SolverAttempt
	reg := rep.Trace.Reg()

	// Stage 1: sequential, minimal preemptions, under a budget share.
	seqOpts := opts.SeqOptions
	if seqOpts.MaxPreemptions == 0 {
		seqOpts.MaxPreemptions = -1
	}
	wireSeq(&seqOpts, opts.Ctx, deadline)
	capBudget(&seqOpts.Deadline, stageBudget(deadline, 4, defaultSeqBudget))
	if seqOpts.RescueSweep == nil {
		rescueCNF := opts.CNFOptions
		wireCNF(&rescueCNF, opts.Ctx, deadline)
		seqOpts.RescueSweep = cnfRescueSweep(sys, rescueCNF, seqOpts.Deadline)
	}
	wireProgress(reg, &seqOpts, nil, nil)
	sol, att := runSolverStage(reg, "sequential", sp, func() (*solver.Solution, int, error) {
		s, stats, err := solver.Solve(sys, seqOpts)
		rep.SeqStats = stats
		emitSeqStats(reg, stats)
		return s, boundOf(stats), err
	})
	attempts = append(attempts, att)
	if sol != nil {
		return sol, attempts, nil
	}
	if err := portfolioCut(opts.Ctx, deadline, attempts); err != nil {
		return nil, attempts, err
	}

	// Stage 2: parallel generate-and-validate with half the time left.
	parOpts := opts.ParOptions
	wirePar(&parOpts, opts.Ctx, deadline)
	capBudget(&parOpts.Deadline, stageBudget(deadline, 2, defaultParBudget))
	wireProgress(reg, nil, &parOpts, nil)
	sol, att = runSolverStage(reg, "parallel", sp, func() (*solver.Solution, int, error) {
		res, err := parsolve.Solve(sys, parOpts)
		rep.Parallel = res
		emitParResult(reg, res)
		if err != nil {
			return nil, -1, err
		}
		if !res.Found() {
			return nil, res.Bound, parallelFailure(res)
		}
		return bestSolution(res), res.Bound, nil
	})
	attempts = append(attempts, att)
	if sol != nil {
		return sol, attempts, nil
	}
	if err := portfolioCut(opts.Ctx, deadline, attempts); err != nil {
		return nil, attempts, err
	}

	// Stage 3: CNF/CDCL with everything that remains.
	cnfOpts := opts.CNFOptions
	wireCNF(&cnfOpts, opts.Ctx, deadline)
	capBudget(&cnfOpts.Deadline, stageBudget(deadline, 1, defaultCNFBudget))
	wireProgress(reg, nil, nil, &cnfOpts)
	sol, att = runSolverStage(reg, "cnf", sp, func() (*solver.Solution, int, error) {
		s, stats, err := cnfsolver.Solve(sys, cnfOpts)
		rep.CNFStats = stats
		emitCNFStats(reg, stats)
		return s, -1, err
	})
	attempts = append(attempts, att)
	if sol != nil {
		return sol, attempts, nil
	}
	return nil, attempts, fmt.Errorf("core: portfolio exhausted: %s", trailSummary(attempts))
}

// portfolioCut reports a typed interrupt when the shared budget ran out
// between stages, so an exhausted portfolio is not mistaken for unsat.
func portfolioCut(ctx context.Context, deadline time.Time, attempts []SolverAttempt) error {
	if !huntInterrupted(ctx, deadline) {
		return nil
	}
	return fmt.Errorf("core: portfolio cut short (%s): %w",
		trailSummary(attempts), &solver.Interrupted{Reason: "portfolio budget exhausted", Bound: -1})
}

// trailSummary renders the attempt trail as one line.
func trailSummary(attempts []SolverAttempt) string {
	parts := make([]string, len(attempts))
	for i, a := range attempts {
		parts[i] = a.String()
	}
	return strings.Join(parts, "; ")
}
