// Solver portfolio: CLAP ships three decision procedures (the sequential
// minimal-preemption search, the parallel generate-and-validate pool, and
// the CNF/CDCL encoding) with complementary strengths — §4 of the paper
// compares them benchmark by benchmark. The portfolio runs them as a
// degradation ladder: sequential under a budget first (it yields the
// fewest-preemption schedules), then parallel (it wins on preemption-heavy
// systems like racey), then CNF. A stage that is interrupted, finds
// nothing, returns an error, or panics moves the ladder on; every attempt
// is recorded so a reproduction that needed a fallback says which stage
// failed and why.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/faultinject"
	"repro/internal/parsolve"
	"repro/internal/solver"
)

// Default per-stage budgets when the caller supplies no deadline: each
// stage is always bounded so the portfolio can never hang in one stage.
const (
	defaultSeqBudget = 10 * time.Second
	defaultParBudget = 30 * time.Second
	defaultCNFBudget = 60 * time.Second
)

// SolverAttempt records one solver stage's outcome in the attempt trail.
type SolverAttempt struct {
	// Solver names the stage: "sequential", "parallel" or "cnf".
	Solver string
	// Elapsed is the stage's wall time.
	Elapsed time.Duration
	// Outcome is one of "solved", "interrupted", "fault injected",
	// "panicked", "no schedule" or "failed".
	Outcome string
	// Err holds the failure detail when the stage did not solve.
	Err string
	// BoundReached is the last preemption bound the stage explored
	// (-1 when the stage does not sweep bounds).
	BoundReached int
	// Preemptions is the solution's preemption count when solved.
	Preemptions int

	// err retains the underlying error for callers inside the package.
	err error
}

// String renders the attempt for logs and CLI output.
func (a SolverAttempt) String() string {
	s := fmt.Sprintf("%s: %s in %v", a.Solver, a.Outcome, a.Elapsed.Round(time.Millisecond))
	if a.Outcome == "solved" {
		return fmt.Sprintf("%s (%d preemptions)", s, a.Preemptions)
	}
	if a.Err != "" {
		s += " (" + a.Err + ")"
	}
	return s
}

// runSolverStage runs one stage with full containment: an injected fault
// skips the stage, a panic is recovered into the attempt record, and an
// interrupt is classified apart from a genuine failure.
func runSolverStage(name string, fn func() (*solver.Solution, int, error)) (sol *solver.Solution, att SolverAttempt) {
	att = SolverAttempt{Solver: name, BoundReached: -1}
	start := time.Now()
	defer func() {
		att.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			sol = nil
			att.Outcome = "panicked"
			att.Err = fmt.Sprint(p)
			att.err = fmt.Errorf("%s solver panicked: %v", name, p)
		}
	}()
	if err := faultinject.Fire("solver." + name); err != nil {
		att.Outcome = "fault injected"
		att.Err = err.Error()
		att.err = err
		return nil, att
	}
	s, bound, err := fn()
	att.BoundReached = bound
	if err != nil {
		var intr *solver.Interrupted
		if errors.As(err, &intr) {
			att.Outcome = "interrupted"
		} else {
			att.Outcome = "failed"
		}
		att.Err = err.Error()
		att.err = err
		return nil, att
	}
	if s == nil {
		att.Outcome = "no schedule"
		att.err = fmt.Errorf("%s solver returned no schedule", name)
		return nil, att
	}
	att.Outcome = "solved"
	att.Preemptions = s.Preemptions
	return s, att
}

// attemptError turns a failed attempt into the error a single-solver
// Reproduce call reports. Interrupts pass through typed so callers can
// distinguish "ran out of budget" from "proved unsatisfiable".
func attemptError(prefix string, att SolverAttempt) error {
	if att.err != nil {
		var intr *solver.Interrupted
		if errors.As(att.err, &intr) {
			return att.err
		}
		return fmt.Errorf("%s: %s solver: %w", prefix, att.Solver, att.err)
	}
	return fmt.Errorf("%s: %s solver %s", prefix, att.Solver, att.Outcome)
}

// wireSeq threads the pipeline context and remaining deadline into a
// sequential solver's options; an existing tighter bound wins.
func wireSeq(o *solver.Options, ctx context.Context, deadline time.Time) {
	if o.Ctx == nil {
		o.Ctx = ctx
	}
	capBudget(&o.Deadline, remaining(deadline))
}

func wirePar(o *parsolve.Options, ctx context.Context, deadline time.Time) {
	if o.Ctx == nil {
		o.Ctx = ctx
	}
	capBudget(&o.Deadline, remaining(deadline))
}

func wireCNF(o *cnfsolver.Options, ctx context.Context, deadline time.Time) {
	if o.Ctx == nil {
		o.Ctx = ctx
	}
	capBudget(&o.Deadline, remaining(deadline))
}

// remaining converts an absolute deadline to a duration budget; zero means
// "no bound", and an expired deadline becomes a nanosecond so the stage
// starts, notices, and reports an interrupt instead of silently running.
func remaining(deadline time.Time) time.Duration {
	if deadline.IsZero() {
		return 0
	}
	rem := time.Until(deadline)
	if rem <= 0 {
		return time.Nanosecond
	}
	return rem
}

// capBudget tightens *d to budget when budget is the earlier bound.
func capBudget(d *time.Duration, budget time.Duration) {
	if budget <= 0 {
		return
	}
	if *d == 0 || *d > budget {
		*d = budget
	}
}

// stageBudget splits the remaining wall budget: the stage gets a 1/divisor
// share (so earlier stages leave room for their fallbacks), or the default
// when no deadline governs the run.
func stageBudget(deadline time.Time, divisor int64, def time.Duration) time.Duration {
	rem := remaining(deadline)
	if rem == 0 {
		return def
	}
	share := rem / time.Duration(divisor)
	if share <= 0 {
		share = time.Nanosecond
	}
	return share
}

// RunPortfolio runs the staged solver portfolio directly on a constraint
// system: Sequential under a budget, then Parallel, then CNF, honouring
// opts.Ctx/opts.Deadline. It returns the first solution found together
// with the full attempt trail; when every stage fails, the trail explains
// each stage's exit.
func RunPortfolio(sys *constraints.System, opts ReproduceOptions) (*solver.Solution, []SolverAttempt, error) {
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = time.Now().Add(opts.Deadline)
	}
	if opts.Ctx != nil {
		if d, ok := opts.Ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
	}
	return runPortfolio(&Reproduction{}, sys, opts, deadline)
}

// runPortfolio is RunPortfolio against a caller-owned Reproduction, so the
// per-stage statistics (SeqStats, Parallel, CNFStats) land in the final
// report even when the stage that produced them did not solve.
func runPortfolio(rep *Reproduction, sys *constraints.System, opts ReproduceOptions, deadline time.Time) (*solver.Solution, []SolverAttempt, error) {
	var attempts []SolverAttempt

	// Stage 1: sequential, minimal preemptions, under a budget share.
	seqOpts := opts.SeqOptions
	if seqOpts.MaxPreemptions == 0 {
		seqOpts.MaxPreemptions = -1
	}
	wireSeq(&seqOpts, opts.Ctx, deadline)
	capBudget(&seqOpts.Deadline, stageBudget(deadline, 4, defaultSeqBudget))
	sol, att := runSolverStage("sequential", func() (*solver.Solution, int, error) {
		s, stats, err := solver.Solve(sys, seqOpts)
		rep.SeqStats = stats
		return s, boundOf(stats), err
	})
	attempts = append(attempts, att)
	if sol != nil {
		return sol, attempts, nil
	}
	if err := portfolioCut(opts.Ctx, deadline, attempts); err != nil {
		return nil, attempts, err
	}

	// Stage 2: parallel generate-and-validate with half the time left.
	parOpts := opts.ParOptions
	wirePar(&parOpts, opts.Ctx, deadline)
	capBudget(&parOpts.Deadline, stageBudget(deadline, 2, defaultParBudget))
	sol, att = runSolverStage("parallel", func() (*solver.Solution, int, error) {
		res, err := parsolve.Solve(sys, parOpts)
		rep.Parallel = res
		if err != nil {
			return nil, -1, err
		}
		if !res.Found() {
			return nil, res.Bound, parallelFailure(res)
		}
		return bestSolution(res), res.Bound, nil
	})
	attempts = append(attempts, att)
	if sol != nil {
		return sol, attempts, nil
	}
	if err := portfolioCut(opts.Ctx, deadline, attempts); err != nil {
		return nil, attempts, err
	}

	// Stage 3: CNF/CDCL with everything that remains.
	cnfOpts := opts.CNFOptions
	wireCNF(&cnfOpts, opts.Ctx, deadline)
	capBudget(&cnfOpts.Deadline, stageBudget(deadline, 1, defaultCNFBudget))
	sol, att = runSolverStage("cnf", func() (*solver.Solution, int, error) {
		s, stats, err := cnfsolver.Solve(sys, cnfOpts)
		rep.CNFStats = stats
		return s, -1, err
	})
	attempts = append(attempts, att)
	if sol != nil {
		return sol, attempts, nil
	}
	return nil, attempts, fmt.Errorf("core: portfolio exhausted: %s", trailSummary(attempts))
}

// portfolioCut reports a typed interrupt when the shared budget ran out
// between stages, so an exhausted portfolio is not mistaken for unsat.
func portfolioCut(ctx context.Context, deadline time.Time, attempts []SolverAttempt) error {
	if !huntInterrupted(ctx, deadline) {
		return nil
	}
	return fmt.Errorf("core: portfolio cut short (%s): %w",
		trailSummary(attempts), &solver.Interrupted{Reason: "portfolio budget exhausted", Bound: -1})
}

// trailSummary renders the attempt trail as one line.
func trailSummary(attempts []SolverAttempt) string {
	parts := make([]string, len(attempts))
	for i, a := range attempts {
		parts[i] = a.String()
	}
	return strings.Join(parts, "; ")
}
