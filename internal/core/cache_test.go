package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/obs"
	"repro/internal/vm"
)

const cacheSrc = `
int x;
func t1() {
	x = 1;
}
func main() {
	int h = spawn t1();
	x = 2;
	join(h);
	int v = x;
	assert(v == 2, "overwritten");
}
`

func TestContentKeyStability(t *testing.T) {
	a := recordSrc(t, cacheSrc, vm.SC)
	b := recordSrc(t, cacheSrc, vm.SC)
	if a.ContentKey() != b.ContentKey() {
		t.Fatal("identical recordings must share a content key")
	}
	c := recordSrc(t, `
int y;
func t1() { y = 3; }
func main() {
	int h = spawn t1();
	y = 4;
	join(h);
	int v = y;
	assert(v == 4, "overwritten");
}
`, vm.SC)
	if a.ContentKey() == c.ContentKey() {
		t.Fatal("different programs must not collide")
	}
	if len(a.ContentKey()) != 64 {
		t.Fatalf("content key %q is not hex SHA-256", a.ContentKey())
	}
}

// cacheCounters reproduces rec with the given cache and returns the
// core.cache.{hit,miss} counter values plus the attempt trail.
func cacheCounters(t *testing.T, rec *Recording, cache *DiskCache) (hit, miss int64, attempts []SolverAttempt) {
	t.Helper()
	tr := obs.NewTrace("test")
	rep, err := Reproduce(rec, ReproduceOptions{
		Solver: Sequential,
		Cache:  cache,
		Obs:    tr,
	})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	snap := tr.Report()
	return snap.Counters["core.cache.hit"], snap.Counters["core.cache.miss"], rep.Attempts
}

func TestDiskCacheHitAndMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenDiskCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}

	rec := recordSrc(t, cacheSrc, vm.SC)
	hit, miss, attempts := cacheCounters(t, rec, cache)
	if hit != 0 || miss != 2 {
		t.Fatalf("cold run: hit=%d miss=%d, want 0/2", hit, miss)
	}
	for _, a := range attempts {
		if a.Solver == "cache" {
			t.Fatal("cold run must not report a cache attempt")
		}
	}

	// A fresh recording of the same program lands on the same content key
	// and must be served from the cache: preprocess snapshot + schedule.
	rec2 := recordSrc(t, cacheSrc, vm.SC)
	hit, miss, attempts = cacheCounters(t, rec2, cache)
	if hit != 2 || miss != 0 {
		t.Fatalf("warm run: hit=%d miss=%d, want 2/0", hit, miss)
	}
	if len(attempts) == 0 || attempts[len(attempts)-1].Solver != "cache" {
		t.Fatalf("warm run attempts = %+v, want a final cache attempt", attempts)
	}

	// Corrupt every cache entry: the pipeline must fall back to solving
	// and re-store good entries.
	ents, err := os.ReadDir(cache.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			if err := os.WriteFile(filepath.Join(cache.Dir, e.Name()), []byte("{broken"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	hit, miss, _ = cacheCounters(t, recordSrc(t, cacheSrc, vm.SC), cache)
	if hit != 0 || miss != 2 {
		t.Fatalf("corrupted run: hit=%d miss=%d, want 0/2", hit, miss)
	}
	hit, miss, _ = cacheCounters(t, recordSrc(t, cacheSrc, vm.SC), cache)
	if hit != 2 || miss != 0 {
		t.Fatalf("repaired run: hit=%d miss=%d, want 2/0", hit, miss)
	}
}

// TestCachedScheduleRevalidated pins the safety contract: a cache entry
// holding a bogus schedule under the right key must be rejected by
// validation and degrade to a normal solve.
func TestCachedScheduleRevalidated(t *testing.T) {
	cache, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := recordSrc(t, cacheSrc, vm.SC)
	key := rec.ContentKey()
	// A wrong-length order: validation rejects it before anything trusts it.
	cache.StoreSchedule(key, []constraints.SAPRef{0, 1, 2}, "bogus")

	hit, miss, attempts := cacheCounters(t, rec, cache)
	if hit != 0 || miss != 2 {
		t.Fatalf("bogus entry: hit=%d miss=%d, want 0/2", hit, miss)
	}
	for _, a := range attempts {
		if a.Solver == "cache" {
			t.Fatal("bogus schedule must not be served")
		}
	}
}
