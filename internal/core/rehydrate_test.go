package core

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/vm"
)

const rehydrateProg = `
int x;
int y;
func racer() {
	int r = x;
	x = r + 1;
	y = y + 1;
}
func main() {
	int h = spawn racer();
	int r = x;
	x = r + 1;
	join(h);
	int v = x;
	assert(v == 2, "lost update");
}
`

// TestRehydrateReproduces is the service-path contract: a Recording
// rebuilt from only the program, the framed log (after an encode/decode
// round trip, like an upload), the failure spec and the scheduler pins
// must drive the full offline pipeline to a verified replay, and its
// CaptureEvents re-run must still converge on the recorded failure.
func TestRehydrateReproduces(t *testing.T) {
	prog, err := Compile(rehydrateProg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Record(prog, RecordOptions{SeedLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}

	// Ship the log through the crash-tolerant wire format.
	framed := rec.Log.EncodeFramed(trace.FramedOptions{})
	log, rep := trace.DecodePathLogSalvage(framed)
	if !rep.Clean() {
		t.Fatalf("round-tripped log not clean: %s", rep)
	}

	re, err := Rehydrate(prog, RehydrateSpec{
		Model:      rec.Model,
		Inputs:     rec.Inputs,
		Log:        log,
		Failure:    rec.Failure,
		Seed:       rec.Seed,
		Chaos:      rec.Chaos,
		DrainBias:  rec.DrainBias,
		MaxActions: rec.MaxActions,
	})
	if err != nil {
		t.Fatal(err)
	}
	if re.Run != nil {
		t.Fatal("rehydrated recording claims a local run")
	}

	out, err := Reproduce(re, ReproduceOptions{Solver: Portfolio})
	if err != nil {
		t.Fatal(err)
	}
	if out.Outcome == nil || !out.Outcome.Reproduced {
		t.Fatal("rehydrated recording did not reproduce the failure")
	}

	if _, err := re.CaptureEvents(); err != nil {
		t.Fatalf("capture re-run diverged: %v", err)
	}
}

// TestRehydrateValidation pins the typed rejections: a rehydrated
// recording must carry a log and an assertion failure.
func TestRehydrateValidation(t *testing.T) {
	prog, err := Compile(rehydrateProg)
	if err != nil {
		t.Fatal(err)
	}
	fail := &vm.Failure{Kind: vm.FailAssert}
	if _, err := Rehydrate(nil, RehydrateSpec{Log: &trace.PathLog{}, Failure: fail}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Rehydrate(prog, RehydrateSpec{Failure: fail}); err == nil {
		t.Error("missing log accepted")
	}
	if _, err := Rehydrate(prog, RehydrateSpec{Log: &trace.PathLog{}, Failure: fail}); err == nil {
		t.Error("empty log accepted")
	}
	log := &trace.PathLog{}
	log.Append(0, trace.Event{Kind: trace.EvEnter, Arg: 0})
	if _, err := Rehydrate(prog, RehydrateSpec{Log: log}); err == nil {
		t.Error("missing failure accepted")
	}
	if _, err := Rehydrate(prog, RehydrateSpec{Log: log, Failure: &vm.Failure{Kind: vm.FailDeadlock}}); err == nil {
		t.Error("non-assertion failure accepted")
	}
}
