// Observability glue: the pipeline's stats structs (LevelStats, the
// constraint/preprocess accounting, the three solvers' counters) are
// consolidated into one obs.Registry under the stable dotted names of
// obs.StableNames, and the solvers' plain Progress callbacks are wired to
// registry gauges so a heartbeat can watch a live solve. Everything here
// is nil-safe: with no registry the emitters are no-ops and no progress
// callbacks are installed, so an uninstrumented run pays nothing.
package core

import (
	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/obs"
	"repro/internal/parsolve"
	"repro/internal/replay"
	"repro/internal/solver"
)

// b2i converts a flag to its 0/1 metric value.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// emitRecordCounters publishes the bug hunt's accounting: the per-level
// sweep totals plus, when a failing run was found, the size of the winning
// recording.
func emitRecordCounters(reg *obs.Registry, levels []LevelStats, rec *Recording) {
	if reg == nil {
		return
	}
	reg.Counter("record.levels").Add(int64(len(levels)))
	for _, l := range levels {
		reg.Counter("record.seeds").Add(int64(l.Seeds))
		reg.Counter("record.livelocked").Add(int64(l.Livelocked))
		reg.Counter("record.failures").Add(int64(l.Failures))
	}
	if rec == nil || rec.Run == nil {
		return
	}
	reg.Counter("record.saps").Add(rec.Run.VisibleEvents)
	reg.Counter("record.instructions").Add(rec.Run.Instructions)
	reg.Counter("record.branches").Add(rec.Run.Branches)
	if rec.Log != nil {
		reg.Counter("record.log.bytes").Add(int64(rec.LogSize()))
		var events int64
		for i := range rec.Log.Threads {
			events += int64(len(rec.Log.Threads[i].Events))
		}
		reg.Counter("record.events").Add(events)
	}
}

// emitConstraintStats publishes the §4.1 system-size accounting.
func emitConstraintStats(reg *obs.Registry, st constraints.Stats) {
	if reg == nil {
		return
	}
	reg.Counter("constraints.saps").Add(int64(st.SAPs))
	reg.Counter("constraints.clauses").Add(int64(st.Clauses))
	reg.Counter("constraints.variables").Add(int64(st.Variables))
	reg.Counter("constraints.value.vars").Add(int64(st.ValueVars))
	reg.Counter("constraints.signal.vars").Add(int64(st.SignalVars))
}

// emitPreStats publishes the preprocessing pass's reduction accounting.
func emitPreStats(reg *obs.Registry, st *constraints.PreStats) {
	if reg == nil || st == nil {
		return
	}
	reg.Counter("preprocess.reads").Add(int64(st.Reads))
	reg.Counter("preprocess.reads.free").Add(int64(st.FreeReads))
	reg.Counter("preprocess.reads.noinit").Add(int64(st.NoInitReads))
	reg.Counter("preprocess.cands.before").Add(int64(st.CandsBefore))
	reg.Counter("preprocess.cands.after").Add(int64(st.CandsAfter))
	reg.Counter("preprocess.pruned.order").Add(int64(st.PrunedOrder))
	reg.Counter("preprocess.pruned.shadowed").Add(int64(st.PrunedShadowed))
	reg.Counter("preprocess.pruned.lock").Add(int64(st.PrunedLock))
	reg.Counter("preprocess.pruned.mutex").Add(int64(st.PrunedMutex))
	reg.Counter("preprocess.wait.cands.before").Add(int64(st.WaitCandsBefore))
	reg.Counter("preprocess.wait.cands.after").Add(int64(st.WaitCandsAfter))
	reg.Counter("preprocess.closure.skipped").Add(b2i(st.ClosureSkipped))
}

// The solver metrics are gauges, not counters: the progress hooks
// republish cumulative snapshots while a solve runs, and the final stats
// overwrite them with the settled values when it ends.

func emitSeqStats(reg *obs.Registry, st *solver.Stats) {
	if reg == nil || st == nil {
		return
	}
	reg.Gauge("solver.seq.decisions").Set(st.Decisions)
	reg.Gauge("solver.seq.backtracks").Set(st.Backtracks)
	reg.Gauge("solver.seq.extensions").Set(st.Extensions)
	reg.Gauge("solver.seq.validations").Set(st.Validations)
	reg.Gauge("solver.seq.bound").Set(int64(st.BoundReached))
}

func emitParResult(reg *obs.Registry, res *parsolve.Result) {
	if reg == nil || res == nil {
		return
	}
	reg.Gauge("solver.par.generated").Set(res.Generated)
	reg.Gauge("solver.par.validated").Set(res.Validated)
	reg.Gauge("solver.par.valid").Set(int64(res.Valid))
	reg.Gauge("solver.par.bound").Set(int64(res.Bound))
	reg.Gauge("solver.par.capped").Set(b2i(res.Capped))
}

func emitCNFStats(reg *obs.Registry, st *cnfsolver.Stats) {
	if reg == nil || st == nil {
		return
	}
	reg.Gauge("solver.cnf.boolvars").Set(int64(st.BoolVars))
	reg.Gauge("solver.cnf.clauses").Set(st.Clauses)
	reg.Gauge("solver.cnf.rounds").Set(int64(st.TheoryRounds))
	reg.Gauge("solver.cnf.lazy.rounds").Set(st.LazyRounds)
	reg.Gauge("solver.cnf.lazy.lemmas").Set(st.LazyLemmas)
	reg.Gauge("solver.cnf.addr.rounds").Set(st.AddrRounds)
	reg.Gauge("solver.cnf.addr.lemmas").Set(st.AddrLemmas)
	reg.Gauge("solver.cnf.blocks.mapping").Set(st.MappingBlocks)
	reg.Gauge("solver.cnf.session.solves").Set(st.Solves)
	reg.Gauge("solver.cnf.session.reuse").Set(st.SessionReuse())
	reg.Gauge("solver.cnf.sat.conflicts").Set(st.SATConflicts)
	reg.Gauge("solver.cnf.sat.decisions").Set(st.SATDecisions)
	reg.Gauge("solver.cnf.sat.propagations").Set(st.SATPropagations)
	reg.Gauge("sat.solves").Set(st.SATSolves)
	reg.Gauge("sat.restarts").Set(st.SATRestarts)
	reg.Gauge("sat.learnts").Set(st.SATLearned)
}

// endStage closes a pipeline-stage span and feeds its wall time into the
// stage's latency histogram, the fleet-level view of where tail latency
// lives. Nil-safe on both the registry and the span.
func endStage(reg *obs.Registry, name string, sp *obs.Span) {
	sp.End()
	if sp != nil {
		reg.Hist("stage." + name + ".ns").Observe(int64(sp.Duration()))
	}
}

// emitSolveSummary publishes the solve stage's bottom line.
func emitSolveSummary(reg *obs.Registry, attempts []SolverAttempt, sol *solver.Solution) {
	if reg == nil {
		return
	}
	reg.Counter("solve.attempts").Add(int64(len(attempts)))
	if sol != nil {
		reg.Gauge("solve.preemptions").Set(int64(sol.Preemptions))
		reg.Gauge("solve.schedule.len").Set(int64(len(sol.Order)))
	}
}

func emitReplay(reg *obs.Registry, out *replay.Outcome) {
	if reg == nil || out == nil {
		return
	}
	reg.Counter("replay.events.matched").Add(int64(out.EventsMatched))
	reg.Counter("replay.reproduced").Add(b2i(out.Reproduced))
}

// wireProgress installs registry-publishing progress callbacks into the
// three solvers' options. Caller-supplied callbacks win; with no registry
// nothing is installed and the solvers skip the sampling entirely.
func wireProgress(reg *obs.Registry, seq *solver.Options, par *parsolve.Options, cnf *cnfsolver.Options) {
	if reg == nil {
		return
	}
	if seq != nil && seq.Progress == nil {
		seq.Progress = func(st solver.Stats) { emitSeqStats(reg, &st) }
	}
	if par != nil && par.Progress == nil {
		par.Progress = func(p parsolve.Progress) {
			reg.Gauge("solver.par.generated").Set(p.Generated)
			reg.Gauge("solver.par.validated").Set(p.Validated)
			reg.Gauge("solver.par.valid").Set(p.Valid)
			reg.Gauge("solver.par.bound").Set(int64(p.Bound))
		}
	}
	if cnf != nil && cnf.Progress == nil {
		cnf.Progress = func(st cnfsolver.Stats) { emitCNFStats(reg, &st) }
	}
}
