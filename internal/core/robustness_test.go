// Deadline, cancellation and portfolio behaviour of the pipeline entry
// points: no phase may hang past its budget, interrupted runs must return
// partial diagnostics, and injected solver failures must degrade to the
// next portfolio stage.
package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/solver"
	"repro/internal/vm"
)

// quietSrc never fails its assertion: a bug hunt on it runs until its seed
// budget or deadline expires.
const quietSrc = `
int x;
mutex m;
func worker() {
	lock(m);
	x = x + 1;
	unlock(m);
}
func main() {
	int h1 = spawn worker();
	int h2 = spawn worker();
	join(h1);
	join(h2);
	assert(x >= 0, "never fires");
}
`

const lostUpdateSrc = `
int c;
func worker() {
	int t = c;
	c = t + 1;
}
func main() {
	int h1 = spawn worker();
	int h2 = spawn worker();
	join(h1);
	join(h2);
	int v = c;
	assert(v == 2, "lost update");
}
`

func recordLostUpdate(t *testing.T) *Recording {
	t.Helper()
	prog, err := Compile(lostUpdateSrc)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Record(prog, RecordOptions{Model: vm.SC, SeedLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecordNoFailureReportsLevels(t *testing.T) {
	prog, err := Compile(quietSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Record(prog, RecordOptions{Model: vm.SC, SeedLimit: 5})
	var nf *NoFailureError
	if !errors.As(err, &nf) {
		t.Fatalf("want *NoFailureError, got %v", err)
	}
	if nf.Interrupted {
		t.Fatal("an exhausted hunt is not an interrupted one")
	}
	if len(nf.Levels) != 4 {
		t.Fatalf("chaos ladder has 4 levels, reported %d", len(nf.Levels))
	}
	for _, l := range nf.Levels {
		if l.Seeds != 5 {
			t.Fatalf("level %d ran %d seeds, want 5: %v", l.Chaos, l.Seeds, err)
		}
	}
}

func TestRecordDeadlineInterrupts(t *testing.T) {
	prog, err := Compile(quietSrc)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = Record(prog, RecordOptions{
		Model:     vm.SC,
		SeedLimit: 1 << 40, // would run ~forever without the deadline
		Deadline:  100 * time.Millisecond,
	})
	elapsed := time.Since(start)
	var nf *NoFailureError
	if !errors.As(err, &nf) || !nf.Interrupted {
		t.Fatalf("want an interrupted *NoFailureError, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: hunt ran %v", elapsed)
	}
	if len(nf.Levels) == 0 || nf.Levels[0].Seeds == 0 {
		t.Fatalf("interrupted hunt reported no progress: %v", err)
	}
}

func TestRecordCtxCancelInterrupts(t *testing.T) {
	prog, err := Compile(quietSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Record(prog, RecordOptions{Model: vm.SC, SeedLimit: 1 << 40, Ctx: ctx})
	var nf *NoFailureError
	if !errors.As(err, &nf) || !nf.Interrupted {
		t.Fatalf("want an interrupted *NoFailureError, got %v", err)
	}
}

func TestReproduceDeadlineExpired(t *testing.T) {
	rec := recordLostUpdate(t)
	for _, kind := range []SolverKind{Sequential, Parallel, CNF, Portfolio} {
		start := time.Now()
		rep, err := Reproduce(rec, ReproduceOptions{Solver: kind, Deadline: time.Nanosecond})
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("kind %d: expired deadline still ran %v", kind, elapsed)
		}
		if err == nil {
			t.Fatalf("kind %d: expired deadline produced no error", kind)
		}
		var intr *solver.Interrupted
		if !errors.As(err, &intr) {
			t.Fatalf("kind %d: want *solver.Interrupted in the chain, got %v", kind, err)
		}
		if rep == nil {
			t.Fatalf("kind %d: interrupted reproduce returned no partial diagnostics", kind)
		}
		if rep.System == nil || len(rep.Attempts) == 0 {
			t.Fatalf("kind %d: partial diagnostics incomplete: %+v", kind, rep)
		}
	}
}

func TestReproduceCtxCancelled(t *testing.T) {
	rec := recordLostUpdate(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Reproduce(rec, ReproduceOptions{Solver: Sequential, Ctx: ctx})
	if err == nil {
		t.Fatal("cancelled context produced no error")
	}
	var intr *solver.Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("want *solver.Interrupted, got %v", err)
	}
	if rep == nil || len(rep.Attempts) == 0 {
		t.Fatal("cancelled reproduce returned no attempt trail")
	}
}

func TestReproduceCNFKind(t *testing.T) {
	rec := recordLostUpdate(t)
	rep, err := Reproduce(rec, ReproduceOptions{Solver: CNF})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("CNF solver did not reproduce the lost update")
	}
	if rep.CNFStats == nil {
		t.Fatal("CNF stats missing")
	}
	if len(rep.Attempts) != 1 || rep.Attempts[0].Solver != "cnf" || rep.Attempts[0].Outcome != "solved" {
		t.Fatalf("attempt trail wrong: %+v", rep.Attempts)
	}
}

// TestPortfolioRacesAllStages pins the concurrent portfolio's contract:
// every stage appears in the trail in fixed ladder order no matter which
// finished first, and at least one of them solved.
func TestPortfolioRacesAllStages(t *testing.T) {
	rec := recordLostUpdate(t)
	rep, err := Reproduce(rec, ReproduceOptions{Solver: Portfolio})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("portfolio did not reproduce")
	}
	want := []string{"sequential", "parallel", "cnf"}
	if len(rep.Attempts) != len(want) {
		t.Fatalf("racing portfolio should record all three stages: %+v", rep.Attempts)
	}
	solved := 0
	for i, a := range rep.Attempts {
		if a.Solver != want[i] {
			t.Fatalf("attempt %d: want stage %q in the trail, got %+v", i, want[i], rep.Attempts)
		}
		if a.Outcome == "solved" {
			solved++
		}
	}
	if solved == 0 {
		t.Fatalf("no stage solved: %+v", rep.Attempts)
	}
	if rep.SeqStats == nil {
		t.Fatal("sequential stats missing from the report")
	}
}

// TestPortfolioSerialPrefersSequential keeps the old ladder pinned: in
// serial mode a healthy portfolio stops at the sequential stage.
func TestPortfolioSerialPrefersSequential(t *testing.T) {
	rec := recordLostUpdate(t)
	rep, err := Reproduce(rec, ReproduceOptions{Solver: Portfolio, SerialPortfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("serial portfolio did not reproduce")
	}
	if len(rep.Attempts) != 1 || rep.Attempts[0].Solver != "sequential" {
		t.Fatalf("healthy serial portfolio should stop at the sequential stage: %+v", rep.Attempts)
	}
	if rep.SeqStats == nil {
		t.Fatal("sequential stats missing from the report")
	}
}

func TestPortfolioFallsBackOnInjectedFailure(t *testing.T) {
	rec := recordLostUpdate(t)
	faultinject.Fail("solver.sequential")
	defer faultinject.Reset()
	rep, err := Reproduce(rec, ReproduceOptions{Solver: Portfolio})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcome.Reproduced {
		t.Fatal("portfolio did not reproduce via fallback")
	}
	if len(rep.Attempts) < 2 || rep.Attempts[0].Outcome != "fault injected" {
		t.Fatalf("attempt trail: %+v", rep.Attempts)
	}
	if rep.Attempts[1].Solver != "parallel" {
		t.Fatalf("second stage should be parallel: %+v", rep.Attempts)
	}
}

func TestPortfolioAllStagesFail(t *testing.T) {
	rec := recordLostUpdate(t)
	faultinject.Fail("solver.sequential")
	faultinject.Fail("solver.parallel")
	faultinject.Fail("solver.cnf")
	defer faultinject.Reset()
	rep, err := Reproduce(rec, ReproduceOptions{Solver: Portfolio})
	if err == nil {
		t.Fatal("all stages injected to fail, yet the portfolio succeeded")
	}
	if rep == nil || len(rep.Attempts) != 3 {
		t.Fatalf("want a 3-entry attempt trail, got %+v", rep)
	}
	for _, a := range rep.Attempts {
		if a.Outcome != "fault injected" {
			t.Fatalf("attempt %+v should be fault injected", a)
		}
	}
}

func TestRunPortfolioDirect(t *testing.T) {
	rec := recordLostUpdate(t)
	sys, err := rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sol, attempts, err := RunPortfolio(sys, ReproduceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil || len(attempts) == 0 {
		t.Fatalf("no solution or trail: %v %v", sol, attempts)
	}
	solved := false
	for _, a := range attempts {
		if a.Outcome == "solved" {
			solved = true
		}
	}
	if !solved {
		t.Fatalf("trail: %v", attempts)
	}
}
