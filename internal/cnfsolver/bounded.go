package cnfsolver

import (
	"sort"

	"repro/internal/constraints"
	"repro/internal/trace"
)

// extractOrderMinSwitch linearizes the model's order relation like
// extractOrder, but greedily stays on the running thread while it has a
// ready SAP, switching only when forced. Plain topological ranks
// interleave threads arbitrarily and overshoot any preemption budget even
// when the underlying partial order admits a near-sequential extension;
// the greedy walk instead realizes only the context switches the order
// relation (or thread exhaustion) forces. Used by SolveBounded; the plain
// Solve path keeps the rank extraction so its schedules — and the golden
// outputs downstream — are unchanged.
func (e *encoder) extractOrderMinSwitch() []constraints.SAPRef {
	// Orient the allocated pairs into adjacency lists. The relation is
	// acyclic here: lazy mode runs refineAcyclic first, eager mode's
	// triples enforce transitivity outright.
	adj := make([][]int32, e.n)
	indeg := make([]int, e.n)
	for _, idx := range e.pairList {
		a, b := int(idx)/e.n, int(idx)%e.n
		from, to := a, b
		if !e.s.Value(int(e.pairVar[idx])) {
			from, to = b, a
		}
		adj[from] = append(adj[from], int32(to))
		indeg[to]++
	}
	// Per-thread SAP lists in index order (= the thread's issue order),
	// sorted thread IDs for run-to-run determinism.
	byThread := map[trace.ThreadID][]int{}
	var tids []trace.ThreadID
	for i := 0; i < e.n; i++ {
		t := e.sys.SAP(constraints.SAPRef(i)).Thread
		if _, ok := byThread[t]; !ok {
			tids = append(tids, t)
		}
		byThread[t] = append(byThread[t], i)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	order := make([]constraints.SAPRef, 0, e.n)
	scheduled := make([]bool, e.n)
	schedule := func(i int) {
		scheduled[i] = true
		for _, t := range adj[i] {
			indeg[t]--
		}
		order = append(order, constraints.SAPRef(i))
	}
	// pickIn returns the thread's earliest ready SAP, or -1. The scan
	// starts at the thread's first unscheduled SAP; under store buffering
	// a thread's SAPs are only partially ordered, so a blocked SAP does
	// not block its later ones.
	start := make([]int, len(tids))
	pickIn := func(ti int) int {
		list := byThread[tids[ti]]
		for start[ti] < len(list) && scheduled[list[start[ti]]] {
			start[ti]++
		}
		for _, i := range list[start[ti]:] {
			if !scheduled[i] && indeg[i] == 0 {
				return i
			}
		}
		return -1
	}
	cur := -1
	for len(order) < e.n {
		i := -1
		if cur >= 0 {
			i = pickIn(cur)
		}
		if i < 0 {
			for ti := range tids {
				if ti == cur {
					continue
				}
				if j := pickIn(ti); j >= 0 {
					i, cur = j, ti
					break
				}
			}
		}
		if i < 0 {
			panic("cnfsolver: min-switch extraction stuck on a cyclic order relation")
		}
		schedule(i)
	}
	return order
}
