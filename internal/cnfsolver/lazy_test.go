package cnfsolver_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/ir"
	"repro/internal/vm"
)

// mappingKey canonicalizes a read→write mapping vector for set comparison.
func mappingKey(m []int) string {
	parts := make([]string, len(m))
	for i, k := range m {
		parts[i] = fmt.Sprint(k)
	}
	return strings.Join(parts, ",")
}

// enumerateMappings collects every distinct feasible read→write mapping of
// the system under the given options by repeated Solve + BlockMapping.
// Every solution's schedule is validated against the system on the way.
func enumerateMappings(t *testing.T, sys *constraints.System, opts cnfsolver.Options, cap int) []string {
	t.Helper()
	sess, err := cnfsolver.NewSession(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for len(keys) < cap {
		sol, _, err := sess.Solve()
		if err != nil {
			if _, ok := err.(*cnfsolver.Unsat); ok {
				break
			}
			t.Fatalf("solve: %v", err)
		}
		if _, err := sys.ValidateSchedule(sol.Order); err != nil {
			t.Fatalf("enumerated schedule does not validate: %v", err)
		}
		keys = append(keys, mappingKey(sess.Mapping()))
		sess.BlockMapping()
	}
	sort.Strings(keys)
	return keys
}

// TestLazyMatchesEagerMappings is the schedule-equivalence property on
// hand-written systems: the lazy-transitivity and eager encodings must
// admit exactly the same set of read→write mapping classes, each with a
// validating witness schedule.
func TestLazyMatchesEagerMappings(t *testing.T) {
	srcs := map[string]string{
		"figure2": figure2SC,
		"lost update": `
int c;
func worker() {
	int t = c;
	c = t + 1;
}
func main() {
	int h1 = spawn worker();
	int h2 = spawn worker();
	join(h1);
	join(h2);
	int v = c;
	assert(v == 2, "lost update");
}
`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			_, sys := buildSystem(t, src, vm.SC, 3000)
			lazy := enumerateMappings(t, sys, cnfsolver.Options{}, 256)
			eager := enumerateMappings(t, sys, cnfsolver.Options{EagerTransitivity: true}, 256)
			if len(lazy) == 0 {
				t.Fatal("no mappings found")
			}
			if strings.Join(lazy, ";") != strings.Join(eager, ";") {
				t.Fatalf("mapping sets differ:\nlazy:  %v\neager: %v", lazy, eager)
			}
		})
	}
}

func TestLazySessionIsLazyByDefault(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	sess, err := cnfsolver.NewSession(sys, cnfsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Lazy() {
		t.Fatal("concrete-address system must use the lazy encoding")
	}
	if _, _, err := sess.Solve(); err != nil {
		t.Fatalf("lazy solve: %v", err)
	}
	eager, err := cnfsolver.NewSession(sys, cnfsolver.Options{EagerTransitivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if eager.Lazy() {
		t.Fatal("EagerTransitivity must force the eager encoding")
	}
	// The lazy encoding's whole point: far fewer clauses than the cubic
	// closure of the same system.
	if ls, es := sess.Stats(), eager.Stats(); ls.Clauses*10 > es.Clauses {
		t.Fatalf("lazy encoding not materially smaller: %d vs eager %d clauses", ls.Clauses, es.Clauses)
	}
}

// TestSessionRetractBlocks checks the cross-attempt reuse contract: after
// blocking every mapping to exhaustion, retracting the blocks makes the
// session solvable again without re-encoding.
func TestSessionRetractBlocks(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	sess, err := cnfsolver.NewSession(sys, cnfsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	solutions := 0
	for {
		_, _, err := sess.Solve()
		if err != nil {
			if _, ok := err.(*cnfsolver.Unsat); ok {
				break
			}
			t.Fatalf("solve: %v", err)
		}
		solutions++
		sess.BlockMapping()
		if solutions > 256 {
			t.Fatal("runaway enumeration")
		}
	}
	if solutions == 0 {
		t.Fatal("system must be satisfiable")
	}
	sess.RetractBlocks()
	if _, _, err := sess.Solve(); err != nil {
		t.Fatalf("solve after RetractBlocks: %v", err)
	}
}

// TestUnsatNamesNeverReleasedRegions pins the explainable-unsat contract
// for the lock-region default branch: two cross-thread regions that never
// release their mutex must produce an Unsat error that names the mutex
// and both regions, not a silent empty clause.
func TestUnsatNamesNeverReleasedRegions(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	// Graft a conflicting pair of never-released regions onto the system:
	// the encoder only looks at Thread/Lock/HasUnlock.
	if sys.Regions == nil {
		sys.Regions = map[ir.SyncID][]constraints.Region{}
	}
	sys.Regions[3] = []constraints.Region{
		{Thread: 0, Lock: 0, HasUnlock: false},
		{Thread: 1, Lock: 1, HasUnlock: false},
	}
	_, _, err := cnfsolver.Solve(sys, cnfsolver.Options{})
	u, ok := err.(*cnfsolver.Unsat)
	if !ok {
		t.Fatalf("expected Unsat, got %v", err)
	}
	if u.Conflict == nil {
		t.Fatal("Unsat must carry the region conflict")
	}
	if u.Conflict.GroupID() != "fso/lock/m3" {
		t.Fatalf("conflict group = %q, want fso/lock/m3", u.Conflict.GroupID())
	}
	msg := u.Error()
	for _, want := range []string{"m3", "thread 0", "thread 1", "never release"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("unsat message %q missing %q", msg, want)
		}
	}
}
