package cnfsolver_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// mappingKey canonicalizes a read→write mapping vector for set comparison.
func mappingKey(m []int) string {
	parts := make([]string, len(m))
	for i, k := range m {
		parts[i] = fmt.Sprint(k)
	}
	return strings.Join(parts, ",")
}

// enumerateMappings collects every distinct feasible read→write mapping of
// the system under the given options by repeated Solve + BlockMapping.
// Every solution's schedule is validated against the system on the way.
func enumerateMappings(t *testing.T, sys *constraints.System, opts cnfsolver.Options, cap int) []string {
	t.Helper()
	sess, err := cnfsolver.NewSession(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for len(keys) < cap {
		sol, _, err := sess.Solve()
		if err != nil {
			if _, ok := err.(*cnfsolver.Unsat); ok {
				break
			}
			t.Fatalf("solve: %v", err)
		}
		if _, err := sys.ValidateSchedule(sol.Order); err != nil {
			t.Fatalf("enumerated schedule does not validate: %v", err)
		}
		keys = append(keys, mappingKey(sess.Mapping()))
		sess.BlockMapping()
	}
	sort.Strings(keys)
	return keys
}

// TestLazyMatchesEagerMappings is the schedule-equivalence property on
// hand-written systems: the lazy-transitivity and eager encodings must
// admit exactly the same set of read→write mapping classes, each with a
// validating witness schedule.
func TestLazyMatchesEagerMappings(t *testing.T) {
	srcs := map[string]string{
		"figure2": figure2SC,
		"lost update": `
int c;
func worker() {
	int t = c;
	c = t + 1;
}
func main() {
	int h1 = spawn worker();
	int h2 = spawn worker();
	join(h1);
	join(h2);
	int v = c;
	assert(v == 2, "lost update");
}
`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			_, sys := buildSystem(t, src, vm.SC, 3000)
			lazy := enumerateMappings(t, sys, cnfsolver.Options{}, 256)
			eager := enumerateMappings(t, sys, cnfsolver.Options{EagerTransitivity: true}, 256)
			if len(lazy) == 0 {
				t.Fatal("no mappings found")
			}
			if strings.Join(lazy, ";") != strings.Join(eager, ";") {
				t.Fatalf("mapping sets differ:\nlazy:  %v\neager: %v", lazy, eager)
			}
		})
	}
}

// genSymbolicAddrProgram builds a random member of a family of programs
// whose writes index a shared array by a value read from a shared
// variable — every instance carries symbolic addresses into the
// constraint system. Writers race to set the index variable and slots of
// the array; main indexes the array by whatever it read, and asserts slot
// 0 untouched, which racy index values violate.
func genSymbolicAddrProgram(r *rand.Rand) string {
	n := 2 + r.Intn(3)       // array size 2..4
	writers := 1 + r.Intn(2) // 1..2 racing writer threads
	var sb strings.Builder
	fmt.Fprintf(&sb, "int a[%d];\nint idx;\n", n)
	for w := 0; w < writers; w++ {
		fmt.Fprintf(&sb, "func t%d() {\n\tidx = %d;\n\ta[%d] = %d;\n}\n",
			w, 1+r.Intn(n-1), 1+r.Intn(n-1), 10+w)
	}
	sb.WriteString("func main() {\n")
	for w := 0; w < writers; w++ {
		fmt.Fprintf(&sb, "\tint h%d = spawn t%d();\n", w, w)
	}
	fmt.Fprintf(&sb, "\tint i = idx;\n\ta[i %% %d] = 7;\n", n)
	for w := 0; w < writers; w++ {
		fmt.Fprintf(&sb, "\tjoin(h%d);\n", w)
	}
	sb.WriteString("\tint v = a[0];\n\tassert(v == 0, \"racy index hit slot 0\");\n}\n")
	return sb.String()
}

// TestPropertySymbolicAddrLazyMatchesEager is the randomized half of the
// address-split equivalence property: on random symbolic-address programs
// the lazy encoding (address-split refinement) and the eager encoding
// must enumerate exactly the same read→write mapping classes, each with a
// validating witness. This is the completeness evidence that let the
// eager fallback retire.
func TestPropertySymbolicAddrLazyMatchesEager(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	compared := 0
	for trial := 0; trial < 12; trial++ {
		src := genSymbolicAddrProgram(r)
		prog, err := core.Compile(src)
		if err != nil {
			t.Fatalf("trial %d: generated program does not compile: %v\n%s", trial, err, src)
		}
		rec, err := core.Record(prog, core.RecordOptions{Model: vm.SC, SeedLimit: 3000})
		if err != nil {
			continue // this variant never failed: fine
		}
		sys, err := rec.Analyze()
		if err != nil {
			t.Fatalf("trial %d: analyze: %v\n%s", trial, err, src)
		}
		hasSym := false
		for _, sap := range sys.SAPs {
			if sap.Kind.IsMemory() && sap.Addr == symexec.NoAddr {
				hasSym = true
				break
			}
		}
		if !hasSym {
			continue // constant-folded index: not the shape under test
		}
		enumOpts := cnfsolver.Options{MaxTheoryRounds: 20000}
		lazy := enumerateMappings(t, sys, enumOpts, 256)
		enumOpts.EagerTransitivity = true
		eager := enumerateMappings(t, sys, enumOpts, 256)
		if len(lazy) == 0 {
			t.Fatalf("trial %d: no mappings for a failing recording\n%s", trial, src)
		}
		if strings.Join(lazy, ";") != strings.Join(eager, ";") {
			t.Fatalf("trial %d: mapping sets differ:\nlazy:  %v\neager: %v\n%s", trial, lazy, eager, src)
		}
		compared++
	}
	if compared < 5 {
		t.Fatalf("only %d random symbolic-address programs compared; generator too tame", compared)
	}
	t.Logf("mapping sets equal on %d/12 random symbolic-address programs", compared)
}

func TestLazySessionIsLazyByDefault(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	sess, err := cnfsolver.NewSession(sys, cnfsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Lazy() {
		t.Fatal("concrete-address system must use the lazy encoding")
	}
	if _, _, err := sess.Solve(); err != nil {
		t.Fatalf("lazy solve: %v", err)
	}
	eager, err := cnfsolver.NewSession(sys, cnfsolver.Options{EagerTransitivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if eager.Lazy() {
		t.Fatal("EagerTransitivity must force the eager encoding")
	}
	// The lazy encoding's whole point: far fewer clauses than the cubic
	// closure of the same system.
	if ls, es := sess.Stats(), eager.Stats(); ls.Clauses*10 > es.Clauses {
		t.Fatalf("lazy encoding not materially smaller: %d vs eager %d clauses", ls.Clauses, es.Clauses)
	}
}

// TestSessionRetractBlocks checks the cross-attempt reuse contract: after
// blocking every mapping to exhaustion, retracting the blocks makes the
// session solvable again without re-encoding.
func TestSessionRetractBlocks(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	sess, err := cnfsolver.NewSession(sys, cnfsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	solutions := 0
	for {
		_, _, err := sess.Solve()
		if err != nil {
			if _, ok := err.(*cnfsolver.Unsat); ok {
				break
			}
			t.Fatalf("solve: %v", err)
		}
		solutions++
		sess.BlockMapping()
		if solutions > 256 {
			t.Fatal("runaway enumeration")
		}
	}
	if solutions == 0 {
		t.Fatal("system must be satisfiable")
	}
	sess.RetractBlocks()
	if _, _, err := sess.Solve(); err != nil {
		t.Fatalf("solve after RetractBlocks: %v", err)
	}
}

// TestUnsatNamesNeverReleasedRegions pins the explainable-unsat contract
// for the lock-region default branch: two cross-thread regions that never
// release their mutex must produce an Unsat error that names the mutex
// and both regions, not a silent empty clause.
func TestUnsatNamesNeverReleasedRegions(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	// Graft a conflicting pair of never-released regions onto the system:
	// the encoder only looks at Thread/Lock/HasUnlock.
	if sys.Regions == nil {
		sys.Regions = map[ir.SyncID][]constraints.Region{}
	}
	sys.Regions[3] = []constraints.Region{
		{Thread: 0, Lock: 0, HasUnlock: false},
		{Thread: 1, Lock: 1, HasUnlock: false},
	}
	_, _, err := cnfsolver.Solve(sys, cnfsolver.Options{})
	u, ok := err.(*cnfsolver.Unsat)
	if !ok {
		t.Fatalf("expected Unsat, got %v", err)
	}
	if u.Conflict == nil {
		t.Fatal("Unsat must carry the region conflict")
	}
	if u.Conflict.GroupID() != "fso/lock/m3" {
		t.Fatalf("conflict group = %q, want fso/lock/m3", u.Conflict.GroupID())
	}
	msg := u.Error()
	for _, want := range []string{"m3", "thread 0", "thread 1", "never release"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("unsat message %q missing %q", msg, want)
		}
	}
}
