package cnfsolver_test

import (
	"testing"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/solver"
	"repro/internal/vm"
)

func buildSystem(t *testing.T, src string, model vm.MemModel, seeds int64) (*core.Recording, *constraints.System) {
	t.Helper()
	prog, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.Record(prog, core.RecordOptions{Model: model, SeedLimit: seeds})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return rec, sys
}

const figure2SC = `
int x;
int y;
func t1() {
	int r1 = x;
	x = r1 + 1;
	int r2 = y;
	if (r2 > 0) {
		int r3 = x;
		assert(r3 > 0, "assert1");
	}
}
func main() {
	int h;
	h = spawn t1();
	x = 2;
	x = x - 3;
	y = 1;
	join(h);
}
`

func TestCNFSolverFigure2(t *testing.T) {
	rec, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	sol, stats, err := cnfsolver.Solve(sys, cnfsolver.Options{})
	if err != nil {
		t.Fatalf("cnf solve: %v (stats %+v)", err, stats)
	}
	if _, err := sys.ValidateSchedule(sol.Order); err != nil {
		t.Fatalf("solution does not validate: %v", err)
	}
	if stats.BoolVars == 0 || stats.Clauses == 0 {
		t.Error("stats missing")
	}
	// The CNF solution must replay just like the dedicated solver's.
	out, err := replay.Run(sys, sol, replay.Options{Mode: replay.ModeFor(rec.Model), Inputs: rec.Inputs})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatal("CNF-backend schedule did not reproduce the bug")
	}
}

func TestCNFSolverAgreesWithDedicated(t *testing.T) {
	srcs := map[string]string{
		"figure2": figure2SC,
		"lost update": `
int c;
func worker() {
	int t = c;
	c = t + 1;
}
func main() {
	int h1 = spawn worker();
	int h2 = spawn worker();
	join(h1);
	join(h2);
	int v = c;
	assert(v == 2, "lost update");
}
`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			_, sys := buildSystem(t, src, vm.SC, 3000)
			_, _, errCNF := cnfsolver.Solve(sys, cnfsolver.Options{})
			_, _, errSeq := solver.Solve(sys, solver.Options{MaxPreemptions: -1})
			if (errCNF == nil) != (errSeq == nil) {
				t.Fatalf("solver disagreement: cnf=%v, dedicated=%v", errCNF, errSeq)
			}
		})
	}
}

func TestCNFSolverPSO(t *testing.T) {
	src := `
int x;
int y;
func t2() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "write reorder observed");
	}
}
func main() {
	int h;
	h = spawn t2();
	x = 1;
	y = 1;
	join(h);
}
`
	_, sys := buildSystem(t, src, vm.PSO, 3000)
	sol, _, err := cnfsolver.Solve(sys, cnfsolver.Options{})
	if err != nil {
		t.Fatalf("cnf solve under PSO: %v", err)
	}
	if _, err := sys.ValidateSchedule(sol.Order); err != nil {
		t.Fatalf("solution does not validate: %v", err)
	}
	// The SC encoding of the same recording must be unsatisfiable.
	sysSC, err := constraints.Build(sys.An, vm.SC)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cnfsolver.Solve(sysSC, cnfsolver.Options{}); err == nil {
		t.Fatal("PSO-only bug must be UNSAT under the SC encoding")
	} else if _, ok := err.(*cnfsolver.Unsat); !ok {
		t.Fatalf("expected Unsat, got %v", err)
	}
}

func TestCNFSolverSizeLimit(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	if _, _, err := cnfsolver.Solve(sys, cnfsolver.Options{MaxSAPs: 2}); err == nil {
		t.Fatal("size limit must refuse large systems")
	}
}
