package cnfsolver_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/solver"
	"repro/internal/symexec"
	"repro/internal/vm"
)

func buildSystem(t *testing.T, src string, model vm.MemModel, seeds int64) (*core.Recording, *constraints.System) {
	t.Helper()
	prog, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.Record(prog, core.RecordOptions{Model: model, SeedLimit: seeds})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return rec, sys
}

const figure2SC = `
int x;
int y;
func t1() {
	int r1 = x;
	x = r1 + 1;
	int r2 = y;
	if (r2 > 0) {
		int r3 = x;
		assert(r3 > 0, "assert1");
	}
}
func main() {
	int h;
	h = spawn t1();
	x = 2;
	x = x - 3;
	y = 1;
	join(h);
}
`

func TestCNFSolverFigure2(t *testing.T) {
	rec, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	sol, stats, err := cnfsolver.Solve(sys, cnfsolver.Options{})
	if err != nil {
		t.Fatalf("cnf solve: %v (stats %+v)", err, stats)
	}
	if _, err := sys.ValidateSchedule(sol.Order); err != nil {
		t.Fatalf("solution does not validate: %v", err)
	}
	if stats.BoolVars == 0 || stats.Clauses == 0 {
		t.Error("stats missing")
	}
	// The CNF solution must replay just like the dedicated solver's.
	out, err := replay.Run(sys, sol, replay.Options{Mode: replay.ModeFor(rec.Model), Inputs: rec.Inputs})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatal("CNF-backend schedule did not reproduce the bug")
	}
}

func TestCNFSolverAgreesWithDedicated(t *testing.T) {
	srcs := map[string]string{
		"figure2": figure2SC,
		"lost update": `
int c;
func worker() {
	int t = c;
	c = t + 1;
}
func main() {
	int h1 = spawn worker();
	int h2 = spawn worker();
	join(h1);
	join(h2);
	int v = c;
	assert(v == 2, "lost update");
}
`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			_, sys := buildSystem(t, src, vm.SC, 3000)
			_, _, errCNF := cnfsolver.Solve(sys, cnfsolver.Options{})
			_, _, errSeq := solver.Solve(sys, solver.Options{MaxPreemptions: -1})
			if (errCNF == nil) != (errSeq == nil) {
				t.Fatalf("solver disagreement: cnf=%v, dedicated=%v", errCNF, errSeq)
			}
		})
	}
}

func TestCNFSolverPSO(t *testing.T) {
	src := `
int x;
int y;
func t2() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "write reorder observed");
	}
}
func main() {
	int h;
	h = spawn t2();
	x = 1;
	y = 1;
	join(h);
}
`
	_, sys := buildSystem(t, src, vm.PSO, 3000)
	sol, _, err := cnfsolver.Solve(sys, cnfsolver.Options{})
	if err != nil {
		t.Fatalf("cnf solve under PSO: %v", err)
	}
	if _, err := sys.ValidateSchedule(sol.Order); err != nil {
		t.Fatalf("solution does not validate: %v", err)
	}
	// The SC encoding of the same recording must be unsatisfiable.
	sysSC, err := constraints.Build(sys.An, vm.SC)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cnfsolver.Solve(sysSC, cnfsolver.Options{}); err == nil {
		t.Fatal("PSO-only bug must be UNSAT under the SC encoding")
	} else if _, ok := err.(*cnfsolver.Unsat); !ok {
		t.Fatalf("expected Unsat, got %v", err)
	}
}

func TestCNFSolverSizeLimit(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	_, _, err := cnfsolver.Solve(sys, cnfsolver.Options{MaxSAPs: 2})
	if err == nil {
		t.Fatal("size limit must refuse large systems")
	}
	var big *cnfsolver.TooLarge
	if !errors.As(err, &big) {
		t.Fatalf("expected TooLarge, got %T: %v", err, err)
	}
	if big.Eager {
		t.Fatalf("caller-set MaxSAPs must not be attributed to the eager encoding: %v", err)
	}
	if big.Limit != 2 || big.SAPs != len(sys.SAPs) {
		t.Fatalf("TooLarge fields = %+v, want Limit=2, SAPs=%d", big, len(sys.SAPs))
	}
}

func dummySAPs(n int) []*symexec.SAP {
	saps := make([]*symexec.SAP, n)
	for i := range saps {
		saps[i] = &symexec.SAP{}
	}
	return saps
}

// TestTooLargeAttributesLimitCause pins the size-refusal diagnostics on
// the default limits: a system in the (400, 2000] band encodes fine
// lazily but is refused under EagerTransitivity, and the eager refusal
// must name the encoding choice — not the system size — as the cause.
// The limit check precedes encoding, so a synthetic SAP slice suffices.
func TestTooLargeAttributesLimitCause(t *testing.T) {
	mid := &constraints.System{SAPs: dummySAPs(500)}
	if _, err := cnfsolver.NewSession(mid, cnfsolver.Options{EagerTransitivity: true}); err == nil {
		t.Fatal("eager limit must refuse 500 SAPs")
	} else {
		var big *cnfsolver.TooLarge
		if !errors.As(err, &big) {
			t.Fatalf("expected TooLarge, got %T: %v", err, err)
		}
		if !big.Eager || big.Limit != 400 {
			t.Fatalf("eager refusal misattributed: %+v", big)
		}
		msg := err.Error()
		for _, want := range []string{"eager-encoding limit 400", "lazy default accepts up to 2000"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("eager TooLarge message %q missing %q", msg, want)
			}
		}
	}

	huge := &constraints.System{SAPs: dummySAPs(2500)}
	if _, err := cnfsolver.NewSession(huge, cnfsolver.Options{}); err == nil {
		t.Fatal("lazy limit must refuse 2500 SAPs")
	} else {
		var big *cnfsolver.TooLarge
		if !errors.As(err, &big) {
			t.Fatalf("expected TooLarge, got %T: %v", err, err)
		}
		if big.Eager || big.Limit != 2000 {
			t.Fatalf("lazy refusal misattributed: %+v", big)
		}
		if strings.Contains(err.Error(), "eager") {
			t.Fatalf("lazy TooLarge message must not mention eager: %q", err.Error())
		}
	}
}
