package cnfsolver_test

import (
	"errors"
	"testing"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// conflictingPair returns two memory SAPs on the same variable from
// different threads, at least one a write — the shape the races
// enumerator feeds AssumeAdjacent.
func conflictingPair(t *testing.T, sys *constraints.System) (constraints.SAPRef, constraints.SAPRef) {
	t.Helper()
	for i := range sys.SAPs {
		x := sys.SAP(constraints.SAPRef(i))
		if !x.Kind.IsMemory() {
			continue
		}
		for j := i + 1; j < len(sys.SAPs); j++ {
			y := sys.SAP(constraints.SAPRef(j))
			if !y.Kind.IsMemory() || x.Var != y.Var || x.Thread == y.Thread {
				continue
			}
			if x.Kind != symexec.SAPWrite && y.Kind != symexec.SAPWrite {
				continue
			}
			return constraints.SAPRef(i), constraints.SAPRef(j)
		}
	}
	t.Fatal("no conflicting cross-thread pair in system")
	return 0, 0
}

// solveMaybe runs Solve and classifies the outcome: a validated solution,
// an Unsat verdict, or a fatal test failure for anything else. Both
// normal outcomes are legal mid-interleave — what the session must never
// do is wedge.
func solveMaybe(t *testing.T, sys *constraints.System, sess *cnfsolver.Session) (sat bool) {
	t.Helper()
	sol, _, err := sess.Solve()
	if err != nil {
		var us *cnfsolver.Unsat
		if errors.As(err, &us) {
			return false
		}
		t.Fatalf("solve: %v", err)
	}
	if _, err := sys.ValidateSchedule(sol.Order); err != nil {
		t.Fatalf("solution does not validate: %v", err)
	}
	return true
}

// TestSessionAdjacencyInterleave drives one session through the races
// enumerator's real protocol with mapping blocks mixed in: Solve,
// BlockMapping, AssumeAdjacent, Solve, RetractBlocks, … — asserting that
// RetractBlocks always restores full satisfiability no matter which
// guard kinds are outstanding, and that a schedule produced under an
// adjacency assumption really keeps every sync operation on one side of
// the pair.
func TestSessionAdjacencyInterleave(t *testing.T) {
	_, sys := buildSystem(t, figure2SC, vm.SC, 3000)
	sess, err := cnfsolver.NewSession(sys, cnfsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !solveMaybe(t, sys, sess) {
		t.Fatal("system must be satisfiable at the start")
	}
	a, b := conflictingPair(t, sys)

	// Mixed guards outstanding: a mapping block plus an adjacency group.
	sess.BlockMapping()
	sess.AssumeAdjacent(a, b)
	if solveMaybe(t, sys, sess) {
		sol, _, err := sess.Solve()
		if err != nil {
			t.Fatalf("re-solve under adjacency: %v", err)
		}
		pa, pb := -1, -1
		for i, r := range sol.Order {
			if r == a {
				pa = i
			}
			if r == b {
				pb = i
			}
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		for k := pa + 1; k < pb; k++ {
			if sys.SAP(sol.Order[k]).Kind.IsSync() {
				t.Fatalf("sync SAP %s between the assumed-adjacent pair", sys.SAP(sol.Order[k]))
			}
		}
	}

	// Retraction must clear both guard kinds at once.
	sess.RetractBlocks()
	if !solveMaybe(t, sys, sess) {
		t.Fatal("RetractBlocks did not restore satisfiability")
	}

	// Exhaust every mapping, then interleave again on the drained session.
	for rounds := 0; ; rounds++ {
		if rounds > 256 {
			t.Fatal("runaway enumeration")
		}
		if !solveMaybe(t, sys, sess) {
			break
		}
		sess.BlockMapping()
	}
	sess.RetractBlocks()
	sess.AssumeAdjacent(a, b)
	solveMaybe(t, sys, sess) // either verdict; must not error
	sess.RetractBlocks()
	if !solveMaybe(t, sys, sess) {
		t.Fatal("session wedged after exhaustion + adjacency interleave")
	}
}

// symbolicAddrSC indexes a shared array by a value read from a shared
// variable: the read's value is a fresh symbolic variable, so the write's
// address is unresolved and the session's address-split refinement must
// close the aliasing question lazily, model by model.
const symbolicAddrSC = `
int a[4];
int idx;
func t1() {
	idx = 1;
	a[2] = 5;
}
func main() {
	int h = spawn t1();
	int i = idx;
	a[i] = 7;
	join(h);
	int v = a[0];
	assert(v == 0, "racy index hit slot 0");
}
`

// TestSessionSymbolicAddrLazy pins the guard machinery on a
// symbolic-address system: address-split refinement lets such systems use
// the lazy encoding (the eager fallback is retired), and the same
// BlockMapping / AssumeAdjacent / RetractBlocks interleave keeps working
// — retraction semantics must be identical to the concrete-address path.
func TestSessionSymbolicAddrLazy(t *testing.T) {
	prog, err := core.Compile(symbolicAddrSC)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.Record(prog, core.RecordOptions{Model: vm.SC, Inputs: []int64{0}, SeedLimit: 3000})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cnfsolver.NewSession(sys, cnfsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Lazy() {
		t.Fatal("symbolic-address system must default to the lazy encoding")
	}
	if !solveMaybe(t, sys, sess) {
		t.Fatal("system must be satisfiable")
	}
	a, b := conflictingPair(t, sys)
	sess.BlockMapping()
	sess.AssumeAdjacent(a, b)
	solveMaybe(t, sys, sess) // either verdict; must not error
	sess.RetractBlocks()
	if !solveMaybe(t, sys, sess) {
		t.Fatal("RetractBlocks did not restore satisfiability on the eager path")
	}
}
