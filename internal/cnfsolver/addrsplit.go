package cnfsolver

import (
	"fmt"
	"sort"

	"repro/internal/constraints"
	"repro/internal/sat"
	"repro/internal/symbolic"
	"repro/internal/symexec"
)

// This file is the address-split refinement theory: the piece that makes
// the lazy encoding complete under symbolic addresses (CLAP §5).
//
// The encoder's Frw structure only hard-codes interval constraints for
// definitely-same-address pairs; when an address is symbolic the encoding
// deliberately leaves the aliasing question open. Address-split closes
// the gap after the fact: given a model that already passed the
// transitivity theory, evaluate every symbolic address under the model's
// mapping-implied value assignment. That partitions the memory SAPs into
// concrete alias classes for THIS model, and within each class the usual
// read-from discipline must hold — the chosen write stores to the read's
// cell, no aliasing rival lands between them, and an init-mapped read
// precedes every aliasing write. A violation becomes a lemma over (a) the
// choice literals the address valuation consulted, transitively closed
// over value support — the premise — and (b) the violating choice or the
// order literals that move the rival out of the interval. The premise is
// what makes the split sound: under any other address valuation the
// lemma's premise is false and the clause is inert.
//
// Completeness: a lemma is only ever false in assignments whose induced
// schedule would fail validation (the checks mirror ValidateSchedule's
// memory simulation exactly — see the invariant below), so no feasible
// schedule is excluded. Termination: each round's lemmas are violated by
// the current model, so the SAT solver must change a premise choice, the
// violating choice, or satisfy a fresh order literal, which the next
// transitivity round turns into an oriented edge; the same lemma can
// never be re-derived.
//
// The invariant bought by a clean pass (zero lemmas): replaying the
// extracted order, every read returns exactly the value modelEnv computed
// from the mapping. Induction over schedule positions — a SAP's address
// and value dependencies are same-thread program-order-earlier READS, and
// read→read / read→write program edges are hard under every supported
// memory model (only writes are buffered), so dependencies precede their
// SAP in every extracted order. At each read the checks force the chosen
// write (or init) to be the cell's last writer. This is the exact
// invariant concrete-address systems get from definitelySame constraints,
// which is why the mapping-level blocking in block() and BlockMapping
// stays sound with symbolic addresses.

// modelEnv resolves the value assignment implied by the current SAT
// model's read→write mapping: a read's value is its chosen candidate's
// value expression evaluated recursively, or the variable's initial value
// for choice 0. Results are memoized per refinement round.
type modelEnv struct {
	e    *encoder
	vals map[symbolic.SymID]int64
	// err records the first resolution failure (free read, unset choice),
	// for diagnostics; evaluation surfaces it as an unbound symbol.
	err error
}

// Value implements symbolic.Env.
func (m *modelEnv) Value(id symbolic.SymID) (int64, bool) {
	v, err := m.resolve(id, 0)
	if err != nil {
		if m.err == nil {
			m.err = err
		}
		return 0, false
	}
	return v, true
}

func (m *modelEnv) resolve(id symbolic.SymID, depth int) (int64, error) {
	if v, ok := m.vals[id]; ok {
		return v, nil
	}
	if depth > len(m.e.sys.Reads)+1 {
		return 0, fmt.Errorf("cnfsolver: cyclic value dependency through symbol %d", id)
	}
	ri, ok := m.e.readIdx[id]
	if !ok {
		return 0, fmt.Errorf("cnfsolver: symbol %d is not a read", id)
	}
	info := &m.e.sys.Reads[ri]
	if info.Free {
		return 0, fmt.Errorf("cnfsolver: free read %d in value support", ri)
	}
	k := m.e.currentChoice(ri)
	if k < 0 {
		return 0, fmt.Errorf("cnfsolver: read %d has no choice in the model", ri)
	}
	var val int64
	if k == 0 {
		val = info.Init
	} else {
		w := m.e.sys.SAP(info.Cands[k-1])
		// Pre-resolve the write's dependencies so the EvalInt below only
		// sees memoized symbols (Value cannot thread the recursion depth).
		for _, dep := range symbolic.Syms(w.Val, nil, nil) {
			if _, err := m.resolve(dep, depth+1); err != nil {
				return 0, err
			}
		}
		v, err := symbolic.EvalInt(w.Val, m)
		if err != nil {
			return 0, err
		}
		val = v
	}
	m.vals[id] = val
	return val, nil
}

// addrInfo is one memory SAP's address resolved under the current model:
// the concrete cell it touches and, for symbolic addresses, the symbols
// the valuation consulted (the premise of any lemma about this address).
type addrInfo struct {
	addr int
	ok   bool
	used []symbolic.SymID
}

// refineAddrSplit checks the model's read-from choices against the alias
// classes induced by its address valuation and adds one lemma per
// violation found. It returns the number of lemmas added and whether some
// violation (or unresolvable address) had to be skipped because no sound
// choice-level premise exists; the caller falls back to blockModel when
// nothing targeted was learned. A (0, false) return certifies the model
// address-consistent: validation and mapping-level blocking may proceed
// exactly as in the concrete-address case.
func (e *encoder) refineAddrSplit(order []constraints.SAPRef) (lemmas int, coarse bool) {
	env := &modelEnv{e: e, vals: make(map[symbolic.SymID]int64)}
	if cap(e.addrBuf) < e.n {
		e.addrBuf = make([]addrInfo, e.n)
	}
	addrs := e.addrBuf[:e.n]
	for i := range addrs {
		addrs[i] = addrInfo{}
	}
	for i := 0; i < e.n; i++ {
		sap := e.sys.SAP(constraints.SAPRef(i))
		if !sap.Kind.IsMemory() {
			continue
		}
		if sap.Addr != symexec.NoAddr {
			addrs[i] = addrInfo{addr: sap.Addr, ok: true}
			continue
		}
		rec := &symbolic.RecordingEnv{Base: env}
		idx, err := symbolic.EvalInt(sap.AddrIndex, rec)
		used := make([]symbolic.SymID, 0, len(rec.Used))
		for id := range rec.Used {
			used = append(used, id)
		}
		// Sorted premise symbols keep lemma literal order — and thus the
		// whole CNF evolution — deterministic run to run.
		sort.Slice(used, func(a, b int) bool { return used[a] < used[b] })
		if err != nil {
			coarse = true
			continue
		}
		a, ok := e.sys.Layout.Addr(e.sys.An.Prog, sap.Var, idx)
		if !ok {
			// The valuation drives the index out of bounds. Validation
			// rejects any schedule realizing these choices, so forbid the
			// consulted support outright.
			if lits, sOK := e.suppLits(used, map[int]bool{}, nil); sOK {
				e.add(lits...)
				lemmas++
			} else {
				coarse = true
			}
			continue
		}
		addrs[i] = addrInfo{addr: a, ok: true, used: used}
	}

	if cap(e.posBuf) < e.n {
		e.posBuf = make([]int, e.n)
	}
	pos := e.posBuf[:e.n]
	for p, ref := range order {
		pos[ref] = p
	}
	// premise builds a lemma: the negated transitive support of the given
	// address valuations, plus the given consequence literals.
	premise := func(ids []symbolic.SymID, extra ...sat.Lit) bool {
		lits, ok := e.suppLits(ids, map[int]bool{}, nil)
		if !ok {
			return false
		}
		e.add(append(lits, extra...)...)
		return true
	}
	for ri := range e.sys.Reads {
		info := &e.sys.Reads[ri]
		if info.Free {
			continue
		}
		k := e.currentChoice(ri)
		if k < 0 {
			coarse = true
			continue
		}
		r := int(info.Read)
		ra := addrs[r]
		if !ra.ok {
			continue // unresolved: handled by its own lemma (or coarse) above
		}
		w := -1
		if k > 0 {
			w = int(info.Cands[k-1])
			wa := addrs[w]
			if !wa.ok {
				continue
			}
			if ra.addr != wa.addr {
				// Alias mismatch: under this valuation the chosen write
				// stores to a different cell than the read loads from.
				ids := append(append([]symbolic.SymID{}, ra.used...), wa.used...)
				if premise(ids, e.choiceLit[ri][k].Not()) {
					lemmas++
				} else {
					coarse = true
				}
				continue
			}
		}
		for _, w2ref := range info.AllRivals() {
			w2 := int(w2ref)
			if k > 0 && w2 == w {
				continue
			}
			if e.definitelySame(info.Read, w2ref) {
				continue // the base encoding already pins these intervals
			}
			w2a := addrs[w2]
			if !w2a.ok || w2a.addr != ra.addr {
				continue
			}
			ids := append(append([]symbolic.SymID{}, ra.used...), w2a.used...)
			if k == 0 {
				// Init violation: an aliasing write precedes the read that
				// claims to observe the initial value.
				if pos[w2] < pos[r] {
					if premise(ids, e.choiceLit[ri][0].Not(), e.lit(r, w2)) {
						lemmas++
					} else {
						coarse = true
					}
				}
			} else if pos[w] < pos[w2] && pos[w2] < pos[r] {
				// Interval violation: an aliasing rival landed between the
				// chosen write and the read.
				if premise(ids, e.choiceLit[ri][k].Not(), e.lit(w2, w), e.lit(r, w2)) {
					lemmas++
				} else {
					coarse = true
				}
			}
		}
	}
	return lemmas, coarse
}
