// Package cnfsolver is the SMT-style backend for CLAP's constraint
// systems: it encodes the order and mapping structure into CNF, runs the
// CDCL engine (internal/sat), and discharges the value-level constraints
// (Fpath, Fbug, symbolic addresses) by concrete evaluation in a lazy
// DPLL(T) loop with blocking clauses.
//
// The encoding is the paper's "one order variable per SAP" model made
// boolean: a variable x_{a<b} per unordered SAP pair. The paper's
// constraint counts grow as N³ in the number of shared accesses (§4.1)
// because of the cubic transitivity closure; by default this encoder
// instead leaves transitivity to a lazy theory: only the pairs mentioned
// by actual constraints get variables, and after each SAT model the
// induced relation is checked for cycles with the Pearce–Kelly order
// graph (internal/solver). Each cycle found becomes one refinement lemma
// — the disjunction of the negated edge literals along it — and when the
// relation is acyclic its topological ranks are the witness total order.
//
// Symbolic addresses (CLAP §5: array accesses whose index is itself a
// read value) are a second lazy theory, address-split refinement: each
// model's symbolic addresses are evaluated under the mapping-implied
// value assignment, the memory SAPs partition into concrete alias
// classes, and read-from consistency is checked only within classes that
// actually alias. A violation becomes a lemma restricted to the aliasing
// subset plus the address valuation that produced it — the choice
// literals whose values the address evaluation consulted — so the solver
// can re-aim addresses without re-deriving orders (see refineAddrSplit
// for the completeness argument). Options.EagerTransitivity restores the
// faithful all-triples encoding; it is no longer forced by symbolic
// addresses.
package cnfsolver

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/constraints"
	"repro/internal/ir"
	"repro/internal/sat"
	"repro/internal/solver"
	"repro/internal/symbolic"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// Options tunes the CNF backend.
type Options struct {
	// MaxSAPs refuses systems too large to encode. The default depends on
	// the encoding in effect: 400 SAPs for the cubic eager encoding
	// (≈ 10M transitivity clauses) and 2000 for the lazy one, whose n×n
	// pair arena is the only quadratic cost.
	MaxSAPs int
	// MaxTheoryRounds bounds the lazy-refinement loop over value theory
	// rejections (default 200).
	MaxTheoryRounds int
	// MaxLazyRounds bounds the inner transitivity-refinement loop per
	// Solve call (default 5000). Each round adds at least one cycle lemma,
	// so the loop converges; the bound guards pathological instances.
	MaxLazyRounds int
	// MaxAddrRounds bounds the address-split refinement loop per Solve
	// call (default 5000). Like the transitivity rounds these have their
	// own budget: they re-aim symbolic addresses rather than reject a
	// mapping, so they do not consume MaxTheoryRounds.
	MaxAddrRounds int
	// EagerTransitivity restores the all-triples O(n³) transitivity
	// encoding (the paper's faithful reference shape). Address-split
	// refinement runs in both encodings, so symbolic-address systems
	// accept the same schedules either way; eager only changes how
	// transitivity is enforced (and lowers the size limit).
	EagerTransitivity bool
	// Ctx cancels the solve (nil = never); polled each theory round and,
	// via the SAT engine's stop hook, inside each SAT call.
	Ctx context.Context
	// Deadline bounds each Solve call's wall time (0 = none). Composes
	// with Ctx.
	Deadline time.Duration
	// Progress, when set, receives periodic snapshots of the live solving
	// statistics (sampled from the SAT engine's stop-hook stride), for
	// progress heartbeats. Called from the solving goroutine; it must be
	// fast and must not call back into the solver.
	Progress func(Stats)
}

func (o *Options) fill() {
	if o.MaxTheoryRounds == 0 {
		o.MaxTheoryRounds = 200
	}
	if o.MaxLazyRounds == 0 {
		o.MaxLazyRounds = 5000
	}
	if o.MaxAddrRounds == 0 {
		o.MaxAddrRounds = 5000
	}
}

// Stats reports encoding size and solving effort.
type Stats struct {
	BoolVars     int
	Clauses      int64
	TheoryRounds int
	// LazyRounds counts transitivity-refinement iterations (SAT models
	// rejected for cyclic order relations); LazyLemmas counts the cycle
	// lemmas those rounds added. Both stay zero under EagerTransitivity.
	LazyRounds int64
	LazyLemmas int64
	// AddrRounds counts address-split refinement iterations (SAT models
	// rejected for symbolic-address inconsistency); AddrLemmas counts the
	// lemmas those rounds added. Both stay zero when every address is
	// concrete.
	AddrRounds int64
	AddrLemmas int64
	// MappingBlocks counts mapping-refinement blocking clauses: theory
	// rejections of a read→write mapping (support clauses or projection
	// blocks) plus the retractable BlockMapping class blocks — the third
	// refinement kind next to cycle and address-split lemmas.
	MappingBlocks int64
	// Solves counts DPLL(T) entries on the session (Solve/SolveBounded
	// calls); SessionReuse is the entries beyond the first, i.e. how often
	// the encoded system was re-entered instead of rebuilt.
	Solves int64
	// SATConflicts / SATDecisions / SATPropagations / SATRestarts /
	// SATLearned mirror the CDCL engine's own effort counters, for the
	// consolidated metrics registry. SATSolves counts individual engine
	// Solve calls (one per theory round).
	SATConflicts    int64
	SATDecisions    int64
	SATPropagations int64
	SATRestarts     int64
	SATLearned      int64
	SATSolves       int64
}

// SessionReuse reports how many DPLL(T) entries re-entered a live session
// rather than paying a fresh encode.
func (st *Stats) SessionReuse() int64 {
	if st.Solves <= 1 {
		return 0
	}
	return st.Solves - 1
}

// sample copies the CDCL engine's live counters into the stats.
func (st *Stats) sample(s *sat.Solver) {
	st.SATConflicts = s.Conflicts
	st.SATDecisions = s.Decisions
	st.SATPropagations = s.Propagations
	st.SATRestarts = s.Restarts
	st.SATLearned = s.Learned
}

// Solve computes a bug-reproducing schedule with the CNF backend.
func Solve(sys *constraints.System, opts Options) (*solver.Solution, *Stats, error) {
	sess, err := NewSession(sys, opts)
	if err != nil {
		return nil, nil, err
	}
	return sess.Solve()
}

// Session is a re-entrant CNF solving session: the system is encoded
// once, and Solve may be called repeatedly — after adding retractable
// blocking clauses with BlockMapping, or simply to re-enter with a fresh
// deadline — without re-encoding. Learnt clauses, theory lemmas and
// variable activity all persist across calls, which is what makes
// re-entry cheaper than a fresh solver each attempt.
type Session struct {
	opts Options
	e    *encoder
	st   Stats
	// groups are the retractable clause groups holding the blocking
	// clauses added by BlockMapping, AssumeAdjacent and the bounded
	// sweep's over-budget blocks; RetractBlocks retires them all.
	groups []sat.Group
	// boundGroup guards the over-budget schedule blocks added by
	// SolveBounded (nil until the first such block). It is one of groups;
	// kept separately so successive bounded rounds share a guard.
	boundGroup *sat.Group
}

// Encoding size limits: the eager all-triples encoding emits ≈ n³/3
// transitivity clauses (≈ 10M at 400 SAPs); the lazy encoding's only
// quadratic cost is the n×n pair arena.
const (
	eagerMaxSAPs = 400
	lazyMaxSAPs  = 2000
)

// TooLarge reports a system the session refuses to encode: its SAP count
// exceeds the limit for the encoding in effect. Eager marks the case
// where Options.EagerTransitivity selected the cubic encoding, whose much
// lower default limit is the operative one — for systems in the
// (eagerMaxSAPs, lazyMaxSAPs] band the encoding choice, not the system
// size, is the root cause, and the message says so.
type TooLarge struct {
	SAPs  int
	Limit int
	Eager bool
}

// Error implements error.
func (e *TooLarge) Error() string {
	if e.Eager {
		return fmt.Sprintf("cnfsolver: %d SAPs exceeds the eager-encoding limit %d (EagerTransitivity selects the cubic encoding; the lazy default accepts up to %d)",
			e.SAPs, e.Limit, lazyMaxSAPs)
	}
	return fmt.Sprintf("cnfsolver: %d SAPs exceeds the encoding limit %d", e.SAPs, e.Limit)
}

// NewSession encodes the system. The returned session is single-goroutine.
func NewSession(sys *constraints.System, opts Options) (*Session, error) {
	opts.fill()
	n := len(sys.SAPs)
	e := &encoder{sys: sys, n: n, s: sat.New(0)}
	for _, sap := range sys.SAPs {
		if sap.Kind.IsMemory() && sap.Addr == symexec.NoAddr {
			e.symbolicAddrs = true
		}
	}
	e.eager = opts.EagerTransitivity
	limit := opts.MaxSAPs
	eagerLimited := false
	if limit == 0 {
		if e.eager {
			limit = eagerMaxSAPs
			eagerLimited = true
		} else {
			limit = lazyMaxSAPs
		}
	}
	if n > limit {
		return nil, &TooLarge{SAPs: n, Limit: limit, Eager: eagerLimited}
	}
	e.encode()
	sess := &Session{opts: opts, e: e}
	sess.refresh()
	return sess, nil
}

// Lazy reports whether the session uses the lazy-transitivity encoding.
func (sess *Session) Lazy() bool { return !sess.e.eager }

// SetOptions replaces the session's solving options — the budget fields
// (Ctx, Deadline), the round limits and Progress. Encoding-time fields
// (MaxSAPs, EagerTransitivity) were fixed at NewSession and are ignored
// here. Callers re-entering one session under successively smaller wall
// budgets (the rescue bound sweep) use this between Solve calls.
func (sess *Session) SetOptions(opts Options) {
	opts.fill()
	sess.opts = opts
}

// Stats returns a snapshot of the session's cumulative statistics.
func (sess *Session) Stats() Stats {
	sess.refresh()
	return sess.st
}

func (sess *Session) refresh() {
	sess.st.BoolVars = sess.e.s.NumVars()
	sess.st.Clauses = sess.e.clauses
	sess.st.sample(sess.e.s)
}

// Solve runs the DPLL(T) loop until a validated schedule emerges. The
// returned stats pointer aliases the session's cumulative statistics.
func (sess *Session) Solve() (*solver.Solution, *Stats, error) {
	return sess.solve(-1)
}

// SolveBounded runs the same DPLL(T) loop but only accepts schedules with
// at most bound preemptions. Models are linearized with the thread-greedy
// extraction (stay on the running thread while it has a ready SAP)
// instead of the plain topological ranks, and a valid-but-over-budget
// schedule is blocked under a retractable group, so a later sweep with a
// higher bound on the same session re-admits it after RetractBlocks. An
// Unsat from SolveBounded is inconclusive for the system as a whole: the
// greedy extraction is an approximation, so exhaustion means "no schedule
// found within the bound", not a proof of absence.
func (sess *Session) SolveBounded(bound int) (*solver.Solution, *Stats, error) {
	return sess.solve(bound)
}

// assumeLits collects the activation literals of the live clause groups.
func (sess *Session) assumeLits() []sat.Lit {
	lits := make([]sat.Lit, len(sess.groups))
	for i, g := range sess.groups {
		lits[i] = g.Assume()
	}
	return lits
}

func (sess *Session) solve(bound int) (*solver.Solution, *Stats, error) {
	opts := sess.opts
	e := sess.e
	st := &sess.st
	st.Solves++
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = time.Now().Add(opts.Deadline)
	}
	interrupted := func() bool {
		if opts.Ctx != nil {
			select {
			case <-opts.Ctx.Done():
				return true
			default:
			}
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}
	// The stop hook keeps a single CDCL call from outliving the budget; a
	// stopped call returns Unknown, which surfaces below as *Interrupted.
	// It is also the live-progress sampling point: the engine polls it on
	// a conflict/decision stride, so publishing from it gives heartbeats
	// a view inside long SAT calls.
	var polls int64
	e.s.Stop = func() bool {
		if opts.Progress != nil {
			if polls++; polls%16 == 0 {
				sess.refresh()
				opts.Progress(*st)
			}
		}
		return interrupted()
	}

	base := st.TheoryRounds
	lazyThisCall := 0
	addrThisCall := 0
	for round := 0; round < opts.MaxTheoryRounds; {
		st.TheoryRounds = base + round + 1
		if opts.Progress != nil {
			sess.refresh()
			opts.Progress(*st)
		}
		if interrupted() {
			sess.refresh()
			return nil, st, &solver.Interrupted{Reason: "cnf theory loop cut short", Bound: -1}
		}
		st.SATSolves++
		switch e.s.Solve(sess.assumeLits()...) {
		case sat.Sat:
		case sat.Unknown:
			sess.refresh()
			return nil, st, &solver.Interrupted{Reason: "sat search cut short", Bound: -1}
		default:
			sess.refresh()
			return nil, st, e.unsat(round + 1)
		}
		if !e.eager {
			// Transitivity theory first: reject models whose order relation
			// is cyclic, learning one lemma per cycle found. These rounds
			// are cheap (incremental SAT + Pearce–Kelly) and do not consume
			// the value-theory round budget.
			if added := e.refineAcyclic(); added > 0 {
				st.LazyRounds++
				st.LazyLemmas += int64(added)
				if lazyThisCall++; lazyThisCall > opts.MaxLazyRounds {
					sess.refresh()
					return nil, st, fmt.Errorf("cnfsolver: transitivity refinement did not converge in %d rounds", opts.MaxLazyRounds)
				}
				continue
			}
		}
		var order []constraints.SAPRef
		if bound >= 0 {
			order = e.extractOrderMinSwitch()
		} else {
			order = e.extractOrder()
		}
		if e.symbolicAddrs {
			// Address-split theory: evaluate every symbolic address under
			// the mapping-implied values and reject models whose read-from
			// choices contradict the resulting concrete alias classes. Like
			// the transitivity rounds, these repair the model rather than
			// reject a mapping, so they have their own budget.
			added, coarse := e.refineAddrSplit(order)
			if added == 0 && coarse {
				// No targeted lemma possible (a support escaped the choice
				// structure — not expected for preprocessed systems): fall
				// back to blocking the exact model projection, which keeps
				// the loop progressing at the cost of possibly excluding
				// untested linear extensions.
				e.blockModel()
				added = 1
			}
			if added > 0 {
				st.AddrRounds++
				st.AddrLemmas += int64(added)
				if addrThisCall++; addrThisCall > opts.MaxAddrRounds {
					sess.refresh()
					return nil, st, fmt.Errorf("cnfsolver: address-split refinement did not converge in %d rounds", opts.MaxAddrRounds)
				}
				continue
			}
		}
		round++
		st.TheoryRounds = base + round
		w, err := e.sys.ValidateSchedule(order)
		if err == nil {
			if bound >= 0 && w.Preemptions > bound {
				// Valid but over the preemption budget: block this pair
				// projection under the retractable bound group so a later,
				// higher-bound sweep re-admits it.
				sess.blockOverBound()
				continue
			}
			sess.refresh()
			return &solver.Solution{Order: order, Witness: w, Preemptions: w.Preemptions}, st, nil
		}
		// Theory rejection: derive the smallest sound conflict clause.
		// A violated path/bug condition depends only on the mappings in
		// its transitive support, so blocking that support kills every
		// model sharing it; otherwise fall back to the mapping projection.
		e.block(err)
		st.MappingBlocks++
	}
	sess.refresh()
	return nil, st, fmt.Errorf("cnfsolver: theory refinement did not converge in %d rounds", opts.MaxTheoryRounds)
}

// Mapping returns, for each read, the choice index selected by the last
// model (0 = initial value, k = k-th candidate write) or -1 for free
// reads. Only meaningful immediately after a successful Solve.
func (sess *Session) Mapping() []int {
	e := sess.e
	m := make([]int, len(e.sys.Reads))
	for i := range e.sys.Reads {
		m[i] = e.currentChoice(i)
	}
	return m
}

// BlockMapping adds a retractable blocking clause forbidding the last
// model's read→write mapping class, activated on subsequent Solve calls.
// It is how a caller enumerates the distinct mapping classes of a system:
// Solve, BlockMapping, Solve, … until Unsat. Sound under symbolic
// addresses too: a successful Solve only returns models that passed
// address-split refinement, where every read value — and hence every
// address — is determined by the mapping alone.
//
// The clause negates the conjunction of each read's *selected* choice
// (the one Mapping reports), not the full mapVar assignment. The choice
// structure only enforces at-least-one, so on symbolic-address systems a
// model may set extra choice variables true besides the selected ones;
// blocking the full assignment would forbid one model per call and
// re-enumerate the same class once per feasible extra-assignment. The
// projection is still exhaustive: every class keeps a canonical model
// with exactly its selected choices true (choice variables occur
// positively only in the at-least-one clause, so flipping extras false
// preserves satisfaction), and that model violates no other class's
// blocking clause. It never re-enumerates: any future model of the same
// class has all the selected choices true again.
func (sess *Session) BlockMapping() {
	e := sess.e
	sess.st.MappingBlocks++
	g := e.s.NewGroup()
	lits := make([]sat.Lit, 0, len(e.choiceLit))
	for ri := range e.sys.Reads {
		if k := e.currentChoice(ri); k >= 0 {
			lits = append(lits, e.choiceLit[ri][k].Not())
		}
	}
	g.Add(lits...)
	e.clauses++
	sess.groups = append(sess.groups, g)
}

// blockOverBound forbids the current model's pair projection under the
// shared bound group: the schedule is valid but exceeds the preemption
// budget of the running SolveBounded call. RetractBlocks retires the
// group, so a subsequent higher-bound sweep sees the schedule again.
func (sess *Session) blockOverBound() {
	e := sess.e
	if sess.boundGroup == nil {
		g := e.s.NewGroup()
		sess.boundGroup = &g
		sess.groups = append(sess.groups, g)
	}
	lits := make([]sat.Lit, 0, len(e.pairList))
	for _, idx := range e.pairList {
		v := int(e.pairVar[idx])
		lits = append(lits, sat.MkLit(v, e.s.Value(v)))
	}
	sess.boundGroup.Add(lits...)
	e.clauses++
}

// RetractBlocks permanently deactivates every blocking clause added by
// BlockMapping, making the blocked mappings reachable again — the
// cross-attempt reuse hook: a later bound sweep re-enters the same
// encoded session with a clean slate but keeps all learnt clauses.
// Adjacency groups added by AssumeAdjacent are retired the same way.
func (sess *Session) RetractBlocks() {
	for _, g := range sess.groups {
		g.Retire()
	}
	sess.groups = sess.groups[:0]
	sess.boundGroup = nil
}

// AssumeAdjacent adds the race-adjacency constraint group for memory SAPs
// a and b: subsequent Solve calls only accept schedules in which no
// synchronization operation separates the pair (either orientation). The
// encoding pins, for every sync SAP c, before(c,a) ↔ before(c,b) — every
// sync operation lands on the same side of both accesses. Other threads'
// memory accesses may still fall between them: a schedule in which only
// memory operations separate the pair leaves it happens-before-unordered,
// which is exactly the data-race criterion. Since every total order the
// session accepts covers all SAPs, the equivalence constrains both the
// lazy order graph's topological ranks and the eager permutation
// extraction.
//
// The clauses ride the same assumption-guard machinery as BlockMapping:
// they are active only while their guard is assumed, and RetractBlocks
// retires them permanently. The races enumerator's per-pair loop is
// Retract → AssumeAdjacent(next pair) → Solve on one shared session, so
// the encoding, learnt clauses and theory lemmas amortize across pairs.
func (sess *Session) AssumeAdjacent(a, b constraints.SAPRef) {
	e := sess.e
	g := e.s.NewGroup()
	for c := 0; c < e.n; c++ {
		if c == int(a) || c == int(b) || !e.sys.SAP(constraints.SAPRef(c)).Kind.IsSync() {
			continue
		}
		x, y := e.lit(c, int(a)), e.lit(c, int(b))
		g.Add(x.Not(), y)
		g.Add(x, y.Not())
		e.clauses += 2
	}
	sess.groups = append(sess.groups, g)
}

// RegionConflict identifies two lock regions of the same mutex, in
// different threads, that are both entered and never released — no
// interleaving can serialize them, so the system is unsatisfiable for a
// reason worth naming (a bare empty clause would leave `clap explain`
// with nothing to report).
type RegionConflict struct {
	Mutex   ir.SyncID
	ThreadA trace.ThreadID
	LockA   constraints.SAPRef
	ThreadB trace.ThreadID
	LockB   constraints.SAPRef
}

// GroupID returns the constraint-group name of the mutex's lock
// serialization ("fso/lock/m<id>"), matching constraints.Groups — the
// same vocabulary the MUS shrinker uses, so explain output lines up.
func (c *RegionConflict) GroupID() string { return fmt.Sprintf("fso/lock/m%d", c.Mutex) }

func (c *RegionConflict) String() string {
	return fmt.Sprintf("%s: thread %d (lock at SAP %d) and thread %d (lock at SAP %d) both hold mutex m%d at the failure and never release it",
		c.GroupID(), c.ThreadA, c.LockA, c.ThreadB, c.LockB, c.Mutex)
}

// Unsat reports an unsatisfiable system.
type Unsat struct {
	Rounds int
	// Conflict, when set, names the structural reason: two never-released
	// lock regions that cannot coexist.
	Conflict *RegionConflict
}

// Error implements error.
func (u *Unsat) Error() string {
	if u.Conflict != nil {
		return fmt.Sprintf("cnfsolver: unsatisfiable: %s", u.Conflict)
	}
	return fmt.Sprintf("cnfsolver: unsatisfiable (after %d theory rounds)", u.Rounds)
}

type encoder struct {
	sys *constraints.System
	n   int
	s   *sat.Solver
	// pairVar is a dense n×n arena: pairVar[a*n+b] (a<b) is the SAT var
	// meaning "SAP a before SAP b", or -1 when the pair has no variable
	// yet. pairList records the allocated flat indices in allocation
	// order, for model iteration. The map it replaces cost a hash per
	// lit() call in the encoder's hottest loop.
	pairVar  []int32
	pairList []int32
	mapVars  []int // read→write / init choice variables
	// choiceLit[readIdx][k] is the literal for the k-th choice of the
	// read (k=0: initial value, k=1..: candidate writes).
	choiceLit [][]sat.Lit
	clauses   int64
	// readIdx maps a read SAP's symbol to its index in sys.Reads; built
	// once in encode and shared by the support-clause construction, the
	// static value lemmas and the address-split theory.
	readIdx map[symbolic.SymID]int
	// symbolicAddrs reports whether any SAP has an unresolved address.
	// When set, each model additionally passes the address-split theory
	// (refineAddrSplit) before validation; once it does, read values are
	// functions of the mapping alone — the same invariant concrete systems
	// get for free — so mapping-level blocking stays sound.
	symbolicAddrs bool
	// eager selects the all-triples transitivity encoding
	// (Options.EagerTransitivity). Formerly also forced on by symbolic
	// addresses; the address-split theory removed that coupling.
	eager bool
	// conflicts collects never-released region pairs found during
	// encoding; the first one decorates the Unsat error.
	conflicts []RegionConflict

	// Lazy-transitivity state: the Pearce–Kelly order graph (reset each
	// refinement round) and reusable scratch.
	og       *solver.OrderGraph
	lemmaBuf []sat.Lit
	orderBuf []constraints.SAPRef
	// Address-split scratch: per-SAP resolved addresses and per-SAP
	// schedule positions, reused across refinement rounds.
	addrBuf []addrInfo
	posBuf  []int
}

// lit returns the literal for "a before b".
func (e *encoder) lit(a, b int) sat.Lit {
	if a == b {
		panic("cnfsolver: reflexive order literal")
	}
	neg := false
	if a > b {
		a, b = b, a
		neg = true
	}
	idx := a*e.n + b
	v := e.pairVar[idx]
	if v < 0 {
		v = int32(e.s.NewVar())
		e.pairVar[idx] = v
		e.pairList = append(e.pairList, int32(idx))
	}
	return sat.MkLit(int(v), neg)
}

func (e *encoder) add(lits ...sat.Lit) {
	e.clauses++
	e.s.AddClause(lits...)
}

func (e *encoder) encode() {
	e.pairVar = make([]int32, e.n*e.n)
	for i := range e.pairVar {
		e.pairVar[i] = -1
	}
	e.readIdx = make(map[symbolic.SymID]int, len(e.sys.Reads))
	for i := range e.sys.Reads {
		e.readIdx[e.sys.SAP(e.sys.Reads[i].Read).Sym.ID] = i
	}
	if e.eager {
		// Transitivity: before(a,b) ∧ before(b,c) → before(a,c), all
		// triples — the paper's faithful O(n³) reference shape.
		for a := 0; a < e.n; a++ {
			for b := 0; b < e.n; b++ {
				if b == a {
					continue
				}
				for c := b + 1; c < e.n; c++ {
					if c == a {
						continue
					}
					e.add(e.lit(a, b).Not(), e.lit(b, c).Not(), e.lit(a, c))
					e.add(e.lit(c, b).Not(), e.lit(b, a).Not(), e.lit(c, a))
				}
			}
		}
	}
	// Hard edges (Fmo, fork/join) are unit clauses.
	for _, edge := range e.sys.HardEdges {
		e.add(e.lit(int(edge[0]), int(edge[1])))
	}
	// Frw: read→write mapping choice variables. Free reads (outside the
	// cone of influence, see constraints.Preprocess) get no choice
	// structure at all: their values feed nothing the theory checks, so
	// any order is acceptable around them.
	for i := range e.sys.Reads {
		ri := &e.sys.Reads[i]
		if ri.Free {
			e.choiceLit = append(e.choiceLit, nil)
			continue
		}
		r := int(ri.Read)
		rivals := ri.AllRivals()
		choice := make([]sat.Lit, 0, len(ri.Cands)+1)
		initVar := e.s.NewVar()
		e.mapVars = append(e.mapVars, initVar)
		choice = append(choice, sat.MkLit(initVar, false))
		if ri.NoInit {
			// Preprocessing proved the initial value unobservable. The
			// variable stays (choiceLit indexing is positional) but is
			// pinned false.
			e.add(sat.MkLit(initVar, true))
		}
		// init choice: every definitely-same-address write is after r —
		// including writes pruned from Cands, which still exist in every
		// schedule.
		for _, w := range rivals {
			if e.definitelySame(ri.Read, w) {
				e.add(sat.MkLit(initVar, true), e.lit(r, int(w)))
			}
		}
		for _, w := range ri.Cands {
			mv := e.s.NewVar()
			e.mapVars = append(e.mapVars, mv)
			choice = append(choice, sat.MkLit(mv, false))
			// m → w before r.
			e.add(sat.MkLit(mv, true), e.lit(int(w), r))
			// m → every same-address rival is before w or after r.
			for _, w2 := range rivals {
				if w2 == w || !e.definitelySame(ri.Read, w2) {
					continue
				}
				e.add(sat.MkLit(mv, true), e.lit(int(w2), int(w)), e.lit(r, int(w2)))
			}
		}
		e.add(choice...) // at least one choice
		e.choiceLit = append(e.choiceLit, choice)
	}
	e.learnValueLemmas()
	// Fso locking: cross-thread regions do not overlap. Sorted mutex
	// order keeps the order-literal numbering (and thus the whole CNF)
	// identical run to run.
	for _, m := range e.sys.RegionMutexes() {
		regions := e.sys.Regions[m]
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				a, b := regions[i], regions[j]
				if a.Thread == b.Thread {
					continue
				}
				switch {
				case a.HasUnlock && b.HasUnlock:
					e.add(e.lit(int(a.Unlock), int(b.Lock)), e.lit(int(b.Unlock), int(a.Lock)))
				case a.HasUnlock:
					e.add(e.lit(int(a.Unlock), int(b.Lock)))
				case b.HasUnlock:
					e.add(e.lit(int(b.Unlock), int(a.Lock)))
				default:
					// Two never-released regions cannot both exist. Record
					// the named conflict before poisoning the formula so
					// the Unsat error (and explain) can say which regions.
					e.conflicts = append(e.conflicts, RegionConflict{
						Mutex:   m,
						ThreadA: a.Thread,
						LockA:   a.Lock,
						ThreadB: b.Thread,
						LockB:   b.Lock,
					})
					e.add()
				}
			}
		}
	}
	// Fso wait/signal: each completed wait picks a waking signal inside
	// (begin, end); plain signals wake at most one wait.
	wakeVars := map[constraints.SAPRef][]sat.Lit{}
	for _, wi := range e.sys.Waits {
		choice := make([]sat.Lit, 0, len(wi.Cands))
		for _, s := range wi.Cands {
			kv := e.s.NewVar()
			choice = append(choice, sat.MkLit(kv, false))
			e.add(sat.MkLit(kv, true), e.lit(int(wi.Begin), int(s)))
			e.add(sat.MkLit(kv, true), e.lit(int(s), int(wi.End)))
			if e.sys.SAP(s).Kind == symexec.SAPSignal {
				wakeVars[s] = append(wakeVars[s], sat.MkLit(kv, false))
			}
		}
		e.add(choice...)
	}
	for _, vars := range wakeVars {
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				e.add(vars[i].Not(), vars[j].Not())
			}
		}
	}
}

// unsat builds the Unsat error, attaching the first recorded structural
// conflict when encoding itself proved the system infeasible.
func (e *encoder) unsat(rounds int) *Unsat {
	u := &Unsat{Rounds: rounds}
	if len(e.conflicts) > 0 {
		u.Conflict = &e.conflicts[0]
	}
	return u
}

// refineAcyclic is the transitivity theory check: it orients every
// allocated pair variable per the current model into the order graph and
// adds one lemma per cycle discovered (the disjunction of the negated
// edge literals along the cycle — a clause every total order satisfies).
// It returns the number of lemmas added; zero means the relation is
// acyclic and the graph's topological ranks order the model.
func (e *encoder) refineAcyclic() int {
	if e.og == nil {
		e.og = solver.NewOrderGraph(e.n)
	}
	e.og.Reset()
	lemmas := 0
	for _, idx := range e.pairList {
		a, b := int(idx)/e.n, int(idx)%e.n
		from, to := a, b
		if !e.s.Value(int(e.pairVar[idx])) {
			from, to = b, a
		}
		if e.og.AddEdge(constraints.SAPRef(from), constraints.SAPRef(to)) {
			continue
		}
		// The rejected edge closes a cycle: to →* from exists in the
		// graph. Every edge on that path is true in the model, so negating
		// them (plus the rejected edge) rules the cycle out for good.
		path := e.og.Path(constraints.SAPRef(to), constraints.SAPRef(from))
		lits := e.lemmaBuf[:0]
		for i := 0; i+1 < len(path); i++ {
			lits = append(lits, e.lit(int(path[i]), int(path[i+1])).Not())
		}
		lits = append(lits, e.lit(from, to).Not())
		e.lemmaBuf = lits
		e.add(lits...)
		lemmas++
	}
	return lemmas
}

// learnValueLemmas statically discharges the easy value constraints: for
// every Fpath/Fbug conjunct whose symbols all come from reads whose
// candidate values are constants, enumerate the candidate combinations and
// forbid the violating ones. This is theory-lemma learning done upfront —
// without it, value-heavy systems (the mutual-exclusion algorithms, where
// flags take constant values) would need one lazy refinement round per bad
// mapping.
func (e *encoder) learnValueLemmas() {
	constVals := func(ri int) ([]int64, bool) {
		info := e.sys.Reads[ri]
		vals := []int64{info.Init}
		for _, w := range info.Cands {
			c, ok := e.sys.SAP(w).Val.(*symbolic.IntConst)
			if !ok {
				return nil, false
			}
			vals = append(vals, c.V)
		}
		return vals, true
	}
	conjs := append(append([]symbolic.Expr{}, e.sys.Path...), e.sys.Bug)
	for _, c := range conjs {
		ids := symbolic.Syms(c, nil, nil)
		if len(ids) == 0 || len(ids) > 3 {
			continue
		}
		type dim struct {
			ri   int
			id   symbolic.SymID
			vals []int64
		}
		var dims []dim
		combos := 1
		ok := true
		for _, id := range ids {
			ri, found := e.readIdx[id]
			if !found || e.sys.Reads[ri].Free {
				ok = false
				break
			}
			vals, constOK := constVals(ri)
			if !constOK {
				ok = false
				break
			}
			dims = append(dims, dim{ri: ri, id: id, vals: vals})
			combos *= len(vals)
		}
		if !ok || combos > 256 {
			continue
		}
		env := symbolic.MapEnv{}
		idx := make([]int, len(dims))
		for k := 0; k < combos; k++ {
			rem := k
			for d := range dims {
				idx[d] = rem % len(dims[d].vals)
				rem /= len(dims[d].vals)
				env[dims[d].id] = dims[d].vals[idx[d]]
			}
			holds, err := symbolic.EvalBool(c, env)
			if err == nil && !holds {
				// Forbid this combination of choices.
				lits := make([]sat.Lit, len(dims))
				for d := range dims {
					lits[d] = e.choiceLit[dims[d].ri][idx[d]].Not()
				}
				e.add(lits...)
			}
		}
	}
}

func (e *encoder) definitelySame(a, b constraints.SAPRef) bool {
	x, y := e.sys.SAP(a), e.sys.SAP(b)
	return x.Var == y.Var && x.Addr != symexec.NoAddr && y.Addr != symexec.NoAddr && x.Addr == y.Addr
}

// extractOrder reads the total order off the model. Lazy mode takes the
// topological ranks maintained by the order graph (refineAcyclic just
// inserted every model edge without finding a cycle, so the ranks
// linearize the model's partial order). Eager mode counts predecessors —
// there every pair is assigned and the counts form a permutation.
func (e *encoder) extractOrder() []constraints.SAPRef {
	if !e.eager {
		e.orderBuf = e.og.TopoOrder(e.orderBuf)
		return append([]constraints.SAPRef(nil), e.orderBuf...)
	}
	before := make([]int, e.n)
	for a := 0; a < e.n; a++ {
		for b := a + 1; b < e.n; b++ {
			v := e.pairVar[a*e.n+b]
			if e.s.Value(int(v)) {
				before[b]++
			} else {
				before[a]++
			}
		}
	}
	order := make([]constraints.SAPRef, e.n)
	idx := make([]int, e.n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return before[idx[i]] < before[idx[j]] })
	for pos, i := range idx {
		order[pos] = constraints.SAPRef(i)
	}
	return order
}

// block forbids the rejected model. Two levels, most precise first:
//
//  1. A violated value condition depends only on the mappings in its
//     transitive support — block just those reads' current choices (a
//     proper theory conflict clause). Sound under symbolic addresses too:
//     block is only reached after address-split refinement accepted the
//     model, at which point every read value is determined by the mapping
//     alone (see refineAddrSplit).
//  2. Otherwise block the full mapping projection.
func (e *encoder) block(verr error) {
	if ve, ok := verr.(*constraints.ValidationError); ok && ve.FailedExpr != nil {
		if lits := e.supportClause(ve.FailedExpr); lits != nil {
			e.add(lits...)
			return
		}
	}
	lits := make([]sat.Lit, 0, len(e.mapVars))
	for _, v := range e.mapVars {
		lits = append(lits, sat.MkLit(v, e.s.Value(v)))
	}
	e.add(lits...)
}

// blockModel forbids the exact current model projection: every mapping
// choice plus every allocated pair literal. Coarse last resort for the
// never-expected case where address-split refinement cannot form a
// targeted lemma; under the lazy encoding it may also exclude untested
// linear extensions (the pre-address-split incompleteness), which is why
// it exists only as a fallback.
func (e *encoder) blockModel() {
	lits := make([]sat.Lit, 0, len(e.mapVars)+len(e.pairList))
	for _, v := range e.mapVars {
		lits = append(lits, sat.MkLit(v, e.s.Value(v)))
	}
	for _, idx := range e.pairList {
		v := int(e.pairVar[idx])
		lits = append(lits, sat.MkLit(v, e.s.Value(v)))
	}
	e.add(lits...)
}

// currentChoice returns the selected choice index of read ri in the SAT
// model, or -1 if the read is free or no choice is set.
func (e *encoder) currentChoice(ri int) int {
	for k, lit := range e.choiceLit[ri] {
		if e.s.Value(lit.Var()) != lit.Neg() {
			return k
		}
	}
	return -1
}

// supportClause negates the current choices of every read in the
// expression's transitive value support, or nil when the support escapes
// the choice structure (a free read or an unset choice).
func (e *encoder) supportClause(expr symbolic.Expr) []sat.Lit {
	lits, ok := e.suppLits(symbolic.Syms(expr, nil, nil), map[int]bool{}, nil)
	if !ok {
		return nil
	}
	return lits
}

// suppLits appends the negated current choice of every read in the
// transitive value support of ids (each read's chosen write contributes
// its value expression's symbols in turn). ok=false when some symbol is
// not a constrained read or has no choice in the model — then no sound
// premise over choices exists.
func (e *encoder) suppLits(ids []symbolic.SymID, seen map[int]bool, lits []sat.Lit) ([]sat.Lit, bool) {
	for _, id := range ids {
		ri, ok := e.readIdx[id]
		if !ok || e.choiceLit[ri] == nil {
			return lits, false
		}
		if seen[ri] {
			continue
		}
		seen[ri] = true
		k := e.currentChoice(ri)
		if k < 0 {
			return lits, false
		}
		lits = append(lits, e.choiceLit[ri][k].Not())
		if k > 0 {
			// The mapped write's value has its own dependencies.
			var deep bool
			lits, deep = e.suppLits(symbolic.Syms(e.sys.SAP(e.sys.Reads[ri].Cands[k-1]).Val, nil, nil), seen, lits)
			if !deep {
				return lits, false
			}
		}
	}
	return lits, true
}
