// Package cnfsolver is the SMT-style backend for CLAP's constraint
// systems: it encodes the order and mapping structure into CNF, runs the
// CDCL engine (internal/sat), and discharges the value-level constraints
// (Fpath, Fbug, symbolic addresses) by concrete evaluation in a lazy
// DPLL(T) loop with blocking clauses.
//
// The encoding is the paper's "one order variable per SAP" model made
// boolean: a variable x_{a<b} per unordered SAP pair plus the cubic
// transitivity axioms — which is exactly why the paper's constraint counts
// grow as N³ in the number of shared accesses (§4.1). It is therefore the
// faithful-but-heavyweight reference solver: quadratic variables, cubic
// clauses, used on small and medium systems and as an independent
// cross-check of the dedicated decision procedure in internal/solver.
package cnfsolver

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/constraints"
	"repro/internal/sat"
	"repro/internal/solver"
	"repro/internal/symbolic"
	"repro/internal/symexec"
)

// Options tunes the CNF backend.
type Options struct {
	// MaxSAPs refuses systems whose cubic encoding would be too large
	// (default 400 SAPs ≈ 10M transitivity clauses).
	MaxSAPs int
	// MaxTheoryRounds bounds the lazy-refinement loop (default 200).
	MaxTheoryRounds int
	// Ctx cancels the solve (nil = never); polled each theory round and,
	// via the SAT engine's stop hook, inside each SAT call.
	Ctx context.Context
	// Deadline bounds the solve's wall time (0 = none). Composes with Ctx.
	Deadline time.Duration
	// Progress, when set, receives periodic snapshots of the live solving
	// statistics (sampled from the SAT engine's stop-hook stride), for
	// progress heartbeats. Called from the solving goroutine; it must be
	// fast and must not call back into the solver.
	Progress func(Stats)
}

func (o *Options) fill() {
	if o.MaxSAPs == 0 {
		o.MaxSAPs = 400
	}
	if o.MaxTheoryRounds == 0 {
		o.MaxTheoryRounds = 200
	}
}

// Stats reports encoding size and solving effort.
type Stats struct {
	BoolVars     int
	Clauses      int64
	TheoryRounds int
	SATConflicts int64
	// SATDecisions / SATPropagations mirror the CDCL engine's own effort
	// counters, for the consolidated metrics registry.
	SATDecisions    int64
	SATPropagations int64
}

// sample copies the CDCL engine's live counters into the stats.
func (st *Stats) sample(s *sat.Solver) {
	st.SATConflicts = s.Conflicts
	st.SATDecisions = s.Decisions
	st.SATPropagations = s.Propagations
}

// Solve computes a bug-reproducing schedule with the CNF backend.
func Solve(sys *constraints.System, opts Options) (*solver.Solution, *Stats, error) {
	opts.fill()
	n := len(sys.SAPs)
	if n > opts.MaxSAPs {
		return nil, nil, fmt.Errorf("cnfsolver: %d SAPs exceeds the cubic-encoding limit %d", n, opts.MaxSAPs)
	}
	e := &encoder{sys: sys, n: n, s: sat.New(0)}
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = time.Now().Add(opts.Deadline)
	}
	interrupted := func() bool {
		if opts.Ctx != nil {
			select {
			case <-opts.Ctx.Done():
				return true
			default:
			}
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}
	e.encode()
	st := &Stats{BoolVars: e.s.NumVars(), Clauses: e.clauses}
	// The stop hook keeps a single CDCL call from outliving the budget; a
	// stopped call returns Unknown, which surfaces below as *Interrupted.
	// It is also the live-progress sampling point: the engine polls it on
	// a conflict/decision stride, so publishing from it gives heartbeats
	// a view inside long SAT calls.
	var polls int64
	e.s.Stop = func() bool {
		if opts.Progress != nil {
			if polls++; polls%16 == 0 {
				st.sample(e.s)
				opts.Progress(*st)
			}
		}
		return interrupted()
	}

	for round := 0; round < opts.MaxTheoryRounds; round++ {
		st.TheoryRounds = round + 1
		if opts.Progress != nil {
			st.sample(e.s)
			opts.Progress(*st)
		}
		if interrupted() {
			st.sample(e.s)
			return nil, st, &solver.Interrupted{Reason: "cnf theory loop cut short", Bound: -1}
		}
		switch e.s.Solve() {
		case sat.Sat:
		case sat.Unknown:
			st.sample(e.s)
			return nil, st, &solver.Interrupted{Reason: "sat search cut short", Bound: -1}
		default:
			st.sample(e.s)
			return nil, st, &Unsat{Rounds: round + 1}
		}
		order := e.extractOrder()
		w, err := sys.ValidateSchedule(order)
		if err == nil {
			st.sample(e.s)
			return &solver.Solution{Order: order, Witness: w, Preemptions: w.Preemptions}, st, nil
		}
		// Theory rejection: derive the smallest sound conflict clause.
		// A violated path/bug condition depends only on the mappings in
		// its transitive support (when addresses are concrete), so blocking
		// that support kills every model sharing it; otherwise fall back to
		// coarser blocking.
		e.block(err)
	}
	st.sample(e.s)
	return nil, st, fmt.Errorf("cnfsolver: theory refinement did not converge in %d rounds", opts.MaxTheoryRounds)
}

// Unsat reports an unsatisfiable system.
type Unsat struct{ Rounds int }

// Error implements error.
func (u *Unsat) Error() string {
	return fmt.Sprintf("cnfsolver: unsatisfiable (after %d theory rounds)", u.Rounds)
}

type encoder struct {
	sys     *constraints.System
	n       int
	s       *sat.Solver
	pairVar map[[2]int]int // (i<j) -> SAT var meaning "SAP i before SAP j"
	mapVars []int          // read→write / init choice variables
	// choiceLit[readIdx][k] is the literal for the k-th choice of the
	// read (k=0: initial value, k=1..: candidate writes).
	choiceLit [][]sat.Lit
	clauses   int64
	// symbolicAddrs reports whether any SAP has an unresolved address; if
	// not, read values are functions of the mapping alone and theory
	// failures can block just the mapping projection.
	symbolicAddrs bool
}

// lit returns the literal for "a before b".
func (e *encoder) lit(a, b int) sat.Lit {
	if a == b {
		panic("cnfsolver: reflexive order literal")
	}
	neg := false
	if a > b {
		a, b = b, a
		neg = true
	}
	v, ok := e.pairVar[[2]int{a, b}]
	if !ok {
		v = e.s.NewVar()
		e.pairVar[[2]int{a, b}] = v
	}
	return sat.MkLit(v, neg)
}

func (e *encoder) add(lits ...sat.Lit) {
	e.clauses++
	e.s.AddClause(lits...)
}

func (e *encoder) encode() {
	e.pairVar = map[[2]int]int{}
	for _, sap := range e.sys.SAPs {
		if sap.Kind.IsMemory() && sap.Addr == symexec.NoAddr {
			e.symbolicAddrs = true
		}
	}
	// Transitivity: before(a,b) ∧ before(b,c) → before(a,c), all triples.
	for a := 0; a < e.n; a++ {
		for b := 0; b < e.n; b++ {
			if b == a {
				continue
			}
			for c := b + 1; c < e.n; c++ {
				if c == a {
					continue
				}
				e.add(e.lit(a, b).Not(), e.lit(b, c).Not(), e.lit(a, c))
				e.add(e.lit(c, b).Not(), e.lit(b, a).Not(), e.lit(c, a))
			}
		}
	}
	// Hard edges (Fmo, fork/join) are unit clauses.
	for _, edge := range e.sys.HardEdges {
		e.add(e.lit(int(edge[0]), int(edge[1])))
	}
	// Frw: read→write mapping choice variables. Free reads (outside the
	// cone of influence, see constraints.Preprocess) get no choice
	// structure at all: their values feed nothing the theory checks, so
	// any order is acceptable around them.
	for i := range e.sys.Reads {
		ri := &e.sys.Reads[i]
		if ri.Free {
			e.choiceLit = append(e.choiceLit, nil)
			continue
		}
		r := int(ri.Read)
		rivals := ri.AllRivals()
		choice := make([]sat.Lit, 0, len(ri.Cands)+1)
		initVar := e.s.NewVar()
		e.mapVars = append(e.mapVars, initVar)
		choice = append(choice, sat.MkLit(initVar, false))
		if ri.NoInit {
			// Preprocessing proved the initial value unobservable. The
			// variable stays (choiceLit indexing is positional) but is
			// pinned false.
			e.add(sat.MkLit(initVar, true))
		}
		// init choice: every definitely-same-address write is after r —
		// including writes pruned from Cands, which still exist in every
		// schedule.
		for _, w := range rivals {
			if e.definitelySame(ri.Read, w) {
				e.add(sat.MkLit(initVar, true), e.lit(r, int(w)))
			}
		}
		for _, w := range ri.Cands {
			mv := e.s.NewVar()
			e.mapVars = append(e.mapVars, mv)
			choice = append(choice, sat.MkLit(mv, false))
			// m → w before r.
			e.add(sat.MkLit(mv, true), e.lit(int(w), r))
			// m → every same-address rival is before w or after r.
			for _, w2 := range rivals {
				if w2 == w || !e.definitelySame(ri.Read, w2) {
					continue
				}
				e.add(sat.MkLit(mv, true), e.lit(int(w2), int(w)), e.lit(r, int(w2)))
			}
		}
		e.add(choice...) // at least one choice
		e.choiceLit = append(e.choiceLit, choice)
	}
	e.learnValueLemmas()
	// Fso locking: cross-thread regions do not overlap. Sorted mutex
	// order keeps the order-literal numbering (and thus the whole CNF)
	// identical run to run.
	for _, m := range e.sys.RegionMutexes() {
		regions := e.sys.Regions[m]
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				a, b := regions[i], regions[j]
				if a.Thread == b.Thread {
					continue
				}
				switch {
				case a.HasUnlock && b.HasUnlock:
					e.add(e.lit(int(a.Unlock), int(b.Lock)), e.lit(int(b.Unlock), int(a.Lock)))
				case a.HasUnlock:
					e.add(e.lit(int(a.Unlock), int(b.Lock)))
				case b.HasUnlock:
					e.add(e.lit(int(b.Unlock), int(a.Lock)))
				default:
					// Two never-released regions cannot both exist.
					e.s.AddClause()
				}
			}
		}
	}
	// Fso wait/signal: each completed wait picks a waking signal inside
	// (begin, end); plain signals wake at most one wait.
	wakeVars := map[constraints.SAPRef][]sat.Lit{}
	for _, wi := range e.sys.Waits {
		choice := make([]sat.Lit, 0, len(wi.Cands))
		for _, s := range wi.Cands {
			kv := e.s.NewVar()
			choice = append(choice, sat.MkLit(kv, false))
			e.add(sat.MkLit(kv, true), e.lit(int(wi.Begin), int(s)))
			e.add(sat.MkLit(kv, true), e.lit(int(s), int(wi.End)))
			if e.sys.SAP(s).Kind == symexec.SAPSignal {
				wakeVars[s] = append(wakeVars[s], sat.MkLit(kv, false))
			}
		}
		e.add(choice...)
	}
	for _, vars := range wakeVars {
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				e.add(vars[i].Not(), vars[j].Not())
			}
		}
	}
}

// learnValueLemmas statically discharges the easy value constraints: for
// every Fpath/Fbug conjunct whose symbols all come from reads whose
// candidate values are constants, enumerate the candidate combinations and
// forbid the violating ones. This is theory-lemma learning done upfront —
// without it, value-heavy systems (the mutual-exclusion algorithms, where
// flags take constant values) would need one lazy refinement round per bad
// mapping.
func (e *encoder) learnValueLemmas() {
	// Read index and constant candidate values per symbol.
	readIdx := map[symbolic.SymID]int{}
	for i, ri := range e.sys.Reads {
		readIdx[e.sys.SAP(ri.Read).Sym.ID] = i
	}
	constVals := func(ri int) ([]int64, bool) {
		info := e.sys.Reads[ri]
		vals := []int64{info.Init}
		for _, w := range info.Cands {
			c, ok := e.sys.SAP(w).Val.(*symbolic.IntConst)
			if !ok {
				return nil, false
			}
			vals = append(vals, c.V)
		}
		return vals, true
	}
	conjs := append(append([]symbolic.Expr{}, e.sys.Path...), e.sys.Bug)
	for _, c := range conjs {
		ids := symbolic.Syms(c, nil, nil)
		if len(ids) == 0 || len(ids) > 3 {
			continue
		}
		type dim struct {
			ri   int
			id   symbolic.SymID
			vals []int64
		}
		var dims []dim
		combos := 1
		ok := true
		for _, id := range ids {
			ri, found := readIdx[id]
			if !found || e.sys.Reads[ri].Free {
				ok = false
				break
			}
			vals, constOK := constVals(ri)
			if !constOK {
				ok = false
				break
			}
			dims = append(dims, dim{ri: ri, id: id, vals: vals})
			combos *= len(vals)
		}
		if !ok || combos > 256 {
			continue
		}
		env := symbolic.MapEnv{}
		idx := make([]int, len(dims))
		for k := 0; k < combos; k++ {
			rem := k
			for d := range dims {
				idx[d] = rem % len(dims[d].vals)
				rem /= len(dims[d].vals)
				env[dims[d].id] = dims[d].vals[idx[d]]
			}
			holds, err := symbolic.EvalBool(c, env)
			if err == nil && !holds {
				// Forbid this combination of choices.
				lits := make([]sat.Lit, len(dims))
				for d := range dims {
					lits[d] = e.choiceLit[dims[d].ri][idx[d]].Not()
				}
				e.add(lits...)
			}
		}
	}
}

func (e *encoder) definitelySame(a, b constraints.SAPRef) bool {
	x, y := e.sys.SAP(a), e.sys.SAP(b)
	return x.Var == y.Var && x.Addr != symexec.NoAddr && y.Addr != symexec.NoAddr && x.Addr == y.Addr
}

// extractOrder reads the total order off the pair variables by counting
// predecessors (a valid model's transitive closure makes the counts a
// permutation).
func (e *encoder) extractOrder() []constraints.SAPRef {
	before := make([]int, e.n)
	for a := 0; a < e.n; a++ {
		for b := a + 1; b < e.n; b++ {
			v := e.pairVar[[2]int{a, b}]
			if e.s.Value(v) {
				before[b]++
			} else {
				before[a]++
			}
		}
	}
	order := make([]constraints.SAPRef, e.n)
	idx := make([]int, e.n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return before[idx[i]] < before[idx[j]] })
	for pos, i := range idx {
		order[pos] = constraints.SAPRef(i)
	}
	return order
}

// block forbids the rejected model. Three levels, most precise first:
//
//  1. A violated value condition with concrete addresses depends only on
//     the mappings in its transitive support — block just those reads'
//     current choices (a proper theory conflict clause).
//  2. Otherwise, with concrete addresses, block the full mapping
//     projection.
//  3. With symbolic addresses, values can depend on the order too: block
//     the full pair assignment (complete but slowest).
func (e *encoder) block(verr error) {
	if !e.symbolicAddrs {
		if ve, ok := verr.(*constraints.ValidationError); ok && ve.FailedExpr != nil {
			if lits := e.supportClause(ve.FailedExpr); lits != nil {
				e.add(lits...)
				return
			}
		}
		lits := make([]sat.Lit, 0, len(e.mapVars))
		for _, v := range e.mapVars {
			lits = append(lits, sat.MkLit(v, e.s.Value(v)))
		}
		e.add(lits...)
		return
	}
	lits := make([]sat.Lit, 0, len(e.pairVar))
	for _, v := range e.pairVar {
		lits = append(lits, sat.MkLit(v, e.s.Value(v)))
	}
	e.add(lits...)
}

// supportClause negates the current choices of every read in the
// expression's transitive value support.
func (e *encoder) supportClause(expr symbolic.Expr) []sat.Lit {
	readIdx := map[symbolic.SymID]int{}
	for i, ri := range e.sys.Reads {
		readIdx[e.sys.SAP(ri.Read).Sym.ID] = i
	}
	// currentChoice returns the selected choice index of read ri in the
	// SAT model, or -1 if none is set (should not happen for a model).
	currentChoice := func(ri int) int {
		for k, lit := range e.choiceLit[ri] {
			if e.s.Value(lit.Var()) != lit.Neg() {
				return k
			}
		}
		return -1
	}
	seen := map[int]bool{}
	var lits []sat.Lit
	var visit func(expr symbolic.Expr) bool
	visit = func(expr symbolic.Expr) bool {
		for _, id := range symbolic.Syms(expr, nil, nil) {
			ri, ok := readIdx[id]
			if !ok || e.choiceLit[ri] == nil {
				return false
			}
			if seen[ri] {
				continue
			}
			seen[ri] = true
			k := currentChoice(ri)
			if k < 0 {
				return false
			}
			lits = append(lits, e.choiceLit[ri][k].Not())
			if k > 0 {
				// The mapped write's value has its own dependencies.
				if !visit(e.sys.SAP(e.sys.Reads[ri].Cands[k-1]).Val) {
					return false
				}
			}
		}
		return true
	}
	if !visit(expr) {
		return nil
	}
	return lits
}
