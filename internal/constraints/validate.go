package constraints

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/symbolic"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// Witness is a validated model of the constraint system: the schedule
// together with the concrete value of every read and the write (or initial
// value) it maps to.
type Witness struct {
	// Order is the validated schedule.
	Order []SAPRef
	// Env binds every read symbol to its concrete value.
	Env symbolic.MapEnv
	// MappedWrite maps each read SAPRef to the write SAPRef it reads from,
	// or -1 when it reads the initial value.
	MappedWrite map[SAPRef]SAPRef
	// Switches is the number of context switches in the schedule (counting
	// every change of running thread).
	Switches int
	// Preemptions is the number of preemptive switches: switches not
	// forced by a must-interleave operation (§4.2).
	Preemptions int
}

// ValidationError explains why a candidate schedule is not a model.
type ValidationError struct {
	Reason string
	At     int // schedule position, -1 when global
	// FailedExpr is set when a path condition or the bug predicate
	// evaluated to false: the violated expression. Solvers use it to
	// derive conflict clauses over just the involved reads.
	FailedExpr symbolic.Expr
}

// Error implements error.
func (e *ValidationError) Error() string {
	if e.At >= 0 {
		return fmt.Sprintf("constraints: invalid schedule at position %d: %s", e.At, e.Reason)
	}
	return "constraints: invalid schedule: " + e.Reason
}

func vErr(at int, format string, args ...any) *ValidationError {
	return &ValidationError{At: at, Reason: fmt.Sprintf(format, args...)}
}

// ValidateSchedule checks a candidate total order of all SAPs against every
// constraint family and, when valid, returns the witness with concrete read
// values. The check is a single forward pass: O(n) simulation of memory,
// locks and condition variables, plus evaluation of Fpath and Fbug. The
// working state lives in a pooled scratch and the Witness maps are only
// materialized on acceptance, so the (overwhelmingly common) rejection path
// allocates nothing.
func (sys *System) ValidateSchedule(order []SAPRef) (*Witness, error) {
	n := len(sys.SAPs)
	if len(order) != n {
		return nil, vErr(-1, "schedule has %d entries, system has %d SAPs", len(order), n)
	}
	v := sys.getValidator()
	defer sys.putValidator(v)
	v.resetForValidate(sys, n)
	for i, r := range order {
		if r < 0 || int(r) >= n {
			return nil, vErr(i, "SAP ref %d out of range", r)
		}
		if v.pos[r] != -1 {
			return nil, vErr(i, "SAP %s appears twice", sys.SAPs[r])
		}
		v.pos[r] = i
	}

	// Hard order edges.
	for _, e := range sys.HardEdges {
		if v.pos[e[0]] >= v.pos[e[1]] {
			return nil, vErr(v.pos[e[1]], "order edge violated: %s must precede %s", sys.SAPs[e[0]], sys.SAPs[e[1]])
		}
	}

	// Forward simulation: memory, locks, condition variables.
	for i, r := range order {
		s := sys.SAPs[r]
		switch s.Kind {
		case symexec.SAPRead:
			a, err := sys.addrOfAt(v, s, i)
			if err != nil {
				return nil, err
			}
			v.env.bind(s.Sym.ID, v.mem[a])
			v.mapped[r] = v.lastWriter[a]
		case symexec.SAPWrite:
			a, err := sys.addrOfAt(v, s, i)
			if err != nil {
				return nil, err
			}
			val, err := symbolic.EvalInt(s.Val, &v.env)
			if err != nil {
				return nil, vErr(i, "value of %s: %v", s, err)
			}
			v.mem[a] = val
			v.lastWriter[a] = r
		case symexec.SAPLock, symexec.SAPWaitEnd:
			st := v.locks[s.Mutex]
			if st.held {
				return nil, vErr(i, "%s acquires mutex m%d held by t%d", s, s.Mutex, st.owner)
			}
			v.locks[s.Mutex] = lockOwner{held: true, owner: s.Thread}
			if s.Kind == symexec.SAPWaitEnd {
				// A wake needs an eligible signal: one that happened after
				// this wait began. Signals are consumed; broadcasts serve
				// any number of waits pending at broadcast time.
				began, ok := findBegin(sys, v.waitBeganAt, r)
				if !ok {
					return nil, vErr(i, "%s has no recorded begin", s)
				}
				if !consumeSignal(v.signalsAt, v.broadcastsAt, s.Cond, began) {
					return nil, vErr(i, "%s has no eligible signal", s)
				}
			}
		case symexec.SAPUnlock, symexec.SAPWaitBegin:
			st := v.locks[s.Mutex]
			if !st.held || st.owner != s.Thread {
				return nil, vErr(i, "%s releases mutex m%d not held by it", s, s.Mutex)
			}
			v.locks[s.Mutex] = lockOwner{}
			if s.Kind == symexec.SAPWaitBegin {
				v.waitBeganAt[r] = i
			}
		case symexec.SAPSignal:
			v.signalsAt[s.Cond] = append(v.signalsAt[s.Cond], i)
		case symexec.SAPBroadcast:
			v.broadcastsAt[s.Cond] = append(v.broadcastsAt[s.Cond], i)
		}
	}

	// Fpath and Fbug under the simulated values.
	for _, c := range sys.Path {
		ok, err := symbolic.EvalBool(c, &v.env)
		if err != nil {
			return nil, vErr(-1, "path condition %s: %v", c, err)
		}
		if !ok {
			e := vErr(-1, "path condition %s is false", c)
			e.FailedExpr = c
			return nil, e
		}
	}
	ok, err := symbolic.EvalBool(sys.Bug, &v.env)
	if err != nil {
		return nil, vErr(-1, "bug predicate %s: %v", sys.Bug, err)
	}
	if !ok {
		e := vErr(-1, "bug predicate %s is false (failure would not manifest)", sys.Bug)
		e.FailedExpr = sys.Bug
		return nil, e
	}

	// Accepted: materialize the witness from the scratch state.
	w := &Witness{
		Order:       append([]SAPRef(nil), order...),
		Env:         make(symbolic.MapEnv, len(sys.Reads)),
		MappedWrite: make(map[SAPRef]SAPRef, len(sys.Reads)),
	}
	for _, r := range order {
		s := sys.SAPs[r]
		if s.Kind != symexec.SAPRead {
			continue
		}
		if val, bound := v.env.Value(s.Sym.ID); bound {
			w.Env[s.Sym.ID] = val
		}
		w.MappedWrite[r] = v.mapped[r]
	}
	w.Switches, w.Preemptions = sys.countSwitches(v, order)
	return w, nil
}

// addrOfAt resolves a SAP's flat address under the current environment.
func (sys *System) addrOfAt(v *validator, s *symexec.SAP, at int) (int, error) {
	if s.Addr != symexec.NoAddr {
		return s.Addr, nil
	}
	idx, err := symbolic.EvalInt(s.AddrIndex, &v.env)
	if err != nil {
		return 0, vErr(at, "address of %s: %v", s, err)
	}
	a, ok := sys.Layout.Addr(sys.An.Prog, s.Var, idx)
	if !ok {
		return 0, vErr(at, "address of %s out of bounds (index %d)", s, idx)
	}
	return a, nil
}

// findBegin locates the begin position of a wait-end's matching begin.
func findBegin(sys *System, beganAt map[SAPRef]int, end SAPRef) (int, bool) {
	s := sys.SAPs[end]
	// The matching begin is the same thread's most recent WaitBegin on the
	// same condition before this end in program order.
	refs := sys.Threads[s.Thread]
	for k := len(refs) - 1; k >= 0; k-- {
		if refs[k] == end {
			for j := k - 1; j >= 0; j-- {
				b := sys.SAPs[refs[j]]
				if b.Kind == symexec.SAPWaitBegin && b.Cond == s.Cond {
					at, ok := beganAt[refs[j]]
					return at, ok
				}
			}
			return 0, false
		}
	}
	return 0, false
}

// consumeSignal tries to satisfy a wake that began at position began:
// first a broadcast after began, then the earliest unconsumed signal after
// began (greedy earliest-eligible matching is optimal for interval
// scheduling, so no completion is missed).
func consumeSignal(signalsAt, broadcastsAt map[ir.SyncID][]int, c ir.SyncID, began int) bool {
	for _, b := range broadcastsAt[c] {
		if b > began {
			return true
		}
	}
	ss := signalsAt[c]
	for k, sp := range ss {
		if sp > began {
			// In-place removal: the slice is scratch-owned, so shifting
			// keeps the backing array for reuse instead of reallocating.
			copy(ss[k:], ss[k+1:])
			signalsAt[c] = ss[:len(ss)-1]
			return true
		}
	}
	return false
}

// CountSwitches returns the total number of thread changes in the schedule
// and how many of them are preemptive. A switch away from thread T is
// preemptive when T could have continued: its next SAP's hard order
// predecessors (Fmo plus fork/join edges) were all already scheduled at
// the switch point. Switches where T was finished or blocked (a join whose
// child had not exited, a wait-end whose turn had not come, …) are the
// paper's non-preemptive, must-interleave switches (§4.2).
func (sys *System) CountSwitches(order []SAPRef) (switches, preemptions int) {
	v := sys.getValidator()
	defer sys.putValidator(v)
	return sys.countSwitches(v, order)
}

// countSwitches is CountSwitches over a caller-held scratch; its state is
// disjoint from the forward-pass half, so ValidateSchedule shares one
// validator for both.
func (sys *System) countSwitches(v *validator, order []SAPRef) (switches, preemptions int) {
	// preds[r] = hard-edge predecessors of r, cached on the system.
	preds := sys.hardPredsTable()
	v.resetForCount(sys, len(sys.SAPs))
	scheduled := v.scheduled
	next := v.next
	// Replay-level blocking state: a thread whose next operation is a lock
	// acquisition on a held mutex (or a wake without an eligible signal)
	// cannot continue either — switching away from it is forced.
	lockHeld := v.lockHeld
	signalsSeen := v.signalsSeen
	broadcastsSeen := v.broadcastsSeen
	signalsConsumed := v.signalsConsumed
	ready := func(t trace.ThreadID) bool {
		refs := sys.Threads[t]
		for k := next[t]; k < len(refs); k++ {
			r := refs[k]
			if scheduled[r] {
				continue
			}
			ok := true
			for _, p := range preds[r] {
				if !scheduled[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			s := sys.SAPs[r]
			switch s.Kind {
			case symexec.SAPLock:
				if lockHeld[s.Mutex] {
					continue
				}
			case symexec.SAPWaitEnd:
				if lockHeld[s.Mutex] {
					continue
				}
				// Approximate eligibility: an unconsumed signal or any
				// broadcast must exist.
				if signalsConsumed[s.Cond] >= signalsSeen[s.Cond] && broadcastsSeen[s.Cond] == 0 {
					continue
				}
			}
			return true
		}
		return false
	}
	prev := trace.ThreadID(-1)
	for _, r := range order {
		s := sys.SAPs[r]
		if prev >= 0 && s.Thread != prev {
			switches++
			if ready(prev) {
				preemptions++
			}
		}
		scheduled[r] = true
		switch s.Kind {
		case symexec.SAPLock:
			lockHeld[s.Mutex] = true
		case symexec.SAPUnlock, symexec.SAPWaitBegin:
			lockHeld[s.Mutex] = false
		case symexec.SAPWaitEnd:
			lockHeld[s.Mutex] = true
			signalsConsumed[s.Cond]++
		case symexec.SAPSignal:
			signalsSeen[s.Cond]++
		case symexec.SAPBroadcast:
			broadcastsSeen[s.Cond]++
		}
		for next[s.Thread] < len(sys.Threads[s.Thread]) && scheduled[sys.Threads[s.Thread][next[s.Thread]]] {
			next[s.Thread]++
		}
		prev = s.Thread
	}
	return switches, preemptions
}
