package constraints

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/symbolic"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// GroupKind classifies constraint groups by the encoding rule that
// produced them.
type GroupKind uint8

// Group kinds. Each corresponds to one rule of the F = Fpath ∧ Fbug ∧
// Fso ∧ Frw ∧ Fmo encoding, at the granularity a human can act on: per
// thread, per mutex, per wait, per read.
const (
	// GroupBug is Fbug: the negated failing assertion.
	GroupBug GroupKind = iota
	// GroupPath is one thread's Fpath conjuncts.
	GroupPath
	// GroupMO is one thread's intra-thread memory-order edges (Fmo).
	GroupMO
	// GroupSpawn is the fork→start and exit→join edges (Fso).
	GroupSpawn
	// GroupOrder is any remaining cross-thread hard edge: the pinned
	// global synchronization order of BuildWithSyncOrder, or edges added
	// by tests.
	GroupOrder
	// GroupLock is the mutual exclusion of one mutex's lock regions (Fso).
	GroupLock
	// GroupWait is one completed wait's signal-mapping constraint (Fso).
	GroupWait
	// GroupRW is one read's last-writer mapping constraint (Frw).
	GroupRW
)

var groupKindNames = map[GroupKind]string{
	GroupBug: "fbug", GroupPath: "fpath", GroupMO: "fmo",
	GroupSpawn: "fso/spawn", GroupOrder: "fso/order", GroupLock: "fso/lock",
	GroupWait: "fso/wait", GroupRW: "frw",
}

// String names the kind.
func (k GroupKind) String() string {
	if s, ok := groupKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("group(%d)", uint8(k))
}

// Group is one deletable unit of the constraint system: the conjuncts one
// encoding rule contributed for one thread/mutex/wait/read. The
// explainability layer's minimal-unsat-subset shrinker deletes whole
// groups, so the partition granularity here is the granularity of the
// final "why no schedule exists" verdict.
type Group struct {
	Kind GroupKind
	// ID is the group's stable name, e.g. "fso/lock/m2" or "fpath/t1".
	ID string
	// Desc is a one-line human-readable description for verdicts.
	Desc string

	// Thread identifies the thread for GroupPath/GroupMO (else -1).
	Thread trace.ThreadID
	// Mutex identifies the mutex for GroupLock (else -1).
	Mutex ir.SyncID
	// Index is the sys.Waits index for GroupWait and the sys.Reads index
	// for GroupRW (else -1).
	Index int

	// Edges are the hard order edges the group contributes (GroupMO,
	// GroupSpawn, GroupOrder only).
	Edges [][2]SAPRef
	// Exprs are the symbolic conjuncts the group contributes (GroupPath:
	// the thread's path conditions; GroupBug: the bug predicate).
	Exprs []symbolic.Expr
}

// Groups partitions the system's constraints into deletable per-rule
// groups. Every hard edge, lock region set, wait mapping, read mapping,
// path conjunct and the bug predicate lands in exactly one group, so
// deleting a subset of groups is a well-defined weakening of F. The
// partition is deterministic: groups come out in a fixed kind-major order
// with sorted identifiers.
func (sys *System) Groups() []Group {
	var out []Group

	// Fbug.
	out = append(out, Group{
		Kind: GroupBug, ID: "fbug",
		Desc:   "Fbug: the failing assertion's condition must be violated",
		Thread: -1, Mutex: -1, Index: -1,
		Exprs: []symbolic.Expr{sys.Bug},
	})

	// Fpath per thread, reconstructed from the per-thread conjunct counts
	// (Build concatenates An.Threads[i].PathCond into sys.Path in order).
	off := 0
	for _, tt := range sys.An.Threads {
		n := len(tt.PathCond)
		if n > 0 {
			out = append(out, Group{
				Kind:   GroupPath,
				ID:     fmt.Sprintf("fpath/t%d", tt.Thread),
				Desc:   fmt.Sprintf("Fpath(t%d): %d path conditions of thread %d", tt.Thread, n, tt.Thread),
				Thread: tt.Thread, Mutex: -1, Index: -1,
				Exprs: sys.Path[off : off+n],
			})
		}
		off += n
	}

	// Hard edges, classified by endpoints: same-thread edges are Fmo;
	// cross-thread fork→start / exit→join pairs are the spawn half of
	// Fso; anything else cross-thread is a pinned order edge.
	mo := map[trace.ThreadID][][2]SAPRef{}
	var spawn, order [][2]SAPRef
	for _, e := range sys.HardEdges {
		a, b := sys.SAPs[e[0]], sys.SAPs[e[1]]
		switch {
		case a.Thread == b.Thread:
			mo[a.Thread] = append(mo[a.Thread], e)
		case a.Kind == symexec.SAPFork && b.Kind == symexec.SAPStart,
			a.Kind == symexec.SAPExit && b.Kind == symexec.SAPJoin:
			spawn = append(spawn, e)
		default:
			order = append(order, e)
		}
	}
	for tid := range sys.Threads {
		t := trace.ThreadID(tid)
		if edges := mo[t]; len(edges) > 0 {
			out = append(out, Group{
				Kind:   GroupMO,
				ID:     fmt.Sprintf("fmo/t%d", t),
				Desc:   fmt.Sprintf("Fmo(t%d): %d program-order edges of thread %d under %v", t, len(edges), t, sys.Model),
				Thread: t, Mutex: -1, Index: -1,
				Edges: edges,
			})
		}
	}
	if len(spawn) > 0 {
		out = append(out, Group{
			Kind: GroupSpawn, ID: "fso/spawn",
			Desc:   fmt.Sprintf("Fso(spawn): %d fork→start and exit→join edges", len(spawn)),
			Thread: -1, Mutex: -1, Index: -1,
			Edges: spawn,
		})
	}
	if len(order) > 0 {
		out = append(out, Group{
			Kind: GroupOrder, ID: "fso/order",
			Desc:   fmt.Sprintf("Fso(order): %d pinned cross-thread order edges", len(order)),
			Thread: -1, Mutex: -1, Index: -1,
			Edges: order,
		})
	}

	// Lock mutual exclusion per mutex, in sorted mutex order.
	for _, m := range sys.RegionMutexes() {
		out = append(out, Group{
			Kind:   GroupLock,
			ID:     fmt.Sprintf("fso/lock/m%d", m),
			Desc:   fmt.Sprintf("Fso(m%d): mutual exclusion of %d lock regions on mutex %d", m, len(sys.Regions[m]), m),
			Thread: -1, Mutex: m, Index: -1,
		})
	}

	// Wait/signal mapping per completed wait.
	for i, wi := range sys.Waits {
		b := sys.SAPs[wi.Begin]
		out = append(out, Group{
			Kind:   GroupWait,
			ID:     fmt.Sprintf("fso/wait/%d", i),
			Desc:   fmt.Sprintf("Fso(wait %d): wait on c%d at t%d#%d must map to one of %d signals", i, b.Cond, b.Thread, b.Seq, len(wi.Cands)),
			Thread: -1, Mutex: -1, Index: i,
		})
	}

	// Read→write mapping per read.
	for i, ri := range sys.Reads {
		r := sys.SAPs[ri.Read]
		out = append(out, Group{
			Kind:   GroupRW,
			ID:     fmt.Sprintf("frw/r%d", i),
			Desc:   fmt.Sprintf("Frw(read t%d#%d g%d): read must map to a same-address write or the initial value", r.Thread, r.Seq, r.Var),
			Thread: -1, Mutex: -1, Index: i,
		})
	}
	return out
}
