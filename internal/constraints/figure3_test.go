package constraints

import (
	"strings"
	"testing"

	"repro/internal/symexec"
	"repro/internal/vm"
)

// TestFigure3ConstraintModeling mirrors Figure 3 of the paper on the
// Figure 2 example program: the generated constraint families must have
// the structure the figure tabulates — path constraints over the read
// symbols, one read-write clause group per read with the right candidate
// sets, and memory-order edges that differ between SC and PSO exactly on
// same-thread accesses to different variables.
func TestFigure3ConstraintModeling(t *testing.T) {
	r := findFailing(t, figure2SC, vm.SC, 3000)

	scSys := buildSystem(t, r, vm.SC)
	psoSys := buildSystem(t, r, vm.PSO)

	// (a) Path constraints: the failing run entered the r2 > 0 branch, so
	// Fpath contains a conjunct over t1's y read; Fbug is the negated
	// assert over t1's last x read.
	foundBranchCond := false
	for _, c := range scSys.Path {
		if strings.Contains(c.String(), "R_y@t1") {
			foundBranchCond = true
		}
	}
	if !foundBranchCond {
		t.Errorf("Fpath misses the branch condition over t1's y read: %v", scSys.Path)
	}
	if !strings.Contains(scSys.Bug.String(), "R_x@t1") {
		t.Errorf("Fbug = %s does not constrain t1's x read", scSys.Bug)
	}

	// (b) Read-write constraints: each x read's candidates are exactly the
	// x writes (3: two by main, one by t1); y reads map to the single y
	// write.
	for _, ri := range scSys.Reads {
		read := scSys.SAP(ri.Read)
		name := scSys.An.Prog.Globals[read.Var].Name
		switch name {
		case "x":
			if len(ri.Cands) != 3 {
				t.Errorf("x read %s has %d candidate writes, want 3", read, len(ri.Cands))
			}
		case "y":
			if len(ri.Cands) != 1 {
				t.Errorf("y read %s has %d candidate writes, want 1", read, len(ri.Cands))
			}
		}
		if ri.Init != 0 {
			t.Errorf("initial value of %s = %d, want 0", name, ri.Init)
		}
	}

	// (c) Memory order: SC keeps full per-thread program order, so every
	// consecutive same-thread SAP pair is an edge. PSO drops same-thread
	// W→W edges on different variables: main's write to x and write to y
	// are ordered under SC but not under PSO.
	edgeSet := func(sys *System) map[[2]SAPRef]bool {
		m := map[[2]SAPRef]bool{}
		for _, e := range sys.HardEdges {
			m[e] = true
		}
		return m
	}
	scEdges, psoEdges := edgeSet(scSys), edgeSet(psoSys)

	var wx, wy SAPRef = -1, -1
	for i, s := range scSys.SAPs {
		if s.Thread != 0 || s.Kind != symexec.SAPWrite {
			continue
		}
		switch scSys.An.Prog.Globals[s.Var].Name {
		case "x":
			wx = SAPRef(i) // the last x write by main wins; any works
		case "y":
			wy = SAPRef(i)
		}
	}
	if wx == -1 || wy == -1 {
		t.Fatal("main's writes not found")
	}
	reach := func(edges map[[2]SAPRef]bool, a, b SAPRef) bool {
		adj := map[SAPRef][]SAPRef{}
		for e := range edges {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
		seen := map[SAPRef]bool{}
		stack := []SAPRef{a}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == b {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	if !reach(scEdges, wx, wy) && !reach(scEdges, wy, wx) {
		t.Error("SC must order main's x and y writes")
	}
	if reach(psoEdges, wx, wy) || reach(psoEdges, wy, wx) {
		t.Error("PSO must not order main's x and y writes (different addresses)")
	}

	// Every PSO order requirement is also an SC requirement on this
	// program: the SC feasible set is contained in the PSO feasible set.
	for e := range psoEdges {
		if !reach(scEdges, e[0], e[1]) {
			t.Errorf("PSO edge %v->%v not implied by SC program order", scSys.SAPs[e[0]], scSys.SAPs[e[1]])
		}
	}
}

// TestModelFeasibilityNesting checks SC ⊆ TSO ⊆ PSO on valid schedules:
// every schedule valid under a stronger model is valid under the weaker
// ones (the models only remove order requirements).
func TestModelFeasibilityNesting(t *testing.T) {
	r := findFailing(t, figure2SC, vm.SC, 3000)
	scSys := buildSystem(t, r, vm.SC)
	tsoSys := buildSystem(t, r, vm.TSO)
	psoSys := buildSystem(t, r, vm.PSO)
	order := recordedOrder(scSys, r.global)
	if _, err := scSys.ValidateSchedule(order); err != nil {
		t.Fatalf("recorded order invalid under SC: %v", err)
	}
	if _, err := tsoSys.ValidateSchedule(order); err != nil {
		t.Fatalf("SC-valid schedule rejected under TSO: %v", err)
	}
	if _, err := psoSys.ValidateSchedule(order); err != nil {
		t.Fatalf("SC-valid schedule rejected under PSO: %v", err)
	}
}
