// Pooled per-call scratch for schedule validation. ValidateSchedule is the
// inner loop of the parallel generate-and-validate backend — Table 3 of the
// paper generates millions of candidates per benchmark and validates each —
// so the O(n) working state (position index, memory image, last-writer
// table, symbol environment, lock/signal simulation) is recycled through a
// sync.Pool on the System instead of being reallocated per candidate.
package constraints

import (
	"sync"

	"repro/internal/ir"
	"repro/internal/symbolic"
	"repro/internal/trace"
)

// validateScratch is the System-owned cache shared by all validators.
type validateScratch struct {
	pool sync.Pool // of *validator

	// predsMu guards the lazily built dense hard-edge predecessor table;
	// the edge count detects (build-time) growth and rebuilds.
	predsMu    sync.Mutex
	predsEdges int
	preds      [][]SAPRef

	// initOnce caches the initial memory image; Layout and the program's
	// globals are immutable once the system is built.
	initOnce sync.Once
	initImg  []int64
}

// hardPredsTable returns preds[r] = hard-edge predecessors of r, built once
// and rebuilt only if edges were added since (which only happens during
// system construction, never during solving).
func (sys *System) hardPredsTable() [][]SAPRef {
	c := &sys.scratch
	c.predsMu.Lock()
	defer c.predsMu.Unlock()
	if c.preds == nil || c.predsEdges != len(sys.HardEdges) {
		t := make([][]SAPRef, len(sys.SAPs))
		for _, e := range sys.HardEdges {
			t[e[1]] = append(t[e[1]], e[0])
		}
		c.preds = t
		c.predsEdges = len(sys.HardEdges)
	}
	return c.preds
}

// initImage returns the cached pristine memory image; callers copy it.
func (sys *System) initImage() []int64 {
	sys.scratch.initOnce.Do(func() {
		sys.scratch.initImg = sys.Layout.InitImage(sys.An.Prog)
	})
	return sys.scratch.initImg
}

// denseEnv is a symbolic.Env over a flat slice indexed by SymID. Validity
// is generation-stamped so reuse costs one counter bump, not an
// O(NumSyms) clear.
type denseEnv struct {
	vals []int64
	gen  []uint32
	cur  uint32
}

// Value implements symbolic.Env.
func (d *denseEnv) Value(id symbolic.SymID) (int64, bool) {
	i := int(id)
	if i < 0 || i >= len(d.vals) || d.gen[i] != d.cur {
		return 0, false
	}
	return d.vals[i], true
}

func (d *denseEnv) bind(id symbolic.SymID, v int64) {
	i := int(id)
	for i >= len(d.vals) {
		d.vals = append(d.vals, 0)
		d.gen = append(d.gen, 0)
	}
	d.vals[i] = v
	d.gen[i] = d.cur
}

func (d *denseEnv) reset(n int) {
	if len(d.vals) < n {
		d.vals = make([]int64, n)
		d.gen = make([]uint32, n)
		d.cur = 0
	}
	d.cur++
	if d.cur == 0 { // generation counter wrapped: stale stamps could collide
		for i := range d.gen {
			d.gen[i] = 0
		}
		d.cur = 1
	}
}

// lockOwner is the simulated state of one mutex.
type lockOwner struct {
	held  bool
	owner trace.ThreadID
}

// validator is one pooled validation scratch: the forward-pass state of
// ValidateSchedule plus the replay state of CountSwitches. The two halves
// are disjoint, so one validator serves a full validate-then-count call.
type validator struct {
	pos        []int
	mem        []int64
	lastWriter []SAPRef
	// mapped[r] is the read r's last writer; entries are only read after
	// being written in the same pass, so it needs no reset.
	mapped       []SAPRef
	env          denseEnv
	locks        map[ir.SyncID]lockOwner
	signalsAt    map[ir.SyncID][]int
	broadcastsAt map[ir.SyncID][]int
	waitBeganAt  map[SAPRef]int

	// CountSwitches state.
	scheduled       []bool
	next            []int
	lockHeld        map[ir.SyncID]bool
	signalsSeen     map[ir.SyncID]int
	broadcastsSeen  map[ir.SyncID]int
	signalsConsumed map[ir.SyncID]int
}

func (sys *System) getValidator() *validator {
	if v, ok := sys.scratch.pool.Get().(*validator); ok {
		return v
	}
	return &validator{
		locks:           map[ir.SyncID]lockOwner{},
		signalsAt:       map[ir.SyncID][]int{},
		broadcastsAt:    map[ir.SyncID][]int{},
		waitBeganAt:     map[SAPRef]int{},
		lockHeld:        map[ir.SyncID]bool{},
		signalsSeen:     map[ir.SyncID]int{},
		broadcastsSeen:  map[ir.SyncID]int{},
		signalsConsumed: map[ir.SyncID]int{},
	}
}

func (sys *System) putValidator(v *validator) { sys.scratch.pool.Put(v) }

// resetForValidate prepares the forward-pass half for a system of n SAPs.
func (v *validator) resetForValidate(sys *System, n int) {
	if cap(v.pos) < n {
		v.pos = make([]int, n)
	}
	v.pos = v.pos[:n]
	for i := range v.pos {
		v.pos[i] = -1
	}
	v.mem = append(v.mem[:0], sys.initImage()...)
	size := sys.Layout.Size
	if cap(v.lastWriter) < size {
		v.lastWriter = make([]SAPRef, size)
	}
	v.lastWriter = v.lastWriter[:size]
	for i := range v.lastWriter {
		v.lastWriter[i] = -1
	}
	if cap(v.mapped) < n {
		v.mapped = make([]SAPRef, n)
	}
	v.mapped = v.mapped[:n]
	v.env.reset(sys.An.NumSyms)
	clear(v.locks)
	clear(v.waitBeganAt)
	// Keep the per-cond slices' capacity, drop their contents.
	for k, s := range v.signalsAt {
		v.signalsAt[k] = s[:0]
	}
	for k, s := range v.broadcastsAt {
		v.broadcastsAt[k] = s[:0]
	}
}

// resetForCount prepares the CountSwitches half.
func (v *validator) resetForCount(sys *System, n int) {
	if cap(v.scheduled) < n {
		v.scheduled = make([]bool, n)
	}
	v.scheduled = v.scheduled[:n]
	for i := range v.scheduled {
		v.scheduled[i] = false
	}
	nt := len(sys.Threads)
	if cap(v.next) < nt {
		v.next = make([]int, nt)
	}
	v.next = v.next[:nt]
	for i := range v.next {
		v.next[i] = 0
	}
	clear(v.lockHeld)
	clear(v.signalsSeen)
	clear(v.broadcastsSeen)
	clear(v.signalsConsumed)
}
