package constraints

import (
	"strings"
	"testing"

	"repro/internal/vm"
)

// TestFormulaDumpShape: the human-readable constraint dump (the CLI's
// -dump-constraints) must contain all five families in Figure 3's shape.
func TestFormulaDumpShape(t *testing.T) {
	r := findFailing(t, figure2SC, vm.SC, 3000)
	sys := buildSystem(t, r, vm.SC)
	dump := sys.Formula()
	for _, want := range []string{
		"; Fpath",
		"; Fbug",
		"; Fmo / fork-join edges",
		"; Frw",
		"(assert",
		"rw ",
		"O[",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("formula dump missing %q", want)
		}
	}
	// Every read appears in the Frw section.
	for _, ri := range sys.Reads {
		if !strings.Contains(dump, sys.SAP(ri.Read).String()) {
			t.Errorf("read %s missing from dump", sys.SAP(ri.Read))
		}
	}
}

// TestStatsMatchPaperFormulas: spot-check the §4.1 size accounting against
// hand computation on the figure-2 system.
func TestStatsMatchPaperFormulas(t *testing.T) {
	r := findFailing(t, figure2SC, vm.SC, 3000)
	sys := buildSystem(t, r, vm.SC)
	st := sys.ComputeStats()

	// Path clauses: |Fpath| + 1 for the bug predicate.
	if st.PathClauses != len(sys.Path)+1 {
		t.Errorf("PathClauses = %d, want %d", st.PathClauses, len(sys.Path)+1)
	}
	// Memory-order clauses: the hard edge count.
	if st.MOClauses != len(sys.HardEdges) {
		t.Errorf("MOClauses = %d, want %d", st.MOClauses, len(sys.HardEdges))
	}
	// Read-write: per read with nw candidates, nw*(2+2(nw-1)) + (nw+1).
	want := 0
	for _, ri := range sys.Reads {
		nw := len(ri.Cands)
		if nw > 0 {
			want += nw*(2+2*(nw-1)) + nw + 1
		} else {
			want++
		}
	}
	if st.RWClauses != want {
		t.Errorf("RWClauses = %d, want %d", st.RWClauses, want)
	}
	// No locks or condvars in figure 2.
	if st.LockClauses != 0 || st.SignalClauses != 0 {
		t.Errorf("unexpected sync clauses: %+v", st)
	}
	// Variables = order vars + value vars + signal binaries.
	if st.Variables != st.SAPs+st.ValueVars+st.SignalVars {
		t.Errorf("variable accounting inconsistent: %+v", st)
	}
}
