package constraints

// PreSnapshot is a serializable capture of the Preprocess pass's
// decisions: the surviving read→write and wait→signal candidate sets plus
// the reduction stats. The core disk cache stores one per recording
// content hash, so a repeat reproduction (clapd's dedupe path, bound
// sweeps, bench reruns) replays the pruning in O(candidates) instead of
// re-running the closure and rule passes.
//
// A snapshot carries no SAP identities beyond dense indices, so it is
// only meaningful for a system built from the very same recording; Apply
// therefore validates shape (and subset-ness) defensively and refuses
// anything that does not line up, leaving the system untouched.
type PreSnapshot struct {
	Schema string         `json:"schema"`
	SAPs   int            `json:"saps"`
	Reads  []ReadSnapshot `json:"reads"`
	Waits  [][]SAPRef     `json:"waits"`
	Stats  PreStats       `json:"stats"`
}

// PreSnapshotSchema versions the snapshot encoding; bump on any change to
// the pruning semantics the snapshot captures.
const PreSnapshotSchema = "clap-pre/1"

// ReadSnapshot is one read's post-preprocessing candidate state.
type ReadSnapshot struct {
	Cands  []SAPRef `json:"cands,omitempty"`
	Free   bool     `json:"free,omitempty"`
	NoInit bool     `json:"noinit,omitempty"`
}

// Snapshot captures the preprocessing result, or nil when Preprocess has
// not run.
func (sys *System) Snapshot() *PreSnapshot {
	if sys.Pre == nil {
		return nil
	}
	snap := &PreSnapshot{
		Schema: PreSnapshotSchema,
		SAPs:   len(sys.SAPs),
		Reads:  make([]ReadSnapshot, len(sys.Reads)),
		Waits:  make([][]SAPRef, len(sys.Waits)),
		Stats:  *sys.Pre,
	}
	for i := range sys.Reads {
		ri := &sys.Reads[i]
		snap.Reads[i] = ReadSnapshot{
			Cands:  append([]SAPRef(nil), ri.Cands...),
			Free:   ri.Free,
			NoInit: ri.NoInit,
		}
	}
	for i := range sys.Waits {
		snap.Waits[i] = append([]SAPRef(nil), sys.Waits[i].Cands...)
	}
	return snap
}

// subseq reports whether want is an order-preserving subsequence of have.
// Pruning only ever filters candidate lists in place, so a genuine
// snapshot of this system must pass; anything else is a stale or foreign
// cache entry.
func subseq(want, have []SAPRef) bool {
	j := 0
	for _, w := range want {
		for j < len(have) && have[j] != w {
			j++
		}
		if j == len(have) {
			return false
		}
		j++
	}
	return true
}

// ApplySnapshot replays a captured preprocessing result onto this system,
// reporting false — with the system untouched — when the snapshot does
// not match its shape. On success the system looks exactly as if
// Preprocess had run (sys.Pre set, Rivals preserving the full pre-pruning
// candidate sets), and Preprocess becomes a no-op.
func (sys *System) ApplySnapshot(snap *PreSnapshot) bool {
	if sys.Pre != nil || snap == nil || snap.Schema != PreSnapshotSchema {
		return false
	}
	if snap.SAPs != len(sys.SAPs) || len(snap.Reads) != len(sys.Reads) || len(snap.Waits) != len(sys.Waits) {
		return false
	}
	n := SAPRef(len(sys.SAPs))
	for i := range snap.Reads {
		for _, c := range snap.Reads[i].Cands {
			if c < 0 || c >= n {
				return false
			}
		}
		if !subseq(snap.Reads[i].Cands, sys.Reads[i].Cands) {
			return false
		}
	}
	for i := range snap.Waits {
		for _, c := range snap.Waits[i] {
			if c < 0 || c >= n {
				return false
			}
		}
		if !subseq(snap.Waits[i], sys.Waits[i].Cands) {
			return false
		}
	}
	for i := range snap.Reads {
		ri := &sys.Reads[i]
		ri.Rivals = ri.Cands
		ri.Cands = append([]SAPRef(nil), snap.Reads[i].Cands...)
		ri.Free = snap.Reads[i].Free
		ri.NoInit = snap.Reads[i].NoInit
	}
	for i := range snap.Waits {
		sys.Waits[i].Cands = append([]SAPRef(nil), snap.Waits[i]...)
	}
	st := snap.Stats
	sys.Pre = &st
	return true
}
