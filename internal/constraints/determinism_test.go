package constraints

import (
	"testing"

	"repro/internal/vm"
)

// TestFormulaDeterministic pins the rendered formula byte for byte across
// repeated calls. Regions is keyed by mutex in a map; before Formula
// ranged its keys sorted, a two-mutex system printed its lock sections in
// whatever order the runtime's map iteration produced, so the "same"
// system diffed against itself.
func TestFormulaDeterministic(t *testing.T) {
	src := `
int a;
int b;
mutex m1;
mutex m2;
func worker() {
	lock(m1);
	int t = a;
	a = t + 1;
	unlock(m1);
	lock(m2);
	int u = b;
	b = u + 1;
	unlock(m2);
}
func main() {
	int h;
	h = spawn worker();
	lock(m1);
	int t = a;
	a = t + 1;
	unlock(m1);
	lock(m2);
	int u = b;
	b = u + 1;
	unlock(m2);
	join(h);
	assert(a != 2 || b != 2, "both finished");
}
`
	r := findFailing(t, src, vm.SC, 3000)
	sys := buildSystem(t, r, vm.SC)
	if len(sys.Regions) < 2 {
		t.Fatalf("test needs >= 2 mutexes to expose map order, got %d", len(sys.Regions))
	}
	ms := sys.RegionMutexes()
	for i := 1; i < len(ms); i++ {
		if ms[i-1] >= ms[i] {
			t.Fatalf("RegionMutexes not sorted: %v", ms)
		}
	}
	want := sys.Formula()
	// Map iteration order changes between ranges, so a handful of calls is
	// enough to expose an unsorted render with high probability.
	for i := 0; i < 30; i++ {
		if got := sys.Formula(); got != want {
			t.Fatalf("Formula output varies between calls on the same system")
		}
	}
}
