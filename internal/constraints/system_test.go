package constraints

import (
	"strings"
	"testing"

	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// recorded bundles a recorded failing run with its global event order.
type recorded struct {
	prog   *ir.Program
	rec    *vm.PathRecorder
	res    *vm.Result
	global []vm.VisibleEvent
	shared []bool
}

func record(t *testing.T, src string, seed int64, model vm.MemModel) *recorded {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	esc := escape.Analyze(prog)
	rec, err := vm.NewPathRecorder(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := &recorded{prog: prog, rec: rec, shared: esc.Shared}
	machine, err := vm.New(prog, vm.Config{
		Model:        model,
		Sched:        vm.NewRandomScheduler(seed),
		Shared:       esc.Shared,
		PathRecorder: rec,
		OnVisible: func(ev vm.VisibleEvent) {
			if ev.Kind != vm.EvDrain {
				r.global = append(r.global, ev)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	r.res = res
	return r
}

func findFailing(t *testing.T, src string, model vm.MemModel, maxSeed int64) *recorded {
	t.Helper()
	for seed := int64(0); seed < maxSeed; seed++ {
		r := record(t, src, seed, model)
		if r.res.Failure != nil && r.res.Failure.Kind == vm.FailAssert {
			return r
		}
	}
	t.Fatalf("no failing seed in %d tries", maxSeed)
	return nil
}

func buildSystem(t *testing.T, r *recorded, model vm.MemModel) *System {
	t.Helper()
	an, err := symexec.Analyze(r.prog, r.rec.Paths, r.rec.Log, symexec.Options{
		Shared:  r.shared,
		Failure: symexec.FailureSpec{Thread: r.res.Failure.Thread, Site: r.res.Failure.Site},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Build(an, model)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// recordedOrder maps the global event stream to a SAP schedule, appending
// SAPs that exist in the analysis but never executed as events (the Start
// pseudo-SAPs of never-run threads) at the end.
func recordedOrder(sys *System, global []vm.VisibleEvent) []SAPRef {
	next := make([]int, len(sys.Threads))
	var order []SAPRef
	for _, ev := range global {
		refs := sys.Threads[ev.Thread]
		order = append(order, refs[next[ev.Thread]])
		next[ev.Thread]++
	}
	for tid, refs := range sys.Threads {
		for k := next[tid]; k < len(refs); k++ {
			order = append(order, refs[k])
		}
	}
	return order
}

const figure2SC = `
int x;
int y;
func t1() {
	int r1 = x;
	x = r1 + 1;
	int r2 = y;
	if (r2 > 0) {
		int r3 = x;
		assert(r3 > 0, "assert1");
	}
}
func main() {
	int h;
	h = spawn t1();
	x = 2;
	x = x - 3;
	y = 1;
	join(h);
}
`

func TestRecordedScheduleValidatesUnderSC(t *testing.T) {
	r := findFailing(t, figure2SC, vm.SC, 3000)
	sys := buildSystem(t, r, vm.SC)
	order := recordedOrder(sys, r.global)
	w, err := sys.ValidateSchedule(order)
	if err != nil {
		t.Fatalf("the recorded schedule itself must validate: %v", err)
	}
	// The witness read values must match what the VM actually read.
	next := make([]int, len(sys.Threads))
	for _, ev := range r.global {
		refs := sys.Threads[ev.Thread]
		s := sys.SAPs[refs[next[ev.Thread]]]
		next[ev.Thread]++
		if s.Kind == symexec.SAPRead {
			if got := w.Env[s.Sym.ID]; got != ev.Value {
				t.Fatalf("witness value for %s = %d, VM read %d", s, got, ev.Value)
			}
		}
	}
	if w.Switches == 0 {
		t.Error("a failing interleaving needs at least one context switch")
	}
}

func TestPerturbedScheduleRejected(t *testing.T) {
	r := findFailing(t, figure2SC, vm.SC, 3000)
	sys := buildSystem(t, r, vm.SC)
	order := recordedOrder(sys, r.global)

	// Reversing the whole schedule must violate something.
	rev := make([]SAPRef, len(order))
	for i, x := range order {
		rev[len(order)-1-i] = x
	}
	if _, err := sys.ValidateSchedule(rev); err == nil {
		t.Fatal("reversed schedule must be rejected")
	}

	// Wrong length and duplicates are rejected.
	if _, err := sys.ValidateSchedule(order[:len(order)-1]); err == nil {
		t.Fatal("short schedule must be rejected")
	}
	dup := append([]SAPRef(nil), order...)
	dup[0] = dup[1]
	if _, err := sys.ValidateSchedule(dup); err == nil {
		t.Fatal("duplicate entry must be rejected")
	}
}

const psoReorderSrc = `
int x;
int y;
func t2() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "write reorder observed");
	}
}
func main() {
	int h;
	h = spawn t2();
	x = 1;
	y = 1;
	join(h);
}
`

// TestPSOScheduleValidDifferentModels hand-builds the reordered schedule
// of Figure 2 (right): W(y) before W(x) in memory order. It must validate
// under the PSO encoding and be rejected under SC and TSO (which keep
// same-thread W→W order).
func TestPSOScheduleValidDifferentModels(t *testing.T) {
	r := findFailing(t, psoReorderSrc, vm.PSO, 3000)
	for _, tc := range []struct {
		model vm.MemModel
		want  bool
	}{
		{vm.PSO, true},
		{vm.TSO, false},
		{vm.SC, false},
	} {
		sys := buildSystem(t, r, tc.model)
		order := buildReorderedOrder(t, sys)
		_, err := sys.ValidateSchedule(order)
		if tc.want && err != nil {
			t.Errorf("%v: schedule should validate, got %v", tc.model, err)
		}
		if !tc.want && err == nil {
			t.Errorf("%v: write-reordered schedule must be rejected", tc.model)
		}
	}
}

// buildReorderedOrder constructs: main start, fork, W(y); t2 start, R(y),
// R(x); main W(x), join...; i.e. W(y) visible before W(x).
func buildReorderedOrder(t *testing.T, sys *System) []SAPRef {
	t.Helper()
	main := sys.Threads[0]
	t2 := sys.Threads[1]
	// Identify main's writes by variable.
	var wx, wy, fork, join SAPRef = -1, -1, -1, -1
	var mainStart, mainExit SAPRef = -1, -1
	for _, ref := range main {
		s := sys.SAPs[ref]
		switch {
		case s.Kind == symexec.SAPWrite && sys.An.Prog.Globals[s.Var].Name == "x":
			wx = ref
		case s.Kind == symexec.SAPWrite && sys.An.Prog.Globals[s.Var].Name == "y":
			wy = ref
		case s.Kind == symexec.SAPFork:
			fork = ref
		case s.Kind == symexec.SAPJoin:
			join = ref
		case s.Kind == symexec.SAPStart:
			mainStart = ref
		case s.Kind == symexec.SAPExit:
			mainExit = ref
		}
	}
	for _, ref := range []SAPRef{wx, wy, fork, mainStart} {
		if ref < 0 {
			t.Fatal("main SAPs not found")
		}
	}
	order := []SAPRef{mainStart, fork, wy}
	order = append(order, t2...) // start, R(y), R(x) [, assert has no SAP]
	order = append(order, wx)
	if join >= 0 {
		order = append(order, join)
	}
	if mainExit >= 0 {
		order = append(order, mainExit)
	}
	if len(order) != len(sys.SAPs) {
		t.Fatalf("constructed schedule covers %d of %d SAPs", len(order), len(sys.SAPs))
	}
	return order
}

func TestLockRegionsEnforced(t *testing.T) {
	src := `
int c;
mutex m;
func worker() {
	lock(m);
	int t = c;
	c = t + 1;
	unlock(m);
}
func main() {
	int h;
	h = spawn worker();
	lock(m);
	int t = c;
	c = t + 5;
	unlock(m);
	join(h);
	assert(c != 6, "both ran");
}
`
	r := findFailing(t, src, vm.SC, 3000)
	sys := buildSystem(t, r, vm.SC)
	order := recordedOrder(sys, r.global)
	if _, err := sys.ValidateSchedule(order); err != nil {
		t.Fatalf("recorded schedule must validate: %v", err)
	}
	// Interleave the two critical sections: find the two lock SAPs and the
	// matching unlocks, then move thread B's lock right after thread A's.
	var mu ir.SyncID
	for m := range sys.Regions {
		mu = m
	}
	regions := sys.Regions[mu]
	if len(regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(regions))
	}
	pos := map[SAPRef]int{}
	for i, ref := range order {
		pos[ref] = i
	}
	a, b := regions[0], regions[1]
	if pos[a.Lock] > pos[b.Lock] {
		a, b = b, a
	}
	// Move b.Lock to immediately after a.Lock (inside a's region).
	bad := make([]SAPRef, 0, len(order))
	for _, ref := range order {
		if ref == b.Lock {
			continue
		}
		bad = append(bad, ref)
		if ref == a.Lock {
			bad = append(bad, b.Lock)
		}
	}
	if _, err := sys.ValidateSchedule(bad); err == nil {
		t.Fatal("overlapping lock regions must be rejected")
	} else if !strings.Contains(err.Error(), "mutex") {
		t.Fatalf("expected a mutex violation, got: %v", err)
	}
}

func TestWaitNeedsSignal(t *testing.T) {
	src := `
int stage;
mutex m;
cond c;
func waiter() {
	lock(m);
	while (stage == 0) {
		wait(c, m);
	}
	unlock(m);
	assert(stage == 2, "stage jumped");
}
func main() {
	int h;
	h = spawn waiter();
	yield();
	lock(m);
	stage = 1;
	signal(c);
	unlock(m);
	join(h);
}
`
	var r *recorded
	for seed := int64(0); seed < 800; seed++ {
		cand := record(t, src, seed, vm.SC)
		if cand.res.Failure != nil && cand.res.Failure.Kind == vm.FailAssert {
			r = cand
			break
		}
	}
	if r == nil {
		t.Skip("no failing interleaving found")
	}
	sys := buildSystem(t, r, vm.SC)
	if len(sys.Waits) == 0 {
		t.Fatal("wait constraints missing")
	}
	order := recordedOrder(sys, r.global)
	if _, err := sys.ValidateSchedule(order); err != nil {
		t.Fatalf("recorded schedule must validate: %v", err)
	}
	// Move the signal after the wait-end: the wake has no eligible signal.
	wi := sys.Waits[0]
	sig := wi.Cands[0]
	pos := map[SAPRef]int{}
	for i, ref := range order {
		pos[ref] = i
	}
	if pos[sig] > pos[wi.End] {
		t.Skip("recorded order already has signal after end (different wait matched)")
	}
	bad := make([]SAPRef, 0, len(order))
	for _, ref := range order {
		if ref == sig {
			continue
		}
		bad = append(bad, ref)
		if ref == wi.End {
			bad = append(bad, sig)
		}
	}
	if _, err := sys.ValidateSchedule(bad); err == nil {
		t.Fatal("wait-end before its only signal must be rejected")
	}
}

func TestStatsShape(t *testing.T) {
	r := findFailing(t, figure2SC, vm.SC, 3000)
	sys := buildSystem(t, r, vm.SC)
	st := sys.ComputeStats()
	if st.SAPs != len(sys.SAPs) {
		t.Error("SAPs miscounted")
	}
	if st.ValueVars == 0 || st.Variables < st.SAPs+st.ValueVars {
		t.Errorf("variables = %+v", st)
	}
	if st.RWClauses == 0 || st.MOClauses == 0 || st.PathClauses < 2 {
		t.Errorf("clauses = %+v", st)
	}
	if st.Clauses != st.PathClauses+st.RWClauses+st.MOClauses+st.LockClauses+st.SignalClauses {
		t.Error("clause total inconsistent")
	}
	if st.String() == "" {
		t.Error("stats must render")
	}
	if sys.Formula() == "" {
		t.Error("formula must render")
	}
}

func TestReadCandidatesRespectAddresses(t *testing.T) {
	src := `
int a[4];
int b;
func child() {
	a[0] = 1;
	a[1] = 2;
	b = 3;
}
func main() {
	int h;
	h = spawn child();
	int v = a[0];
	int u = b;
	join(h);
	assert(v + u == 99, "always fails");
}
`
	r := findFailing(t, src, vm.SC, 50)
	sys := buildSystem(t, r, vm.SC)
	for _, ri := range sys.Reads {
		rs := sys.SAPs[ri.Read]
		name := sys.An.Prog.Globals[rs.Var].Name
		switch {
		case name == "a" && rs.Addr == sys.Layout.Base[rs.Var]:
			// a[0]: only the a[0] write is a candidate.
			if len(ri.Cands) != 1 {
				t.Errorf("a[0] read has %d candidates, want 1", len(ri.Cands))
			}
		case name == "b":
			if len(ri.Cands) != 1 {
				t.Errorf("b read has %d candidates, want 1", len(ri.Cands))
			}
		}
	}
}

func TestCountSwitchesSequentialIsZero(t *testing.T) {
	src := `
int x;
func main() {
	x = 1;
	int v = x;
	assert(v == 0, "always fails");
}
`
	r := findFailing(t, src, vm.SC, 5)
	sys := buildSystem(t, r, vm.SC)
	order := recordedOrder(sys, r.global)
	sw, pre := sys.CountSwitches(order)
	if sw != 0 || pre != 0 {
		t.Errorf("single-thread schedule: switches=%d preemptions=%d, want 0,0", sw, pre)
	}
}
