package constraints

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/symbolic"
	"repro/internal/symexec"
)

// PreStats reports what the preprocessing pass removed. The counts are the
// paper's §4.1 story told from the other side: the constraint families are
// quadratic/cubic in candidate-set sizes, so every candidate pruned here
// is removed work in every backend.
type PreStats struct {
	// Reads is the total read count; FreeReads of them fell outside the
	// cone of influence of Fbug ∧ Fpath.
	Reads     int
	FreeReads int
	// CandsBefore/CandsAfter count read→write candidate edges before and
	// after pruning, split by rule.
	CandsBefore    int
	CandsAfter     int
	PrunedOrder    int // read →* write in the hard order
	PrunedShadowed int // a definitely-same-address write always intervenes
	PrunedLock     int // lock-region dominance kills both serializations
	PrunedMutex    int // mutual exclusion: every serialization shadows or reorders the write
	// NoInitReads counts reads whose initial-value choice was pruned.
	NoInitReads int
	// Wait→signal candidate edges before and after pruning.
	WaitCandsBefore int
	WaitCandsAfter  int
	// ClosureSkipped is set when the system was too large for the
	// reachability closure; only cone-of-influence marking ran.
	ClosureSkipped bool
	// Elapsed is the pass's wall time.
	Elapsed time.Duration
}

// String renders the report in one line.
func (p *PreStats) String() string {
	return fmt.Sprintf("preprocess: %d/%d read candidates pruned (order %d, shadowed %d, lock %d, mutex %d), %d/%d reads free, %d no-init, %d/%d wait candidates pruned, %v",
		p.CandsBefore-p.CandsAfter, p.CandsBefore, p.PrunedOrder, p.PrunedShadowed, p.PrunedLock, p.PrunedMutex,
		p.FreeReads, p.Reads, p.NoInitReads,
		p.WaitCandsBefore-p.WaitCandsAfter, p.WaitCandsBefore, p.Elapsed.Round(time.Microsecond))
}

// maxClosureSAPs bounds the bitset reachability closure (quadratic in
// memory): beyond it the pass degrades to cone-of-influence marking only.
const maxClosureSAPs = 16384

// Preprocess simplifies the system once, for every backend: it prunes
// read→write candidates that cannot be any schedule's last writer, marks
// reads outside the cone of influence of Fbug ∧ Fpath as Free, prunes
// unobservable initial-value choices and infeasible wait→signal
// candidates, and records reduction stats in sys.Pre. It is idempotent.
//
// Every rule is justified against the semantic ground truth
// (ValidateSchedule), which derives read values from the schedule alone
// and therefore cannot be affected by candidate pruning: the pass never
// changes which schedules are models, only how much work solvers spend
// finding one.
//
// Call it after all hard edges exist (i.e. after BuildWithSyncOrder's
// extra edges, when that entry point is used): the closure is computed
// from the hard-edge set at call time.
func (sys *System) Preprocess() *PreStats { return sys.PreprocessObs(nil) }

// PreprocessObs is Preprocess with span-level observability: each pruning
// rule runs under its own child span of sp, so a trace shows where the
// pass's time went. A nil sp records nothing and costs nothing.
func (sys *System) PreprocessObs(sp *obs.Span) *PreStats {
	if sys.Pre != nil {
		return sys.Pre
	}
	start := time.Now()
	st := &PreStats{Reads: len(sys.Reads)}

	csp := sp.Start("preprocess.closure")
	r := newReach(sys)
	st.ClosureSkipped = r == nil
	csp.SetAttr("skipped", strconv.FormatBool(st.ClosureSkipped))
	csp.End()

	rsp := sp.Start("preprocess.prune.reads")
	if r != nil {
		sys.pruneCandidates(r, st)
	} else {
		sys.pruneCandidatesNoClosure(st)
	}
	rsp.SetInt("pruned", int64(st.CandsBefore-st.CandsAfter))
	rsp.End()

	wsp := sp.Start("preprocess.prune.waits")
	if r != nil {
		sys.pruneWaitCandidates(r, st)
	} else {
		for i := range sys.Waits {
			st.WaitCandsBefore += len(sys.Waits[i].Cands)
			st.WaitCandsAfter += len(sys.Waits[i].Cands)
		}
	}
	wsp.SetInt("pruned", int64(st.WaitCandsBefore-st.WaitCandsAfter))
	wsp.End()

	fsp := sp.Start("preprocess.free.reads")
	sys.markFreeReads(st)
	fsp.SetInt("free", int64(st.FreeReads))
	fsp.End()

	st.Elapsed = time.Since(start)
	sys.Pre = st
	return st
}

// reach is the transitive closure of the hard order edges as one bitset
// row per SAP: bit b of row a means a strictly precedes b in every
// schedule.
type reach struct {
	words int
	bits  []uint64
}

func (r *reach) reaches(a, b SAPRef) bool {
	return r.bits[int(a)*r.words+int(b)>>6]&(1<<(uint(b)&63)) != 0
}

// newReach computes the closure, or returns nil when the system is too
// large or the hard edges are (degenerately) cyclic.
func newReach(sys *System) *reach {
	n := len(sys.SAPs)
	if n == 0 || n > maxClosureSAPs {
		return nil
	}
	adj := make([][]SAPRef, n)
	indeg := make([]int, n)
	for _, e := range sys.HardEdges {
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	// Kahn topological order.
	order := make([]SAPRef, 0, n)
	queue := make([]SAPRef, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, SAPRef(i))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, w := range adj[v] {
			if indeg[w]--; indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil // cyclic hard edges: unsatisfiable; let the solvers report it
	}
	r := &reach{words: (n + 63) / 64, bits: make([]uint64, n*((n+63)/64))}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		row := r.bits[int(v)*r.words : (int(v)+1)*r.words]
		for _, w := range adj[v] {
			row[int(w)>>6] |= 1 << (uint(w) & 63)
			succ := r.bits[int(w)*r.words : (int(w)+1)*r.words]
			for k := range row {
				row[k] |= succ[k]
			}
		}
	}
	return r
}

// pregion is a flattened lock region for the dominance rule.
type pregion struct {
	lock, unlock SAPRef
	hasUnlock    bool
	thread       int
	mutex        int
}

// pruneCandidates applies the three candidate-pruning rules and the
// no-init rule to every read. Cands shrinks; Rivals keeps the full set.
func (sys *System) pruneCandidates(r *reach, st *PreStats) {
	regs, regionsOf := sys.regionIndex(r)

	// shadowKilled reports whether candidate w is dead in the "Rw wholly
	// before Rr" serialization of a cross-thread region pair: a
	// definitely-same-address write w' trapped between w and Rw's unlock
	// intervenes before the read in that serialization.
	shadowInRegion := func(read *symexec.SAP, rivals []SAPRef, w SAPRef, reg *pregion) bool {
		for _, w2 := range rivals {
			if w2 == w {
				continue
			}
			if def, _ := sameAddr(sys.SAPs[w2], read); !def {
				continue
			}
			if r.reaches(w, w2) && r.reaches(w2, reg.unlock) {
				return true
			}
		}
		return false
	}

	// readSideShadow is the mutual-exclusion rule's second disjunct: a
	// definitely-same-address write w3 trapped between the read's region
	// lock and the read itself. In the "write's region first" serialization
	// of the region pair, w precedes that lock, so w3 shadows it.
	readSideShadow := func(read *symexec.SAP, rivals []SAPRef, w SAPRef, readReg *pregion, ri *ReadInfo) bool {
		for _, w3 := range rivals {
			if w3 == w {
				continue
			}
			if def, _ := sameAddr(sys.SAPs[w3], read); !def {
				continue
			}
			if r.reaches(readReg.lock, w3) && r.reaches(w3, ri.Read) {
				return true
			}
		}
		return false
	}

	for i := range sys.Reads {
		ri := &sys.Reads[i]
		ri.Rivals = ri.Cands
		st.CandsBefore += len(ri.Cands)
		read := sys.SAPs[ri.Read]

		kept := make([]SAPRef, 0, len(ri.Cands))
	cand:
		for _, w := range ri.Cands {
			// Rule 1 (program order): the read unconditionally precedes the
			// write, so the write can never be before the read.
			if r.reaches(ri.Read, w) {
				st.PrunedOrder++
				continue
			}
			// Rule 2 (shadowing): a definitely-same-address write w' is
			// unconditionally between w and the read, so w is never the last
			// writer.
			for _, w2 := range ri.Rivals {
				if def, _ := sameAddr(sys.SAPs[w2], read); !def {
					continue
				}
				if r.reaches(w, w2) && r.reaches(w2, ri.Read) {
					st.PrunedShadowed++
					continue cand
				}
			}
			// Rule 3 (lock-region dominance): the write and the read sit in
			// cross-thread regions of the same mutex. The regions serialize
			// one way or the other; "read's region first" puts the read
			// before the write, and "write's region first" is dead when the
			// write's region is open (it must come last) or a
			// definitely-same-address write shadows w inside it.
			for _, pw := range regionsOf[w] {
				rw := &regs[pw]
				for _, pr := range regionsOf[ri.Read] {
					rr := &regs[pr]
					if pw == pr || rw.mutex != rr.mutex || rw.thread == rr.thread {
						continue
					}
					if !rw.hasUnlock || shadowInRegion(read, ri.Rivals, w, rw) {
						st.PrunedLock++
						continue cand
					}
					// Rule 4 (mutual exclusion, read side): the regions
					// serialize one way or the other. "Read's region first"
					// puts the read before w (rw is closed, so the order is
					// read ≤ unlock(Rr) < lock(Rw) ≤ w, or Rr is open and
					// this serialization cannot happen at all). "Write's
					// region first" puts w before lock(Rr), where a
					// definitely-same-address write between lock(Rr) and the
					// read shadows it. Either way w is never the last writer.
					if readSideShadow(read, ri.Rivals, w, rr, ri) {
						st.PrunedMutex++
						continue cand
					}
				}
			}
			kept = append(kept, w)
		}
		ri.Cands = kept
		st.CandsAfter += len(kept)

		// No-init: a definitely-same-address write unconditionally precedes
		// the read, so the initial value is unobservable.
		for _, w := range ri.Rivals {
			if def, _ := sameAddr(sys.SAPs[w], read); !def {
				continue
			}
			if r.reaches(w, ri.Read) {
				ri.NoInit = true
				st.NoInitReads++
				break
			}
		}
	}
}

// pruneCandidatesNoClosure is the mutual-exclusion rule for systems too
// large for the reachability closure. It needs no closure because the
// containments it uses are same-thread program order, which the hard
// edges enforce under every memory model (lock/unlock are fences: a
// write's order variable is pinned after the region's lock and a read's
// before its unlock). A cross-thread candidate w is dead when the static
// lockset analysis proves both accesses hold a mutex m and w's enclosing
// region of m is open: the open region must serialize last, so the read
// precedes w in every schedule.
func (sys *System) pruneCandidatesNoClosure(st *PreStats) {
	for i := range sys.Reads {
		ri := &sys.Reads[i]
		ri.Rivals = ri.Cands
		st.CandsBefore += len(ri.Cands)
		read := sys.SAPs[ri.Read]
		kept := make([]SAPRef, 0, len(ri.Cands))
	cand:
		for _, w := range ri.Cands {
			ws := sys.SAPs[w]
			if ws.Thread != read.Thread {
				common := ws.MustLocks.Inter(read.MustLocks)
				for m, regions := range sys.Regions {
					if !common.Has(m) {
						continue
					}
					wOpen, rIn := false, false
					for j := range regions {
						reg := &regions[j]
						if !reg.HasUnlock && sys.poInRegion(w, reg) {
							wOpen = true
						}
						if sys.poInRegion(ri.Read, reg) {
							rIn = true
						}
					}
					if wOpen && rIn {
						st.PrunedMutex++
						continue cand
					}
				}
			}
			kept = append(kept, w)
		}
		ri.Cands = kept
		st.CandsAfter += len(kept)
	}
}

// poInRegion reports whether SAP s sits inside the region in its thread's
// program (Seq) order.
func (sys *System) poInRegion(s SAPRef, reg *Region) bool {
	sp, lk := sys.SAPs[s], sys.SAPs[reg.Lock]
	if sp.Thread != lk.Thread || sp.Seq <= lk.Seq {
		return false
	}
	return !reg.HasUnlock || sp.Seq < sys.SAPs[reg.Unlock].Seq
}

// regionIndex flattens Regions and computes, for every SAP, the regions
// that unconditionally contain it: reaches(lock, s) and (for closed
// regions) reaches(s, unlock). Reachability-based containment is exactly
// what the dominance argument needs — it holds in every schedule, not
// just program order.
func (sys *System) regionIndex(r *reach) ([]pregion, [][]int32) {
	var regs []pregion
	for m, regions := range sys.Regions {
		for _, reg := range regions {
			regs = append(regs, pregion{
				lock: reg.Lock, unlock: reg.Unlock, hasUnlock: reg.HasUnlock,
				thread: int(reg.Thread), mutex: int(m),
			})
		}
	}
	regionsOf := make([][]int32, len(sys.SAPs))
	if len(regs) == 0 {
		return regs, regionsOf
	}
	for s := range sys.SAPs {
		if !sys.SAPs[s].Kind.IsMemory() {
			continue
		}
		for gi := range regs {
			g := &regs[gi]
			if !r.reaches(g.lock, SAPRef(s)) {
				continue
			}
			if g.hasUnlock && !r.reaches(SAPRef(s), g.unlock) {
				continue
			}
			regionsOf[s] = append(regionsOf[s], int32(gi))
		}
	}
	return regs, regionsOf
}

// pruneWaitCandidates drops signals that can never wake a wait: a signal
// ordered after the wait's end, or before its begin, is outside the
// (begin, end) window in every schedule.
func (sys *System) pruneWaitCandidates(r *reach, st *PreStats) {
	for i := range sys.Waits {
		wi := &sys.Waits[i]
		st.WaitCandsBefore += len(wi.Cands)
		kept := wi.Cands[:0:0]
		for _, sg := range wi.Cands {
			if r.reaches(wi.End, sg) || r.reaches(sg, wi.Begin) {
				continue
			}
			kept = append(kept, sg)
		}
		wi.Cands = kept
		st.WaitCandsAfter += len(kept)
	}
}

// markFreeReads computes the cone of influence of Fbug ∧ Fpath and marks
// every read outside it Free. The cone seeds with the symbols of every
// path condition, the bug predicate and every SAP's address expression,
// then closes over candidate-write value expressions: a needed read's
// value can only come from one of its (post-pruning) candidate writes or
// the initial value, so only those writes' dependencies join the cone.
func (sys *System) markFreeReads(st *PreStats) {
	readIdx := make(map[symbolic.SymID]int, len(sys.Reads))
	for i := range sys.Reads {
		readIdx[sys.SAPs[sys.Reads[i].Read].Sym.ID] = i
	}
	needed := make([]bool, len(sys.Reads))
	var queue []int
	mark := func(ids []symbolic.SymID) {
		for _, id := range ids {
			if ri, ok := readIdx[id]; ok && !needed[ri] {
				needed[ri] = true
				queue = append(queue, ri)
			}
		}
	}
	for _, c := range sys.Path {
		mark(symbolic.Syms(c, nil, nil))
	}
	if sys.Bug != nil {
		mark(symbolic.Syms(sys.Bug, nil, nil))
	}
	for _, s := range sys.SAPs {
		if s.AddrIndex != nil {
			mark(symbolic.Syms(s.AddrIndex, nil, nil))
		}
	}
	for len(queue) > 0 {
		ri := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range sys.Reads[ri].Cands {
			mark(symbolic.Syms(sys.SAPs[w].Val, nil, nil))
		}
	}
	for i := range sys.Reads {
		if !needed[i] {
			sys.Reads[i].Free = true
			st.FreeReads++
		}
	}
}
