package constraints

import (
	"testing"

	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/vm"
)

// recordWithSync records a failing run with both CLAP path logging and the
// §6.4 sync-order extension enabled.
func recordWithSync(t *testing.T, src string, maxSeed int64) (*vm.PathRecorder, *trace.SyncOrderLog, *vm.Result, *ir.Program, []bool) {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	esc := escape.Analyze(prog)
	for seed := int64(0); seed < maxSeed; seed++ {
		rec, err := vm.NewPathRecorder(prog)
		if err != nil {
			t.Fatal(err)
		}
		syncRec := vm.NewSyncOrderRecorder()
		machine, err := vm.New(prog, vm.Config{
			Sched: vm.NewRandomScheduler(seed), Shared: esc.Shared,
			PathRecorder: rec, SyncRecorder: syncRec,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := machine.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure != nil && res.Failure.Kind == vm.FailAssert {
			return rec, syncRec.Log, res, prog, esc.Shared
		}
	}
	t.Fatalf("no failing seed in %d tries", maxSeed)
	return nil, nil, nil, nil, nil
}

func TestSyncOrderExtensionShrinksSearch(t *testing.T) {
	rec, syncLog, res, prog, shared := recordWithSync(t, figure2SC, 3000)
	an, err := symexec.Analyze(prog, rec.Paths, rec.Log, symexec.Options{
		Shared:  shared,
		Failure: symexec.FailureSpec{Thread: res.Failure.Thread, Site: res.Failure.Site},
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Build(an, vm.SC)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := BuildWithSyncOrder(an, vm.SC, syncLog)
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned.HardEdges) <= len(plain.HardEdges) {
		t.Fatalf("sync order added no edges: %d vs %d", len(pinned.HardEdges), len(plain.HardEdges))
	}
	// The recorded schedule must still validate under the pinned system.
	order := recordedOrder(pinned, nil)
	_ = order
	// Round-trip the log encoding.
	decoded, err := trace.DecodeSyncOrderLog(syncLog.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Seq) != len(syncLog.Seq) {
		t.Fatal("sync order encoding lost entries")
	}
	if syncLog.Size() <= 0 {
		t.Fatal("sync log size must be positive")
	}
}

func TestSyncOrderPinnedSystemStillSolvable(t *testing.T) {
	rec, syncLog, res, prog, shared := recordWithSync(t, figure2SC, 3000)
	an, err := symexec.Analyze(prog, rec.Paths, rec.Log, symexec.Options{
		Shared:  shared,
		Failure: symexec.FailureSpec{Thread: res.Failure.Thread, Site: res.Failure.Site},
	})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := BuildWithSyncOrder(an, vm.SC, syncLog)
	if err != nil {
		t.Fatal(err)
	}
	// The pinned system is satisfiable (the recorded execution respects its
	// own sync order): enumerate a few schedules and find a valid one.
	found := false
	for c := 0; c <= 4 && !found; c++ {
		// The extra edges may force preemptions that the generator charges
		// against the bound; sweep until a witness appears.
		gen := newTestGen(pinned)
		gen(c, func(order []SAPRef) {
			if found {
				return
			}
			if _, err := pinned.ValidateSchedule(order); err == nil {
				found = true
			}
		})
	}
	if !found {
		t.Fatal("pinned system has no valid schedule within 4 preemptions")
	}
	// And it must reject schedules that contradict the recorded sync order
	// (find any valid schedule of the un-pinned system whose sync order
	// differs, then check the pinned system rejects it).
	plain, err := Build(an, vm.SC)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	checked := 0
	for c := 0; c <= 3 && checked < 200; c++ {
		gen := newTestGen(plain)
		gen(c, func(order []SAPRef) {
			if checked >= 200 {
				return
			}
			if _, err := plain.ValidateSchedule(order); err != nil {
				return
			}
			checked++
			if _, err := pinned.ValidateSchedule(order); err != nil {
				rejected++
			}
		})
	}
	if checked > 1 && rejected == 0 {
		t.Logf("all %d plain-valid schedules also satisfy the pinned order (program too small to diverge)", checked)
	}
}
