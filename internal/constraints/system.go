// Package constraints encodes CLAP's execution constraint system
//
//	F = Fpath ∧ Fbug ∧ Fso ∧ Frw ∧ Fmo
//
// over two kinds of unknowns: the symbolic values returned by shared reads
// (created by internal/symexec) and one order variable per SAP. A model of
// F is a total order of the SAPs — a schedule — plus a value for every
// read, such that replaying the schedule reproduces the failure.
//
// The encoding follows §3 of the paper:
//
//   - Fpath: the per-thread path conditions (plus assertions that passed).
//   - Fbug: the negated failing assertion.
//   - Fso: fork<start and exit<join edges; mutual exclusion of lock
//     regions; and signal/wait mapping with per-signal cardinality one.
//   - Frw: every read maps to a same-address write with no intervening
//     same-address write, or to the initial value with every write after.
//   - Fmo: per-memory-model program-order retention — SC keeps everything;
//     TSO keeps R→R, W→W, R→W and same-address W→R; PSO further drops
//     W→W across different addresses.
//
// Two deliberate strengthenings of the paper's §3.2 presentation, both
// matching the real SPARC models and both required for causality (no
// out-of-thin-air values): TSO/PSO keep the R→W program order (a store
// never overtakes an earlier load) and PSO keeps R→R (SPARC PSO does not
// relax load ordering). With them, every SAP's value/address expression
// only depends on reads earlier in the order, so a schedule can be
// validated by a single forward pass (ValidateSchedule).
package constraints

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/symbolic"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/vm"
)

// SAPRef is a dense index into System.SAPs.
type SAPRef int32

// System is the encoded constraint system.
type System struct {
	An    *symexec.Analysis
	Model vm.MemModel

	// SAPs is the dense SAP table; Threads[tid] lists each thread's SAPs
	// in program order.
	SAPs    []*symexec.SAP
	Threads [][]SAPRef

	// HardEdges are unconditional order requirements a < b: the memory
	// order Fmo plus the fork/start and exit/join edges of Fso.
	HardEdges [][2]SAPRef

	// Reads holds the Frw structure: one entry per read SAP.
	Reads []ReadInfo

	// Regions holds the locking structure per mutex for Fso.
	Regions map[ir.SyncID][]Region

	// Waits holds the signal-mapping structure per completed wait.
	Waits []WaitInfo

	// Path is Fpath (all threads' conjuncts); Bug is Fbug.
	Path []symbolic.Expr
	Bug  symbolic.Expr

	// Layout gives flat addresses for memory simulation.
	Layout *ir.Layout

	// Pre holds the preprocessing report once Preprocess has run (nil
	// before). All backends share the preprocessed structure.
	Pre *PreStats

	refOf map[*symexec.SAP]SAPRef

	// scratch holds the pooled validation state. ValidateSchedule and
	// CountSwitches run millions of times under the parallel backend, so
	// their per-call state is recycled instead of reallocated; the pool
	// and caches are safe for concurrent validators. Adding sync state
	// makes System non-copyable, which it already was in spirit (refOf,
	// shared slices).
	scratch validateScratch
}

// ReadInfo lists the candidate writes a read may map to.
type ReadInfo struct {
	Read SAPRef
	// Cands are writes to the same variable whose address may equal the
	// read's (definitely-equal when both concrete). Writes by any thread,
	// including the reader. Preprocess may shrink this set; the pruned
	// writes provably cannot be the read's last writer in any schedule.
	Cands []SAPRef
	// Rivals is the full pre-pruning candidate set. Same-address interval
	// constraints ("no rival write between the mapped write and the read")
	// must range over Rivals: a write pruned as un-mappable still exists in
	// every schedule and still must stay outside the interval. Nil until
	// Preprocess runs; use AllRivals.
	Rivals []SAPRef
	// Init is the variable's initial value, the value the read returns
	// when it precedes every same-address write.
	Init int64
	// NoInit is set by Preprocess when some definitely-same-address write
	// unconditionally precedes the read: the initial value is unobservable.
	NoInit bool
	// Free is set by Preprocess when the read lies outside the cone of
	// influence of Fpath ∧ Fbug: its value feeds no path condition, no bug
	// predicate, no address expression and no cone write's value, so
	// solvers need not decide its mapping at all — any schedule position
	// yields a value the remaining constraints never observe.
	Free bool
}

// AllRivals returns the full same-variable rival write set: the
// pre-pruning candidate list when Preprocess has run, Cands otherwise.
func (ri *ReadInfo) AllRivals() []SAPRef {
	if ri.Rivals != nil {
		return ri.Rivals
	}
	return ri.Cands
}

// Region is one lock region [Lock, Unlock] on a mutex. HasUnlock is false
// when the thread still held the lock at the failure: the region never
// closes.
type Region struct {
	Thread    trace.ThreadID
	Lock      SAPRef
	Unlock    SAPRef
	HasUnlock bool
}

// WaitInfo is a completed wait (its begin and end halves) plus the
// signal/broadcast SAPs that may have woken it.
type WaitInfo struct {
	Begin, End SAPRef
	// Cands are signal or broadcast SAPs on the same condition variable by
	// other threads.
	Cands []SAPRef
}

// Ref returns the dense index of s.
func (sys *System) Ref(s *symexec.SAP) SAPRef { return sys.refOf[s] }

// SAP returns the SAP at ref.
func (sys *System) SAP(r SAPRef) *symexec.SAP { return sys.SAPs[r] }

// RegionMutexes returns the keys of sys.Regions in increasing mutex
// order. Regions is a map, so every consumer whose behaviour depends on
// iteration order — solver decision agendas, CNF variable numbering,
// rendered formulas — must range over this instead of the map, or the
// same system solves (and prints) differently run to run.
func (sys *System) RegionMutexes() []ir.SyncID {
	ms := make([]ir.SyncID, 0, len(sys.Regions))
	for m := range sys.Regions {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return ms
}

// BuildWithSyncOrder encodes the system and additionally pins the recorded
// global synchronization order (the paper's §6.4 extension): entry k of
// order names the thread whose next synchronization SAP executed k-th.
// The extra hard edges shrink the schedule search dramatically — the
// ablation benchmarks quantify by how much — at the price of the runtime
// synchronization the recorder needed.
func BuildWithSyncOrder(an *symexec.Analysis, model vm.MemModel, order *trace.SyncOrderLog) (*System, error) {
	sys, err := Build(an, model)
	if err != nil {
		return nil, err
	}
	if order == nil || len(order.Seq) == 0 {
		return sys, nil
	}
	cursor := make([]int, len(sys.Threads))
	nextSync := func(t trace.ThreadID) (SAPRef, error) {
		refs := sys.Threads[t]
		for cursor[t] < len(refs) {
			r := refs[cursor[t]]
			cursor[t]++
			if sys.SAPs[r].Kind.IsSync() {
				return r, nil
			}
		}
		return -1, fmt.Errorf("constraints: sync order names thread %d beyond its recorded syncs", t)
	}
	var prev SAPRef = -1
	for _, t := range order.Seq {
		if int(t) >= len(sys.Threads) {
			return nil, fmt.Errorf("constraints: sync order names unknown thread %d", t)
		}
		r, err := nextSync(t)
		if err != nil {
			return nil, err
		}
		if prev >= 0 {
			sys.edge(prev, r)
		}
		prev = r
	}
	return sys, nil
}

// Build encodes the constraint system for an analysis under a memory model.
func Build(an *symexec.Analysis, model vm.MemModel) (*System, error) {
	sys := &System{
		An:      an,
		Model:   model,
		Regions: map[ir.SyncID][]Region{},
		Layout:  ir.NewLayout(an.Prog),
		refOf:   map[*symexec.SAP]SAPRef{},
		Bug:     an.Bug,
	}
	for _, tt := range an.Threads {
		var refs []SAPRef
		for _, s := range tt.SAPs {
			r := SAPRef(len(sys.SAPs))
			sys.SAPs = append(sys.SAPs, s)
			sys.refOf[s] = r
			refs = append(refs, r)
		}
		sys.Threads = append(sys.Threads, refs)
		sys.Path = append(sys.Path, tt.PathCond...)
	}
	if err := sys.buildMemoryOrder(); err != nil {
		return nil, err
	}
	if err := sys.buildSyncOrder(); err != nil {
		return nil, err
	}
	sys.buildReadWrite()
	return sys, nil
}

// edge adds a hard order edge a < b.
func (sys *System) edge(a, b SAPRef) {
	sys.HardEdges = append(sys.HardEdges, [2]SAPRef{a, b})
}

// sameAddrDefinitely reports whether two memory SAPs definitely access the
// same address; maybe reports whether they possibly do (symbolic indices).
func sameAddr(a, b *symexec.SAP) (definitely, maybe bool) {
	if a.Var != b.Var {
		return false, false
	}
	if a.Addr != symexec.NoAddr && b.Addr != symexec.NoAddr {
		eq := a.Addr == b.Addr
		return eq, eq
	}
	return false, true
}

// buildMemoryOrder encodes Fmo.
func (sys *System) buildMemoryOrder() error {
	for _, refs := range sys.Threads {
		switch sys.Model {
		case vm.SC:
			for i := 0; i+1 < len(refs); i++ {
				sys.edge(refs[i], refs[i+1])
			}
		case vm.TSO, vm.PSO:
			sys.buildRelaxedOrder(refs)
		default:
			return fmt.Errorf("constraints: unknown memory model %v", sys.Model)
		}
	}
	return nil
}

// isFence reports whether a SAP kind drains the store buffer in the VM's
// relaxed execution: lock acquisition and release (real lock
// implementations include barriers — the reason the paper's relaxed bugs
// only live in lock-free code), both wait halves, explicit fences, and
// thread exit. Yield, spawn/start, join, signal and broadcast do NOT drain:
// a buffered store may become visible after them, and the encoding must
// admit exactly those executions or the recorded relaxed failure becomes
// infeasible.
func isFence(k symexec.SAPKind) bool {
	switch k {
	case symexec.SAPLock, symexec.SAPUnlock, symexec.SAPWaitBegin,
		symexec.SAPWaitEnd, symexec.SAPFence, symexec.SAPExit:
		return true
	}
	return false
}

// buildRelaxedOrder encodes the TSO/PSO per-thread order retention, exactly
// matching the store-buffer semantics of the VM:
//
//   - Reads and all synchronization operations execute in program order:
//     they form one "execution chain".
//   - A write is issued after the execution chain reaches it (R→W, S→W),
//     drains FIFO per thread under TSO (total W→W) or FIFO per address
//     under PSO (same-address W→W), must drain before the next fencing
//     sync (W→fence), and before any later same-address read of its own
//     thread observes it (the paper's same-address W→R rule).
//   - W→R across addresses and W→(non-fencing sync) are relaxed — the
//     store-buffer reorderings under study.
func (sys *System) buildRelaxedOrder(refs []SAPRef) {
	var lastExec SAPRef = -1  // last read or sync (execution chain)
	var lastWrite SAPRef = -1 // TSO: total write chain
	var pending []SAPRef      // writes issued since the last fence
	// lastSameAddrWrite scans the unfenced region for the most recent
	// possibly-same-address write (conservative for symbolic indices).
	lastSameAddrWrite := func(mem *symexec.SAP) SAPRef {
		for j := len(pending) - 1; j >= 0; j-- {
			p := sys.SAPs[pending[j]]
			if def, maybe := sameAddr(p, mem); def || maybe {
				return pending[j]
			}
		}
		return -1
	}
	for _, r := range refs {
		s := sys.SAPs[r]
		switch {
		case s.Kind == symexec.SAPRead:
			if lastExec >= 0 {
				sys.edge(lastExec, r) // R→R, S→R
			}
			if w := lastSameAddrWrite(s); w >= 0 {
				sys.edge(w, r) // same-address W→R (store forwarding order)
			}
			lastExec = r
		case s.Kind == symexec.SAPWrite:
			if lastExec >= 0 {
				sys.edge(lastExec, r) // R→W, S→W: issue follows execution
			}
			if sys.Model == vm.TSO {
				if lastWrite >= 0 {
					sys.edge(lastWrite, r) // FIFO buffer: total W→W
				}
				lastWrite = r
			} else if w := lastSameAddrWrite(s); w >= 0 {
				sys.edge(w, r) // per-address FIFO under PSO
			}
			pending = append(pending, r)
		case isFence(s.Kind):
			if lastExec >= 0 {
				sys.edge(lastExec, r)
			}
			for _, w := range pending {
				sys.edge(w, r) // the fence drains every pending store
			}
			pending = pending[:0]
			lastWrite = -1
			lastExec = r
		default: // non-fencing sync: ordered in the execution chain only
			if lastExec >= 0 {
				sys.edge(lastExec, r)
			}
			lastExec = r
		}
	}
}

// buildSyncOrder encodes Fso: fork/start, exit/join, lock regions, and
// wait/signal candidates.
func (sys *System) buildSyncOrder() error {
	// fork < start, exit < join.
	starts := make([]SAPRef, len(sys.Threads))
	exits := make([]SAPRef, len(sys.Threads))
	for i := range starts {
		starts[i], exits[i] = -1, -1
	}
	for _, refs := range sys.Threads {
		for _, r := range refs {
			s := sys.SAPs[r]
			switch s.Kind {
			case symexec.SAPStart:
				starts[s.Thread] = r
			case symexec.SAPExit:
				exits[s.Thread] = r
			}
		}
	}
	for _, refs := range sys.Threads {
		for _, r := range refs {
			s := sys.SAPs[r]
			switch s.Kind {
			case symexec.SAPFork:
				if int(s.Other) < len(starts) && starts[s.Other] >= 0 {
					sys.edge(r, starts[s.Other])
				}
			case symexec.SAPJoin:
				if int(s.Other) >= len(exits) || exits[s.Other] < 0 {
					return fmt.Errorf("constraints: join of thread %d which never exited", s.Other)
				}
				sys.edge(exits[s.Other], r)
			}
		}
	}

	// Lock regions per mutex per thread: acquires are Lock/WaitEnd,
	// releases are Unlock/WaitBegin, paired in program order.
	type openRegion struct {
		lock SAPRef
	}
	for tid, refs := range sys.Threads {
		open := map[ir.SyncID]*openRegion{}
		for _, r := range refs {
			s := sys.SAPs[r]
			switch s.Kind {
			case symexec.SAPLock, symexec.SAPWaitEnd:
				if open[s.Mutex] != nil {
					return fmt.Errorf("constraints: thread %d reacquires held mutex m%d", tid, s.Mutex)
				}
				open[s.Mutex] = &openRegion{lock: r}
			case symexec.SAPUnlock, symexec.SAPWaitBegin:
				o := open[s.Mutex]
				if o == nil {
					return fmt.Errorf("constraints: thread %d releases unheld mutex m%d", tid, s.Mutex)
				}
				sys.Regions[s.Mutex] = append(sys.Regions[s.Mutex], Region{
					Thread: trace.ThreadID(tid), Lock: o.lock, Unlock: r, HasUnlock: true,
				})
				delete(open, s.Mutex)
			}
		}
		for m, o := range open {
			sys.Regions[m] = append(sys.Regions[m], Region{
				Thread: trace.ThreadID(tid), Lock: o.lock, HasUnlock: false,
			})
		}
	}

	// Wait/signal mapping: every completed wait needs a signal/broadcast
	// on its condition variable from another thread, ordered inside
	// (begin, end).
	for tid, refs := range sys.Threads {
		var begin SAPRef = -1
		byCond := map[ir.SyncID]SAPRef{}
		_ = begin
		for _, r := range refs {
			s := sys.SAPs[r]
			switch s.Kind {
			case symexec.SAPWaitBegin:
				byCond[s.Cond] = r
			case symexec.SAPWaitEnd:
				b, ok := byCond[s.Cond]
				if !ok {
					return fmt.Errorf("constraints: thread %d wait-end without begin on c%d", tid, s.Cond)
				}
				delete(byCond, s.Cond)
				wi := WaitInfo{Begin: b, End: r}
				for otid, orefs := range sys.Threads {
					if otid == tid {
						continue
					}
					for _, or := range orefs {
						os := sys.SAPs[or]
						if (os.Kind == symexec.SAPSignal || os.Kind == symexec.SAPBroadcast) && os.Cond == s.Cond {
							wi.Cands = append(wi.Cands, or)
						}
					}
				}
				if len(wi.Cands) == 0 {
					return fmt.Errorf("constraints: wait on c%d in thread %d has no candidate signal", s.Cond, tid)
				}
				sys.Waits = append(sys.Waits, wi)
			}
		}
	}
	return nil
}

// buildReadWrite encodes the Frw structure: candidate writes per read.
func (sys *System) buildReadWrite() {
	// Group writes by variable.
	writesByVar := map[ir.GlobalID][]SAPRef{}
	for i, s := range sys.SAPs {
		if s.Kind == symexec.SAPWrite {
			writesByVar[s.Var] = append(writesByVar[s.Var], SAPRef(i))
		}
	}
	for i, s := range sys.SAPs {
		if s.Kind != symexec.SAPRead {
			continue
		}
		ri := ReadInfo{Read: SAPRef(i), Init: sys.An.Prog.Globals[s.Var].Init}
		for _, w := range writesByVar[s.Var] {
			if _, maybe := sameAddr(s, sys.SAPs[w]); maybe {
				ri.Cands = append(ri.Cands, w)
			}
		}
		sys.Reads = append(sys.Reads, ri)
	}
}
