package constraints

// newTestGen is a minimal candidate-schedule enumerator for tests in this
// package (the real generator lives in internal/schedule, which imports
// constraints and therefore cannot be used from in-package tests). It
// enumerates linear extensions of the hard edges with at most c preemptive
// switches.
func newTestGen(sys *System) func(c int, f func([]SAPRef)) {
	return func(c int, f func([]SAPRef)) {
		n := len(sys.SAPs)
		preds := map[SAPRef][]SAPRef{}
		for _, e := range sys.HardEdges {
			preds[e[1]] = append(preds[e[1]], e[0])
		}
		scheduled := make([]bool, n)
		order := make([]SAPRef, 0, n)
		emitted := 0
		readyOf := func(t int) []SAPRef {
			var out []SAPRef
			for _, r := range sys.Threads[t] {
				if scheduled[r] {
					continue
				}
				ok := true
				for _, p := range preds[r] {
					if !scheduled[p] {
						ok = false
						break
					}
				}
				if ok {
					out = append(out, r)
				}
			}
			return out
		}
		var walk func(cur, used int, justSwitched bool)
		walk = func(cur, used int, justSwitched bool) {
			if emitted > 50_000 {
				return
			}
			if len(order) == n {
				emitted++
				cp := make([]SAPRef, n)
				copy(cp, order)
				f(cp)
				return
			}
			ready := readyOf(cur)
			for _, r := range ready {
				scheduled[r] = true
				order = append(order, r)
				walk(cur, used, false)
				order = order[:len(order)-1]
				scheduled[r] = false
			}
			if justSwitched {
				return
			}
			for t := range sys.Threads {
				if t == cur || len(readyOf(t)) == 0 {
					continue
				}
				cost := 0
				if len(ready) > 0 {
					cost = 1
				}
				if used+cost > c {
					continue
				}
				walk(t, used+cost, true)
			}
		}
		for t := range sys.Threads {
			if len(readyOf(t)) > 0 {
				walk(t, 0, true)
			}
		}
	}
}
