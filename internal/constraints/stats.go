package constraints

import (
	"fmt"

	"repro/internal/symbolic"
	"repro/internal/symexec"
)

// Stats reports the size of the constraint system using the paper's §4.1
// accounting, feeding Table 1's #Constraints and #Variables columns.
type Stats struct {
	// SAPs is the number of shared access points (order variables).
	SAPs int
	// ValueVars is the number of symbolic read values.
	ValueVars int
	// SignalVars is the number of binary signal-mapping variables
	// (one per (signal candidate, wait) pair).
	SignalVars int
	// Variables is the total unknown count.
	Variables int

	// PathClauses counts Fpath conjuncts (one per recorded symbolic branch
	// plus bounds and passed assertions) plus the bug predicate.
	PathClauses int
	// RWClauses counts Frw clauses: per read, one clause per candidate
	// write (each with its no-intervening-write disjunction) plus the
	// initial-value clause.
	RWClauses int
	// MOClauses counts the hard order edges of Fmo and the fork/join part
	// of Fso.
	MOClauses int
	// LockClauses counts the locking constraints: the paper's 2|S|²+2|S|
	// per lock object.
	LockClauses int
	// SignalClauses counts wait/signal constraints: 2|SG||WT|+|SG| per
	// condition variable.
	SignalClauses int
	// Clauses is the grand total.
	Clauses int
}

// ComputeStats sizes the system.
func (sys *System) ComputeStats() Stats {
	st := Stats{
		SAPs:        len(sys.SAPs),
		ValueVars:   sys.An.NumSyms,
		PathClauses: len(sys.Path) + 1, // + Fbug
		MOClauses:   len(sys.HardEdges),
	}
	for _, ri := range sys.Reads {
		nw := len(ri.Cands)
		// One clause per candidate write: Vr = val(w) ∧ Ow < Or ∧
		// ⋀_{w'≠w}(Ow' < Ow ∨ Ow' > Or) — 2 + 2(nw-1) atoms — plus the
		// initial-value clause with nw atoms.
		if nw > 0 {
			st.RWClauses += nw*(2+2*(nw-1)) + (nw + 1)
		} else {
			st.RWClauses++
		}
	}
	for _, regions := range sys.Regions {
		s := len(regions)
		st.LockClauses += 2*s*s + 2*s
	}
	// Wait/signal: group waits per condition variable.
	waitsPerCond := map[int]int{}
	sigsPerCond := map[int]int{}
	for _, wi := range sys.Waits {
		c := int(sys.SAPs[wi.End].Cond)
		waitsPerCond[c]++
		if sigsPerCond[c] == 0 {
			sigsPerCond[c] = len(wi.Cands)
		}
		st.SignalVars += len(wi.Cands)
	}
	for c, wt := range waitsPerCond {
		sg := sigsPerCond[c]
		st.SignalClauses += 2*sg*wt + sg
	}
	st.Variables = st.SAPs + st.ValueVars + st.SignalVars
	st.Clauses = st.PathClauses + st.RWClauses + st.MOClauses + st.LockClauses + st.SignalClauses
	return st
}

// String renders the stats like a Table 1 fragment.
func (s Stats) String() string {
	return fmt.Sprintf("#SAPs=%d #Constraints=%d #Variables=%d", s.SAPs, s.Clauses, s.Variables)
}

// Formula renders the full constraint system in a human-readable SMT-like
// form, used by the CLI's -dump-constraints flag and by documentation
// examples (it mirrors Figure 3 of the paper).
func (sys *System) Formula() string {
	out := "; Fpath\n"
	for _, c := range sys.Path {
		out += "(assert " + c.String() + ")\n"
	}
	out += "; Fbug\n(assert " + sys.Bug.String() + ")\n"
	out += "; Fmo / fork-join edges\n"
	for _, e := range sys.HardEdges {
		out += fmt.Sprintf("(assert (< O[%s] O[%s]))\n", sys.SAPs[e[0]], sys.SAPs[e[1]])
	}
	out += "; Frw\n"
	for _, ri := range sys.Reads {
		r := sys.SAPs[ri.Read]
		out += fmt.Sprintf("(assert (rw %s init=%d cands=%d))\n", r, ri.Init, len(ri.Cands))
	}
	for _, m := range sys.RegionMutexes() {
		out += fmt.Sprintf("; lock m%d: %d regions\n", m, len(sys.Regions[m]))
	}
	for _, wi := range sys.Waits {
		out += fmt.Sprintf("; wait %s: %d candidate signals\n", sys.SAPs[wi.End], len(wi.Cands))
	}
	return out
}

// ReadBySym returns the read SAP owning a symbol.
func (sys *System) ReadBySym(id symbolic.SymID) *symexec.SAP {
	return sys.An.ReadOf[id]
}
