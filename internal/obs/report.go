package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// ReportSchema identifies the metrics-report wire format.
const ReportSchema = "clap-metrics/1"

// Report is the machine-readable run report written by `clap
// -metrics-json` and pretty-printed by `clap stats`: a snapshot of the
// span tree plus the consolidated counters and gauges.
type Report struct {
	Schema   string           `json:"schema"`
	Root     *Span            `json:"root"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	// Hists carries every latency histogram's bucket state (additive to
	// clap-metrics/1: old readers ignore it, old reports decode with none).
	Hists map[string]HistSnapshot `json:"hists,omitempty"`
	// Artifacts links files the run wrote (timeline JSON, …) by kind.
	Artifacts map[string]string `json:"artifacts,omitempty"`
}

// Report snapshots the trace: open spans are closed at now in the copy,
// the live tree keeps running. Nil for a nil trace.
func (t *Trace) Report() *Report {
	if t == nil {
		return nil
	}
	s := t.reg.TakeSnapshot()
	return &Report{Schema: ReportSchema, Root: t.root.snapshot(), Counters: s.Counters, Gauges: s.Gauges, Hists: s.Hists, Artifacts: t.Artifacts()}
}

// Encode marshals the report as indented JSON with a trailing newline.
func (r *Report) Encode() ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("obs: nil report")
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeReport parses and validates a metrics report.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: bad metrics report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("obs: unknown metrics schema %q (want %q)", r.Schema, ReportSchema)
	}
	if r.Root == nil {
		return nil, fmt.Errorf("obs: metrics report has no span tree")
	}
	return &r, nil
}

// Span finds the first span with the given name in the report's tree.
func (r *Report) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return r.Root.Find(name)
}

// Render pretty-prints the report: the span tree with durations and
// attributes, then the counters and gauges sorted by name. The output is
// deterministic for a given report.
func (r *Report) Render(w io.Writer) {
	if r == nil {
		return
	}
	r.Root.Walk(func(sp *Span, depth int) {
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		fmt.Fprintf(w, "%s%-*s %12s", indent, 24-len(indent), sp.Name,
			time.Duration(sp.DurNs).Round(time.Microsecond))
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, " %s=%s", k, sp.Attrs[k])
			}
		}
		fmt.Fprintln(w)
	})
	renderKV := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s:\n", title)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-30s %d\n", k, m[k])
		}
	}
	renderKV("counters", r.Counters)
	renderKV("gauges", r.Gauges)
	if len(r.Hists) > 0 {
		fmt.Fprintf(w, "\nhistograms:\n")
		keys := make([]string, 0, len(r.Hists))
		for k := range r.Hists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := r.Hists[k]
			fmt.Fprintf(w, "  %-30s count %-6d p50 %-10s p90 %-10s p99 %s\n", k, h.Count,
				time.Duration(h.P50()), time.Duration(h.P90()), time.Duration(h.P99()))
		}
	}
	if len(r.Artifacts) > 0 {
		fmt.Fprintf(w, "\nartifacts:\n")
		keys := make([]string, 0, len(r.Artifacts))
		for k := range r.Artifacts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-30s %s\n", k, r.Artifacts[k])
		}
	}
}
