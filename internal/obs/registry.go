package obs

import (
	"sort"
	"sync"
)

// Kind distinguishes monotonic counters from point-in-time gauges.
type Kind uint8

// Metric kinds.
const (
	// KindCounter is a monotonically accumulated count (events seen,
	// candidates pruned). Counters use Add.
	KindCounter Kind = iota
	// KindGauge is a last-value-wins measurement (current preemption
	// bound, live decision count). Gauges use Set.
	KindGauge
	// KindHistogram is a latency distribution over fixed exponential ns
	// buckets (see histogram.go). Histograms use Observe.
	KindHistogram
)

// Registry is a typed counter/gauge store keyed by stable dotted names
// (see names.go). All methods are safe for concurrent use and no-ops on
// a nil registry, so pipeline stages publish unconditionally.
type Registry struct {
	mu    sync.Mutex
	vals  map[string]int64
	kinds map[string]Kind
	hists map[string]*hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vals: map[string]int64{}, kinds: map[string]Kind{}, hists: map[string]*hist{}}
}

// Counter is a typed handle to one monotonic counter.
type Counter struct {
	r    *Registry
	name string
}

// Gauge is a typed handle to one gauge.
type Gauge struct {
	r    *Registry
	name string
}

// Counter returns a handle to the named counter, registering it.
func (r *Registry) Counter(name string) Counter {
	r.touch(name, KindCounter)
	return Counter{r: r, name: name}
}

// Gauge returns a handle to the named gauge, registering it.
func (r *Registry) Gauge(name string) Gauge {
	r.touch(name, KindGauge)
	return Gauge{r: r, name: name}
}

// Add accumulates into the counter.
func (c Counter) Add(d int64) { c.r.add(c.name, d, KindCounter) }

// Set replaces the gauge's value.
func (g Gauge) Set(v int64) { g.r.set(g.name, v) }

// Add accumulates into a counter by name.
func (r *Registry) Add(name string, d int64) { r.add(name, d, KindCounter) }

// Set sets a gauge by name.
func (r *Registry) Set(name string, v int64) { r.set(name, v) }

func (r *Registry) touch(name string, k Kind) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.kinds[name]; !ok {
		r.kinds[name] = k
		r.vals[name] += 0
	}
	r.mu.Unlock()
}

func (r *Registry) add(name string, d int64, k Kind) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.kinds[name]; !ok {
		r.kinds[name] = k
	}
	r.vals[name] += d
	r.mu.Unlock()
}

func (r *Registry) set(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.kinds[name]; !ok {
		r.kinds[name] = KindGauge
	}
	r.vals[name] = v
	r.mu.Unlock()
}

// Get returns the named metric's value (0 when absent or r is nil).
func (r *Registry) Get(name string) int64 {
	v, _ := r.Lookup(name)
	return v
}

// Lookup returns the named metric's value and whether it was recorded.
func (r *Registry) Lookup(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vals[name]
	return v, ok
}

// KindOf returns the metric's kind and whether it exists.
func (r *Registry) KindOf(name string) (Kind, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.kinds[name]
	return k, ok
}

// Names returns every recorded metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.vals)+len(r.hists))
	for n := range r.vals {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Snapshot copies the current values, split by kind. Either map may be
// empty; both are nil for a nil registry.
func (r *Registry) Snapshot() (counters, gauges map[string]int64) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	counters = make(map[string]int64)
	gauges = make(map[string]int64)
	for n, v := range r.vals {
		if r.kinds[n] == KindGauge {
			gauges[n] = v
		} else {
			counters[n] = v
		}
	}
	return counters, gauges
}
