// Package obs is the pipeline's unified observability layer: a
// hierarchical span tree for phase timings, a typed counter/gauge
// registry under stable dotted names, a machine-readable run report
// (span tree + counters, see report.go), and an optional progress
// heartbeat for long solves (heartbeat.go).
//
// The package is stdlib-only and every entry point is nil-safe: a nil
// *Trace, *Span or *Registry is a no-op, so instrumentation threads
// through the pipeline unconditionally and costs nothing when the caller
// asked for no metrics. The span tree replaces the hand-rolled per-phase
// duration fields that used to live on core.Reproduction; the registry
// consolidates the per-phase stats structs (core.LevelStats,
// constraints.PreStats, solver.Stats, parsolve.Result, cnfsolver.Stats)
// under the stable names in names.go.
package obs

import (
	"strconv"
	"sync"
	"time"
)

// Span is one timed node of the trace tree. The exported fields are the
// wire format of the metrics report; they are written once (under the
// span's lock) and must not be mutated after Report is taken.
type Span struct {
	// Name identifies the phase or sub-step ("record", "solve.cnf", …).
	Name string `json:"name"`
	// StartNs is the span's start as Unix nanoseconds.
	StartNs int64 `json:"start_ns"`
	// DurNs is the span's duration in nanoseconds; -1 while still open.
	DurNs int64 `json:"dur_ns"`
	// Attrs carries string attributes (outcome, solver, chaos level, …).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Children are sub-spans in start order.
	Children []*Span `json:"children,omitempty"`

	mu    sync.Mutex
	start time.Time // monotonic start for Duration/End
}

// Trace owns a span tree and a registry for one pipeline run.
type Trace struct {
	root *Span
	reg  *Registry

	mu        sync.Mutex
	artifacts map[string]string
}

// AddArtifact links a run artifact (a file the pipeline wrote, like the
// flight-recorder timeline JSON) into the trace's report under a short
// kind name. The last path registered for a kind wins.
func (t *Trace) AddArtifact(kind, path string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.artifacts == nil {
		t.artifacts = map[string]string{}
	}
	t.artifacts[kind] = path
	t.mu.Unlock()
}

// Artifacts snapshots the registered artifact links (nil when none).
func (t *Trace) Artifacts() map[string]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.artifacts) == 0 {
		return nil
	}
	m := make(map[string]string, len(t.artifacts))
	for k, v := range t.artifacts {
		m[k] = v
	}
	return m
}

// NewTrace starts a trace whose root span is opened now.
func NewTrace(name string) *Trace {
	return &Trace{root: newSpan(name), reg: NewRegistry()}
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Reg returns the trace's counter registry (nil for a nil trace).
func (t *Trace) Reg() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

func newSpan(name string) *Span {
	now := time.Now()
	return &Span{Name: name, StartNs: now.UnixNano(), DurNs: -1, start: now}
}

// Start opens a child span. Safe to call concurrently on one parent
// (racing portfolio stages attach under the same "solve" span).
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Idempotent: the first End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.DurNs < 0 {
		s.DurNs = int64(time.Since(s.start))
	}
	s.mu.Unlock()
}

// SetAttr records a string attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = map[string]string{}
	}
	s.Attrs[k] = v
	s.mu.Unlock()
}

// SetInt records an integer attribute.
func (s *Span) SetInt(k string, v int64) { s.SetAttr(k, itoa(v)) }

// Attr returns an attribute value ("" when absent or s is nil).
func (s *Span) Attr(k string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Attrs[k]
}

// Duration is the span's wall time: its recorded duration once ended,
// the live elapsed time while open, 0 for nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.DurNs >= 0 {
		return time.Duration(s.DurNs)
	}
	if !s.start.IsZero() {
		return time.Since(s.start)
	}
	return 0
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (including s itself), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range kids {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// Walk visits the subtree depth-first, parents before children. depth is
// 0 at s.
func (s *Span) Walk(fn func(sp *Span, depth int)) { s.walk(fn, 0) }

func (s *Span) walk(fn func(*Span, int), depth int) {
	if s == nil {
		return
	}
	fn(s, depth)
	s.mu.Lock()
	kids := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.walk(fn, depth+1)
	}
}

// snapshot deep-copies the subtree, closing still-open spans at now so a
// report taken mid-run has finite durations.
func (s *Span) snapshot() *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	c := &Span{Name: s.Name, StartNs: s.StartNs, DurNs: s.DurNs}
	if s.DurNs < 0 && !s.start.IsZero() {
		c.DurNs = int64(time.Since(s.start))
	}
	if len(s.Attrs) > 0 {
		c.Attrs = make(map[string]string, len(s.Attrs))
		for k, v := range s.Attrs {
			c.Attrs[k] = v
		}
	}
	kids := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, k := range kids {
		c.Children = append(c.Children, k.snapshot())
	}
	return c
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
