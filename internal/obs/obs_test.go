package obs

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTrace("root")
	a := tr.Root().Start("a")
	b := a.Start("b")
	b.SetAttr("outcome", "solved")
	b.SetInt("bound", 3)
	b.End()
	a.End()
	a.End() // idempotent: the first End wins
	d := a.Duration()
	time.Sleep(time.Millisecond)
	if a.Duration() != d {
		t.Error("ended span's duration moved")
	}
	if got := tr.Root().Find("b"); got == nil || got.Attr("outcome") != "solved" || got.Attr("bound") != "3" {
		t.Errorf("Find(b) = %+v", got)
	}
	if tr.Root().Find("nope") != nil {
		t.Error("Find invented a span")
	}
	var names []string
	tr.Root().Walk(func(sp *Span, depth int) { names = append(names, sp.Name) })
	if want := []string{"root", "a", "b"}; !reflect.DeepEqual(names, want) {
		t.Errorf("walk order = %v, want %v", names, want)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	var sp *Span
	var reg *Registry
	sp = tr.Root().Start("x") // all no-ops
	sp.End()
	sp.SetAttr("k", "v")
	if sp.Duration() != 0 || sp.Find("x") != nil || sp.Attr("k") != "" {
		t.Error("nil span not inert")
	}
	reg.Add("a", 1)
	reg.Set("b", 2)
	if reg.Get("a") != 0 || reg.Names() != nil {
		t.Error("nil registry not inert")
	}
	if tr.Report() != nil || tr.Reg() != nil {
		t.Error("nil trace not inert")
	}
	StartHeartbeat(&bytes.Buffer{}, nil, HeartbeatOptions{}).Stop() // no-op
}

func TestRegistryTypedAndSorted(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("record.events")
	c.Add(5)
	c.Add(7)
	g := reg.Gauge("solver.seq.bound")
	g.Set(2)
	g.Set(4)
	if v := reg.Get("record.events"); v != 12 {
		t.Errorf("counter = %d, want 12", v)
	}
	if v := reg.Get("solver.seq.bound"); v != 4 {
		t.Errorf("gauge = %d, want 4", v)
	}
	if k, _ := reg.KindOf("record.events"); k != KindCounter {
		t.Error("counter kind lost")
	}
	if k, _ := reg.KindOf("solver.seq.bound"); k != KindGauge {
		t.Error("gauge kind lost")
	}
	reg.Add("a.z", 1)
	reg.Add("a.a", 1)
	names := reg.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	cs, gs := reg.Snapshot()
	if cs["record.events"] != 12 || gs["solver.seq.bound"] != 4 {
		t.Errorf("snapshot split wrong: %v %v", cs, gs)
	}
	if _, ok := cs["solver.seq.bound"]; ok {
		t.Error("gauge leaked into counters")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Add("c", 1)
				reg.Set("g", int64(j))
				reg.Lookup("c")
			}
		}()
	}
	wg.Wait()
	if v := reg.Get("c"); v != 8000 {
		t.Errorf("c = %d, want 8000", v)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTrace("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := tr.Root().Start("child")
			sp.SetAttr("k", "v")
			sp.End()
		}()
	}
	wg.Wait()
	rep := tr.Report()
	if n := len(rep.Root.Children); n != 8 {
		t.Errorf("children = %d, want 8", n)
	}
}

// TestReportRoundTrip is the -metrics-json schema pin: encode → decode
// must reproduce the identical span tree and counter maps.
func TestReportRoundTrip(t *testing.T) {
	tr := NewTrace("clap")
	rec := tr.Root().Start("record")
	lvl := rec.Start("record.level")
	lvl.SetInt("chaos", 15)
	lvl.End()
	rec.End()
	solve := tr.Root().Start("solve")
	att := solve.Start("solve.sequential")
	att.SetAttr("outcome", "solved")
	att.End()
	solve.End()
	tr.Reg().Counter("record.events").Add(42)
	tr.Reg().Gauge("solver.seq.bound").Set(3)

	rep := tr.Report()
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip drift:\n got %+v\nwant %+v", back, rep)
	}
	// A second encode of the decoded report must be byte-identical: the
	// report is a stable artifact, fit for diffing.
	data2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-encoded report differs")
	}
}

func TestDecodeReportRejectsGarbage(t *testing.T) {
	if _, err := DecodeReport([]byte("{")); err == nil {
		t.Error("accepted truncated JSON")
	}
	if _, err := DecodeReport([]byte(`{"schema":"other/9","root":{"name":"x"}}`)); err == nil {
		t.Error("accepted unknown schema")
	}
	if _, err := DecodeReport([]byte(`{"schema":"` + ReportSchema + `"}`)); err == nil {
		t.Error("accepted report without span tree")
	}
}

func TestRenderDeterministic(t *testing.T) {
	tr := NewTrace("clap")
	sp := tr.Root().Start("solve")
	sp.SetAttr("b", "2")
	sp.SetAttr("a", "1")
	sp.End()
	tr.Reg().Add("z.count", 1)
	tr.Reg().Add("a.count", 2)
	tr.Reg().Set("m.gauge", 3)
	rep := tr.Report()
	var one, two bytes.Buffer
	rep.Render(&one)
	rep.Render(&two)
	if one.String() != two.String() {
		t.Error("Render is nondeterministic")
	}
	out := one.String()
	for _, want := range []string{"clap", "solve", "a=1 b=2", "a.count", "z.count", "m.gauge"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestStableNamesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range StableNames {
		if seen[n] {
			t.Errorf("duplicate stable name %q", n)
		}
		seen[n] = true
		if strings.ToLower(n) != n || strings.ContainsAny(n, " \t/") {
			t.Errorf("stable name %q not dotted-lowercase", n)
		}
		if !IsStable(n) {
			t.Errorf("IsStable(%q) = false", n)
		}
	}
	if IsStable("not.a.name") {
		t.Error("IsStable accepted an unknown name")
	}
	for _, n := range append(append([]string{}, ProgressGauges...), ProgressRates...) {
		if !IsStable(n) {
			t.Errorf("progress metric %q not in the stable list", n)
		}
	}
}

func TestHeartbeat(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("solver.seq.bound").Set(2)
	reg.Set("solver.seq.decisions", 1000)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	h := StartHeartbeat(w, reg, HeartbeatOptions{Interval: 5 * time.Millisecond})
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if strings.Contains(s, "solver.seq.bound=2") && strings.Contains(s, "solver.seq.decisions/s=") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no heartbeat line in time; got %q", s)
		}
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
	mu.Lock()
	n := buf.Len()
	mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	if buf.Len() != n {
		t.Error("heartbeat wrote after Stop")
	}
	mu.Unlock()
}

func TestHeartbeatStopsWithContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	reg := NewRegistry()
	h := StartHeartbeat(&bytes.Buffer{}, reg, HeartbeatOptions{Interval: time.Millisecond, Ctx: ctx})
	cancel()
	done := make(chan struct{})
	go func() { h.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeat did not stop with its context")
	}
}

func TestHeartbeatStopFinal(t *testing.T) {
	tr := NewTrace("clap")
	tr.Root().Start("record").End()
	tr.Root().Start("solve").End()

	for _, outcome := range []string{"ok", "error"} {
		var buf bytes.Buffer
		h := StartHeartbeat(&buf, tr.Reg(), HeartbeatOptions{Interval: time.Hour})
		h.StopFinal(tr, outcome)
		out := buf.String()
		if !strings.Contains(out, "obs: done in ") ||
			!strings.Contains(out, "phase=solve") ||
			!strings.Contains(out, "outcome="+outcome) {
			t.Errorf("outcome %q: summary line missing pieces: %q", outcome, out)
		}
		if strings.Count(out, "obs: done") != 1 {
			t.Errorf("outcome %q: want exactly one summary line, got %q", outcome, out)
		}
	}

	// Nil heartbeat (a -progress run that never started one): no output,
	// no panic.
	var nilH *Heartbeat
	nilH.StopFinal(tr, "ok")

	// A trace with no phases yet reports phase=none.
	var buf bytes.Buffer
	h := StartHeartbeat(&buf, NewRegistry(), HeartbeatOptions{Interval: time.Hour})
	h.StopFinal(NewTrace("clap"), "error")
	if !strings.Contains(buf.String(), "phase=none") {
		t.Errorf("empty trace should report phase=none: %q", buf.String())
	}
}

// TestHeartbeatNoGoroutineLeak pins the satellite requirement that no
// heartbeat goroutine outlives the run: after StopFinal returns, the
// ticker goroutines are gone.
func TestHeartbeatNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	tr := NewTrace("clap")
	hs := make([]*Heartbeat, 0, 8)
	for i := 0; i < 8; i++ {
		hs = append(hs, StartHeartbeat(&bytes.Buffer{}, tr.Reg(), HeartbeatOptions{Interval: time.Millisecond}))
	}
	for _, h := range hs {
		h.StopFinal(tr, "ok")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat goroutines outlived StopFinal: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
