package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"
)

// HeartbeatOptions tunes the progress heartbeat.
type HeartbeatOptions struct {
	// Interval between progress lines (default 2s).
	Interval time.Duration
	// Gauges are reported verbatim; Rates as per-second deltas. Both
	// default to the solver progress sets in names.go. A metric that was
	// never recorded is omitted from the line.
	Gauges []string
	Rates  []string
	// Ctx stops the heartbeat when done (nil = only Stop stops it), so a
	// -timeout'd pipeline takes its ticker down with it.
	Ctx context.Context
}

// Heartbeat periodically writes one-line progress reports ("obs: ...")
// from a registry's live gauges, for long solver runs. Start it with
// StartHeartbeat; it never writes after Stop or StopFinal returns.
type Heartbeat struct {
	stop  chan struct{}
	done  chan struct{}
	w     io.Writer
	start time.Time
}

// StartHeartbeat launches the ticker goroutine. Returns nil (a no-op to
// Stop) when reg is nil.
func StartHeartbeat(w io.Writer, reg *Registry, opts HeartbeatOptions) *Heartbeat {
	if reg == nil {
		return nil
	}
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Gauges == nil {
		opts.Gauges = ProgressGauges
	}
	if opts.Rates == nil {
		opts.Rates = ProgressRates
	}
	h := &Heartbeat{stop: make(chan struct{}), done: make(chan struct{}), w: w, start: time.Now()}
	var ctxDone <-chan struct{}
	if opts.Ctx != nil {
		ctxDone = opts.Ctx.Done()
	}
	go func() {
		defer close(h.done)
		t := time.NewTicker(opts.Interval)
		defer t.Stop()
		last := map[string]int64{}
		lastAt := time.Now()
		for {
			select {
			case <-h.stop:
				return
			case <-ctxDone:
				return
			case now := <-t.C:
				line := progressLine(reg, opts, last, now.Sub(lastAt))
				lastAt = now
				if line != "" {
					fmt.Fprintln(w, "obs:", line)
				}
			}
		}
	}()
	return h
}

// Stop halts the heartbeat and waits for the final line to finish.
// Safe on a nil heartbeat and safe to call twice.
func (h *Heartbeat) Stop() {
	if h == nil {
		return
	}
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

// StopFinal halts the heartbeat (waiting for its goroutine to exit, like
// Stop) and then writes the run's closing one-line summary: elapsed wall
// time, the last pipeline phase the trace reached, and the outcome. It is
// meant for both exits of a run — pass "ok" on success and the error
// class on failure — so a -progress user always sees how the run ended.
// Safe on a nil heartbeat (then it writes nothing, matching a heartbeat
// that never started).
func (h *Heartbeat) StopFinal(tr *Trace, outcome string) {
	if h == nil {
		return
	}
	h.Stop()
	fmt.Fprintf(h.w, "obs: done in %v phase=%s outcome=%s\n",
		time.Since(h.start).Round(time.Millisecond), lastPhase(tr), outcome)
}

// lastPhase names the most recent top-level phase span of the trace —
// "how far did the pipeline get" for the closing summary.
func lastPhase(tr *Trace) string {
	root := tr.Root()
	if root == nil {
		return "none"
	}
	root.mu.Lock()
	defer root.mu.Unlock()
	if len(root.Children) == 0 {
		return "none"
	}
	return root.Children[len(root.Children)-1].Name
}

// progressLine renders one tick. last is updated in place with the
// current rate-metric values.
func progressLine(reg *Registry, opts HeartbeatOptions, last map[string]int64, dt time.Duration) string {
	var parts []string
	for _, g := range opts.Gauges {
		if v, ok := reg.Lookup(g); ok {
			parts = append(parts, fmt.Sprintf("%s=%d", g, v))
		}
	}
	secs := dt.Seconds()
	for _, rk := range opts.Rates {
		v, ok := reg.Lookup(rk)
		if !ok {
			continue
		}
		d := v - last[rk]
		last[rk] = v
		if secs > 0 {
			parts = append(parts, fmt.Sprintf("%s/s=%.0f", rk, float64(d)/secs))
		}
	}
	return strings.Join(parts, " ")
}
