package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"
)

// HeartbeatOptions tunes the progress heartbeat.
type HeartbeatOptions struct {
	// Interval between progress lines (default 2s).
	Interval time.Duration
	// Gauges are reported verbatim; Rates as per-second deltas. Both
	// default to the solver progress sets in names.go. A metric that was
	// never recorded is omitted from the line.
	Gauges []string
	Rates  []string
	// Ctx stops the heartbeat when done (nil = only Stop stops it), so a
	// -timeout'd pipeline takes its ticker down with it.
	Ctx context.Context
}

// Heartbeat periodically writes one-line progress reports ("obs: ...")
// from a registry's live gauges, for long solver runs. Start it with
// StartHeartbeat; it never writes after Stop returns.
type Heartbeat struct {
	stop chan struct{}
	done chan struct{}
}

// StartHeartbeat launches the ticker goroutine. Returns nil (a no-op to
// Stop) when reg is nil.
func StartHeartbeat(w io.Writer, reg *Registry, opts HeartbeatOptions) *Heartbeat {
	if reg == nil {
		return nil
	}
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Gauges == nil {
		opts.Gauges = ProgressGauges
	}
	if opts.Rates == nil {
		opts.Rates = ProgressRates
	}
	h := &Heartbeat{stop: make(chan struct{}), done: make(chan struct{})}
	var ctxDone <-chan struct{}
	if opts.Ctx != nil {
		ctxDone = opts.Ctx.Done()
	}
	go func() {
		defer close(h.done)
		t := time.NewTicker(opts.Interval)
		defer t.Stop()
		last := map[string]int64{}
		lastAt := time.Now()
		for {
			select {
			case <-h.stop:
				return
			case <-ctxDone:
				return
			case now := <-t.C:
				line := progressLine(reg, opts, last, now.Sub(lastAt))
				lastAt = now
				if line != "" {
					fmt.Fprintln(w, "obs:", line)
				}
			}
		}
	}()
	return h
}

// Stop halts the heartbeat and waits for the final line to finish.
// Safe on a nil heartbeat and safe to call twice.
func (h *Heartbeat) Stop() {
	if h == nil {
		return
	}
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

// progressLine renders one tick. last is updated in place with the
// current rate-metric values.
func progressLine(reg *Registry, opts HeartbeatOptions, last map[string]int64, dt time.Duration) string {
	var parts []string
	for _, g := range opts.Gauges {
		if v, ok := reg.Lookup(g); ok {
			parts = append(parts, fmt.Sprintf("%s=%d", g, v))
		}
	}
	secs := dt.Seconds()
	for _, rk := range opts.Rates {
		v, ok := reg.Lookup(rk)
		if !ok {
			continue
		}
		d := v - last[rk]
		last[rk] = v
		if secs > 0 {
			parts = append(parts, fmt.Sprintf("%s/s=%.0f", rk, float64(d)/secs))
		}
	}
	return strings.Join(parts, " ")
}
