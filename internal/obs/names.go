package obs

// Stable metric names. These dotted names are the public schema of the
// metrics report: cmd/benchjson emits them next to stage timings and the
// pin test in internal/bench fails if the pipeline ever emits a name not
// listed here. Add new names deliberately; never reuse one with a
// different meaning.
//
// Convention: <phase>.<noun>[.<qualifier>]. Counters accumulate (Add),
// gauges hold the latest live value (Set) — the solver.* metrics are
// gauges because the progress hooks republish cumulative snapshots while
// a solve runs.
var StableNames = []string{
	// Record phase (core.Record, per-level detail on the record spans).
	"record.seeds",      // schedules executed across all chaos levels
	"record.livelocked", // runs that hit the action budget without failing
	"record.failures",   // runs that ended in an assertion failure
	"record.levels",     // chaos levels swept
	"record.events",     // path-log events of the winning recording
	"record.log.bytes",  // encoded CLAP log size
	"record.saps",       // shared access points of the winning run
	"record.instructions",
	"record.branches",

	// Constraint system size (constraints.Stats).
	"constraints.saps",
	"constraints.clauses",
	"constraints.variables",
	"constraints.value.vars",
	"constraints.signal.vars",

	// Preprocessing pass (constraints.PreStats).
	"preprocess.reads",
	"preprocess.reads.free",
	"preprocess.reads.noinit",
	"preprocess.cands.before",
	"preprocess.cands.after",
	"preprocess.pruned.order",
	"preprocess.pruned.shadowed",
	"preprocess.pruned.lock",
	"preprocess.pruned.mutex",
	"preprocess.wait.cands.before",
	"preprocess.wait.cands.after",
	"preprocess.closure.skipped", // 1 when the reachability closure was skipped

	// Sequential solver (solver.Stats); live-updated during the solve.
	"solver.seq.decisions",
	"solver.seq.backtracks",
	"solver.seq.extensions",
	"solver.seq.validations",
	"solver.seq.bound",

	// Parallel solver (parsolve.Result); live-updated during the solve.
	"solver.par.generated",
	"solver.par.validated",
	"solver.par.valid",
	"solver.par.bound",
	"solver.par.capped", // 1 when generation hit MaxSchedules

	// CNF solver (cnfsolver.Stats); live-updated during the solve.
	"solver.cnf.boolvars",
	"solver.cnf.clauses",
	"solver.cnf.rounds",
	"solver.cnf.lazy.rounds",    // lazy-transitivity refinement iterations
	"solver.cnf.lazy.lemmas",    // cycle lemmas those iterations learned
	"solver.cnf.addr.rounds",    // address-split refinement iterations
	"solver.cnf.addr.lemmas",    // choice-premised lemmas those iterations learned
	"solver.cnf.blocks.mapping", // mapping-class blocking clauses added
	"solver.cnf.session.solves", // DPLL(T) entries on the session
	"solver.cnf.session.reuse",  // entries that re-entered a live session
	"solver.cnf.sat.conflicts",
	"solver.cnf.sat.decisions",
	"solver.cnf.sat.propagations",

	// CDCL engine totals (sat.Solver), split out of the solver.cnf.sat.*
	// mirror so restart/learnt behavior is visible per run.
	"sat.solves",   // engine Solve calls issued
	"sat.restarts", // Luby restarts across those calls
	"sat.learnts",  // learnt clauses retained across those calls

	// Solve outcome, whichever backend won.
	"solve.attempts",
	"solve.preemptions",
	"solve.schedule.len",

	// Stage latency histograms: one observation per stage execution, in
	// nanoseconds over the fixed exponential buckets (histogram.go). The
	// stage.solve.<backend> family times individual portfolio attempts;
	// stage.bench.* carries benchjson's per-iteration stage latencies.
	"stage.record.ns",
	"stage.symexec.ns",
	"stage.preprocess.ns",
	"stage.solve.ns",
	"stage.replay.ns",
	"stage.solve.sequential.ns",
	"stage.solve.parallel.ns",
	"stage.solve.cnf.ns",
	"stage.bench.build.ns",
	"stage.bench.preprocess.ns",
	"stage.bench.sequential.ns",
	"stage.bench.parsolve.ns",
	"stage.bench.cnf.ns",

	// Content-addressed artifact cache (core.DiskCache): one hit or miss
	// per cached artifact consulted (preprocess snapshot, schedule).
	"core.cache.hit",
	"core.cache.miss",

	// Replay phase (replay.Outcome).
	"replay.events.matched",
	"replay.reproduced", // 1 when the replay reproduced the failure

	// Flight recorder (core.BuildTimeline) and explainability
	// (core.ScheduleDiff).
	"timeline.execs",  // execution lanes in the timeline artifact
	"timeline.events", // events across all lanes
	"timeline.arrows", // spawn/join/flip flow arrows
	"explain.flips",   // conflicting SAP pairs the solver reversed
	"explain.remaps",  // reads whose last writer changed

	// Predictive race detection (core.DetectRaces / internal/races).
	"races.pairs",               // conflicting SAP pairs enumerated
	"races.pairs.pruned.static", // pruned as statically ordered
	"races.pairs.pruned.mutex",  // pruned by a common must-held lock
	"races.sites.confirmed",     // site verdicts with a validated witness
	"races.sites.refuted",       // sites proven never-adjacent
	"races.sites.unknown",       // sites the budgets could not decide
	"races.sites.static",        // static races with no recorded pair
	"races.solver.calls",        // CNF adjacency queries issued
	"races.solver.sessions",     // CNF sessions built (≤1 per recording)
	"races.solver.reuse",        // queries that re-entered a live session

	// Reproduction daemon (internal/clapd), reported via GET /v1/stats and
	// GET /metrics. Counters unless noted; clapd.queue.depth and
	// clapd.workers.busy are gauges, clapd.job.ns a histogram.
	"clapd.ingest.accepted",
	"clapd.ingest.dedup.cached",   // duplicate of a completed job, served from store
	"clapd.ingest.dedup.poisoned", // duplicate of a permanently failed job
	"clapd.ingest.dedup.inflight", // duplicate shed onto a queued/running job
	"clapd.ingest.rejected.badbundle",
	"clapd.ingest.rejected.toolarge",
	"clapd.ingest.rejected.saturated", // admission refusals (HTTP 429)
	"clapd.queue.depth",               // gauge: digests awaiting a worker
	"clapd.workers.busy",              // gauge: workers executing a job right now
	"clapd.job.ns",                    // histogram: per-attempt wall time
	"clapd.jobs.executed",             // pipeline attempts started
	"clapd.jobs.salvaged",             // attempts whose log needed salvage
	"clapd.jobs.done",
	"clapd.jobs.retried",
	"clapd.jobs.poisoned",
	"clapd.jobs.panics",                 // attempts recovered from a panic
	"clapd.jobs.done.unjournaled",       // done work whose terminal append failed
	"clapd.jobs.doublecomplete.refused", // refused exits from a terminal state
	"clapd.recovered.requeued",          // jobs re-queued by restart recovery
	"clapd.recovered.poisoned",          // jobs poisoned by restart recovery
	"clapd.journal.dropped.bytes",       // damaged WAL tail dropped on open
}

var stableSet = func() map[string]bool {
	m := make(map[string]bool, len(StableNames))
	for _, n := range StableNames {
		m[n] = true
	}
	return m
}()

// IsStable reports whether name is in the documented stable-name list.
func IsStable(name string) bool { return stableSet[name] }

// Default heartbeat configuration: the live gauges worth a glance during
// a long solve, and the activity metrics worth reporting as rates.
var (
	ProgressGauges = []string{"solver.seq.bound", "solver.par.bound", "solver.cnf.rounds"}
	ProgressRates  = []string{"solver.seq.decisions", "solver.par.generated", "solver.cnf.sat.conflicts"}
)
