// Prometheus text exposition over the stable dotted names, hand-rolled on
// the stdlib so the daemon's /metrics endpoint costs no dependency. The
// encoder is deterministic — families sorted by name, fixed bucket
// rendering — so the same snapshot always produces the same bytes, which
// both the tests and "diff two scrapes" workflows rely on.
package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PromName converts a stable dotted metric name to its Prometheus form:
// every character outside [a-zA-Z0-9_] becomes an underscore
// ("clapd.jobs.done" → "clapd_jobs_done"). The mapping is idempotent but
// not invertible.
func PromName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// EncodeProm renders a snapshot in the Prometheus text exposition format.
// Counters and gauges are single samples; histograms render the standard
// cumulative _bucket{le="..."} series over the fixed integer-ns bounds
// (HistBounds) plus +Inf, _sum and _count.
func EncodeProm(s RegSnapshot) []byte {
	type fam struct {
		name string
		kind Kind
	}
	fams := make([]fam, 0, len(s.Counters)+len(s.Gauges)+len(s.Hists))
	for n := range s.Counters {
		fams = append(fams, fam{n, KindCounter})
	}
	for n := range s.Gauges {
		fams = append(fams, fam{n, KindGauge})
	}
	for n := range s.Hists {
		fams = append(fams, fam{n, KindHistogram})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b bytes.Buffer
	for _, f := range fams {
		pn := PromName(f.name)
		switch f.kind {
		case KindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[f.name])
		case KindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[f.name])
		case KindHistogram:
			h := s.Hists[f.name]
			fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
			cum := int64(0)
			for i, bound := range HistBounds() {
				if i < len(h.Buckets) {
					cum += h.Buckets[i]
				}
				fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum)
			}
			if len(h.Buckets) > histBuckets {
				cum += h.Buckets[histBuckets]
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
			fmt.Fprintf(&b, "%s_sum %d\n", pn, h.Sum)
			fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
		}
	}
	return b.Bytes()
}

// DecodeProm parses text produced by EncodeProm back into a snapshot.
// Metric names stay in their sanitized underscore form — the dotted
// originals are not recoverable — so decode→encode round-trips
// byte-identically while a decoded snapshot is keyed differently from the
// registry that produced it. `clap top` polls a daemon through this.
func DecodeProm(data []byte) (RegSnapshot, error) {
	s := RegSnapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	type histAcc struct {
		cum   []int64
		sum   int64
		count int64
	}
	hists := map[string]*histAcc{}
	histAt := func(name string) *histAcc {
		h, ok := hists[name]
		if !ok {
			h = &histAcc{}
			hists[name] = h
		}
		return h
	}
	kinds := map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" {
				kinds[f[2]] = f[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return s, fmt.Errorf("obs: malformed prom sample %q", line)
		}
		ref, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			return s, fmt.Errorf("obs: prom sample %q: %v", line, err)
		}
		name := ref
		if i := strings.IndexByte(ref, '{'); i >= 0 {
			name = ref[:i]
		}
		base := func(suffix string) (string, bool) {
			b := strings.TrimSuffix(name, suffix)
			return b, b != name && kinds[b] == "histogram"
		}
		switch {
		case kinds[name] == "counter":
			s.Counters[name] = val
		case kinds[name] == "gauge":
			s.Gauges[name] = val
		default:
			if b, ok := base("_bucket"); ok {
				histAt(b).cum = append(histAt(b).cum, val)
			} else if b, ok := base("_sum"); ok {
				histAt(b).sum = val
			} else if b, ok := base("_count"); ok {
				histAt(b).count = val
			} else {
				return s, fmt.Errorf("obs: prom sample %q has no # TYPE", ref)
			}
		}
	}
	for name, h := range hists {
		if len(h.cum) != histBuckets+1 {
			return s, fmt.Errorf("obs: histogram %s has %d buckets, want %d", name, len(h.cum), histBuckets+1)
		}
		hs := HistSnapshot{Count: h.count, Sum: h.sum, Buckets: make([]int64, histBuckets+1)}
		prev := int64(0)
		for i, c := range h.cum {
			hs.Buckets[i] = c - prev
			prev = c
		}
		s.Hists[name] = hs
	}
	return s, nil
}
