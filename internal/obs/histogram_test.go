package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("stage.test.ns")
	for i := 0; i < 99; i++ {
		h.Observe(1000) // first bucket: ≤ 4096ns
	}
	h.Observe(1 << 30)

	s := r.TakeSnapshot()
	hs, ok := s.Hists["stage.test.ns"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 100 {
		t.Fatalf("count = %d, want 100", hs.Count)
	}
	if got := hs.Sum; got != 99*1000+1<<30 {
		t.Errorf("sum = %d, want %d", got, 99*1000+1<<30)
	}
	if got := hs.P50(); got != 4096 {
		t.Errorf("p50 = %d, want 4096 (first bucket's upper bound)", got)
	}
	if got := hs.P99(); got != 4096 {
		t.Errorf("p99 = %d, want 4096 (rank 99 of 100 is still the first bucket)", got)
	}
	if got := hs.Quantile(1.0); got != 1<<30 {
		t.Errorf("p100 = %d, want %d", got, 1<<30)
	}
}

func TestHistogramOverflowAndZeroValue(t *testing.T) {
	r := NewRegistry()
	r.Observe("h", 1<<45) // far past the largest finite bound
	hs := r.TakeSnapshot().Hists["h"]
	if hs.Count != 1 {
		t.Fatalf("count = %d, want 1", hs.Count)
	}
	if got, want := hs.Quantile(1.0), int64(1<<39); got != want {
		t.Errorf("overflow quantile = %d, want the largest finite bound %d", got, want)
	}

	// The zero-value handle and the nil registry both drop observations.
	var zero Histogram
	zero.Observe(1)
	var nilReg *Registry
	nilReg.Observe("h", 1)
	nilReg.Hist("h").Observe(1)
	if s := nilReg.TakeSnapshot(); len(s.Hists) != 0 {
		t.Errorf("nil registry snapshot has %d hists", len(s.Hists))
	}
}

// TestHistSnapshotAddAssociative pins the merge algebra: bucket-wise
// addition is associative and commutative, so per-job registries can fold
// into the daemon registry in any order and arrive at the same totals.
func TestHistSnapshotAddAssociative(t *testing.T) {
	mk := func(vals ...int64) HistSnapshot {
		r := NewRegistry()
		for _, v := range vals {
			r.Observe("h", v)
		}
		return r.TakeSnapshot().Hists["h"]
	}
	a := mk(100, 5000, 1<<20)
	b := mk(1<<15, 1<<15, 7)
	c := mk(1<<38, 1<<45)

	sum := func(parts ...HistSnapshot) HistSnapshot {
		var out HistSnapshot
		for _, p := range parts {
			out.Add(p)
		}
		return out
	}
	left := sum(sum(a, b), c)
	right := sum(a, sum(b, c))
	swapped := sum(c, b, a)
	for _, got := range []HistSnapshot{right, swapped} {
		if got.Count != left.Count || got.Sum != left.Sum {
			t.Fatalf("count/sum differ: %d/%d vs %d/%d", got.Count, got.Sum, left.Count, left.Sum)
		}
		for i := range left.Buckets {
			if got.Buckets[i] != left.Buckets[i] {
				t.Fatalf("bucket %d differs: %d vs %d", i, got.Buckets[i], left.Buckets[i])
			}
		}
	}
	if left.Count != 8 {
		t.Errorf("merged count = %d, want 8", left.Count)
	}
}

// TestMergeConcurrent folds many per-job snapshots into one registry from
// concurrent goroutines — the daemon's exact merge pattern — and checks
// the totals. Run under -race by the race-obs make target.
func TestMergeConcurrent(t *testing.T) {
	daemon := NewRegistry()
	const jobs = 32
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := NewRegistry()
			job.Add("jobs.executed", 1)
			job.Add("events", int64(i))
			job.Set("last.bound", int64(i))
			job.Observe("stage.solve.ns", int64(1000*(i+1)))
			job.Observe("stage.solve.ns", 1<<20)
			daemon.Merge(job.TakeSnapshot())
		}(i)
	}
	wg.Wait()

	s := daemon.TakeSnapshot()
	if got := s.Counters["jobs.executed"]; got != jobs {
		t.Errorf("jobs.executed = %d, want %d (counters must sum)", got, jobs)
	}
	if got := s.Counters["events"]; got != jobs*(jobs-1)/2 {
		t.Errorf("events = %d, want %d", got, jobs*(jobs-1)/2)
	}
	if _, ok := s.Gauges["last.bound"]; !ok {
		t.Error("gauge last.bound missing after merge (gauges are last-wins)")
	}
	if got := s.Hists["stage.solve.ns"].Count; got != 2*jobs {
		t.Errorf("histogram count = %d, want %d (buckets must add)", got, 2*jobs)
	}
	// Merging into a nil registry is a no-op, not a panic.
	var nilReg *Registry
	nilReg.Merge(s)
}

func TestEncodePromDeterministic(t *testing.T) {
	build := func() RegSnapshot {
		r := NewRegistry()
		r.Add("clapd.jobs.done", 3)
		r.Add("record.events", 120)
		r.Set("clapd.queue.depth", 2)
		r.Set("clapd.workers.busy", 1)
		r.Observe("stage.solve.ns", 5000)
		r.Observe("stage.solve.ns", 1<<22)
		r.Observe("clapd.job.ns", 1<<45)
		return r.TakeSnapshot()
	}
	a := EncodeProm(build())
	b := EncodeProm(build())
	if !bytes.Equal(a, b) {
		t.Fatalf("two encodes of the same registry differ:\n%s\n--\n%s", a, b)
	}

	// Families must appear in sorted name order.
	wantOrder := []string{
		"clapd_job_ns", "clapd_jobs_done", "clapd_queue_depth",
		"clapd_workers_busy", "record_events", "stage_solve_ns",
	}
	last := -1
	for _, name := range wantOrder {
		idx := bytes.Index(a, []byte("# TYPE "+name+" "))
		if idx < 0 {
			t.Fatalf("family %s missing from exposition:\n%s", name, a)
		}
		if idx < last {
			t.Errorf("family %s out of sorted order", name)
		}
		last = idx
	}

	// Round trip: decode keeps the sanitized names, so a second
	// encode-decode-encode cycle must be byte-stable.
	s2, err := DecodeProm(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Counters["clapd_jobs_done"]; got != 3 {
		t.Errorf("decoded clapd_jobs_done = %d, want 3", got)
	}
	if got := s2.Gauges["clapd_queue_depth"]; got != 2 {
		t.Errorf("decoded clapd_queue_depth = %d, want 2", got)
	}
	hs := s2.Hists["stage_solve_ns"]
	if hs.Count != 2 || hs.Sum != 5000+1<<22 {
		t.Errorf("decoded stage_solve_ns count/sum = %d/%d, want 2/%d", hs.Count, hs.Sum, 5000+1<<22)
	}
	c := EncodeProm(s2)
	s3, err := DecodeProm(c)
	if err != nil {
		t.Fatal(err)
	}
	d := EncodeProm(s3)
	if !bytes.Equal(c, d) {
		t.Fatal("encode→decode→encode is not byte-stable")
	}

	if _, err := DecodeProm([]byte("clapd_stray 7\n")); err == nil {
		t.Error("DecodeProm accepted a sample with no # TYPE declaration")
	}
}

// TestPromNameIdempotent pins the sanitizer property the round trip
// relies on: sanitizing an already-sanitized name changes nothing.
func TestPromNameIdempotent(t *testing.T) {
	for _, name := range []string{"stage.solve.ns", "clapd.jobs.done", "already_clean", "weird-name+x"} {
		once := PromName(name)
		if twice := PromName(once); twice != once {
			t.Errorf("PromName(%q): %q then %q — not idempotent", name, once, twice)
		}
	}
}

func TestReportCarriesHists(t *testing.T) {
	tr := NewTrace("t")
	tr.Reg().Observe("stage.record.ns", 12345)
	rep := tr.Report()
	if len(rep.Hists) != 1 {
		t.Fatalf("report has %d hists, want 1", len(rep.Hists))
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	for _, want := range []string{"histograms:", "stage.record.ns", "p50", "p99"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("rendered report missing %q:\n%s", want, buf.String())
		}
	}
	// Encode/decode keeps the histogram (clap-metrics/1 stays additive).
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hists["stage.record.ns"].Count != 1 {
		t.Error("histogram lost in the clap-metrics/1 round trip")
	}
}

func TestHistBoundsShape(t *testing.T) {
	bounds := HistBounds()
	if len(bounds) == 0 {
		t.Fatal("no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != 2*bounds[i-1] {
			t.Fatalf("bounds not exponential at %d: %d then %d", i, bounds[i-1], bounds[i])
		}
	}
	// Every finite bound maps into its own bucket: observing the bound
	// itself must not spill into the next bucket (ranges are (lo, hi]).
	for _, b := range bounds {
		r := NewRegistry()
		r.Observe("h", b)
		hs := r.TakeSnapshot().Hists["h"]
		if got := hs.Quantile(1.0); got != b {
			t.Errorf("Observe(%d): quantile %d, want the bound itself", b, got)
		}
	}
}
