package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout. Every histogram shares one fixed exponential
// nanosecond layout: bucket i covers (2^(histMinShift+i-1), 2^(histMinShift+i)]
// ns, the first bucket absorbs everything at or below 2^12 ns (≈4µs —
// below the resolution anyone tunes a pipeline stage to), and a final
// overflow bucket catches observations beyond 2^39 ns (≈9.2 min — past
// every stage deadline). A fixed shared layout is what makes bucket-wise
// addition a sound merge across registries and across processes.
const (
	histMinShift = 12
	histBuckets  = 28
)

// HistBounds returns the finite upper bucket bounds in nanoseconds,
// ascending. The overflow bucket (everything above the last bound) is not
// represented; encoders render it as +Inf.
func HistBounds() []int64 {
	b := make([]int64, histBuckets)
	for i := range b {
		b[i] = 1 << (histMinShift + i)
	}
	return b
}

// hist is the backing store: one atomic counter per bucket plus running
// count and sum, so Observe never takes the registry lock.
type hist struct {
	buckets [histBuckets + 1]atomic.Int64 // final element = overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// histBucket maps an observation to the index of the smallest bucket
// whose upper bound covers it.
func histBucket(ns int64) int {
	if ns <= 1<<histMinShift {
		return 0
	}
	b := bits.Len64(uint64(ns-1)) - histMinShift
	if b >= histBuckets {
		return histBuckets
	}
	return b
}

func (h *hist) snapshot() HistSnapshot {
	s := HistSnapshot{Buckets: make([]int64, histBuckets+1)}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Histogram is a typed handle to one latency histogram. The handle caches
// the backing store, so Observe costs three atomic adds and no locks. The
// zero Histogram — and any handle from a nil registry — silently drops
// observations, matching Counter/Gauge nil-safety.
type Histogram struct {
	h *hist
}

// Hist returns a handle to the named histogram, registering it.
func (r *Registry) Hist(name string) Histogram {
	if r == nil {
		return Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Histogram{h: r.histLocked(name)}
}

func (r *Registry) histLocked(name string) *hist {
	if r.hists == nil {
		r.hists = map[string]*hist{}
	}
	h, ok := r.hists[name]
	if !ok {
		h = &hist{}
		r.hists[name] = h
		r.kinds[name] = KindHistogram
	}
	return h
}

// Observe records one value (nanoseconds for the stage.*.ns family).
func (h Histogram) Observe(ns int64) {
	if h.h == nil {
		return
	}
	h.h.buckets[histBucket(ns)].Add(1)
	h.h.count.Add(1)
	h.h.sum.Add(ns)
}

// Observe records into the named histogram without holding a handle.
func (r *Registry) Observe(name string, ns int64) { r.Hist(name).Observe(ns) }

// HistSnapshot is one histogram's point-in-time state: per-bucket
// (non-cumulative) counts in the fixed shared layout, the final element
// being the overflow bucket. It is the JSON form carried by clap-metrics
// reports and bench snapshots.
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets"`
}

// Add folds other into h bucket-wise: counts and sums add, buckets add
// index-wise. Addition over the fixed layout is commutative and
// associative, so any merge order yields the same distribution.
func (h *HistSnapshot) Add(other HistSnapshot) {
	if h.Buckets == nil {
		h.Buckets = make([]int64, histBuckets+1)
	}
	for i, v := range other.Buckets {
		if i < len(h.Buckets) {
			h.Buckets[i] += v
		}
	}
	h.Count += other.Count
	h.Sum += other.Sum
}

// Quantile returns the q-quantile's upper bucket bound in nanoseconds
// (q in [0,1]): the bound of the bucket holding the rank-q observation,
// exact to within one power of two. Empty histograms report 0;
// observations in the overflow bucket report the largest finite bound.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count <= 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	cum := int64(0)
	for i, v := range h.Buckets {
		cum += v
		if cum >= rank {
			if i >= histBuckets {
				return 1 << (histMinShift + histBuckets - 1)
			}
			return 1 << (histMinShift + i)
		}
	}
	return 1 << (histMinShift + histBuckets - 1)
}

// P50 returns the median's upper bucket bound in ns.
func (h HistSnapshot) P50() int64 { return h.Quantile(0.50) }

// P90 returns the 90th percentile's upper bucket bound in ns.
func (h HistSnapshot) P90() int64 { return h.Quantile(0.90) }

// P99 returns the 99th percentile's upper bucket bound in ns.
func (h HistSnapshot) P99() int64 { return h.Quantile(0.99) }

// RegSnapshot is a registry's full state: counters, gauges and every
// histogram. It is the unit of cross-registry aggregation — clapd takes
// one per finished job and folds it into the daemon-lifetime registry
// with Merge — and the input to the Prometheus encoder.
type RegSnapshot struct {
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// TakeSnapshot copies the registry's full state. Everything is zero for a
// nil registry.
func (r *Registry) TakeSnapshot() RegSnapshot {
	if r == nil {
		return RegSnapshot{}
	}
	counters, gauges := r.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	var hists map[string]HistSnapshot
	if len(r.hists) > 0 {
		hists = make(map[string]HistSnapshot, len(r.hists))
		for n, h := range r.hists {
			hists[n] = h.snapshot()
		}
	}
	return RegSnapshot{Counters: counters, Gauges: gauges, Hists: hists}
}

// Merge folds a snapshot into the registry: counters sum, gauges
// last-wins, histograms bucket-add. Safe for concurrent use and a no-op
// on a nil registry, so per-job workers merge unconditionally.
func (r *Registry) Merge(s RegSnapshot) {
	if r == nil {
		return
	}
	for name, v := range s.Counters {
		r.add(name, v, KindCounter)
	}
	for name, v := range s.Gauges {
		r.set(name, v)
	}
	for name, hs := range s.Hists {
		r.mu.Lock()
		h := r.histLocked(name)
		r.mu.Unlock()
		for i, v := range hs.Buckets {
			if i <= histBuckets && v != 0 {
				h.buckets[i].Add(v)
			}
		}
		h.count.Add(hs.Count)
		h.sum.Add(hs.Sum)
	}
}
