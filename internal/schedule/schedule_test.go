package schedule

import (
	"fmt"
	"testing"

	"repro/internal/constraints"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// buildFailingSystem records src until it fails and encodes the system.
func buildFailingSystem(t *testing.T, src string, model vm.MemModel, maxSeed int64) *constraints.System {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	esc := escape.Analyze(prog)
	for seed := int64(0); seed < maxSeed; seed++ {
		rec, err := vm.NewPathRecorder(prog)
		if err != nil {
			t.Fatal(err)
		}
		machine, err := vm.New(prog, vm.Config{
			Model: model, Sched: vm.NewRandomScheduler(seed),
			Shared: esc.Shared, PathRecorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := machine.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure == nil || res.Failure.Kind != vm.FailAssert {
			continue
		}
		an, err := symexec.Analyze(prog, rec.Paths, rec.Log, symexec.Options{
			Shared:  esc.Shared,
			Failure: symexec.FailureSpec{Thread: res.Failure.Thread, Site: res.Failure.Site},
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := constraints.Build(an, model)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	t.Fatalf("no failing seed in %d tries", maxSeed)
	return nil
}

const figure2SC = `
int x;
int y;
func t1() {
	int r1 = x;
	x = r1 + 1;
	int r2 = y;
	if (r2 > 0) {
		int r3 = x;
		assert(r3 > 0, "assert1");
	}
}
func main() {
	int h;
	h = spawn t1();
	x = 2;
	x = x - 3;
	y = 1;
	join(h);
}
`

func TestGenerateFindsValidSchedule(t *testing.T) {
	sys := buildFailingSystem(t, figure2SC, vm.SC, 3000)
	g := NewGenerator(sys, Options{RespectHardEdges: true, MaxSchedules: 2_000_000})
	var valid [][]constraints.SAPRef
	var minPre = -1
	for c := 0; c <= 4 && len(valid) == 0; c++ {
		res := g.Generate(c, func(order []constraints.SAPRef, pre int) bool {
			if pre > c {
				t.Fatalf("generated %d preemptions under bound %d", pre, c)
			}
			if _, err := sys.ValidateSchedule(order); err == nil {
				cp := make([]constraints.SAPRef, len(order))
				copy(cp, order)
				valid = append(valid, cp)
				minPre = pre
			}
			return true
		})
		if res.Capped {
			t.Fatalf("generation capped at bound %d", c)
		}
	}
	if len(valid) == 0 {
		t.Fatal("no valid schedule found up to 4 preemptions")
	}
	if minPre > 3 {
		t.Errorf("figure 2 bug needs %d preemptions, expected <= 3", minPre)
	}
	// The witness of the found schedule must manifest the bug.
	w, err := sys.ValidateSchedule(valid[0])
	if err != nil {
		t.Fatal(err)
	}
	if w.Preemptions > minPre {
		t.Errorf("witness preemptions %d > generation count %d", w.Preemptions, minPre)
	}
}

func TestGenerationDedupAcrossBounds(t *testing.T) {
	sys := buildFailingSystem(t, figure2SC, vm.SC, 3000)
	g := NewGenerator(sys, Options{RespectHardEdges: true, MaxSchedules: 500_000})
	seen := map[string]int{}
	for c := 0; c <= 2; c++ {
		g.Generate(c, func(order []constraints.SAPRef, pre int) bool {
			key := fmt.Sprint(order)
			if prev, dup := seen[key]; dup {
				t.Fatalf("schedule generated twice (bounds %d and %d): %v", prev, c, order)
			}
			seen[key] = c
			if pre != c {
				t.Fatalf("bound %d emitted schedule with %d preemptions", c, pre)
			}
			return true
		})
	}
	if len(seen) == 0 {
		t.Fatal("nothing generated")
	}
}

func TestGenerateZeroPreemptionsSerial(t *testing.T) {
	// With zero preemptions every generated schedule runs each thread to a
	// forced stop; for a simple fork/join program the count is small.
	src := `
int x;
func child() { x = 1; }
func main() {
	int h;
	h = spawn child();
	join(h);
	int v = x;
	assert(v == 0, "raced");
}
`
	sys := buildFailingSystem(t, src, vm.SC, 200)
	g := NewGenerator(sys, Options{RespectHardEdges: true})
	res := g.Generate(0, nil)
	if res.Generated == 0 {
		t.Fatal("no serial schedules generated")
	}
	validCount := 0
	for _, order := range res.Schedules {
		if w, err := sys.ValidateSchedule(order); err == nil {
			validCount++
			if w.Preemptions != 0 {
				t.Errorf("c=0 schedule has %d preemptions", w.Preemptions)
			}
		}
	}
	// assert(v == 0) fails when v == 1, i.e. when the child's write lands
	// before the read — which the only serial schedule (main blocks at
	// join, child runs to completion) produces. So the bug reproduces with
	// zero preemptions here.
	if validCount == 0 {
		t.Error("expected the serial schedule to reproduce the bug at c=0")
	}
}

func TestRelaxedGenerationExploresReordering(t *testing.T) {
	src := `
int x;
int y;
func t2() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "write reorder observed");
	}
}
func main() {
	int h;
	h = spawn t2();
	x = 1;
	y = 1;
	join(h);
}
`
	sys := buildFailingSystem(t, src, vm.PSO, 3000)
	g := NewGenerator(sys, Options{RespectHardEdges: true, MaxSchedules: 2_000_000})
	found := false
	for c := 0; c <= 3 && !found; c++ {
		g.Generate(c, func(order []constraints.SAPRef, pre int) bool {
			if _, err := sys.ValidateSchedule(order); err == nil {
				found = true
				return false
			}
			return true
		})
	}
	if !found {
		t.Fatal("relaxed generation never produced a valid PSO schedule")
	}
}

func TestCSPString(t *testing.T) {
	c := CSP{T1: 1, K: 3, T2: 2}
	if c.String() != "(t1,3,t2)" {
		t.Errorf("CSP renders %q", c.String())
	}
}

func TestMaxSchedulesCap(t *testing.T) {
	sys := buildFailingSystem(t, figure2SC, vm.SC, 3000)
	g := NewGenerator(sys, Options{RespectHardEdges: true, MaxSchedules: 3})
	res := g.Generate(1, nil)
	if !res.Capped {
		t.Fatal("cap must be reported")
	}
	if res.Generated != 3 {
		t.Fatalf("generated %d, want 3", res.Generated)
	}
}
